//! Property tests: randomly generated programs survive
//! print → parse → print byte-identically (printer/parser coherence), and
//! the lexer never panics on arbitrary input.

use igen_cfront::{lex, parse, print_unit};
use proptest::prelude::*;

/// A strategy producing random *valid* C expressions as source text over
/// the variables `a`, `b`, `i`.
fn expr_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("i".to_string()),
        Just("1".to_string()),
        Just("0.5".to_string()),
        Just("0.1".to_string()),
        Just("2.5e3".to_string()),
        Just("arr[i]".to_string()),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("<"),
                    Just(">"),
                    Just("=="),
                    Just("!="),
                ]
            )
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            inner.clone().prop_map(|e| format!("(-{e})")),
            inner.clone().prop_map(|e| format!("sqrt({e})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("fmin({l}, {r})")),
            inner.prop_map(|e| format!("((double){e})")),
        ]
    })
}

/// Random statements over the same variables.
fn stmt_src() -> impl Strategy<Value = String> {
    let simple = prop_oneof![
        expr_src().prop_map(|e| format!("a = {e};")),
        expr_src().prop_map(|e| format!("b = b + {e};")),
        Just("i = i + 1;".to_string()),
        Just("arr[i] = a;".to_string()),
        expr_src().prop_map(|e| format!("double t = {e};")),
    ];
    simple.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (expr_src(), inner.clone()).prop_map(|(c, s)| format!("if ({c} > 0.0) {{ {s} }}")),
            (expr_src(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("if ({c} < 1.0) {{ {t} }} else {{ {e} }}")),
            inner.clone().prop_map(|s| format!("for (int k = 0; k < 3; k++) {{ {s} }}")),
            (inner.clone(), inner).prop_map(|(x, y)| format!("{{ {x} {y} }}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_print_is_identity(stmts in prop::collection::vec(stmt_src(), 1..6)) {
        let src = format!(
            "double f(double a, double b, int i, double* arr) {{ {} return a; }}",
            stmts.join("\n")
        );
        let tu1 = parse(&src).unwrap_or_else(|e| panic!("generated source rejected: {e}\n{src}"));
        let p1 = print_unit(&tu1);
        let tu2 = parse(&p1).unwrap_or_else(|e| panic!("printed source rejected: {e}\n{p1}"));
        let p2 = print_unit(&tu2);
        prop_assert_eq!(p1, p2, "printing is not a fixed point\nsource: {}", src);
    }

    #[test]
    fn lexer_never_panics(s in "[ -~\\n\\t]{0,200}") {
        let _ = lex(&s); // may Err, must not panic
    }

    #[test]
    fn parser_never_panics_on_token_soup(s in "[a-z0-9+\\-*/()<>=;,{}\\[\\]. ]{0,120}") {
        let _ = parse(&s);
    }

    #[test]
    fn float_literal_roundtrip(v in prop::num::f64::POSITIVE | prop::num::f64::ZERO) {
        prop_assume!(v.is_finite());
        let text = igen_cfront::fmt_f64(v);
        let src = format!("double f(void) {{ return {text}; }}");
        let tu = parse(&src).unwrap();
        let printed = print_unit(&tu);
        let tu2 = parse(&printed).unwrap();
        // The literal survives a full round trip with its exact value.
        let igen_cfront::Stmt::Return(Some(igen_cfront::Expr::FloatLit { value, .. })) =
            &tu2.functions().next().unwrap().body.as_ref().unwrap()[0]
        else {
            panic!("shape");
        };
        prop_assert_eq!(*value, v);
    }
}

#[test]
fn pragma_and_extension_roundtrip() {
    let srcs = [
        "void f(double* y) { #pragma igen reduce y\nfor (int i = 0; i < 4; i++) y[i] = y[i] + 1.0; }",
        "double g(double:0.25 a, float b) { return a + 0.125t; }",
        "#include <math.h>\ndouble h(double x) { return sin(x); }",
    ];
    for src in srcs {
        let p1 = print_unit(&parse(src).unwrap());
        let p2 = print_unit(&parse(&p1).unwrap());
        assert_eq!(p1, p2, "{src}");
    }
}

#[test]
fn switch_roundtrip_and_shape() {
    let src = r#"
        int pick(int k) {
            switch (k + 1) {
                case -2:
                case 0:
                    return 10;
                case 3:
                    k = k * 2;
                    break;
                default:
                    return -1;
            }
            return k;
        }
    "#;
    let tu = parse(src).unwrap();
    let p1 = print_unit(&tu);
    let p2 = print_unit(&parse(&p1).unwrap());
    assert_eq!(p1, p2);
    // Shape: one switch with 4 arms, default last, labels preserved.
    let igen_cfront::Item::Function(f) = &tu.items[0] else { panic!() };
    let body = f.body.as_ref().unwrap();
    let igen_cfront::Stmt::Switch { arms, .. } = &body[0] else { panic!("{body:?}") };
    let labels: Vec<Option<i64>> = arms.iter().map(|a| a.label).collect();
    assert_eq!(labels, [Some(-2), Some(0), Some(3), None]);
    assert!(arms[0].body.is_empty(), "fallthrough arm is empty");
    assert_eq!(arms[1].body.len(), 1);
}

#[test]
fn switch_parse_errors() {
    // Statement before any label.
    assert!(parse("int f(int k) { switch (k) { k = 1; } return k; }").is_err());
    // Non-integer case label.
    assert!(parse("int f(int k) { switch (k) { case 1.5: break; } return k; }").is_err());
}
