//! The abstract syntax tree of the IGen C subset.
//!
//! The node taxonomy mirrors Clang's, as the paper describes (Section
//! IV-B): declarations (`Decl`), statements (`Stmt`) and expressions
//! (`Expr`), plus top-level items.

/// Types in the subset: scalars, named types (including SIMD vector types
/// and the interval types of the runtime), pointers and arrays.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void`.
    Void,
    /// `int`.
    Int,
    /// `unsigned`/`unsigned int`.
    UInt,
    /// `long` / `long long` / `int64_t`.
    Long,
    /// `uint64_t` / `unsigned long`.
    ULong,
    /// `float` (binary32).
    Float,
    /// `double` (binary64).
    Double,
    /// A named (typedef'd or builtin vendor) type: `__m256d`, `f64i`,
    /// `ddi`, `tbool`, `acc_f64`, `vec256d`, …
    Named(String),
    /// Pointer.
    Ptr(Box<Type>),
    /// Array with optional constant size.
    Array(Box<Type>, Option<usize>),
}

impl Type {
    /// True for `float`/`double`.
    pub fn is_fp_scalar(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// Strips all pointer/array layers.
    pub fn base(&self) -> &Type {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => t.base(),
            t => t,
        }
    }

    /// Rebuilds this type with its base element replaced.
    #[must_use]
    pub fn with_base(&self, new_base: Type) -> Type {
        match self {
            Type::Ptr(t) => Type::Ptr(Box::new(t.with_base(new_base))),
            Type::Array(t, n) => Type::Array(Box::new(t.with_base(new_base)), *n),
            _ => new_base,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*p`
    Deref,
    /// `&x`
    Addr,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
}

/// Binary operators (no assignment; see [`AssignOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The C source spelling.
    pub fn as_str(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            And => "&&",
            Or => "||",
        }
    }

    /// True for comparison operators (the ones that become `tbool` under
    /// interval transformation).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl AssignOp {
    /// The C source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        }
    }

    /// The underlying binary operator for compound assignments.
    pub fn bin_op(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        }
    }
}

/// Source location (1-based line/column), carried by expressions so the
/// reduction detector can match Polly-style positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Loc {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit {
        /// Value.
        value: i64,
        /// Source spelling.
        text: String,
    },
    /// Floating literal, possibly with the `f` or IGen `t` suffix.
    FloatLit {
        /// Parsed binary64 value.
        value: f64,
        /// Source spelling (without suffix).
        text: String,
        /// `f` suffix (binary32 literal).
        f32: bool,
        /// IGen tolerance suffix `t` (Section IV-C).
        tol: bool,
    },
    /// Variable reference.
    Ident(String, Loc),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Postfix `x++` / `x--` (`true` = increment).
    PostIncDec(Box<Expr>, bool),
    /// Binary operation with source location (for reduction matching).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location of the operator.
        loc: Loc,
    },
    /// Assignment.
    Assign {
        /// Operator (`=`, `+=`, …).
        op: AssignOp,
        /// Target lvalue.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// Location of the operator.
        loc: Loc,
    },
    /// Function call by name.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location of the callee.
        loc: Loc,
    },
    /// Array indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access `base.field` (`arrow` for `->`).
    Member {
        /// The accessed object.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `->` instead of `.`.
        arrow: bool,
    },
    /// C cast `(type) expr`.
    Cast(Type, Box<Expr>),
    /// Ternary conditional.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for identifier expressions.
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(name.to_string(), Loc::default())
    }

    /// Convenience constructor for calls.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call { name: name.to_string(), args, loc: Loc::default() }
    }

    /// Convenience constructor for integer literals.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit { value: v, text: v.to_string() }
    }

    /// The location of this expression, if tracked.
    pub fn loc(&self) -> Loc {
        match self {
            Expr::Ident(_, l) => *l,
            Expr::Binary { loc, .. } | Expr::Assign { loc, .. } | Expr::Call { loc, .. } => *loc,
            Expr::Unary(_, e) | Expr::PostIncDec(e, _) | Expr::Cast(_, e) => e.loc(),
            Expr::Index(b, _) | Expr::Cond(b, _, _) => b.loc(),
            Expr::Member { base, .. } => base.loc(),
            _ => Loc::default(),
        }
    }
}

/// A variable declaration (single declarator).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Declared type (array sizes included).
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// Parsed `#pragma` payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pragma {
    /// `#pragma igen reduce <var>[, <var>…]` — enables the reduction
    /// transformation for the following loop (Section VI-B).
    IgenReduce(Vec<String>),
    /// Any other pragma, kept verbatim.
    Other(String),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration.
    Decl(VarDecl),
    /// Expression statement.
    Expr(Expr),
    /// `{ … }` block.
    Block(Vec<Stmt>),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `for` loop.
    For {
        /// Init clause (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do … while`.
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `switch` on an integer controlling expression. Arms are kept in
    /// source order with C fallthrough semantics (`default` may appear
    /// anywhere among the cases).
    Switch {
        /// Controlling expression (integer-typed in the supported subset).
        cond: Expr,
        /// The arms in source order.
        arms: Vec<SwitchArm>,
    },
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `#pragma` in statement position.
    Pragma(Pragma),
    /// Empty statement `;`.
    Empty,
}

/// One `case N:` / `default:` arm of a [`Stmt::Switch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// The case label value; `None` for `default:`.
    pub label: Option<i64>,
    /// The arm's statements (execution falls through to the next arm
    /// unless they end in `break`).
    pub body: Vec<Stmt>,
}

/// A function parameter, possibly annotated with a tolerance
/// (`double:0.125 a`, Section IV-C).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// IGen tolerance annotation.
    pub tol: Option<f64>,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body; `None` for prototypes.
    pub body: Option<Vec<Stmt>>,
}

/// A typedef: either a union definition (used by the SIMD generator's
/// `vec256d`-style wrappers) or a plain alias.
#[derive(Debug, Clone, PartialEq)]
pub enum Typedef {
    /// `typedef union { … } name;`
    Union {
        /// New type name.
        name: String,
        /// Fields (type, name).
        fields: Vec<(Type, String)>,
    },
    /// `typedef <ty> name;`
    Alias {
        /// New type name.
        name: String,
        /// Aliased type.
        ty: Type,
    },
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `#include` line (target as written).
    Include(String),
    /// Top-level pragma.
    Pragma(Pragma),
    /// Typedef.
    Typedef(Typedef),
    /// Global variable.
    Global(VarDecl),
    /// Function definition or prototype.
    Function(Function),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.items.iter().find_map(|i| match i {
            Item::Function(f) if f.name == name && f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Iterates all function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }
}
