//! `igen-cfront`: lexer, parser, AST and printer for the C subset the
//! IGen interval compiler supports.
//!
//! The paper uses Clang LibTooling to obtain the AST (Section III); this
//! crate is the from-scratch substitute, covering the subset IGen
//! transforms — declarations, expressions, statements, loops, branches,
//! function definitions, SIMD vector types and intrinsic calls — plus the
//! two IGen language extensions of Section IV-C (`double:0.125` parameter
//! tolerances and `0.25t` tolerance literals) and the
//! `#pragma igen reduce` annotation of Section VI-B.
//!
//! # Example
//!
//! ```
//! use igen_cfront::{parse, print_unit};
//!
//! let tu = parse("double sq(double x) { return x * x; }").unwrap();
//! let f = tu.function("sq").unwrap();
//! assert_eq!(f.params.len(), 1);
//! // Printing is stable: parse(print(x)) prints identically (the ASTs
//! // differ only in source locations).
//! let printed = print_unit(&tu);
//! assert_eq!(print_unit(&parse(&printed).unwrap()), printed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod parser;
mod printer;
mod token;

pub use ast::{
    AssignOp, BinOp, Expr, Function, Item, Loc, Param, Pragma, Stmt, SwitchArm, TranslationUnit,
    Type, Typedef, UnOp, VarDecl,
};
pub use parser::{parse, ParseError};
pub use printer::{
    fmt_f64, print_decl_ty, print_expr, print_function, print_stmt, print_unit, type_str,
};
pub use token::{lex, LexError, Token, TokenKind};
