//! Tokens and the lexer for the IGen C subset.
//!
//! The lexer handles the two IGen language extensions (Section IV-C): the
//! `t` suffix on floating-point constants (`0.25t` — a tolerance around
//! the value) and the `:` tolerance annotation in parameter lists
//! (`double:0.125 a`), plus `#include` and `#pragma` lines, which are kept
//! as dedicated tokens instead of running a real preprocessor.

/// Lexical error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub msg: String,
}

impl core::fmt::Display for LexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// A lexed token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

/// Token payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal (decimal, hex or octal) with its source text.
    Int(i64, String),
    /// Floating literal; `f32` marks an `f` suffix, `tol` the IGen `t`
    /// suffix (Section IV-C).
    Float {
        /// Parsed binary64 value.
        value: f64,
        /// Original spelling (without suffix).
        text: String,
        /// `f`/`F` suffix present.
        f32: bool,
        /// IGen `t` suffix present.
        tol: bool,
    },
    /// String literal (content without quotes; used only in includes).
    Str(String),
    /// Punctuation / operator, e.g. `"+"`, `"<<="`, `"->"`.
    Punct(&'static str),
    /// A `#include` line; payload is the include target as written
    /// (`<x.h>` or `"x.h"`).
    Include(String),
    /// A `#pragma` line; payload is everything after `#pragma`.
    Pragma(String),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True if this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// True if this token is the given identifier/keyword.
    pub fn is_ident(&self, id: &str) -> bool {
        matches!(self, TokenKind::Ident(q) if q == id)
    }
}

/// All multi- and single-character punctuators, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "=", "<", ">", "!", "~",
    "&", "|", "^", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Tokenizes a complete source string.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated comments/strings or characters
/// outside the supported subset.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { line: self.line, col: self.col, msg: msg.into() }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token { kind: TokenKind::Eof, line, col });
                return Ok(out);
            };
            let kind = if c == b'#' {
                self.lex_directive()?
            } else if c.is_ascii_alphabetic() || c == b'_' {
                self.lex_ident()
            } else if c.is_ascii_digit()
                || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit()))
            {
                self.lex_number()?
            } else if c == b'"' {
                self.lex_string()?
            } else {
                self.lex_punct()?
            };
            out.push(Token { kind, line, col });
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_directive(&mut self) -> Result<TokenKind, LexError> {
        // Consume '#', then the directive word, then the rest of the line.
        self.bump();
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphabetic() {
                word.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        let mut rest = String::new();
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            rest.push(self.bump().unwrap() as char);
        }
        let rest = rest.trim().to_string();
        match word.as_str() {
            "include" => Ok(TokenKind::Include(rest)),
            "pragma" => Ok(TokenKind::Pragma(rest)),
            "define" | "ifdef" | "ifndef" | "endif" | "if" | "else" => {
                Err(self.err(format!("unsupported preprocessor directive: #{word}")))
            }
            _ => Err(self.err(format!("unknown directive: #{word}"))),
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        TokenKind::Ident(s)
    }

    fn lex_number(&mut self) -> Result<TokenKind, LexError> {
        let mut s = String::new();
        let mut is_float = false;
        // Hex?
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            s.push(self.bump().unwrap() as char);
            s.push(self.bump().unwrap() as char);
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    s.push(self.bump().unwrap() as char);
                } else {
                    break;
                }
            }
            let v = i64::from_str_radix(&s[2..], 16)
                .map_err(|e| self.err(format!("bad hex literal {s}: {e}")))?;
            // Optional integer suffixes.
            while matches!(self.peek(), Some(b'u' | b'U' | b'l' | b'L')) {
                self.bump();
            }
            return Ok(TokenKind::Int(v, s));
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => s.push(self.bump().unwrap() as char),
                b'.' if !is_float => {
                    is_float = true;
                    s.push(self.bump().unwrap() as char);
                }
                b'e' | b'E' => {
                    is_float = true;
                    s.push(self.bump().unwrap() as char);
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        s.push(self.bump().unwrap() as char);
                    }
                }
                _ => break,
            }
        }
        // Suffixes: f/F (float), t/T (IGen tolerance), l/L/u/U (ints).
        let mut f32 = false;
        let mut tol = false;
        while let Some(c) = self.peek() {
            match c {
                b'f' | b'F' => {
                    f32 = true;
                    is_float = true;
                    self.bump();
                }
                b't' | b'T' => {
                    tol = true;
                    is_float = true;
                    self.bump();
                }
                b'l' | b'L' | b'u' | b'U' if !is_float => {
                    self.bump();
                }
                _ => break,
            }
        }
        if is_float {
            let value: f64 = s.parse().map_err(|e| self.err(format!("bad float {s}: {e}")))?;
            Ok(TokenKind::Float { value, text: s, f32, tol })
        } else {
            let v: i64 = s.parse().map_err(|e| self.err(format!("bad int {s}: {e}")))?;
            Ok(TokenKind::Int(v, s))
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::Str(s)),
                Some(b'\\') => {
                    let Some(e) = self.bump() else {
                        return Err(self.err("unterminated string"));
                    };
                    s.push('\\');
                    s.push(e as char);
                }
                Some(c) => s.push(c as char),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn lex_punct(&mut self) -> Result<TokenKind, LexError> {
        for p in PUNCTS {
            let bytes = p.as_bytes();
            if self.src[self.pos..].starts_with(bytes) {
                for _ in 0..bytes.len() {
                    self.bump();
                }
                return Ok(TokenKind::Punct(p));
            }
        }
        Err(self.err(format!(
            "unexpected character {:?}",
            self.peek().map(|c| c as char).unwrap_or('\0')
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("double foo(double a) { return a + 1.5; }");
        assert!(matches!(&k[0], TokenKind::Ident(s) if s == "double"));
        assert!(k.iter().any(|t| t.is_punct("{")));
        assert!(k.iter().any(|t| matches!(t, TokenKind::Float { value, .. } if *value == 1.5)));
        assert!(matches!(k.last(), Some(TokenKind::Eof)));
    }

    #[test]
    fn float_suffixes() {
        let k = kinds("0.25t 1.0f 2e3 .5 3.");
        match &k[0] {
            TokenKind::Float { value, tol, f32, .. } => {
                assert_eq!(*value, 0.25);
                assert!(tol);
                assert!(!f32);
            }
            other => panic!("{other:?}"),
        }
        match &k[1] {
            TokenKind::Float { value, f32, tol, .. } => {
                assert_eq!(*value, 1.0);
                assert!(f32);
                assert!(!tol);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&k[2], TokenKind::Float { value, .. } if *value == 2e3));
        assert!(matches!(&k[3], TokenKind::Float { value, .. } if *value == 0.5));
        assert!(matches!(&k[4], TokenKind::Float { value, .. } if *value == 3.0));
    }

    #[test]
    fn int_literals() {
        let k = kinds("42 0x1F 100u 7L");
        assert!(matches!(&k[0], TokenKind::Int(42, _)));
        assert!(matches!(&k[1], TokenKind::Int(31, _)));
        assert!(matches!(&k[2], TokenKind::Int(100, _)));
        assert!(matches!(&k[3], TokenKind::Int(7, _)));
    }

    #[test]
    fn directives() {
        let k = kinds("#include \"igen_lib.h\"\n#pragma igen reduce y\nint x;");
        assert!(matches!(&k[0], TokenKind::Include(s) if s == "\"igen_lib.h\""));
        assert!(matches!(&k[1], TokenKind::Pragma(s) if s == "igen reduce y"));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("a /* comment */ b // line\nc");
        let ids: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, ["a", "b", "c"]);
    }

    #[test]
    fn multi_char_puncts() {
        let k = kinds("a <<= b >> c != d->e");
        assert!(k.iter().any(|t| t.is_punct("<<=")));
        assert!(k.iter().any(|t| t.is_punct(">>")));
        assert!(k.iter().any(|t| t.is_punct("!=")));
        assert!(k.iter().any(|t| t.is_punct("->")));
    }

    #[test]
    fn errors() {
        assert!(lex("/* unterminated").is_err());
        assert!(lex("#define X 1").is_err());
        assert!(lex("`").is_err());
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
