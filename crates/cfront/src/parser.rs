//! Recursive-descent parser for the IGen C subset.
//!
//! Type names drive the usual C ambiguities (declaration vs. expression,
//! cast vs. parenthesized expression); the parser seeds its type-name set
//! with the builtin scalars, the Intel vector types, and the IGen runtime
//! types, and extends it at every `typedef`.

use crate::ast::*;
use crate::token::{lex, LexError, Token, TokenKind};
use std::collections::HashSet;

/// Parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Description.
    pub msg: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { line: e.line, col: e.col, msg: e.msg }
    }
}

/// Parses a complete translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
///
/// # Example
///
/// ```
/// let tu = igen_cfront::parse("double foo(double a) { return a + 0.1; }").unwrap();
/// assert!(tu.function("foo").is_some());
/// ```
pub fn parse(src: &str) -> Result<TranslationUnit, ParseError> {
    let toks = lex(src)?;
    Parser::new(toks).translation_unit()
}

/// Type names known a priori: C scalars plus the Intel SIMD types plus the
/// IGen runtime types (so that IGen *output* parses too — needed when the
/// generated intrinsics are themselves compiled, Fig. 4).
const BUILTIN_TYPENAMES: &[&str] = &[
    "void", "int", "unsigned", "long", "float", "double", "char", "size_t", "int32_t", "int64_t",
    "uint32_t", "uint64_t", "__m128", "__m128d", "__m128i", "__m256", "__m256d", "__m256i", "f32i",
    "f64i", "ddi", "ddi_2", "ddi_4", "ddi_8", "tbool", "acc_f64", "acc_dd", "m256di_1", "m256di_2",
    "m256di_4",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    typenames: HashSet<String>,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Parser {
        Parser {
            toks,
            pos: 0,
            typenames: BUILTIN_TYPENAMES.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError { line: t.line, col: t.col, msg: msg.into() }
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.peek().kind.is_punct(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek().kind)))
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().kind.is_punct(p)
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn loc(&self) -> Loc {
        let t = self.peek();
        Loc { line: t.line, col: t.col }
    }

    // --- types ---------------------------------------------------------

    fn at_type_start(&self) -> bool {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                s == "const" || s == "static" || self.typenames.contains(s.as_str())
            }
            _ => false,
        }
    }

    /// Parses a base type with qualifiers and pointer suffixes.
    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut ty = self.parse_base_type()?;
        while self.at_punct("*") {
            self.bump();
            ty = Type::Ptr(Box::new(ty));
            while matches!(&self.peek().kind, TokenKind::Ident(s) if s == "const" || s == "restrict")
            {
                self.bump();
            }
        }
        Ok(ty)
    }

    /// Parses a base type (no pointer declarators).
    fn parse_base_type(&mut self) -> Result<Type, ParseError> {
        // Skip qualifiers.
        while matches!(&self.peek().kind, TokenKind::Ident(s) if s == "const" || s == "static") {
            self.bump();
        }
        let name = self.eat_ident()?;
        let ty = match name.as_str() {
            "void" => Type::Void,
            "int" => Type::Int,
            "char" => Type::Named("char".into()),
            "float" => Type::Float,
            "double" => Type::Double,
            "long" => {
                // long, long long, long double
                if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "long" || s == "int") {
                    self.bump();
                }
                Type::Long
            }
            "unsigned" => {
                if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "int") {
                    self.bump();
                    Type::UInt
                } else if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "long") {
                    self.bump();
                    if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "long") {
                        self.bump();
                    }
                    Type::ULong
                } else {
                    Type::UInt
                }
            }
            "int64_t" => Type::Long,
            "uint64_t" | "size_t" => Type::ULong,
            "int32_t" => Type::Int,
            "uint32_t" => Type::UInt,
            _ if self.typenames.contains(&name) => Type::Named(name),
            _ => return Err(self.err(format!("unknown type `{name}`"))),
        };
        // Skip a second `const` (e.g. `double const`).
        while matches!(&self.peek().kind, TokenKind::Ident(s) if s == "const") {
            self.bump();
        }
        Ok(ty)
    }

    /// Array suffixes on a declarator: `a[10][20]`.
    fn parse_array_suffix(&mut self, mut ty: Type) -> Result<Type, ParseError> {
        let mut dims = Vec::new();
        while self.at_punct("[") {
            self.bump();
            let size = if self.at_punct("]") {
                None
            } else {
                match &self.peek().kind {
                    TokenKind::Int(v, _) => {
                        let v = *v as usize;
                        self.bump();
                        Some(v)
                    }
                    _ => return Err(self.err("array size must be an integer constant")),
                }
            };
            self.eat_punct("]")?;
            dims.push(size);
        }
        for size in dims.into_iter().rev() {
            ty = Type::Array(Box::new(ty), size);
        }
        Ok(ty)
    }

    // --- top level -----------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, ParseError> {
        let mut items = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Include(_) => {
                    let TokenKind::Include(s) = self.bump().kind else { unreachable!() };
                    items.push(Item::Include(s));
                }
                TokenKind::Pragma(_) => {
                    let TokenKind::Pragma(s) = self.bump().kind else { unreachable!() };
                    items.push(Item::Pragma(parse_pragma(&s)));
                }
                TokenKind::Ident(s) if s == "typedef" => {
                    items.push(Item::Typedef(self.parse_typedef()?));
                }
                _ => items.push(self.parse_global_or_function()?),
            }
        }
        Ok(TranslationUnit { items })
    }

    fn parse_typedef(&mut self) -> Result<Typedef, ParseError> {
        self.bump(); // typedef
        if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "union" || s == "struct") {
            let _kw = self.bump();
            self.eat_punct("{")?;
            let mut fields = Vec::new();
            while !self.at_punct("}") {
                let ty = self.parse_type()?;
                let name = self.eat_ident()?;
                let ty = self.parse_array_suffix(ty)?;
                self.eat_punct(";")?;
                fields.push((ty, name));
            }
            self.eat_punct("}")?;
            let name = self.eat_ident()?;
            self.eat_punct(";")?;
            self.typenames.insert(name.clone());
            Ok(Typedef::Union { name, fields })
        } else {
            let ty = self.parse_type()?;
            let name = self.eat_ident()?;
            self.eat_punct(";")?;
            self.typenames.insert(name.clone());
            Ok(Typedef::Alias { name, ty })
        }
    }

    fn parse_global_or_function(&mut self) -> Result<Item, ParseError> {
        let ty = self.parse_type()?;
        let name = self.eat_ident()?;
        if self.at_punct("(") {
            let f = self.parse_function_rest(ty, name)?;
            Ok(Item::Function(f))
        } else {
            let ty = self.parse_array_suffix(ty)?;
            let init = if self.at_punct("=") {
                self.bump();
                Some(self.parse_assignment()?)
            } else {
                None
            };
            self.eat_punct(";")?;
            Ok(Item::Global(VarDecl { ty, name, init }))
        }
    }

    fn parse_function_rest(&mut self, ret: Type, name: String) -> Result<Function, ParseError> {
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            // `void` parameter list.
            if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "void")
                && self.peek_at(1).kind.is_punct(")")
            {
                self.bump();
            } else {
                loop {
                    params.push(self.parse_param()?);
                    if self.at_punct(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        self.eat_punct(")")?;
        if self.at_punct(";") {
            self.bump();
            return Ok(Function { ret, name, params, body: None });
        }
        self.eat_punct("{")?;
        let body = self.parse_block_stmts()?;
        self.eat_punct("}")?;
        Ok(Function { ret, name, params, body: Some(body) })
    }

    fn parse_param(&mut self) -> Result<Param, ParseError> {
        let ty = self.parse_type()?;
        // IGen extension: `double:0.125 a`.
        let tol = if self.at_punct(":") {
            self.bump();
            match self.bump().kind {
                TokenKind::Float { value, .. } => Some(value),
                TokenKind::Int(v, _) => Some(v as f64),
                other => return Err(self.err(format!("expected tolerance literal, got {other:?}"))),
            }
        } else {
            None
        };
        let name = self.eat_ident()?;
        let ty = {
            // `double a[]` parameter decays to pointer.
            let t = self.parse_array_suffix(ty)?;
            match t {
                Type::Array(inner, _) => Type::Ptr(inner),
                other => other,
            }
        };
        Ok(Param { ty, name, tol })
    }

    // --- statements ----------------------------------------------------

    /// Parses statements until `}`; declaration statements may carry
    /// multiple comma-separated declarators (`vec256d dst, a, b;` in the
    /// generated intrinsics) and expand to one [`Stmt::Decl`] each.
    fn parse_block_stmts(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.at_punct("}") {
            if matches!(&self.peek().kind, TokenKind::Ident(_))
                && self.at_type_start()
                && !matches!(&self.peek().kind, TokenKind::Ident(s)
                    if s == "if" || s == "for" || s == "while" || s == "do" || s == "return")
            {
                for d in self.parse_decl_group()? {
                    out.push(Stmt::Decl(d));
                }
            } else {
                out.push(self.parse_stmt()?);
            }
        }
        Ok(out)
    }

    /// Parses `base decl1, decl2, …;` with per-declarator pointers, array
    /// suffixes and initializers.
    fn parse_decl_group(&mut self) -> Result<Vec<VarDecl>, ParseError> {
        let base = self.parse_base_type()?;
        let mut out = Vec::new();
        loop {
            let mut ty = base.clone();
            while self.at_punct("*") {
                self.bump();
                ty = Type::Ptr(Box::new(ty));
            }
            let name = self.eat_ident()?;
            let ty = self.parse_array_suffix(ty)?;
            let init = if self.at_punct("=") {
                self.bump();
                Some(self.parse_assignment()?)
            } else {
                None
            };
            out.push(VarDecl { ty, name, init });
            if self.at_punct(",") {
                self.bump();
            } else {
                break;
            }
        }
        self.eat_punct(";")?;
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match &self.peek().kind {
            TokenKind::Pragma(_) => {
                let TokenKind::Pragma(s) = self.bump().kind else { unreachable!() };
                Ok(Stmt::Pragma(parse_pragma(&s)))
            }
            TokenKind::Punct("{") => {
                self.bump();
                let body = self.parse_block_stmts()?;
                self.eat_punct("}")?;
                Ok(Stmt::Block(body))
            }
            TokenKind::Punct(";") => {
                self.bump();
                Ok(Stmt::Empty)
            }
            TokenKind::Ident(kw) => match kw.as_str() {
                "if" => self.parse_if(),
                "for" => self.parse_for(),
                "while" => self.parse_while(),
                "do" => self.parse_do_while(),
                "switch" => self.parse_switch(),
                "return" => {
                    self.bump();
                    if self.at_punct(";") {
                        self.bump();
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.parse_expr()?;
                        self.eat_punct(";")?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                "break" => {
                    self.bump();
                    self.eat_punct(";")?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.bump();
                    self.eat_punct(";")?;
                    Ok(Stmt::Continue)
                }
                _ if self.at_type_start() => {
                    let d = self.parse_var_decl()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Decl(d))
                }
                _ => {
                    let e = self.parse_expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Expr(e))
                }
            },
            _ => {
                let e = self.parse_expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_var_decl(&mut self) -> Result<VarDecl, ParseError> {
        let ty = self.parse_type()?;
        let name = self.eat_ident()?;
        let ty = self.parse_array_suffix(ty)?;
        let init = if self.at_punct("=") {
            self.bump();
            Some(self.parse_assignment()?)
        } else {
            None
        };
        Ok(VarDecl { ty, name, init })
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // if
        self.eat_punct("(")?;
        let cond = self.parse_expr()?;
        self.eat_punct(")")?;
        let then_branch = Box::new(self.parse_stmt()?);
        let else_branch = if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "else") {
            self.bump();
            Some(Box::new(self.parse_stmt()?))
        } else {
            None
        };
        Ok(Stmt::If { cond, then_branch, else_branch })
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // for
        self.eat_punct("(")?;
        let init = if self.at_punct(";") {
            self.bump();
            None
        } else if self.at_type_start() {
            let d = self.parse_var_decl()?;
            self.eat_punct(";")?;
            Some(Box::new(Stmt::Decl(d)))
        } else {
            let e = self.parse_expr()?;
            self.eat_punct(";")?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.at_punct(";") { None } else { Some(self.parse_expr()?) };
        self.eat_punct(";")?;
        let step = if self.at_punct(")") { None } else { Some(self.parse_expr()?) };
        self.eat_punct(")")?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::For { init, cond, step, body })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        self.bump();
        self.eat_punct("(")?;
        let cond = self.parse_expr()?;
        self.eat_punct(")")?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::While { cond, body })
    }

    /// `switch (expr) { case N: …; default: …; }` — arms kept in source
    /// order; fallthrough is represented, not resolved.
    fn parse_switch(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // switch
        self.eat_punct("(")?;
        let cond = self.parse_expr()?;
        self.eat_punct(")")?;
        self.eat_punct("{")?;
        let mut arms: Vec<SwitchArm> = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::Punct("}") => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(s) if s == "case" => {
                    self.bump();
                    let neg = if self.at_punct("-") {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    let v = match &self.peek().kind {
                        TokenKind::Int(v, _) => {
                            let v = *v;
                            self.bump();
                            if neg {
                                -v
                            } else {
                                v
                            }
                        }
                        other => {
                            return Err(
                                self.err(format!("expected integer case label, found {other:?}"))
                            )
                        }
                    };
                    self.eat_punct(":")?;
                    arms.push(SwitchArm { label: Some(v), body: Vec::new() });
                }
                TokenKind::Ident(s) if s == "default" => {
                    self.bump();
                    self.eat_punct(":")?;
                    arms.push(SwitchArm { label: None, body: Vec::new() });
                }
                _ => {
                    let stmt = self.parse_stmt()?;
                    match arms.last_mut() {
                        Some(arm) => arm.body.push(stmt),
                        None => {
                            return Err(
                                self.err("statement before the first case label".to_string())
                            )
                        }
                    }
                }
            }
        }
        Ok(Stmt::Switch { cond, arms })
    }

    fn parse_do_while(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // do
        let body = Box::new(self.parse_stmt()?);
        match &self.peek().kind {
            TokenKind::Ident(s) if s == "while" => {
                self.bump();
            }
            _ => return Err(self.err("expected `while` after do-body")),
        }
        self.eat_punct("(")?;
        let cond = self.parse_expr()?;
        self.eat_punct(")")?;
        self.eat_punct(";")?;
        Ok(Stmt::DoWhile { body, cond })
    }

    // --- expressions ---------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_conditional()?;
        let op = match &self.peek().kind {
            TokenKind::Punct("=") => AssignOp::Assign,
            TokenKind::Punct("+=") => AssignOp::AddAssign,
            TokenKind::Punct("-=") => AssignOp::SubAssign,
            TokenKind::Punct("*=") => AssignOp::MulAssign,
            TokenKind::Punct("/=") => AssignOp::DivAssign,
            _ => return Ok(lhs),
        };
        let loc = self.loc();
        self.bump();
        let rhs = self.parse_assignment()?;
        Ok(Expr::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs), loc })
    }

    fn parse_conditional(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.at_punct("?") {
            self.bump();
            let t = self.parse_expr()?;
            self.eat_punct(":")?;
            let e = self.parse_conditional()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(t), Box::new(e)))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self) -> Option<(BinOp, u8)> {
        let op = match &self.peek().kind {
            TokenKind::Punct("||") => (BinOp::Or, 1),
            TokenKind::Punct("&&") => (BinOp::And, 2),
            TokenKind::Punct("|") => (BinOp::BitOr, 3),
            TokenKind::Punct("^") => (BinOp::BitXor, 4),
            TokenKind::Punct("&") => (BinOp::BitAnd, 5),
            TokenKind::Punct("==") => (BinOp::Eq, 6),
            TokenKind::Punct("!=") => (BinOp::Ne, 6),
            TokenKind::Punct("<") => (BinOp::Lt, 7),
            TokenKind::Punct("<=") => (BinOp::Le, 7),
            TokenKind::Punct(">") => (BinOp::Gt, 7),
            TokenKind::Punct(">=") => (BinOp::Ge, 7),
            TokenKind::Punct("<<") => (BinOp::Shl, 8),
            TokenKind::Punct(">>") => (BinOp::Shr, 8),
            TokenKind::Punct("+") => (BinOp::Add, 9),
            TokenKind::Punct("-") => (BinOp::Sub, 9),
            TokenKind::Punct("*") => (BinOp::Mul, 10),
            TokenKind::Punct("/") => (BinOp::Div, 10),
            TokenKind::Punct("%") => (BinOp::Rem, 10),
            _ => return None,
        };
        Some(op)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec {
                break;
            }
            let loc = self.loc();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), loc };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match &self.peek().kind {
            TokenKind::Punct("-") => Some(UnOp::Neg),
            TokenKind::Punct("+") => Some(UnOp::Plus),
            TokenKind::Punct("!") => Some(UnOp::Not),
            TokenKind::Punct("~") => Some(UnOp::BitNot),
            TokenKind::Punct("*") => Some(UnOp::Deref),
            TokenKind::Punct("&") => Some(UnOp::Addr),
            TokenKind::Punct("++") => Some(UnOp::PreInc),
            TokenKind::Punct("--") => Some(UnOp::PreDec),
            TokenKind::Punct("(") => {
                // Cast if the parenthesis opens a type.
                if let TokenKind::Ident(s) = &self.peek_at(1).kind {
                    if self.typenames.contains(s.as_str()) || s == "const" {
                        // Lookahead to ensure `)` follows a type (not a
                        // parenthesized expression like `(x) + 1` where x
                        // could shadow — names are unambiguous here).
                        self.bump(); // (
                        let ty = self.parse_type()?;
                        self.eat_punct(")")?;
                        let inner = self.parse_unary()?;
                        return Ok(Expr::Cast(ty, Box::new(inner)));
                    }
                }
                None
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(op, Box::new(inner)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match &self.peek().kind {
                TokenKind::Punct("[") => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.eat_punct("]")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                TokenKind::Punct(".") => {
                    self.bump();
                    let field = self.eat_ident()?;
                    e = Expr::Member { base: Box::new(e), field, arrow: false };
                }
                TokenKind::Punct("->") => {
                    self.bump();
                    let field = self.eat_ident()?;
                    e = Expr::Member { base: Box::new(e), field, arrow: true };
                }
                TokenKind::Punct("++") => {
                    self.bump();
                    e = Expr::PostIncDec(Box::new(e), true);
                }
                TokenKind::Punct("--") => {
                    self.bump();
                    e = Expr::PostIncDec(Box::new(e), false);
                }
                TokenKind::Punct("(") => {
                    // Calls only on bare identifiers in this subset.
                    let Expr::Ident(name, loc) = e else {
                        return Err(self.err("call target must be a function name"));
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.parse_assignment()?);
                            if self.at_punct(",") {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    e = Expr::Call { name, args, loc };
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.loc();
        match self.peek().kind.clone() {
            TokenKind::Int(v, text) => {
                self.bump();
                Ok(Expr::IntLit { value: v, text })
            }
            TokenKind::Float { value, text, f32, tol } => {
                self.bump();
                Ok(Expr::FloatLit { value, text, f32, tol })
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Expr::Ident(s, loc))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a pragma payload string.
fn parse_pragma(s: &str) -> Pragma {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() >= 3 && words[0] == "igen" && words[1] == "reduce" {
        let vars = words[2..]
            .join(" ")
            .split(',')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect();
        Pragma::IgenReduce(vars)
    } else {
        Pragma::Other(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_input() {
        let src = r#"
            double foo(double a, double b) {
                double c;
                c = a + b + 0.1;
                if (c > a) {
                    c = a * c;
                }
                return c;
            }
        "#;
        let tu = parse(src).unwrap();
        let f = tu.function("foo").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.as_ref().unwrap().len(), 4);
        assert!(matches!(&f.body.as_ref().unwrap()[2], Stmt::If { .. }));
    }

    #[test]
    fn parses_fig3_extensions() {
        let src = r#"
            double read_sensor(double:0.125 a) {
                double c = 5.0 + 0.25t;
                return a + c;
            }
        "#;
        let tu = parse(src).unwrap();
        let f = tu.function("read_sensor").unwrap();
        assert_eq!(f.params[0].tol, Some(0.125));
        let Stmt::Decl(d) = &f.body.as_ref().unwrap()[0] else { panic!() };
        let Some(Expr::Binary { rhs, .. }) = &d.init else { panic!() };
        assert!(matches!(**rhs, Expr::FloatLit { tol: true, value: 0.25, .. }));
    }

    #[test]
    fn parses_fig7_mvm_with_pragma() {
        let src = r#"
            void mvm(double* A, double* x, double* y) {
                #pragma igen reduce y
                for (int i = 0; i < 100; i++)
                    for (int j = 0; j < 500; j++)
                        y[i] = y[i] + A[i*500+j]*x[j];
            }
        "#;
        let tu = parse(src).unwrap();
        let f = tu.function("mvm").unwrap();
        let body = f.body.as_ref().unwrap();
        assert!(matches!(&body[0], Stmt::Pragma(Pragma::IgenReduce(v)) if v == &["y".to_string()]));
        assert!(matches!(&body[1], Stmt::For { .. }));
        assert_eq!(f.params[0].ty, Type::Ptr(Box::new(Type::Double)));
    }

    #[test]
    fn parses_simd_intrinsics_code() {
        let src = r#"
            typedef union {
                __m256d v;
                uint64_t i[4];
                double f[4];
            } vec256d;

            __m256d _c_mm256_add_pd(__m256d _a, __m256d _b) {
                vec256d dst, a, b;
                int i, j;
                for (j = 0; j <= 3; ++j) {
                    i = j * 64;
                    dst.f[i/64] = a.f[i/64] + b.f[i/64];
                }
                return dst.v;
            }
        "#;
        let tu = parse(src).unwrap();
        assert!(matches!(&tu.items[0], Item::Typedef(Typedef::Union { name, fields })
            if name == "vec256d" && fields.len() == 3));
        let f = tu.function("_c_mm256_add_pd").unwrap();
        assert_eq!(f.ret, Type::Named("__m256d".into()));
    }

    #[test]
    fn multiple_declarators_unsupported_but_single_work() {
        // The subset uses one declarator per statement except in generated
        // code like `vec256d dst, a, b;` — wait, that IS multiple. Check:
        let src = "int foo(void) { int a; int b = 2; return b; }";
        let tu = parse(src).unwrap();
        assert!(tu.function("foo").is_some());
    }

    #[test]
    fn henon_map_parses() {
        let src = r#"
            double henon_map(double x, double y, int iterations) {
                double a = 1.05;
                double b = 0.3;
                for (int i = 0; i < iterations; i++) {
                    double xi = x;
                    double yi = y;
                    x = 1 - a*xi*xi + yi;
                    y = b*xi;
                }
                return x;
            }
        "#;
        let tu = parse(src).unwrap();
        assert!(tu.function("henon_map").is_some());
    }

    #[test]
    fn precedence_is_c_like() {
        let tu = parse("int f(void) { return 1 + 2 * 3 < 4 == 0; }").unwrap();
        let f = tu.function("f").unwrap();
        let Stmt::Return(Some(e)) = &f.body.as_ref().unwrap()[0] else { panic!() };
        // ((1 + (2*3)) < 4) == 0
        let Expr::Binary { op: BinOp::Eq, lhs, .. } = e else { panic!("{e:?}") };
        let Expr::Binary { op: BinOp::Lt, lhs: l2, .. } = &**lhs else { panic!() };
        assert!(matches!(&**l2, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn casts_and_calls() {
        let tu = parse("double f(int n) { return (double)n + sin(0.5); }").unwrap();
        let f = tu.function("f").unwrap();
        let Stmt::Return(Some(Expr::Binary { lhs, rhs, .. })) = &f.body.as_ref().unwrap()[0] else {
            panic!()
        };
        assert!(matches!(&**lhs, Expr::Cast(Type::Double, _)));
        assert!(matches!(&**rhs, Expr::Call { name, .. } if name == "sin"));
    }

    #[test]
    fn error_reporting() {
        let e = parse("double f( { }").unwrap_err();
        assert!(e.line >= 1);
        assert!(parse("int f(void) { return 1 + ; }").is_err());
        assert!(parse("unknown_t f(void);").is_err());
    }

    #[test]
    fn while_and_do_while() {
        let src =
            "int f(int n) { while (n > 0) { n = n - 1; } do { n++; } while (n < 3); return n; }";
        let tu = parse(src).unwrap();
        let body = tu.function("f").unwrap().body.as_ref().unwrap();
        assert!(matches!(&body[0], Stmt::While { .. }));
        assert!(matches!(&body[1], Stmt::DoWhile { .. }));
    }

    #[test]
    fn ternary_and_compound_assign() {
        let src = "int f(int a) { a += 2; a *= 3; return a > 0 ? a : -a; }";
        let tu = parse(src).unwrap();
        let body = tu.function("f").unwrap().body.as_ref().unwrap();
        assert!(matches!(&body[0], Stmt::Expr(Expr::Assign { op: AssignOp::AddAssign, .. })));
        assert!(matches!(&body[2], Stmt::Return(Some(Expr::Cond(..)))));
    }

    #[test]
    fn array_declarations() {
        let src = "void f(void) { double A[4][8]; A[1][2] = 3.0; }";
        let tu = parse(src).unwrap();
        let body = tu.function("f").unwrap().body.as_ref().unwrap();
        let Stmt::Decl(d) = &body[0] else { panic!() };
        assert_eq!(
            d.ty,
            Type::Array(Box::new(Type::Array(Box::new(Type::Double), Some(8))), Some(4))
        );
    }
}
