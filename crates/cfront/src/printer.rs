//! Pretty-printer emitting compilable C from the AST.
//!
//! `parse(print(ast)) == ast` (modulo token spelling) — verified by the
//! round-trip property tests. This is the backend IGen uses to write its
//! transformed translation units (`igen_file.c` in Fig. 1).

use crate::ast::*;
use core::fmt::Write;

/// Prints a whole translation unit as C source.
pub fn print_unit(tu: &TranslationUnit) -> String {
    let mut p = Printer::default();
    for (i, item) in tu.items.iter().enumerate() {
        if i > 0 {
            p.out.push('\n');
        }
        p.item(item);
    }
    p.out
}

/// Prints a single function definition.
pub fn print_function(f: &Function) -> String {
    let mut p = Printer::default();
    p.function(f);
    p.out
}

/// Prints a single statement (top-level indentation).
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(s);
    p.out
}

/// Prints an expression.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(e, 0);
    p.out
}

/// Prints a type with a declarator name, C style (`double* a`,
/// `double A[4][8]`).
pub fn print_decl_ty(ty: &Type, name: &str) -> String {
    // Split array suffixes off.
    let mut suffixes = String::new();
    let mut t = ty;
    while let Type::Array(inner, n) = t {
        match n {
            Some(n) => write!(suffixes, "[{n}]").unwrap(),
            None => suffixes.push_str("[]"),
        }
        t = inner;
    }
    format!("{} {name}{suffixes}", type_str(t))
}

/// The C spelling of a (non-array) type.
pub fn type_str(ty: &Type) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Int => "int".into(),
        Type::UInt => "unsigned int".into(),
        Type::Long => "int64_t".into(),
        Type::ULong => "uint64_t".into(),
        Type::Float => "float".into(),
        Type::Double => "double".into(),
        Type::Named(n) => n.clone(),
        Type::Ptr(inner) => format!("{}*", type_str(inner)),
        Type::Array(inner, Some(n)) => format!("{}[{n}]", type_str(inner)),
        Type::Array(inner, None) => format!("{}[]", type_str(inner)),
    }
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Include(s) => {
                let _ = writeln!(self.out, "#include {s}");
            }
            Item::Pragma(p) => self.pragma(p),
            Item::Typedef(Typedef::Union { name, fields }) => {
                let _ = writeln!(self.out, "typedef union {{");
                for (ty, fname) in fields {
                    let _ = writeln!(self.out, "    {};", print_decl_ty(ty, fname));
                }
                let _ = writeln!(self.out, "}} {name};");
            }
            Item::Typedef(Typedef::Alias { name, ty }) => {
                let _ = writeln!(self.out, "typedef {} {name};", type_str(ty));
            }
            Item::Global(d) => {
                self.var_decl(d);
                self.out.push('\n');
            }
            Item::Function(f) => self.function(f),
        }
    }

    fn pragma(&mut self, p: &Pragma) {
        self.line_start();
        match p {
            Pragma::IgenReduce(vars) => {
                let _ = writeln!(self.out, "#pragma igen reduce {}", vars.join(", "));
            }
            Pragma::Other(s) => {
                let _ = writeln!(self.out, "#pragma {s}");
            }
        }
    }

    fn function(&mut self, f: &Function) {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| match p.tol {
                Some(t) => format!("{}:{} {}", type_str(&p.ty), fmt_f64(t), p.name),
                None => print_decl_ty(&p.ty, &p.name),
            })
            .collect();
        let _ = write!(self.out, "{} {}({})", type_str(&f.ret), f.name, params.join(", "));
        match &f.body {
            None => {
                self.out.push_str(";\n");
            }
            Some(body) => {
                self.out.push_str(" {\n");
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line_start();
                self.out.push_str("}\n");
            }
        }
    }

    fn var_decl(&mut self, d: &VarDecl) {
        self.line_start();
        let _ = write!(self.out, "{}", print_decl_ty(&d.ty, &d.name));
        if let Some(init) = &d.init {
            self.out.push_str(" = ");
            self.expr(init, 0);
        }
        self.out.push(';');
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(d) => {
                self.var_decl(d);
                self.out.push('\n');
            }
            Stmt::Expr(e) => {
                self.line_start();
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            Stmt::Block(body) => {
                self.line_start();
                self.out.push_str("{\n");
                self.indent += 1;
                for st in body {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.line_start();
                self.out.push_str("}\n");
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.line_start();
                self.out.push_str("if (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.nested(then_branch);
                if let Some(eb) = else_branch {
                    self.line_start();
                    self.out.push_str("else\n");
                    self.nested(eb);
                }
            }
            Stmt::For { init, cond, step, body } => {
                self.line_start();
                self.out.push_str("for (");
                match init.as_deref() {
                    Some(Stmt::Decl(d)) => {
                        let _ = write!(self.out, "{}", print_decl_ty(&d.ty, &d.name));
                        if let Some(i) = &d.init {
                            self.out.push_str(" = ");
                            self.expr(i, 0);
                        }
                    }
                    Some(Stmt::Expr(e)) => self.expr(e, 0),
                    _ => {}
                }
                self.out.push_str("; ");
                if let Some(c) = cond {
                    self.expr(c, 0);
                }
                self.out.push_str("; ");
                if let Some(st) = step {
                    self.expr(st, 0);
                }
                self.out.push_str(")\n");
                self.nested(body);
            }
            Stmt::While { cond, body } => {
                self.line_start();
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.nested(body);
            }
            Stmt::Switch { cond, arms } => {
                self.line_start();
                self.out.push_str("switch (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.line_start();
                self.out.push_str("{\n");
                for arm in arms {
                    self.line_start();
                    match arm.label {
                        Some(v) => {
                            let _ = writeln!(self.out, "case {v}:");
                        }
                        None => self.out.push_str("default:\n"),
                    }
                    self.indent += 1;
                    for st in &arm.body {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.line_start();
                self.out.push_str("}\n");
            }
            Stmt::DoWhile { body, cond } => {
                self.line_start();
                self.out.push_str("do\n");
                self.nested(body);
                self.line_start();
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(");\n");
            }
            Stmt::Return(e) => {
                self.line_start();
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
                self.out.push_str(";\n");
            }
            Stmt::Break => {
                self.line_start();
                self.out.push_str("break;\n");
            }
            Stmt::Continue => {
                self.line_start();
                self.out.push_str("continue;\n");
            }
            Stmt::Pragma(p) => self.pragma(p),
            Stmt::Empty => {
                self.line_start();
                self.out.push_str(";\n");
            }
        }
    }

    fn nested(&mut self, s: &Stmt) {
        if matches!(s, Stmt::Block(_)) {
            self.stmt(s);
        } else {
            self.indent += 1;
            self.stmt(s);
            self.indent -= 1;
        }
    }

    /// Expression printing with minimal parenthesization: `prec` is the
    /// binding strength of the context; anything looser gets parentheses.
    fn expr(&mut self, e: &Expr, prec: u8) {
        match e {
            Expr::IntLit { text, .. } => self.out.push_str(text),
            Expr::FloatLit { text, f32, tol, .. } => {
                self.out.push_str(text);
                if *f32 {
                    self.out.push('f');
                }
                if *tol {
                    self.out.push('t');
                }
            }
            Expr::Ident(s, _) => self.out.push_str(s),
            Expr::Unary(op, inner) => {
                let needs = prec > 11;
                if needs {
                    self.out.push('(');
                }
                self.out.push_str(match op {
                    UnOp::Neg => "-",
                    UnOp::Plus => "+",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                    UnOp::Deref => "*",
                    UnOp::Addr => "&",
                    UnOp::PreInc => "++",
                    UnOp::PreDec => "--",
                });
                self.expr(inner, 11);
                if needs {
                    self.out.push(')');
                }
            }
            Expr::PostIncDec(inner, inc) => {
                self.expr(inner, 12);
                self.out.push_str(if *inc { "++" } else { "--" });
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let my = bin_prec(*op);
                let needs = prec > my;
                if needs {
                    self.out.push('(');
                }
                self.expr(lhs, my);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr(rhs, my + 1);
                if needs {
                    self.out.push(')');
                }
            }
            Expr::Assign { op, lhs, rhs, .. } => {
                let needs = prec > 0;
                if needs {
                    self.out.push('(');
                }
                self.expr(lhs, 11);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr(rhs, 0);
                if needs {
                    self.out.push(')');
                }
            }
            Expr::Call { name, args, .. } => {
                self.out.push_str(name);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 0);
                }
                self.out.push(')');
            }
            Expr::Index(base, idx) => {
                self.expr(base, 12);
                self.out.push('[');
                self.expr(idx, 0);
                self.out.push(']');
            }
            Expr::Member { base, field, arrow } => {
                self.expr(base, 12);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(field);
            }
            Expr::Cast(ty, inner) => {
                let needs = prec > 11;
                if needs {
                    self.out.push('(');
                }
                let _ = write!(self.out, "({})", type_str(ty));
                self.expr(inner, 11);
                if needs {
                    self.out.push(')');
                }
            }
            Expr::Cond(c, t, f) => {
                let needs = prec > 0;
                if needs {
                    self.out.push('(');
                }
                self.expr(c, 1);
                self.out.push_str(" ? ");
                self.expr(t, 0);
                self.out.push_str(" : ");
                self.expr(f, 0);
                if needs {
                    self.out.push(')');
                }
            }
        }
    }
}

fn bin_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Or => 1,
        And => 2,
        BitOr => 3,
        BitXor => 4,
        BitAnd => 5,
        Eq | Ne => 6,
        Lt | Le | Gt | Ge => 7,
        Shl | Shr => 8,
        Add | Sub => 9,
        Mul | Div | Rem => 10,
    }
}

/// Formats an f64 so that it re-parses to the same value.
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
            s
        } else {
            format!("{s}.0")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let tu1 = parse(src).unwrap();
        let printed = print_unit(&tu1);
        let tu2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Compare modulo literal spelling by printing again.
        assert_eq!(printed, print_unit(&tu2), "unstable printing:\n{printed}");
    }

    #[test]
    fn roundtrip_paper_listings() {
        roundtrip(
            r#"
            double foo(double a, double b) {
                double c;
                c = a + b + 0.1;
                if (c > a) {
                    c = a * c;
                }
                return c;
            }
        "#,
        );
        roundtrip("double read_sensor(double:0.125 a) { double c = 5.0 + 0.25t; return a + c; }");
        roundtrip(
            r#"
            void mvm(double* A, double* x, double* y) {
                #pragma igen reduce y
                for (int i = 0; i < 100; i++)
                    for (int j = 0; j < 500; j++)
                        y[i] = y[i] + A[i*500+j]*x[j];
            }
        "#,
        );
    }

    #[test]
    fn roundtrip_generated_simd_style() {
        roundtrip(
            r#"
            typedef union {
                __m256d v;
                uint64_t i[4];
                double f[4];
            } vec256d;
            __m256d _c_mm256_add_pd(__m256d _a, __m256d _b) {
                vec256d dst, a, b;
                int i, j;
                a.v = _a;
                b.v = _b;
                for (j = 0; j <= 3; ++j) {
                    i = j * 64;
                    dst.f[i/64] = a.f[i/64] + b.f[i/64];
                }
                return dst.v;
            }
        "#,
        );
    }

    #[test]
    fn precedence_parens_preserved_semantically() {
        let tu = parse("int f(void) { return (1 + 2) * 3; }").unwrap();
        let s = print_unit(&tu);
        assert!(s.contains("(1 + 2) * 3"), "{s}");
        let tu = parse("int f(void) { return 1 + 2 * 3; }").unwrap();
        let s = print_unit(&tu);
        assert!(s.contains("1 + 2 * 3"), "{s}");
    }

    #[test]
    fn sub_associativity_parenthesized() {
        // a - (b - c) must keep its parens.
        let tu = parse("int f(int a, int b, int c) { return a - (b - c); }").unwrap();
        let s = print_unit(&tu);
        assert!(s.contains("a - (b - c)"), "{s}");
        let tu2 = parse(&s).unwrap();
        assert_eq!(s, print_unit(&tu2));
    }

    #[test]
    fn types_print_correctly() {
        assert_eq!(type_str(&Type::Ptr(Box::new(Type::Double))), "double*");
        assert_eq!(print_decl_ty(&Type::Array(Box::new(Type::Int), Some(4)), "a"), "int a[4]");
        assert_eq!(
            print_decl_ty(
                &Type::Array(Box::new(Type::Array(Box::new(Type::Double), Some(8))), Some(4)),
                "m"
            ),
            "double m[4][8]"
        );
    }

    #[test]
    #[allow(clippy::excessive_precision)] // next-below-0.1: exact by design
    fn float_formatting_reparses() {
        for v in [0.1, 1.0, 1e300, 4.75, 0.099999999999999992] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
    }

    #[test]
    fn tolerance_params_print() {
        let tu = parse("double f(double:0.25 a) { return a; }").unwrap();
        let s = print_unit(&tu);
        assert!(s.contains("double:0.25 a"), "{s}");
    }
}
