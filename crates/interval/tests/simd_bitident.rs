//! Bit-identity of the packed lane types against the scalar interval
//! operations, across every backend the host supports.
//!
//! `F64Ix2`/`F64Ix4` dispatch to the packed kernels of
//! `igen_round::simd`; this suite forces each backend in turn (portable,
//! SSE2, AVX2+FMA where detected) and checks that every lane of every
//! vector operation equals the scalar `F64I` result bit for bit —
//! including NaN, infinite, subnormal and signed-zero endpoints, which
//! the random generator produces and the deterministic grid guarantees.
//!
//! The backend override is process-global, so every forced section takes
//! a mutex; no other test in this binary touches the lane types outside
//! of it.

use igen_interval::{F64Ix2, F64Ix4, LaneOps, TBool, F64I};
use igen_round::simd::{self, Backend};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes `force_backend` sections (the override is process-global).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(bk: Backend, f: impl FnOnce() -> T) -> T {
    let _guard = BACKEND_LOCK.lock().unwrap();
    simd::force_backend(Some(bk));
    let out = f();
    simd::force_backend(None);
    out
}

fn backends() -> Vec<Backend> {
    [Backend::Portable, Backend::Sse2, Backend::Avx2Fma]
        .into_iter()
        .filter(|&bk| bk <= simd::detected_backend())
        .collect()
}

/// Intervals over the full double range: ordered endpoints from
/// arbitrary doubles, keeping NaN endpoints (unknown bounds) when the
/// generator produces them.
fn iv_any() -> impl Strategy<Value = F64I> {
    (any::<f64>(), any::<f64>()).prop_map(|(x, y)| {
        if x.is_nan() || y.is_nan() {
            F64I::from_neg_lo_hi(x, y)
        } else {
            F64I::new(x.min(y), x.max(y)).expect("ordered")
        }
    })
}

fn same(got: F64I, want: F64I) -> bool {
    got.neg_lo().to_bits() == want.neg_lo().to_bits() && got.hi().to_bits() == want.hi().to_bits()
}

/// Checks every `F64Ix4` and `F64Ix2` operation lane-wise against the
/// scalar ops, under the given backend.
fn check_lanes(bk: Backend, a: [F64I; 4], b: [F64I; 4]) -> Result<(), TestCaseError> {
    // Scalar references, computed outside the forced section (scalar ops
    // never dispatch).
    let want_add: Vec<F64I> = (0..4).map(|i| a[i] + b[i]).collect();
    let want_sub: Vec<F64I> = (0..4).map(|i| a[i] - b[i]).collect();
    let want_mul: Vec<F64I> = (0..4).map(|i| a[i] * b[i]).collect();
    let want_div: Vec<F64I> = (0..4).map(|i| a[i] / b[i]).collect();
    let want_fma: Vec<F64I> = (0..4).map(|i| a[i] * b[i] + a[i]).collect();
    let want_sqrt: Vec<F64I> = (0..4).map(|i| a[i].sqrt()).collect();
    let want_abs: Vec<F64I> = (0..4).map(|i| a[i].abs()).collect();
    let want_sqr: Vec<F64I> = (0..4).map(|i| a[i].sqr()).collect();
    let want_relu: Vec<F64I> = (0..4).map(|i| a[i].max_i(&F64I::ZERO)).collect();
    let want_lt: Vec<TBool> = (0..4).map(|i| a[i].cmp_lt(&b[i])).collect();
    let want_le: Vec<TBool> = (0..4).map(|i| a[i].cmp_le(&b[i])).collect();
    let want_eq: Vec<TBool> = (0..4).map(|i| a[i].cmp_eq(&b[i])).collect();
    let (got4, got2, gotu4, gotu2, gotc4, gotc2) = with_backend(bk, || {
        let va = F64Ix4::from_lanes(a);
        let vb = F64Ix4::from_lanes(b);
        let wa = F64Ix2::from_lanes([a[0], a[1]]);
        let wb = F64Ix2::from_lanes([b[0], b[1]]);
        (
            (va + vb, va - vb, va * vb, va / vb, va.mul_add(vb, va), va.reduce_sum()),
            (wa + wb, wa - wb, wa * wb, wa / wb, wa.mul_add(wb, wa)),
            (va.sqrt(), va.abs(), va.sqr(), va.relu()),
            (wa.sqrt(), wa.abs(), wa.sqr(), wa.relu()),
            (va.cmp_lt(vb), va.cmp_le(vb), va.cmp_eq(vb)),
            (wa.cmp_lt(wb), wa.cmp_le(wb), wa.cmp_eq(wb)),
        )
    });
    let want_red = {
        let mut acc = a[0];
        for x in &a[1..] {
            acc = acc + *x;
        }
        acc
    };
    for i in 0..4 {
        let ctx = format!("{bk:?} lane {i}: a={} b={}", a[i], b[i]);
        prop_assert!(same(got4.0.lane(i), want_add[i]), "x4 add {ctx}");
        prop_assert!(same(got4.1.lane(i), want_sub[i]), "x4 sub {ctx}");
        prop_assert!(same(got4.2.lane(i), want_mul[i]), "x4 mul {ctx}");
        prop_assert!(same(got4.3.lane(i), want_div[i]), "x4 div {ctx}");
        prop_assert!(same(got4.4.lane(i), want_fma[i]), "x4 mul_add {ctx}");
        prop_assert!(same(gotu4.0.lane(i), want_sqrt[i]), "x4 sqrt {ctx}");
        prop_assert!(same(gotu4.1.lane(i), want_abs[i]), "x4 abs {ctx}");
        prop_assert!(same(gotu4.2.lane(i), want_sqr[i]), "x4 sqr {ctx}");
        prop_assert!(same(gotu4.3.lane(i), want_relu[i]), "x4 relu {ctx}");
        prop_assert!(gotc4.0.lane(i) == want_lt[i], "x4 cmp_lt {ctx}");
        prop_assert!(gotc4.1.lane(i) == want_le[i], "x4 cmp_le {ctx}");
        prop_assert!(gotc4.2.lane(i) == want_eq[i], "x4 cmp_eq {ctx}");
    }
    prop_assert!(same(got4.5, want_red), "x4 reduce_sum {bk:?}");
    for i in 0..2 {
        let ctx = format!("{bk:?} lane {i}: a={} b={}", a[i], b[i]);
        prop_assert!(same(got2.0.lane(i), want_add[i]), "x2 add {ctx}");
        prop_assert!(same(got2.1.lane(i), want_sub[i]), "x2 sub {ctx}");
        prop_assert!(same(got2.2.lane(i), want_mul[i]), "x2 mul {ctx}");
        prop_assert!(same(got2.3.lane(i), want_div[i]), "x2 div {ctx}");
        prop_assert!(same(got2.4.lane(i), want_fma[i]), "x2 mul_add {ctx}");
        prop_assert!(same(gotu2.0.lane(i), want_sqrt[i]), "x2 sqrt {ctx}");
        prop_assert!(same(gotu2.1.lane(i), want_abs[i]), "x2 abs {ctx}");
        prop_assert!(same(gotu2.2.lane(i), want_sqr[i]), "x2 sqr {ctx}");
        prop_assert!(same(gotu2.3.lane(i), want_relu[i]), "x2 relu {ctx}");
        prop_assert!(gotc2.0.lane(i) == want_lt[i], "x2 cmp_lt {ctx}");
        prop_assert!(gotc2.1.lane(i) == want_le[i], "x2 cmp_le {ctx}");
        prop_assert!(gotc2.2.lane(i) == want_eq[i], "x2 cmp_eq {ctx}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(800))]

    #[test]
    fn vector_ops_bit_identical_all_backends(
        a0 in iv_any(), a1 in iv_any(), a2 in iv_any(), a3 in iv_any(),
        b0 in iv_any(), b1 in iv_any(), b2 in iv_any(), b3 in iv_any(),
    ) {
        for bk in backends() {
            check_lanes(bk, [a0, a1, a2, a3], [b0, b1, b2, b3])?;
        }
    }
}

/// Deterministic special-endpoint grid, each pair rotated through every
/// lane position on every backend.
#[test]
fn vector_ops_bit_identical_special_grid() {
    let specials = [
        F64I::point(0.0),
        F64I::new(-0.0, 0.0).unwrap(),
        F64I::point(1.0),
        F64I::point(-1.0),
        F64I::point(0.1),
        F64I::new(-2.0, 3.0).unwrap(),
        F64I::new(f64::MIN_POSITIVE, 2.0 * f64::MIN_POSITIVE).unwrap(),
        F64I::new(-f64::from_bits(1), f64::from_bits(1)).unwrap(),
        F64I::new(1e300, f64::MAX).unwrap(),
        F64I::new(-f64::MAX, -1e300).unwrap(),
        F64I::new(f64::NEG_INFINITY, f64::INFINITY).unwrap(),
        F64I::new(1.0, f64::INFINITY).unwrap(),
        F64I::NAI,
        F64I::from_neg_lo_hi(f64::NAN, 1.0),
        F64I::ENTIRE,
    ];
    let benign = F64I::new(1.0, 2.0).unwrap();
    for bk in backends() {
        for &x in &specials {
            for &y in &specials {
                for pos in 0..4 {
                    let mut a = [benign; 4];
                    let mut b = [benign; 4];
                    a[pos] = x;
                    b[pos] = y;
                    if let Err(e) = check_lanes(bk, a, b) {
                        panic!("special grid ({x}, {y}) pos {pos}: {e:?}");
                    }
                }
            }
        }
    }
}
