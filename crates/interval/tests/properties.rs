//! Algebraic property tests of the interval runtime: the textbook
//! interval-arithmetic laws that any sound implementation must satisfy.

use igen_interval::{DdI, F64I};
use proptest::prelude::*;

fn iv() -> impl Strategy<Value = F64I> {
    (-1e9f64..1e9, 0.0f64..1e3).prop_map(|(lo, w)| F64I::new(lo, lo + w).expect("ordered"))
}

fn point_in(i: &F64I, t: f64) -> f64 {
    (i.lo() + t * (i.hi() - i.lo())).clamp(i.lo(), i.hi())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn addition_commutes_and_mul_commutes(a in iv(), b in iv()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn neg_is_involutive_and_flips(a in iv()) {
        prop_assert_eq!(-(-a), a);
        prop_assert_eq!((-a).lo(), -a.hi());
        prop_assert_eq!((-a).hi(), -a.lo());
    }

    #[test]
    fn inclusion_monotonicity(a in iv(), b in iv(), t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        // Subintervals map into subsets: [p,p] op [q,q] ⊆ a op b for
        // points p ∈ a, q ∈ b.
        let p = F64I::point(point_in(&a, t1));
        let q = F64I::point(point_in(&b, t2));
        for (big, small) in [
            (a + b, p + q),
            (a - b, p - q),
            (a * b, p * q),
        ] {
            prop_assert!(big.encloses(&small), "{big} !⊇ {small}");
        }
        if !b.contains(0.0) {
            prop_assert!((a / b).encloses(&(p / q)));
        }
    }

    #[test]
    fn subdistributivity(a in iv(), b in iv(), c in iv()) {
        // a*(b + c) ⊆ a*b + a*c — the classical interval law.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        // Allow 1-ulp slack per endpoint for the outward roundings on
        // different operation orders.
        prop_assert!(
            rhs.lo() <= lhs.lo() + lhs.lo().abs() * 1e-15 + 1e-300
                && lhs.hi() <= rhs.hi() + rhs.hi().abs() * 1e-15 + 1e-300,
            "lhs {lhs} rhs {rhs}"
        );
    }

    #[test]
    fn add_sub_cancellation_contains_original(a in iv(), b in iv()) {
        // (a + b) - b ⊇ a.
        let r = (a + b) - b;
        prop_assert!(r.encloses(&a), "{r} !⊇ {a}");
    }

    #[test]
    fn mul_by_one_and_zero(a in iv()) {
        let one = F64I::ONE;
        prop_assert_eq!(a * one, a);
        let z = a * F64I::ZERO;
        prop_assert!(z.contains(0.0));
        prop_assert!(z.width() == 0.0 || a.lo().abs().max(a.hi().abs()) == f64::INFINITY);
    }

    #[test]
    fn join_is_lub(a in iv(), b in iv()) {
        let j = a.join(&b);
        prop_assert!(j.encloses(&a) && j.encloses(&b));
        // Minimality: endpoints come from the operands.
        prop_assert!(j.lo() == a.lo() || j.lo() == b.lo());
        prop_assert!(j.hi() == a.hi() || j.hi() == b.hi());
    }

    #[test]
    fn meet_is_glb_or_disjoint(a in iv(), b in iv()) {
        match a.meet(&b) {
            Some(m) => {
                prop_assert!(a.encloses(&m) && b.encloses(&m));
            }
            None => {
                prop_assert!(a.hi() < b.lo() || b.hi() < a.lo());
            }
        }
    }

    #[test]
    fn width_is_monotone_under_ops(a in iv(), b in iv()) {
        // Adding can't shrink the width below either operand's width
        // (additive width law, modulo one outward rounding).
        let s = a + b;
        prop_assert!(s.width() >= a.width());
        prop_assert!(s.width() >= b.width());
    }

    #[test]
    fn dd_refines_f64(a in iv(), b in iv()) {
        // The dd result, demoted outward, is never wider than the f64
        // result by more than the demotion rounding.
        let (da, db) = (DdI::from_f64i(&a), DdI::from_f64i(&b));
        for (f, d) in [
            (a + b, (da + db).to_f64i()),
            (a - b, (da - db).to_f64i()),
            (a * b, (da * db).to_f64i()),
        ] {
            prop_assert!(d.width() <= f.width(), "dd {d} wider than f64 {f}");
        }
    }

    #[test]
    fn sqrt_monotone_and_inverse(lo in 0.0f64..1e12, w in 0.0f64..1e6) {
        let a = F64I::new(lo, lo + w).unwrap();
        let s = a.sqrt();
        // s*s ⊇ a.
        let sq = s * s;
        prop_assert!(sq.encloses(&a), "{sq} !⊇ {a}");
    }

    #[test]
    fn abs_properties(a in iv()) {
        let ab = a.abs();
        prop_assert!(ab.lo() >= 0.0);
        prop_assert!(ab.contains(a.lo().abs()) && ab.contains(a.hi().abs()));
    }

    #[test]
    fn comparisons_antisymmetric(a in iv(), b in iv()) {
        use igen_interval::TBool;
        // a < b true  ⇒  b < a false.
        if a.cmp_lt(&b) == TBool::True {
            prop_assert_eq!(b.cmp_lt(&a), TBool::False);
            prop_assert_eq!(a.cmp_ge(&b), TBool::False);
        }
        // eq is symmetric.
        prop_assert_eq!(a.cmp_eq(&b), b.cmp_eq(&a));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn elementary_sound_on_wide_ranges(x in -1e8f64..1e8, w in 0.0f64..10.0, t in 0.0f64..1.0) {
        let a = F64I::new(x, x + w).expect("ordered");
        let p = (x + t * w).clamp(a.lo(), a.hi());
        use igen_interval::elem::*;
        prop_assert!(sin_interval(&a).contains(p.sin()), "sin {a} at {p}");
        prop_assert!(cos_interval(&a).contains(p.cos()), "cos {a} at {p}");
        if a.lo() > 0.0 {
            prop_assert!(log_interval(&a).contains(p.ln()), "log {a} at {p}");
        }
        if x.abs() < 500.0 {
            prop_assert!(exp_interval(&a).contains(p.exp()), "exp {a} at {p}");
        }
        prop_assert!(atan_interval(&a).contains(p.atan()), "atan {a} at {p}");
    }

    /// sqr and powi contain every point power, and sqr refines mul.
    #[test]
    fn powers_contain_point_samples(
        a in iv(),
        n in 0i32..12,
        t in 0.0f64..1.0,
    ) {
        let p = point_in(&a, t);
        let s = a.sqr();
        prop_assert!(s.contains(p * p), "sqr {a} at {p}");
        prop_assert!(s.lo() >= 0.0, "sqr never negative: {s}");
        prop_assert!(a.mul(&a).encloses(&s), "sqr refines mul: {a}");
        let q = a.powi(n);
        // Compare against the true power sampled through widening
        // multiplication of the point (f64::powi itself rounds, so give
        // its result the one-interval slack it deserves).
        let pi = F64I::point(p).powi(n);
        prop_assert!(
            q.encloses(&pi),
            "powi({n}) inclusion-monotone: {a} at {p}: {q} vs {pi}"
        );
    }

    /// powi with negative exponents matches 1/x^n.
    #[test]
    fn negative_powers_are_reciprocals(a in iv(), n in 1i32..8) {
        let direct = a.powi(-n);
        let recip = F64I::point(1.0).div(&a.powi(n));
        // Same construction, so identical endpoints.
        prop_assert_eq!(
            (direct.lo().to_bits(), direct.hi().to_bits()),
            (recip.lo().to_bits(), recip.hi().to_bits())
        );
    }

    /// atan enclosures are tight (a few ulps) and ordered with respect to
    /// the true monotone function.
    #[test]
    fn atan_point_tight_and_monotone(x in -1e12f64..1e12, y in -1e12f64..1e12) {
        use igen_interval::elem::atan_point;
        let (lo, hi) = atan_point(x);
        prop_assert!(lo <= x.atan() && x.atan() <= hi, "containment at {x}");
        prop_assert!(igen_round::ulps_between(lo, hi) <= 8, "width at {x}: [{lo}, {hi}]");
        let (xl, xh) = (lo, hi);
        let (yl, yh) = atan_point(y);
        if x <= y {
            prop_assert!(xl <= yh, "monotone: atan({x}) vs atan({y})");
        } else {
            prop_assert!(yl <= xh);
        }
    }
}
