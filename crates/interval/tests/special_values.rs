//! The Section IV-A special-value battery: NaN, infinities, zeros and
//! denormals in interval endpoints must be handled soundly — "we
//! randomly tested combinations of NaNs, infinity, Zero and other special
//! inputs such as denormals in the endpoints of intervals".

use igen_interval::elem;
use igen_interval::{DdI, TBool, F64I};

const TINY: f64 = 5e-324; // smallest subnormal

#[test]
fn paper_examples_verbatim() {
    // sqrt([-1, 1]) = [NaN, 1].
    let s = F64I::new(-1.0, 1.0).unwrap().sqrt();
    assert!(s.lo().is_nan());
    assert_eq!(s.hi(), 1.0);

    // [-inf, inf]: any floating-point except NaN.
    let entire = F64I::ENTIRE;
    assert!(entire.contains(f64::MAX) && entire.contains(-f64::MAX) && entire.contains(0.0));

    // [inf, inf]: larger than the maximum representable float.
    let overflow = F64I::new(f64::INFINITY, f64::INFINITY).unwrap();
    assert!(!overflow.contains(f64::MAX));
    assert!(overflow.contains(f64::INFINITY));

    // [1, inf]: any value >= 1.
    let ge1 = F64I::new(1.0, f64::INFINITY).unwrap();
    assert!(ge1.contains(1.0) && ge1.contains(1e308) && !ge1.contains(0.999));
}

#[test]
fn nan_is_viral_through_arithmetic() {
    let nai = F64I::NAI;
    let x = F64I::new(1.0, 2.0).unwrap();
    for r in [nai + x, nai - x, nai * x, nai / x, x / nai, -nai, nai.abs(), nai.sqrt()] {
        assert!(r.has_nan(), "{r}");
    }
    // NaN intervals are Unknown in comparisons (never decide a branch).
    assert_eq!(nai.cmp_lt(&x), TBool::Unknown);
    assert_eq!(x.cmp_gt(&nai), TBool::Unknown);
}

#[test]
fn infinity_arithmetic_stays_sound() {
    let pos = F64I::new(1.0, f64::INFINITY).unwrap();
    let neg = F64I::new(f64::NEG_INFINITY, -1.0).unwrap();
    // inf + (-inf) style cancellations must degrade to NaN/entire, never
    // produce a bogus finite bound.
    let s = pos + neg;
    assert!(s.has_nan() || (s.lo() == f64::NEG_INFINITY && s.hi() == f64::INFINITY));
    // inf * positive stays inf-bounded.
    let p = pos * F64I::new(2.0, 3.0).unwrap();
    assert_eq!(p.hi(), f64::INFINITY);
    assert_eq!(p.lo(), 2.0);
    // Entire absorbs addition.
    let e = F64I::ENTIRE + F64I::point(42.0);
    assert_eq!((e.lo(), e.hi()), (f64::NEG_INFINITY, f64::INFINITY));
}

#[test]
fn denormal_endpoints() {
    let d = F64I::new(TINY, 3.0 * TINY).unwrap();
    let s = d + d;
    assert!(s.contains(2.0 * TINY) && s.contains(6.0 * TINY));
    let p = d * F64I::point(0.5);
    // Halving subnormals rounds outward soundly.
    assert!(p.lo() <= TINY * 0.5 && TINY * 1.5 <= p.hi());
    assert!(p.lo() >= 0.0);
    // Squaring the smallest subnormal underflows to [0, tiny].
    let sq = d * d;
    assert!(sq.lo() >= 0.0 && sq.hi() > 0.0);
    assert!(sq.contains(0.0) || sq.lo() > 0.0);
}

#[test]
fn division_by_zero_family() {
    let one = F64I::ONE;
    // [0,0] divisor: entire.
    let q = one / F64I::ZERO;
    assert_eq!((q.lo(), q.hi()), (f64::NEG_INFINITY, f64::INFINITY));
    // Positive divisor touching zero: entire (sound; the paper's library
    // loses the sign refinement rather than risking unsoundness).
    let q = one / F64I::new(0.0, 1.0).unwrap();
    assert_eq!(q.hi(), f64::INFINITY);
    // 0/positive is exactly zero.
    let q = F64I::ZERO / F64I::new(1.0, 2.0).unwrap();
    assert_eq!((q.lo(), q.hi()), (0.0, 0.0));
}

#[test]
fn signed_zero_does_not_flip_bounds() {
    let a = F64I::new(-0.0, 0.0).unwrap();
    let b = F64I::new(0.0, 0.0).unwrap();
    assert!(a.contains(0.0) && b.contains(-0.0));
    let s = a + b;
    assert!(s.contains(0.0));
    let p = a * F64I::new(-5.0, 5.0).unwrap();
    assert!(p.contains(0.0));
}

#[test]
fn elementary_functions_on_specials() {
    // exp of entire: [0, inf].
    let e = elem::exp_interval(&F64I::ENTIRE);
    assert!(e.lo() >= 0.0);
    assert_eq!(e.hi(), f64::INFINITY);
    // log of [0, 1]: [-inf, <=0].
    let l = elem::log_interval(&F64I::new(0.0, 1.0).unwrap());
    assert_eq!(l.lo(), f64::NEG_INFINITY);
    assert!(l.hi() >= 0.0 && l.hi() < 1e-10);
    // log touching negative territory: NaN lower bound.
    let l = elem::log_interval(&F64I::new(-1.0, 1.0).unwrap());
    assert!(l.lo().is_nan());
    // trig of NaN intervals: NaN.
    assert!(elem::sin_interval(&F64I::NAI).has_nan());
    // trig of infinite intervals: [-1, 1].
    let s = elem::sin_interval(&F64I::ENTIRE);
    assert_eq!((s.lo(), s.hi()), (-1.0, 1.0));
}

#[test]
fn dd_specials_mirror_f64() {
    let nai = DdI::nai();
    let x = DdI::point_f64(2.0);
    assert!((nai + x).has_nan());
    assert!((nai * x).has_nan());
    let s = DdI::new(igen_dd::Dd::from(-1.0), igen_dd::Dd::from(4.0)).unwrap().sqrt();
    assert!(s.lo().is_nan());
    assert_eq!(s.hi().to_f64(), 2.0);
    let e = x / DdI::new(igen_dd::Dd::from(-1.0), igen_dd::Dd::from(1.0)).unwrap();
    assert!(e.hi().to_f64().is_infinite());
}

#[test]
fn overflow_saturation_keeps_finite_side() {
    // MAX + MAX overflows upward only; the lower bound stays finite.
    let big = F64I::point(f64::MAX);
    let s = big + big;
    assert_eq!(s.hi(), f64::INFINITY);
    assert_eq!(s.lo(), f64::MAX); // RD(MAX+MAX) = MAX
    let m = big * F64I::point(2.0);
    assert_eq!(m.hi(), f64::INFINITY);
    assert!(m.lo().is_finite());
}

#[test]
fn accuracy_metric_on_specials() {
    assert_eq!(F64I::NAI.certified_bits(), 0.0);
    assert_eq!(F64I::ENTIRE.certified_bits(), 0.0);
    assert_eq!(F64I::new(1.0, f64::INFINITY).unwrap().certified_bits(), 0.0);
    assert_eq!(F64I::point(TINY).certified_bits(), 53.0);
}
