//! MPFI-style validation of the interval runtime (the paper's Section
//! IV-A testing methodology): every operation's result must enclose the
//! 256-bit oracle's outward-rounded result, for random inputs including
//! NaN, infinity, zero and denormals in the endpoints.

use igen_interval::{DdI, TBool, F64I};
use igen_mpf::{Mpf, MpfInterval, Rm};
use proptest::prelude::*;

/// Random endpoint values, biased toward awkward cases (the paper:
/// "we randomly tested combinations of NaNs, infinity, zero and other
/// special inputs such as denormals").
fn endpoint() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -1e9f64..1e9,
        3 => any::<f64>().prop_filter("finite", |x| x.is_finite()),
        1 => prop_oneof![
            Just(0.0f64),
            Just(-0.0),
            Just(f64::from_bits(1)),
            Just(-f64::from_bits(7)),
            Just(f64::MIN_POSITIVE),
            Just(f64::MAX),
            Just(-f64::MAX),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
        ],
    ]
}

fn any_interval() -> impl Strategy<Value = F64I> {
    (endpoint(), endpoint()).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        F64I::new(lo, hi).expect("ordered")
    })
}

/// Check: the runtime interval `got` encloses the oracle interval `want`
/// (the runtime may be wider — soundness — but within 2 ulps per side).
fn check_encloses(tag: &str, got: &F64I, want: &MpfInterval) -> Result<(), TestCaseError> {
    // NaN endpoints in got absorb everything: fine.
    let want_lo = want.lo().to_f64(Rm::Down);
    let want_hi = want.hi().to_f64(Rm::Up);
    if !want_lo.is_nan() && !got.lo().is_nan() {
        prop_assert!(
            got.lo() <= want_lo,
            "{tag}: lower bound {} above oracle {}",
            got.lo(),
            want_lo
        );
        // Tightness within 2 quanta (outside the documented conservative
        // deep-subnormal region of the division/sqrt kernels).
        if want_lo.is_finite() && want_lo.abs() > 1e-250 {
            prop_assert!(
                got.lo() >= igen_round::next_down(igen_round::next_down(want_lo)),
                "{tag}: lower bound too loose: {} vs {}",
                got.lo(),
                want_lo
            );
        }
    }
    if !want_hi.is_nan() && !got.hi().is_nan() {
        prop_assert!(
            got.hi() >= want_hi,
            "{tag}: upper bound {} below oracle {}",
            got.hi(),
            want_hi
        );
        if want_hi.is_finite() && want_hi.abs() > 1e-250 {
            prop_assert!(
                got.hi() <= igen_round::next_up(igen_round::next_up(want_hi)),
                "{tag}: upper bound too loose: {} vs {}",
                got.hi(),
                want_hi
            );
        }
    }
    Ok(())
}

fn to_oracle(x: &F64I) -> MpfInterval {
    MpfInterval::new(Mpf::from_f64(x.lo()), Mpf::from_f64(x.hi()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1200))]

    #[test]
    fn add_encloses_oracle(a in any_interval(), b in any_interval()) {
        check_encloses("add", &(a + b), &to_oracle(&a).add(&to_oracle(&b)))?;
    }

    #[test]
    fn sub_encloses_oracle(a in any_interval(), b in any_interval()) {
        check_encloses("sub", &(a - b), &to_oracle(&a).sub(&to_oracle(&b)))?;
    }

    #[test]
    fn mul_encloses_oracle(a in any_interval(), b in any_interval()) {
        check_encloses("mul", &(a * b), &to_oracle(&a).mul(&to_oracle(&b)))?;
    }

    #[test]
    fn div_encloses_oracle(a in any_interval(), b in any_interval()) {
        check_encloses("div", &(a / b), &to_oracle(&a).div(&to_oracle(&b)))?;
    }

    #[test]
    fn sqrt_encloses_oracle(a in any_interval()) {
        check_encloses("sqrt", &a.sqrt(), &to_oracle(&a).sqrt())?;
    }

    #[test]
    fn point_sampling_containment(a in any_interval(), b in any_interval(),
                                  ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
        // Sample points inside a and b; every op result must contain the
        // oracle evaluation at those points.
        prop_assume!(a.lo().is_finite() && a.hi().is_finite());
        prop_assume!(b.lo().is_finite() && b.hi().is_finite());
        let pa = a.lo() + ta * (a.hi() - a.lo());
        let pb = b.lo() + tb * (b.hi() - b.lo());
        prop_assume!(pa.is_finite() && pb.is_finite());
        let pa = pa.clamp(a.lo(), a.hi());
        let pb = pb.clamp(b.lo(), b.hi());
        let (oa, ob) = (Mpf::from_f64(pa), Mpf::from_f64(pb));
        let sum = (a + b, oa.add(&ob, Rm::Nearest));
        let dif = (a - b, oa.sub(&ob, Rm::Nearest));
        let prd = (a * b, oa.mul(&ob, Rm::Nearest));
        for (tag, (iv, point)) in [("add", sum), ("sub", dif), ("mul", prd)] {
            // The oracle value is exact (or 256-bit-rounded, far inside
            // the f64-width interval): bound it loosely by f64 rounding.
            let v = point.to_f64(Rm::Nearest);
            if v.is_finite() {
                prop_assert!(iv.contains(v) || iv.has_nan(),
                    "{tag}: {iv} does not contain {v} (points {pa}, {pb})");
            }
        }
    }

    #[test]
    fn dd_interval_encloses_oracle(a in any_interval(), b in any_interval()) {
        prop_assume!(!a.has_nan() && !b.has_nan());
        let da = DdI::from_f64i(&a);
        let db = DdI::from_f64i(&b);
        let oa = to_oracle(&a);
        let ob = to_oracle(&b);
        for (tag, got, want) in [
            ("dd add", da + db, oa.add(&ob)),
            ("dd sub", da - db, oa.sub(&ob)),
            ("dd mul", da * db, oa.mul(&ob)),
            ("dd div", da / db, oa.div(&ob)),
        ] {
            // dd results, demoted outward to f64, must enclose the oracle.
            check_encloses(tag, &got.to_f64i(), &want)?;
        }
    }

    /// powi must contain the 256-bit power of every sampled point
    /// (directed repeated Mpf multiplication brackets the true x^n).
    #[test]
    fn powi_contains_oracle_point_powers(
        a in any_interval(),
        n in 1u32..10,
        t in 0.0f64..1.0,
    ) {
        prop_assume!(!a.has_nan());
        let lo = a.lo().max(-1e30);
        let hi = a.hi().min(1e30);
        prop_assume!(lo <= hi);
        let a = F64I::new(lo, hi).expect("ordered");
        let p = (lo + t * (hi - lo)).clamp(lo, hi);
        prop_assume!(p.is_finite());
        // Oracle: p^n with directed rounding on both sides; widening to
        // the min/max of the four directed candidates keeps a bracket of
        // the true power regardless of sign.
        let mut olo = Mpf::from_f64(1.0);
        let mut ohi = Mpf::from_f64(1.0);
        let pm = Mpf::from_f64(p);
        for _ in 0..n {
            let c1 = olo.mul(&pm, Rm::Down);
            let c2 = olo.mul(&pm, Rm::Up);
            let c3 = ohi.mul(&pm, Rm::Down);
            let c4 = ohi.mul(&pm, Rm::Up);
            let mut lo_new = c1;
            let mut hi_new = c1;
            for c in [c2, c3, c4] {
                if c.cmp_num(&lo_new) == Some(core::cmp::Ordering::Less) {
                    lo_new = c;
                }
                if c.cmp_num(&hi_new) == Some(core::cmp::Ordering::Greater) {
                    hi_new = c;
                }
            }
            olo = lo_new;
            ohi = hi_new;
        }
        let r = a.powi(n as i32);
        let tlo = olo.to_f64(Rm::Down);
        let thi = ohi.to_f64(Rm::Up);
        prop_assert!(
            r.lo() <= tlo && thi <= r.hi(),
            "powi({n}) of {a} at p={p}: [{tlo}, {thi}] outside {r}"
        );
    }

    #[test]
    fn comparison_consistency(a in any_interval(), b in any_interval(),
                              ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
        prop_assume!(a.lo().is_finite() && a.hi().is_finite());
        prop_assume!(b.lo().is_finite() && b.hi().is_finite());
        let pa = (a.lo() + ta * (a.hi() - a.lo())).clamp(a.lo(), a.hi());
        let pb = (b.lo() + tb * (b.hi() - b.lo())).clamp(b.lo(), b.hi());
        prop_assume!(pa.is_finite() && pb.is_finite());
        // A definite tbool answer must agree with every point sample.
        match a.cmp_lt(&b) {
            TBool::True => prop_assert!(pa < pb),
            TBool::False => prop_assert!(pa >= pb),
            TBool::Unknown => {}
        }
        match a.cmp_le(&b) {
            TBool::True => prop_assert!(pa <= pb),
            TBool::False => prop_assert!(pa > pb),
            TBool::Unknown => {}
        }
    }

    #[test]
    fn join_and_meet_are_lattice_ops(a in any_interval(), b in any_interval(),
                                     t in 0.0f64..1.0) {
        prop_assume!(!a.has_nan() && !b.has_nan());
        prop_assume!(a.lo().is_finite() && a.hi().is_finite());
        let p = (a.lo() + t * (a.hi() - a.lo())).clamp(a.lo(), a.hi());
        prop_assume!(p.is_finite());
        prop_assert!(a.join(&b).contains(p));
        if let Some(m) = a.meet(&b) {
            if b.contains(p) {
                prop_assert!(m.contains(p));
            }
        } else {
            // Disjoint: no point of a is in b.
            prop_assert!(!b.contains(p));
        }
    }

    #[test]
    fn elementary_functions_contain_libm(x in -700.0f64..700.0) {
        // libm values are within 1-2 ulp of the truth; our enclosures are
        // certified to contain the truth, so they must contain libm up to
        // 2 ulps of slack. Testing direct containment of libm is stricter
        // than required but passes because the enclosures are ~4 ulps.
        use igen_interval::elem::*;
        let (lo, hi) = exp_point(x);
        prop_assert!(lo <= x.exp() && x.exp() <= hi, "exp({x})");
        if x > 0.0 {
            let (lo, hi) = log_point(x);
            prop_assert!(lo <= x.ln() && x.ln() <= hi, "log({x})");
        }
        let (lo, hi) = sin_point(x);
        prop_assert!(lo <= x.sin() && x.sin() <= hi, "sin({x})");
        let (lo, hi) = cos_point(x);
        prop_assert!(lo <= x.cos() && x.cos() <= hi, "cos({x})");
    }

    #[test]
    fn accumulators_enclose_oracle_sum(terms in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut acc = igen_interval::SumAcc64::new(F64I::ZERO);
        let mut acc_dd = igen_interval::SumAccDd::new(DdI::ZERO);
        let mut oracle = Mpf::ZERO;
        for &t in &terms {
            acc.accumulate(&F64I::point(t));
            acc_dd.accumulate(&DdI::point_f64(t));
            oracle = oracle.add(&Mpf::from_f64(t), Rm::Nearest); // exact
        }
        let s = acc.reduce();
        let v = oracle.to_f64(Rm::Nearest);
        prop_assert!(s.contains(v), "SumAcc64 {s} misses {v}");
        let sd = acc_dd.reduce().to_f64i();
        prop_assert!(sd.contains(v), "SumAccDd {sd} misses {v}");
        // The dd accumulator is exact: its width demoted to f64 is <= 1 ulp.
        prop_assert!(igen_round::ulps_between(sd.lo(), sd.hi()) <= 2);
    }
}
