//! Soundness tests of the double-double trig enclosures used for DD
//! twiddle factors, via mathematical identities (there is no external
//! high-precision trig oracle in the workspace).

use igen_dd::{add_dir, mul_dir, Dd};
use igen_interval::elem::{cos_enclose_dd, sin_enclose_dd};
use igen_round::{Rd, Rn, Ru};
use proptest::prelude::*;

fn dd_interval_mul(lo: Dd, hi: Dd) -> (Dd, Dd) {
    // Square of a dd interval [lo, hi] around values in [-1, 1].
    let cands = [mul_dir::<Rd>(lo, lo), mul_dir::<Rd>(lo, hi), mul_dir::<Rd>(hi, hi)];
    let cands_hi = [mul_dir::<Ru>(lo, lo), mul_dir::<Ru>(lo, hi), mul_dir::<Ru>(hi, hi)];
    let mut mn = cands[0];
    let mut mx = cands_hi[0];
    for c in &cands[1..] {
        if c.lt(&mn) {
            mn = *c;
        }
    }
    for c in &cands_hi[1..] {
        if mx.lt(c) {
            mx = *c;
        }
    }
    (mn, mx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn pythagorean_identity_at_dd_precision(x in -100.0f64..100.0) {
        let (slo, shi) = sin_enclose_dd(x);
        let (clo, chi) = cos_enclose_dd(x);
        let (s2lo, s2hi) = dd_interval_mul(slo, shi);
        let (c2lo, c2hi) = dd_interval_mul(clo, chi);
        let lo = add_dir::<Rd>(s2lo, c2lo);
        let hi = add_dir::<Ru>(s2hi, c2hi);
        // 1 must be inside, and the enclosure must be dd-tight
        // (width < 2^-85; the reduction bound allows |n|·2^-103).
        prop_assert!(lo.le(&Dd::ONE) && Dd::ONE.le(&hi),
            "sin²+cos²({x}) = [{lo}, {hi}]");
        let width = add_dir::<Rn>(hi, lo.neg());
        prop_assert!(width.to_f64() < 2f64.powi(-80), "width {width} at {x}");
    }

    #[test]
    fn dd_enclosures_contain_libm(x in -1e6f64..1e6) {
        let (slo, shi) = sin_enclose_dd(x);
        let s = Dd::from(x.sin());
        // libm is within ~1 ulp of truth; the dd enclosure must be within
        // 2 f64-ulps of it.
        let pad = Dd::from(2.0 * igen_round::ulp(x.sin().abs().max(1e-300)));
        prop_assert!(add_dir::<Rn>(slo, pad.neg()).le(&s));
        prop_assert!(s.le(&add_dir::<Rn>(shi, pad)));
        let (clo, chi) = cos_enclose_dd(x);
        let c = Dd::from(x.cos());
        let padc = Dd::from(2.0 * igen_round::ulp(x.cos().abs().max(1e-300)));
        prop_assert!(add_dir::<Rn>(clo, padc.neg()).le(&c));
        prop_assert!(c.le(&add_dir::<Rn>(chi, padc)));
    }

    #[test]
    fn periodicity_consistency(k in -50i64..50) {
        // sin at exact multiples of 2π(f64-approx): enclosures of nearby
        // angles must overlap coherently: sin(x) ⊆ sin(x + 2π) ± reduction
        // error. We check that both enclosures intersect.
        let x = 0.7 + k as f64 * 2.0 * std::f64::consts::PI;
        let (alo, ahi) = sin_enclose_dd(0.7);
        let (blo, bhi) = sin_enclose_dd(x);
        // Two error sources: k·(2π_f64 − 2π) ≈ |k|·2.5e-16, and the f64
        // rounding of the sum 0.7 + k·2π itself (one ulp of |x|). Widen
        // by both and require overlap.
        let slack = Dd::from(
            1e-15 * (k.abs() as f64 + 1.0) + 2.0 * igen_round::ulp(x.abs() + 1.0),
        );
        let a_lo_w = add_dir::<Rn>(alo, slack.neg());
        let a_hi_w = add_dir::<Rn>(ahi, slack);
        prop_assert!(a_lo_w.le(&bhi) && blo.le(&a_hi_w),
            "no overlap at k={k}: [{alo},{ahi}] vs [{blo},{bhi}]");
    }
}
