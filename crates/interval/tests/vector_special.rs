//! Special-value lane coverage for the vector types with the portable
//! fallback pinned.
//!
//! This suite is deliberately independent of the SIMD bit-identity
//! tests: it forces `Backend::Portable` for every check, so the
//! lane-loop fallback's handling of NaN, infinite, subnormal and
//! signed-zero endpoints is pinned on every host — including ones where
//! no packed backend exists and `simd_bitident` would only ever see the
//! portable path incidentally. It also covers the `DdIx2`/`DdIx4` lane
//! types, which never dispatch to packed kernels at all.
//!
//! The backend override is process-global, so every pinned section takes
//! a mutex; no other test in this binary touches the lane types outside
//! of it.

use igen_interval::{DdI, DdIx2, DdIx4, F64Ix2, F64Ix4, LaneOps, F64I};
use igen_round::simd::{self, Backend};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes `force_backend` sections (the override is process-global).
static PIN_LOCK: Mutex<()> = Mutex::new(());

fn pinned_portable<T>(f: impl FnOnce() -> T) -> T {
    let _guard = PIN_LOCK.lock().unwrap();
    simd::force_backend(Some(Backend::Portable));
    let out = f();
    simd::force_backend(None);
    out
}

fn same(got: F64I, want: F64I) -> bool {
    got.neg_lo().to_bits() == want.neg_lo().to_bits() && got.hi().to_bits() == want.hi().to_bits()
}

/// Endpoint catalogue skewed towards IEEE edge cases.
fn special_endpoint() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.0),
        Just(-1.5),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        Just(f64::MIN_POSITIVE),
        Just(-f64::MIN_POSITIVE),
        Just(f64::from_bits(1)),
        Just(-f64::from_bits(1)),
        Just(f64::from_bits(0x000f_ffff_ffff_ffff)),
        Just(f64::MAX),
        Just(-f64::MAX),
        any::<f64>(),
    ]
}

/// Intervals whose endpoints come from the special catalogue.
fn iv_special() -> impl Strategy<Value = F64I> {
    (special_endpoint(), special_endpoint()).prop_map(|(x, y)| {
        if x.is_nan() || y.is_nan() {
            F64I::from_neg_lo_hi(x, y)
        } else {
            F64I::new(x.min(y), x.max(y)).expect("ordered")
        }
    })
}

fn check_portable(a: [F64I; 4], b: [F64I; 4]) -> Result<(), TestCaseError> {
    let got = pinned_portable(|| {
        let va = F64Ix4::from_lanes(a);
        let vb = F64Ix4::from_lanes(b);
        let wa = F64Ix2::from_lanes([a[0], a[1]]);
        let wb = F64Ix2::from_lanes([b[0], b[1]]);
        (
            (va + vb, va - vb, va * vb, va / vb, va.mul_add(vb, va), -va),
            (va.sqrt(), va.abs(), va.sqr(), va.relu()),
            (va.cmp_lt(vb), va.cmp_le(vb), va.cmp_eq(vb)),
            (wa + wb, wa * wb, wa / wb, wa.sqrt(), wa.abs(), wa.sqr()),
        )
    });
    for i in 0..4 {
        let ctx = format!("portable lane {i}: a={} b={}", a[i], b[i]);
        prop_assert!(same(got.0 .0.lane(i), a[i] + b[i]), "x4 add {ctx}");
        prop_assert!(same(got.0 .1.lane(i), a[i] - b[i]), "x4 sub {ctx}");
        prop_assert!(same(got.0 .2.lane(i), a[i] * b[i]), "x4 mul {ctx}");
        prop_assert!(same(got.0 .3.lane(i), a[i] / b[i]), "x4 div {ctx}");
        prop_assert!(same(got.0 .4.lane(i), a[i] * b[i] + a[i]), "x4 mul_add {ctx}");
        prop_assert!(same(got.0 .5.lane(i), -a[i]), "x4 neg {ctx}");
        prop_assert!(same(got.1 .0.lane(i), a[i].sqrt()), "x4 sqrt {ctx}");
        prop_assert!(same(got.1 .1.lane(i), a[i].abs()), "x4 abs {ctx}");
        prop_assert!(same(got.1 .2.lane(i), a[i].sqr()), "x4 sqr {ctx}");
        prop_assert!(same(got.1 .3.lane(i), a[i].max_i(&F64I::ZERO)), "x4 relu {ctx}");
        prop_assert!(got.2 .0.lane(i) == a[i].cmp_lt(&b[i]), "x4 cmp_lt {ctx}");
        prop_assert!(got.2 .1.lane(i) == a[i].cmp_le(&b[i]), "x4 cmp_le {ctx}");
        prop_assert!(got.2 .2.lane(i) == a[i].cmp_eq(&b[i]), "x4 cmp_eq {ctx}");
    }
    for i in 0..2 {
        let ctx = format!("portable lane {i}: a={} b={}", a[i], b[i]);
        prop_assert!(same(got.3 .0.lane(i), a[i] + b[i]), "x2 add {ctx}");
        prop_assert!(same(got.3 .1.lane(i), a[i] * b[i]), "x2 mul {ctx}");
        prop_assert!(same(got.3 .2.lane(i), a[i] / b[i]), "x2 div {ctx}");
        prop_assert!(same(got.3 .3.lane(i), a[i].sqrt()), "x2 sqrt {ctx}");
        prop_assert!(same(got.3 .4.lane(i), a[i].abs()), "x2 abs {ctx}");
        prop_assert!(same(got.3 .5.lane(i), a[i].sqr()), "x2 sqr {ctx}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    #[test]
    fn portable_lane_ops_match_scalar_on_special_lanes(
        a0 in iv_special(), a1 in iv_special(), a2 in iv_special(), a3 in iv_special(),
        b0 in iv_special(), b1 in iv_special(), b2 in iv_special(), b3 in iv_special(),
    ) {
        check_portable([a0, a1, a2, a3], [b0, b1, b2, b3])?;
    }
}

/// Soundness shape checks the portable path must preserve on special
/// lanes: NaN endpoints poison only their own lane, and an interval
/// straddling zero makes only its own division lane unbounded/NaN.
#[test]
fn portable_special_lanes_stay_isolated() {
    let benign = F64I::new(2.0, 3.0).unwrap();
    for pos in 0..4 {
        let mut a = [benign; 4];
        a[pos] = F64I::NAI;
        let (sum, quot) = pinned_portable(|| {
            let va = F64Ix4::from_lanes(a);
            let vb = F64Ix4::splat(benign);
            (va + vb, vb / va)
        });
        for i in 0..4 {
            assert_eq!(sum.lane(i).has_nan(), i == pos, "add lane {i}, NaN at {pos}");
            assert_eq!(quot.lane(i).has_nan(), i == pos, "div lane {i}, NaN at {pos}");
        }

        let mut d = [benign; 4];
        d[pos] = F64I::new(-1.0, 1.0).unwrap();
        let quot = pinned_portable(|| F64Ix4::splat(benign) / F64Ix4::from_lanes(d));
        for i in 0..4 {
            let q = quot.lane(i);
            if i == pos {
                assert!(
                    q.hi().is_infinite() || q.has_nan(),
                    "zero-straddling divisor lane must be unbounded, got {q}"
                );
            } else {
                assert!(same(q, benign / benign), "lane {i} contaminated: {q}");
            }
        }
    }
}

/// Double-double lane types: lane ops match scalar `DdI` ops bit for bit
/// on special values too. `DdIx{2,4}` never dispatch to packed kernels,
/// but their lane loops are pinned here alongside the f64 ones.
#[test]
fn dd_lane_ops_match_scalar_on_special_values() {
    fn dd_bits(x: &DdI) -> [u64; 4] {
        [
            x.neg_lo().hi().to_bits(),
            x.neg_lo().lo().to_bits(),
            x.hi().hi().to_bits(),
            x.hi().lo().to_bits(),
        ]
    }
    let vals = [
        DdI::point_f64(0.0),
        DdI::point_f64(-0.0),
        DdI::point_f64(1.0),
        DdI::point_f64(0.1),
        DdI::point_f64(f64::MIN_POSITIVE),
        DdI::point_f64(f64::from_bits(1)),
        DdI::point_f64(1e300),
        DdI::point_f64(f64::INFINITY),
        DdI::point_f64(f64::NAN),
    ];
    for &x in &vals {
        for &y in &vals {
            for pos in 0..4 {
                let benign = DdI::point_f64(2.0);
                let mut a = [benign; 4];
                let mut b = [benign; 4];
                a[pos] = x;
                b[pos] = y;
                let va = DdIx4::from_lanes(a);
                let vb = DdIx4::from_lanes(b);
                let wa = DdIx2::from_lanes([a[0], a[1]]);
                let wb = DdIx2::from_lanes([b[0], b[1]]);
                let (s4, p4) = (va + vb, va * vb);
                let (s2, p2) = (wa + wb, wa * wb);
                let (q4, m4, r4) = (va.sqrt(), va.abs(), va.sqr());
                let (lt4, le4, eq4) = (va.cmp_lt(vb), va.cmp_le(vb), va.cmp_eq(vb));
                for i in 0..4 {
                    assert_eq!(dd_bits(&s4.lane(i)), dd_bits(&(a[i] + b[i])), "ddx4 add lane {i}");
                    assert_eq!(dd_bits(&p4.lane(i)), dd_bits(&(a[i] * b[i])), "ddx4 mul lane {i}");
                    assert_eq!(dd_bits(&q4.lane(i)), dd_bits(&a[i].sqrt()), "ddx4 sqrt lane {i}");
                    assert_eq!(dd_bits(&m4.lane(i)), dd_bits(&a[i].abs()), "ddx4 abs lane {i}");
                    assert_eq!(dd_bits(&r4.lane(i)), dd_bits(&a[i].sqr()), "ddx4 sqr lane {i}");
                    assert_eq!(lt4.lane(i), a[i].cmp_lt(&b[i]), "ddx4 cmp_lt lane {i}");
                    assert_eq!(le4.lane(i), a[i].cmp_le(&b[i]), "ddx4 cmp_le lane {i}");
                    assert_eq!(eq4.lane(i), a[i].cmp_eq(&b[i]), "ddx4 cmp_eq lane {i}");
                }
                for i in 0..2 {
                    assert_eq!(dd_bits(&s2.lane(i)), dd_bits(&(a[i] + b[i])), "ddx2 add lane {i}");
                    assert_eq!(dd_bits(&p2.lane(i)), dd_bits(&(a[i] * b[i])), "ddx2 mul lane {i}");
                }
            }
        }
    }
}
