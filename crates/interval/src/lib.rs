//! `igen-interval`: the IGen interval runtime library (Section IV-A).
//!
//! This is the library the IGen compiler's output links against,
//! reproduced in Rust: fast, sound interval arithmetic with
//!
//! * double-precision intervals [`F64I`] in the negated-lower-endpoint
//!   representation (upward rounding only, branch-free multiplication),
//!   plus single-precision intervals [`F32I`] (Section III's `f32i`
//!   target);
//! * double-double intervals [`DdI`] (Section VI-A) able to certify
//!   double-precision results;
//! * three-valued booleans [`TBool`] for interval comparisons in branch
//!   conditions;
//! * packed lane types ([`F64Ix2`], [`F64Ix4`], [`DdIx2`], [`DdIx4`])
//!   mirroring the SSE/AVX layouts of Table II;
//! * rigorous elementary functions ([`elem`], the CRlibm substitute);
//! * the accurate reduction accumulators of Section VI-B ([`SumAcc64`],
//!   [`SumAccDd`]);
//! * the accuracy metric of the evaluation section ([`accuracy`]);
//! * and the C-runtime facade ([`capi`]) exposing everything under the
//!   `ia_*` names used by generated code.
//!
//! # Example
//!
//! ```
//! use igen_interval::F64I;
//!
//! // A Henon-map step, soundly:
//! let a = F64I::enclose_decimal(1.05);
//! let b = F64I::enclose_decimal(0.3);
//! let (mut x, mut y) = (F64I::point(0.0), F64I::point(0.0));
//! for _ in 0..10 {
//!     let xi = x;
//!     x = F64I::ONE - a * xi * xi + y;
//!     y = b * xi;
//! }
//! // The interval still certifies tens of bits after 10 iterations:
//! assert!(x.certified_bits() > 40.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
pub mod accuracy;
pub mod capi;
mod cast;
mod ddi;
pub mod elem;
mod f32i;
mod f64i;
mod tbool;
mod vector;

pub use acc::{SumAcc64, SumAccDd, EXACT_ACC_SLOTS};
pub use cast::{f32_pair_to_f64i, f32_to_f64i, f64i_to_f32_pair, i64_to_f64i};
pub use ddi::DdI;
pub use f32i::F32I;
pub use f64i::{InvalidInterval, F64I};
pub use tbool::{TBool, UnknownBranch};
pub use vector::{DdIx2, DdIx4, F64Ix2, F64Ix4, LaneOps, TBoolLanes};
