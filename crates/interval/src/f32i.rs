//! The single-precision interval type `f32i` (Table I; the paper's
//! compiler accepts "single or double (the default) or … double-double"
//! as target precision, Section III).
//!
//! Endpoints are binary32; arithmetic is computed with the binary64
//! directed kernels and rounded outward to f32. This is *exact* directed
//! f32 rounding: the f32 grid is a subset of the f64 grid, so
//! `RU32(x) = RU32(RU64(x))` — no double-rounding anomaly is possible
//! for directed modes.

use crate::tbool::TBool;
use igen_round as r;

/// A sound single-precision interval (`f32i` in the generated C). Stored
/// like [`crate::F64I`] with the lower endpoint negated.
///
/// # Example
///
/// ```
/// use igen_interval::F32I;
/// let x = F32I::point(0.1f32);
/// let y = (x + x) + x;
/// assert!(y.contains(0.1f32 + 0.1f32 + 0.1f32));
/// assert!(y.certified_bits() > 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32I {
    neg_lo: f32,
    hi: f32,
}

/// Largest f32 `<=` the f64 value (exact directed demotion).
fn f32_below(x: f64) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let c = x as f32;
    if (c as f64) <= x {
        c
    } else {
        next_down32(c)
    }
}

/// Smallest f32 `>=` the f64 value.
fn f32_above(x: f64) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let c = x as f32;
    if (c as f64) >= x {
        c
    } else {
        next_up32(c)
    }
}

fn next_up32(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f32::from_bits(1);
    }
    let b = x.to_bits();
    if x > 0.0 {
        f32::from_bits(b + 1)
    } else {
        f32::from_bits(b - 1)
    }
}

fn next_down32(x: f32) -> f32 {
    -next_up32(-x)
}

fn max_nan32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a >= b {
        a
    } else {
        b
    }
}

impl F32I {
    /// `[0, 0]`.
    pub const ZERO: F32I = F32I { neg_lo: -0.0, hi: 0.0 };
    /// `[1, 1]`.
    pub const ONE: F32I = F32I { neg_lo: -1.0, hi: 1.0 };
    /// The whole line.
    pub const ENTIRE: F32I = F32I { neg_lo: f32::INFINITY, hi: f32::INFINITY };
    /// Fully unknown.
    pub const NAI: F32I = F32I { neg_lo: f32::NAN, hi: f32::NAN };

    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`crate::InvalidInterval`] if `lo > hi`.
    pub fn new(lo: f32, hi: f32) -> Result<F32I, crate::InvalidInterval> {
        if lo > hi {
            return Err(crate::InvalidInterval);
        }
        Ok(F32I { neg_lo: -lo, hi })
    }

    /// Point interval.
    pub fn point(x: f32) -> F32I {
        F32I { neg_lo: -x, hi: x }
    }

    /// Sound enclosure of an f64 value (outward f32 rounding) — the
    /// conversion used when lowering `double` constants to the f32
    /// target.
    pub fn enclose_f64(v: f64) -> F32I {
        F32I { neg_lo: -f32_below(v), hi: f32_above(v) }
    }

    /// Value with absolute tolerance (`ia_set_tol_f32`).
    pub fn with_tol(x: f32, tol: f32) -> F32I {
        let t = tol.abs() as f64;
        let x = x as f64;
        F32I { neg_lo: f32_above(-x + t), hi: f32_above(x + t) }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f32 {
        -self.neg_lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// NaN endpoint present.
    pub fn has_nan(&self) -> bool {
        self.neg_lo.is_nan() || self.hi.is_nan()
    }

    /// Point test.
    pub fn is_point(&self) -> bool {
        !self.has_nan() && -self.neg_lo == self.hi
    }

    /// Containment.
    pub fn contains(&self, x: f32) -> bool {
        if x.is_nan() {
            return self.has_nan();
        }
        (self.neg_lo.is_nan() || -self.neg_lo <= x) && (self.hi.is_nan() || x <= self.hi)
    }

    /// Width, rounded up.
    pub fn width(&self) -> f32 {
        f32_above(self.hi as f64 + self.neg_lo as f64)
    }

    /// Certified bits out of 24.
    pub fn certified_bits(&self) -> f64 {
        if self.has_nan() || !self.lo().is_finite() || !self.hi.is_finite() {
            return 0.0;
        }
        let steps = ulps_between32(self.lo(), self.hi);
        (24.0 - ((steps + 1) as f64).log2()).max(0.0)
    }

    /// Negation (endpoint swap).
    #[must_use]
    pub fn neg(&self) -> F32I {
        F32I { neg_lo: self.hi, hi: self.neg_lo }
    }

    /// Square root (NaN lower for negative lower endpoints, §IV-A).
    #[must_use]
    pub fn sqrt(&self) -> F32I {
        F32I {
            neg_lo: -f32_below(r::sqrt_rd(-self.neg_lo as f64)),
            hi: f32_above(r::sqrt_ru(self.hi as f64)),
        }
    }

    /// Promotion to a double-precision interval (exact).
    pub fn to_f64i(&self) -> crate::F64I {
        crate::F64I::from_neg_lo_hi(self.neg_lo as f64, self.hi as f64)
    }

    /// Demotion from a double-precision interval (outward).
    pub fn from_f64i(x: &crate::F64I) -> F32I {
        F32I { neg_lo: f32_above(x.neg_lo()), hi: f32_above(x.hi()) }
    }

    /// Interval minimum.
    #[must_use]
    pub fn min_i(&self, other: &F32I) -> F32I {
        if self.has_nan() || other.has_nan() {
            return F32I::NAI;
        }
        F32I { neg_lo: max_nan32(self.neg_lo, other.neg_lo), hi: self.hi.min(other.hi) }
    }

    /// Interval maximum.
    #[must_use]
    pub fn max_i(&self, other: &F32I) -> F32I {
        if self.has_nan() || other.has_nan() {
            return F32I::NAI;
        }
        F32I { neg_lo: self.neg_lo.min(other.neg_lo), hi: max_nan32(self.hi, other.hi) }
    }

    /// `self < other` three-valued.
    pub fn cmp_lt(&self, other: &F32I) -> TBool {
        if self.has_nan() || other.has_nan() {
            return TBool::Unknown;
        }
        if self.hi < other.lo() {
            TBool::True
        } else if self.lo() >= other.hi {
            TBool::False
        } else {
            TBool::Unknown
        }
    }

    /// `self > other` three-valued.
    pub fn cmp_gt(&self, other: &F32I) -> TBool {
        other.cmp_lt(self)
    }
}

fn ulps_between32(a: f32, b: f32) -> u64 {
    fn okey(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits >> 31 == 0 {
            bits as i64
        } else {
            -((bits & 0x7fff_ffff) as i64)
        }
    }
    (okey(b) - okey(a)).max(0) as u64
}

impl core::ops::Add for F32I {
    type Output = F32I;
    fn add(self, rhs: F32I) -> F32I {
        // f64 addition of f32 operands is exact; round outward to f32.
        F32I {
            neg_lo: f32_above(self.neg_lo as f64 + rhs.neg_lo as f64),
            hi: f32_above(self.hi as f64 + rhs.hi as f64),
        }
    }
}

impl core::ops::Sub for F32I {
    type Output = F32I;
    fn sub(self, rhs: F32I) -> F32I {
        F32I {
            neg_lo: f32_above(self.neg_lo as f64 + rhs.hi as f64),
            hi: f32_above(self.hi as f64 + rhs.neg_lo as f64),
        }
    }
}

impl core::ops::Mul for F32I {
    type Output = F32I;
    fn mul(self, rhs: F32I) -> F32I {
        // f64 products of f32 operands are exact (24+24 < 53 bits).
        let (na, ah) = (self.neg_lo as f64, self.hi as f64);
        let (nb, bh) = (rhs.neg_lo as f64, rhs.hi as f64);
        let (u1, l1) = (na * nb, -(na * nb));
        let (u2, l2) = (-(na * bh), na * bh);
        let (u3, l3) = (-(ah * nb), ah * nb);
        let (u4, l4) = (ah * bh, -(ah * bh));
        fn m(a: f64, b: f64) -> f64 {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else {
                a.max(b)
            }
        }
        F32I { neg_lo: f32_above(m(m(l1, l2), m(l3, l4))), hi: f32_above(m(m(u1, u2), m(u3, u4))) }
    }
}

impl core::ops::Div for F32I {
    type Output = F32I;
    fn div(self, rhs: F32I) -> F32I {
        if self.has_nan() || rhs.has_nan() {
            return F32I::NAI;
        }
        let (bl, bh) = (-rhs.neg_lo, rhs.hi);
        if bl <= 0.0 && bh >= 0.0 {
            return F32I::ENTIRE;
        }
        // f64 quotients are not exact, but the f64 *directed* quotient
        // composed with outward f32 rounding is the exact f32 directed
        // quotient (nested grids).
        let (na, ah) = (self.neg_lo as f64, self.hi as f64);
        let (nb, bh) = (rhs.neg_lo as f64, rhs.hi as f64);
        let (bl, bh_) = (-nb, bh);
        let (l1, u1) = r::div_ru_both(na, bl);
        let (l2, u2) = r::div_ru_both(na, bh_);
        let (u3, l3) = r::div_ru_both(ah, bl);
        let (u4, l4) = r::div_ru_both(ah, bh_);
        fn m(a: f64, b: f64) -> f64 {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else {
                a.max(b)
            }
        }
        F32I { neg_lo: f32_above(m(m(l1, l2), m(l3, l4))), hi: f32_above(m(m(u1, u2), m(u3, u4))) }
    }
}

impl core::ops::Neg for F32I {
    type Output = F32I;
    fn neg(self) -> F32I {
        F32I::neg(&self)
    }
}

impl Default for F32I {
    fn default() -> F32I {
        F32I::ZERO
    }
}

impl core::fmt::Display for F32I {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:e}, {:e}]", self.lo(), self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic_encloses() {
        let x = F32I::point(0.1);
        let s = x + x + x;
        assert!(s.contains(0.1f32 + 0.1 + 0.1));
        assert!(s.width() > 0.0);
        let p = x * F32I::point(3.0);
        assert!(p.contains(0.1f32 * 3.0));
    }

    #[test]
    fn division_composes_exact_directed_rounding() {
        let one = F32I::point(1.0);
        let three = F32I::point(3.0);
        let q = one / three;
        // The f32 directed quotients of 1/3.
        let t = 1.0f32 / 3.0f32;
        assert!(q.lo() <= t && t <= q.hi());
        assert!(ulps_between32(q.lo(), q.hi()) <= 1, "{q}");
        let z = F32I::new(-1.0, 1.0).unwrap();
        assert_eq!((one / z).hi(), f32::INFINITY);
    }

    #[test]
    fn mul_matches_f64i_mul_outward() {
        let a = F32I::new(-1.5, 2.5).unwrap();
        let b = F32I::new(0.25, 4.0).unwrap();
        let p32 = a * b;
        let p64 = a.to_f64i() * b.to_f64i();
        // The f32 product encloses the f64 product.
        assert!(p32.lo() as f64 <= p64.lo() && p64.hi() <= p32.hi() as f64);
        assert_eq!(p32.lo(), -6.0);
        assert_eq!(p32.hi(), 10.0);
    }

    #[test]
    fn sqrt_and_nan_semantics() {
        let s = F32I::new(-1.0, 4.0).unwrap().sqrt();
        assert!(s.lo().is_nan());
        assert_eq!(s.hi(), 2.0);
        let t = F32I::new(2.0, 2.0).unwrap().sqrt();
        assert!(t.contains(2.0f32.sqrt()));
        assert!(ulps_between32(t.lo(), t.hi()) <= 1);
    }

    #[test]
    fn enclose_f64_constants() {
        // 0.1 (f64) is not an f32 value: 1-ulp f32 enclosure.
        let e = F32I::enclose_f64(0.1);
        assert!((e.lo() as f64) < 0.1 && 0.1 < (e.hi() as f64));
        assert_eq!(ulps_between32(e.lo(), e.hi()), 1);
        // 0.5 is exact.
        assert!(F32I::enclose_f64(0.5).is_point());
    }

    #[test]
    fn comparisons_and_bits() {
        let a = F32I::new(0.0, 1.0).unwrap();
        let b = F32I::new(2.0, 3.0).unwrap();
        assert!(a.cmp_lt(&b).is_true());
        assert!(b.cmp_gt(&a).is_true());
        assert_eq!(F32I::point(1.0).certified_bits(), 24.0);
        let one_ulp = F32I::new(1.0, next_up32(1.0)).unwrap();
        assert_eq!(one_ulp.certified_bits(), 23.0);
    }

    #[test]
    fn tolerance() {
        let t = F32I::with_tol(5.0, 0.25);
        assert!(t.contains(4.75) && t.contains(5.25));
        assert!(!t.contains(5.3));
    }
}
