//! Accurate accumulators for the reduction transformation (Section VI-B).
//!
//! IGen replaces detected reductions with an accumulator that eliminates
//! (almost) all intermediate rounding:
//!
//! * For **double precision** interval targets, the accumulator keeps each
//!   endpoint in double-double precision (`isum_*_f64` in the generated C).
//! * For **double-double** targets a double-double accumulator would be
//!   too expensive, so the paper uses an *exact* exponent-indexed array
//!   accumulator in the style of Malcolm / Demmel–Hida: one `f64` array of
//!   4096 slots per endpoint, indexed by `p = 2e + b` where `e` is the
//!   exponent field and `b` the least-significant mantissa bit of the term
//!   being added. Two numbers with equal exponent and equal LSB add
//!   *exactly* (their significand sum is even, so it fits back into 53
//!   bits), so inserting a term never rounds — collisions simply cascade.

use crate::ddi::DdI;
use crate::f64i::F64I;
use igen_dd::{add_dir, Dd};
use igen_round::Ru;

/// Double-double accumulator for double-precision interval reductions
/// (`acc_f64` / `isum_*_f64` in the generated C).
///
/// # Example
///
/// ```
/// use igen_interval::{F64I, SumAcc64};
/// let term = F64I::point(0.1);
/// let mut acc = SumAcc64::new(F64I::ZERO);
/// for _ in 0..1_000 {
///     acc.accumulate(&term);
/// }
/// let sum = acc.reduce();
/// // Far tighter than naive interval summation:
/// assert!(sum.certified_bits() > 50.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SumAcc64 {
    neg_lo: Dd,
    hi: Dd,
}

impl SumAcc64 {
    /// `isum_init_f64`: starts the accumulator from an initial interval
    /// (the value the reduction variable holds before the loop).
    pub fn new(init: F64I) -> SumAcc64 {
        SumAcc64 { neg_lo: Dd::from(init.neg_lo()), hi: Dd::from(init.hi()) }
    }

    /// `isum_accumulate_f64`: adds one interval term.
    pub fn accumulate(&mut self, term: &F64I) {
        self.neg_lo = add_dir::<Ru>(self.neg_lo, Dd::from(term.neg_lo()));
        self.hi = add_dir::<Ru>(self.hi, Dd::from(term.hi()));
    }

    /// `isum_reduce_f64`: rounds the double-double endpoint sums outward
    /// to a double-precision interval.
    pub fn reduce(&self) -> F64I {
        F64I::from_neg_lo_hi(dd_to_f64_upper(self.neg_lo), dd_to_f64_upper(self.hi))
    }
}

/// Smallest f64 `>=` the dd value.
fn dd_to_f64_upper(x: Dd) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let (h, l) = igen_round::two_sum(x.hi(), x.lo());
    if l > 0.0 {
        igen_round::next_up(h)
    } else {
        h
    }
}

/// Size of the exact accumulator array: one slot per (exponent, LSB) pair
/// (2048 exponent values × 2 LSB values), as specified in Section VI-B.
pub const EXACT_ACC_SLOTS: usize = 4096;

/// Exact exponent-indexed accumulator for one (scalar) endpoint stream.
#[derive(Debug, Clone)]
struct ExactAcc {
    slots: Box<[f64; EXACT_ACC_SLOTS]>,
    /// Set when a cascade overflowed past the largest exponent.
    overflow: bool,
}

impl ExactAcc {
    fn new() -> ExactAcc {
        ExactAcc { slots: Box::new([0.0; EXACT_ACC_SLOTS]), overflow: false }
    }

    /// Slot index `p = 2e + b` from the raw exponent field and LSB.
    fn slot_of(t: f64) -> usize {
        let bits = t.to_bits();
        let e = ((bits >> 52) & 0x7ff) as usize;
        let b = (bits & 1) as usize;
        2 * e + b
    }

    /// Inserts one f64 term exactly (no rounding ever occurs: colliding
    /// slots hold the same exponent and LSB, so their sum is exact; the
    /// sum is re-inserted at its own slot and the cascade repeats).
    fn insert(&mut self, t: f64) {
        let mut t = t;
        loop {
            if t == 0.0 {
                return;
            }
            if !t.is_finite() {
                self.overflow = true;
                return;
            }
            let p = Self::slot_of(t);
            let cur = self.slots[p];
            if cur == 0.0 {
                self.slots[p] = t;
                return;
            }
            // Exact: same exponent field and same LSB.
            let merged = cur + t;
            self.slots[p] = 0.0;
            t = merged;
        }
    }

    /// Final reduction: sums the slots in double-double with directed
    /// rounding `Ru` (the only rounding in the whole accumulation).
    fn reduce_upper(&self) -> Dd {
        if self.overflow {
            return Dd::INFINITY;
        }
        let mut acc = Dd::ZERO;
        // Sum from small to large magnitudes for stability.
        for &v in self.slots.iter() {
            if v != 0.0 {
                acc = add_dir::<Ru>(acc, Dd::from(v));
            }
        }
        acc
    }
}

/// Exact array accumulator for double-double interval reductions
/// (`isum_*_dd` in the generated C): two 4096-slot arrays, one per
/// endpoint, inserting both components of every double-double endpoint.
///
/// # Example
///
/// ```
/// use igen_interval::{DdI, SumAccDd};
/// let term = DdI::point_f64(0.1);
/// let mut acc = SumAccDd::new(DdI::ZERO);
/// for _ in 0..10_000 {
///     acc.accumulate(&term);
/// }
/// let s = acc.reduce();
/// assert!(s.certified_bits() > 100.0, "bits: {}", s.certified_bits());
/// ```
#[derive(Debug, Clone)]
pub struct SumAccDd {
    neg_lo: ExactAcc,
    hi: ExactAcc,
}

impl SumAccDd {
    /// `isum_init_dd`.
    pub fn new(init: DdI) -> SumAccDd {
        let mut acc = SumAccDd { neg_lo: ExactAcc::new(), hi: ExactAcc::new() };
        acc.accumulate(&init);
        acc
    }

    /// `isum_accumulate_dd`: inserts both double-double components of both
    /// endpoints, exactly.
    pub fn accumulate(&mut self, term: &DdI) {
        let nl = term.lo().neg();
        self.neg_lo.insert(nl.hi());
        self.neg_lo.insert(nl.lo());
        self.hi.insert(term.hi().hi());
        self.hi.insert(term.hi().lo());
    }

    /// `isum_reduce_dd`: sums the slots in double-double (upward for both
    /// endpoint streams, thanks to the negated-low convention).
    pub fn reduce(&self) -> DdI {
        let nl = self.neg_lo.reduce_upper();
        let hi = self.hi.reduce_upper();
        DdI::new(nl.neg(), hi).unwrap_or(DdI::ENTIRE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dd_accumulator_beats_naive_f64i() {
        let term = F64I::point(0.1);
        let mut acc = SumAcc64::new(F64I::ZERO);
        let mut naive = F64I::ZERO;
        for _ in 0..100_000 {
            acc.accumulate(&term);
            naive = naive + term;
        }
        let smart = acc.reduce();
        assert!(
            smart.certified_bits() > naive.certified_bits() + 10.0,
            "smart {} vs naive {}",
            smart.certified_bits(),
            naive.certified_bits()
        );
        // Both contain 0.1 * 100000 summed in higher precision, i.e. the
        // true value 0.1(f64) * 100000 (within dd accuracy).
        let truth = Dd::from(0.1) * Dd::from(100000.0);
        assert!(smart.contains(truth.to_f64()));
    }

    #[test]
    fn exact_acc_insert_is_exact() {
        let mut acc = ExactAcc::new();
        // Insert values that would lose bits in naive summation.
        let vals = [1e16, 1.0, -1e16, 2.0, 0.5, 3e-20, -0.5];
        for &v in &vals {
            acc.insert(v);
        }
        let sum = acc.reduce_upper();
        // Exact sum is 3.0 + 3e-20.
        let expect = Dd::from(3.0) + Dd::from(3e-20);
        assert!((sum - expect).abs().to_f64() < 1e-30, "sum = {sum}");
    }

    #[test]
    fn exact_acc_collision_cascade() {
        let mut acc = ExactAcc::new();
        // Same exponent and LSB repeatedly: forces cascades.
        for _ in 0..1024 {
            acc.insert(3.0);
        }
        let sum = acc.reduce_upper();
        assert_eq!(sum.to_f64(), 3072.0);
        assert_eq!(sum.lo(), 0.0);
    }

    #[test]
    fn exact_acc_mixed_signs_cancel_exactly() {
        let mut acc = ExactAcc::new();
        let mut expect = Dd::ZERO;
        let mut v = 1.000000000000123f64;
        for i in 0..1000 {
            let t = if i % 2 == 0 { v } else { -v * 0.5 };
            acc.insert(t);
            expect = expect + Dd::from(t);
            v *= 1.0000001;
        }
        let sum = acc.reduce_upper();
        let diff = (sum - expect).abs();
        // expect itself carries dd rounding (~2^-106 rel), the accumulator
        // is exact: they agree to dd accuracy.
        assert!(diff.to_f64() < 1e-25, "diff = {diff}");
    }

    #[test]
    fn dd_interval_accumulator_certifies() {
        let term = DdI::point_f64(0.1) / DdI::point_f64(3.0);
        let mut acc = SumAccDd::new(DdI::ZERO);
        for _ in 0..4096 {
            acc.accumulate(&term);
        }
        let s = acc.reduce();
        assert!(s.certified_bits() > 95.0, "bits = {}", s.certified_bits());
        assert!(s.certified_f64().is_some());
    }

    #[test]
    fn overflow_detected() {
        let mut acc = ExactAcc::new();
        for _ in 0..4 {
            acc.insert(f64::MAX);
        }
        assert!(acc.reduce_upper().to_f64().is_infinite());
    }

    #[test]
    fn subnormal_terms_accumulate() {
        let mut acc = ExactAcc::new();
        let tiny = f64::from_bits(3); // subnormal, LSB 1
        for _ in 0..1000 {
            acc.insert(tiny);
        }
        let sum = acc.reduce_upper();
        assert_eq!(sum.to_f64(), tiny * 1000.0);
    }
}
