//! The double-precision interval type `f64i` (Section IV-A).
//!
//! An interval is stored as the pair `(-lo, hi)` — the lower endpoint is
//! kept negated so that *both* endpoints round upward, which lets every
//! operation use a single rounding direction (Section II of the paper and
//! the classical trick of Goualard [23]). Addition costs two
//! upward-rounded additions; multiplication eight multiplications and six
//! comparisons, branch-free.

use crate::tbool::TBool;
use igen_round as r;

/// Error returned by [`F64I::new`] for invalid bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidInterval;

impl core::fmt::Display for InvalidInterval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid interval: lower endpoint exceeds upper endpoint")
    }
}

impl std::error::Error for InvalidInterval {}

/// A sound double-precision interval (`f64i` in the generated C).
///
/// NaN endpoints are legal and mean the bound is unknown (Section IV-A):
/// `sqrt([-1, 1]) = [NaN, 1]`. `[-∞, +∞]` means "any floating-point value
/// except NaN".
///
/// # Example
///
/// ```
/// use igen_interval::F64I;
/// let x = F64I::point(0.1);
/// let y = (x + x) + x;              // encloses the real 0.1(f64) * 3
/// assert!(y.contains(0.1 + 0.1 + 0.1));
/// assert!(y.width() > 0.0);         // rounding made it a true interval
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64I {
    /// The *negated* lower endpoint.
    neg_lo: f64,
    /// The upper endpoint.
    hi: f64,
}

// NaN-propagating maximum (unlike `f64::max`, which ignores NaN — that
// would silently drop invalid-operation information). Shared with the
// packed kernels, whose `max_nan_4` must match it bit for bit.
use igen_round::simd::max_nan;

/// `x^n` rounded down, for `x >= 0`: square-and-multiply where every
/// multiplication rounds down — all factors are nonnegative lower bounds
/// of the true intermediates, so the product chain stays a lower bound.
fn pow_abs_rd(x: f64, mut n: u32) -> f64 {
    debug_assert!(x >= 0.0);
    let mut base = x;
    let mut acc = 1.0f64;
    while n > 0 {
        if n & 1 == 1 {
            acc = r::mul_rd(acc, base);
        }
        n >>= 1;
        if n > 0 {
            base = r::mul_rd(base, base);
        }
    }
    acc
}

/// `x^n` rounded up, for `x >= 0` (see [`pow_abs_rd`]).
fn pow_abs_ru(x: f64, mut n: u32) -> f64 {
    debug_assert!(x >= 0.0);
    let mut base = x;
    let mut acc = 1.0f64;
    while n > 0 {
        if n & 1 == 1 {
            acc = r::mul_ru(acc, base);
        }
        n >>= 1;
        if n > 0 {
            base = r::mul_ru(base, base);
        }
    }
    acc
}

impl F64I {
    /// The interval `[0, 0]`.
    pub const ZERO: F64I = F64I { neg_lo: -0.0, hi: 0.0 };
    /// The interval `[1, 1]`.
    pub const ONE: F64I = F64I { neg_lo: -1.0, hi: 1.0 };
    /// The whole real line `[-∞, +∞]`.
    pub const ENTIRE: F64I = F64I { neg_lo: f64::INFINITY, hi: f64::INFINITY };
    /// The fully-unknown interval `[NaN, NaN]`.
    pub const NAI: F64I = F64I { neg_lo: f64::NAN, hi: f64::NAN };

    /// Creates `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidInterval`] if `lo > hi`. NaN bounds are accepted
    /// (unknown endpoints).
    pub fn new(lo: f64, hi: f64) -> Result<F64I, InvalidInterval> {
        if lo > hi {
            return Err(InvalidInterval);
        }
        Ok(F64I { neg_lo: -lo, hi })
    }

    /// The point interval `[x, x]` (`ia_set_f64(x, x)` in the runtime).
    pub fn point(x: f64) -> F64I {
        F64I { neg_lo: -x, hi: x }
    }

    /// Builds from the internal negated-low representation (used by the
    /// vector kernels; the caller asserts `-neg_lo <= hi`).
    #[inline]
    pub fn from_neg_lo_hi(neg_lo: f64, hi: f64) -> F64I {
        debug_assert!(
            neg_lo.is_nan() || hi.is_nan() || -neg_lo <= hi,
            "inverted interval: [{}, {hi}]",
            -neg_lo
        );
        F64I { neg_lo, hi }
    }

    /// The tightest interval around a value known with absolute tolerance
    /// `tol` — the `ia_set_tol_f64` runtime call backing the paper's
    /// `double:0.125` language extension (Fig. 3).
    pub fn with_tol(x: f64, tol: f64) -> F64I {
        let t = tol.abs();
        F64I { neg_lo: r::add_ru(-x, t), hi: r::add_ru(x, t) }
    }

    /// Sound enclosure `[next_down(v), next_up(v)]` of a decimal constant
    /// whose parsed binary64 value is `v` (Section IV-B): for a constant
    /// that is not exactly representable this contains its two
    /// neighbouring floats; for a representable non-integer constant it is
    /// the paper's 2-ulp enclosure centered at the value. The compiler
    /// uses [`F64I::point`] instead for integer-valued constants, which
    /// are exact.
    pub fn enclose_decimal(v: f64) -> F64I {
        F64I { neg_lo: -r::next_down(v), hi: r::next_up(v) }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(&self) -> f64 {
        -self.neg_lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The negated lower endpoint — the raw representation (useful to the
    /// vector kernels and the benchmark harness).
    #[inline]
    pub fn neg_lo(&self) -> f64 {
        self.neg_lo
    }

    /// True if either endpoint is NaN (invalid operation happened).
    #[inline]
    #[must_use]
    pub fn has_nan(&self) -> bool {
        self.neg_lo.is_nan() || self.hi.is_nan()
    }

    /// True if the interval is a single point.
    #[inline]
    #[must_use]
    pub fn is_point(&self) -> bool {
        !self.has_nan() && -self.neg_lo == self.hi
    }

    /// Width `hi - lo`, rounded up. NaN if an endpoint is NaN.
    #[inline]
    #[must_use]
    pub fn width(&self) -> f64 {
        r::add_ru(self.hi, self.neg_lo)
    }

    /// Relative width `width() / max(|lo|, |hi|)` — the precision measure
    /// the telemetry width histograms bucket by. Point intervals report 0,
    /// intervals containing only zero report the absolute width, NaN
    /// endpoints report NaN.
    #[inline]
    #[must_use]
    pub fn rel_width(&self) -> f64 {
        let w = self.width();
        let mag = self.neg_lo.abs().max(self.hi.abs());
        if mag > 0.0 {
            w / mag
        } else {
            w
        }
    }

    /// Midpoint (approximate, round-to-nearest).
    pub fn mid(&self) -> f64 {
        if self.hi == -self.neg_lo {
            return self.hi;
        }
        0.5 * (self.hi - self.neg_lo)
    }

    /// True if `x` is inside the interval; NaN endpoints absorb their side
    /// (an unknown bound could be anything).
    pub fn contains(&self, x: f64) -> bool {
        if x.is_nan() {
            return self.has_nan();
        }
        let lo_ok = self.neg_lo.is_nan() || -self.neg_lo <= x;
        let hi_ok = self.hi.is_nan() || x <= self.hi;
        lo_ok && hi_ok
    }

    /// True if `other` is entirely inside `self`.
    pub fn encloses(&self, other: &F64I) -> bool {
        self.contains(other.lo()) && self.contains(other.hi())
    }

    /// Interval hull (join): the smallest interval containing both.
    #[must_use]
    pub fn join(&self, other: &F64I) -> F64I {
        F64I { neg_lo: max_nan(self.neg_lo, other.neg_lo), hi: max_nan(self.hi, other.hi) }
    }

    /// Intersection; `None` if provably disjoint.
    pub fn meet(&self, other: &F64I) -> Option<F64I> {
        let neg_lo = {
            // max of lower endpoints = min of negated ones.
            if self.neg_lo.is_nan() || other.neg_lo.is_nan() {
                f64::NAN
            } else {
                self.neg_lo.min(other.neg_lo)
            }
        };
        let hi =
            if self.hi.is_nan() || other.hi.is_nan() { f64::NAN } else { self.hi.min(other.hi) };
        if !neg_lo.is_nan() && !hi.is_nan() && -neg_lo > hi {
            return None;
        }
        Some(F64I { neg_lo, hi })
    }

    /// Negation (exact, endpoint swap — free in the `(-lo, hi)` layout).
    #[must_use]
    #[inline]
    pub fn neg(&self) -> F64I {
        F64I { neg_lo: self.hi, hi: self.neg_lo }
    }

    /// Interval absolute value.
    #[must_use]
    #[inline]
    pub fn abs(&self) -> F64I {
        if self.has_nan() {
            return F64I::NAI;
        }
        let lo = -self.neg_lo;
        if lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            F64I { neg_lo: -0.0, hi: max_nan(self.neg_lo, self.hi) }
        }
    }

    /// Interval square root: `[RD(sqrt(lo)), RU(sqrt(hi))]`; a negative
    /// lower endpoint yields a NaN lower bound (`sqrt([-1,1]) = [NaN,1]`,
    /// Section IV-A).
    #[must_use]
    #[inline]
    pub fn sqrt(&self) -> F64I {
        F64I { neg_lo: -r::sqrt_rd(-self.neg_lo), hi: r::sqrt_ru(self.hi) }
    }

    /// Endpoint-wise floor (exact operation on both bounds).
    #[must_use]
    pub fn floor(&self) -> F64I {
        F64I { neg_lo: -(-self.neg_lo).floor(), hi: self.hi.floor() }
    }

    /// Endpoint-wise ceil.
    #[must_use]
    pub fn ceil(&self) -> F64I {
        F64I { neg_lo: -(-self.neg_lo).ceil(), hi: self.hi.ceil() }
    }

    /// Interval minimum.
    #[must_use]
    #[inline]
    pub fn min_i(&self, other: &F64I) -> F64I {
        if self.has_nan() || other.has_nan() {
            return F64I::NAI;
        }
        F64I { neg_lo: max_nan(self.neg_lo, other.neg_lo), hi: self.hi.min(other.hi) }
    }

    /// Interval maximum.
    #[must_use]
    #[inline]
    pub fn max_i(&self, other: &F64I) -> F64I {
        if self.has_nan() || other.has_nan() {
            return F64I::NAI;
        }
        F64I { neg_lo: self.neg_lo.min(other.neg_lo), hi: max_nan(self.hi, other.hi) }
    }

    /// Addition: two upward-rounded additions, thanks to the negated-low
    /// representation (Section II).
    #[inline]
    #[must_use]
    pub fn add(&self, other: &F64I) -> F64I {
        F64I { neg_lo: r::add_ru(self.neg_lo, other.neg_lo), hi: r::add_ru(self.hi, other.hi) }
    }

    /// Subtraction: `a - b = a + (-b)`, endpoint swap plus two additions.
    #[inline]
    #[must_use]
    pub fn sub(&self, other: &F64I) -> F64I {
        F64I { neg_lo: r::add_ru(self.neg_lo, other.hi), hi: r::add_ru(self.hi, other.neg_lo) }
    }

    /// Multiplication: eight upward-rounded multiplications and six
    /// comparisons, branch-free (no sign-case specialization — this is the
    /// property that makes IGen faster than the library baselines on
    /// branch-unfriendly data, Section VII-A).
    #[inline]
    #[must_use]
    pub fn mul(&self, other: &F64I) -> F64I {
        let (na, ah) = (self.neg_lo, self.hi);
        let (nb, bh) = (other.neg_lo, other.hi);
        // All eight directed endpoint products from four shared
        // product+residual pairs (al = -na, bl = -nb):
        //   al*bl = na*nb;  al*bh = -(na*bh);  ah*bl = -(ah*nb);  ah*bh.
        let (u1, l1) = r::mul_ru_both(na, nb); // RU(al*bl), RU(-(al*bl))
        let (l2, u2) = r::mul_ru_both(na, bh); // RU(-(al*bh)) is u2
        let (l3, u3) = r::mul_ru_both(ah, nb);
        let (u4, l4) = r::mul_ru_both(ah, bh);
        F64I {
            neg_lo: max_nan(max_nan(l1, l2), max_nan(l3, l4)),
            hi: max_nan(max_nan(u1, u2), max_nan(u3, u4)),
        }
    }

    /// Interval square: the dependency-aware `x·x`. Unlike `self.mul(self)`
    /// the result is never negative — `[-1, 2]² = [0, 4]`, not `[-2, 4]`
    /// (the single-variable case of the dependency problem, Section VII-C).
    #[must_use]
    #[inline]
    pub fn sqr(&self) -> F64I {
        if self.has_nan() {
            return F64I::NAI;
        }
        let (lo, hi) = (-self.neg_lo, self.hi);
        let (alo, ahi) = (lo.abs(), hi.abs());
        let m = alo.max(ahi);
        let upper = r::mul_ru(m, m);
        if lo <= 0.0 && hi >= 0.0 {
            return F64I { neg_lo: 0.0, hi: upper };
        }
        let n = alo.min(ahi);
        F64I { neg_lo: -r::mul_rd(n, n), hi: upper }
    }

    /// Dependency-aware integer power.
    ///
    /// Even exponents decompose through `|x|` (so results never dip below
    /// zero), odd exponents use the monotonicity of `x^n`; both evaluate
    /// endpoint powers with consistently directed rounding. Negative
    /// exponents are `1 / x^(-n)` (so a base containing zero yields the
    /// entire line, matching [`F64I::div`]); `n == 0` returns `[1, 1]`
    /// (the C `pow(x, 0) == 1` convention, including `pow(0, 0)`).
    #[must_use]
    #[inline]
    pub fn powi(&self, n: i32) -> F64I {
        if self.has_nan() {
            return F64I::NAI;
        }
        if n == 0 {
            return F64I::point(1.0);
        }
        if n < 0 {
            // i32::MIN would overflow `-n`; saturate to MAX (results at
            // such exponents are saturated to {0, ±∞} anyway).
            return F64I::point(1.0).div(&self.powi(n.checked_neg().unwrap_or(i32::MAX)));
        }
        let (lo, hi) = (-self.neg_lo, self.hi);
        if n % 2 == 0 {
            let (alo, ahi) = (lo.abs(), hi.abs());
            let m = alo.max(ahi);
            let upper = pow_abs_ru(m, n as u32);
            if lo <= 0.0 && hi >= 0.0 {
                return F64I { neg_lo: 0.0, hi: upper };
            }
            return F64I { neg_lo: -pow_abs_rd(alo.min(ahi), n as u32), hi: upper };
        }
        // Odd: x^n is monotone increasing over the whole line.
        let plo = if lo >= 0.0 { pow_abs_rd(lo, n as u32) } else { -pow_abs_ru(-lo, n as u32) };
        let phi = if hi >= 0.0 { pow_abs_ru(hi, n as u32) } else { -pow_abs_rd(-hi, n as u32) };
        F64I { neg_lo: -plo, hi: phi }
    }

    /// Division. A divisor interval containing zero yields `[-∞, +∞]`
    /// (the paper's semantics for lost information); otherwise four
    /// upward-rounded divisions and endpoint selection.
    #[inline]
    #[must_use]
    pub fn div(&self, other: &F64I) -> F64I {
        if self.has_nan() || other.has_nan() {
            return F64I::NAI;
        }
        let (bl, bh) = (-other.neg_lo, other.hi);
        if bl <= 0.0 && bh >= 0.0 {
            return F64I::ENTIRE;
        }
        let (na, ah) = (self.neg_lo, self.hi);
        // Four shared quotient pairs give all eight directed endpoints.
        let (l1, u1) = r::div_ru_both(na, bl); // RU(al/bl) = RU(-(na/bl))
        let (l2, u2) = r::div_ru_both(na, bh);
        let (u3, l3) = r::div_ru_both(ah, bl);
        let (u4, l4) = r::div_ru_both(ah, bh);
        F64I {
            neg_lo: max_nan(max_nan(l1, l2), max_nan(l3, l4)),
            hi: max_nan(max_nan(u1, u2), max_nan(u3, u4)),
        }
    }

    /// Bitwise AND of both endpoints. Only sound when one operand is an
    /// all-ones or all-zeros mask — the common SIMD masking idiom the
    /// generated intrinsics use (Section V).
    #[must_use]
    pub fn bitand_mask(&self, other: &F64I) -> F64I {
        F64I {
            neg_lo: f64::from_bits(self.neg_lo.to_bits() & other.neg_lo.to_bits()),
            hi: f64::from_bits(self.hi.to_bits() & other.hi.to_bits()),
        }
    }

    /// Bitwise OR of both endpoints (mask idiom; see [`F64I::bitand_mask`]).
    #[must_use]
    pub fn bitor_mask(&self, other: &F64I) -> F64I {
        F64I {
            neg_lo: f64::from_bits(self.neg_lo.to_bits() | other.neg_lo.to_bits()),
            hi: f64::from_bits(self.hi.to_bits() | other.hi.to_bits()),
        }
    }

    /// Bitwise NOT of both endpoints (mask idiom: complement of an
    /// all-ones/all-zeros mask, Section V).
    #[must_use]
    pub fn bitnot_mask(&self) -> F64I {
        F64I {
            neg_lo: f64::from_bits(!self.neg_lo.to_bits()),
            hi: f64::from_bits(!self.hi.to_bits()),
        }
    }

    /// Bitwise XOR of both endpoints (mask idiom).
    #[must_use]
    pub fn bitxor_mask(&self, other: &F64I) -> F64I {
        F64I {
            neg_lo: f64::from_bits(self.neg_lo.to_bits() ^ other.neg_lo.to_bits()),
            hi: f64::from_bits(self.hi.to_bits() ^ other.hi.to_bits()),
        }
    }

    /// `self < other` as a three-valued boolean.
    #[must_use]
    pub fn cmp_lt(&self, other: &F64I) -> TBool {
        if self.has_nan() || other.has_nan() {
            return TBool::Unknown;
        }
        if self.hi < other.lo() {
            TBool::True
        } else if self.lo() >= other.hi {
            TBool::False
        } else {
            TBool::Unknown
        }
    }

    /// `self <= other`.
    #[must_use]
    pub fn cmp_le(&self, other: &F64I) -> TBool {
        if self.has_nan() || other.has_nan() {
            return TBool::Unknown;
        }
        if self.hi <= other.lo() {
            TBool::True
        } else if self.lo() > other.hi {
            TBool::False
        } else {
            TBool::Unknown
        }
    }

    /// `self > other`.
    #[must_use]
    pub fn cmp_gt(&self, other: &F64I) -> TBool {
        other.cmp_lt(self)
    }

    /// `self >= other`.
    #[must_use]
    pub fn cmp_ge(&self, other: &F64I) -> TBool {
        other.cmp_le(self)
    }

    /// `self == other` (point equality).
    #[must_use]
    pub fn cmp_eq(&self, other: &F64I) -> TBool {
        if self.has_nan() || other.has_nan() {
            return TBool::Unknown;
        }
        if self.is_point() && other.is_point() && self.hi == other.hi {
            TBool::True
        } else if self.hi < other.lo() || other.hi < self.lo() {
            TBool::False
        } else {
            TBool::Unknown
        }
    }

    /// `self != other`.
    #[must_use]
    pub fn cmp_ne(&self, other: &F64I) -> TBool {
        self.cmp_eq(other).not()
    }

    /// The certified accuracy of the interval in bits, as defined in
    /// Section VII: 53 minus the base-2 log of the number of double
    /// values contained. A point interval certifies the full 53 bits; a
    /// NaN or infinite endpoint certifies none.
    #[must_use]
    pub fn certified_bits(&self) -> f64 {
        if self.has_nan() || !self.lo().is_finite() || !self.hi.is_finite() {
            return 0.0;
        }
        let steps = r::ulps_between(self.lo(), self.hi);
        let loss = ((steps + 1) as f64).log2();
        (53.0 - loss).max(0.0)
    }
}

impl core::ops::Add for F64I {
    type Output = F64I;
    #[inline]
    fn add(self, rhs: F64I) -> F64I {
        F64I::add(&self, &rhs)
    }
}

impl core::ops::Sub for F64I {
    type Output = F64I;
    #[inline]
    fn sub(self, rhs: F64I) -> F64I {
        F64I::sub(&self, &rhs)
    }
}

impl core::ops::Mul for F64I {
    type Output = F64I;
    #[inline]
    fn mul(self, rhs: F64I) -> F64I {
        F64I::mul(&self, &rhs)
    }
}

impl core::ops::Div for F64I {
    type Output = F64I;
    #[inline]
    fn div(self, rhs: F64I) -> F64I {
        F64I::div(&self, &rhs)
    }
}

impl core::ops::Neg for F64I {
    type Output = F64I;
    #[inline]
    fn neg(self) -> F64I {
        F64I::neg(&self)
    }
}

impl Default for F64I {
    #[inline]
    fn default() -> F64I {
        F64I::ZERO
    }
}

impl core::fmt::Display for F64I {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:e}, {:e}]", self.lo(), self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = F64I::new(1.0, 2.0).unwrap();
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 2.0);
        assert!(F64I::new(2.0, 1.0).is_err());
        assert!(F64I::point(5.0).is_point());
        assert!(F64I::NAI.has_nan());
    }

    #[test]
    fn addition_rounds_outward() {
        let x = F64I::point(0.1);
        let s = x + x + x; // 0.1+0.1 doubles exactly; the third add rounds
        assert!(s.lo() <= 0.1 + 0.1 + 0.1 && 0.1 + 0.1 + 0.1 <= s.hi());
        assert!(s.width() > 0.0);
        // Exact addition stays a point.
        let e = F64I::point(1.0) + F64I::point(2.0);
        assert!(e.is_point());
        assert_eq!(e.hi(), 3.0);
    }

    #[test]
    fn subtraction_dependency_widens() {
        // x - x with the interval x = [1,2]: sound result is [-1, 1]
        // (the dependency problem: interval arithmetic cannot know the
        // two x's are the same variable).
        let x = F64I::new(1.0, 2.0).unwrap();
        let d = x - x;
        assert_eq!(d.lo(), -1.0);
        assert_eq!(d.hi(), 1.0);
    }

    #[test]
    fn multiplication_sign_cases() {
        let cases = [
            ((2.0, 3.0), (4.0, 5.0), (8.0, 15.0)),
            ((-3.0, -2.0), (4.0, 5.0), (-15.0, -8.0)),
            ((-2.0, 3.0), (4.0, 5.0), (-10.0, 15.0)),
            ((-2.0, 3.0), (-5.0, 4.0), (-15.0, 12.0)),
            ((-3.0, -2.0), (-5.0, -4.0), (8.0, 15.0)),
            ((0.0, 2.0), (-1.0, 1.0), (-2.0, 2.0)),
        ];
        for ((al, ah), (bl, bh), (rl, rh)) in cases {
            let a = F64I::new(al, ah).unwrap();
            let b = F64I::new(bl, bh).unwrap();
            let p = a * b;
            assert_eq!(p.lo(), rl, "[{al},{ah}]*[{bl},{bh}]");
            assert_eq!(p.hi(), rh, "[{al},{ah}]*[{bl},{bh}]");
        }
    }

    #[test]
    fn multiplication_commutes() {
        let a = F64I::new(-0.3, 0.7).unwrap();
        let b = F64I::new(0.11, 5.3).unwrap();
        assert_eq!(a * b, b * a);
    }

    #[test]
    fn division_basic_and_by_zero() {
        let a = F64I::new(1.0, 2.0).unwrap();
        let b = F64I::new(4.0, 8.0).unwrap();
        let q = a / b;
        assert_eq!(q.lo(), 0.125);
        assert_eq!(q.hi(), 0.5);
        let z = F64I::new(-1.0, 1.0).unwrap();
        let e = a / z;
        assert_eq!(e.lo(), f64::NEG_INFINITY);
        assert_eq!(e.hi(), f64::INFINITY);
        // Negative divisor flips.
        let n = F64I::new(-8.0, -4.0).unwrap();
        let qn = a / n;
        assert_eq!(qn.lo(), -0.5);
        assert_eq!(qn.hi(), -0.125);
    }

    #[test]
    fn sqr_is_dependency_aware() {
        // The defining case: x*x on a straddling interval.
        let x = F64I::new(-1.0, 2.0).unwrap();
        assert_eq!((x.sqr().lo(), x.sqr().hi()), (0.0, 4.0));
        assert_eq!((x.mul(&x).lo(), x.mul(&x).hi()), (-2.0, 4.0)); // naive
                                                                   // Strictly positive and strictly negative bases.
        let p = F64I::new(2.0, 3.0).unwrap().sqr();
        assert_eq!((p.lo(), p.hi()), (4.0, 9.0));
        let n = F64I::new(-3.0, -2.0).unwrap().sqr();
        assert_eq!((n.lo(), n.hi()), (4.0, 9.0));
        assert!(F64I::NAI.sqr().has_nan());
        // sqr == powi(2) on a sample.
        let w = F64I::new(-0.7, 1.3).unwrap();
        assert_eq!((w.sqr().lo(), w.sqr().hi()), (w.powi(2).lo(), w.powi(2).hi()));
    }

    #[test]
    fn powi_cases() {
        let x = F64I::new(-2.0, 3.0).unwrap();
        // Even: through |x|.
        assert_eq!((x.powi(4).lo(), x.powi(4).hi()), (0.0, 81.0));
        // Odd: monotone.
        assert_eq!((x.powi(3).lo(), x.powi(3).hi()), (-8.0, 27.0));
        assert_eq!((x.powi(1).lo(), x.powi(1).hi()), (-2.0, 3.0));
        // Zero exponent.
        assert!(x.powi(0).is_point());
        assert_eq!(x.powi(0).hi(), 1.0);
        // Negative exponent on a zero-free base.
        let p = F64I::new(2.0, 4.0).unwrap().powi(-2);
        assert!(p.contains(1.0 / 16.0) && p.contains(1.0 / 4.0));
        assert!(p.lo() <= 0.0625 && p.hi() >= 0.25);
        // Negative exponent with zero in the base: entire line.
        let e = x.powi(-1);
        assert_eq!((e.lo(), e.hi()), (f64::NEG_INFINITY, f64::INFINITY));
        // Containment & directed rounding on an irrational-ish base.
        let b = F64I::point(1.1);
        for n in [2, 3, 5, 8, 17] {
            let r = b.powi(n);
            let truth = 1.1f64.powi(n);
            assert!(r.lo() <= truth && truth <= r.hi(), "n={n}");
            assert!(r.width() < truth * 1e-14, "n={n} too wide");
        }
        // i32::MIN exponent does not overflow.
        let s = F64I::new(2.0, 2.0).unwrap().powi(i32::MIN);
        assert!(s.contains(0.0));
    }

    #[test]
    fn powi_tighter_than_repeated_mul() {
        // x^4 through powi vs ((x*x)*x)*x on a straddling interval.
        let x = F64I::new(-1.5, 1.0).unwrap();
        let naive = x.mul(&x).mul(&x).mul(&x);
        let tight = x.powi(4);
        assert!(naive.encloses(&tight));
        assert_eq!(tight.lo(), 0.0);
        assert!(naive.lo() < 0.0, "naive keeps the spurious negative range");
    }

    #[test]
    fn sqrt_nan_semantics() {
        let m = F64I::new(-1.0, 1.0).unwrap();
        let s = m.sqrt();
        assert!(s.lo().is_nan());
        assert_eq!(s.hi(), 1.0);
        let p = F64I::new(4.0, 9.0).unwrap().sqrt();
        assert_eq!(p.lo(), 2.0);
        assert_eq!(p.hi(), 3.0);
    }

    #[test]
    fn nan_infinity_semantics() {
        // inf * 0 inside intervals -> NaN propagates as unknown.
        let zero = F64I::ZERO;
        let inf = F64I::new(f64::INFINITY, f64::INFINITY).unwrap();
        let p = zero * inf;
        assert!(p.has_nan());
        // [1, inf] means "any value >= 1".
        let ge1 = F64I::new(1.0, f64::INFINITY).unwrap();
        assert!(ge1.contains(1e308));
        assert!(!ge1.contains(0.5));
        // NaN endpoints absorb containment on their side.
        assert!(F64I::NAI.contains(42.0));
    }

    #[test]
    fn abs_and_minmax() {
        let m = F64I::new(-3.0, 2.0).unwrap();
        let a = m.abs();
        assert_eq!(a.lo(), 0.0);
        assert_eq!(a.hi(), 3.0);
        let x = F64I::new(1.0, 5.0).unwrap();
        let y = F64I::new(2.0, 3.0).unwrap();
        assert_eq!(x.min_i(&y).lo(), 1.0);
        assert_eq!(x.min_i(&y).hi(), 3.0);
        assert_eq!(x.max_i(&y).lo(), 2.0);
        assert_eq!(x.max_i(&y).hi(), 5.0);
    }

    #[test]
    fn comparisons_three_valued() {
        let a = F64I::new(0.0, 1.0).unwrap();
        let b = F64I::new(2.0, 3.0).unwrap();
        let c = F64I::new(0.5, 2.5).unwrap();
        assert!(a.cmp_lt(&b).is_true());
        assert!(b.cmp_lt(&a).is_false());
        assert!(a.cmp_lt(&c).is_unknown());
        assert!(a.cmp_le(&b).is_true());
        assert!(b.cmp_gt(&a).is_true());
        assert!(a.cmp_eq(&a).is_unknown()); // [0,1] == [0,1] is not certain
        assert!(F64I::point(1.0).cmp_eq(&F64I::point(1.0)).is_true());
        assert!(a.cmp_eq(&b).is_false());
        assert!(a.cmp_ne(&b).is_true());
    }

    #[test]
    fn join_meet() {
        let a = F64I::new(0.0, 1.0).unwrap();
        let b = F64I::new(2.0, 3.0).unwrap();
        let j = a.join(&b);
        assert_eq!((j.lo(), j.hi()), (0.0, 3.0));
        assert!(a.meet(&b).is_none());
        let c = F64I::new(0.5, 2.5).unwrap();
        let m = a.meet(&c).unwrap();
        assert_eq!((m.lo(), m.hi()), (0.5, 1.0));
    }

    #[test]
    fn certified_bits_metric() {
        assert_eq!(F64I::point(1.0).certified_bits(), 53.0);
        // One-ulp interval: contains 2 doubles -> loses 1 bit.
        let one_ulp = F64I::new(1.0, 1.0 + f64::EPSILON).unwrap();
        assert_eq!(one_ulp.certified_bits(), 52.0);
        assert_eq!(F64I::ENTIRE.certified_bits(), 0.0);
        assert_eq!(F64I::NAI.certified_bits(), 0.0);
    }

    #[test]
    fn with_tol_covers_radius() {
        let i = F64I::with_tol(5.0, 0.25);
        assert!(i.lo() <= 4.75 && 5.25 <= i.hi());
        assert!(i.contains(5.2));
        assert!(!i.contains(5.3));
    }

    #[test]
    fn mask_bit_operations() {
        let ones = F64I::from_neg_lo_hi(f64::from_bits(u64::MAX), f64::from_bits(u64::MAX));
        let x = F64I::new(1.0, 2.0).unwrap();
        let a = x.bitand_mask(&ones);
        assert_eq!((a.lo(), a.hi()), (1.0, 2.0));
        let z = x.bitand_mask(&F64I::from_neg_lo_hi(0.0, 0.0));
        assert_eq!((z.lo(), z.hi()), (0.0, 0.0));
        let o = F64I::from_neg_lo_hi(0.0, 0.0).bitor_mask(&x);
        assert_eq!((o.lo(), o.hi()), (1.0, 2.0));
        let xo = x.bitxor_mask(&F64I::from_neg_lo_hi(0.0, 0.0));
        assert_eq!((xo.lo(), xo.hi()), (1.0, 2.0));
    }

    #[test]
    fn floor_ceil() {
        let x = F64I::new(1.2, 2.7).unwrap();
        assert_eq!((x.floor().lo(), x.floor().hi()), (1.0, 2.0));
        assert_eq!((x.ceil().lo(), x.ceil().hi()), (2.0, 3.0));
        let n = F64I::new(-1.5, -0.5).unwrap();
        assert_eq!((n.floor().lo(), n.floor().hi()), (-2.0, -1.0));
    }
}
