//! Vectorized interval types (Section IV-A "Vectorized intervals" and
//! Table II).
//!
//! In the paper's C runtime a double-precision interval occupies one SSE
//! register (`__m128d`) and the wider types pack 2 or 4 intervals into
//! AVX registers. The double-precision lane types here use the same
//! layout transposed into **SoA-in-register** form: [`F64Ix4`] holds a
//! `neg_lo[4]` column and a `hi[4]` column, so each column is exactly one
//! AVX register and every arithmetic operation maps onto the packed
//! directed-rounding kernels of [`igen_round::simd`] (add/sub are two
//! packed `add_ru` calls, mul is four packed product-pair calls plus
//! packed NaN-max reductions — the branch-free Section II recipe, four
//! intervals at a time). The kernels are selected once at runtime by CPU
//! feature detection; on non-x86-64 hosts, and under
//! [`igen_round::simd::force_backend`], the same code runs through the
//! portable scalar lane loop. All paths are bit-identical per lane to the
//! scalar [`F64I`] operations — the property tests pin this on random and
//! special-value lanes.
//!
//! The double-double lane types ([`DdIx2`], [`DdIx4`]) keep the plain
//! lane-loop shape: a `DdI` operation is a long chain of dependent EFTs
//! with little packed-width parallelism to harvest, and LLVM already
//! autovectorizes the independent lanes where profitable.

use crate::ddi::DdI;
use crate::f64i::F64I;
use crate::tbool::TBool;
use igen_dd::Dd;
use igen_round::simd;

/// Per-lane three-valued comparison verdicts from the packed compare
/// operations ([`LaneOps::cmp_lt`] and friends): one [`TBool`] per live
/// lane. Vectors narrower than 4 lanes fill only the first
/// [`TBoolLanes::lanes`] slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TBoolLanes {
    vals: [TBool; 4],
    n: usize,
}

impl TBoolLanes {
    fn new(vals: [TBool; 4], n: usize) -> TBoolLanes {
        TBoolLanes { vals, n }
    }

    /// Converts the packed tri-state masks, keeping the first `n` lanes.
    fn from_trimask(m: simd::TriMask4, n: usize) -> TBoolLanes {
        let mut vals = [TBool::Unknown; 4];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = match m.lane(i) {
                Some(true) => TBool::True,
                Some(false) => TBool::False,
                None => TBool::Unknown,
            };
        }
        TBoolLanes { vals, n }
    }

    /// Number of live lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// The verdict for lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a live lane.
    #[must_use]
    pub fn lane(&self, i: usize) -> TBool {
        assert!(i < self.n, "TBoolLanes lane index {i} out of range ({} lanes)", self.n);
        self.vals[i]
    }
}

/// The unified operation surface of the packed interval lane types —
/// every vectorized kernel in `igen-kernels`/`igen-batch` is written once
/// against this trait and instantiated for [`F64Ix2`]/[`F64Ix4`] (packed
/// x86 kernels with scalar-patch fallback) and [`DdIx2`]/[`DdIx4`]
/// (lane loops over the double-double scalar ops).
///
/// Every method is **bit-identical per lane** to the corresponding scalar
/// [`F64I`]/[`DdI`] operation: a lane of `a.sqrt()` equals
/// `a.lane(i).sqrt()` exactly, for all inputs including NaN, infinities,
/// subnormals and signed zeros (see DESIGN.md §10/§12 for why the packed
/// paths preserve this).
pub trait LaneOps:
    Copy
    + core::fmt::Debug
    + PartialEq
    + Default
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
{
    /// The scalar interval element packed in each lane.
    type Elem: Copy + core::fmt::Debug + PartialEq + core::ops::Add<Output = Self::Elem>;
    /// The raw endpoint scalar of the SoA column layout (`f64` for the
    /// double-precision lanes, [`Dd`] for the double-double ones).
    type Endpoint: Copy;

    /// Number of packed intervals.
    const LANES: usize;

    /// Broadcasts one interval to all lanes.
    fn splat(v: Self::Elem) -> Self;

    /// Builds a vector by evaluating `f` once per lane index, in order.
    fn from_lanes_fn(f: impl FnMut(usize) -> Self::Elem) -> Self;

    /// Builds directly from the leading `LANES` slots of two endpoint
    /// columns — the raw representation, used by the batch engine to
    /// feed packed kernels straight from its SoA buffers. The caller
    /// asserts every lane is a valid interval (`-neg_lo[i] <= hi[i]` or
    /// NaN).
    ///
    /// # Panics
    ///
    /// Panics if either column holds fewer than `LANES` endpoints.
    fn from_columns_slice(neg_lo: &[Self::Endpoint], hi: &[Self::Endpoint]) -> Self;

    /// Lane accessor.
    ///
    /// # Panics
    ///
    /// Debug-asserts `i < LANES` with a clear message (release builds
    /// still panic through the underlying array index).
    fn lane(&self, i: usize) -> Self::Elem;

    /// Loads the first `LANES` elements of a slice.
    ///
    /// # Panics
    ///
    /// Panics (debug-asserts with a clear message first) if
    /// `s.len() < LANES`.
    fn load(s: &[Self::Elem]) -> Self {
        debug_assert!(
            s.len() >= Self::LANES,
            "LaneOps::load: slice of {} elements cannot fill {} lanes",
            s.len(),
            Self::LANES
        );
        Self::from_lanes_fn(|i| s[i])
    }

    /// Stores the lanes to the first `LANES` slots of a slice.
    ///
    /// # Panics
    ///
    /// Panics (debug-asserts with a clear message first) if
    /// `s.len() < LANES`.
    fn store(&self, s: &mut [Self::Elem]) {
        debug_assert!(
            s.len() >= Self::LANES,
            "LaneOps::store: {} lanes do not fit in a slice of {} elements",
            Self::LANES,
            s.len()
        );
        for (i, out) in s.iter_mut().enumerate().take(Self::LANES) {
            *out = self.lane(i);
        }
    }

    /// Lane-wise multiply-accumulate `self * b + c`: the packed multiply
    /// followed by the packed add — the same operation sequence as the
    /// scalar `x * b + c` per lane.
    #[must_use]
    fn mul_add(self, b: Self, c: Self) -> Self {
        self * b + c
    }

    /// Horizontal sum of all lanes (sequential left-to-right scalar
    /// adds, so the result is independent of the packed backend).
    fn reduce_sum(self) -> Self::Elem {
        let mut acc = self.lane(0);
        for i in 1..Self::LANES {
            acc = acc + self.lane(i);
        }
        acc
    }

    /// Lane-wise interval square root.
    #[must_use]
    fn sqrt(self) -> Self;

    /// Lane-wise interval absolute value.
    #[must_use]
    fn abs(self) -> Self;

    /// Lane-wise dependency-aware interval square (`sqr`, never
    /// negative — unlike `self * self`).
    #[must_use]
    fn sqr(self) -> Self;

    /// Lane-wise rectified linear unit `max(x, [0, 0])` (exact endpoint
    /// selections only).
    #[must_use]
    fn relu(self) -> Self;

    /// Lane-wise three-valued `self < other`.
    fn cmp_lt(self, other: Self) -> TBoolLanes;

    /// Lane-wise three-valued `self <= other`.
    fn cmp_le(self, other: Self) -> TBoolLanes;

    /// Lane-wise three-valued point equality `self == other`.
    fn cmp_eq(self, other: Self) -> TBoolLanes;
}

/// Packed double-precision intervals in SoA-in-register layout: one
/// column of negated lower endpoints and one of upper endpoints, exactly
/// the scalar [`F64I`] representation transposed across `LANES` lanes.
macro_rules! f64i_lane_type {
    ($(#[$doc:meta])* $name:ident, $n:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name {
            /// Negated-lower-endpoint column (`-lo`, one slot per lane).
            neg_lo: [f64; $n],
            /// Upper-endpoint column.
            hi: [f64; $n],
        }

        impl $name {
            /// Packs `LANES` intervals.
            pub fn from_lanes(xs: [F64I; $n]) -> Self {
                $name { neg_lo: xs.map(|x| x.neg_lo()), hi: xs.map(|x| x.hi()) }
            }

            /// Builds directly from endpoint columns — the raw
            /// representation, used by the batch engine to feed packed
            /// kernels straight from its SoA buffers. The caller asserts
            /// every lane is a valid interval (`-neg_lo[i] <= hi[i]` or
            /// NaN), as with [`F64I::from_neg_lo_hi`].
            #[inline]
            pub fn from_columns(neg_lo: [f64; $n], hi: [f64; $n]) -> Self {
                #[cfg(debug_assertions)]
                for i in 0..$n {
                    let _ = F64I::from_neg_lo_hi(neg_lo[i], hi[i]);
                }
                $name { neg_lo, hi }
            }

            /// The negated-lower-endpoint column.
            #[inline]
            pub fn neg_lo_col(&self) -> &[f64; $n] {
                &self.neg_lo
            }

            /// The upper-endpoint column.
            #[inline]
            pub fn hi_col(&self) -> &[f64; $n] {
                &self.hi
            }

        }

        impl Default for $name {
            fn default() -> Self {
                let d = F64I::default();
                $name { neg_lo: [d.neg_lo(); $n], hi: [d.hi(); $n] }
            }
        }

        impl core::ops::Neg for $name {
            type Output = $name;
            /// Exact per-lane endpoint swap — free in the `(-lo, hi)`
            /// layout, no rounding involved.
            #[inline]
            fn neg(self) -> $name {
                $name { neg_lo: self.hi, hi: self.neg_lo }
            }
        }
    };
}

f64i_lane_type!(
    /// Two packed double-precision intervals — the counterpart of the
    /// paper's `m256di_1` (one AVX register holding 2 intervals). Stored
    /// as two half-filled columns; arithmetic widens into the 4-lane
    /// packed kernels (lanes are independent, so the two padding lanes
    /// cannot influence the live ones).
    F64Ix2,
    2
);

f64i_lane_type!(
    /// Four packed double-precision intervals — the counterpart of two
    /// AVX registers (`m256di_2`), the widest shape the vectorized
    /// kernels use. Each endpoint column is one 256-bit register on the
    /// AVX2 backend.
    F64Ix4,
    4
);

impl core::ops::Add for F64Ix4 {
    type Output = F64Ix4;
    /// Packed interval addition: two packed `add_ru` calls (Section II),
    /// bit-identical per lane to [`F64I::add`].
    #[inline]
    fn add(self, rhs: F64Ix4) -> F64Ix4 {
        let bk = simd::active_backend();
        F64Ix4 {
            neg_lo: simd::add_ru_4(bk, &self.neg_lo, &rhs.neg_lo),
            hi: simd::add_ru_4(bk, &self.hi, &rhs.hi),
        }
    }
}

impl core::ops::Sub for F64Ix4 {
    type Output = F64Ix4;
    /// Packed interval subtraction `a + (-b)`: endpoint-column swap plus
    /// two packed `add_ru` calls, bit-identical per lane to [`F64I::sub`].
    #[inline]
    fn sub(self, rhs: F64Ix4) -> F64Ix4 {
        let bk = simd::active_backend();
        F64Ix4 {
            neg_lo: simd::add_ru_4(bk, &self.neg_lo, &rhs.hi),
            hi: simd::add_ru_4(bk, &self.hi, &rhs.neg_lo),
        }
    }
}

impl core::ops::Mul for F64Ix4 {
    type Output = F64Ix4;
    /// Packed branch-free interval multiplication: the same four shared
    /// product/residual pairs and NaN-max endpoint reductions as
    /// [`F64I::mul`], each evaluated on whole columns. Bit-identical per
    /// lane to the scalar operation (same IEEE operation sequence; see
    /// `igen_round::simd`).
    #[inline]
    fn mul(self, rhs: F64Ix4) -> F64Ix4 {
        let bk = simd::active_backend();
        let (u1, l1) = simd::mul_ru_both_4(bk, &self.neg_lo, &rhs.neg_lo);
        let (l2, u2) = simd::mul_ru_both_4(bk, &self.neg_lo, &rhs.hi);
        let (l3, u3) = simd::mul_ru_both_4(bk, &self.hi, &rhs.neg_lo);
        let (u4, l4) = simd::mul_ru_both_4(bk, &self.hi, &rhs.hi);
        F64Ix4 {
            neg_lo: simd::max_nan_4(
                bk,
                &simd::max_nan_4(bk, &l1, &l2),
                &simd::max_nan_4(bk, &l3, &l4),
            ),
            hi: simd::max_nan_4(bk, &simd::max_nan_4(bk, &u1, &u2), &simd::max_nan_4(bk, &u3, &u4)),
        }
    }
}

impl core::ops::Div for F64Ix4 {
    type Output = F64Ix4;
    /// Packed interval division. Lanes are first screened for the scalar
    /// special cases (NaN endpoints → NAI, zero-straddling divisor →
    /// ENTIRE); if any lane is special the whole vector takes the scalar
    /// lane loop (trivially bit-identical), otherwise four packed
    /// quotient-pair calls and NaN-max reductions mirror [`F64I::div`].
    #[inline]
    fn div(self, rhs: F64Ix4) -> F64Ix4 {
        let mut special = false;
        for i in 0..4 {
            special |= self.neg_lo[i].is_nan()
                || self.hi[i].is_nan()
                || rhs.neg_lo[i].is_nan()
                || rhs.hi[i].is_nan()
                || (-rhs.neg_lo[i] <= 0.0 && rhs.hi[i] >= 0.0);
        }
        if special {
            let mut out = [F64I::default(); 4];
            for (i, lane) in out.iter_mut().enumerate() {
                *lane = self.lane(i) / rhs.lane(i);
            }
            return F64Ix4::from_lanes(out);
        }
        let bk = simd::active_backend();
        // bl = -neg_lo (the positive... sign-flipped low column), exactly
        // as the scalar kernel rebuilds the divisor's lower endpoint.
        let bl = rhs.neg_lo.map(|x| -x);
        let (l1, u1) = simd::div_ru_both_4(bk, &self.neg_lo, &bl);
        let (l2, u2) = simd::div_ru_both_4(bk, &self.neg_lo, &rhs.hi);
        let (u3, l3) = simd::div_ru_both_4(bk, &self.hi, &bl);
        let (u4, l4) = simd::div_ru_both_4(bk, &self.hi, &rhs.hi);
        F64Ix4 {
            neg_lo: simd::max_nan_4(
                bk,
                &simd::max_nan_4(bk, &l1, &l2),
                &simd::max_nan_4(bk, &l3, &l4),
            ),
            hi: simd::max_nan_4(bk, &simd::max_nan_4(bk, &u1, &u2), &simd::max_nan_4(bk, &u3, &u4)),
        }
    }
}

impl LaneOps for F64Ix4 {
    type Elem = F64I;
    type Endpoint = f64;
    const LANES: usize = 4;

    fn splat(v: F64I) -> Self {
        F64Ix4 { neg_lo: [v.neg_lo(); 4], hi: [v.hi(); 4] }
    }

    fn from_lanes_fn(f: impl FnMut(usize) -> F64I) -> Self {
        Self::from_lanes(core::array::from_fn(f))
    }

    fn from_columns_slice(neg_lo: &[f64], hi: &[f64]) -> Self {
        Self::from_columns(neg_lo[..4].try_into().unwrap(), hi[..4].try_into().unwrap())
    }

    #[inline]
    fn lane(&self, i: usize) -> F64I {
        debug_assert!(i < 4, "F64Ix4 lane index {i} out of range (4 lanes)");
        F64I::from_neg_lo_hi(self.neg_lo[i], self.hi[i])
    }

    /// Packed interval square root: `[RD(sqrt(lo)), RU(sqrt(hi))]` via
    /// the packed directed-rounding sqrt kernels; the lower endpoint
    /// mirrors through the exact column negation, exactly like the
    /// scalar `F64I::sqrt`. Bit-identical per lane (negative radicands
    /// produce the same NaN lower bounds).
    fn sqrt(self) -> Self {
        let bk = simd::active_backend();
        let lo = self.neg_lo.map(|x| -x);
        F64Ix4 { neg_lo: simd::sqrt_rd_4(bk, &lo).map(|x| -x), hi: simd::sqrt_ru_4(bk, &self.hi) }
    }

    /// Packed interval absolute value: exact packed selects replicating
    /// `F64I::abs`' decision order per lane (see `igen_round::simd::abs_4`).
    fn abs(self) -> Self {
        let bk = simd::active_backend();
        let (neg_lo, hi) = simd::abs_4(bk, &self.neg_lo, &self.hi);
        F64Ix4 { neg_lo, hi }
    }

    /// Packed dependency-aware square. The magnitude columns `m` (max)
    /// and `n` (min) are formed with exact scalar selects as in
    /// `F64I::sqr`; both directed endpoint squares then come from the
    /// packed square kernel (`RU(m²)` is its first column on `m`,
    /// `-RD(n²)` its second on `n` — scalar identities that hold
    /// bit-for-bit, see `igen_round::simd::sqr_ru_both_4`). Lanes whose
    /// square is discarded (NaN lanes; the lower square of lanes
    /// straddling zero) compute on a guard-friendly stand-in of `1.0`.
    fn sqr(self) -> Self {
        let bk = simd::active_backend();
        let mut m = [0.0; 4];
        let mut n = [0.0; 4];
        let mut nan = [false; 4];
        let mut straddle = [false; 4];
        for i in 0..4 {
            let (lo, hi) = (-self.neg_lo[i], self.hi[i]);
            nan[i] = self.neg_lo[i].is_nan() || hi.is_nan();
            straddle[i] = lo <= 0.0 && hi >= 0.0;
            let (alo, ahi) = (lo.abs(), hi.abs());
            m[i] = if nan[i] { 1.0 } else { alo.max(ahi) };
            n[i] = if nan[i] || straddle[i] { 1.0 } else { alo.min(ahi) };
        }
        let (upper, _) = simd::sqr_ru_both_4(bk, &m);
        let (_, lower_neg) = simd::sqr_ru_both_4(bk, &n);
        let mut out = F64Ix4 { neg_lo: [0.0; 4], hi: [0.0; 4] };
        for i in 0..4 {
            (out.neg_lo[i], out.hi[i]) = if nan[i] {
                (f64::NAN, f64::NAN)
            } else if straddle[i] {
                (0.0, upper[i])
            } else {
                (lower_neg[i], upper[i])
            };
        }
        out
    }

    /// Lane-wise `max_i` against `[0, 0]` — exact endpoint min/max
    /// selections only, so the plain lane loop is already bit-identical
    /// to the scalar operation (and trivially autovectorizable).
    fn relu(self) -> Self {
        Self::from_lanes_fn(|i| self.lane(i).max_i(&F64I::ZERO))
    }

    fn cmp_lt(self, other: Self) -> TBoolLanes {
        let bk = simd::active_backend();
        let m = simd::cmp_lt_4(bk, &self.neg_lo, &self.hi, &other.neg_lo, &other.hi);
        TBoolLanes::from_trimask(m, 4)
    }

    fn cmp_le(self, other: Self) -> TBoolLanes {
        let bk = simd::active_backend();
        let m = simd::cmp_le_4(bk, &self.neg_lo, &self.hi, &other.neg_lo, &other.hi);
        TBoolLanes::from_trimask(m, 4)
    }

    fn cmp_eq(self, other: Self) -> TBoolLanes {
        let bk = simd::active_backend();
        let m = simd::cmp_eq_4(bk, &self.neg_lo, &self.hi, &other.neg_lo, &other.hi);
        TBoolLanes::from_trimask(m, 4)
    }
}

impl LaneOps for F64Ix2 {
    type Elem = F64I;
    type Endpoint = f64;
    const LANES: usize = 2;

    fn splat(v: F64I) -> Self {
        F64Ix2 { neg_lo: [v.neg_lo(); 2], hi: [v.hi(); 2] }
    }

    fn from_lanes_fn(f: impl FnMut(usize) -> F64I) -> Self {
        Self::from_lanes(core::array::from_fn(f))
    }

    fn from_columns_slice(neg_lo: &[f64], hi: &[f64]) -> Self {
        Self::from_columns(neg_lo[..2].try_into().unwrap(), hi[..2].try_into().unwrap())
    }

    #[inline]
    fn lane(&self, i: usize) -> F64I {
        debug_assert!(i < 2, "F64Ix2 lane index {i} out of range (2 lanes)");
        F64I::from_neg_lo_hi(self.neg_lo[i], self.hi[i])
    }

    /// Via the 4-lane kernels; the `[1, 1]` padding lanes are valid,
    /// strictly positive operands for sqrt, so they never patch.
    fn sqrt(self) -> Self {
        Self::narrow(self.widen().sqrt())
    }

    /// Via the 4-lane kernels (see [`F64Ix4::abs`]).
    fn abs(self) -> Self {
        Self::narrow(self.widen().abs())
    }

    /// Via the 4-lane kernels; the `[1, 1]` padding squares to `[1, 1]`
    /// on the guarded fast path.
    fn sqr(self) -> Self {
        Self::narrow(self.widen().sqr())
    }

    fn relu(self) -> Self {
        Self::from_lanes_fn(|i| self.lane(i).max_i(&F64I::ZERO))
    }

    fn cmp_lt(self, other: Self) -> TBoolLanes {
        let m = self.widen().cmp_lt(other.widen());
        TBoolLanes::new([m.vals[0], m.vals[1], TBool::Unknown, TBool::Unknown], 2)
    }

    fn cmp_le(self, other: Self) -> TBoolLanes {
        let m = self.widen().cmp_le(other.widen());
        TBoolLanes::new([m.vals[0], m.vals[1], TBool::Unknown, TBool::Unknown], 2)
    }

    fn cmp_eq(self, other: Self) -> TBoolLanes {
        let m = self.widen().cmp_eq(other.widen());
        TBoolLanes::new([m.vals[0], m.vals[1], TBool::Unknown, TBool::Unknown], 2)
    }
}

impl F64Ix2 {
    /// Widens into a 4-lane vector; the two padding lanes hold `[1, 1]`,
    /// which is valid for every operation (in particular it is a
    /// zero-free divisor, so padding never forces the division fallback).
    /// Lanes are computed independently by every packed kernel, so the
    /// padding cannot influence the two live lanes.
    #[inline]
    fn widen(self) -> F64Ix4 {
        F64Ix4 {
            neg_lo: [self.neg_lo[0], self.neg_lo[1], -1.0, -1.0],
            hi: [self.hi[0], self.hi[1], 1.0, 1.0],
        }
    }

    /// Takes the two live lanes back out of a widened result.
    #[inline]
    fn narrow(v: F64Ix4) -> F64Ix2 {
        F64Ix2 { neg_lo: [v.neg_lo[0], v.neg_lo[1]], hi: [v.hi[0], v.hi[1]] }
    }
}

impl core::ops::Add for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval addition (via the 4-lane kernels; see
    /// [`F64Ix4`]'s `Add`).
    #[inline]
    fn add(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() + rhs.widen())
    }
}

impl core::ops::Sub for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval subtraction (via the 4-lane kernels).
    #[inline]
    fn sub(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() - rhs.widen())
    }
}

impl core::ops::Mul for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval multiplication (via the 4-lane kernels).
    #[inline]
    fn mul(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() * rhs.widen())
    }
}

impl core::ops::Div for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval division (via the 4-lane kernels; the `[1, 1]`
    /// padding is a zero-free divisor, so only live lanes can trigger
    /// the special-case fallback).
    #[inline]
    fn div(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() / rhs.widen())
    }
}

/// Plain lane-loop vector types (used for the double-double lanes, where
/// the long dependent EFT chains leave little packed parallelism).
macro_rules! lane_type {
    ($(#[$doc:meta])* $name:ident, $elem:ty, $n:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name(pub [$elem; $n]);

        impl $name {
            /// Packs `LANES` intervals.
            pub fn from_lanes(xs: [$elem; $n]) -> Self {
                $name(xs)
            }

            /// Applies a scalar op to every lane.
            #[inline]
            fn map(self, f: impl Fn(&$elem) -> $elem) -> Self {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = f(&self.0[i]);
                }
                $name(out)
            }
        }

        impl LaneOps for $name {
            type Elem = $elem;
            type Endpoint = Dd;
            const LANES: usize = $n;

            fn splat(v: $elem) -> Self {
                $name([v; $n])
            }

            fn from_lanes_fn(f: impl FnMut(usize) -> $elem) -> Self {
                $name(core::array::from_fn(f))
            }

            fn from_columns_slice(neg_lo: &[Dd], hi: &[Dd]) -> Self {
                Self::from_lanes_fn(|i| <$elem>::from_neg_lo_hi(neg_lo[i], hi[i]))
            }

            #[inline]
            fn lane(&self, i: usize) -> $elem {
                debug_assert!(
                    i < $n,
                    concat!(stringify!($name), " lane index {} out of range ({} lanes)"),
                    i,
                    $n
                );
                self.0[i]
            }

            fn sqrt(self) -> Self {
                self.map(|x| x.sqrt())
            }

            fn abs(self) -> Self {
                self.map(|x| x.abs())
            }

            fn sqr(self) -> Self {
                self.map(|x| x.sqr())
            }

            fn relu(self) -> Self {
                self.map(|x| x.max_i(&<$elem>::ZERO))
            }

            fn cmp_lt(self, other: Self) -> TBoolLanes {
                let mut vals = [TBool::Unknown; 4];
                for i in 0..$n {
                    vals[i] = self.0[i].cmp_lt(&other.0[i]);
                }
                TBoolLanes::new(vals, $n)
            }

            fn cmp_le(self, other: Self) -> TBoolLanes {
                let mut vals = [TBool::Unknown; 4];
                for i in 0..$n {
                    vals[i] = self.0[i].cmp_le(&other.0[i]);
                }
                TBoolLanes::new(vals, $n)
            }

            fn cmp_eq(self, other: Self) -> TBoolLanes {
                let mut vals = [TBool::Unknown; 4];
                for i in 0..$n {
                    vals[i] = self.0[i].cmp_eq(&other.0[i]);
                }
                TBoolLanes::new(vals, $n)
            }
        }

        impl core::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] + rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] - rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Mul for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] * rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Div for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] / rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = -self.0[i];
                }
                $name(out)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name([<$elem>::default(); $n])
            }
        }
    };
}

lane_type!(
    /// Two packed double-double intervals (`2 ddi` of Table II).
    DdIx2,
    DdI,
    2
);

lane_type!(
    /// Four packed double-double intervals (`4 ddi` of Table II).
    DdIx4,
    DdI,
    4
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "lane index 4 out of range")]
    fn lane_index_out_of_range_panics() {
        let v = F64Ix4::splat(F64I::point(1.0));
        let _ = v.lane(4);
    }

    #[test]
    #[should_panic(expected = "4 lanes do not fit in a slice of 3 elements")]
    fn store_into_short_slice_panics() {
        let v = F64Ix4::splat(F64I::point(1.0));
        let mut out = [F64I::ZERO; 3];
        v.store(&mut out);
    }

    #[test]
    #[should_panic(expected = "slice of 2 elements cannot fill 4 lanes")]
    fn load_from_short_slice_panics() {
        let _ = F64Ix4::load(&[F64I::ZERO; 2]);
    }

    #[test]
    fn lanes_match_scalar() {
        let a = F64I::point(0.1);
        let b = F64I::new(1.0, 2.0).unwrap();
        let va = F64Ix4::splat(a);
        let vb = F64Ix4::splat(b);
        let sum = va + vb;
        let diff = va - vb;
        let prod = va * vb;
        let quot = va / vb;
        for i in 0..4 {
            assert_eq!(sum.lane(i), a + b);
            assert_eq!(diff.lane(i), a - b);
            assert_eq!(prod.lane(i), a * b);
            assert_eq!(quot.lane(i), a / b);
        }
    }

    #[test]
    fn x2_lanes_match_scalar() {
        let a = F64I::new(-0.3, 0.7).unwrap();
        let b = F64I::new(0.11, 5.3).unwrap();
        let va = F64Ix2::from_lanes([a, b]);
        let vb = F64Ix2::from_lanes([b, a]);
        let sum = va + vb;
        let prod = va * vb;
        let quot = va / vb;
        for i in 0..2 {
            let (x, y) = (va.lane(i), vb.lane(i));
            assert_eq!(sum.lane(i), x + y);
            assert_eq!(prod.lane(i), x * y);
            assert_eq!(quot.lane(i), x / y);
        }
    }

    #[test]
    fn div_special_lanes_fall_back() {
        // One straddling divisor lane forces the scalar path for the
        // whole vector; results must still match lane-wise scalar div.
        let nums = [F64I::point(1.0), F64I::new(-2.0, 3.0).unwrap(), F64I::NAI, F64I::point(4.0)];
        let dens =
            [F64I::new(-1.0, 1.0).unwrap(), F64I::point(2.0), F64I::point(1.0), F64I::point(0.5)];
        let q = F64Ix4::from_lanes(nums) / F64Ix4::from_lanes(dens);
        for i in 0..4 {
            let want = nums[i] / dens[i];
            if want.has_nan() {
                assert!(q.lane(i).has_nan(), "lane {i}");
            } else {
                assert_eq!(q.lane(i), want, "lane {i}");
            }
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let xs =
            [F64I::point(1.0), F64I::point(2.0), F64I::new(-1.0, 1.0).unwrap(), F64I::point(4.0)];
        let v = F64Ix4::load(&xs);
        let mut out = [F64I::ZERO; 4];
        v.store(&mut out);
        assert_eq!(xs, out);
    }

    #[test]
    fn columns_hold_raw_representation() {
        let x = F64I::new(-2.0, 5.0).unwrap();
        let v = F64Ix4::splat(x);
        assert_eq!(v.neg_lo_col(), &[2.0; 4]);
        assert_eq!(v.hi_col(), &[5.0; 4]);
        let rebuilt = F64Ix4::from_columns(*v.neg_lo_col(), *v.hi_col());
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn mul_add_and_reduce() {
        let a = F64Ix2::splat(F64I::point(2.0));
        let b = F64Ix2::splat(F64I::point(3.0));
        let c = F64Ix2::splat(F64I::point(1.0));
        let r = a.mul_add(b, c);
        assert_eq!(r.lane(0).hi(), 7.0);
        assert_eq!(r.reduce_sum().hi(), 14.0);
    }

    #[test]
    fn neg_is_exact_swap() {
        let v = F64Ix4::splat(F64I::new(-1.5, 2.5).unwrap());
        let n = -v;
        for i in 0..4 {
            assert_eq!(n.lane(i), -v.lane(i));
        }
    }

    #[test]
    fn dd_lanes() {
        let x = DdI::point_f64(0.1);
        let v = DdIx2::splat(x);
        let s = v + v;
        assert!(s.lane(0).contains_f64(0.2));
        let p = v * v;
        // The dd interval is tighter than the f64-rounded product; it
        // contains the exact square of the double 0.1.
        let exact_sq = igen_dd::Dd::from(0.1) * igen_dd::Dd::from(0.1);
        assert!(p.lane(1).contains(exact_sq));
    }
}
