//! Vectorized interval types (Section IV-A "Vectorized intervals" and
//! Table II).
//!
//! In the paper's C runtime a double-precision interval occupies one SSE
//! register (`__m128d`) and the wider types pack 2 or 4 intervals into AVX
//! registers. In this Rust reproduction the directed rounding is computed
//! by branch-free error-free transformations (see `igen-round`), so the
//! lane types below are plain fixed-size arrays whose operations are
//! written as straight-line lane loops — exactly the shape LLVM's
//! auto-vectorizer turns into SSE/AVX code at `opt-level=3`. The
//! performance experiments (Fig. 8) compare these against the scalar and
//! library versions.

use crate::ddi::DdI;
use crate::f64i::F64I;

macro_rules! lane_type {
    ($(#[$doc:meta])* $name:ident, $elem:ty, $n:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name(pub [$elem; $n]);

        impl $name {
            /// Number of packed intervals.
            pub const LANES: usize = $n;

            /// Broadcasts one interval to all lanes.
            pub fn splat(v: $elem) -> Self {
                $name([v; $n])
            }

            /// Loads lanes from a slice.
            ///
            /// # Panics
            ///
            /// Panics if `s.len() < LANES`.
            pub fn load(s: &[$elem]) -> Self {
                let mut a = [<$elem>::default(); $n];
                a.copy_from_slice(&s[..$n]);
                $name(a)
            }

            /// Stores lanes to a slice.
            ///
            /// # Panics
            ///
            /// Panics if `s.len() < LANES`.
            pub fn store(&self, s: &mut [$elem]) {
                s[..$n].copy_from_slice(&self.0);
            }

            /// Lane-wise fused multiply-accumulate `self * b + c`
            /// (used heavily by the vectorized kernels).
            #[inline]
            #[must_use]
            pub fn mul_add(self, b: Self, c: Self) -> Self {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] * b.0[i] + c.0[i];
                }
                $name(out)
            }

            /// Horizontal sum of all lanes.
            pub fn reduce_sum(self) -> $elem {
                let mut acc = self.0[0];
                for i in 1..$n {
                    acc = acc + self.0[i];
                }
                acc
            }

            /// Lane accessor.
            pub fn lane(&self, i: usize) -> $elem {
                self.0[i]
            }
        }

        impl core::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] + rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] - rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Mul for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] * rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = -self.0[i];
                }
                $name(out)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name([<$elem>::default(); $n])
            }
        }
    };
}

lane_type!(
    /// Two packed double-precision intervals — the counterpart of the
    /// paper's `m256di_1` (one AVX register holding 2 intervals).
    F64Ix2,
    F64I,
    2
);

lane_type!(
    /// Four packed double-precision intervals — the counterpart of two
    /// AVX registers (`m256di_2`), the widest shape the vectorized
    /// kernels use.
    F64Ix4,
    F64I,
    4
);

lane_type!(
    /// Two packed double-double intervals (`2 ddi` of Table II).
    DdIx2,
    DdI,
    2
);

lane_type!(
    /// Four packed double-double intervals (`4 ddi` of Table II).
    DdIx4,
    DdI,
    4
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_scalar() {
        let a = F64I::point(0.1);
        let b = F64I::new(1.0, 2.0).unwrap();
        let va = F64Ix4::splat(a);
        let vb = F64Ix4::splat(b);
        let sum = va + vb;
        let prod = va * vb;
        for i in 0..4 {
            assert_eq!(sum.lane(i), a + b);
            assert_eq!(prod.lane(i), a * b);
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let xs =
            [F64I::point(1.0), F64I::point(2.0), F64I::new(-1.0, 1.0).unwrap(), F64I::point(4.0)];
        let v = F64Ix4::load(&xs);
        let mut out = [F64I::ZERO; 4];
        v.store(&mut out);
        assert_eq!(xs, out);
    }

    #[test]
    fn mul_add_and_reduce() {
        let a = F64Ix2::splat(F64I::point(2.0));
        let b = F64Ix2::splat(F64I::point(3.0));
        let c = F64Ix2::splat(F64I::point(1.0));
        let r = a.mul_add(b, c);
        assert_eq!(r.lane(0).hi(), 7.0);
        assert_eq!(r.reduce_sum().hi(), 14.0);
    }

    #[test]
    fn dd_lanes() {
        let x = DdI::point_f64(0.1);
        let v = DdIx2::splat(x);
        let s = v + v;
        assert!(s.lane(0).contains_f64(0.2));
        let p = v * v;
        // The dd interval is tighter than the f64-rounded product; it
        // contains the exact square of the double 0.1.
        let exact_sq = igen_dd::Dd::from(0.1) * igen_dd::Dd::from(0.1);
        assert!(p.lane(1).contains(exact_sq));
    }
}
