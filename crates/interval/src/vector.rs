//! Vectorized interval types (Section IV-A "Vectorized intervals" and
//! Table II).
//!
//! In the paper's C runtime a double-precision interval occupies one SSE
//! register (`__m128d`) and the wider types pack 2 or 4 intervals into
//! AVX registers. The double-precision lane types here use the same
//! layout transposed into **SoA-in-register** form: [`F64Ix4`] holds a
//! `neg_lo[4]` column and a `hi[4]` column, so each column is exactly one
//! AVX register and every arithmetic operation maps onto the packed
//! directed-rounding kernels of [`igen_round::simd`] (add/sub are two
//! packed `add_ru` calls, mul is four packed product-pair calls plus
//! packed NaN-max reductions — the branch-free Section II recipe, four
//! intervals at a time). The kernels are selected once at runtime by CPU
//! feature detection; on non-x86-64 hosts, and under
//! [`igen_round::simd::force_backend`], the same code runs through the
//! portable scalar lane loop. All paths are bit-identical per lane to the
//! scalar [`F64I`] operations — the property tests pin this on random and
//! special-value lanes.
//!
//! The double-double lane types ([`DdIx2`], [`DdIx4`]) keep the plain
//! lane-loop shape: a `DdI` operation is a long chain of dependent EFTs
//! with little packed-width parallelism to harvest, and LLVM already
//! autovectorizes the independent lanes where profitable.

use crate::ddi::DdI;
use crate::f64i::F64I;
use igen_round::simd;

/// Packed double-precision intervals in SoA-in-register layout: one
/// column of negated lower endpoints and one of upper endpoints, exactly
/// the scalar [`F64I`] representation transposed across `LANES` lanes.
macro_rules! f64i_lane_type {
    ($(#[$doc:meta])* $name:ident, $n:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name {
            /// Negated-lower-endpoint column (`-lo`, one slot per lane).
            neg_lo: [f64; $n],
            /// Upper-endpoint column.
            hi: [f64; $n],
        }

        impl $name {
            /// Number of packed intervals.
            pub const LANES: usize = $n;

            /// Broadcasts one interval to all lanes.
            pub fn splat(v: F64I) -> Self {
                $name { neg_lo: [v.neg_lo(); $n], hi: [v.hi(); $n] }
            }

            /// Packs `LANES` intervals.
            pub fn from_lanes(xs: [F64I; $n]) -> Self {
                $name { neg_lo: xs.map(|x| x.neg_lo()), hi: xs.map(|x| x.hi()) }
            }

            /// Builds directly from endpoint columns — the raw
            /// representation, used by the batch engine to feed packed
            /// kernels straight from its SoA buffers. The caller asserts
            /// every lane is a valid interval (`-neg_lo[i] <= hi[i]` or
            /// NaN), as with [`F64I::from_neg_lo_hi`].
            #[inline]
            pub fn from_columns(neg_lo: [f64; $n], hi: [f64; $n]) -> Self {
                #[cfg(debug_assertions)]
                for i in 0..$n {
                    let _ = F64I::from_neg_lo_hi(neg_lo[i], hi[i]);
                }
                $name { neg_lo, hi }
            }

            /// The negated-lower-endpoint column.
            #[inline]
            pub fn neg_lo_col(&self) -> &[f64; $n] {
                &self.neg_lo
            }

            /// The upper-endpoint column.
            #[inline]
            pub fn hi_col(&self) -> &[f64; $n] {
                &self.hi
            }

            /// Loads lanes from a slice.
            ///
            /// # Panics
            ///
            /// Panics if `s.len() < LANES`.
            pub fn load(s: &[F64I]) -> Self {
                let mut a = [F64I::default(); $n];
                a.copy_from_slice(&s[..$n]);
                Self::from_lanes(a)
            }

            /// Stores lanes to a slice.
            ///
            /// # Panics
            ///
            /// Panics if `s.len() < LANES`.
            pub fn store(&self, s: &mut [F64I]) {
                for i in 0..$n {
                    s[i] = self.lane(i);
                }
            }

            /// Lane-wise fused multiply-accumulate `self * b + c`
            /// (used heavily by the vectorized kernels). Performs the
            /// packed multiply followed by the packed add — the same
            /// operation sequence as the scalar `x * b + c` per lane.
            #[inline]
            #[must_use]
            pub fn mul_add(self, b: Self, c: Self) -> Self {
                self * b + c
            }

            /// Horizontal sum of all lanes (sequential left-to-right
            /// scalar adds, so the result is independent of the packed
            /// backend).
            pub fn reduce_sum(self) -> F64I {
                let mut acc = self.lane(0);
                for i in 1..$n {
                    acc = acc + self.lane(i);
                }
                acc
            }

            /// Lane accessor.
            #[inline]
            pub fn lane(&self, i: usize) -> F64I {
                F64I::from_neg_lo_hi(self.neg_lo[i], self.hi[i])
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::splat(F64I::default())
            }
        }

        impl core::ops::Neg for $name {
            type Output = $name;
            /// Exact per-lane endpoint swap — free in the `(-lo, hi)`
            /// layout, no rounding involved.
            #[inline]
            fn neg(self) -> $name {
                $name { neg_lo: self.hi, hi: self.neg_lo }
            }
        }
    };
}

f64i_lane_type!(
    /// Two packed double-precision intervals — the counterpart of the
    /// paper's `m256di_1` (one AVX register holding 2 intervals). Stored
    /// as two half-filled columns; arithmetic widens into the 4-lane
    /// packed kernels (lanes are independent, so the two padding lanes
    /// cannot influence the live ones).
    F64Ix2,
    2
);

f64i_lane_type!(
    /// Four packed double-precision intervals — the counterpart of two
    /// AVX registers (`m256di_2`), the widest shape the vectorized
    /// kernels use. Each endpoint column is one 256-bit register on the
    /// AVX2 backend.
    F64Ix4,
    4
);

impl core::ops::Add for F64Ix4 {
    type Output = F64Ix4;
    /// Packed interval addition: two packed `add_ru` calls (Section II),
    /// bit-identical per lane to [`F64I::add`].
    #[inline]
    fn add(self, rhs: F64Ix4) -> F64Ix4 {
        let bk = simd::active_backend();
        F64Ix4 {
            neg_lo: simd::add_ru_4(bk, &self.neg_lo, &rhs.neg_lo),
            hi: simd::add_ru_4(bk, &self.hi, &rhs.hi),
        }
    }
}

impl core::ops::Sub for F64Ix4 {
    type Output = F64Ix4;
    /// Packed interval subtraction `a + (-b)`: endpoint-column swap plus
    /// two packed `add_ru` calls, bit-identical per lane to [`F64I::sub`].
    #[inline]
    fn sub(self, rhs: F64Ix4) -> F64Ix4 {
        let bk = simd::active_backend();
        F64Ix4 {
            neg_lo: simd::add_ru_4(bk, &self.neg_lo, &rhs.hi),
            hi: simd::add_ru_4(bk, &self.hi, &rhs.neg_lo),
        }
    }
}

impl core::ops::Mul for F64Ix4 {
    type Output = F64Ix4;
    /// Packed branch-free interval multiplication: the same four shared
    /// product/residual pairs and NaN-max endpoint reductions as
    /// [`F64I::mul`], each evaluated on whole columns. Bit-identical per
    /// lane to the scalar operation (same IEEE operation sequence; see
    /// `igen_round::simd`).
    #[inline]
    fn mul(self, rhs: F64Ix4) -> F64Ix4 {
        let bk = simd::active_backend();
        let (u1, l1) = simd::mul_ru_both_4(bk, &self.neg_lo, &rhs.neg_lo);
        let (l2, u2) = simd::mul_ru_both_4(bk, &self.neg_lo, &rhs.hi);
        let (l3, u3) = simd::mul_ru_both_4(bk, &self.hi, &rhs.neg_lo);
        let (u4, l4) = simd::mul_ru_both_4(bk, &self.hi, &rhs.hi);
        F64Ix4 {
            neg_lo: simd::max_nan_4(
                bk,
                &simd::max_nan_4(bk, &l1, &l2),
                &simd::max_nan_4(bk, &l3, &l4),
            ),
            hi: simd::max_nan_4(bk, &simd::max_nan_4(bk, &u1, &u2), &simd::max_nan_4(bk, &u3, &u4)),
        }
    }
}

impl core::ops::Div for F64Ix4 {
    type Output = F64Ix4;
    /// Packed interval division. Lanes are first screened for the scalar
    /// special cases (NaN endpoints → NAI, zero-straddling divisor →
    /// ENTIRE); if any lane is special the whole vector takes the scalar
    /// lane loop (trivially bit-identical), otherwise four packed
    /// quotient-pair calls and NaN-max reductions mirror [`F64I::div`].
    #[inline]
    fn div(self, rhs: F64Ix4) -> F64Ix4 {
        let mut special = false;
        for i in 0..4 {
            special |= self.neg_lo[i].is_nan()
                || self.hi[i].is_nan()
                || rhs.neg_lo[i].is_nan()
                || rhs.hi[i].is_nan()
                || (-rhs.neg_lo[i] <= 0.0 && rhs.hi[i] >= 0.0);
        }
        if special {
            let mut out = [F64I::default(); 4];
            for (i, lane) in out.iter_mut().enumerate() {
                *lane = self.lane(i) / rhs.lane(i);
            }
            return F64Ix4::from_lanes(out);
        }
        let bk = simd::active_backend();
        // bl = -neg_lo (the positive... sign-flipped low column), exactly
        // as the scalar kernel rebuilds the divisor's lower endpoint.
        let bl = rhs.neg_lo.map(|x| -x);
        let (l1, u1) = simd::div_ru_both_4(bk, &self.neg_lo, &bl);
        let (l2, u2) = simd::div_ru_both_4(bk, &self.neg_lo, &rhs.hi);
        let (u3, l3) = simd::div_ru_both_4(bk, &self.hi, &bl);
        let (u4, l4) = simd::div_ru_both_4(bk, &self.hi, &rhs.hi);
        F64Ix4 {
            neg_lo: simd::max_nan_4(
                bk,
                &simd::max_nan_4(bk, &l1, &l2),
                &simd::max_nan_4(bk, &l3, &l4),
            ),
            hi: simd::max_nan_4(bk, &simd::max_nan_4(bk, &u1, &u2), &simd::max_nan_4(bk, &u3, &u4)),
        }
    }
}

impl F64Ix2 {
    /// Widens into a 4-lane vector; the two padding lanes hold `[1, 1]`,
    /// which is valid for every operation (in particular it is a
    /// zero-free divisor, so padding never forces the division fallback).
    /// Lanes are computed independently by every packed kernel, so the
    /// padding cannot influence the two live lanes.
    #[inline]
    fn widen(self) -> F64Ix4 {
        F64Ix4 {
            neg_lo: [self.neg_lo[0], self.neg_lo[1], -1.0, -1.0],
            hi: [self.hi[0], self.hi[1], 1.0, 1.0],
        }
    }

    /// Takes the two live lanes back out of a widened result.
    #[inline]
    fn narrow(v: F64Ix4) -> F64Ix2 {
        F64Ix2 { neg_lo: [v.neg_lo[0], v.neg_lo[1]], hi: [v.hi[0], v.hi[1]] }
    }
}

impl core::ops::Add for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval addition (via the 4-lane kernels; see
    /// [`F64Ix4`]'s `Add`).
    #[inline]
    fn add(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() + rhs.widen())
    }
}

impl core::ops::Sub for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval subtraction (via the 4-lane kernels).
    #[inline]
    fn sub(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() - rhs.widen())
    }
}

impl core::ops::Mul for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval multiplication (via the 4-lane kernels).
    #[inline]
    fn mul(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() * rhs.widen())
    }
}

impl core::ops::Div for F64Ix2 {
    type Output = F64Ix2;
    /// Packed interval division (via the 4-lane kernels; the `[1, 1]`
    /// padding is a zero-free divisor, so only live lanes can trigger
    /// the special-case fallback).
    #[inline]
    fn div(self, rhs: F64Ix2) -> F64Ix2 {
        Self::narrow(self.widen() / rhs.widen())
    }
}

/// Plain lane-loop vector types (used for the double-double lanes, where
/// the long dependent EFT chains leave little packed parallelism).
macro_rules! lane_type {
    ($(#[$doc:meta])* $name:ident, $elem:ty, $n:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name(pub [$elem; $n]);

        impl $name {
            /// Number of packed intervals.
            pub const LANES: usize = $n;

            /// Broadcasts one interval to all lanes.
            pub fn splat(v: $elem) -> Self {
                $name([v; $n])
            }

            /// Packs `LANES` intervals.
            pub fn from_lanes(xs: [$elem; $n]) -> Self {
                $name(xs)
            }

            /// Loads lanes from a slice.
            ///
            /// # Panics
            ///
            /// Panics if `s.len() < LANES`.
            pub fn load(s: &[$elem]) -> Self {
                let mut a = [<$elem>::default(); $n];
                a.copy_from_slice(&s[..$n]);
                $name(a)
            }

            /// Stores lanes to a slice.
            ///
            /// # Panics
            ///
            /// Panics if `s.len() < LANES`.
            pub fn store(&self, s: &mut [$elem]) {
                s[..$n].copy_from_slice(&self.0);
            }

            /// Lane-wise fused multiply-accumulate `self * b + c`
            /// (used heavily by the vectorized kernels).
            #[inline]
            #[must_use]
            pub fn mul_add(self, b: Self, c: Self) -> Self {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] * b.0[i] + c.0[i];
                }
                $name(out)
            }

            /// Horizontal sum of all lanes.
            pub fn reduce_sum(self) -> $elem {
                let mut acc = self.0[0];
                for i in 1..$n {
                    acc = acc + self.0[i];
                }
                acc
            }

            /// Lane accessor.
            pub fn lane(&self, i: usize) -> $elem {
                self.0[i]
            }
        }

        impl core::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] + rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] - rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Mul for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] * rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Div for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: $name) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = self.0[i] / rhs.0[i];
                }
                $name(out)
            }
        }

        impl core::ops::Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                let mut out = [<$elem>::default(); $n];
                for i in 0..$n {
                    out[i] = -self.0[i];
                }
                $name(out)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name([<$elem>::default(); $n])
            }
        }
    };
}

lane_type!(
    /// Two packed double-double intervals (`2 ddi` of Table II).
    DdIx2,
    DdI,
    2
);

lane_type!(
    /// Four packed double-double intervals (`4 ddi` of Table II).
    DdIx4,
    DdI,
    4
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_scalar() {
        let a = F64I::point(0.1);
        let b = F64I::new(1.0, 2.0).unwrap();
        let va = F64Ix4::splat(a);
        let vb = F64Ix4::splat(b);
        let sum = va + vb;
        let diff = va - vb;
        let prod = va * vb;
        let quot = va / vb;
        for i in 0..4 {
            assert_eq!(sum.lane(i), a + b);
            assert_eq!(diff.lane(i), a - b);
            assert_eq!(prod.lane(i), a * b);
            assert_eq!(quot.lane(i), a / b);
        }
    }

    #[test]
    fn x2_lanes_match_scalar() {
        let a = F64I::new(-0.3, 0.7).unwrap();
        let b = F64I::new(0.11, 5.3).unwrap();
        let va = F64Ix2::from_lanes([a, b]);
        let vb = F64Ix2::from_lanes([b, a]);
        let sum = va + vb;
        let prod = va * vb;
        let quot = va / vb;
        for i in 0..2 {
            let (x, y) = (va.lane(i), vb.lane(i));
            assert_eq!(sum.lane(i), x + y);
            assert_eq!(prod.lane(i), x * y);
            assert_eq!(quot.lane(i), x / y);
        }
    }

    #[test]
    fn div_special_lanes_fall_back() {
        // One straddling divisor lane forces the scalar path for the
        // whole vector; results must still match lane-wise scalar div.
        let nums = [F64I::point(1.0), F64I::new(-2.0, 3.0).unwrap(), F64I::NAI, F64I::point(4.0)];
        let dens =
            [F64I::new(-1.0, 1.0).unwrap(), F64I::point(2.0), F64I::point(1.0), F64I::point(0.5)];
        let q = F64Ix4::from_lanes(nums) / F64Ix4::from_lanes(dens);
        for i in 0..4 {
            let want = nums[i] / dens[i];
            if want.has_nan() {
                assert!(q.lane(i).has_nan(), "lane {i}");
            } else {
                assert_eq!(q.lane(i), want, "lane {i}");
            }
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let xs =
            [F64I::point(1.0), F64I::point(2.0), F64I::new(-1.0, 1.0).unwrap(), F64I::point(4.0)];
        let v = F64Ix4::load(&xs);
        let mut out = [F64I::ZERO; 4];
        v.store(&mut out);
        assert_eq!(xs, out);
    }

    #[test]
    fn columns_hold_raw_representation() {
        let x = F64I::new(-2.0, 5.0).unwrap();
        let v = F64Ix4::splat(x);
        assert_eq!(v.neg_lo_col(), &[2.0; 4]);
        assert_eq!(v.hi_col(), &[5.0; 4]);
        let rebuilt = F64Ix4::from_columns(*v.neg_lo_col(), *v.hi_col());
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn mul_add_and_reduce() {
        let a = F64Ix2::splat(F64I::point(2.0));
        let b = F64Ix2::splat(F64I::point(3.0));
        let c = F64Ix2::splat(F64I::point(1.0));
        let r = a.mul_add(b, c);
        assert_eq!(r.lane(0).hi(), 7.0);
        assert_eq!(r.reduce_sum().hi(), 14.0);
    }

    #[test]
    fn neg_is_exact_swap() {
        let v = F64Ix4::splat(F64I::new(-1.5, 2.5).unwrap());
        let n = -v;
        for i in 0..4 {
            assert_eq!(n.lane(i), -v.lane(i));
        }
    }

    #[test]
    fn dd_lanes() {
        let x = DdI::point_f64(0.1);
        let v = DdIx2::splat(x);
        let s = v + v;
        assert!(s.lane(0).contains_f64(0.2));
        let p = v * v;
        // The dd interval is tighter than the f64-rounded product; it
        // contains the exact square of the double 0.1.
        let exact_sq = igen_dd::Dd::from(0.1) * igen_dd::Dd::from(0.1);
        assert!(p.lane(1).contains(exact_sq));
    }
}
