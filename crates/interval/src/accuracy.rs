//! The accuracy metric of Section VII.
//!
//! > "We measure the number of correct bits by subtracting the loss of
//! > accuracy from the number of bits used by the given precision (53 and
//! > 106 bits for double and double-double). The loss of accuracy is the
//! > base-2 logarithm of the number of double precision floating-point
//! > values contained in an interval."

use igen_dd::Dd;
use igen_round::{exponent, ulps_between};

/// Certified bits of a double-precision interval `[lo, hi]` out of 53.
///
/// A point interval certifies 53 bits; each doubling of the number of
/// contained binary64 values costs one bit; non-finite or NaN bounds
/// certify nothing.
pub fn certified_bits_f64(lo: f64, hi: f64) -> f64 {
    if lo.is_nan() || hi.is_nan() || !lo.is_finite() || !hi.is_finite() || lo > hi {
        return 0.0;
    }
    let steps = ulps_between(lo, hi);
    (53.0 - ((steps + 1) as f64).log2()).max(0.0)
}

/// Certified bits of a double-double interval out of 106.
///
/// The loss is `log2(width / q + 1)` where `q = 2^(e_mid - 105)` is the
/// double-double quantum at the midpoint's binade — the direct
/// generalization of counting contained values to the 106-bit grid.
pub fn certified_bits_dd(lo: Dd, hi: Dd) -> f64 {
    if lo.is_nan() || hi.is_nan() || !lo.is_finite() || !hi.is_finite() {
        return 0.0;
    }
    if hi.lt(&lo) {
        return 0.0;
    }
    let width = igen_dd::sub_dir::<igen_round::Ru>(hi, lo);
    if width.is_zero() {
        return 106.0;
    }
    // Midpoint magnitude scale.
    let mid_mag = lo.abs().max(hi.abs());
    if mid_mag.is_zero() {
        return 106.0;
    }
    let e_mid = exponent(mid_mag.hi());
    let e_w = exponent(width.hi());
    // loss ≈ log2(width) - (e_mid - 105); refine with the width mantissa.
    let frac = width.hi().abs() / pow2(e_w);
    let loss = (e_w as f64 + frac.log2()) - (e_mid as f64 - 105.0);
    (106.0 - loss.max(0.0)).clamp(0.0, 106.0)
}

fn pow2(n: i32) -> f64 {
    if n >= -1022 {
        f64::from_bits(((1023 + n) as u64) << 52)
    } else if n >= -1074 {
        f64::from_bits(1u64 << (n + 1074))
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_metric_basics() {
        assert_eq!(certified_bits_f64(1.0, 1.0), 53.0);
        assert_eq!(certified_bits_f64(1.0, 1.0 + f64::EPSILON), 52.0);
        // 2^k ulps -> 53 - log2(2^k + 1) ≈ 53 - k.
        let mut hi = 1.0f64;
        for _ in 0..16 {
            hi = igen_round::next_up(hi);
        }
        let bits = certified_bits_f64(1.0, hi);
        assert!((bits - (53.0 - (17f64).log2())).abs() < 1e-12);
        assert_eq!(certified_bits_f64(f64::NEG_INFINITY, 1.0), 0.0);
        assert_eq!(certified_bits_f64(f64::NAN, 1.0), 0.0);
    }

    #[test]
    fn dd_metric_basics() {
        let one = Dd::from(1.0);
        assert_eq!(certified_bits_dd(one, one), 106.0);
        // Width of one dd quantum at 1.0: 2^-105 -> ~105 bits.
        let hi = one + Dd::new(0.0, 2f64.powi(-105));
        let bits = certified_bits_dd(one, hi);
        assert!((bits - 105.0).abs() < 1.1, "bits = {bits}");
        // Width of one f64 ulp: 2^-52 -> ~53 bits.
        let hi2 = Dd::from(1.0 + f64::EPSILON);
        let bits2 = certified_bits_dd(one, hi2);
        assert!((bits2 - 53.0).abs() < 1.1, "bits = {bits2}");
        assert_eq!(certified_bits_dd(Dd::NAN, one), 0.0);
    }

    #[test]
    fn dd_metric_monotone_in_width() {
        let one = Dd::from(1.0);
        let mut last = 106.0;
        for k in [-100, -80, -60, -40, -20, -10, -5] {
            let hi = one + Dd::from(2f64.powi(k));
            let bits = certified_bits_dd(one, hi);
            assert!(bits < last, "k={k}: {bits} !< {last}");
            last = bits;
        }
    }
}
