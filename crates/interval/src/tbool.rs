//! Three-valued booleans for interval comparisons (Section IV-B).
//!
//! Comparing two overlapping intervals cannot be decided, so IGen's
//! runtime models branch conditions with `tbool`: true, false, or unknown.
//! Converting an unknown to a branch decision signals an exception by
//! default (the compiler's alternative is to emit both branches and join).

/// The error signalled when a branch condition is unknown (the paper's
/// default policy for `ia_cvt2bool_tb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownBranch;

impl core::fmt::Display for UnknownBranch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "interval comparison is unknown: cannot decide branch")
    }
}

impl std::error::Error for UnknownBranch {}

/// A three-valued boolean (`tbool` in the generated C).
///
/// # Example
///
/// ```
/// use igen_interval::{F64I, TBool};
/// let a = F64I::new(0.0, 2.0).unwrap();
/// let b = F64I::new(1.0, 3.0).unwrap();
/// assert_eq!(a.cmp_lt(&b), TBool::Unknown); // [0,2] < [1,3] is undecidable
/// assert!(a.cmp_lt(&b).to_bool().is_err()); // default policy: exception
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TBool {
    /// The comparison holds for every pair of points.
    True,
    /// The comparison fails for every pair of points.
    False,
    /// Undecidable: some pairs satisfy it, some do not.
    #[default]
    Unknown,
}

impl TBool {
    /// Lifts a definite boolean.
    pub fn from_bool(b: bool) -> TBool {
        if b {
            TBool::True
        } else {
            TBool::False
        }
    }

    /// Converts to a branch decision — the `ia_cvt2bool_tb` of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownBranch`] when the value is [`TBool::Unknown`].
    pub fn to_bool(self) -> Result<bool, UnknownBranch> {
        match self {
            TBool::True => Ok(true),
            TBool::False => Ok(false),
            TBool::Unknown => Err(UnknownBranch),
        }
    }

    /// Kleene three-valued negation (named after the runtime's
    /// `ia_not_tb`; `std::ops::Not` is also implemented and forwards
    /// here).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> TBool {
        match self {
            TBool::True => TBool::False,
            TBool::False => TBool::True,
            TBool::Unknown => TBool::Unknown,
        }
    }

    /// Kleene three-valued conjunction.
    #[must_use]
    pub fn and(self, other: TBool) -> TBool {
        match (self, other) {
            (TBool::False, _) | (_, TBool::False) => TBool::False,
            (TBool::True, TBool::True) => TBool::True,
            _ => TBool::Unknown,
        }
    }

    /// Kleene three-valued disjunction.
    #[must_use]
    pub fn or(self, other: TBool) -> TBool {
        match (self, other) {
            (TBool::True, _) | (_, TBool::True) => TBool::True,
            (TBool::False, TBool::False) => TBool::False,
            _ => TBool::Unknown,
        }
    }

    /// True iff definitely true.
    pub fn is_true(self) -> bool {
        self == TBool::True
    }

    /// True iff definitely false.
    pub fn is_false(self) -> bool {
        self == TBool::False
    }

    /// True iff undecidable.
    pub fn is_unknown(self) -> bool {
        self == TBool::Unknown
    }
}

impl core::fmt::Display for TBool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TBool::True => write!(f, "true"),
            TBool::False => write!(f, "false"),
            TBool::Unknown => write!(f, "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_truth_tables() {
        use TBool::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn conversion_policy() {
        assert_eq!(TBool::True.to_bool(), Ok(true));
        assert_eq!(TBool::False.to_bool(), Ok(false));
        assert_eq!(TBool::Unknown.to_bool(), Err(UnknownBranch));
        assert_eq!(TBool::from_bool(true), TBool::True);
    }

    #[test]
    fn de_morgan_holds() {
        use TBool::*;
        for a in [True, False, Unknown] {
            for b in [True, False, Unknown] {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }
}
