//! The double-double interval type `ddi` (Section VI-A).
//!
//! Endpoints are double-double numbers, giving ≥106 bits of precision —
//! enough to keep error accumulation small and certify *double precision*
//! results (at most one bit of error) for the paper's benchmarks. Like
//! [`crate::F64I`], the lower endpoint is stored negated so every kernel
//! runs with upward rounding only; per Lemma 1 the upward-rounded
//! double-double algorithms produce upper bounds, which is exactly what
//! both (negated-low and high) endpoints need.

use crate::f64i::F64I;
use crate::tbool::TBool;
use igen_dd::{add_dir, div_bounds, mul_dir, sqrt_bounds, Dd};
use igen_round::{next_up, Rd, Rounded, Ru};

/// A sound interval with double-double endpoints (`ddi` in the generated
/// C; maps onto one `__m256d` per Table II).
///
/// # Example
///
/// ```
/// use igen_interval::{DdI, F64I};
/// let x = DdI::point_f64(0.1);
/// let mut acc = DdI::ZERO;
/// for _ in 0..1000 {
///     acc = acc + x;
/// }
/// // After 1000 accumulations the result still certifies a unique double:
/// assert_eq!(acc.certified_f64(), Some(0.1 * 1000.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdI {
    /// Negated lower endpoint.
    neg_lo: Dd,
    /// Upper endpoint.
    hi: Dd,
}

fn dd_max(a: Dd, b: Dd) -> Dd {
    if a.is_nan() || b.is_nan() {
        return Dd::from_parts_unchecked(f64::NAN, f64::NAN);
    }
    a.max(b)
}

/// Directed `x^n` for `x >= 0`: square-and-multiply where every dd
/// multiplication rounds in the direction `R` — all factors nonnegative,
/// so the chain stays one-sided.
fn dd_pow_dir<R: Rounded>(x: Dd, mut n: u32) -> Dd {
    let mut base = x;
    let mut acc = Dd::ONE;
    while n > 0 {
        if n & 1 == 1 {
            acc = mul_dir::<R>(acc, base);
        }
        n >>= 1;
        if n > 0 {
            base = mul_dir::<R>(base, base);
        }
    }
    acc
}

fn dd_min(a: Dd, b: Dd) -> Dd {
    if a.is_nan() || b.is_nan() {
        return Dd::from_parts_unchecked(f64::NAN, f64::NAN);
    }
    a.min(b)
}

impl DdI {
    /// `[0, 0]`.
    pub const ZERO: DdI = DdI { neg_lo: Dd::ZERO, hi: Dd::ZERO };
    /// `[1, 1]`.
    pub const ONE: DdI = DdI { neg_lo: Dd::ZERO, hi: Dd::ONE };
    /// The whole line.
    pub const ENTIRE: DdI = DdI { neg_lo: Dd::INFINITY, hi: Dd::INFINITY };

    /// The fully-unknown interval.
    pub fn nai() -> DdI {
        DdI { neg_lo: Dd::NAN, hi: Dd::NAN }
    }

    /// Point interval from an f64 (exact).
    pub fn point_f64(x: f64) -> DdI {
        DdI { neg_lo: Dd::from(-x), hi: Dd::from(x) }
    }

    /// Point interval from a double-double value (exact).
    pub fn point(x: Dd) -> DdI {
        DdI { neg_lo: x.neg(), hi: x }
    }

    /// Interval `[lo, hi]` from double-double endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`crate::InvalidInterval`] if `lo > hi`.
    pub fn new(lo: Dd, hi: Dd) -> Result<DdI, crate::InvalidInterval> {
        if lo.cmp_num(&hi) == Some(core::cmp::Ordering::Greater) {
            return Err(crate::InvalidInterval);
        }
        Ok(DdI { neg_lo: lo.neg(), hi })
    }

    /// Promotion of a double-precision interval (exact).
    pub fn from_f64i(x: &F64I) -> DdI {
        DdI { neg_lo: Dd::from(x.neg_lo()), hi: Dd::from(x.hi()) }
    }

    /// Demotion to a double-precision interval (outward rounded).
    pub fn to_f64i(&self) -> F64I {
        F64I::from_neg_lo_hi(f64_upper(self.neg_lo), f64_upper(self.hi))
    }

    /// Raw constructor from the internal representation: the *negated*
    /// lower endpoint and the upper endpoint. The structure-of-arrays
    /// batch buffers (`igen-batch`) store exactly these components so
    /// intervals can be reassembled with two loads and no negation.
    pub fn from_neg_lo_hi(neg_lo: Dd, hi: Dd) -> DdI {
        DdI { neg_lo, hi }
    }

    /// The negated lower endpoint (the stored representation).
    #[inline]
    #[must_use]
    pub fn neg_lo(&self) -> Dd {
        self.neg_lo
    }

    /// Lower endpoint.
    #[inline]
    #[must_use]
    pub fn lo(&self) -> Dd {
        self.neg_lo.neg()
    }

    /// Upper endpoint.
    #[inline]
    #[must_use]
    pub fn hi(&self) -> Dd {
        self.hi
    }

    /// True if any endpoint component is NaN.
    #[inline]
    #[must_use]
    pub fn has_nan(&self) -> bool {
        self.neg_lo.is_nan() || self.hi.is_nan()
    }

    /// Upper bound of the interval width `hi - lo`.
    pub fn width(&self) -> Dd {
        add_dir::<Ru>(self.hi, self.neg_lo)
    }

    /// True if the double-double value `x` lies inside.
    pub fn contains(&self, x: Dd) -> bool {
        if x.is_nan() {
            return self.has_nan();
        }
        let lo_ok = self.neg_lo.is_nan() || self.lo().le(&x);
        let hi_ok = self.hi.is_nan() || x.le(&self.hi);
        lo_ok && hi_ok
    }

    /// True if the f64 value lies inside.
    pub fn contains_f64(&self, x: f64) -> bool {
        self.contains(Dd::from(x))
    }

    /// Negation (endpoint swap, exact).
    #[must_use]
    #[inline]
    pub fn neg(&self) -> DdI {
        DdI { neg_lo: self.hi, hi: self.neg_lo }
    }

    /// Interval hull.
    #[must_use]
    pub fn join(&self, other: &DdI) -> DdI {
        DdI { neg_lo: dd_max(self.neg_lo, other.neg_lo), hi: dd_max(self.hi, other.hi) }
    }

    /// Absolute value.
    #[must_use]
    #[inline]
    pub fn abs(&self) -> DdI {
        if self.has_nan() {
            return DdI::nai();
        }
        if !self.lo().is_sign_negative() {
            *self
        } else if self.hi.is_sign_negative() || self.hi.is_zero() {
            self.neg()
        } else {
            DdI { neg_lo: Dd::ZERO, hi: dd_max(self.neg_lo, self.hi) }
        }
    }

    /// Addition: two upward-rounded double-double additions (40 flops
    /// each, Table III).
    #[inline]
    #[must_use]
    pub fn add(&self, other: &DdI) -> DdI {
        DdI {
            neg_lo: add_dir::<Ru>(self.neg_lo, other.neg_lo),
            hi: add_dir::<Ru>(self.hi, other.hi),
        }
    }

    /// Subtraction.
    #[inline]
    #[must_use]
    pub fn sub(&self, other: &DdI) -> DdI {
        DdI {
            neg_lo: add_dir::<Ru>(self.neg_lo, other.hi),
            hi: add_dir::<Ru>(self.hi, other.neg_lo),
        }
    }

    /// Multiplication: eight upward-rounded double-double products and six
    /// max selections (114 flops per product pair, Table III).
    #[inline]
    #[must_use]
    pub fn mul(&self, other: &DdI) -> DdI {
        let (na, ah) = (self.neg_lo, self.hi);
        let (nb, bh) = (other.neg_lo, other.hi);
        let u1 = mul_dir::<Ru>(na, nb);
        let u2 = mul_dir::<Ru>(na.neg(), bh);
        let u3 = mul_dir::<Ru>(ah, nb.neg());
        let u4 = mul_dir::<Ru>(ah, bh);
        let l1 = mul_dir::<Ru>(na.neg(), nb);
        let l2 = mul_dir::<Ru>(na, bh);
        let l3 = mul_dir::<Ru>(ah, nb);
        let l4 = mul_dir::<Ru>(ah.neg(), bh);
        DdI {
            neg_lo: dd_max(dd_max(l1, l2), dd_max(l3, l4)),
            hi: dd_max(dd_max(u1, u2), dd_max(u3, u4)),
        }
    }

    /// Interval square: the dependency-aware `x·x` (see [`F64I::sqr`];
    /// `[-1, 2]² = [0, 4]`).
    ///
    /// [`F64I::sqr`]: crate::F64I::sqr
    #[must_use]
    #[inline]
    pub fn sqr(&self) -> DdI {
        if self.has_nan() {
            return DdI::nai();
        }
        let a = self.abs();
        let (alo, ahi) = (a.lo(), a.hi);
        DdI { neg_lo: mul_dir::<Rd>(alo, alo).neg(), hi: mul_dir::<Ru>(ahi, ahi) }
    }

    /// Dependency-aware integer power (see [`F64I::powi`] for the
    /// conventions: `n == 0` gives `[1, 1]`, negative exponents divide,
    /// even powers decompose through `|x|`).
    ///
    /// [`F64I::powi`]: crate::F64I::powi
    #[must_use]
    #[inline]
    pub fn powi(&self, n: i32) -> DdI {
        if self.has_nan() {
            return DdI::nai();
        }
        if n == 0 {
            return DdI::point_f64(1.0);
        }
        if n < 0 {
            return DdI::point_f64(1.0).div(&self.powi(n.checked_neg().unwrap_or(i32::MAX)));
        }
        if n % 2 == 0 {
            let a = self.abs();
            return DdI {
                neg_lo: dd_pow_dir::<Rd>(a.lo(), n as u32).neg(),
                hi: dd_pow_dir::<Ru>(a.hi, n as u32),
            };
        }
        // Odd: monotone; signed endpoint powers with outward rounding.
        let (lo, hi) = (self.lo(), self.hi);
        let plo = if lo.is_sign_negative() {
            dd_pow_dir::<Ru>(lo.neg(), n as u32).neg()
        } else {
            dd_pow_dir::<Rd>(lo, n as u32)
        };
        let phi = if hi.is_sign_negative() {
            dd_pow_dir::<Rd>(hi.neg(), n as u32).neg()
        } else {
            dd_pow_dir::<Ru>(hi, n as u32)
        };
        DdI { neg_lo: plo.neg(), hi: phi }
    }

    /// Division; divisor intervals containing zero give the entire line.
    #[must_use]
    #[inline]
    pub fn div(&self, other: &DdI) -> DdI {
        if self.has_nan() || other.has_nan() {
            return DdI::nai();
        }
        let bl = other.lo();
        let bh = other.hi;
        let zero = Dd::ZERO;
        if bl.le(&zero) && zero.le(&bh) {
            return DdI::ENTIRE;
        }
        let al = self.lo();
        let ah = self.hi;
        let mut lo = Dd::from(f64::INFINITY);
        let mut hi = Dd::from(f64::NEG_INFINITY);
        for (x, y) in [(al, bl), (al, bh), (ah, bl), (ah, bh)] {
            let (l, h) = div_bounds(x, y);
            lo = dd_min(lo, l);
            hi = dd_max(hi, h);
        }
        DdI { neg_lo: lo.neg(), hi }
    }

    /// Square root; a negative lower endpoint yields a NaN lower bound.
    #[must_use]
    #[inline]
    pub fn sqrt(&self) -> DdI {
        let lo_in = self.lo();
        let hi_in = self.hi;
        let lo_out = if lo_in.is_sign_negative() && !lo_in.is_zero() {
            Dd::from_parts_unchecked(f64::NAN, f64::NAN)
        } else {
            sqrt_bounds(lo_in).0
        };
        let hi_out = sqrt_bounds(hi_in).1;
        DdI { neg_lo: lo_out.neg(), hi: hi_out }
    }

    /// Interval minimum.
    #[must_use]
    #[inline]
    pub fn min_i(&self, other: &DdI) -> DdI {
        if self.has_nan() || other.has_nan() {
            return DdI::nai();
        }
        DdI { neg_lo: dd_max(self.neg_lo, other.neg_lo), hi: dd_min(self.hi, other.hi) }
    }

    /// Interval maximum.
    #[must_use]
    #[inline]
    pub fn max_i(&self, other: &DdI) -> DdI {
        if self.has_nan() || other.has_nan() {
            return DdI::nai();
        }
        DdI { neg_lo: dd_min(self.neg_lo, other.neg_lo), hi: dd_max(self.hi, other.hi) }
    }

    /// `self < other` three-valued.
    #[must_use]
    pub fn cmp_lt(&self, other: &DdI) -> TBool {
        if self.has_nan() || other.has_nan() {
            return TBool::Unknown;
        }
        if self.hi.lt(&other.lo()) {
            TBool::True
        } else if other.hi.le(&self.lo()) {
            TBool::False
        } else {
            TBool::Unknown
        }
    }

    /// `self > other` three-valued.
    #[must_use]
    pub fn cmp_gt(&self, other: &DdI) -> TBool {
        other.cmp_lt(self)
    }

    /// `self <= other` three-valued.
    #[must_use]
    pub fn cmp_le(&self, other: &DdI) -> TBool {
        if self.has_nan() || other.has_nan() {
            return TBool::Unknown;
        }
        if self.hi.le(&other.lo()) {
            TBool::True
        } else if other.hi.lt(&self.lo()) {
            TBool::False
        } else {
            TBool::Unknown
        }
    }

    /// `self >= other` three-valued.
    #[must_use]
    pub fn cmp_ge(&self, other: &DdI) -> TBool {
        other.cmp_le(self)
    }

    /// `self == other` three-valued (point equality, as in
    /// `F64I::cmp_eq`: certainly true only when both intervals are the
    /// same single point, certainly false when they are disjoint).
    #[must_use]
    pub fn cmp_eq(&self, other: &DdI) -> TBool {
        if self.has_nan() || other.has_nan() {
            return TBool::Unknown;
        }
        let point = |i: &DdI| i.lo().le(&i.hi) && i.hi.le(&i.lo());
        if point(self) && point(other) && self.hi.le(&other.hi) && other.hi.le(&self.hi) {
            TBool::True
        } else if self.hi.lt(&other.lo()) || other.hi.lt(&self.lo()) {
            TBool::False
        } else {
            TBool::Unknown
        }
    }

    /// If the interval is narrow enough that both endpoints round to the
    /// same binary64, returns that *certified double precision result*
    /// (Section VII-A: "at most one bit of error in double precision").
    #[must_use]
    pub fn certified_f64(&self) -> Option<f64> {
        if self.has_nan() {
            return None;
        }
        let lo = self.lo();
        // Round-to-nearest of a dd value is its high word after
        // renormalization; include the low word's pull via two_sum.
        let rn = |x: Dd| -> f64 {
            let (h, _) = igen_round::two_sum(x.hi(), x.lo());
            h
        };
        let (a, b) = (rn(lo), rn(self.hi));
        // Accept equality or adjacency (at most one bit of error).
        if a == b || next_up(a) == b {
            Some(a)
        } else {
            None
        }
    }

    /// Certified accuracy in bits out of the 106 the format carries
    /// (Section VII's metric, generalized: 106 minus log2 of the interval
    /// width measured in double-double quanta of the midpoint).
    #[must_use]
    pub fn certified_bits(&self) -> f64 {
        crate::accuracy::certified_bits_dd(self.lo(), self.hi)
    }
}

/// Smallest f64 `>=` the double-double value.
fn f64_upper(x: Dd) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let (h, l) = igen_round::two_sum(x.hi(), x.lo());
    if l > 0.0 {
        next_up(h)
    } else {
        h
    }
}

impl core::ops::Add for DdI {
    type Output = DdI;
    #[inline]
    fn add(self, rhs: DdI) -> DdI {
        DdI::add(&self, &rhs)
    }
}

impl core::ops::Sub for DdI {
    type Output = DdI;
    #[inline]
    fn sub(self, rhs: DdI) -> DdI {
        DdI::sub(&self, &rhs)
    }
}

impl core::ops::Mul for DdI {
    type Output = DdI;
    #[inline]
    fn mul(self, rhs: DdI) -> DdI {
        DdI::mul(&self, &rhs)
    }
}

impl core::ops::Div for DdI {
    type Output = DdI;
    #[inline]
    fn div(self, rhs: DdI) -> DdI {
        DdI::div(&self, &rhs)
    }
}

impl core::ops::Neg for DdI {
    type Output = DdI;
    #[inline]
    fn neg(self) -> DdI {
        DdI::neg(&self)
    }
}

impl Default for DdI {
    fn default() -> DdI {
        DdI::ZERO
    }
}

impl core::fmt::Display for DdI {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.lo(), self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqr_and_powi_dependency_aware() {
        let x = DdI::new(Dd::from(-1.0), Dd::from(2.0)).unwrap();
        let s = x.sqr();
        assert!(s.lo().is_zero(), "sqr never negative: {:?}", s.lo());
        assert!(s.contains_f64(4.0) && s.contains_f64(0.0));
        assert!(!s.contains_f64(-0.5));
        // Naive mul dips negative.
        assert!(x.mul(&x).contains_f64(-1.9));
        // Odd power monotone.
        let c = x.powi(3);
        assert!(c.contains_f64(-1.0) && c.contains_f64(8.0));
        assert!(!c.contains_f64(-1.5) && !c.contains_f64(8.5));
        // Even power through |x|.
        let q = x.powi(4);
        assert!(q.lo().is_zero() && q.contains_f64(16.0));
        // n = 0 and negative exponents.
        assert!(x.powi(0).contains_f64(1.0) && x.powi(0).width().is_zero());
        let r = DdI::new(Dd::from(2.0), Dd::from(4.0)).unwrap().powi(-2);
        assert!(r.contains_f64(1.0 / 16.0) && r.contains_f64(1.0 / 4.0));
        // Zero-containing base with negative exponent: entire.
        assert!(x.powi(-1).contains_f64(1e300) && x.powi(-1).contains_f64(-1e300));
        // Tightness: dd powers certify far beyond f64 on a point base.
        // 1.5^13 = 3^13 / 2^13 is exactly representable, so the float
        // reference is the true value.
        let b = DdI::point_f64(1.5).powi(13);
        assert!(b.certified_f64().is_some(), "width {:?}", b.width());
        assert!(b.contains_f64(1594323.0 / 8192.0));
    }

    #[test]
    fn point_roundtrip() {
        let x = DdI::point_f64(0.1);
        assert!(x.contains_f64(0.1));
        assert!(x.width().is_zero());
        assert_eq!(x.certified_f64(), Some(0.1));
    }

    #[test]
    fn add_keeps_far_more_accuracy_than_f64i() {
        let x = DdI::point_f64(0.1);
        let f = F64I::point(0.1);
        let mut dd_acc = DdI::ZERO;
        let mut f_acc = F64I::ZERO;
        for _ in 0..10_000 {
            dd_acc = dd_acc + x;
            f_acc = f_acc + f;
        }
        assert!(dd_acc.certified_bits() > 80.0, "dd bits = {}", dd_acc.certified_bits());
        assert!(f_acc.certified_bits() < dd_acc.certified_bits());
        // And it still certifies the correctly rounded double.
        assert!(dd_acc.certified_f64().is_some());
    }

    #[test]
    fn mul_sign_cases_match_f64i() {
        let cases = [
            ((2.0, 3.0), (4.0, 5.0)),
            ((-3.0, -2.0), (4.0, 5.0)),
            ((-2.0, 3.0), (4.0, 5.0)),
            ((-2.0, 3.0), (-5.0, 4.0)),
            ((-3.0, -2.0), (-5.0, -4.0)),
        ];
        for ((al, ah), (bl, bh)) in cases {
            let a = DdI::new(Dd::from(al), Dd::from(ah)).unwrap();
            let b = DdI::new(Dd::from(bl), Dd::from(bh)).unwrap();
            let p = a * b;
            let fa = F64I::new(al, ah).unwrap();
            let fb = F64I::new(bl, bh).unwrap();
            let fp = fa * fb;
            assert_eq!(p.lo().to_f64(), fp.lo(), "[{al},{ah}]*[{bl},{bh}]");
            assert_eq!(p.hi().to_f64(), fp.hi());
        }
    }

    #[test]
    fn division_semantics() {
        let a = DdI::point_f64(1.0);
        let b = DdI::point_f64(3.0);
        let q = a / b;
        assert!(q.contains(Dd::from(1.0) / Dd::from(3.0)));
        assert!(!q.width().is_zero());
        assert!(q.certified_bits() > 99.0, "bits = {}", q.certified_bits());
        let z = DdI::new(Dd::from(-1.0), Dd::from(1.0)).unwrap();
        let e = a / z;
        assert!(e.hi().to_f64().is_infinite());
    }

    #[test]
    fn sqrt_and_nan_lower() {
        let m = DdI::new(Dd::from(-1.0), Dd::from(1.0)).unwrap();
        let s = m.sqrt();
        assert!(s.lo().is_nan());
        assert_eq!(s.hi().to_f64(), 1.0);
        let p = DdI::point_f64(2.0).sqrt();
        assert!(p.contains(igen_dd::DD_SQRT2));
    }

    #[test]
    fn demotion_to_f64i_is_outward() {
        let x = DdI::point_f64(1.0) / DdI::point_f64(3.0);
        let f = x.to_f64i();
        assert!(f.lo() <= 1.0 / 3.0 && 1.0 / 3.0 <= f.hi());
    }

    #[test]
    fn comparisons() {
        let a = DdI::new(Dd::from(0.0), Dd::from(1.0)).unwrap();
        let b = DdI::new(Dd::from(2.0), Dd::from(3.0)).unwrap();
        assert!(a.cmp_lt(&b).is_true());
        assert!(b.cmp_gt(&a).is_true());
        let c = DdI::new(Dd::from(0.5), Dd::from(2.5)).unwrap();
        assert!(a.cmp_lt(&c).is_unknown());
    }

    #[test]
    fn certified_f64_rejects_wide() {
        let w = DdI::new(Dd::from(1.0), Dd::from(2.0)).unwrap();
        assert_eq!(w.certified_f64(), None);
    }
}
