//! Casts between precisions (Table I "Casts"; Table II promotions).
//!
//! Single-precision floats are promoted to double-precision intervals
//! *exactly* (every f32 is representable as f64); demotion to f32
//! endpoints rounds outward. Integer casts to intervals are exact within
//! the 53-bit significand.

use crate::f64i::F64I;

/// Promotes an `f32` value to a point interval in double precision —
/// IGen's default handling of `float` inputs (Table II).
pub fn f32_to_f64i(x: f32) -> F64I {
    F64I::point(x as f64)
}

/// Promotes an `f32` pair to a double-precision interval (exact).
///
/// # Errors
///
/// Returns [`crate::InvalidInterval`] if `lo > hi`.
pub fn f32_pair_to_f64i(lo: f32, hi: f32) -> Result<F64I, crate::InvalidInterval> {
    F64I::new(lo as f64, hi as f64)
}

/// Demotes a double-precision interval to `f32` endpoints, rounding
/// outward (the result still contains every real the input did).
pub fn f64i_to_f32_pair(x: &F64I) -> (f32, f32) {
    (f32_below(x.lo()), f32_above(x.hi()))
}

/// Converts an `i64` to a point interval; values beyond 2^53 are enclosed
/// by their two neighbouring doubles.
pub fn i64_to_f64i(x: i64) -> F64I {
    let v = x as f64;
    if v as i64 == x && x.abs() <= (1i64 << 53) {
        F64I::point(v)
    } else {
        F64I::enclose_decimal(v)
    }
}

/// Largest f32 `<=` the f64 value.
fn f32_below(x: f64) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let c = x as f32; // round-to-nearest
    if (c as f64) <= x {
        c
    } else {
        next_down_f32(c)
    }
}

/// Smallest f32 `>=` the f64 value.
fn f32_above(x: f64) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let c = x as f32;
    if (c as f64) >= x {
        c
    } else {
        next_up_f32(c)
    }
}

fn next_up_f32(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f32::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits + 1)
    } else {
        f32::from_bits(bits - 1)
    }
}

fn next_down_f32(x: f32) -> f32 {
    -next_up_f32(-x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_promotion_is_exact() {
        let i = f32_to_f64i(0.1f32);
        assert!(i.is_point());
        assert_eq!(i.hi(), 0.1f32 as f64);
    }

    #[test]
    fn f32_demotion_is_outward() {
        let i = F64I::point(0.1); // not representable in f32
        let (lo, hi) = f64i_to_f32_pair(&i);
        assert!((lo as f64) <= 0.1 && 0.1 <= (hi as f64));
        assert!(lo < hi);
        // Exact f32 values stay points.
        let j = F64I::point(0.5);
        let (lo, hi) = f64i_to_f32_pair(&j);
        assert_eq!((lo, hi), (0.5, 0.5));
    }

    #[test]
    fn f32_demotion_handles_overflow() {
        let i = F64I::point(1e300);
        let (lo, hi) = f64i_to_f32_pair(&i);
        assert!(lo.is_finite());
        assert_eq!(hi, f32::INFINITY);
        let n = F64I::point(-1e300);
        let (lo2, hi2) = f64i_to_f32_pair(&n);
        assert_eq!(lo2, f32::NEG_INFINITY);
        assert!(hi2.is_finite());
    }

    #[test]
    fn i64_cast_exactness() {
        assert!(i64_to_f64i(42).is_point());
        assert!(i64_to_f64i(1 << 53).is_point());
        let big = i64_to_f64i((1 << 53) + 1);
        assert!(!big.is_point());
        assert!(big.contains(((1i64 << 53) + 1) as f64));
    }
}
