//! Rigorous elementary functions — the workspace's CRlibm substitute.
//!
//! The paper builds its interval elementary functions on CRlibm, which
//! guarantees correctly rounded results. CRlibm is a large body of C that
//! cannot be assumed here, so this module provides the same *interface
//! guarantee the interval layer actually needs*: for every supported
//! function and every point `x`, an enclosure `[lo, hi]` with
//! `lo <= f(x) <= hi`, a few f64 ulps wide at most. Internally each
//! function is evaluated in double-double (≥106 bits) with
//! mathematically-derived truncation bounds, then widened by a certified
//! error radius and rounded outward — soundness comes from the widening,
//! tightness from the 50-bit headroom between double-double accuracy and
//! the f64 target.
//!
//! Interval versions use monotonic-section decomposition exactly as
//! Section IV-A describes: monotonic functions apply the point enclosure
//! to the endpoints; sine/cosine additionally check which extrema lie
//! inside the input interval.

use crate::f64i::F64I;
use igen_dd::{add_dir, mul_f64_dir, sub_dir, Dd, DD_LN2, DD_PI_2};
use igen_round as r;
use igen_round::{Rd, Rn, Ru};

/// Smallest f64 less than or equal to the dd value.
fn f64_lower(x: Dd) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let (h, l) = r::two_sum(x.hi(), x.lo());
    if l < 0.0 {
        r::next_down(h)
    } else {
        h
    }
}

/// Largest f64 greater than or equal to the dd value.
fn f64_upper(x: Dd) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let (h, l) = r::two_sum(x.hi(), x.lo());
    if l > 0.0 {
        r::next_up(h)
    } else {
        h
    }
}

/// Outward-rounded f64 enclosure of `v ± err` (`err` is an absolute
/// radius in f64).
fn enclose(v: Dd, err: f64) -> (f64, f64) {
    let e = Dd::from(err);
    let lo = sub_dir::<Rd>(v, e);
    let hi = add_dir::<Ru>(v, e);
    (f64_lower(lo), f64_upper(hi))
}

fn pow2(n: i64) -> f64 {
    if n >= 1024 {
        f64::INFINITY
    } else if n >= -1022 {
        f64::from_bits(((1023 + n) as u64) << 52)
    } else if n >= -1074 {
        f64::from_bits(1u64 << (n + 1074))
    } else {
        0.0
    }
}

/// Sound directed scaling of an f64 bound by `2^k` (split into two steps
/// so saturation at the range ends stays sound).
fn scale_lo(x: f64, k: i64) -> f64 {
    let k1 = k / 2;
    let k2 = k - k1;
    r::mul_rd(r::mul_rd(x, pow2(k1)), pow2(k2))
}

fn scale_hi(x: f64, k: i64) -> f64 {
    let k1 = k / 2;
    let k2 = k - k1;
    r::mul_ru(r::mul_ru(x, pow2(k1)), pow2(k2))
}

/// Enclosure of `e^x` for a point `x`: `(lo, hi)` with
/// `lo <= e^x <= hi`, a few ulps wide.
///
/// The certified error radius is `2^-85` relative — derivation: argument
/// reduction `r = x - k ln2` carries `<= 2^-88` absolute error
/// (`|k| <= 1025`, ln2 known to `2^-110`, dd ops at `2^-104` relative), a
/// 26-term Taylor sum truncates below `2^-134`, and the dd evaluation
/// contributes `<= 2^-99` relative; `exp` has derivative `exp` so the
/// argument error stays relative through the result.
pub fn exp_point(x: f64) -> (f64, f64) {
    if x.is_nan() {
        return (f64::NAN, f64::NAN);
    }
    if x == f64::INFINITY {
        return (f64::INFINITY, f64::INFINITY);
    }
    if x == f64::NEG_INFINITY {
        return (0.0, 0.0);
    }
    if x > 710.0 {
        // e^710 > 2^1024: overflow certain.
        return (f64::MAX, f64::INFINITY);
    }
    if x < -745.5 {
        // e^-745.5 < 2^-1075: underflow certain.
        return (0.0, f64::from_bits(1));
    }
    if x == 0.0 {
        return (1.0, 1.0);
    }
    let k = (x * std::f64::consts::LOG2_E).round() as i64;
    let kl2 = mul_f64_dir::<Rn>(DD_LN2, k as f64);
    let rr = sub_dir::<Rn>(Dd::from(x), kl2); // |r| <= 0.35
                                              // Taylor with Horner: e^r = 1 + r(1 + r/2(1 + r/3(...))).
    let mut sum = Dd::ONE;
    for i in (1..=26u32).rev() {
        // sum = 1 + (r / i) * sum
        let t = igen_dd::div_rn(rr, Dd::from(i as f64));
        sum = Dd::ONE + igen_dd::mul_dir::<Rn>(t, sum);
    }
    // Certified radius: 2^-85 relative to e^r (<= 1.5), so 2^-84 absolute.
    let (lo, hi) = enclose(sum, pow2(-84));
    let lo = scale_lo(lo.max(0.0), k);
    let hi = scale_hi(hi, k);
    (lo.max(0.0), hi)
}

/// Enclosure of `ln x` for a point `x`. Negative inputs give NaN bounds,
/// `ln 0 = -∞`.
///
/// Certified radius `2^-88` relative: `t = (m-1)/(m+1)` with `|t| <=
/// 0.1716`, 23 odd-term atanh series (truncation `< 2^-119`), dd ops at
/// `2^-100`, and no catastrophic cancellation between `e·ln2` and the
/// series term (their ratio is bounded).
pub fn log_point(x: f64) -> (f64, f64) {
    if x.is_nan() || x < 0.0 {
        return (f64::NAN, f64::NAN);
    }
    if x == 0.0 {
        return (f64::NEG_INFINITY, f64::NEG_INFINITY);
    }
    if x == f64::INFINITY {
        return (f64::INFINITY, f64::INFINITY);
    }
    if x == 1.0 {
        return (0.0, 0.0);
    }
    let mut e = r::exponent(x) as i64;
    let mut m = x * pow2(-e); // in [1, 2), exact scaling
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    // t = (m - 1) / (m + 1) in dd.
    let md = Dd::from(m);
    let t = igen_dd::div_rn(md - Dd::ONE, md + Dd::ONE);
    let t2 = igen_dd::mul_dir::<Rn>(t, t);
    // atanh(t) = sum_{j>=0} t^(2j+1) / (2j+1), summed term by term
    // (|t| <= 0.1716 makes 24 terms truncate below 2^-119).
    let mut atanh = Dd::ZERO;
    let mut term_pow = t; // t^(2j+1)
    for j in 0..=23u32 {
        let odd = (2 * j + 1) as f64;
        atanh = atanh + igen_dd::div_rn(term_pow, Dd::from(odd));
        term_pow = igen_dd::mul_dir::<Rn>(term_pow, t2);
    }
    let log_m = atanh + atanh; // 2 * atanh(t)
    let result = mul_f64_dir::<Rn>(DD_LN2, e as f64) + log_m;
    // Radius: relative 2^-88 with a small absolute floor.
    let radius = r::add_ru(r::mul_ru(result.hi().abs(), pow2(-88)), pow2(-200));
    enclose(result, radius)
}

/// Certified absolute error radius of the trig evaluation for reduction
/// quotient `n`: the reduction contributes `|n| · 2^-103` (π/2 known to
/// ~2^-110, dd ops at 2^-104 relative on |n·π/2|), the series truncation
/// `2^-92`, and the dd evaluation `2^-99`.
fn trig_radius(n: f64) -> f64 {
    pow2(-92) + n.abs() * pow2(-103)
}

/// Reduction `x = n·(π/2) + r` with `|r| <= π/4 + 2^-60`; returns
/// `(n mod 4, r, |n|)`. Valid for `|x| < 2^30` (larger arguments fall
/// back to the trivial enclosure at the interval layer).
fn trig_reduce(x: f64) -> (u8, Dd, f64) {
    let n = (x * (2.0 / std::f64::consts::PI)).round();
    let npi2 = mul_f64_dir::<Rn>(DD_PI_2, n);
    let rr = sub_dir::<Rn>(Dd::from(x), npi2);
    let q = ((n as i64).rem_euclid(4)) as u8;
    (q, rr, n.abs())
}

/// Double-double enclosure `(lo, hi)` of `sin x` for `|x| < 2^30` — used
/// for double-double-precision twiddle constants; ~92 certified bits for
/// small arguments.
pub fn sin_enclose_dd(x: f64) -> (Dd, Dd) {
    if x == 0.0 {
        return (Dd::ZERO, Dd::ZERO);
    }
    if x.is_nan() || x.abs() >= (1u64 << 30) as f64 {
        return (Dd::from(-1.0), Dd::from(1.0));
    }
    let (q, rr, n) = trig_reduce(x);
    let v = match q {
        0 => sin_series(rr),
        1 => cos_series(rr),
        2 => sin_series(rr).neg(),
        _ => cos_series(rr).neg(),
    };
    let e = Dd::from(trig_radius(n));
    (sub_dir::<Rd>(v, e), add_dir::<Ru>(v, e))
}

/// Double-double enclosure of `cos x` (see [`sin_enclose_dd`]).
pub fn cos_enclose_dd(x: f64) -> (Dd, Dd) {
    if x == 0.0 {
        return (Dd::ONE, Dd::ONE);
    }
    if x.is_nan() || x.abs() >= (1u64 << 30) as f64 {
        return (Dd::from(-1.0), Dd::from(1.0));
    }
    let (q, rr, n) = trig_reduce(x);
    let v = match q {
        0 => cos_series(rr),
        1 => sin_series(rr).neg(),
        2 => cos_series(rr).neg(),
        _ => sin_series(rr),
    };
    let e = Dd::from(trig_radius(n));
    (sub_dir::<Rd>(v, e), add_dir::<Ru>(v, e))
}

/// Taylor enclosure core: sin(r) for `|r| <= 0.79`, result as dd with
/// truncation below `2^-92`.
fn sin_series(rr: Dd) -> Dd {
    // sin r = r (1 - r^2/6 (1 - r^2/20 (1 - ...))) — Horner on r^2 with
    // factors 1/((2k)(2k+1)).
    let r2 = igen_dd::mul_dir::<Rn>(rr, rr);
    let mut s = Dd::ONE;
    for k in (1..=12u32).rev() {
        let denom = (2 * k * (2 * k + 1)) as f64;
        let t = igen_dd::div_rn(r2, Dd::from(denom));
        s = Dd::ONE - igen_dd::mul_dir::<Rn>(t, s);
    }
    igen_dd::mul_dir::<Rn>(rr, s)
}

/// Taylor enclosure core: cos(r) for `|r| <= 0.79`.
fn cos_series(rr: Dd) -> Dd {
    let r2 = igen_dd::mul_dir::<Rn>(rr, rr);
    let mut s = Dd::ONE;
    for k in (1..=12u32).rev() {
        let denom = ((2 * k - 1) * (2 * k)) as f64;
        let t = igen_dd::div_rn(r2, Dd::from(denom));
        s = Dd::ONE - igen_dd::mul_dir::<Rn>(t, s);
    }
    s
}

/// Enclosure of `sin x` at a point, for `|x| < 2^30`; wider arguments get
/// the trivial `[-1, 1]`.
///
/// Certified absolute radius `2^-70`: the reduction costs `<= 2^-73`
/// absolute (`|n| <= 2^31`, π/2 known to `2^-110`), the series truncation
/// `2^-92`, dd evaluation `2^-99` relative.
pub fn sin_point(x: f64) -> (f64, f64) {
    if x.is_nan() || x.is_infinite() {
        return (f64::NAN, f64::NAN);
    }
    if x.abs() >= (1u64 << 30) as f64 {
        return (-1.0, 1.0);
    }
    if x == 0.0 {
        return (0.0, 0.0);
    }
    let (q, rr, n) = trig_reduce(x);
    let v = match q {
        0 => sin_series(rr),
        1 => cos_series(rr),
        2 => sin_series(rr).neg(),
        _ => cos_series(rr).neg(),
    };
    let (lo, hi) = enclose(v, trig_radius(n));
    (lo.max(-1.0), hi.min(1.0))
}

/// Enclosure of `cos x` at a point (see [`sin_point`] for the bounds).
pub fn cos_point(x: f64) -> (f64, f64) {
    if x.is_nan() || x.is_infinite() {
        return (f64::NAN, f64::NAN);
    }
    if x.abs() >= (1u64 << 30) as f64 {
        return (-1.0, 1.0);
    }
    let (q, rr, n) = trig_reduce(x);
    let v = match q {
        0 => cos_series(rr),
        1 => sin_series(rr).neg(),
        2 => cos_series(rr).neg(),
        _ => sin_series(rr),
    };
    let (lo, hi) = enclose(v, trig_radius(n));
    (lo.max(-1.0), hi.min(1.0))
}

/// Enclosure of `tan x` at a point via `sin/cos` interval division; if the
/// cosine enclosure touches zero the result is the entire line.
pub fn tan_point(x: f64) -> (f64, f64) {
    if x.is_nan() || x.is_infinite() {
        return (f64::NAN, f64::NAN);
    }
    if x.abs() >= (1u64 << 30) as f64 {
        return (f64::NEG_INFINITY, f64::INFINITY);
    }
    let (slo, shi) = sin_point(x);
    let (clo, chi) = cos_point(x);
    if clo <= 0.0 && chi >= 0.0 {
        return (f64::NEG_INFINITY, f64::INFINITY);
    }
    let s = F64I::new(slo, shi).expect("ordered");
    let c = F64I::new(clo, chi).expect("ordered");
    let q = s / c;
    (q.lo(), q.hi())
}

/// Enclosure of `arctan x` at a point. Total on all of ℝ (including
/// ±∞ → ±π/2), monotonically increasing, so interval versions use the
/// endpoints directly.
///
/// Certified radius `2^-95` relative (absolute floor `2^-200`): two
/// argument-halving steps `t ← t/(1+√(1+t²))` bring `|t| ≤ tan(π/16) <
/// 0.199` (each step: one dd sqrt at `2^-100` rel, one div at `2^-99`;
/// `atan` has derivative `≤ 1` so absolute argument error passes
/// through), the 24-odd-term Leibniz series truncates below `2^-112`,
/// and π/2 for the `|x| > 1` reflection is known to `2^-110`.
pub fn atan_point(x: f64) -> (f64, f64) {
    if x.is_nan() {
        return (f64::NAN, f64::NAN);
    }
    if x == 0.0 {
        return (0.0, 0.0);
    }
    if x == f64::INFINITY {
        return (f64_lower(DD_PI_2), f64_upper(DD_PI_2));
    }
    if x == f64::NEG_INFINITY {
        return (f64_lower(DD_PI_2.neg()), f64_upper(DD_PI_2.neg()));
    }
    let neg = x < 0.0;
    let ax = x.abs();
    // |x| > 1: atan(x) = pi/2 - atan(1/x).
    let (t0, reflect) = if ax > 1.0 {
        (igen_dd::div_rn(Dd::ONE, Dd::from(ax)), true)
    } else {
        (Dd::from(ax), false)
    };
    // Two halvings: t <- t / (1 + sqrt(1 + t^2)); atan(t0) = 4 atan(t).
    let mut t = t0;
    for _ in 0..2 {
        let t2 = igen_dd::mul_dir::<Rn>(t, t);
        let s = igen_dd::sqrt_rn(Dd::ONE + t2);
        t = igen_dd::div_rn(t, Dd::ONE + s);
    }
    // Leibniz series: atan(t) = sum (-1)^j t^(2j+1)/(2j+1), |t| < 0.199.
    let t2 = igen_dd::mul_dir::<Rn>(t, t);
    let mut series = Dd::ZERO;
    let mut term_pow = t; // t^(2j+1)
    for j in 0..=23u32 {
        let term = igen_dd::div_rn(term_pow, Dd::from((2 * j + 1) as f64));
        series = if j % 2 == 0 { series + term } else { series - term };
        term_pow = igen_dd::mul_dir::<Rn>(term_pow, t2);
    }
    let quarter = series + series;
    let mut v = quarter + quarter; // 4 atan(t) = atan(t0)
    if reflect {
        v = DD_PI_2 - v;
    }
    if neg {
        v = v.neg();
    }
    let radius = r::add_ru(r::mul_ru(v.hi().abs(), pow2(-95)), pow2(-200));
    let (lo, hi) = enclose(v, radius);
    // atan is bounded by ±pi/2; clamping keeps extreme inputs tight.
    (lo.max(f64_lower(DD_PI_2.neg())), hi.min(f64_upper(DD_PI_2)))
}

/// Interval `arctan` (total and monotonically increasing: endpoints).
pub fn atan_interval(x: &F64I) -> F64I {
    let (a, b) = (x.lo(), x.hi());
    if a.is_nan() || b.is_nan() {
        return F64I::NAI;
    }
    let lo = atan_point(a).0;
    let hi = atan_point(b).1;
    F64I::from_neg_lo_hi(-lo, hi)
}

/// Enclosure of `arcsin x` at a point. Out-of-domain inputs (`|x| > 1`)
/// give NaN bounds, mirroring the sqrt convention of Section IV-A.
///
/// Computed by sound interval composition `asin x = arctan(x / √(1−x²))`
/// — every step uses directed interval arithmetic, so the radius is the
/// composition's, a few ulps (wider only in the last few ulps before
/// ±1, where the reformulation's slope blows up but the result is still
/// clamped to ±π/2).
pub fn asin_point(x: f64) -> (f64, f64) {
    if x.is_nan() || x.abs() > 1.0 {
        return (f64::NAN, f64::NAN);
    }
    if x == 0.0 {
        return (0.0, 0.0);
    }
    if x == 1.0 {
        return (f64_lower(DD_PI_2), f64_upper(DD_PI_2));
    }
    if x == -1.0 {
        return (f64_lower(DD_PI_2.neg()), f64_upper(DD_PI_2.neg()));
    }
    let xi = F64I::point(x);
    // 1 - x^2 as a sound interval; its lower bound can round to 0 just
    // below |x| = 1, making `t` unbounded on one side — atan of an
    // infinite endpoint is +-pi/2, which keeps the result sound there.
    let one_minus = F64I::point(1.0).sub(&xi.mul(&xi));
    let t = xi.div(&one_minus.sqrt());
    let a = atan_interval(&t);
    (a.lo().max(f64_lower(DD_PI_2.neg())), a.hi().min(f64_upper(DD_PI_2)))
}

/// Enclosure of `arccos x` at a point: `π/2 − asin x` with directed
/// endpoint arithmetic. Out-of-domain inputs give NaN bounds.
pub fn acos_point(x: f64) -> (f64, f64) {
    if x.is_nan() || x.abs() > 1.0 {
        return (f64::NAN, f64::NAN);
    }
    let (slo, shi) = asin_point(x);
    let lo = r::sub_rd(f64_lower(DD_PI_2), shi).max(0.0);
    let hi = r::sub_ru(f64_upper(DD_PI_2), slo);
    (lo, hi)
}

/// Interval `arcsin` (monotonically increasing on [−1, 1]: endpoints).
/// Endpoints outside the domain yield NaN bounds.
pub fn asin_interval(x: &F64I) -> F64I {
    let (a, b) = (x.lo(), x.hi());
    if a.is_nan() || b.is_nan() {
        return F64I::NAI;
    }
    let lo = if a < -1.0 { f64::NAN } else { asin_point(a.min(1.0)).0 };
    let hi = if b > 1.0 { f64::NAN } else { asin_point(b.max(-1.0)).1 };
    F64I::from_neg_lo_hi(-lo, hi)
}

/// Interval `arccos` (monotonically decreasing on [−1, 1]: swapped
/// endpoints). Endpoints outside the domain yield NaN bounds.
pub fn acos_interval(x: &F64I) -> F64I {
    let (a, b) = (x.lo(), x.hi());
    if a.is_nan() || b.is_nan() {
        return F64I::NAI;
    }
    let lo = if b > 1.0 { f64::NAN } else { acos_point(b.max(-1.0)).0 };
    let hi = if a < -1.0 { f64::NAN } else { acos_point(a.min(1.0)).1 };
    F64I::from_neg_lo_hi(-lo, hi)
}

/// Interval `exp` (monotonic: endpoints).
pub fn exp_interval(x: &F64I) -> F64I {
    let lo = exp_point(x.lo()).0;
    let hi = exp_point(x.hi()).1;
    F64I::from_neg_lo_hi(-lo, hi)
}

/// Interval `log`; lower endpoints below zero yield a NaN lower bound,
/// mirroring the sqrt convention of Section IV-A.
pub fn log_interval(x: &F64I) -> F64I {
    let lo = if x.lo() < 0.0 { f64::NAN } else { log_point(x.lo()).0 };
    let hi = log_point(x.hi()).1;
    F64I::from_neg_lo_hi(-lo, hi)
}

/// True if a point of the family `offset + k * period_multiples_of_π` may
/// lie inside `[a, b]` (`period_pis` is the period expressed in multiples
/// of π: 2 for sine/cosine extrema, 1 for tangent poles). Conservative by
/// a relative slack — false positives only widen the result.
fn trig_point_in(a: f64, b: f64, offset: Dd, period_pis: i64) -> bool {
    let period = std::f64::consts::PI * period_pis as f64;
    let k_lo = ((a - offset.hi()) / period).floor() as i64 - 1;
    let k_hi = ((b - offset.hi()) / period).ceil() as i64 + 1;
    if k_hi - k_lo > 16 {
        return true; // interval spans many periods
    }
    for k in k_lo..=k_hi {
        let c = add_dir::<Rn>(offset, mul_f64_dir::<Rn>(igen_dd::DD_PI, (k * period_pis) as f64));
        let c_hi = c.hi();
        let slack = 1e-12 * (1.0 + c_hi.abs());
        if c_hi >= a - slack && c_hi <= b + slack {
            return true;
        }
    }
    false
}

/// Interval sine via monotonic-section decomposition.
pub fn sin_interval(x: &F64I) -> F64I {
    let (a, b) = (x.lo(), x.hi());
    if a.is_nan() || b.is_nan() || !a.is_finite() || !b.is_finite() {
        if a.is_nan() || b.is_nan() {
            return F64I::NAI;
        }
        return F64I::new(-1.0, 1.0).expect("ordered");
    }
    if b - a >= 2.0 * std::f64::consts::PI {
        return F64I::new(-1.0, 1.0).expect("ordered");
    }
    let (la, ha) = sin_point(a);
    let (lb, hb) = sin_point(b);
    let mut lo = la.min(lb);
    let mut hi = ha.max(hb);
    // Max of sine at pi/2 + 2k*pi; min at -pi/2 + 2k*pi. Using period pi
    // with offset pi/2 catches both (alternating) — test each separately
    // with period 2pi via offset and offset+pi.
    if trig_point_in(a, b, DD_PI_2, 2) {
        hi = 1.0; // maximum at pi/2 + 2k*pi
    }
    if trig_point_in(a, b, DD_PI_2.neg(), 2) {
        lo = -1.0; // minimum at -pi/2 + 2k*pi
    }
    F64I::from_neg_lo_hi(-lo.max(-1.0), hi.min(1.0))
}

/// Interval cosine.
pub fn cos_interval(x: &F64I) -> F64I {
    let (a, b) = (x.lo(), x.hi());
    if a.is_nan() || b.is_nan() || !a.is_finite() || !b.is_finite() {
        if a.is_nan() || b.is_nan() {
            return F64I::NAI;
        }
        return F64I::new(-1.0, 1.0).expect("ordered");
    }
    if b - a >= 2.0 * std::f64::consts::PI {
        return F64I::new(-1.0, 1.0).expect("ordered");
    }
    let (la, ha) = cos_point(a);
    let (lb, hb) = cos_point(b);
    let mut lo = la.min(lb);
    let mut hi = ha.max(hb);
    if trig_point_in(a, b, Dd::ZERO, 2) {
        hi = 1.0; // maximum at 2k*pi
    }
    if trig_point_in(a, b, igen_dd::DD_PI, 2) {
        lo = -1.0; // minimum at pi + 2k*pi
    }
    F64I::from_neg_lo_hi(-lo.max(-1.0), hi.min(1.0))
}

/// Interval tangent; if the input may contain a pole the entire line is
/// returned.
pub fn tan_interval(x: &F64I) -> F64I {
    let (a, b) = (x.lo(), x.hi());
    if a.is_nan() || b.is_nan() {
        return F64I::NAI;
    }
    if !a.is_finite() || !b.is_finite() || b - a >= std::f64::consts::PI {
        return F64I::ENTIRE;
    }
    if trig_point_in(a, b, DD_PI_2, 1) {
        return F64I::ENTIRE; // pole at pi/2 + k*pi
    }
    let lo = tan_point(a).0;
    let hi = tan_point(b).1;
    if lo.is_infinite() || hi.is_infinite() || lo > hi {
        return F64I::ENTIRE;
    }
    F64I::from_neg_lo_hi(-lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_encloses(tag: &str, (lo, hi): (f64, f64), truth: f64) {
        assert!(lo <= truth && truth <= hi, "{tag}: [{lo:e}, {hi:e}] does not contain {truth:e}");
        // Tightness: at most ~8 ulps wide for normal magnitudes.
        if truth.abs() > 1e-280 && truth.is_finite() {
            assert!(r::ulps_between(lo, hi) <= 8, "{tag}: enclosure too wide: [{lo:e}, {hi:e}]");
        }
    }

    #[test]
    fn exp_reference_points() {
        // e itself, to double-double accuracy.
        let (lo, hi) = exp_point(1.0);
        assert!(Dd::from(lo).le(&igen_dd::DD_E) && igen_dd::DD_E.le(&Dd::from(hi)));
        assert_eq!(exp_point(0.0), (1.0, 1.0));
        assert_encloses("exp(1)", exp_point(1.0), std::f64::consts::E);
        assert_encloses("exp(-1)", exp_point(-1.0), 1.0 / std::f64::consts::E);
        assert_encloses("exp(10)", exp_point(10.0), 22026.465794806718);
        assert_encloses("exp(-20)", exp_point(-20.0), 2.061153622438558e-9);
        assert_encloses("exp(700)", exp_point(700.0), 1.0142320547350045e304);
        // libm agreement (necessary condition).
        for &x in &[0.5, -0.5, 3.3, -7.7, 42.0, -300.0, 1e-8] {
            let (lo, hi) = exp_point(x);
            assert!(lo <= x.exp() && x.exp() <= hi, "exp({x})");
        }
    }

    #[test]
    fn exp_extremes() {
        assert_eq!(exp_point(f64::NEG_INFINITY), (0.0, 0.0));
        assert_eq!(exp_point(f64::INFINITY).1, f64::INFINITY);
        assert!(exp_point(f64::NAN).0.is_nan());
        let (lo, hi) = exp_point(800.0);
        assert_eq!(hi, f64::INFINITY);
        assert!(lo > 0.0);
        let (lo, hi) = exp_point(-800.0);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi <= f64::from_bits(1));
        // Near the overflow boundary, bounds stay sound.
        let (lo, hi) = exp_point(709.7);
        assert!(lo <= 709.7f64.exp() && 709.7f64.exp() <= hi);
    }

    #[test]
    fn log_reference_points() {
        assert_eq!(log_point(1.0), (0.0, 0.0));
        // ln 2 to dd accuracy.
        let (lo, hi) = log_point(2.0);
        assert!(Dd::from(lo).le(&DD_LN2) && DD_LN2.le(&Dd::from(hi)));
        assert_encloses("log(e)", log_point(std::f64::consts::E), 1.0000000000000000444); // ln(E_f64)
        for &x in &[0.1, 0.5, 3.0, 10.0, 1e10, 1e-10, 1e300, 1e-300] {
            let (lo, hi) = log_point(x);
            assert!(lo <= x.ln() && x.ln() <= hi, "log({x}): [{lo}, {hi}] vs {}", x.ln());
        }
        assert!(log_point(-1.0).0.is_nan());
        assert_eq!(log_point(0.0).0, f64::NEG_INFINITY);
        assert_eq!(log_point(f64::INFINITY).1, f64::INFINITY);
    }

    #[test]
    fn exp_log_roundtrip() {
        for &x in &[0.3, 1.7, 10.0, 1e-5, 100.0] {
            let (elo, ehi) = exp_point(x);
            let lo = log_point(elo).0;
            let hi = log_point(ehi).1;
            assert!(lo <= x && x <= hi, "log(exp({x}))");
        }
    }

    #[test]
    fn sin_reference_points() {
        assert_eq!(sin_point(0.0), (0.0, 0.0));
        // sin(pi_f64) = sin(pi - pi_lo) ≈ +pi_lo = 1.2246...e-16.
        let (lo, hi) = sin_point(std::f64::consts::PI);
        let truth = 1.2246467991473532e-16;
        assert!(lo <= truth && truth <= hi, "sin(pi_f64): [{lo:e}, {hi:e}]");
        for &x in &[0.5, 1.0, -2.0, 10.0, 100.0, 1e6, -12345.678] {
            let (lo, hi) = sin_point(x);
            assert!(lo <= x.sin() && x.sin() <= hi, "sin({x})");
            let (lo, hi) = cos_point(x);
            assert!(lo <= x.cos() && x.cos() <= hi, "cos({x})");
        }
    }

    #[test]
    fn sin_cos_pythagorean() {
        for &x in &[0.1, 0.9, 2.3, -4.4, 77.7] {
            let s = F64I::new(sin_point(x).0, sin_point(x).1).unwrap();
            let c = F64I::new(cos_point(x).0, cos_point(x).1).unwrap();
            let one = s * s + c * c;
            assert!(one.contains(1.0), "sin^2+cos^2 at {x}: {one}");
            assert!(one.width() < 1e-13);
        }
    }

    #[test]
    fn tan_points_and_poles() {
        for &x in &[0.0, 0.5, 1.0, -1.2, 4.0] {
            let (lo, hi) = tan_point(x);
            assert!(lo <= x.tan() && x.tan() <= hi, "tan({x})");
        }
        // Near pi/2 the cosine enclosure still separates from zero —
        // exactly at the f64 closest to pi/2, tan is huge but finite.
        let near = std::f64::consts::FRAC_PI_2;
        let (lo, hi) = tan_point(near);
        assert!(lo <= near.tan() && near.tan() <= hi);
    }

    #[test]
    fn interval_sin_extrema() {
        // [0, pi] contains the max (pi/2): sin -> [~0, 1].
        let i = F64I::new(0.0, std::f64::consts::PI).unwrap();
        let s = sin_interval(&i);
        assert_eq!(s.hi(), 1.0);
        assert!(s.lo() <= 0.0 && s.lo() > -1e-10);
        // [pi, 2pi] contains the min.
        let j = F64I::new(std::f64::consts::PI, 2.0 * std::f64::consts::PI).unwrap();
        let t = sin_interval(&j);
        assert_eq!(t.lo(), -1.0);
        // Narrow monotone section: [0.1, 0.2].
        let k = F64I::new(0.1, 0.2).unwrap();
        let u = sin_interval(&k);
        assert!(u.lo() <= 0.1f64.sin() && 0.2f64.sin() <= u.hi());
        assert!(u.hi() < 0.21);
        // Width >= 2pi: trivial.
        let w = F64I::new(0.0, 10.0).unwrap();
        let v = sin_interval(&w);
        assert_eq!((v.lo(), v.hi()), (-1.0, 1.0));
    }

    #[test]
    fn interval_cos_extrema() {
        let i = F64I::new(-0.5, 0.5).unwrap();
        let c = cos_interval(&i);
        assert_eq!(c.hi(), 1.0); // max at 0
        assert!(c.lo() <= 0.5f64.cos());
        let j = F64I::new(3.0, 3.3).unwrap(); // contains pi
        let d = cos_interval(&j);
        assert_eq!(d.lo(), -1.0);
    }

    #[test]
    fn interval_tan_pole() {
        let i = F64I::new(1.0, 2.0).unwrap(); // contains pi/2
        let t = tan_interval(&i);
        assert_eq!(t.lo(), f64::NEG_INFINITY);
        assert_eq!(t.hi(), f64::INFINITY);
        let m = F64I::new(-0.5, 0.5).unwrap();
        let u = tan_interval(&m);
        assert!(u.lo() <= (-0.5f64).tan() && 0.5f64.tan() <= u.hi());
        assert!(u.hi().is_finite());
    }

    #[test]
    fn atan_reference_points() {
        assert_eq!(atan_point(0.0), (0.0, 0.0));
        // atan(1) = pi/4 to dd accuracy.
        let (lo, hi) = atan_point(1.0);
        let pi_4 = igen_dd::mul_f64_dir::<Rn>(DD_PI_2, 0.5);
        assert!(Dd::from(lo).le(&pi_4) && pi_4.le(&Dd::from(hi)));
        for &x in &[0.1, 0.5, 0.999, 1.0, 1.001, 2.0, -3.3, 100.0, -1e6, 1e300, 5e-324, -0.25] {
            assert_encloses(&format!("atan({x})"), atan_point(x), x.atan());
        }
        // Infinities map to +-pi/2 enclosures.
        let (lo, hi) = atan_point(f64::INFINITY);
        assert!(lo <= std::f64::consts::FRAC_PI_2 && std::f64::consts::FRAC_PI_2 <= hi);
        let (lo, hi) = atan_point(f64::NEG_INFINITY);
        assert!(lo <= -std::f64::consts::FRAC_PI_2 && -std::f64::consts::FRAC_PI_2 <= hi);
        assert!(atan_point(f64::NAN).0.is_nan());
    }

    #[test]
    fn atan_odd_symmetry_and_bounds() {
        for &x in &[0.3, 1.7, 42.0, 1e-10, 1e15] {
            let (plo, phi) = atan_point(x);
            let (nlo, nhi) = atan_point(-x);
            assert_eq!(plo, -nhi, "atan(-x) = -atan(x) at {x}");
            assert_eq!(phi, -nlo);
            assert!(phi <= f64_upper(DD_PI_2), "bounded by pi/2 at {x}");
        }
    }

    #[test]
    fn asin_acos_reference_points() {
        assert_eq!(asin_point(0.0), (0.0, 0.0));
        for &x in &[0.1, 0.5, -0.5, 0.9, -0.99, 0.9999999, 1e-300, -1.0, 1.0] {
            let (lo, hi) = asin_point(x);
            assert!(lo <= x.asin() && x.asin() <= hi, "asin({x}): [{lo}, {hi}]");
            let (lo, hi) = acos_point(x);
            assert!(lo <= x.acos() && x.acos() <= hi, "acos({x}): [{lo}, {hi}]");
        }
        // Tightness away from the domain edge.
        for &x in &[0.3, -0.7, 0.5] {
            let (lo, hi) = asin_point(x);
            assert!(r::ulps_between(lo, hi) <= 16, "asin({x}) too wide: [{lo}, {hi}]");
        }
        // acos range is [0, pi].
        let (lo, _) = acos_point(1.0);
        assert_eq!(lo, 0.0);
        let (_, hi) = acos_point(-1.0);
        assert!(hi >= std::f64::consts::PI);
        // Out of domain: NaN.
        assert!(asin_point(1.5).0.is_nan());
        assert!(acos_point(-1.0000000000000002).0.is_nan());
        assert!(asin_point(f64::NAN).0.is_nan());
    }

    #[test]
    fn interval_asin_acos() {
        let i = F64I::new(-0.5, 0.5).unwrap();
        let s = asin_interval(&i);
        assert!(s.lo() <= (-0.5f64).asin() && 0.5f64.asin() <= s.hi());
        let c = acos_interval(&i);
        // acos decreasing: lower bound from 0.5, upper from -0.5.
        assert!(c.lo() <= 0.5f64.acos() && (-0.5f64).acos() <= c.hi());
        assert!(c.lo() > 1.0 && c.hi() < 2.1);
        // Domain violation poisons the matching endpoint.
        let j = F64I::new(-2.0, 0.5).unwrap();
        assert!(asin_interval(&j).lo().is_nan());
        assert!(acos_interval(&j).hi().is_nan());
        assert!(asin_interval(&F64I::NAI).has_nan());
    }

    #[test]
    fn interval_atan_monotone() {
        let i = F64I::new(-1.0, 1.0).unwrap();
        let a = atan_interval(&i);
        assert!(a.lo() <= -std::f64::consts::FRAC_PI_4);
        assert!(a.hi() >= std::f64::consts::FRAC_PI_4);
        assert!(a.hi() < 0.786);
        // Entire line maps into (-pi/2, pi/2) closure.
        let e = atan_interval(&F64I::ENTIRE);
        assert!(e.lo() <= -std::f64::consts::FRAC_PI_2 && e.hi() >= std::f64::consts::FRAC_PI_2);
        assert!(e.width() < 3.15);
        assert!(atan_interval(&F64I::NAI).has_nan());
    }

    #[test]
    fn interval_exp_log_monotone() {
        let i = F64I::new(0.0, 1.0).unwrap();
        let e = exp_interval(&i);
        assert!(e.lo() <= 1.0 && std::f64::consts::E <= e.hi());
        let l = log_interval(&F64I::new(1.0, std::f64::consts::E).unwrap());
        assert!(l.lo() <= 0.0 && 1.0 <= l.hi() + 1e-15);
        // log of interval with negative lower bound -> NaN lower.
        let n = log_interval(&F64I::new(-1.0, 4.0).unwrap());
        assert!(n.lo().is_nan());
        assert!(n.hi() >= 4.0f64.ln());
    }
}
