//! The C-level runtime surface (`igen_lib.h`).
//!
//! IGen-generated C calls free functions like `ia_add_f64`; this module
//! provides the same names with the same semantics so that (a) the
//! interpreter (`igen-interp`) can bind generated programs one-to-one and
//! (b) the compiler's documentation of its output maps directly onto
//! runnable Rust. Everything here is a thin veneer over the methods of
//! [`F64I`], [`DdI`] and [`TBool`].

use crate::acc::{SumAcc64, SumAccDd};
use crate::ddi::DdI;
use crate::elem;
use crate::f32i::F32I;
use crate::f64i::F64I;
use crate::tbool::{TBool, UnknownBranch};

// --- f64i arithmetic -----------------------------------------------------

/// `ia_set_f64(lo, hi)`: interval from endpoints (asserts `lo <= hi`).
pub fn ia_set_f64(lo: f64, hi: f64) -> F64I {
    F64I::new(lo, hi).expect("ia_set_f64: lo > hi")
}

/// `ia_set_point_f64(x)`: exact point interval.
pub fn ia_set_point_f64(x: f64) -> F64I {
    F64I::point(x)
}

/// `ia_set_tol_f64(x, tol)`: value with known absolute tolerance (Fig. 3).
pub fn ia_set_tol_f64(x: f64, tol: f64) -> F64I {
    F64I::with_tol(x, tol)
}

/// `ia_add_f64`.
pub fn ia_add_f64(a: F64I, b: F64I) -> F64I {
    a + b
}

/// `ia_sub_f64`.
pub fn ia_sub_f64(a: F64I, b: F64I) -> F64I {
    a - b
}

/// `ia_mul_f64`.
pub fn ia_mul_f64(a: F64I, b: F64I) -> F64I {
    a * b
}

/// `ia_div_f64`.
pub fn ia_div_f64(a: F64I, b: F64I) -> F64I {
    a / b
}

/// `ia_neg_f64`.
pub fn ia_neg_f64(a: F64I) -> F64I {
    -a
}

/// `ia_abs_f64`.
pub fn ia_abs_f64(a: F64I) -> F64I {
    a.abs()
}

/// `ia_sqrt_f64`.
pub fn ia_sqrt_f64(a: F64I) -> F64I {
    a.sqrt()
}

/// `ia_floor_f64`.
pub fn ia_floor_f64(a: F64I) -> F64I {
    a.floor()
}

/// `ia_ceil_f64`.
pub fn ia_ceil_f64(a: F64I) -> F64I {
    a.ceil()
}

/// `ia_min_f64`.
pub fn ia_min_f64(a: F64I, b: F64I) -> F64I {
    a.min_i(&b)
}

/// `ia_max_f64`.
pub fn ia_max_f64(a: F64I, b: F64I) -> F64I {
    a.max_i(&b)
}

/// `ia_exp_f64`.
pub fn ia_exp_f64(a: F64I) -> F64I {
    elem::exp_interval(&a)
}

/// `ia_log_f64`.
pub fn ia_log_f64(a: F64I) -> F64I {
    elem::log_interval(&a)
}

/// `ia_sin_f64`.
pub fn ia_sin_f64(a: F64I) -> F64I {
    elem::sin_interval(&a)
}

/// `ia_cos_f64`.
pub fn ia_cos_f64(a: F64I) -> F64I {
    elem::cos_interval(&a)
}

/// `ia_tan_f64`.
pub fn ia_tan_f64(a: F64I) -> F64I {
    elem::tan_interval(&a)
}

/// `ia_atan_f64`.
pub fn ia_atan_f64(a: F64I) -> F64I {
    elem::atan_interval(&a)
}

/// `ia_asin_f64`.
pub fn ia_asin_f64(a: F64I) -> F64I {
    elem::asin_interval(&a)
}

/// `ia_acos_f64`.
pub fn ia_acos_f64(a: F64I) -> F64I {
    elem::acos_interval(&a)
}

/// `ia_sqr_f64`: dependency-aware square (`[-1,2]² = [0,4]`).
pub fn ia_sqr_f64(a: F64I) -> F64I {
    a.sqr()
}

/// `ia_pow_f64`: dependency-aware integer power; the lowering of
/// `pow(x, n)` with a compile-time integer exponent.
pub fn ia_pow_f64(a: F64I, n: i32) -> F64I {
    a.powi(n)
}

/// `ia_and_f64`: endpoint-wise bitwise AND (mask idiom, Section V).
pub fn ia_and_f64(a: F64I, b: F64I) -> F64I {
    a.bitand_mask(&b)
}

/// `ia_or_f64`: endpoint-wise bitwise OR.
pub fn ia_or_f64(a: F64I, b: F64I) -> F64I {
    a.bitor_mask(&b)
}

/// `ia_xor_f64`: endpoint-wise bitwise XOR.
pub fn ia_xor_f64(a: F64I, b: F64I) -> F64I {
    a.bitxor_mask(&b)
}

/// `ia_not_f64`: endpoint-wise bitwise NOT (mask idiom: the complement
/// of an all-ones/all-zeros mask, Section V).
pub fn ia_not_f64(a: F64I) -> F64I {
    a.bitnot_mask()
}

/// `ia_join_f64`: interval hull — used by the compiler's
/// join-both-branches policy (Section IV-B).
pub fn ia_join_f64(a: F64I, b: F64I) -> F64I {
    a.join(&b)
}

/// `ia_set_int_f64`: exact conversion of an integer.
pub fn ia_set_int_f64(x: i64) -> F64I {
    crate::cast::i64_to_f64i(x)
}

// --- f64i comparisons ----------------------------------------------------

/// `ia_cmplt_f64`.
pub fn ia_cmplt_f64(a: F64I, b: F64I) -> TBool {
    a.cmp_lt(&b)
}

/// `ia_cmple_f64`.
pub fn ia_cmple_f64(a: F64I, b: F64I) -> TBool {
    a.cmp_le(&b)
}

/// `ia_cmpgt_f64`.
pub fn ia_cmpgt_f64(a: F64I, b: F64I) -> TBool {
    a.cmp_gt(&b)
}

/// `ia_cmpge_f64`.
pub fn ia_cmpge_f64(a: F64I, b: F64I) -> TBool {
    a.cmp_ge(&b)
}

/// `ia_cmpeq_f64`.
pub fn ia_cmpeq_f64(a: F64I, b: F64I) -> TBool {
    a.cmp_eq(&b)
}

/// `ia_cmpne_f64`.
pub fn ia_cmpne_f64(a: F64I, b: F64I) -> TBool {
    a.cmp_ne(&b)
}

/// `ia_cvt2bool_tb`: branch decision; signals on unknown (the paper's
/// default policy — "It may signal exception", Fig. 2).
///
/// # Errors
///
/// [`UnknownBranch`] when the condition is undecidable.
pub fn ia_cvt2bool_tb(t: TBool) -> Result<bool, UnknownBranch> {
    t.to_bool()
}

/// `ia_is_true_tb`: definite-truth test (join-branches policy).
pub fn ia_is_true_tb(t: TBool) -> bool {
    t.is_true()
}

/// `ia_is_false_tb`: definite-falsity test (join-branches policy).
pub fn ia_is_false_tb(t: TBool) -> bool {
    t.is_false()
}

// --- ddi -------------------------------------------------------------------

/// `ia_set_dd(lo, hi)` from f64 endpoints.
pub fn ia_set_dd(lo: f64, hi: f64) -> DdI {
    DdI::new(igen_dd::Dd::from(lo), igen_dd::Dd::from(hi)).expect("ia_set_dd: lo > hi")
}

/// `ia_set_ddx(lo_hi, lo_lo, hi_hi, hi_lo)`: interval from full
/// double-double endpoints — how the DD compilation target materializes
/// decimal constants at ~2^-106 relative accuracy.
pub fn ia_set_ddx(lo_hi: f64, lo_lo: f64, hi_hi: f64, hi_lo: f64) -> DdI {
    DdI::new(igen_dd::Dd::new(lo_hi, lo_lo), igen_dd::Dd::new(hi_hi, hi_lo))
        .expect("ia_set_ddx: lo > hi")
}

/// `ia_add_dd`.
pub fn ia_add_dd(a: DdI, b: DdI) -> DdI {
    a + b
}

/// `ia_sub_dd`.
pub fn ia_sub_dd(a: DdI, b: DdI) -> DdI {
    a - b
}

/// `ia_mul_dd`.
pub fn ia_mul_dd(a: DdI, b: DdI) -> DdI {
    a * b
}

/// `ia_div_dd`.
pub fn ia_div_dd(a: DdI, b: DdI) -> DdI {
    a / b
}

/// `ia_neg_dd`.
pub fn ia_neg_dd(a: DdI) -> DdI {
    -a
}

/// `ia_sqrt_dd`.
pub fn ia_sqrt_dd(a: DdI) -> DdI {
    a.sqrt()
}

/// `ia_sqr_dd`: dependency-aware square.
pub fn ia_sqr_dd(a: DdI) -> DdI {
    a.sqr()
}

/// `ia_pow_dd`: dependency-aware integer power.
pub fn ia_pow_dd(a: DdI, n: i32) -> DdI {
    a.powi(n)
}

/// `ia_cvt_f64_dd`: promotion (Table II).
pub fn ia_cvt_f64_dd(a: F64I) -> DdI {
    DdI::from_f64i(&a)
}

/// `ia_cvt_dd_f64`: outward demotion.
pub fn ia_cvt_dd_f64(a: DdI) -> F64I {
    a.to_f64i()
}

/// `ia_join_dd`: interval hull in double-double.
pub fn ia_join_dd(a: DdI, b: DdI) -> DdI {
    a.join(&b)
}

/// `ia_set_int_dd`: exact conversion of an integer.
pub fn ia_set_int_dd(x: i64) -> DdI {
    DdI::from_f64i(&crate::cast::i64_to_f64i(x))
}

/// `ia_abs_dd`.
pub fn ia_abs_dd(a: DdI) -> DdI {
    a.abs()
}

/// `ia_min_dd`.
pub fn ia_min_dd(a: DdI, b: DdI) -> DdI {
    a.min_i(&b)
}

/// `ia_max_dd`.
pub fn ia_max_dd(a: DdI, b: DdI) -> DdI {
    a.max_i(&b)
}

/// `ia_cmplt_dd`.
pub fn ia_cmplt_dd(a: DdI, b: DdI) -> TBool {
    a.cmp_lt(&b)
}

/// `ia_cmpgt_dd`.
pub fn ia_cmpgt_dd(a: DdI, b: DdI) -> TBool {
    a.cmp_gt(&b)
}

// --- f32i (single-precision target, Section III) --------------------------

/// `ia_set_f32(lo, hi)`.
pub fn ia_set_f32(lo: f32, hi: f32) -> F32I {
    F32I::new(lo, hi).expect("ia_set_f32: lo > hi")
}

/// `ia_set_tol_f32(x, tol)`.
pub fn ia_set_tol_f32(x: f32, tol: f32) -> F32I {
    F32I::with_tol(x, tol)
}

/// `ia_add_f32`.
pub fn ia_add_f32(a: F32I, b: F32I) -> F32I {
    a + b
}

/// `ia_sub_f32`.
pub fn ia_sub_f32(a: F32I, b: F32I) -> F32I {
    a - b
}

/// `ia_mul_f32`.
pub fn ia_mul_f32(a: F32I, b: F32I) -> F32I {
    a * b
}

/// `ia_div_f32`.
pub fn ia_div_f32(a: F32I, b: F32I) -> F32I {
    a / b
}

/// `ia_neg_f32`.
pub fn ia_neg_f32(a: F32I) -> F32I {
    -a
}

/// `ia_sqrt_f32`.
pub fn ia_sqrt_f32(a: F32I) -> F32I {
    a.sqrt()
}

/// `ia_cvt_f32_f64`: promotion (exact).
pub fn ia_cvt_f32_f64(a: F32I) -> F64I {
    a.to_f64i()
}

/// `ia_cvt_f64_f32`: outward demotion.
pub fn ia_cvt_f64_f32(a: F64I) -> F32I {
    F32I::from_f64i(&a)
}

/// `ia_cmplt_f32`.
pub fn ia_cmplt_f32(a: F32I, b: F32I) -> TBool {
    a.cmp_lt(&b)
}

/// `ia_cmpgt_f32`.
pub fn ia_cmpgt_f32(a: F32I, b: F32I) -> TBool {
    a.cmp_gt(&b)
}

// --- reduction accumulators (Section VI-B) -------------------------------

/// `isum_init_f64`.
pub fn isum_init_f64(init: F64I) -> SumAcc64 {
    SumAcc64::new(init)
}

/// `isum_accumulate_f64`.
pub fn isum_accumulate_f64(acc: &mut SumAcc64, term: F64I) {
    acc.accumulate(&term);
}

/// `isum_reduce_f64`.
pub fn isum_reduce_f64(acc: &SumAcc64) -> F64I {
    acc.reduce()
}

/// `isum_init_dd`.
pub fn isum_init_dd(init: DdI) -> SumAccDd {
    SumAccDd::new(init)
}

/// `isum_accumulate_dd`.
pub fn isum_accumulate_dd(acc: &mut SumAccDd, term: DdI) {
    acc.accumulate(&term);
}

/// `isum_reduce_dd`.
pub fn isum_reduce_dd(acc: &SumAccDd) -> DdI {
    acc.reduce()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_pipeline() {
        // The exact computation of Fig. 2: c = a + b + 0.1; if (c > a) c = a*c.
        let a = ia_set_point_f64(1.0);
        let b = ia_set_point_f64(2.0);
        let t1 = ia_add_f64(a, b);
        #[allow(clippy::excessive_precision)] // the exact 1-ulp pair around 0.1
        let t2 = ia_set_f64(0.099999999999999992, 0.100000000000000006);
        let c = ia_add_f64(t1, t2);
        let t4 = ia_cmpgt_f64(c, a);
        let take = ia_cvt2bool_tb(t4).expect("decidable");
        assert!(take);
        let c = ia_mul_f64(a, c);
        assert!(c.contains(3.1));
    }

    #[test]
    fn unknown_branch_signals() {
        let a = ia_set_f64(0.0, 2.0);
        let b = ia_set_f64(1.0, 3.0);
        assert!(ia_cvt2bool_tb(ia_cmpgt_f64(a, b)).is_err());
    }

    #[test]
    fn dd_roundtrip() {
        let x = ia_set_point_f64(0.1);
        let d = ia_cvt_f64_dd(x);
        let q = ia_div_dd(d, ia_set_dd(3.0, 3.0));
        let back = ia_cvt_dd_f64(q);
        assert!(back.contains(0.1 / 3.0));
    }

    #[test]
    fn reduction_accumulator_api() {
        let mut acc = isum_init_f64(F64I::ZERO);
        for _ in 0..100 {
            isum_accumulate_f64(&mut acc, ia_set_point_f64(0.1));
        }
        let s = isum_reduce_f64(&acc);
        assert!(s.contains(10.000000000000002)); // RN sum of a hundred 0.1s
    }
}
