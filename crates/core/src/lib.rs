//! `igen-core`: **IGen**, the source-to-source interval compiler
//! (CGO 2021).
//!
//! IGen takes a C function performing floating-point computations —
//! possibly using Intel SIMD intrinsics — plus a target precision, and
//! produces an equivalent C function that computes a *sound* enclosure of
//! the result using interval arithmetic (Fig. 1 of the paper):
//!
//! * floating-point types are promoted to interval types per Table II
//!   ([`types`]);
//! * constants become sound interval enclosures with compile-time
//!   constant folding ([`consts`], Section IV-B);
//! * comparisons become three-valued `tbool` values with the paper's two
//!   branch policies ([`Config`]);
//! * SIMD intrinsics in the input are mapped onto interval
//!   implementations, hand-optimized for the common ones and otherwise
//!   generated from the vendor specification via `igen-simdgen`
//!   (Section V);
//! * annotated reductions are replaced by the accurate accumulators of
//!   Section VI-B ([`reduce`]).
//!
//! # Example
//!
//! ```
//! use igen_core::{Compiler, Config};
//!
//! let src = r#"
//!     double foo(double a, double b) {
//!         double c;
//!         c = a + b + 0.1;
//!         if (c > a) {
//!             c = a * c;
//!         }
//!         return c;
//!     }
//! "#;
//! let out = Compiler::new(Config::default()).compile_str(src).unwrap();
//! assert!(out.c_source.contains("f64i foo(f64i a, f64i b)"));
//! assert!(out.c_source.contains("ia_add_f64"));
//! assert!(out.c_source.contains("ia_cvt2bool_tb"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod consts;
mod header;
mod lower;
pub mod opt;
pub mod reduce;
mod simd;
pub mod types;
mod verify;
pub mod vm_bridge;

pub use config::{BranchPolicy, Config, OptLevel, OutputVec, Precision};
pub use header::runtime_header;
pub use lower::{CompileError, Output};
pub use opt::{PassReport, PassStats};
pub use reduce::ReductionInfo;
pub use simd::{compile_intrinsics, hand_optimized, HAND_OPTIMIZED};
pub use vm_bridge::{
    compile_to_program, compile_to_program_raw, interp_reference, interp_reference_dd,
    verify_bit_identity, verify_bit_identity_dd, VmBridgeError,
};

use igen_cfront::TranslationUnit;

/// The IGen compiler instance.
///
/// Holds a [`Config`] and compiles translation units or source strings.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    cfg: Config,
}

impl Compiler {
    /// Creates a compiler for the given configuration.
    pub fn new(cfg: Config) -> Compiler {
        Compiler { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Compiles C source text.
    ///
    /// # Errors
    ///
    /// [`CompileError::Parse`] on frontend failures, otherwise
    /// [`CompileError::Unsupported`] for constructs outside the supported
    /// subset (Section IV-B "Limitations").
    pub fn compile_str(&self, src: &str) -> Result<Output, CompileError> {
        let tu = {
            let _span = igen_telemetry::span("compile.parse");
            igen_cfront::parse(src)?
        };
        self.compile_unit(&tu)
    }

    /// Compiles a parsed translation unit.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_str`].
    pub fn compile_unit(&self, tu: &TranslationUnit) -> Result<Output, CompileError> {
        // Layer 1 — lower: AST → three-address AST (type promotion,
        // constant enclosures, temporaries) plus detected reduction
        // groups.
        let (lowered, warnings, reduction_groups, intrinsics_used) = {
            let _span = igen_telemetry::span("compile.lower");
            lower::lower_unit(tu, &self.cfg)?
        };
        // Layer 2 — optimize: typed IR through the pass pipeline.
        let mut ir = {
            let _span = igen_telemetry::span("compile.build_ir");
            igen_ir::build_unit(&lowered)
        };
        let mut ctx = opt::PassCtx {
            cfg: &self.cfg,
            reduction_groups: reduction_groups.into(),
            reductions: Vec::new(),
        };
        let opt_report = opt::run_pipeline(&mut ir, &mut ctx)?;
        if opt_report.changed() {
            // Restore the paper's dense `t1, t2, …`/`acc1, …` numbering;
            // an unchanged IR keeps its lowering-assigned numbers (and its
            // exact bytes).
            let _span = igen_telemetry::span("compile.renumber");
            igen_ir::renumber_unit(&mut ir);
        }
        let reductions = ctx.reductions;
        // Layer 3 — emit: IR → AST → C through the existing printer.
        let _emit_span = igen_telemetry::span("compile.emit");
        let unit = igen_ir::emit_unit(&ir);
        let mut c_source = igen_cfront::print_unit(&unit);
        // The requested register-packing configuration (Fig. 8's sv/vv)
        // is recorded in the output; the packing itself is a register-
        // allocation concern realized by the runtime's lane-vector
        // kernels (see DESIGN.md row 9). The default (ss) emits no
        // banner so the paper's listings stay byte-exact.
        match self.cfg.vectorize {
            config::OutputVec::Scalar => {}
            config::OutputVec::Sse => {
                c_source =
                    format!("/* igen configuration: sv (one interval per __m128d) */\n{c_source}");
            }
            config::OutputVec::Avx => {
                c_source =
                    format!("/* igen configuration: vv (packed interval vectors) */\n{c_source}");
            }
        }
        Ok(Output { unit, c_source, warnings, reductions, intrinsics_used, ir, opt_report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Output {
        Compiler::new(Config::default()).compile_str(src).unwrap()
    }

    fn compile_cfg(src: &str, cfg: Config) -> Output {
        Compiler::new(cfg).compile_str(src).unwrap()
    }

    #[test]
    fn fig2_transformation() {
        let out = compile(
            r#"
            double foo(double a, double b) {
                double c;
                c = a + b + 0.1;
                if (c > a) {
                    c = a * c;
                }
                return c;
            }
        "#,
        );
        let c = &out.c_source;
        assert!(c.starts_with("#include \"igen_lib.h\""), "{c}");
        assert!(c.contains("f64i foo(f64i a, f64i b)"), "{c}");
        assert!(c.contains("f64i c;"), "{c}");
        // Temporaries as in Fig. 2.
        assert!(c.contains("f64i t1 = ia_add_f64(a, b);"), "{c}");
        assert!(c.contains("ia_set_f64(0.09999999999999999"), "{c}");
        assert!(c.contains("c = ia_add_f64(t1, t2);"), "{c}");
        assert!(c.contains("tbool t"), "{c}");
        assert!(c.contains("ia_cmpgt_f64(c, a)"), "{c}");
        assert!(c.contains("if (ia_cvt2bool_tb("), "{c}");
        assert!(c.contains("c = ia_mul_f64(a, c);"), "{c}");
        // The output re-parses.
        igen_cfront::parse(c).unwrap();
    }

    #[test]
    fn fig3_language_extensions() {
        let out = compile(
            r#"
            double read_sensor(double:0.125 a) {
                double c = 5.0 + 0.25t;
                return a + c;
            }
        "#,
        );
        let c = &out.c_source;
        assert!(c.contains("f64i read_sensor(double a)"), "{c}");
        assert!(c.contains("f64i _a = ia_set_tol_f64(a, 0.125);"), "{c}");
        // Constant folded: 5.0 + 0.25t = [4.75, 5.25] (2-ulp slack from
        // the representable-constant rule widens the printed endpoints).
        assert!(c.contains("f64i c = ia_set_f64(4.7"), "{c}");
        assert!(c.contains("ia_add_f64(_a, c)"), "{c}");
        igen_cfront::parse(c).unwrap();
    }

    #[test]
    fn fig7_reduction_transformation() {
        let cfg = Config { reductions: true, ..Config::default() };
        let out = compile_cfg(
            r#"
            void mvm(double* A, double* x, double* y) {
                #pragma igen reduce y
                for (int i = 0; i < 100; i++)
                    for (int j = 0; j < 500; j++)
                        y[i] = y[i] + A[i*500+j]*x[j];
            }
        "#,
            cfg,
        );
        let c = &out.c_source;
        assert_eq!(out.reductions.len(), 1);
        assert_eq!(out.reductions[0].carrying_loops, vec!["j".to_string()]);
        assert!(c.contains("void mvm(f64i* A, f64i* x, f64i* y)"), "{c}");
        assert!(c.contains("acc_f64 acc1;"), "{c}");
        assert!(c.contains("isum_init_f64(&acc1, y[i]);"), "{c}");
        assert!(c.contains("ia_mul_f64(A[i * 500 + j], x[j])"), "{c}");
        assert!(c.contains("isum_accumulate_f64(&acc1,"), "{c}");
        assert!(c.contains("y[i] = isum_reduce_f64(&acc1);"), "{c}");
        igen_cfront::parse(c).unwrap();
    }

    #[test]
    fn reduction_requires_pragma_and_flag() {
        // Without the flag the pragma is dropped and the loop is a plain
        // interval loop.
        let out = compile(
            r#"
            void mvm(double* A, double* x, double* y) {
                #pragma igen reduce y
                for (int i = 0; i < 4; i++)
                    y[i] = y[i] + A[i]*x[i];
            }
        "#,
        );
        assert!(out.reductions.is_empty());
        assert!(out.c_source.contains("ia_add_f64"));
        assert!(!out.c_source.contains("isum_"));
    }

    #[test]
    fn dd_precision_output() {
        let cfg = Config { precision: Precision::Dd, ..Config::default() };
        let out = compile_cfg("double sq(double x) { return x * x; }", cfg);
        assert!(out.c_source.contains("ddi sq(ddi x)"), "{}", out.c_source);
        assert!(out.c_source.contains("ia_mul_dd(x, x)"), "{}", out.c_source);
    }

    #[test]
    fn constant_folding() {
        let out = compile("double f(double x) { return x + (2.0 + 0.1); }");
        // 2.0 + 0.1 folds into a single ia_set_f64 constant enclosing 2.1.
        assert!(out.c_source.contains("ia_set_f64(2.0999999999999996, 2.1"), "{}", out.c_source);
        let count = out.c_source.matches("ia_add_f64").count();
        assert_eq!(count, 1, "{}", out.c_source);
    }

    #[test]
    fn elementary_functions_mapped() {
        let out = compile("double f(double x) { return sin(x) + sqrt(fabs(x)) + exp(log(x)); }");
        for name in ["ia_sin_f64", "ia_sqrt_f64", "ia_abs_f64", "ia_exp_f64", "ia_log_f64"] {
            assert!(out.c_source.contains(name), "{name} missing:\n{}", out.c_source);
        }
    }

    #[test]
    fn float_to_int_cast_rejected() {
        let err = Compiler::new(Config::default())
            .compile_str("int f(double x) { return (int)x; }")
            .unwrap_err();
        assert!(matches!(err, CompileError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn malloc_warns() {
        let out = compile("void f(double* a) { a = malloc(8); a[0] = 1.0; }");
        assert_eq!(out.warnings.len(), 1);
        assert!(out.warnings[0].contains("malloc"));
    }

    #[test]
    fn simd_input_mapped_to_interval_intrinsics() {
        let out = compile(
            r#"
            __m256d scale(__m256d x, __m256d y) {
                __m256d p = _mm256_mul_pd(x, y);
                return _mm256_add_pd(p, x);
            }
        "#,
        );
        let c = &out.c_source;
        assert!(c.contains("m256di_2 scale(m256di_2 x, m256di_2 y)"), "{c}");
        assert!(c.contains("ia_mm256_mul_pd(x, y)"), "{c}");
        assert!(c.contains("ia_mm256_add_pd(p, x)"), "{c}");
        assert_eq!(out.intrinsics_used, vec!["_mm256_mul_pd", "_mm256_add_pd"]);
    }

    #[test]
    fn join_branch_policy() {
        let cfg = Config { branch_policy: BranchPolicy::JoinBranches, ..Config::default() };
        let out = compile_cfg(
            r#"
            double f(double x) {
                double y = 1.0;
                if (x > 0.0) {
                    y = x;
                } else {
                    y = -x;
                }
                return y;
            }
        "#,
            cfg,
        );
        let c = &out.c_source;
        assert!(c.contains("ia_is_true_tb"), "{c}");
        assert!(c.contains("ia_is_false_tb"), "{c}");
        assert!(c.contains("ia_join_f64"), "{c}");
        igen_cfront::parse(c).unwrap();
    }

    #[test]
    fn join_policy_falls_back_on_array_writes() {
        let cfg = Config { branch_policy: BranchPolicy::JoinBranches, ..Config::default() };
        let out = compile_cfg(
            r#"
            void f(double* a, double x) {
                if (x > 0.0) {
                    a[0] = x;
                }
            }
        "#,
            cfg,
        );
        assert!(!out.warnings.is_empty());
        assert!(out.c_source.contains("ia_cvt2bool_tb"), "{}", out.c_source);
        assert!(!out.c_source.contains("ia_join_f64"));
    }

    #[test]
    fn loops_with_interval_conditions() {
        let out = compile(
            r#"
            double f(double x) {
                while (x < 100.0) {
                    x = x * 2.0;
                }
                return x;
            }
        "#,
        );
        assert!(out.c_source.contains("while (ia_cvt2bool_tb(ia_cmplt_f64(x,"), "{}", out.c_source);
    }

    #[test]
    fn henon_compiles() {
        let out = compile(
            r#"
            double henon_map(double x, double y, int iterations) {
                double a = 1.05;
                double b = 0.3;
                for (int i = 0; i < iterations; i++) {
                    double xi = x;
                    double yi = y;
                    x = 1 - a*xi*xi + yi;
                    y = b*xi;
                }
                return x;
            }
        "#,
        );
        let c = &out.c_source;
        // The integer literal 1 is lifted into the interval expression.
        assert!(c.contains("ia_sub_f64"), "{c}");
        assert!(c.contains("f64i henon_map(f64i x, f64i y, int iterations)"), "{c}");
        igen_cfront::parse(c).unwrap();
    }
}
