//! Interval implementations of SIMD intrinsics (Section V).
//!
//! The paper's pipeline (Fig. 4) runs the generated C implementation of
//! every intrinsic back through IGen, producing the interval version
//! (`igen_simd.c/.h`); a small set of very common intrinsics is replaced
//! by hand-optimized implementations instead. [`compile_intrinsics`]
//! performs exactly that: it generates C from the embedded specification
//! corpus and self-compiles it.

use crate::lower;
use crate::{CompileError, Config};
use igen_cfront::TranslationUnit;

/// Intrinsics for which the runtime ships hand-optimized interval
/// implementations (detected "by checking name and signature", Section V
/// "Optimized implementations"); the generated fallback is not used for
/// these.
pub const HAND_OPTIMIZED: &[&str] = &[
    "_mm_add_pd",
    "_mm_sub_pd",
    "_mm_mul_pd",
    "_mm_div_pd",
    "_mm_min_pd",
    "_mm_max_pd",
    "_mm_sqrt_pd",
    "_mm_loadu_pd",
    "_mm_storeu_pd",
    "_mm_set1_pd",
    "_mm_setzero_pd",
    "_mm256_add_pd",
    "_mm256_sub_pd",
    "_mm256_mul_pd",
    "_mm256_div_pd",
    "_mm256_min_pd",
    "_mm256_max_pd",
    "_mm256_sqrt_pd",
    "_mm256_loadu_pd",
    "_mm256_load_pd",
    "_mm256_storeu_pd",
    "_mm256_store_pd",
    "_mm256_set1_pd",
    "_mm256_setzero_pd",
    "_mm256_blendv_pd",
    "_mm256_fmadd_pd",
    "_mm256_hadd_pd",
];

/// True if the runtime provides a hand-optimized interval implementation
/// for the named intrinsic.
pub fn hand_optimized(name: &str) -> bool {
    HAND_OPTIMIZED.contains(&name)
}

/// Result of compiling the intrinsics corpus to interval implementations.
#[derive(Debug, Clone)]
pub struct IntrinsicsOutput {
    /// The transformed translation unit (`igen_simd.c` of Fig. 4).
    pub unit: TranslationUnit,
    /// Pretty-printed source.
    pub c_source: String,
    /// Intrinsics that could not be generated (each with the reason) —
    /// the paper's "had to be implemented manually" set.
    pub skipped: Vec<(String, String)>,
}

/// Generates C implementations for the whole embedded corpus and compiles
/// them to interval code — the complete Fig. 4 pipeline. Intrinsics whose
/// generated code is not transformable (e.g. raw bit shifts on the
/// integer view, as in `_mm256_blendv_pd`'s mask test) are reported in
/// `skipped` — these are exactly the ones the runtime must hand-optimize,
/// as the paper describes in Section V "Optimized implementations".
///
/// # Errors
///
/// Currently infallible in practice (failures go to `skipped`); the
/// `Result` is kept for API stability.
pub fn compile_intrinsics(cfg: &Config) -> Result<IntrinsicsOutput, CompileError> {
    use igen_cfront::{Item, TranslationUnit};
    let specs = igen_simdgen::corpus_specs();
    let (gen_unit, errors) = igen_simdgen::generate_unit(&specs);
    let mut skipped: Vec<(String, String)> =
        errors.into_iter().map(|(n, e)| (n, e.to_string())).collect();
    let mut items: Vec<Item> = vec![Item::Include("\"igen_lib.h\"".to_string())];
    for item in &gen_unit.items {
        match item {
            Item::Typedef(td) => items.push(Item::Typedef(lower::promote_typedef(td, cfg))),
            Item::Function(f) => {
                let mut xf = lower::Xform::new(cfg);
                match xf.function(f) {
                    Ok(tf) => items.push(Item::Function(tf)),
                    Err(e) => {
                        let name = f.name.strip_prefix("_c").unwrap_or(&f.name).to_string();
                        skipped.push((name, format!("{e} (hand-optimized instead)")));
                    }
                }
            }
            other => items.push(other.clone()),
        }
    }
    let unit = TranslationUnit { items };
    let c_source = igen_cfront::print_unit(&unit);
    Ok(IntrinsicsOutput { unit, c_source, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_self_compiles() {
        let out = compile_intrinsics(&Config::default()).unwrap();
        let c = &out.c_source;
        // The generated interval intrinsic bodies use the runtime ops on
        // the promoted union fields.
        assert!(c.contains("_c_mm256_add_pd"), "{c}");
        assert!(c.contains("ia_add_f64(a.f[i / 64], b.f[i / 64])"), "{c}");
        assert!(c.contains("ia_sqrt_f64"), "{c}");
        // Skipped: the deliberate unsupported corpus entry plus
        // blendv_pd, whose generated mask test shifts raw bits — exactly
        // the kind of intrinsic the paper hand-optimizes instead.
        let names: Vec<&str> = out.skipped.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["_mm256_round_pd", "_mm256_blendv_pd"], "{:?}", out.skipped);
        assert!(hand_optimized("_mm256_blendv_pd"));
        // Output re-parses.
        igen_cfront::parse(c).unwrap();
    }

    #[test]
    fn hand_optimized_set() {
        assert!(hand_optimized("_mm256_add_pd"));
        assert!(hand_optimized("_mm_mul_pd"));
        assert!(!hand_optimized("_mm256_round_pd"));
        assert!(!hand_optimized("_mm256_cvtps_pd"));
    }
}
