//! Compiler configuration (Fig. 1: "file.c with target precision").

/// Target precision for interval endpoints (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Single-precision endpoints (`f32i`).
    F32,
    /// Double-precision endpoints (`f64i`) — the default.
    #[default]
    F64,
    /// Double-double endpoints (`ddi`, Section VI-A).
    Dd,
}

/// Output vectorization mode (the ss/sv/vv configurations of the
/// evaluation).
///
/// The transformation is semantically identical across modes — the mode
/// selects which runtime kernels the emitted calls resolve to (scalar,
/// SSE-pair, or AVX-packed implementations of the same `ia_*` interface)
/// and how input SIMD types are promoted (Table II). The performance
/// impact is measured by the `igen-bench` harness against the
/// corresponding `igen-interval` / `igen-kernels` implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputVec {
    /// Scalar output (`IGen-ss` from scalar input).
    #[default]
    Scalar,
    /// SSE-optimized output (`IGen-sv`): one interval per `__m128d`.
    Sse,
    /// AVX-optimized output (`IGen-vv`): packed interval vectors.
    Avx,
}

/// Policy for branches whose interval condition is unknown (Section
/// IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchPolicy {
    /// Signal an exception at runtime (the default; Fig. 2 "It may
    /// signal exception").
    #[default]
    Exception,
    /// Compute both branches and join the resulting intervals. Falls back
    /// to [`BranchPolicy::Exception`] (with a diagnostic) when a branch
    /// modifies arrays or integer variables, exactly as the paper
    /// restricts it.
    JoinBranches,
}

/// Optimization level of the IR pass pipeline (see DESIGN.md §9).
///
/// At [`OptLevel::O0`] the pipeline runs only the reduction rewriting
/// pass (which implements `#pragma igen reduce` and is therefore part of
/// the language, not an optimization), and the emitted C is
/// byte-identical to the original single-pass rewriter — the contract
/// pinned by the golden-file tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimization: faithful lowering (the paper's output).
    #[default]
    O0,
    /// Constant-interval folding, copy propagation and dead-temporary
    /// elimination.
    O1,
    /// `O1` plus common-subexpression elimination over pure interval
    /// operations.
    O2,
}

/// Full compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Config {
    /// Endpoint precision.
    pub precision: Precision,
    /// Output vectorization.
    pub vectorize: OutputVec,
    /// Unknown-branch policy.
    pub branch_policy: BranchPolicy,
    /// Enable the reduction accuracy transformation (Section VI-B);
    /// requires `#pragma igen reduce` annotations in the source.
    pub reductions: bool,
    /// Rewrite `v * v` (same plain variable) to the dependency-aware
    /// `ia_sqr_*` kernel — an accuracy optimization beyond the paper
    /// (see DESIGN.md §7): tighter when the interval straddles zero,
    /// identical otherwise. Off by default to match the paper's output.
    pub sqr_rewrite: bool,
    /// Optimization level of the IR pass pipeline.
    pub opt_level: OptLevel,
    /// Differentially verify every optimization pass: re-execute the
    /// before/after IR of each pass under the reference interpreter on
    /// pseudo-random inputs and require bit-identical interval endpoints.
    pub verify_passes: bool,
}

impl Config {
    /// The suffix used by runtime calls for this precision (`_f64`/`_dd`).
    pub fn suffix(&self) -> &'static str {
        match self.precision {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
            Precision::Dd => "dd",
        }
    }

    /// The scalar interval type name for this precision.
    pub fn interval_type(&self) -> &'static str {
        match self.precision {
            Precision::F32 => "f32i",
            Precision::F64 => "f64i",
            Precision::Dd => "ddi",
        }
    }
}
