//! Reduction rewriting (Section VI-B, Fig. 7) as an IR pass.
//!
//! Lowering re-emits each `#pragma igen reduce` whose loop nest contains
//! detected reductions as a marker statement directly before the lowered
//! loop, and hands the detected [`ReductionInfo`] groups over in marker
//! order. This pass consumes the markers and performs the rewrite:
//!
//! * every `for` loop in the annotated nest whose induction variable is
//!   the outermost carrying loop of a reduction is wrapped with
//!   `acc_* accN; isum_init_*(&accN, lhs);` before and
//!   `lhs = isum_reduce_*(&accN);` after (Fig. 7 lines 2, 4 and 9);
//! * the accumulating store (matched by its source location) becomes
//!   `isum_accumulate_*(&accN, term);`, materializing the accumulated
//!   term into a temporary if it is not one already (Fig. 7 lines 6–7).
//!
//! Accumulator names are numbered unit-globally in marker order,
//! matching the original single-pass rewriter; with no annotated
//! reductions the IR is untouched, preserving the `-O0` byte-identity
//! contract.

use super::{Pass, PassCtx};
use crate::config::Precision;
use crate::lower::CompileError;
use crate::reduce::ReductionInfo;
use igen_cfront::{AssignOp, Loc, Pragma, Type, UnOp};
use igen_ir::{build_expr, IrExpr, IrStmt, IrUnit, OpKind, Sfx};
use std::collections::VecDeque;

/// The reduction-rewriting pass.
#[derive(Default)]
pub struct ReducePass;

/// One reduction with its assigned accumulator and (lowered) lvalue.
struct Assigned {
    red: ReductionInfo,
    acc: String,
    lhs: IrExpr,
}

struct St<'a> {
    groups: &'a mut VecDeque<Vec<ReductionInfo>>,
    reductions: &'a mut Vec<ReductionInfo>,
    /// Unit-global accumulator counter (marker order).
    acc: u32,
    /// Per-function temporary high-water mark for materialized terms.
    next_tmp: u32,
    ity: String,
    acc_ty: String,
    sfx: Sfx,
    changed: bool,
}

impl Pass for ReducePass {
    fn name(&self) -> &'static str {
        "reduce"
    }

    /// The accurate accumulators intentionally tighten enclosures, so
    /// before/after endpoints differ by design.
    fn exact(&self) -> bool {
        false
    }

    fn run(&mut self, unit: &mut IrUnit, ctx: &mut PassCtx<'_>) -> Result<bool, CompileError> {
        let sfx = match ctx.cfg.precision {
            Precision::F32 => Sfx::F32,
            Precision::F64 => Sfx::F64,
            Precision::Dd => Sfx::Dd,
        };
        let (ity, sfx_str) = (ctx.cfg.interval_type().to_string(), ctx.cfg.suffix());
        let mut groups = std::mem::take(&mut ctx.reduction_groups);
        let mut st = St {
            groups: &mut groups,
            reductions: &mut ctx.reductions,
            acc: 0,
            next_tmp: 0,
            ity,
            acc_ty: format!("acc_{sfx_str}"),
            sfx,
            changed: false,
        };
        for f in unit.functions_mut() {
            let body = f.body.as_mut().expect("definition");
            st.next_tmp = max_temp(body);
            process_stmts(body, &mut st);
        }
        Ok(st.changed)
    }
}

/// Highest temporary number defined or referenced in `stmts`.
fn max_temp(stmts: &[IrStmt]) -> u32 {
    let mut max = 0;
    for s in stmts {
        super::for_each_stmt(s, &mut |s| {
            if let IrStmt::Def { temp, .. } = s {
                max = max.max(*temp);
            }
        });
        s.walk_exprs(&mut |e| {
            if let IrExpr::Temp(n) = e {
                max = max.max(*n);
            }
        });
    }
    max
}

fn process_stmts(stmts: &mut Vec<IrStmt>, st: &mut St<'_>) {
    let mut i = 0;
    while i < stmts.len() {
        if matches!(&stmts[i], IrStmt::Pragma(Pragma::IgenReduce(_))) {
            let next_is_for = matches!(stmts.get(i + 1), Some(IrStmt::For { .. }));
            stmts.remove(i);
            if next_is_for {
                if let Some(group) = st.groups.pop_front() {
                    let mut assigned: Vec<Assigned> = group
                        .iter()
                        .map(|r| {
                            st.acc += 1;
                            Assigned {
                                red: r.clone(),
                                acc: format!("acc{}", st.acc),
                                lhs: build_expr(&r.lhs),
                            }
                        })
                        .collect();
                    st.reductions.extend(group);
                    for a in &mut assigned {
                        rewrite_accumulates(&mut stmts[i], a, st);
                    }
                    // Wrap carrying loops inside the nest, then the
                    // annotated loop itself (whose wrappers land here, in
                    // the parent list).
                    wrap_inner(&mut stmts[i], &assigned, st);
                    wrap_at(stmts, i, &assigned, st);
                }
            }
            // Re-examine index i: the marker is gone and nested markers in
            // the (possibly wrapped) loop body are found via recursion.
            continue;
        }
        process_children(&mut stmts[i], st);
        i += 1;
    }
}

/// Recurses into every nested statement list looking for further pragma
/// markers.
fn process_children(s: &mut IrStmt, st: &mut St<'_>) {
    match s {
        IrStmt::Block(b) => process_stmts(b, st),
        IrStmt::If { then_branch, else_branch, .. } => {
            process_children(then_branch, st);
            if let Some(e) = else_branch {
                process_children(e, st);
            }
        }
        IrStmt::For { body, .. } | IrStmt::While { body, .. } | IrStmt::DoWhile { body, .. } => {
            process_children(body, st)
        }
        IrStmt::Switch { arms, .. } => {
            for arm in arms {
                process_stmts(&mut arm.body, st);
            }
        }
        _ => {}
    }
}

/// The induction variable of a `for` statement, if recognizable
/// (`for (int i = …` or `for (i = …`).
fn induction_var(s: &IrStmt) -> Option<String> {
    let IrStmt::For { init, .. } = s else {
        return None;
    };
    match init.as_deref() {
        Some(IrStmt::Decl { name, .. }) => Some(name.clone()),
        Some(IrStmt::Expr(IrExpr::Assign { lhs, .. })) => match &**lhs {
            IrExpr::Var(n, _) => Some(n.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn addr(name: &str) -> IrExpr {
    IrExpr::Unary(UnOp::Addr, Box::new(IrExpr::Var(name.to_string(), Loc::default())))
}

/// The Fig. 7 wrapper statements for the reductions in `matches`.
fn wrappers(matches: &[&Assigned], st: &St<'_>) -> (Vec<IrStmt>, Vec<IrStmt>) {
    let mut pre = Vec::new();
    let mut post = Vec::new();
    for a in matches {
        pre.push(IrStmt::Decl {
            ty: Type::Named(st.acc_ty.clone()),
            name: a.acc.clone(),
            init: None,
        });
        pre.push(IrStmt::Expr(IrExpr::Op {
            op: OpKind::SumInit,
            sfx: st.sfx,
            args: vec![addr(&a.acc), a.lhs.clone()],
            loc: Loc::default(),
        }));
        post.push(IrStmt::Expr(IrExpr::Assign {
            op: AssignOp::Assign,
            lhs: Box::new(a.lhs.clone()),
            rhs: Box::new(IrExpr::Op {
                op: OpKind::SumReduce,
                sfx: st.sfx,
                args: vec![addr(&a.acc)],
                loc: Loc::default(),
            }),
            loc: Loc::default(),
        }));
    }
    (pre, post)
}

fn matching(assigned: &[Assigned], var: Option<String>) -> Vec<&Assigned> {
    let Some(var) = var else {
        return Vec::new();
    };
    assigned.iter().filter(|a| a.red.carrying_loops.first() == Some(&var)).collect()
}

/// Wraps the `for` at `stmts[idx]` if its induction variable carries a
/// reduction, splicing the wrappers into the parent list.
fn wrap_at(stmts: &mut Vec<IrStmt>, idx: usize, assigned: &[Assigned], st: &mut St<'_>) {
    let m = matching(assigned, induction_var(&stmts[idx]));
    if m.is_empty() {
        return;
    }
    let (pre, post) = wrappers(&m, st);
    st.changed = true;
    for (k, s) in post.into_iter().enumerate() {
        stmts.insert(idx + 1 + k, s);
    }
    for (k, s) in pre.into_iter().enumerate() {
        stmts.insert(idx + k, s);
    }
}

/// Recursively wraps carrying loops strictly inside `s`.
fn wrap_inner(s: &mut IrStmt, assigned: &[Assigned], st: &mut St<'_>) {
    match s {
        IrStmt::Block(b) => wrap_in_vec(b, assigned, st),
        IrStmt::If { then_branch, else_branch, .. } => {
            wrap_box(then_branch, assigned, st);
            if let Some(e) = else_branch {
                wrap_box(e, assigned, st);
            }
        }
        IrStmt::For { body, .. } | IrStmt::While { body, .. } | IrStmt::DoWhile { body, .. } => {
            wrap_box(body, assigned, st)
        }
        IrStmt::Switch { arms, .. } => {
            for arm in arms {
                wrap_in_vec(&mut arm.body, assigned, st);
            }
        }
        _ => {}
    }
}

fn wrap_in_vec(stmts: &mut Vec<IrStmt>, assigned: &[Assigned], st: &mut St<'_>) {
    let mut i = 0;
    while i < stmts.len() {
        wrap_inner(&mut stmts[i], assigned, st);
        if matches!(stmts[i], IrStmt::For { .. }) {
            let m = matching(assigned, induction_var(&stmts[i]));
            if !m.is_empty() {
                let (pre, post) = wrappers(&m, st);
                let skip = pre.len() + 1 + post.len();
                st.changed = true;
                for (k, s) in post.into_iter().enumerate() {
                    stmts.insert(i + 1 + k, s);
                }
                for (k, s) in pre.into_iter().enumerate() {
                    stmts.insert(i + k, s);
                }
                i += skip;
                continue;
            }
        }
        i += 1;
    }
}

/// A carrying loop in single-statement position (e.g. the direct body of
/// an outer loop) becomes a block holding its wrappers.
fn wrap_box(b: &mut Box<IrStmt>, assigned: &[Assigned], st: &mut St<'_>) {
    wrap_inner(b, assigned, st);
    if matches!(**b, IrStmt::For { .. }) {
        let m = matching(assigned, induction_var(b));
        if !m.is_empty() {
            let (pre, post) = wrappers(&m, st);
            st.changed = true;
            let old = std::mem::replace(&mut **b, IrStmt::Empty);
            let mut v = pre;
            v.push(old);
            v.extend(post);
            **b = IrStmt::Block(v);
        }
    }
}

/// Rewrites the accumulating store of `a.red` (matched by source
/// location) into `isum_accumulate_*` anywhere in `s`, capturing the
/// lowered lvalue for the wrappers.
fn rewrite_accumulates(s: &mut IrStmt, a: &mut Assigned, st: &mut St<'_>) {
    match s {
        IrStmt::Block(b) => rewrite_in_vec(b, a, st),
        IrStmt::If { then_branch, else_branch, .. } => {
            rewrite_in_box(then_branch, a, st);
            if let Some(e) = else_branch {
                rewrite_in_box(e, a, st);
            }
        }
        IrStmt::For { body, .. } | IrStmt::While { body, .. } | IrStmt::DoWhile { body, .. } => {
            rewrite_in_box(body, a, st)
        }
        IrStmt::Switch { arms, .. } => {
            for arm in arms {
                rewrite_in_vec(&mut arm.body, a, st);
            }
        }
        _ => {}
    }
}

/// `Some((replacement, captured lhs))` if `s` is the accumulating store.
fn accumulate_replacement(s: &IrStmt, a: &Assigned, st: &mut St<'_>) -> Option<Vec<IrStmt>> {
    let IrStmt::Expr(IrExpr::Assign { op: AssignOp::Assign, lhs, rhs, loc }) = s else {
        return None;
    };
    if *loc != a.red.loc {
        return None;
    }
    let IrExpr::Op { op: OpKind::Add, args, .. } = &**rhs else {
        return None;
    };
    let term = if args[0].struct_eq(lhs) { args[1].clone() } else { args[0].clone() };
    let accumulate = |term: IrExpr, st: &St<'_>| {
        IrStmt::Expr(IrExpr::Op {
            op: OpKind::SumAccumulate,
            sfx: st.sfx,
            args: vec![addr(&a.acc), term],
            loc: Loc::default(),
        })
    };
    Some(if matches!(term, IrExpr::Temp(_)) {
        vec![accumulate(term, st)]
    } else {
        // Materialize the term like Fig. 7 line 6.
        st.next_tmp += 1;
        let t = st.next_tmp;
        vec![
            IrStmt::Def { temp: t, ty: Type::Named(st.ity.clone()), init: term },
            accumulate(IrExpr::Temp(t), st),
        ]
    })
}

fn rewrite_in_vec(stmts: &mut Vec<IrStmt>, a: &mut Assigned, st: &mut St<'_>) {
    let mut i = 0;
    while i < stmts.len() {
        if let Some(replacement) = accumulate_replacement(&stmts[i], a, st) {
            if let IrStmt::Expr(IrExpr::Assign { lhs, .. }) = &stmts[i] {
                a.lhs = (**lhs).clone();
            }
            let n = replacement.len();
            stmts.splice(i..=i, replacement);
            st.changed = true;
            i += n;
            continue;
        }
        rewrite_accumulates(&mut stmts[i], a, st);
        i += 1;
    }
}

fn rewrite_in_box(b: &mut Box<IrStmt>, a: &mut Assigned, st: &mut St<'_>) {
    if let Some(replacement) = accumulate_replacement(b, a, st) {
        if let IrStmt::Expr(IrExpr::Assign { lhs, .. }) = &**b {
            a.lhs = (**lhs).clone();
        }
        st.changed = true;
        **b = if replacement.len() == 1 {
            replacement.into_iter().next().expect("one statement")
        } else {
            IrStmt::Block(replacement)
        };
        return;
    }
    rewrite_accumulates(b, a, st);
}
