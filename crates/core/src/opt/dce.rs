//! Dead-temporary elimination.
//!
//! Removes `Def`s whose temporary is never used and whose initializer
//! can be safely discarded: pure interval operations marked
//! [`OpKind::removable_if_dead`] (notably *not* `ia_cvt2bool_tb`, which
//! signals on the unknown state, nor `isum_*`/store intrinsics), plain
//! reads, and pure arithmetic. Unknown calls and assignments are never
//! removed. Runs to a fixpoint so copy/fold/CSE residue chains collapse
//! completely.

use super::{Pass, PassCtx};
use crate::lower::CompileError;
use igen_cfront::UnOp;
use igen_ir::{IrExpr, IrStmt, IrUnit};
use std::collections::HashSet;

/// The dead-temporary elimination pass.
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, unit: &mut IrUnit, _ctx: &mut PassCtx<'_>) -> Result<bool, CompileError> {
        let mut changed = false;
        for f in unit.functions_mut() {
            let body = f.body.as_mut().expect("definition");
            loop {
                let mut used: HashSet<u32> = HashSet::new();
                for s in body.iter() {
                    s.walk_exprs(&mut |e| {
                        if let IrExpr::Temp(n) = e {
                            used.insert(*n);
                        }
                    });
                }
                let mut removed = false;
                remove_dead(body, &used, &mut removed);
                if !removed {
                    break;
                }
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// Whether discarding this initializer discards no observable effect.
fn discardable(init: &IrExpr) -> bool {
    let mut ok = true;
    init.walk(&mut |e| match e {
        IrExpr::Op { op, .. } if !op.removable_if_dead() => ok = false,
        IrExpr::Call { .. } | IrExpr::Assign { .. } | IrExpr::PostIncDec(..) => ok = false,
        IrExpr::Unary(UnOp::PreInc | UnOp::PreDec, _) => ok = false,
        _ => {}
    });
    ok
}

/// Removes dead `Def`s from every statement list (single-statement
/// positions never hold declarations in valid C).
fn remove_dead(stmts: &mut Vec<IrStmt>, used: &HashSet<u32>, removed: &mut bool) {
    stmts.retain(|s| match s {
        IrStmt::Def { temp, init, .. } if !used.contains(temp) && discardable(init) => {
            *removed = true;
            false
        }
        _ => true,
    });
    for s in stmts {
        remove_in_stmt(s, used, removed);
    }
}

fn remove_in_stmt(s: &mut IrStmt, used: &HashSet<u32>, removed: &mut bool) {
    match s {
        IrStmt::Block(b) => remove_dead(b, used, removed),
        IrStmt::If { then_branch, else_branch, .. } => {
            remove_in_stmt(then_branch, used, removed);
            if let Some(e) = else_branch {
                remove_in_stmt(e, used, removed);
            }
        }
        IrStmt::For { body, .. } | IrStmt::While { body, .. } | IrStmt::DoWhile { body, .. } => {
            remove_in_stmt(body, used, removed)
        }
        IrStmt::Switch { arms, .. } => {
            for arm in arms {
                remove_dead(&mut arm.body, used, removed);
            }
        }
        _ => {}
    }
}
