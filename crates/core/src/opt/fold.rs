//! Constant-interval folding over the IR.
//!
//! Lowering already folds constants *within* one source expression (the
//! paper's compile-time constant propagation); this pass additionally
//! folds across temporaries: a `Def` whose initializer is an interval
//! constant (`ia_set_f64(lo, hi)`) is recorded, and any pure operation
//! whose operands are all such constants is evaluated at compile time
//! through [`igen_interval::capi`] — the *same* soundly-rounded kernels
//! the runtime and the reference interpreter execute, so the folded
//! endpoints are bit-identical to what the runtime would produce (the
//! invariant the differential verifier checks).
//!
//! Only `f64` operations fold, mirroring the lowering layer (its
//! constant arithmetic is double-precision too); `f32`/`dd` operations
//! are left to the runtime. Results with non-finite endpoints are not
//! folded — the runtime operation stays and signals as it should.

use super::{Pass, PassCtx};
use crate::lower::CompileError;
use igen_cfront::{fmt_f64, Loc};
use igen_interval::{capi, F64I};
use igen_ir::{IrExpr, IrStmt, IrUnit, OpKind, Sfx};
use std::collections::HashMap;

/// The constant-interval folding pass.
pub struct FoldPass;

impl Pass for FoldPass {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(&mut self, unit: &mut IrUnit, _ctx: &mut PassCtx<'_>) -> Result<bool, CompileError> {
        let mut changed = false;
        for f in unit.functions_mut() {
            let mut consts: HashMap<u32, F64I> = HashMap::new();
            for s in f.body.as_mut().expect("definition") {
                fold_stmt(s, &mut consts, &mut changed);
            }
        }
        Ok(changed)
    }
}

fn fold_stmt(s: &mut IrStmt, consts: &mut HashMap<u32, F64I>, changed: &mut bool) {
    match s {
        IrStmt::Def { temp, init, .. } => {
            fold_expr(init, consts, changed);
            if let Some(c) = const_of(init, consts) {
                consts.insert(*temp, c);
            }
        }
        IrStmt::Decl { init: Some(e), .. } | IrStmt::Expr(e) | IrStmt::Return(Some(e)) => {
            fold_expr(e, consts, changed)
        }
        IrStmt::Block(b) => {
            for c in b {
                fold_stmt(c, consts, changed);
            }
        }
        IrStmt::If { cond, then_branch, else_branch } => {
            fold_expr(cond, consts, changed);
            fold_stmt(then_branch, consts, changed);
            if let Some(e) = else_branch {
                fold_stmt(e, consts, changed);
            }
        }
        IrStmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                fold_stmt(i, consts, changed);
            }
            if let Some(c) = cond {
                fold_expr(c, consts, changed);
            }
            if let Some(e) = step {
                fold_expr(e, consts, changed);
            }
            fold_stmt(body, consts, changed);
        }
        IrStmt::While { cond, body } => {
            fold_expr(cond, consts, changed);
            fold_stmt(body, consts, changed);
        }
        IrStmt::DoWhile { body, cond } => {
            fold_stmt(body, consts, changed);
            fold_expr(cond, consts, changed);
        }
        IrStmt::Switch { cond, arms } => {
            fold_expr(cond, consts, changed);
            for arm in arms {
                for c in &mut arm.body {
                    fold_stmt(c, consts, changed);
                }
            }
        }
        _ => {}
    }
}

/// The constant value of an operand, if known: an inline
/// `ia_set_f64(lo, hi)` or a temporary recorded as constant.
fn const_of(e: &IrExpr, consts: &HashMap<u32, F64I>) -> Option<F64I> {
    match e {
        IrExpr::Temp(n) => consts.get(n).copied(),
        IrExpr::Op { op: OpKind::Set, sfx: Sfx::F64, args, .. } => match &args[..] {
            [IrExpr::Float { value: lo, .. }, IrExpr::Float { value: hi, .. }] => {
                Some(capi::ia_set_f64(*lo, *hi))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Bottom-up fold: operands first, then this node.
fn fold_expr(e: &mut IrExpr, consts: &HashMap<u32, F64I>, changed: &mut bool) {
    match e {
        IrExpr::Op { args, .. } | IrExpr::Call { args, .. } => {
            for a in args {
                fold_expr(a, consts, changed);
            }
        }
        IrExpr::Unary(_, a) => fold_expr(a, consts, changed),
        IrExpr::PostIncDec(a, _) => fold_expr(a, consts, changed),
        IrExpr::Binary { lhs, rhs, .. } | IrExpr::Assign { lhs, rhs, .. } => {
            fold_expr(lhs, consts, changed);
            fold_expr(rhs, consts, changed);
        }
        IrExpr::Index(b, i) => {
            fold_expr(b, consts, changed);
            fold_expr(i, consts, changed);
        }
        IrExpr::Member { base, .. } => fold_expr(base, consts, changed),
        IrExpr::Cast(_, a) => fold_expr(a, consts, changed),
        IrExpr::Cond(c, t, f) => {
            fold_expr(c, consts, changed);
            fold_expr(t, consts, changed);
            fold_expr(f, consts, changed);
        }
        _ => {}
    }
    if let Some(v) = eval(e, consts) {
        if v.lo().is_finite() && v.hi().is_finite() {
            *e = set_const(v);
            *changed = true;
        }
    }
}

/// `ia_set_f64(lo, hi)` for a folded value.
fn set_const(v: F64I) -> IrExpr {
    let lit = |x: f64| IrExpr::Float { value: x, text: fmt_f64(x), f32: false, tol: false };
    IrExpr::Op {
        op: OpKind::Set,
        sfx: Sfx::F64,
        args: vec![lit(v.lo()), lit(v.hi())],
        loc: Loc::default(),
    }
}

/// Evaluates a pure `f64` operation over constant operands, if possible.
/// `Set` itself is excluded (it already is the folded form).
fn eval(e: &IrExpr, consts: &HashMap<u32, F64I>) -> Option<F64I> {
    let IrExpr::Op { op, sfx: Sfx::F64, args, .. } = e else {
        return None;
    };
    use OpKind::*;
    Some(match op {
        Add | Sub | Mul | Div | Min | Max | Join => {
            let (a, b) = (const_of(&args[0], consts)?, const_of(&args[1], consts)?);
            match op {
                Add => capi::ia_add_f64(a, b),
                Sub => capi::ia_sub_f64(a, b),
                Mul => capi::ia_mul_f64(a, b),
                Div => capi::ia_div_f64(a, b),
                Min => capi::ia_min_f64(a, b),
                Max => capi::ia_max_f64(a, b),
                Join => capi::ia_join_f64(a, b),
                _ => unreachable!(),
            }
        }
        Neg | Sqr | Sqrt | Abs | Floor | Ceil | Exp | Log | Sin | Cos | Tan | Atan | Asin
        | Acos => {
            let a = const_of(&args[0], consts)?;
            match op {
                Neg => capi::ia_neg_f64(a),
                Sqr => capi::ia_sqr_f64(a),
                Sqrt => capi::ia_sqrt_f64(a),
                Abs => capi::ia_abs_f64(a),
                Floor => capi::ia_floor_f64(a),
                Ceil => capi::ia_ceil_f64(a),
                Exp => capi::ia_exp_f64(a),
                Log => capi::ia_log_f64(a),
                Sin => capi::ia_sin_f64(a),
                Cos => capi::ia_cos_f64(a),
                Tan => capi::ia_tan_f64(a),
                Atan => capi::ia_atan_f64(a),
                Asin => capi::ia_asin_f64(a),
                Acos => capi::ia_acos_f64(a),
                _ => unreachable!(),
            }
        }
        Pow => {
            let a = const_of(&args[0], consts)?;
            let IrExpr::Int { value, .. } = &args[1] else {
                return None;
            };
            let n = i32::try_from(*value).ok()?;
            capi::ia_pow_f64(a, n)
        }
        SetInt => {
            let IrExpr::Int { value, .. } = &args[0] else {
                return None;
            };
            capi::ia_set_int_f64(*value)
        }
        _ => return None,
    })
}
