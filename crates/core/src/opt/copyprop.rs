//! Copy propagation: uses of a temporary defined as a plain copy of
//! another temporary (`f64i t3 = t1;`) are rewritten to the source.
//!
//! Only temp-to-temp copies are propagated: temporaries are SSA by
//! construction, so the source still holds the same value at every use;
//! propagating variable copies would require a reaching-definitions
//! analysis. The now-dead copy definitions are removed by `dce`.

use super::{Pass, PassCtx};
use crate::lower::CompileError;
use igen_ir::{IrExpr, IrStmt, IrUnit};
use std::collections::HashMap;

/// The copy-propagation pass.
pub struct CopyPropPass;

impl Pass for CopyPropPass {
    fn name(&self) -> &'static str {
        "copyprop"
    }

    fn run(&mut self, unit: &mut IrUnit, _ctx: &mut PassCtx<'_>) -> Result<bool, CompileError> {
        let mut changed = false;
        for f in unit.functions_mut() {
            let body = f.body.as_mut().expect("definition");
            let mut copies: HashMap<u32, u32> = HashMap::new();
            for s in body.iter() {
                super::for_each_stmt(s, &mut |s| {
                    if let IrStmt::Def { temp, init: IrExpr::Temp(src), .. } = s {
                        copies.insert(*temp, *src);
                    }
                });
            }
            if copies.is_empty() {
                continue;
            }
            // Resolve chains (t5 = t3 = t1 → t5 → t1); SSA makes the
            // copy graph acyclic.
            let resolve = |mut n: u32| {
                while let Some(&m) = copies.get(&n) {
                    n = m;
                }
                n
            };
            for s in body.iter_mut() {
                s.walk_exprs_mut(&mut |e| {
                    if let IrExpr::Temp(n) = e {
                        let r = resolve(*n);
                        if r != *n {
                            *n = r;
                            changed = true;
                        }
                    }
                });
            }
        }
        Ok(changed)
    }
}
