//! The optimization layer: a pass manager over the typed interval IR.
//!
//! Pipeline per [`OptLevel`]:
//!
//! * `-O0`: `reduce` only. Reduction rewriting (Section VI-B) implements
//!   `#pragma igen reduce` and is part of the language, not an
//!   optimization; with no annotated reductions the IR is untouched and
//!   the emitted C is byte-identical to the original single-pass
//!   rewriter.
//! * `-O1`: `reduce`, `fold` (constant-interval folding), `copyprop`,
//!   `dce` (dead-temporary elimination).
//! * `-O2`: `-O1` plus `cse` (common-subexpression elimination over pure
//!   interval operations) between `fold` and `copyprop`.
//!
//! Every pass reports whether it changed the IR; the manager records
//! before/after op-count and cost statistics per pass ([`PassReport`],
//! surfaced by `--dump-passes`) and, when
//! [`Config::verify_passes`](crate::Config) is set, differentially
//! verifies each pass with the reference interpreter
//! ([`crate::verify`]).

pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod fold;
pub mod reduce;

use crate::config::{Config, OptLevel};
use crate::lower::CompileError;
use crate::reduce::ReductionInfo;
use igen_ir::{unit_stats, IrStmt, IrUnit, OpStats};
use std::collections::VecDeque;

/// Pre-order visit of a statement and every nested statement.
pub(crate) fn for_each_stmt(s: &IrStmt, f: &mut dyn FnMut(&IrStmt)) {
    f(s);
    match s {
        IrStmt::Block(b) => {
            for c in b {
                for_each_stmt(c, f);
            }
        }
        IrStmt::If { then_branch, else_branch, .. } => {
            for_each_stmt(then_branch, f);
            if let Some(e) = else_branch {
                for_each_stmt(e, f);
            }
        }
        IrStmt::For { init, body, .. } => {
            if let Some(i) = init {
                for_each_stmt(i, f);
            }
            for_each_stmt(body, f);
        }
        IrStmt::While { body, .. } | IrStmt::DoWhile { body, .. } => for_each_stmt(body, f),
        IrStmt::Switch { arms, .. } => {
            for arm in arms {
                for c in &arm.body {
                    for_each_stmt(c, f);
                }
            }
        }
        _ => {}
    }
}

/// Shared state threaded through the pass pipeline.
pub struct PassCtx<'c> {
    /// The active compiler configuration.
    pub cfg: &'c Config,
    /// Reduction groups detected during lowering, one per pragma marker,
    /// in marker (textual) order. The `reduce` pass consumes them.
    pub reduction_groups: VecDeque<Vec<ReductionInfo>>,
    /// Reductions actually rewritten (reported in
    /// [`Output::reductions`](crate::Output)).
    pub reductions: Vec<ReductionInfo>,
}

/// One optimization pass over the IR.
pub trait Pass {
    /// Stable pass name (used in reports and verifier diagnostics).
    fn name(&self) -> &'static str;

    /// Whether the pass must preserve interval endpoints bit-for-bit.
    ///
    /// The differential verifier only checks exact passes; the `reduce`
    /// pass intentionally *tightens* enclosures via the accurate
    /// accumulators of Section VI-B, so its before/after results differ.
    fn exact(&self) -> bool {
        true
    }

    /// Runs the pass; returns whether the IR changed.
    ///
    /// # Errors
    ///
    /// Passes themselves do not fail today, but the signature leaves room
    /// for pass-level diagnostics routed through [`CompileError`].
    fn run(&mut self, unit: &mut IrUnit, ctx: &mut PassCtx<'_>) -> Result<bool, CompileError>;
}

/// Statistics of one pass execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name.
    pub name: &'static str,
    /// Op statistics before the pass.
    pub before: OpStats,
    /// Op statistics after the pass.
    pub after: OpStats,
    /// Whether the pass changed the IR.
    pub changed: bool,
}

/// Per-pass trace of one pipeline run (`--dump-passes`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassReport {
    /// The optimization level the pipeline ran at.
    pub level: OptLevel,
    /// One record per executed pass, in execution order.
    pub passes: Vec<PassStats>,
}

impl PassReport {
    /// Whether any pass changed the IR.
    pub fn changed(&self) -> bool {
        self.passes.iter().any(|p| p.changed)
    }

    /// Interval op count entering the pipeline.
    pub fn ops_before(&self) -> usize {
        self.passes.first().map_or(0, |p| p.before.ops)
    }

    /// Interval op count leaving the pipeline.
    pub fn ops_after(&self) -> usize {
        self.passes.last().map_or(0, |p| p.after.ops)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "pass pipeline ({:?}):", self.level);
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>8} {:>8} {:>10} {:>10}",
            "pass", "ops-in", "ops-out", "delta", "cost-in", "cost-out"
        );
        for p in &self.passes {
            let delta = p.after.ops as i64 - p.before.ops as i64;
            let _ = writeln!(
                out,
                "  {:<10} {:>8} {:>8} {:>+8} {:>10} {:>10}{}",
                p.name,
                p.before.ops,
                p.after.ops,
                delta,
                p.before.cost,
                p.after.cost,
                if p.changed { "" } else { "   (no change)" }
            );
        }
        if let (Some(first), Some(last)) = (self.passes.first(), self.passes.last()) {
            let _ = writeln!(
                out,
                "  total: {} -> {} interval ops, cost {} -> {}",
                first.before.ops, last.after.ops, first.before.cost, last.after.cost
            );
        }
        out
    }
}

/// The pass pipeline for an optimization level.
fn pipeline(level: OptLevel) -> Vec<Box<dyn Pass>> {
    let mut passes: Vec<Box<dyn Pass>> = vec![Box::new(reduce::ReducePass)];
    match level {
        OptLevel::O0 => {}
        OptLevel::O1 => {
            passes.push(Box::new(fold::FoldPass));
            passes.push(Box::new(copyprop::CopyPropPass));
            passes.push(Box::new(dce::DcePass));
        }
        OptLevel::O2 => {
            passes.push(Box::new(fold::FoldPass));
            passes.push(Box::new(cse::CsePass));
            passes.push(Box::new(copyprop::CopyPropPass));
            passes.push(Box::new(dce::DcePass));
        }
    }
    passes
}

/// Runs the pipeline for `ctx.cfg.opt_level` over `unit`.
///
/// # Errors
///
/// Propagates pass failures and, with
/// [`Config::verify_passes`](crate::Config) set,
/// [`CompileError::VerifierMismatch`] when a pass changes observable
/// interval endpoints.
pub fn run_pipeline(unit: &mut IrUnit, ctx: &mut PassCtx<'_>) -> Result<PassReport, CompileError> {
    let mut report = PassReport { level: ctx.cfg.opt_level, passes: Vec::new() };
    for mut pass in pipeline(ctx.cfg.opt_level) {
        let _span = igen_telemetry::span_joined("pass.", pass.name());
        let before = unit_stats(unit);
        let before_ir =
            if ctx.cfg.verify_passes && pass.exact() { Some(unit.clone()) } else { None };
        let changed = pass.run(unit, ctx)?;
        if let Some(before_ir) = before_ir {
            if changed {
                let _span = igen_telemetry::span("compile.verify");
                crate::verify::check_pass(&before_ir, unit, pass.name())?;
            }
        }
        report.passes.push(PassStats {
            name: pass.name(),
            before,
            after: unit_stats(unit),
            changed,
        });
    }
    Ok(report)
}
