//! Common-subexpression elimination over pure interval operations.
//!
//! Classic local value numbering, adapted to the IR's SSA temporaries:
//! within each statement list, a `Def` whose initializer is a pure,
//! [`OpKind::cse_safe`] operation is fingerprinted; a later `Def` with an
//! identical fingerprint is recorded as an alias of the first and every
//! use is rewritten to the canonical temporary (the duplicate definition
//! becomes dead and is removed by the following `dce` pass).
//!
//! Soundness relies on three invariants:
//!
//! * temporaries are SSA by construction (lowering materializes each
//!   intermediate exactly once), so a canonical definition earlier in
//!   the same block dominates — and is in scope for — every use of its
//!   duplicate;
//! * available expressions are invalidated when an operand may change: a
//!   store to a variable kills entries reading it, a store through
//!   memory kills memory-reading entries, and an unknown call kills
//!   everything that reads a variable or memory;
//! * nested control flow is a barrier: inner statement lists start with
//!   an empty table, and the outer table is cleared afterwards.

use super::{Pass, PassCtx};
use crate::lower::CompileError;
use igen_ir::{IrExpr, IrStmt, IrUnit};
use std::collections::HashMap;

/// The common-subexpression elimination pass.
pub struct CsePass;

/// One available expression.
struct Entry {
    key: String,
    temp: u32,
    /// Variables the expression reads (invalidation on store).
    vars: Vec<String>,
    /// Whether the expression reads memory (arrays, pointers, members).
    mem: bool,
}

/// Side effects of evaluating one expression.
#[derive(Default)]
struct Effects {
    /// Variables written (directly or via `++`/`--`).
    vars: Vec<String>,
    /// Whether memory may be written.
    mem: bool,
    /// Whether an unknown (non-`ia_*`) call is evaluated.
    call: bool,
}

impl Effects {
    fn of(e: &IrExpr) -> Effects {
        let mut eff = Effects::default();
        e.walk(&mut |e| match e {
            IrExpr::Assign { lhs, .. } => eff.write_target(lhs),
            IrExpr::PostIncDec(inner, _) => eff.write_target(inner),
            IrExpr::Unary(igen_cfront::UnOp::PreInc | igen_cfront::UnOp::PreDec, inner) => {
                eff.write_target(inner)
            }
            IrExpr::Call { .. } => eff.call = true,
            IrExpr::Op { op, args, .. } if !op.side_effect_free() => {
                // `isum_*` write through `&accN`; SIMD stores write memory.
                match args.first() {
                    Some(IrExpr::Unary(igen_cfront::UnOp::Addr, inner)) => eff.write_target(inner),
                    _ => eff.mem = true,
                }
            }
            _ => {}
        });
        eff
    }

    fn write_target(&mut self, lhs: &IrExpr) {
        match lhs {
            IrExpr::Var(n, _) => self.vars.push(n.clone()),
            IrExpr::Temp(_) => {}
            _ => self.mem = true,
        }
    }

    fn is_empty(&self) -> bool {
        self.vars.is_empty() && !self.mem && !self.call
    }
}

struct St {
    aliases: HashMap<u32, u32>,
    changed: bool,
}

impl Pass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&mut self, unit: &mut IrUnit, _ctx: &mut PassCtx<'_>) -> Result<bool, CompileError> {
        let mut changed = false;
        for f in unit.functions_mut() {
            let mut st = St { aliases: HashMap::new(), changed: false };
            let mut table: Vec<Entry> = Vec::new();
            process_list(f.body.as_mut().expect("definition"), &mut table, &mut st);
            changed |= st.changed;
        }
        Ok(changed)
    }
}

/// Rewrites every temporary use through the alias map (idempotent:
/// canonical temporaries are never themselves aliased).
fn subst(s: &mut IrStmt, aliases: &HashMap<u32, u32>) {
    if aliases.is_empty() {
        return;
    }
    s.walk_exprs_mut(&mut |e| {
        if let IrExpr::Temp(n) = e {
            if let Some(m) = aliases.get(n) {
                *n = *m;
            }
        }
    });
}

fn invalidate(table: &mut Vec<Entry>, eff: &Effects) {
    if eff.call {
        table.retain(|en| !en.mem && en.vars.is_empty());
    }
    if eff.mem {
        table.retain(|en| !en.mem);
    }
    if !eff.vars.is_empty() {
        table.retain(|en| en.vars.iter().all(|v| !eff.vars.contains(v)));
    }
}

/// A `Def` initializer is an available-expression candidate if its
/// operation is CSE-safe and evaluating it has no side effects.
fn eligible(init: &IrExpr) -> bool {
    matches!(init, IrExpr::Op { op, .. } if op.cse_safe()) && Effects::of(init).is_empty()
}

fn process_list(stmts: &mut [IrStmt], table: &mut Vec<Entry>, st: &mut St) {
    for s in stmts.iter_mut() {
        subst(s, &st.aliases);
        match s {
            IrStmt::Def { temp, init, .. } => {
                let eff = Effects::of(init);
                invalidate(table, &eff);
                if eligible(init) {
                    let key = fp(init);
                    match table.iter().find(|en| en.key == key) {
                        Some(en) => {
                            st.aliases.insert(*temp, en.temp);
                            st.changed = true;
                        }
                        None => table.push(Entry {
                            key,
                            temp: *temp,
                            vars: init.vars(),
                            mem: init.touches_memory(),
                        }),
                    }
                }
            }
            IrStmt::Decl { init: Some(e), .. } | IrStmt::Expr(e) | IrStmt::Return(Some(e)) => {
                invalidate(table, &Effects::of(e));
            }
            IrStmt::Block(b) => {
                let mut inner = Vec::new();
                process_list(b, &mut inner, st);
                table.clear();
            }
            IrStmt::If { cond, then_branch, else_branch } => {
                invalidate(table, &Effects::of(cond));
                process_box(then_branch, st);
                if let Some(e) = else_branch {
                    process_box(e, st);
                }
                table.clear();
            }
            IrStmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    process_box(i, st);
                }
                for e in [cond.as_ref(), step.as_ref()].into_iter().flatten() {
                    invalidate(table, &Effects::of(e));
                }
                process_box(body, st);
                table.clear();
            }
            IrStmt::While { cond, body } => {
                invalidate(table, &Effects::of(cond));
                process_box(body, st);
                table.clear();
            }
            IrStmt::DoWhile { body, cond } => {
                process_box(body, st);
                invalidate(table, &Effects::of(cond));
                table.clear();
            }
            IrStmt::Switch { cond, arms } => {
                invalidate(table, &Effects::of(cond));
                for arm in arms {
                    let mut inner = Vec::new();
                    process_list(&mut arm.body, &mut inner, st);
                }
                table.clear();
            }
            _ => {}
        }
    }
}

/// Processes a single-statement position (a branch or loop body) with a
/// fresh table.
fn process_box(b: &mut IrStmt, st: &mut St) {
    match b {
        IrStmt::Block(inner) => {
            let mut table = Vec::new();
            process_list(inner, &mut table, st);
        }
        other => {
            subst(other, &st.aliases);
            // A lone nested statement cannot define a reusable temp, but
            // it may contain deeper lists.
            if let IrStmt::If { .. }
            | IrStmt::For { .. }
            | IrStmt::While { .. }
            | IrStmt::DoWhile { .. }
            | IrStmt::Switch { .. } = other
            {
                let mut table = Vec::new();
                let mut one = vec![std::mem::replace(other, IrStmt::Empty)];
                process_list(&mut one, &mut table, st);
                *other = one.pop().expect("statement");
            }
        }
    }
}

/// Deterministic, location-insensitive fingerprint of an expression
/// (floats compare by bit pattern).
fn fp(e: &IrExpr) -> String {
    match e {
        IrExpr::Int { value, .. } => format!("i{value}"),
        IrExpr::Float { value, f32, tol, .. } => {
            format!("f{:x}:{}{}", value.to_bits(), *f32 as u8, *tol as u8)
        }
        IrExpr::Var(n, _) => format!("v:{n}"),
        IrExpr::Temp(n) => format!("t{n}"),
        IrExpr::Op { op, sfx, args, .. } => {
            let args: Vec<String> = args.iter().map(fp).collect();
            format!("{}({})", op.c_name(*sfx), args.join(","))
        }
        IrExpr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(fp).collect();
            format!("call:{name}({})", args.join(","))
        }
        IrExpr::Unary(op, a) => format!("u{op:?}({})", fp(a)),
        IrExpr::PostIncDec(a, inc) => format!("p{}({})", *inc as u8, fp(a)),
        IrExpr::Binary { op, lhs, rhs, .. } => format!("b{op:?}({},{})", fp(lhs), fp(rhs)),
        IrExpr::Assign { op, lhs, rhs, .. } => format!("a{op:?}({},{})", fp(lhs), fp(rhs)),
        IrExpr::Index(b, i) => format!("ix({},{})", fp(b), fp(i)),
        IrExpr::Member { base, field, arrow } => {
            format!("m{}({},{field})", *arrow as u8, fp(base))
        }
        IrExpr::Cast(ty, a) => format!("c{ty:?}({})", fp(a)),
        IrExpr::Cond(c, t, f) => format!("q({},{},{})", fp(c), fp(t), fp(f)),
    }
}
