//! Differential pass verification.
//!
//! With [`Config::verify_passes`](crate::Config) set, the pass manager
//! re-executes the before/after IR of every *exact* optimization pass
//! under the reference interpreter (`igen-interp`) on deterministic
//! pseudo-random inputs and requires identical observable results —
//! interval endpoints bit-for-bit, and runtime exceptions (unknown
//! branches, missing symbols, …) alike. This is sound because the
//! interpreter executes the same `igen_interval::capi` kernels the
//! folding pass evaluates at compile time.
//!
//! Functions are verified when every parameter has a scalar type the
//! driver can synthesize (`f64i`, `double`, integers); pointer, SIMD and
//! accumulator signatures are skipped — passes still cover them through
//! the golden-file and end-to-end interpreter tests.

use crate::lower::CompileError;
use igen_cfront::Type;
use igen_interp::{Interp, RtError, Value};
use igen_interval::F64I;
use igen_ir::{emit_unit, IrUnit};

/// Trials per function; each trial uses a fresh interpreter so heap and
/// global state cannot leak between runs.
const TRIALS: u64 = 6;

/// A `splitmix64` generator: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the function name: stable across runs and platforms.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A synthesizable argument for one parameter type.
fn gen_value(ty: &Type, rng: &mut Rng) -> Option<Value> {
    match ty {
        Type::Int | Type::UInt | Type::Long | Type::ULong => {
            Some(Value::Int((rng.next() % 5) as i64))
        }
        Type::Float | Type::Double => Some(Value::F64(rng.f64_in(-4.0, 4.0))),
        Type::Named(n) if n == "f64i" => {
            let lo = rng.f64_in(-4.0, 4.0);
            let hi = lo + rng.f64_in(0.0, 0.5);
            Some(Value::Interval(F64I::new(lo, hi).ok()?))
        }
        _ => None,
    }
}

/// Bit-level comparison: interval endpoints and doubles compare by bit
/// pattern (so identical NaN results still match), everything else by
/// structural equality.
fn bit_eq(a: &Value, b: &Value) -> bool {
    fn ieq(x: &F64I, y: &F64I) -> bool {
        x.lo().to_bits() == y.lo().to_bits() && x.hi().to_bits() == y.hi().to_bits()
    }
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::Interval(x), Value::Interval(y)) => ieq(x, y),
        (Value::VecInterval(x), Value::VecInterval(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(x, y)| ieq(x, y))
        }
        _ => a == b,
    }
}

fn outcome_str(r: &Result<Value, RtError>) -> String {
    match r {
        Ok(v) => format!("{v:?}"),
        Err(e) => format!("error: {e}"),
    }
}

fn outcomes_match(a: &Result<Value, RtError>, b: &Result<Value, RtError>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => bit_eq(x, y),
        // RtError does not implement PartialEq; the rendered message is a
        // faithful discriminator.
        (Err(x), Err(y)) => x.to_string() == y.to_string(),
        _ => false,
    }
}

/// Differentially verifies one pass execution.
///
/// # Errors
///
/// [`CompileError::VerifierMismatch`] when any verified function
/// produces different observable results before and after the pass.
pub(crate) fn check_pass(
    before: &IrUnit,
    after: &IrUnit,
    pass: &'static str,
) -> Result<(), CompileError> {
    let ast_before = emit_unit(before);
    let ast_after = emit_unit(after);
    for f in after.functions() {
        if f.body.is_none() {
            continue;
        }
        if !f.params.iter().all(|p| gen_value(&p.ty, &mut Rng(1)).is_some()) {
            continue;
        }
        let mut rng = Rng(seed_for(&f.name));
        for trial in 0..TRIALS {
            let args: Vec<Value> = f
                .params
                .iter()
                .map(|p| gen_value(&p.ty, &mut rng).expect("checked synthesizable"))
                .collect();
            let r1 = Interp::new(&ast_before).call(&f.name, args.clone());
            let r2 = Interp::new(&ast_after).call(&f.name, args.clone());
            if !outcomes_match(&r1, &r2) {
                return Err(CompileError::VerifierMismatch {
                    pass,
                    detail: format!(
                        "function {} diverges on trial {trial} with inputs {args:?}: \
                         before = {}, after = {}",
                        f.name,
                        outcome_str(&r1),
                        outcome_str(&r2)
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::check_pass;
    use igen_ir::{build_unit, IrUnit};

    fn unit(src: &str) -> IrUnit {
        build_unit(&igen_cfront::parse(src).expect("parse"))
    }

    #[test]
    fn identical_units_verify() {
        let u = unit("f64i f(f64i a, f64i b) { f64i t1 = ia_add_f64(a, b); return t1; }");
        check_pass(&u, &u.clone(), "test").expect("identical units must verify");
    }

    #[test]
    fn a_miscompiling_pass_is_caught() {
        let before = unit("f64i f(f64i a, f64i b) { f64i t1 = ia_add_f64(a, b); return t1; }");
        let after = unit("f64i f(f64i a, f64i b) { f64i t1 = ia_sub_f64(a, b); return t1; }");
        let err = check_pass(&before, &after, "bad").expect_err("add -> sub must be flagged");
        let msg = err.to_string();
        assert!(msg.contains("`bad`") && msg.contains("f diverges"), "{msg}");
    }

    #[test]
    fn unsynthesizable_signatures_are_skipped() {
        // Pointer parameters cannot be synthesized; the divergence is
        // invisible to the verifier and must not abort compilation.
        let before = unit("f64i g(f64i* p) { f64i t1 = ia_add_f64(p[0], p[0]); return t1; }");
        let after = unit("f64i g(f64i* p) { f64i t1 = ia_sub_f64(p[0], p[0]); return t1; }");
        check_pass(&before, &after, "test").expect("pointer signatures are skipped");
    }
}
