//! Bridge from compiler output to the bytecode VM, plus the
//! differential reference that pins bytecode semantics to the
//! transformed-unit interpreter.
//!
//! [`compile_to_program`] picks a function out of the optimized IR and
//! lowers it to an [`igen_vm::Program`] under a [`BindSpec`].
//! [`interp_reference`] runs the *same* bindings through the
//! `igen-interp` evaluator over the transformed C unit — consuming
//! inputs and producing outputs in exactly the VM's declared order —
//! so [`verify_bit_identity`] can compare the two endpoint streams bit
//! for bit. The pair is the trust anchor for every compiled program:
//! the VM is only believed because this check passes per function.

use crate::Output;
use igen_interp::{Interp, RtError, Value};
use igen_interval::{capi, DdI, F64I};
use igen_vm::{lower, ArgBind, BindSpec, Precision, Program};

/// Why a compiler output could not be turned into (or checked against)
/// a bytecode program.
#[derive(Debug, Clone, PartialEq)]
pub enum VmBridgeError {
    /// No function with that name in the optimized IR.
    MissingFunction(String),
    /// The function is outside the bytecode-traceable subset.
    Lower(igen_vm::LowerError),
    /// The reference interpreter failed.
    Rt(String),
    /// The reference produced a non-interval value where an interval
    /// output was declared.
    Shape(String),
    /// Bytecode and interpreter endpoints differ.
    Mismatch {
        /// Declared output label (`return`, `y[3]`, ...).
        label: String,
        /// Item index within the supplied batch.
        item: usize,
        /// VM endpoints.
        got: (f64, f64),
        /// Interpreter endpoints.
        want: (f64, f64),
    },
}

impl core::fmt::Display for VmBridgeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmBridgeError::MissingFunction(n) => {
                write!(f, "no function `{n}` in the compiled unit")
            }
            VmBridgeError::Lower(e) => write!(f, "cannot compile to bytecode: {e}"),
            VmBridgeError::Rt(e) => write!(f, "reference interpreter: {e}"),
            VmBridgeError::Shape(m) => write!(f, "reference shape mismatch: {m}"),
            VmBridgeError::Mismatch { label, item, got, want } => write!(
                f,
                "bit mismatch at item {item}, output `{label}`: vm [{:?}, {:?}] vs interp [{:?}, {:?}]",
                got.0, got.1, want.0, want.1
            ),
        }
    }
}

impl std::error::Error for VmBridgeError {}

impl From<igen_vm::LowerError> for VmBridgeError {
    fn from(e: igen_vm::LowerError) -> VmBridgeError {
        VmBridgeError::Lower(e)
    }
}

impl From<RtError> for VmBridgeError {
    fn from(e: RtError) -> VmBridgeError {
        VmBridgeError::Rt(e.to_string())
    }
}

/// Lowers the named function of a compiled output into register
/// bytecode under the given parameter bindings and runs the bytecode
/// peephole pass (endpoint-exact rewrites plus register renumbering —
/// see `igen_vm::peephole`). Use [`compile_to_program_raw`] to inspect
/// or pin the un-peepholed lowering.
///
/// # Errors
///
/// [`VmBridgeError::MissingFunction`] if the optimized IR has no such
/// function, [`VmBridgeError::Lower`] if it falls outside the traced
/// subset.
pub fn compile_to_program(
    out: &Output,
    fn_name: &str,
    bind: &BindSpec,
) -> Result<Program, VmBridgeError> {
    let raw = compile_to_program_raw(out, fn_name, bind)?;
    let _span = igen_telemetry::span("vm.peephole");
    Ok(igen_vm::peephole(&raw).0)
}

/// [`compile_to_program`] without the peephole pass: the raw,
/// single-assignment lowering output. Every endpoint bit matches the
/// peepholed program — the `vm_peephole` differential tests pin that —
/// so the choice only affects instruction count and register-file
/// size.
///
/// # Errors
///
/// Same as [`compile_to_program`].
pub fn compile_to_program_raw(
    out: &Output,
    fn_name: &str,
    bind: &BindSpec,
) -> Result<Program, VmBridgeError> {
    let _span = igen_telemetry::span("vm.lower");
    let f = out
        .ir
        .functions()
        .find(|f| f.name == fn_name)
        .ok_or_else(|| VmBridgeError::MissingFunction(fn_name.to_string()))?;
    Ok(lower(f, bind)?)
}

/// Runs one item through the `igen-interp` evaluator over the
/// transformed unit, consuming `inputs` and producing outputs in the
/// VM's declared order (inputs: interval scalars and `In`/`InOut`
/// array cells in parameter order; outputs: return value first, then
/// `Out`/`InOut` cells in parameter order).
///
/// # Errors
///
/// Propagates interpreter runtime errors; [`VmBridgeError::Shape`] if
/// a declared output is not an interval.
///
/// # Panics
///
/// Panics if `inputs` is shorter than the bindings require.
pub fn interp_reference(
    interp: &mut Interp,
    fn_name: &str,
    bind: &BindSpec,
    inputs: &[F64I],
) -> Result<Vec<F64I>, VmBridgeError> {
    interp.reset();
    let mut cursor = 0usize;
    let mut take = |n: usize| {
        let s = &inputs[cursor..cursor + n];
        cursor += n;
        s.to_vec()
    };
    let mut args = Vec::with_capacity(bind.args.len());
    // (parameter index among pointer args, heap pointer, length)
    let mut harvest: Vec<(Value, usize)> = Vec::new();
    for b in &bind.args {
        match b {
            ArgBind::Ival => args.push(Value::Interval(take(1)[0])),
            ArgBind::Int(v) => args.push(Value::Int(*v)),
            ArgBind::In(len) => args.push(interp.alloc_interval(&take(*len))),
            ArgBind::InOut(len) => {
                let ptr = interp.alloc_interval(&take(*len));
                harvest.push((ptr.clone(), *len));
                args.push(ptr);
            }
            ArgBind::Out(len) => {
                let ptr = interp.alloc_interval(&vec![F64I::ZERO; *len]);
                harvest.push((ptr.clone(), *len));
                args.push(ptr);
            }
            ArgBind::Uniform(pairs) => {
                let vals: Vec<F64I> =
                    pairs.iter().map(|&(lo, hi)| capi::ia_set_f64(lo, hi)).collect();
                args.push(interp.alloc_interval(&vals));
            }
        }
    }
    let ret = interp.call(fn_name, args)?;
    let mut outputs = Vec::new();
    match ret {
        Value::Interval(v) => outputs.push(v),
        Value::Unit => {}
        other => {
            return Err(VmBridgeError::Shape(format!("return value is {other:?}")));
        }
    }
    for (ptr, len) in harvest {
        outputs.extend(interp.read_interval(&ptr, len));
    }
    Ok(outputs)
}

/// Double-double twin of [`interp_reference`]; `Uniform` pairs promote
/// through `DdI::from_f64i` exactly like the lowering pass does.
///
/// # Errors
///
/// Same as [`interp_reference`].
///
/// # Panics
///
/// Same as [`interp_reference`].
pub fn interp_reference_dd(
    interp: &mut Interp,
    fn_name: &str,
    bind: &BindSpec,
    inputs: &[DdI],
) -> Result<Vec<DdI>, VmBridgeError> {
    interp.reset();
    let mut cursor = 0usize;
    let mut take = |n: usize| {
        let s = &inputs[cursor..cursor + n];
        cursor += n;
        s.to_vec()
    };
    let mut args = Vec::with_capacity(bind.args.len());
    let mut harvest: Vec<(Value, usize)> = Vec::new();
    for b in &bind.args {
        match b {
            ArgBind::Ival => args.push(Value::DdInterval(take(1)[0])),
            ArgBind::Int(v) => args.push(Value::Int(*v)),
            ArgBind::In(len) => args.push(interp.alloc_ddi(&take(*len))),
            ArgBind::InOut(len) => {
                let ptr = interp.alloc_ddi(&take(*len));
                harvest.push((ptr.clone(), *len));
                args.push(ptr);
            }
            ArgBind::Out(len) => {
                let ptr = interp.alloc_ddi(&vec![DdI::ZERO; *len]);
                harvest.push((ptr.clone(), *len));
                args.push(ptr);
            }
            ArgBind::Uniform(pairs) => {
                let vals: Vec<DdI> = pairs
                    .iter()
                    .map(|&(lo, hi)| DdI::from_f64i(&capi::ia_set_f64(lo, hi)))
                    .collect();
                args.push(interp.alloc_ddi(&vals));
            }
        }
    }
    let ret = interp.call(fn_name, args)?;
    let mut outputs = Vec::new();
    match ret {
        Value::DdInterval(v) => outputs.push(v),
        Value::Unit => {}
        other => {
            return Err(VmBridgeError::Shape(format!("return value is {other:?}")));
        }
    }
    for (ptr, len) in harvest {
        outputs.extend(interp.read_ddi(&ptr, len));
    }
    Ok(outputs)
}

/// Runs every item through both the bytecode VM (scalar width) and the
/// transformed-unit interpreter and demands bit-identical endpoints on
/// every declared output.
///
/// `items` is item-major flattened VM input data: `items.len()` must be
/// a multiple of `program.n_inputs`.
///
/// # Errors
///
/// The first [`VmBridgeError::Mismatch`] found, or any reference
/// interpreter failure.
///
/// # Panics
///
/// Panics if `items.len()` is not a multiple of the program's input
/// count (for programs with at least one input).
pub fn verify_bit_identity(
    out: &Output,
    program: &Program,
    bind: &BindSpec,
    items: &[F64I],
) -> Result<(), VmBridgeError> {
    assert_eq!(program.precision, Precision::F64, "use verify_bit_identity_dd for dd programs");
    let _span = igen_telemetry::span("vm.verify");
    let nin = program.n_inputs as usize;
    let n_items = items.len().checked_div(nin).unwrap_or(1);
    if nin > 0 {
        assert_eq!(items.len() % nin, 0, "items must be a multiple of n_inputs");
    }
    let mut interp = Interp::new(&out.unit);
    for item in 0..n_items {
        let inputs = &items[item * nin..(item + 1) * nin];
        let got = igen_vm::run_scalar::<F64I>(program, inputs);
        let want = interp_reference(&mut interp, &program.name, bind, inputs)?;
        if got.len() != want.len() {
            return Err(VmBridgeError::Shape(format!(
                "vm produced {} outputs, interpreter {}",
                got.len(),
                want.len()
            )));
        }
        for (slot, (g, w)) in program.outputs.iter().zip(got.iter().zip(&want)) {
            let same = g.lo().to_bits() == w.lo().to_bits() && g.hi().to_bits() == w.hi().to_bits();
            if !same {
                return Err(VmBridgeError::Mismatch {
                    label: slot.label.clone(),
                    item,
                    got: (g.lo(), g.hi()),
                    want: (w.lo(), w.hi()),
                });
            }
        }
    }
    Ok(())
}

/// Double-double twin of [`verify_bit_identity`]: compares both
/// double-double components of each endpoint.
///
/// # Errors
///
/// Same as [`verify_bit_identity`].
///
/// # Panics
///
/// Same as [`verify_bit_identity`].
pub fn verify_bit_identity_dd(
    out: &Output,
    program: &Program,
    bind: &BindSpec,
    items: &[DdI],
) -> Result<(), VmBridgeError> {
    assert_eq!(program.precision, Precision::Dd, "use verify_bit_identity for f64 programs");
    let _span = igen_telemetry::span("vm.verify");
    let nin = program.n_inputs as usize;
    let n_items = items.len().checked_div(nin).unwrap_or(1);
    if nin > 0 {
        assert_eq!(items.len() % nin, 0, "items must be a multiple of n_inputs");
    }
    let bits = |d: &DdI| {
        let (lo, hi) = (d.lo(), d.hi());
        [lo.hi().to_bits(), lo.lo().to_bits(), hi.hi().to_bits(), hi.lo().to_bits()]
    };
    let mut interp = Interp::new(&out.unit);
    for item in 0..n_items {
        let inputs = &items[item * nin..(item + 1) * nin];
        let got = igen_vm::run_scalar::<DdI>(program, inputs);
        let want = interp_reference_dd(&mut interp, &program.name, bind, inputs)?;
        if got.len() != want.len() {
            return Err(VmBridgeError::Shape(format!(
                "vm produced {} outputs, interpreter {}",
                got.len(),
                want.len()
            )));
        }
        for (slot, (g, w)) in program.outputs.iter().zip(got.iter().zip(&want)) {
            if bits(g) != bits(w) {
                let gf = g.to_f64i();
                let wf = w.to_f64i();
                return Err(VmBridgeError::Mismatch {
                    label: slot.label.clone(),
                    item,
                    got: (gf.lo(), gf.hi()),
                    want: (wf.lo(), wf.hi()),
                });
            }
        }
    }
    Ok(())
}
