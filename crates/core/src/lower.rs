//! The lowering layer (Section IV-B): visits every AST node and
//! produces the equivalent interval program in three-address form,
//! ready for conversion into the typed IR (`igen-ir`).
//!
//! Expression results follow the paper's `igenExpr` design: each
//! transformed expression carries its generated representation plus
//! attributes (kind, constness), and interval constants are folded at
//! compile time (`2.0 + 0.1` becomes a single `ia_set_f64` constant).
//! Intermediate interval operations are materialized into `t1, t2, …`
//! temporaries exactly as in Fig. 2.
//!
//! Reduction handling is split across layers: the *detection* (Section
//! VI-B) happens here, at the `#pragma igen reduce` site, because it
//! needs source-level variable scopes; the *rewriting* into `isum_*`
//! accumulator calls is an IR pass (`crate::opt::reduce`). The pragma is
//! re-emitted directly before the lowered loop as a marker for that
//! pass, and the detected [`ReductionInfo`] groups are handed over in
//! marker order.

use crate::config::{BranchPolicy, Config, Precision};
use crate::consts::{dd_literal_interval, literal_interval, tolerance_interval};
use crate::reduce::{detect_in_stmts, ReductionInfo};
use crate::types::{kind_of, promote, Kind};
use igen_cfront::{
    fmt_f64, AssignOp, BinOp, Expr, Function, Item, Loc, Param, Pragma, Stmt, SwitchArm,
    TranslationUnit, Type, Typedef, UnOp, VarDecl,
};
use igen_interval::F64I;
use std::collections::HashMap;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Frontend failure.
    Parse(igen_cfront::ParseError),
    /// A construct the compiler does not support (Section IV-B
    /// "Limitations": bit-level manipulation of floats, float→int casts,
    /// …).
    Unsupported {
        /// Location if known.
        loc: Loc,
        /// What was unsupported.
        msg: String,
    },
    /// The differential pass verifier (`Config::verify_passes`) observed
    /// different interval endpoints before and after an optimization
    /// pass — a compiler bug, surfaced instead of miscompiled output.
    VerifierMismatch {
        /// The offending pass.
        pass: &'static str,
        /// Human-readable description of the divergence.
        detail: String,
    },
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Unsupported { loc, msg } => {
                write!(f, "unsupported at {}:{}: {msg}", loc.line, loc.col)
            }
            CompileError::VerifierMismatch { pass, detail } => {
                write!(f, "pass verifier: `{pass}` changed observable results: {detail}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<igen_cfront::ParseError> for CompileError {
    fn from(e: igen_cfront::ParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

/// Result of compiling a translation unit.
#[derive(Debug, Clone)]
pub struct Output {
    /// The transformed unit (starts with `#include "igen_lib.h"`).
    pub unit: TranslationUnit,
    /// Pretty-printed C source of `unit`.
    pub c_source: String,
    /// Warnings (e.g. the `malloc` warning of Section IV-B).
    pub warnings: Vec<String>,
    /// Reductions that were detected and transformed (Section VI-B).
    pub reductions: Vec<ReductionInfo>,
    /// Names of SIMD intrinsics encountered in the input (Section V).
    pub intrinsics_used: Vec<String>,
    /// The optimized IR the C output was emitted from (`--emit-ir`).
    pub ir: igen_ir::IrUnit,
    /// Per-pass op-count/cost report of the optimization pipeline
    /// (`--dump-passes`).
    pub opt_report: crate::opt::PassReport,
}

/// Transformed expression value: a compile-time interval constant or a
/// runtime expression with its kind (the paper's `igenExpr`).
#[derive(Debug, Clone)]
enum XVal {
    Const(F64I),
    V(Expr, Kind),
}

#[derive(Debug, Clone)]
struct VarInfo {
    kind: Kind,
    emit_name: String,
}

pub(crate) struct Xform<'c> {
    cfg: &'c Config,
    scopes: Vec<HashMap<String, VarInfo>>,
    tmp: u32,
    warnings: Vec<String>,
    /// Detected reduction groups, one per re-emitted pragma marker, in
    /// marker (textual) order. Consumed by the IR reduction pass.
    reduction_groups: Vec<Vec<ReductionInfo>>,
    intrinsics: Vec<String>,
    /// Non-hand-optimized intrinsics whose generated interval
    /// implementation must be appended to the output unit.
    generated_needed: Vec<String>,
}

impl<'c> Xform<'c> {
    pub(crate) fn new(cfg: &'c Config) -> Xform<'c> {
        Xform {
            cfg,
            scopes: vec![HashMap::new()],
            tmp: 0,
            warnings: Vec::new(),
            reduction_groups: Vec::new(),
            intrinsics: Vec::new(),
            generated_needed: Vec::new(),
        }
    }

    pub(crate) fn into_results(
        self,
    ) -> (Vec<String>, Vec<Vec<ReductionInfo>>, Vec<String>, Vec<String>) {
        (self.warnings, self.reduction_groups, self.intrinsics, self.generated_needed)
    }

    fn fresh_tmp(&mut self) -> String {
        self.tmp += 1;
        format!("t{}", self.tmp)
    }

    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(&mut self, name: &str, kind: Kind, emit_name: Option<String>) {
        self.scopes.last_mut().expect("scope").insert(
            name.to_string(),
            VarInfo { kind, emit_name: emit_name.unwrap_or_else(|| name.to_string()) },
        );
    }

    fn sfx(&self) -> &'static str {
        self.cfg.suffix()
    }

    fn ia(&self, op: &str) -> String {
        format!("ia_{op}_{}", self.sfx())
    }

    // --- functions -------------------------------------------------------

    pub(crate) fn function(&mut self, f: &Function) -> Result<Function, CompileError> {
        self.scopes.push(HashMap::new());
        self.tmp = 0;
        let mut prelude: Vec<Stmt> = Vec::new();
        let mut params = Vec::new();
        for p in &f.params {
            let kind = kind_of(&p.ty);
            match p.tol {
                Some(tol) if kind == Kind::Interval => {
                    // Fig. 3: the parameter keeps its scalar type; the body
                    // introduces `_a = ia_set_tol(a, tol)`.
                    let emit = format!("_{}", p.name);
                    prelude.push(Stmt::Decl(VarDecl {
                        ty: Type::Named(self.cfg.interval_type().into()),
                        name: emit.clone(),
                        init: Some(Expr::Call {
                            name: format!("ia_set_tol_{}", self.sfx()),
                            args: vec![Expr::ident(&p.name), float_lit(tol)],
                            loc: Loc::default(),
                        }),
                    }));
                    self.declare(&p.name, Kind::Interval, Some(emit));
                    params.push(Param { ty: p.ty.clone(), name: p.name.clone(), tol: None });
                }
                _ => {
                    self.declare(&p.name, kind.clone(), None);
                    params.push(Param {
                        ty: promote(&p.ty, self.cfg),
                        name: p.name.clone(),
                        tol: None,
                    });
                }
            }
        }
        let body = match &f.body {
            None => None,
            Some(stmts) => {
                let mut out = prelude;
                out.extend(self.stmts(stmts)?);
                Some(out)
            }
        };
        self.scopes.pop();
        Ok(Function { ret: promote(&f.ret, self.cfg), name: f.name.clone(), params, body })
    }

    // --- statements ------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < stmts.len() {
            if let Stmt::Pragma(Pragma::IgenReduce(vars)) = &stmts[i] {
                if self.cfg.reductions
                    && i + 1 < stmts.len()
                    && matches!(&stmts[i + 1], Stmt::For { .. })
                {
                    // Section VI-B: analyze the annotated loop nest here
                    // (variable scopes are only known during lowering); the
                    // rewrite itself is the IR reduction pass. The pragma is
                    // kept directly before the lowered loop as its marker.
                    let loop_slice = std::slice::from_ref(&stmts[i + 1]);
                    let reds = detect_in_stmts(loop_slice, vars);
                    self.stmt(&stmts[i + 1], &mut out)?;
                    if !reds.is_empty() {
                        self.reduction_groups.push(reds);
                        // The loop statement is the last one pushed; any
                        // condition temporaries precede the marker.
                        let pragma = Stmt::Pragma(Pragma::IgenReduce(vars.clone()));
                        out.insert(out.len() - 1, pragma);
                    }
                    i += 2;
                    continue;
                }
                // Pragma without transformation enabled: drop it.
                i += 1;
                continue;
            }
            self.stmt(&stmts[i], &mut out)?;
            i += 1;
        }
        Ok(out)
    }

    fn block(&mut self, s: &Stmt) -> Result<Stmt, CompileError> {
        // Transforms a single statement into a block if temporaries are
        // needed.
        let mut out = Vec::new();
        self.stmt(s, &mut out)?;
        if out.len() == 1 {
            Ok(out.pop().unwrap())
        } else {
            Ok(Stmt::Block(out))
        }
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        match s {
            Stmt::Decl(d) => {
                let kind = kind_of(&d.ty);
                let ty = promote(&d.ty, self.cfg);
                let init = match &d.init {
                    None => None,
                    Some(e) => {
                        if kind == Kind::Interval {
                            let v = self.expr(e, out)?;
                            Some(self.lower_interval_expr(v, out))
                        } else {
                            let v = self.expr(e, out)?;
                            Some(self.lower_plain_expr(v, out))
                        }
                    }
                };
                self.declare(&d.name, kind, None);
                out.push(Stmt::Decl(VarDecl { ty, name: d.name.clone(), init }));
                Ok(())
            }
            Stmt::Expr(e) => {
                let v = self.expr(e, out)?;
                if let XVal::V(expr, _) = v {
                    out.push(Stmt::Expr(expr));
                }
                Ok(())
            }
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                let inner = self.stmts(body)?;
                self.scopes.pop();
                out.push(Stmt::Block(inner));
                Ok(())
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.xf_if(cond, then_branch, else_branch.as_deref(), out)
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                let init2 = match init.as_deref() {
                    None => None,
                    Some(st) => {
                        let mut tmp_out = Vec::new();
                        self.stmt(st, &mut tmp_out)?;
                        if tmp_out.len() != 1 {
                            return Err(CompileError::Unsupported {
                                loc: Loc::default(),
                                msg: "loop init requiring temporaries".into(),
                            });
                        }
                        Some(Box::new(tmp_out.pop().unwrap()))
                    }
                };
                let cond2 = match cond {
                    None => None,
                    Some(c) => Some(self.cond_inline(c, out)?),
                };
                let step2 = match step {
                    None => None,
                    Some(e) => {
                        let v = self.expr(e, &mut Vec::new())?;
                        Some(self.lower_plain_expr(v, out))
                    }
                };
                let body2 = self.block(body)?;
                self.scopes.pop();
                out.push(Stmt::For {
                    init: init2,
                    cond: cond2,
                    step: step2,
                    body: Box::new(body2),
                });
                Ok(())
            }
            Stmt::While { cond, body } => {
                let cond2 = self.cond_inline(cond, out)?;
                let body2 = self.block(body)?;
                out.push(Stmt::While { cond: cond2, body: Box::new(body2) });
                Ok(())
            }
            Stmt::Switch { cond, arms } => {
                // The controlling expression must stay an integer
                // (C99 6.8.4.2; floating-point selectors would need the
                // undecidable-branch machinery and are not valid C
                // anyway).
                let cv = self.expr(cond, out)?;
                if xval_is_intervalish(&cv) {
                    return Err(CompileError::Unsupported {
                        loc: cond.loc(),
                        msg: "switch on a floating-point controlling expression".into(),
                    });
                }
                let cond2 = self.lower_plain_expr(cv, out);
                let mut arms2 = Vec::new();
                for arm in arms {
                    let mut body2 = Vec::new();
                    for st in &arm.body {
                        self.stmt(st, &mut body2)?;
                    }
                    arms2.push(SwitchArm { label: arm.label, body: body2 });
                }
                out.push(Stmt::Switch { cond: cond2, arms: arms2 });
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body2 = self.block(body)?;
                let cond2 = self.cond_inline(cond, out)?;
                out.push(Stmt::DoWhile { body: Box::new(body2), cond: cond2 });
                Ok(())
            }
            Stmt::Return(e) => {
                let e2 = match e {
                    None => None,
                    Some(e) => {
                        let v = self.expr(e, out)?;
                        // Interval-valued calls are materialized into a
                        // temporary first, matching the paper's output
                        // shape (Fig. 3 returns `t1`).
                        Some(match v {
                            XVal::V(x @ Expr::Call { .. }, Kind::Interval) => {
                                self.as_operand(XVal::V(x, Kind::Interval), out)
                            }
                            XVal::Const(c) => self.const_expr(&c),
                            XVal::V(x, _) => x,
                        })
                    }
                };
                out.push(Stmt::Return(e2));
                Ok(())
            }
            Stmt::Break => {
                out.push(Stmt::Break);
                Ok(())
            }
            Stmt::Continue => {
                out.push(Stmt::Continue);
                Ok(())
            }
            Stmt::Pragma(p) => {
                out.push(Stmt::Pragma(p.clone()));
                Ok(())
            }
            Stmt::Empty => Ok(()),
        }
    }

    /// Branch transformation (Section IV-B, Fig. 2 lines 9–12).
    fn xf_if(
        &mut self,
        cond: &Expr,
        then_branch: &Stmt,
        else_branch: Option<&Stmt>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CompileError> {
        let cv = self.expr(cond, out)?;
        match cv {
            XVal::V(ce, Kind::TBool) => {
                // tbool t = <cmp>; if (ia_cvt2bool_tb(t)) …
                let t = self.fresh_tmp();
                out.push(Stmt::Decl(VarDecl {
                    ty: Type::Named("tbool".into()),
                    name: t.clone(),
                    init: Some(ce),
                }));
                let decision = Expr::call("ia_cvt2bool_tb", vec![Expr::ident(&t)]);
                match self.cfg.branch_policy {
                    BranchPolicy::Exception => {
                        let tb = self.block(then_branch)?;
                        let eb = match else_branch {
                            Some(e) => Some(Box::new(self.block(e)?)),
                            None => None,
                        };
                        out.push(Stmt::If {
                            cond: decision,
                            then_branch: Box::new(tb),
                            else_branch: eb,
                        });
                        Ok(())
                    }
                    BranchPolicy::JoinBranches => {
                        self.xf_if_join(&t, then_branch, else_branch, out)
                    }
                }
            }
            other => {
                // Integer condition: untouched.
                let ce = self.lower_plain_expr(other, out);
                let tb = self.block(then_branch)?;
                let eb = match else_branch {
                    Some(e) => Some(Box::new(self.block(e)?)),
                    None => None,
                };
                out.push(Stmt::If { cond: ce, then_branch: Box::new(tb), else_branch: eb });
                Ok(())
            }
        }
    }

    /// The join-both-branches alternative (Section IV-B "Unknown-state in
    /// if-else statements").
    fn xf_if_join(
        &mut self,
        tvar: &str,
        then_branch: &Stmt,
        else_branch: Option<&Stmt>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), CompileError> {
        // Which variables do the branches modify?
        let mut modified = Vec::new();
        let mut join_ok = true;
        collect_modified(then_branch, &mut modified);
        if let Some(e) = else_branch {
            collect_modified(e, &mut modified);
        }
        modified.sort();
        modified.dedup();
        for name in &modified {
            match self.lookup(name).map(|v| v.kind.clone()) {
                Some(Kind::Interval) => {}
                _ => {
                    join_ok = false;
                }
            }
        }
        if !join_ok {
            self.warnings.push(
                "join-branches policy disabled for a branch modifying arrays or integer \
                 variables; falling back to exception policy"
                    .to_string(),
            );
            let tb = self.block(then_branch)?;
            let eb = match else_branch {
                Some(e) => Some(Box::new(self.block(e)?)),
                None => None,
            };
            out.push(Stmt::If {
                cond: Expr::call("ia_cvt2bool_tb", vec![Expr::ident(tvar)]),
                then_branch: Box::new(tb),
                else_branch: eb,
            });
            return Ok(());
        }
        // if (ia_is_true_tb(t)) { THEN } else if (ia_is_false_tb(t)) { ELSE }
        // else { save; THEN; swap; ELSE; join }
        let ity = Type::Named(self.cfg.interval_type().into());
        let tb = self.block(then_branch)?;
        let eb = match else_branch {
            Some(e) => self.block(e)?,
            None => Stmt::Block(vec![]),
        };
        let mut both: Vec<Stmt> = Vec::new();
        // Save originals.
        for name in &modified {
            let emit = self.lookup(name).map(|v| v.emit_name.clone()).unwrap_or(name.clone());
            both.push(Stmt::Decl(VarDecl {
                ty: ity.clone(),
                name: format!("_save_{name}"),
                init: Some(Expr::ident(&emit)),
            }));
        }
        both.push(self.block(then_branch)?);
        for name in &modified {
            let emit = self.lookup(name).map(|v| v.emit_name.clone()).unwrap_or(name.clone());
            both.push(Stmt::Decl(VarDecl {
                ty: ity.clone(),
                name: format!("_then_{name}"),
                init: Some(Expr::ident(&emit)),
            }));
            both.push(Stmt::Expr(assign(
                Expr::ident(&emit),
                Expr::ident(&format!("_save_{name}")),
                Loc::default(),
            )));
        }
        both.push(match else_branch {
            Some(e) => self.block(e)?,
            None => Stmt::Block(vec![]),
        });
        for name in &modified {
            let emit = self.lookup(name).map(|v| v.emit_name.clone()).unwrap_or(name.clone());
            both.push(Stmt::Expr(assign(
                Expr::ident(&emit),
                Expr::Call {
                    name: self.ia("join"),
                    args: vec![Expr::ident(&format!("_then_{name}")), Expr::ident(&emit)],
                    loc: Loc::default(),
                },
                Loc::default(),
            )));
        }
        out.push(Stmt::If {
            cond: Expr::call("ia_is_true_tb", vec![Expr::ident(tvar)]),
            then_branch: Box::new(tb),
            else_branch: Some(Box::new(Stmt::If {
                cond: Expr::call("ia_is_false_tb", vec![Expr::ident(tvar)]),
                then_branch: Box::new(eb),
                else_branch: Some(Box::new(Stmt::Block(both))),
            })),
        });
        Ok(())
    }

    /// A condition expression used inline (loop conditions): a tbool
    /// comparison becomes `ia_cvt2bool_tb(cmp)`.
    fn cond_inline(&mut self, c: &Expr, out: &mut Vec<Stmt>) -> Result<Expr, CompileError> {
        let v = self.expr(c, out)?;
        Ok(match v {
            XVal::V(e, Kind::TBool) => Expr::call("ia_cvt2bool_tb", vec![e]),
            other => self.lower_plain_expr(other, out),
        })
    }

    // --- expressions -----------------------------------------------------

    /// Materializes an `XVal` into an interval-typed expression (constants
    /// become `ia_set_*` calls).
    fn lower_interval_expr(&mut self, v: XVal, _out: &mut [Stmt]) -> Expr {
        match v {
            XVal::Const(c) => self.const_expr(&c),
            XVal::V(e, Kind::Int) => {
                // Integer used in interval context: exact conversion.
                Expr::Call {
                    name: format!("ia_set_int_{}", self.sfx()),
                    args: vec![e],
                    loc: Loc::default(),
                }
            }
            XVal::V(e, _) => e,
        }
    }

    fn lower_plain_expr(&mut self, v: XVal, _out: &mut [Stmt]) -> Expr {
        match v {
            XVal::Const(c) => self.const_expr(&c),
            XVal::V(e, _) => e,
        }
    }

    /// `ia_set_f64(lo, hi)` for a constant interval (Fig. 2 line 6).
    /// Under the f32 target the fold is done at f64 and demoted outward,
    /// which keeps the enclosure sound.
    fn const_expr(&self, c: &F64I) -> Expr {
        let (lo, hi) = if self.cfg.precision == Precision::F32 {
            let f = igen_interval::F32I::from_f64i(c);
            (f.lo() as f64, f.hi() as f64)
        } else {
            (c.lo(), c.hi())
        };
        Expr::Call {
            name: format!("ia_set_{}", self.sfx()),
            args: vec![float_lit(lo), float_lit(hi)],
            loc: Loc::default(),
        }
    }

    /// Operand materialization: nested interval calls become `t<N>`
    /// temporaries (Fig. 2 lines 5–7); constants become `ia_set` temps.
    fn as_operand(&mut self, v: XVal, out: &mut Vec<Stmt>) -> Expr {
        match v {
            XVal::Const(c) => {
                let e = self.const_expr(&c);
                let t = self.fresh_tmp();
                out.push(Stmt::Decl(VarDecl {
                    ty: Type::Named(self.cfg.interval_type().into()),
                    name: t.clone(),
                    init: Some(e),
                }));
                Expr::ident(&t)
            }
            XVal::V(e @ Expr::Call { .. }, Kind::Interval) => {
                let t = self.fresh_tmp();
                out.push(Stmt::Decl(VarDecl {
                    ty: Type::Named(self.cfg.interval_type().into()),
                    name: t.clone(),
                    init: Some(e),
                }));
                Expr::ident(&t)
            }
            XVal::V(e, _) => e,
        }
    }

    fn expr(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Result<XVal, CompileError> {
        match e {
            Expr::IntLit { value, .. } => Ok(XVal::V(e.clone(), Kind::Int).with_int_const(*value)),
            Expr::FloatLit { value, text, tol, .. } => {
                if self.cfg.precision == Precision::Dd {
                    // DD target: enclose the decimal at double-double
                    // precision (~2^-106 relative) — a 53-bit enclosure
                    // would cap the whole computation's accuracy.
                    let (lo, hi) = dd_literal_interval(value.abs(), text);
                    let (lo, hi) = if *tol {
                        (hi.neg(), hi) // t-literal: interval around zero
                    } else if *value < 0.0 {
                        (hi.neg(), lo.neg())
                    } else {
                        (lo, hi)
                    };
                    return Ok(XVal::V(ddx_const(lo, hi), Kind::Interval));
                }
                if *tol {
                    Ok(XVal::Const(tolerance_interval(*value, text)))
                } else {
                    Ok(XVal::Const(literal_interval(*value, text)))
                }
            }
            Expr::Ident(name, loc) => match self.lookup(name) {
                Some(vi) => Ok(XVal::V(Expr::Ident(vi.emit_name.clone(), *loc), vi.kind.clone())),
                None => Ok(XVal::V(e.clone(), Kind::Int)),
            },
            Expr::Unary(op, inner) => self.unary(*op, inner, out),
            Expr::PostIncDec(inner, inc) => {
                let v = self.expr(inner, out)?;
                match v {
                    XVal::V(e2, Kind::Int) => {
                        Ok(XVal::V(Expr::PostIncDec(Box::new(e2), *inc), Kind::Int))
                    }
                    _ => Err(CompileError::Unsupported {
                        loc: inner.loc(),
                        msg: "increment of a floating-point value".into(),
                    }),
                }
            }
            Expr::Binary { op, lhs, rhs, loc } => self.binary(*op, lhs, rhs, *loc, out),
            Expr::Assign { op, lhs, rhs, loc } => self.assign_expr(*op, lhs, rhs, *loc, out),
            Expr::Call { name, args, loc } => self.call(name, args, *loc, out),
            Expr::Index(base, idx) => {
                let b = self.expr(base, out)?;
                let i = self.expr(idx, out)?;
                let i_e = self.lower_plain_expr(i, out);
                match b {
                    XVal::V(be, kind) => {
                        Ok(XVal::V(Expr::Index(Box::new(be), Box::new(i_e)), kind))
                    }
                    XVal::Const(_) => Err(CompileError::Unsupported {
                        loc: base.loc(),
                        msg: "indexing a constant".into(),
                    }),
                }
            }
            Expr::Member { base, field, arrow } => {
                let b = self.expr(base, out)?;
                let be = self.lower_plain_expr(b, out);
                // Union member access (generated intrinsics): `.f` holds
                // promoted intervals, `.v` the packed vector. The integer
                // view `.i` is rewritten to the interval view with the
                // MaskBits kind: bitwise operations on it become the
                // endpoint-wise interval mask operations of Section V.
                let (field2, kind) = match field.as_str() {
                    "f" => ("f".to_string(), Kind::Interval),
                    "i" => ("f".to_string(), Kind::MaskBits),
                    other => (other.to_string(), Kind::Other),
                };
                Ok(XVal::V(Expr::Member { base: Box::new(be), field: field2, arrow: *arrow }, kind))
            }
            Expr::Cast(ty, inner) => {
                let v = self.expr(inner, out)?;
                let target = kind_of(ty);
                match (&v, &target) {
                    (XVal::Const(_), Kind::Interval) => Ok(v),
                    (XVal::V(_, Kind::Interval), Kind::Int) => Err(CompileError::Unsupported {
                        loc: inner.loc(),
                        msg: "cast from floating-point to integer (intervals on integers are \
                              not implemented)"
                            .into(),
                    }),
                    (XVal::V(_, Kind::Int), Kind::Interval) => {
                        let e2 = self.lower_plain_expr(v, out);
                        Ok(XVal::V(
                            Expr::Call {
                                name: format!("ia_set_int_{}", self.sfx()),
                                args: vec![e2],
                                loc: Loc::default(),
                            },
                            Kind::Interval,
                        ))
                    }
                    (XVal::V(_, Kind::Interval), Kind::Interval) => Ok(v),
                    _ => {
                        let e2 = self.lower_plain_expr(v, out);
                        Ok(XVal::V(Expr::Cast(promote(ty, self.cfg), Box::new(e2)), target))
                    }
                }
            }
            Expr::Cond(c, t, f) => {
                let cv = self.cond_inline(c, out)?;
                let tv = self.expr(t, out)?;
                let fv = self.expr(f, out)?;
                let t_e = self.lower_plain_expr(tv, out);
                let f_e = self.lower_plain_expr(fv, out);
                let kind = Kind::Interval; // conservative; ints pass through fine
                Ok(XVal::V(Expr::Cond(Box::new(cv), Box::new(t_e), Box::new(f_e)), kind))
            }
        }
    }

    fn unary(&mut self, op: UnOp, inner: &Expr, out: &mut Vec<Stmt>) -> Result<XVal, CompileError> {
        let v = self.expr(inner, out)?;
        match op {
            UnOp::Neg => match v {
                XVal::Const(c) => Ok(XVal::Const(-c)),
                XVal::V(e, Kind::Interval) => {
                    let operand = self.as_operand(XVal::V(e, Kind::Interval), out);
                    Ok(XVal::V(
                        Expr::Call {
                            name: self.ia("neg"),
                            args: vec![operand],
                            loc: Loc::default(),
                        },
                        Kind::Interval,
                    ))
                }
                XVal::V(e, k) => Ok(XVal::V(Expr::Unary(UnOp::Neg, Box::new(e)), k)),
            },
            UnOp::Plus => Ok(v),
            UnOp::Not => {
                let e = self.lower_plain_expr(v, out);
                Ok(XVal::V(Expr::Unary(UnOp::Not, Box::new(e)), Kind::Int))
            }
            UnOp::BitNot => match v {
                XVal::V(e, Kind::Int) => {
                    Ok(XVal::V(Expr::Unary(UnOp::BitNot, Box::new(e)), Kind::Int))
                }
                XVal::V(e, Kind::MaskBits) => Ok(XVal::V(
                    Expr::Call { name: self.ia("not"), args: vec![e], loc: Loc::default() },
                    Kind::MaskBits,
                )),
                _ => Err(CompileError::Unsupported {
                    loc: inner.loc(),
                    msg: "bit-level manipulation of floating-point values".into(),
                }),
            },
            UnOp::Deref => {
                let k = match &v {
                    XVal::V(_, k) => k.clone(),
                    _ => Kind::Other,
                };
                let e = self.lower_plain_expr(v, out);
                Ok(XVal::V(Expr::Unary(UnOp::Deref, Box::new(e)), k))
            }
            UnOp::Addr => {
                let k = match &v {
                    XVal::V(_, k) => k.clone(),
                    _ => Kind::Other,
                };
                let e = self.lower_plain_expr(v, out);
                Ok(XVal::V(Expr::Unary(UnOp::Addr, Box::new(e)), k))
            }
            UnOp::PreInc | UnOp::PreDec => {
                let e = self.lower_plain_expr(v, out);
                Ok(XVal::V(Expr::Unary(op, Box::new(e)), Kind::Int))
            }
        }
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        loc: Loc,
        out: &mut Vec<Stmt>,
    ) -> Result<XVal, CompileError> {
        // Optional rewrite (Config::sqr_rewrite): `e * e` on structurally
        // identical side-effect-free operands (`x`, `v[i]`, `p.f`) becomes
        // the dependency-aware `ia_sqr_*` — tighter when the interval
        // straddles zero, identical otherwise. Purity guarantees that
        // evaluating the operand once instead of twice is unobservable.
        if self.cfg.sqr_rewrite && op == BinOp::Mul && pure_same_operand(lhs, rhs) {
            let v = self.expr(lhs, out)?;
            if xval_is_intervalish(&v) {
                let e = self.lower_interval_expr(v, out);
                return Ok(XVal::V(
                    Expr::Call { name: self.ia("sqr"), args: vec![e], loc },
                    Kind::Interval,
                ));
            }
            // Not an interval (e.g. integer): fall through to the plain
            // lowering below by re-wrapping the already-evaluated value.
            let le = self.lower_plain_expr(v, out);
            return Ok(XVal::V(
                Expr::Binary { op, lhs: Box::new(le.clone()), rhs: Box::new(le), loc },
                Kind::Int,
            ));
        }
        let lv = self.expr(lhs, out)?;
        let rv = self.expr(rhs, out)?;
        // Bitwise operations touching a union integer view: endpoint-wise
        // interval mask operations (Section V). Shifts and arithmetic on
        // the raw bits are outside the supported subset.
        let mask_involved =
            matches!(&lv, XVal::V(_, Kind::MaskBits)) || matches!(&rv, XVal::V(_, Kind::MaskBits));
        if mask_involved {
            let fname = match op {
                BinOp::BitAnd => "and",
                BinOp::BitOr => "or",
                BinOp::BitXor => "xor",
                _ => {
                    return Err(CompileError::Unsupported {
                        loc,
                        msg: format!(
                            "operator `{}` on the integer view of a floating-point vector \
                             (bit-level manipulation, Section IV-B)",
                            op.as_str()
                        ),
                    })
                }
            };
            let le = self.lower_plain_expr(lv, out);
            let re = self.lower_plain_expr(rv, out);
            return Ok(XVal::V(
                Expr::Call { name: self.ia(fname), args: vec![le, re], loc },
                Kind::MaskBits,
            ));
        }
        let interval_involved = xval_is_intervalish(&lv) || xval_is_intervalish(&rv);
        if !interval_involved {
            // Pure integer expression: rebuild.
            let le = self.lower_plain_expr(lv, out);
            let re = self.lower_plain_expr(rv, out);
            return Ok(XVal::V(
                Expr::Binary { op, lhs: Box::new(le), rhs: Box::new(re), loc },
                Kind::Int,
            ));
        }
        // Constant folding on intervals (Section IV-B): only for f64
        // precision, where the compile-time arithmetic matches the runtime.
        if let (XVal::Const(a), XVal::Const(b)) = (&lv, &rv) {
            if self.cfg.precision == crate::config::Precision::F64 {
                let folded = match op {
                    BinOp::Add => Some(*a + *b),
                    BinOp::Sub => Some(*a - *b),
                    BinOp::Mul => Some(*a * *b),
                    BinOp::Div => Some(*a / *b),
                    _ => None,
                };
                if let Some(c) = folded {
                    return Ok(XVal::Const(c));
                }
            }
        }
        if op.is_comparison() {
            let cmp = match op {
                BinOp::Lt => "cmplt",
                BinOp::Le => "cmple",
                BinOp::Gt => "cmpgt",
                BinOp::Ge => "cmpge",
                BinOp::Eq => "cmpeq",
                BinOp::Ne => "cmpne",
                _ => unreachable!(),
            };
            let (le, re) = self.two_interval_operands(lv, rv, out);
            return Ok(XVal::V(
                Expr::Call { name: self.ia(cmp), args: vec![le, re], loc },
                Kind::TBool,
            ));
        }
        let fname = match op {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::BitAnd => "and",
            BinOp::BitOr => "or",
            BinOp::BitXor => "xor",
            BinOp::Rem | BinOp::Shl | BinOp::Shr => {
                return Err(CompileError::Unsupported {
                    loc,
                    msg: format!("operator `{}` on floating-point values", op.as_str()),
                })
            }
            BinOp::And | BinOp::Or => {
                return Err(CompileError::Unsupported {
                    loc,
                    msg: "logical operator on floating-point values".into(),
                })
            }
            _ => unreachable!(),
        };
        let (le, re) = self.two_interval_operands(lv, rv, out);
        Ok(XVal::V(Expr::Call { name: self.ia(fname), args: vec![le, re], loc }, Kind::Interval))
    }

    fn two_interval_operands(&mut self, lv: XVal, rv: XVal, out: &mut Vec<Stmt>) -> (Expr, Expr) {
        let lv = self.lift_int(lv);
        let rv = self.lift_int(rv);
        let le = self.as_operand(lv, out);
        let re = self.as_operand(rv, out);
        (le, re)
    }

    /// Lifts integer *constants* appearing in interval arithmetic to exact
    /// interval constants (e.g. the `1` in `1 - a*xi*xi`).
    fn lift_int(&mut self, v: XVal) -> XVal {
        match v {
            XVal::V(Expr::IntLit { value, .. }, Kind::Int) => {
                XVal::Const(F64I::point(value as f64))
            }
            other => other,
        }
    }

    fn assign_expr(
        &mut self,
        op: AssignOp,
        lhs: &Expr,
        rhs: &Expr,
        loc: Loc,
        out: &mut Vec<Stmt>,
    ) -> Result<XVal, CompileError> {
        let lv = self.expr(lhs, out)?;
        let XVal::V(l_e, l_kind) = lv else {
            return Err(CompileError::Unsupported { loc, msg: "assignment to a constant".into() });
        };
        match (op.bin_op(), &l_kind) {
            (None, Kind::Interval | Kind::MaskBits) => {
                let rv = self.expr(rhs, out)?;
                let r_e = self.lower_interval_expr(rv, out);
                Ok(XVal::V(assign(l_e, r_e, loc), Kind::Interval))
            }
            (Some(bop), Kind::Interval) => {
                // a += b  →  a = ia_add(a, b)
                let combined = Expr::Binary {
                    op: bop,
                    lhs: Box::new(lhs.clone()),
                    rhs: Box::new(rhs.clone()),
                    loc,
                };
                let rv = self.expr(&combined, out)?;
                let r_e = self.lower_interval_expr(rv, out);
                Ok(XVal::V(assign(l_e, r_e, loc), Kind::Interval))
            }
            _ => {
                let rv = self.expr(rhs, out)?;
                let r_e = self.lower_plain_expr(rv, out);
                Ok(XVal::V(
                    Expr::Assign { op, lhs: Box::new(l_e), rhs: Box::new(r_e), loc },
                    l_kind,
                ))
            }
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        loc: Loc,
        out: &mut Vec<Stmt>,
    ) -> Result<XVal, CompileError> {
        // Elementary function detection by name and signature (§IV-B).
        // pow with a compile-time integer exponent lowers to the
        // dependency-aware `ia_pow_*` kernel (tighter than the repeated
        // multiplication a user would otherwise write: even powers never
        // dip below zero). Other exponents stay unsupported, matching
        // the runtime library.
        if name == "pow" && args.len() == 2 {
            let n: Option<i64> = match &args[1] {
                Expr::IntLit { value, .. } => Some(*value),
                Expr::FloatLit { value, .. }
                    if value.fract() == 0.0 && value.abs() <= i32::MAX as f64 =>
                {
                    Some(*value as i64)
                }
                Expr::Unary(UnOp::Neg, inner) => match &**inner {
                    Expr::IntLit { value, .. } => Some(-*value),
                    Expr::FloatLit { value, .. }
                        if value.fract() == 0.0 && value.abs() <= i32::MAX as f64 =>
                    {
                        Some(-(*value as i64))
                    }
                    _ => None,
                },
                _ => None,
            };
            let Some(n) = n.filter(|n| i32::try_from(*n).is_ok()) else {
                return Err(CompileError::Unsupported {
                    loc,
                    msg: "pow() is supported only with a compile-time integer exponent \
                          (the runtime library provides integer powers only)"
                        .to_string(),
                });
            };
            let base = self.expr(&args[0], out)?;
            let base = self.lift_int(base);
            let base = self.as_operand(base, out);
            return Ok(XVal::V(
                Expr::Call { name: self.ia("pow"), args: vec![base, Expr::int(n)], loc },
                Kind::Interval,
            ));
        }
        let elementary: Option<&str> = match (name, args.len()) {
            ("sqrt", 1) => Some("sqrt"),
            ("fabs", 1) => Some("abs"),
            ("floor", 1) => Some("floor"),
            ("ceil", 1) => Some("ceil"),
            ("exp", 1) => Some("exp"),
            ("log", 1) => Some("log"),
            ("sin", 1) => Some("sin"),
            ("cos", 1) => Some("cos"),
            ("tan", 1) => Some("tan"),
            ("atan", 1) => Some("atan"),
            ("asin", 1) => Some("asin"),
            ("acos", 1) => Some("acos"),
            ("fmin", 2) => Some("min"),
            ("fmax", 2) => Some("max"),
            _ => None,
        };
        if let Some(ia_name) = elementary {
            if self.cfg.precision == crate::config::Precision::Dd
                && !matches!(ia_name, "sqrt" | "abs" | "min" | "max" | "floor" | "ceil")
            {
                return Err(CompileError::Unsupported {
                    loc,
                    msg: format!(
                        "elementary function `{name}` in double-double precision (the paper's \
                         library does not support them either)"
                    ),
                });
            }
            let mut xargs = Vec::new();
            for a in args {
                let v = self.expr(a, out)?;
                let v = self.lift_int(v);
                xargs.push(self.as_operand(v, out));
            }
            return Ok(XVal::V(
                Expr::Call { name: self.ia(ia_name), args: xargs, loc },
                Kind::Interval,
            ));
        }
        if name == "malloc" {
            self.warnings.push(format!(
                "line {}: malloc() size argument is not adjusted for interval types; \
                 sizeof-based allocation must be reviewed manually",
                loc.line
            ));
        }
        if let Some(stripped) = name.strip_prefix("_mm") {
            // SIMD intrinsic in the input (Section V): hand-optimized
            // intrinsics map to the runtime's `ia_mm…` kernels; the rest
            // call the automatically generated interval implementation
            // `_c_mm…`, which transform_unit appends to the output.
            self.intrinsics.push(name.to_string());
            let mut xargs = Vec::new();
            for a in args {
                let v = self.expr(a, out)?;
                xargs.push(self.lower_plain_expr(v, out));
            }
            let kind = intrinsic_result_kind(name);
            if crate::simd::hand_optimized(name) {
                return Ok(XVal::V(
                    Expr::Call { name: format!("ia_mm{stripped}"), args: xargs, loc },
                    kind,
                ));
            }
            self.generated_needed.push(name.to_string());
            return Ok(XVal::V(Expr::Call { name: format!("_c{name}"), args: xargs, loc }, kind));
        }
        // Ordinary call: arguments promoted, name kept.
        let mut xargs = Vec::new();
        for a in args {
            let v = self.expr(a, out)?;
            let v2 = match v {
                XVal::Const(c) => XVal::V(self.const_expr(&c), Kind::Interval),
                other => other,
            };
            xargs.push(self.lower_plain_expr(v2, out));
        }
        Ok(XVal::V(
            Expr::Call { name: name.to_string(), args: xargs, loc },
            Kind::Interval, // unknown user functions: assume interval result
        ))
    }
}

impl XVal {
    fn with_int_const(self, _v: i64) -> XVal {
        self
    }
}

/// True when `a` and `b` are structurally the same side-effect-free
/// operand (location-insensitive): a variable, an indexed access with a
/// pure index, or a member access. Used by the `sqr_rewrite` option.
fn pure_same_operand(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Ident(x, _), Expr::Ident(y, _)) => x == y,
        (Expr::IntLit { value: x, .. }, Expr::IntLit { value: y, .. }) => x == y,
        (Expr::Index(xb, xi), Expr::Index(yb, yi)) => {
            pure_same_operand(xb, yb) && pure_same_operand(xi, yi)
        }
        (
            Expr::Member { base: xb, field: xf, arrow: xa },
            Expr::Member { base: yb, field: yf, arrow: ya },
        ) => xf == yf && xa == ya && pure_same_operand(xb, yb),
        _ => false,
    }
}

fn xval_is_intervalish(v: &XVal) -> bool {
    match v {
        XVal::Const(_) => true,
        XVal::V(_, k) => k.is_intervalish() || matches!(k, Kind::MaskBits),
    }
}

/// Result kind of an interval intrinsic by name.
fn intrinsic_result_kind(name: &str) -> Kind {
    if name.contains("store") {
        Kind::Other
    } else if name.starts_with("_mm256") {
        Kind::IntervalVec(2)
    } else {
        Kind::IntervalVec(1)
    }
}

/// A plain `lhs = rhs` assignment. `loc` carries the source location of
/// the original assignment; the IR reduction pass matches accumulate
/// stores by this location (compiler-synthesized assignments pass
/// [`Loc::default`]).
fn assign(lhs: Expr, rhs: Expr, loc: Loc) -> Expr {
    Expr::Assign { op: AssignOp::Assign, lhs: Box::new(lhs), rhs: Box::new(rhs), loc }
}

fn float_lit(v: f64) -> Expr {
    Expr::FloatLit { value: v, text: fmt_f64(v), f32: false, tol: false }
}

/// `ia_set_ddx(lo_hi, lo_lo, hi_hi, hi_lo)`: a double-double interval
/// constant with full-precision endpoints.
fn ddx_const(lo: igen_dd::Dd, hi: igen_dd::Dd) -> Expr {
    Expr::Call {
        name: "ia_set_ddx".to_string(),
        args: vec![float_lit(lo.hi()), float_lit(lo.lo()), float_lit(hi.hi()), float_lit(hi.lo())],
        loc: Loc::default(),
    }
}

/// Variables assigned anywhere in a statement (for the join policy's
/// modified-set analysis).
fn collect_modified(s: &Stmt, out: &mut Vec<String>) {
    fn expr_mods(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Assign { lhs, rhs, .. } => {
                if let Expr::Ident(n, _) = &**lhs {
                    out.push(n.clone());
                } else if let Expr::Index(b, _) = &**lhs {
                    // Array writes: marked with a sentinel so the caller
                    // rejects the join.
                    if let Expr::Ident(n, _) = &**b {
                        out.push(format!("{n}[]"));
                    }
                }
                expr_mods(rhs, out);
            }
            Expr::Binary { lhs, rhs, .. } => {
                expr_mods(lhs, out);
                expr_mods(rhs, out);
            }
            Expr::Unary(_, i) | Expr::Cast(_, i) | Expr::PostIncDec(i, _) => expr_mods(i, out),
            Expr::Call { args, .. } => args.iter().for_each(|a| expr_mods(a, out)),
            Expr::Index(b, i) => {
                expr_mods(b, out);
                expr_mods(i, out);
            }
            Expr::Cond(c, t, f) => {
                expr_mods(c, out);
                expr_mods(t, out);
                expr_mods(f, out);
            }
            _ => {}
        }
    }
    match s {
        Stmt::Expr(e) => expr_mods(e, out),
        Stmt::Decl(d) => {
            if let Some(i) = &d.init {
                expr_mods(i, out);
            }
        }
        Stmt::Block(b) => b.iter().for_each(|s| collect_modified(s, out)),
        Stmt::If { then_branch, else_branch, .. } => {
            collect_modified(then_branch, out);
            if let Some(e) = else_branch {
                collect_modified(e, out);
            }
        }
        Stmt::For { init, step, body, .. } => {
            if let Some(i) = init {
                collect_modified(i, out);
            }
            if let Some(st) = step {
                expr_mods(st, out);
            }
            collect_modified(body, out);
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => collect_modified(body, out),
        Stmt::Switch { arms, .. } => {
            for arm in arms {
                arm.body.iter().for_each(|s| collect_modified(s, out));
            }
        }
        _ => {}
    }
}

/// The pieces whole-unit lowering produces: the lowered unit, warnings,
/// detected reduction groups (one per pragma marker, in marker order),
/// and the intrinsics encountered.
pub(crate) type UnitXform = (TranslationUnit, Vec<String>, Vec<Vec<ReductionInfo>>, Vec<String>);

/// Lowers a full translation unit (type promotion, interval-constant
/// folding, three-address materialization — but no reduction rewriting).
pub(crate) fn lower_unit(tu: &TranslationUnit, cfg: &Config) -> Result<UnitXform, CompileError> {
    let mut xf = Xform::new(cfg);
    let mut items = vec![Item::Include("\"igen_lib.h\"".to_string())];
    for item in &tu.items {
        match item {
            Item::Include(s) => {
                // Math/intrinsics headers are superseded by igen_lib.h.
                if !s.contains("math.h") && !s.contains("immintrin") && !s.contains("emmintrin") {
                    items.push(Item::Include(s.clone()));
                }
            }
            Item::Pragma(p) => items.push(Item::Pragma(p.clone())),
            Item::Typedef(td) => items.push(Item::Typedef(promote_typedef(td, cfg))),
            Item::Global(d) => {
                let kind = kind_of(&d.ty);
                let ty = promote(&d.ty, cfg);
                xf.declare(&d.name, kind, None);
                // Global initializers must be constants; fold if interval.
                let init = match &d.init {
                    None => None,
                    Some(e) => {
                        let mut pre = Vec::new();
                        let v = xf.expr(e, &mut pre)?;
                        if !pre.is_empty() {
                            return Err(CompileError::Unsupported {
                                loc: e.loc(),
                                msg: "non-constant global initializer".into(),
                            });
                        }
                        Some(xf.lower_plain_expr(v, &mut pre))
                    }
                };
                items.push(Item::Global(VarDecl { ty, name: d.name.clone(), init }));
            }
            Item::Function(f) => {
                items.push(Item::Function(xf.function(f)?));
            }
        }
    }
    let (warnings, mut reduction_groups, intrinsics, mut needed) = xf.into_results();
    needed.sort();
    needed.dedup();
    if !needed.is_empty() {
        // Fig. 4: generate the C implementation of each needed intrinsic
        // from the specification corpus and self-compile it to interval
        // code, appending it (plus its union typedefs) to the unit.
        let specs = igen_simdgen::corpus_specs();
        let mut gen_items: Vec<Item> = Vec::new();
        let mut kinds: Vec<(i64, igen_simdgen::Elem)> = Vec::new();
        for name in &needed {
            let Some(spec) = specs.iter().find(|s| &s.name == name) else {
                return Err(CompileError::Unsupported {
                    loc: Loc::default(),
                    msg: format!("intrinsic {name} is not in the specification corpus"),
                });
            };
            let f = igen_simdgen::generate_c(spec).map_err(|e| CompileError::Unsupported {
                loc: Loc::default(),
                msg: format!("intrinsic {name}: {e}"),
            })?;
            for ty in spec
                .params
                .iter()
                .map(|p| p.ty.as_str())
                .chain(std::iter::once(spec.rettype.as_str()))
            {
                if let Some(k) = igen_simdgen::vec_kind(ty) {
                    if !kinds.contains(&k) {
                        kinds.push(k);
                    }
                }
            }
            gen_items.push(Item::Function(f));
        }
        let mut gen_unit = TranslationUnit {
            items: kinds
                .iter()
                .map(|&(bits, elem)| Item::Typedef(igen_simdgen::union_typedef(bits, elem)))
                .collect(),
        };
        gen_unit.items.extend(gen_items);
        let (gen_transformed, w2, g2, _) = lower_unit(&gen_unit, cfg)?;
        let _ = w2;
        reduction_groups.extend(g2);
        items.extend(gen_transformed.items.into_iter().filter(|i| !matches!(i, Item::Include(_))));
    }
    Ok((TranslationUnit { items }, warnings, reduction_groups, intrinsics))
}

pub(crate) fn promote_typedef(td: &Typedef, cfg: &Config) -> Typedef {
    match td {
        Typedef::Union { name, fields } => Typedef::Union {
            name: name.clone(),
            fields: fields
                .iter()
                .map(|(ty, n)| {
                    // The integer view of the union stays raw.
                    if n == "i" {
                        (ty.clone(), n.clone())
                    } else {
                        (promote(ty, cfg), n.clone())
                    }
                })
                .collect(),
        },
        Typedef::Alias { name, ty } => Typedef::Alias { name: name.clone(), ty: promote(ty, cfg) },
    }
}
