//! Reduction detection — the workspace's Polly substitute (Section VI-B).
//!
//! Polly detects reduction dependences at the LLVM-IR level and reports
//! the reduction type, the loop-carried self-dependence, and the source
//! location of the reducing instruction. This module computes the same
//! information directly on the AST: inside a loop nest annotated with
//! `#pragma igen reduce <vars>`, it finds statements of the form
//!
//! ```c
//! x = x + e;        x += e;        A[i] = A[i] + e;
//! ```
//!
//! whose left-hand side is one of the pragma variables, and determines the
//! *carrying level*: the outermost enclosing loop whose induction variable
//! does not appear in the left-hand side's index expression (every loop
//! from there inward carries the self-dependence, so the accumulator is
//! initialized right before that loop and reduced right after it — in
//! Fig. 7 that is the inner `j` loop, because `y[i]` depends on `i`).

use igen_cfront::{AssignOp, BinOp, Expr, Loc, Stmt};

/// Information about one detected reduction — the analogue of Polly's
/// reduction-dependence report shown in Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionInfo {
    /// The reduced variable (pragma-specified).
    pub var: String,
    /// Reduction operation (only `+` is transformed, like the paper's
    /// evaluation).
    pub op: BinOp,
    /// Source location of the reducing assignment.
    pub loc: Loc,
    /// The reduction's left-hand side (`y` or `y[i]`), needed to emit the
    /// accumulator initialization and final reduction.
    pub lhs: Expr,
    /// Induction variables of the carrying loops, outermost first.
    pub carrying_loops: Vec<String>,
    /// Nesting depth of the statement (number of enclosing loops).
    pub depth: usize,
}

impl ReductionInfo {
    /// A Polly-style textual report of the detected dependence, matching
    /// the shape shown in Fig. 7 of the paper:
    ///
    /// ```text
    /// Reduction dependences [Reduction Type: +]:
    ///     Stmt[i0, i1] -> Stmt[i0, 1 + i1]
    /// ```
    pub fn polly_style_report(&self) -> String {
        let depth = self.depth;
        let idx: Vec<String> = (0..depth).map(|k| format!("i{k}")).collect();
        let mut next = idx.clone();
        if let Some(last) = next.last_mut() {
            *last = format!("1 + {last}");
        }
        format!(
            "Reduction dependences [Reduction Type: {}]:
    Stmt[{}] -> Stmt[{}]  (var: {}, line {}, carried by: {})",
            self.op.as_str(),
            idx.join(", "),
            next.join(", "),
            self.var,
            self.loc.line,
            self.carrying_loops.join(", "),
        )
    }
}

/// Detects reductions in a function body (list of statements). `vars`
/// are the variables named by the enclosing `#pragma igen reduce`.
pub fn detect_in_stmts(stmts: &[Stmt], vars: &[String]) -> Vec<ReductionInfo> {
    let mut out = Vec::new();
    let mut loops = Vec::new();
    walk(stmts, vars, &mut loops, &mut out);
    out
}

fn walk(stmts: &[Stmt], vars: &[String], loops: &mut Vec<String>, out: &mut Vec<ReductionInfo>) {
    for s in stmts {
        walk_one(s, vars, loops, out);
    }
}

fn walk_one(s: &Stmt, vars: &[String], loops: &mut Vec<String>, out: &mut Vec<ReductionInfo>) {
    match s {
        Stmt::For { init, body, .. } => {
            let var = induction_var(init.as_deref());
            loops.push(var.unwrap_or_default());
            walk_one(body, vars, loops, out);
            loops.pop();
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            loops.push(String::new());
            walk_one(body, vars, loops, out);
            loops.pop();
        }
        Stmt::Block(body) => walk(body, vars, loops, out),
        Stmt::Switch { arms, .. } => {
            for arm in arms {
                walk(&arm.body, vars, loops, out);
            }
        }
        Stmt::If { then_branch, else_branch, .. } => {
            walk_one(then_branch, vars, loops, out);
            if let Some(e) = else_branch {
                walk_one(e, vars, loops, out);
            }
        }
        Stmt::Expr(e) => {
            if loops.is_empty() {
                return;
            }
            if let Some(info) = match_reduction(e, vars, loops) {
                out.push(info);
            }
        }
        _ => {}
    }
}

/// The induction variable of a canonical `for` init clause.
fn induction_var(init: Option<&Stmt>) -> Option<String> {
    match init {
        Some(Stmt::Decl(d)) => Some(d.name.clone()),
        Some(Stmt::Expr(Expr::Assign { lhs, .. })) => match &**lhs {
            Expr::Ident(n, _) => Some(n.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Matches `x = x + e` / `x = e + x` / `x += e` with `x` in `vars`.
fn match_reduction(e: &Expr, vars: &[String], loops: &[String]) -> Option<ReductionInfo> {
    let (lhs, rhs, op, loc) = match e {
        Expr::Assign { op: AssignOp::Assign, lhs, rhs, loc } => {
            let Expr::Binary { op, lhs: a, rhs: b, .. } = &**rhs else {
                return None;
            };
            if *op != BinOp::Add {
                return None;
            }
            // Which side repeats the lvalue?
            if exprs_equal(lhs, a) {
                (&**lhs, &**b, *op, *loc)
            } else if exprs_equal(lhs, b) {
                (&**lhs, &**a, *op, *loc)
            } else {
                return None;
            }
        }
        Expr::Assign { op: AssignOp::AddAssign, lhs, rhs, loc } => {
            (&**lhs, &**rhs, BinOp::Add, *loc)
        }
        _ => return None,
    };
    let _ = rhs;
    let base = base_name(lhs)?;
    if !vars.iter().any(|v| v == &base) {
        return None;
    }
    // Carrying loops: the maximal suffix of the loop stack whose
    // induction variables do not occur in the lhs index expressions.
    let idx_vars = index_vars(lhs);
    let mut carrying = Vec::new();
    for lv in loops.iter().rev() {
        if lv.is_empty() || idx_vars.contains(lv) {
            break;
        }
        carrying.push(lv.clone());
    }
    carrying.reverse();
    if carrying.is_empty() {
        return None;
    }
    Some(ReductionInfo {
        var: base,
        op,
        loc,
        lhs: lhs.clone(),
        carrying_loops: carrying,
        depth: loops.len(),
    })
}

/// Base variable of an lvalue (`y` for both `y` and `y[i]`).
fn base_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Ident(n, _) => Some(n.clone()),
        Expr::Index(b, _) => base_name(b),
        Expr::Unary(igen_cfront::UnOp::Deref, b) => base_name(b),
        _ => None,
    }
}

/// Free variables of the index expressions of an lvalue.
fn index_vars(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    fn collect(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Ident(n, _) => out.push(n.clone()),
            Expr::Binary { lhs, rhs, .. } => {
                collect(lhs, out);
                collect(rhs, out);
            }
            Expr::Unary(_, i) | Expr::Cast(_, i) | Expr::PostIncDec(i, _) => collect(i, out),
            Expr::Index(b, i) => {
                collect(b, out);
                collect(i, out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    collect(a, out);
                }
            }
            _ => {}
        }
    }
    if let Expr::Index(b, i) = e {
        collect(i, &mut out);
        // Nested indices of the base too.
        out.extend(index_vars(b));
    }
    out
}

/// Structural equality ignoring source locations.
pub fn exprs_equal(a: &Expr, b: &Expr) -> bool {
    use Expr::*;
    match (a, b) {
        (IntLit { value: x, .. }, IntLit { value: y, .. }) => x == y,
        (FloatLit { value: x, .. }, FloatLit { value: y, .. }) => x == y,
        (Ident(x, _), Ident(y, _)) => x == y,
        (Unary(o1, e1), Unary(o2, e2)) => o1 == o2 && exprs_equal(e1, e2),
        (PostIncDec(e1, i1), PostIncDec(e2, i2)) => i1 == i2 && exprs_equal(e1, e2),
        (Binary { op: o1, lhs: l1, rhs: r1, .. }, Binary { op: o2, lhs: l2, rhs: r2, .. }) => {
            o1 == o2 && exprs_equal(l1, l2) && exprs_equal(r1, r2)
        }
        (Assign { op: o1, lhs: l1, rhs: r1, .. }, Assign { op: o2, lhs: l2, rhs: r2, .. }) => {
            o1 == o2 && exprs_equal(l1, l2) && exprs_equal(r1, r2)
        }
        (Call { name: n1, args: a1, .. }, Call { name: n2, args: a2, .. }) => {
            n1 == n2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| exprs_equal(x, y))
        }
        (Index(b1, i1), Index(b2, i2)) => exprs_equal(b1, b2) && exprs_equal(i1, i2),
        (Member { base: b1, field: f1, arrow: r1 }, Member { base: b2, field: f2, arrow: r2 }) => {
            f1 == f2 && r1 == r2 && exprs_equal(b1, b2)
        }
        (Cast(t1, e1), Cast(t2, e2)) => t1 == t2 && exprs_equal(e1, e2),
        (Cond(c1, t1, f1), Cond(c2, t2, f2)) => {
            exprs_equal(c1, c2) && exprs_equal(t1, t2) && exprs_equal(f1, f2)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igen_cfront::parse;

    fn body_of(src: &str) -> Vec<Stmt> {
        let tu = parse(src).unwrap();
        let body = tu.functions().next().unwrap().body.clone().unwrap();
        body
    }

    #[test]
    fn fig7_mvm_detection() {
        let body = body_of(
            r#"void mvm(double* A, double* x, double* y) {
                for (int i = 0; i < 100; i++)
                    for (int j = 0; j < 500; j++)
                        y[i] = y[i] + A[i*500+j]*x[j];
            }"#,
        );
        let red = detect_in_stmts(&body, &["y".to_string()]);
        assert_eq!(red.len(), 1);
        let r = &red[0];
        assert_eq!(r.var, "y");
        assert_eq!(r.op, BinOp::Add);
        // Carried by the inner j loop only (y[i] depends on i).
        assert_eq!(r.carrying_loops, vec!["j".to_string()]);
        assert_eq!(r.depth, 2);
        assert_eq!(r.loc.line, 4);
    }

    #[test]
    fn polly_style_report_matches_fig7() {
        let body = body_of(
            r#"void mvm(double* A, double* x, double* y) {
                for (int i = 0; i < 100; i++)
                    for (int j = 0; j < 500; j++)
                        y[i] = y[i] + A[i*500+j]*x[j];
            }"#,
        );
        let red = detect_in_stmts(&body, &["y".to_string()]);
        let report = red[0].polly_style_report();
        assert!(report.contains("[Reduction Type: +]"), "{report}");
        assert!(report.contains("Stmt[i0, i1] -> Stmt[i0, 1 + i1]"), "{report}");
    }

    #[test]
    fn scalar_reduction_carried_by_both_loops() {
        let body = body_of(
            r#"double total(double* A) {
                double s = 0.0;
                for (int i = 0; i < 10; i++)
                    for (int j = 0; j < 10; j++)
                        s = s + A[i*10+j];
                return s;
            }"#,
        );
        let red = detect_in_stmts(&body, &["s".to_string()]);
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].carrying_loops, vec!["i".to_string(), "j".to_string()]);
    }

    #[test]
    fn add_assign_and_flipped_forms() {
        let body = body_of(
            r#"double f(double* a) {
                double s = 0.0;
                for (int i = 0; i < 4; i++) s += a[i];
                for (int i = 0; i < 4; i++) s = a[i] + s;
                return s;
            }"#,
        );
        let red = detect_in_stmts(&body, &["s".to_string()]);
        assert_eq!(red.len(), 2);
    }

    #[test]
    fn non_reductions_ignored() {
        let body = body_of(
            r#"void f(double* a, double* b) {
                for (int i = 0; i < 4; i++) {
                    a[i] = b[i] + 1.0;      // not self-referential
                    b[i] = b[i] * 2.0;      // wrong operator
                    a[i] = a[i] + b[i];     // self-ref but i indexes lhs
                }
            }"#,
        );
        let red = detect_in_stmts(&body, &["a".to_string(), "b".to_string()]);
        assert!(red.is_empty(), "{red:?}");
    }

    #[test]
    fn variables_outside_pragma_ignored() {
        let body = body_of(
            r#"double f(double* a) {
                double s = 0.0;
                for (int i = 0; i < 4; i++) s = s + a[i];
                return s;
            }"#,
        );
        assert!(detect_in_stmts(&body, &["other".to_string()]).is_empty());
    }
}
