//! Sound conversion of source constants to intervals (Section IV-B
//! "Interval constants") and compile-time interval constant folding.
//!
//! * Integer-valued constants convert to exact point intervals
//!   (`1.0 → [1, 1]`).
//! * Constants that are **not** exactly representable convert to the
//!   interval of their two neighbouring floats — width 1 ulp, oriented by
//!   the direction the parser rounded (`0.1 → [0.0999…92, 0.1000…05]`,
//!   exactly the pair in Fig. 2).
//! * Representable non-integer constants (`0.5`) convert to a 2-ulp
//!   enclosure centered at the value.
//!
//! Exactness of a decimal literal is decided by comparing the literal
//! against the *exact* decimal expansion of the parsed double (every
//! binary64 value has a finite decimal expansion, printable with enough
//! fractional digits).

use core::cmp::Ordering;
use igen_dd::Dd;
use igen_interval::F64I;
use igen_round::{next_down, next_up, Rd, Rounded, Ru};

/// Compares the exact value of a decimal literal with the binary64 value
/// `v` it parsed to. `Ordering::Equal` means the literal is exactly
/// representable.
pub fn compare_decimal(text: &str, v: f64) -> Ordering {
    let lit = normalize_decimal(text).expect("literal was already parsed as a float");
    // The exact expansion of |v|: 1074 fractional digits always suffice
    // (the smallest subnormal is 2^-1074).
    let exact = normalize_decimal(&format!("{:.1074}", v.abs())).expect("formatted f64");
    let cmp_mag = cmp_normalized(&lit, &exact);
    if v >= 0.0 {
        cmp_mag
    } else {
        // Negative literals never reach here in practice (the parser
        // produces unary minus), but keep it total.
        cmp_mag.reverse()
    }
}

/// `(digits, exp)` with value `0.<digits> · 10^exp`, digits having no
/// leading zero (empty = zero).
#[derive(Debug, PartialEq, Eq)]
struct Norm {
    digits: String,
    exp: i32,
}

fn normalize_decimal(text: &str) -> Option<Norm> {
    let t = text.trim();
    let (mant, e10) = match t.find(['e', 'E']) {
        Some(idx) => (&t[..idx], t[idx + 1..].parse::<i32>().ok()?),
        None => (t, 0),
    };
    let (int_part, frac_part) = match mant.find('.') {
        Some(idx) => (&mant[..idx], &mant[idx + 1..]),
        None => (mant, ""),
    };
    let mut digits: String = int_part.chars().chain(frac_part.chars()).collect();
    if digits.chars().any(|c| !c.is_ascii_digit()) {
        return None;
    }
    // Value = digits · 10^(e10 - frac_len); normalize to 0.D·10^exp.
    let mut exp = e10 + int_part.len() as i32;
    // Strip leading zeros (adjusting exp) and trailing zeros.
    let lead = digits.len() - digits.trim_start_matches('0').len();
    digits.drain(..lead);
    exp -= lead as i32;
    while digits.ends_with('0') {
        digits.pop();
    }
    if digits.is_empty() {
        return Some(Norm { digits, exp: 0 });
    }
    Some(Norm { digits, exp })
}

fn cmp_normalized(a: &Norm, b: &Norm) -> Ordering {
    match (a.digits.is_empty(), b.digits.is_empty()) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        _ => {}
    }
    if a.exp != b.exp {
        return a.exp.cmp(&b.exp);
    }
    // Compare digit strings padded to equal length.
    let len = a.digits.len().max(b.digits.len());
    let pa: String = format!("{:0<len$}", a.digits);
    let pb: String = format!("{:0<len$}", b.digits);
    pa.cmp(&pb)
}

/// Converts a floating literal (value `v`, original spelling `text`) to
/// its sound interval enclosure per Section IV-B.
pub fn literal_interval(v: f64, text: &str) -> F64I {
    if v == v.trunc() && v.is_finite() && compare_decimal(text, v) == Ordering::Equal {
        // Integer-valued and exact.
        return F64I::point(v);
    }
    match compare_decimal(text, v) {
        Ordering::Equal => {
            if v == v.trunc() {
                F64I::point(v)
            } else {
                // Representable non-integer: 2-ulp enclosure centered at v.
                F64I::new(next_down(v), next_up(v)).expect("ordered")
            }
        }
        Ordering::Greater => {
            // True value above the rounded double: [v, next_up(v)].
            F64I::new(v, next_up(v)).expect("ordered")
        }
        Ordering::Less => F64I::new(next_down(v), v).expect("ordered"),
    }
}

/// Sound **double-double** enclosure `(lo, hi)` of a decimal literal —
/// used by the DD compilation target so that constants like `0.7` keep
/// ~106 bits instead of being capped at the 53-bit enclosure of the f64
/// target (the paper's DD benchmarks rely on this: its Spiral/SLinGen
/// inputs carry decimal constants).
///
/// The digits are accumulated exactly in chunks, then scaled by the
/// decimal exponent with directed double-double arithmetic; digits beyond
/// the 34th contribute a one-unit widening of the upper bound.
pub fn dd_literal_interval(v: f64, text: &str) -> (Dd, Dd) {
    if compare_decimal(text, v) == Ordering::Equal {
        // The double is the exact value.
        return (Dd::from(v), Dd::from(v));
    }
    let norm = normalize_decimal(text).expect("parsed literal");
    debug_assert!(!norm.digits.is_empty(), "inexact zero is impossible");
    const MAX_DIGITS: usize = 34;
    let used = norm.digits.len().min(MAX_DIGITS);
    let truncated = norm.digits.len() > used;
    // value = D · 10^(norm.exp - used) with D the first `used` digits;
    // lower bound uses D, upper bound uses D (+1 if truncated).
    let k = norm.exp as i64 - used as i64;
    let lo = digits_scaled::<Rd>(&norm.digits[..used], 0, k);
    let hi = digits_scaled::<Ru>(&norm.digits[..used], u64::from(truncated), k);
    debug_assert!(lo.le(&hi));
    (lo, hi)
}

/// `(digits as integer + bump) · 10^k`, rounded in direction `R`.
fn digits_scaled<R: Rounded>(digits: &str, bump: u64, k: i64) -> Dd {
    // Accumulate in 12-digit chunks (each chunk < 10^12 < 2^53: exact).
    let mut m = Dd::ZERO;
    let bytes = digits.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let end = (i + 12).min(bytes.len());
        let chunk: u64 = digits[i..end].parse().expect("digits");
        let chunk = if end == bytes.len() { chunk + bump } else { chunk };
        let scale = 10f64.powi((end - i) as i32); // 10^(<=12): exact
        m = igen_dd::add_dir::<R>(igen_dd::mul_f64_dir::<R>(m, scale), Dd::from(chunk as f64));
        i = end;
    }
    // Scale by 10^k.
    if k >= 0 {
        igen_dd::mul_dir::<R>(m, pow10_dir::<R>(k as u32))
    } else {
        // Lower bound: divide by an upper bound of 10^|k|, and vice versa.
        let j = (-k) as u32;
        match R::DIRECTION {
            igen_round::Direction::Down => igen_dd::div_bounds(m, pow10_dir::<Ru>(j)).0,
            _ => igen_dd::div_bounds(m, pow10_dir::<Rd>(j)).1,
        }
    }
}

/// `10^k` in direction `R` (exponentiation by squaring; k <= ~700 for
/// parseable literals).
fn pow10_dir<R: Rounded>(k: u32) -> Dd {
    let mut result = Dd::ONE;
    let mut base = Dd::from(10.0);
    let mut e = k;
    while e > 0 {
        if e & 1 == 1 {
            result = igen_dd::mul_dir::<R>(result, base);
        }
        base = igen_dd::mul_dir::<R>(base, base);
        e >>= 1;
    }
    result
}

/// Converts a `t`-suffixed tolerance literal (Section IV-C): `0.25t` is
/// the interval `[-0.25, 0.25]` around zero (Fig. 3 shows the exact pair
/// `[4.75, 5.25]` for `5.0 + 0.25t`). An exactly representable radius is
/// used as-is; an inexact one is rounded *up* (soundly enlarging the
/// tolerance).
pub fn tolerance_interval(v: f64, text: &str) -> F64I {
    let radius = match compare_decimal(text, v.abs()) {
        Ordering::Equal => v.abs(),
        Ordering::Greater => next_up(v.abs()), // true radius above the double
        Ordering::Less => v.abs(),             // double already over-covers
    };
    F64I::new(-radius, radius).expect("ordered")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactness_detection() {
        assert_eq!(compare_decimal("0.5", 0.5), Ordering::Equal);
        assert_eq!(compare_decimal("1.0", 1.0), Ordering::Equal);
        assert_eq!(compare_decimal("0.1", 0.1), Ordering::Less); // 0.1 < the double
                                                                 // The double 0.3 is 0.29999999999999998889…: the decimal is above.
        assert_eq!(compare_decimal("0.3", 0.3), Ordering::Greater);
        // 0.7 rounds down: the decimal is above the double.
        let v = 0.7f64;
        let dir = compare_decimal("0.7", v);
        // Verify against the library's own knowledge: the double 0.7 is
        // 0.6999999999999999555910790149937383830547332763671875.
        assert_eq!(dir, Ordering::Greater);
        assert_eq!(compare_decimal("2e3", 2000.0), Ordering::Equal);
        assert_eq!(compare_decimal("1e-3", 0.001), compare_decimal("0.001", 0.001));
    }

    #[test]
    #[allow(clippy::excessive_precision)] // exact next-below-0.1 literal
    fn fig2_constant_enclosure() {
        // The paper's Fig. 2: 0.1 becomes
        // [0.099999999999999992, 0.100000000000000006] — i.e. the two
        // floats adjacent to the real 0.1 (our enclosure is the pair
        // [next_down(0.1), 0.1] since 0.1 parses upward).
        let i = literal_interval(0.1, "0.1");
        assert!(i.lo() < 0.1 && i.hi() >= 0.1);
        assert_eq!(igen_round::ulps_between(i.lo(), i.hi()), 1, "width 1 ulp");
        assert!(i.lo() <= 0.099999999999999992);
        assert!(i.hi() >= 0.1);
    }

    #[test]
    fn integer_constants_exact() {
        assert!(literal_interval(1.0, "1.0").is_point());
        assert!(literal_interval(2000.0, "2e3").is_point());
        assert!(literal_interval(0.0, "0.0").is_point());
    }

    #[test]
    fn representable_noninteger_gets_2ulp() {
        let i = literal_interval(0.5, "0.5");
        assert_eq!(igen_round::ulps_between(i.lo(), i.hi()), 2);
        assert!(i.contains(0.5));
        let j = literal_interval(4.75, "4.75");
        assert!(j.contains(4.75));
        assert_eq!(igen_round::ulps_between(j.lo(), j.hi()), 2);
    }

    #[test]
    #[allow(clippy::approx_constant)] // 3.141 IS the deliberate test case
    fn nonrepresentable_gets_1ulp_oriented() {
        for (text, v) in [("0.1", 0.1f64), ("0.3", 0.3), ("0.7", 0.7), ("3.141", 3.141)] {
            let i = literal_interval(v, text);
            assert_eq!(igen_round::ulps_between(i.lo(), i.hi()), 1, "{text}");
            assert!(i.contains(v));
        }
    }

    #[test]
    fn tolerance_literal() {
        // 0.25t = [-0.25, 0.25]; 5.0 + 0.25t = [4.75, 5.25] (Fig. 3).
        let t = tolerance_interval(0.25, "0.25");
        assert!(t.contains(-0.25) && t.contains(0.25));
        let five = literal_interval(5.0, "5.0");
        let sum = five + t;
        assert!(sum.contains(4.75) && sum.contains(5.25));
        assert!(sum.lo() <= 4.75 && sum.hi() >= 5.25);
    }

    #[test]
    fn dd_literal_enclosures() {
        // 0.7 at dd precision: width ~2^-106 relative, containing the
        // true 7/10.
        let (lo, hi) = dd_literal_interval(0.7, "0.7");
        assert!(lo.lt(&hi));
        let seven_tenths = Dd::from(7.0) / Dd::from(10.0); // within 2^-100
        assert!(lo.le(&seven_tenths) && seven_tenths.le(&hi));
        let width = (hi - lo).abs().to_f64();
        assert!(width < 1e-29, "width = {width:e}");
        // Exact literals stay points.
        let (lo, hi) = dd_literal_interval(0.5, "0.5");
        assert!(lo.le(&hi) && hi.le(&lo));
        assert_eq!(lo.to_f64(), 0.5);
        // Scientific notation, large and tiny.
        for (t, v) in
            [("1.05", 1.05f64), ("6.022e23", 6.022e23), ("1.6e-19", 1.6e-19), ("0.3", 0.3)]
        {
            let (lo, hi) = dd_literal_interval(v, t);
            assert!(
                lo.le(&Dd::from(v)) && Dd::from(v).le(&hi)
                    || (hi - Dd::from(v)).abs().to_f64() < v.abs() * 1e-15,
                "{t}: [{lo}, {hi}]"
            );
            assert!((hi - lo).abs().to_f64() <= v.abs() * 1e-28, "{t} too wide");
        }
    }

    #[test]
    fn decimal_normalization_edge_cases() {
        assert_eq!(compare_decimal("000.5000", 0.5), Ordering::Equal);
        assert_eq!(compare_decimal("5", 5.0), Ordering::Equal);
        assert_eq!(compare_decimal("0.0", 0.0), Ordering::Equal);
        assert_eq!(compare_decimal("1e300", 1e300), compare_decimal("1e300", 1e300));
        // Tiny subnormal territory.
        assert_eq!(compare_decimal("5e-324", 5e-324), Ordering::Greater);
    }
}
