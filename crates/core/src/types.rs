//! Type promotion from floating-point and SIMD types to interval types
//! (Table II of the paper).

use crate::config::{Config, Precision};
use igen_cfront::Type;

/// The kind of a value during transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// A scalar interval (`f64i`/`ddi`) — promoted from `float`/`double`.
    Interval,
    /// A packed interval vector promoted from a SIMD type; the payload is
    /// the number of packed intervals — one per floating-point lane of
    /// the source type (2 for `__m128d`, 4 for `__m128`/`__m256d`, 8 for
    /// `__m256`), since one interval occupies one `__m128d` (Table II).
    IntervalVec(u8),
    /// An integer (left untouched).
    Int,
    /// A three-valued boolean produced by an interval comparison.
    TBool,
    /// An interval accessed through a union's integer view (`u.i[k]` in
    /// generated intrinsics) — bitwise operations on it become
    /// endpoint-wise interval mask operations (Section V).
    MaskBits,
    /// A reduction accumulator (Section VI-B).
    Acc,
    /// Anything else (void, unions, …).
    Other,
}

impl Kind {
    /// True for interval-carrying kinds.
    pub fn is_intervalish(&self) -> bool {
        matches!(self, Kind::Interval | Kind::IntervalVec(_))
    }
}

/// Promotes a C type per Table II. Pointers and arrays referring to
/// floating-point types are promoted structurally; integers and unknown
/// named types pass through.
pub fn promote(ty: &Type, cfg: &Config) -> Type {
    match ty {
        Type::Float | Type::Double => Type::Named(cfg.interval_type().to_string()),
        Type::Named(n) => Type::Named(promote_simd_name(n, cfg).unwrap_or_else(|| n.clone())),
        Type::Ptr(inner) => Type::Ptr(Box::new(promote(inner, cfg))),
        Type::Array(inner, n) => Type::Array(Box::new(promote(inner, cfg)), *n),
        other => other.clone(),
    }
}

/// Table II: SIMD type → interval vector type name.
fn promote_simd_name(name: &str, cfg: &Config) -> Option<String> {
    let lanes = simd_interval_lanes(name)?;
    Some(match cfg.precision {
        // SIMD lanes always promote to double-precision intervals, per
        // the paper's default ("single precision intrinsics are
        // transformed to equivalent double precision interval
        // intrinsics"), even under the f32 scalar target.
        // The `m256di_k` name counts __m256d registers: 2 intervals each.
        Precision::F32 | Precision::F64 => format!("m256di_{}", lanes / 2),
        Precision::Dd => format!("ddi_{lanes}"),
    })
}

/// Number of packed *intervals* produced from a SIMD type — one per
/// floating-point lane (Table II: an interval fills one `__m128d`, so
/// `__m128d` → 2 intervals in `m256di_1`, `__m128`/`__m256d` → 4 in
/// `m256di_2`, `__m256` → 8 in `m256di_4`).
pub fn simd_interval_lanes(name: &str) -> Option<u8> {
    match name {
        "__m128d" => Some(2),
        "__m128" | "__m256d" => Some(4),
        "__m256" => Some(8),
        _ => None,
    }
}

/// The kind of a (source) type after promotion.
pub fn kind_of(ty: &Type) -> Kind {
    match ty {
        Type::Float | Type::Double => Kind::Interval,
        Type::Int | Type::UInt | Type::Long | Type::ULong => Kind::Int,
        Type::Named(n) => match simd_interval_lanes(n) {
            Some(l) => Kind::IntervalVec(l),
            None => match n.as_str() {
                "f64i" | "f32i" | "ddi" => Kind::Interval,
                "tbool" => Kind::TBool,
                "acc_f64" | "acc_dd" => Kind::Acc,
                _ => Kind::Other,
            },
        },
        Type::Ptr(inner) | Type::Array(inner, _) => kind_of(inner),
        Type::Void => Kind::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OutputVec;

    fn cfg(p: Precision) -> Config {
        Config { precision: p, vectorize: OutputVec::Scalar, ..Config::default() }
    }

    #[test]
    fn table2_promotions_f64() {
        let c = cfg(Precision::F64);
        assert_eq!(promote(&Type::Float, &c), Type::Named("f64i".into()));
        assert_eq!(promote(&Type::Double, &c), Type::Named("f64i".into()));
        assert_eq!(promote(&Type::Named("__m128d".into()), &c), Type::Named("m256di_1".into()));
        assert_eq!(promote(&Type::Named("__m128".into()), &c), Type::Named("m256di_2".into()));
        assert_eq!(promote(&Type::Named("__m256d".into()), &c), Type::Named("m256di_2".into()));
        assert_eq!(promote(&Type::Named("__m256".into()), &c), Type::Named("m256di_4".into()));
    }

    #[test]
    fn table2_promotions_dd() {
        let c = cfg(Precision::Dd);
        assert_eq!(promote(&Type::Double, &c), Type::Named("ddi".into()));
        assert_eq!(promote(&Type::Named("__m128d".into()), &c), Type::Named("ddi_2".into()));
        assert_eq!(promote(&Type::Named("__m256d".into()), &c), Type::Named("ddi_4".into()));
        assert_eq!(promote(&Type::Named("__m256".into()), &c), Type::Named("ddi_8".into()));
    }

    #[test]
    fn structural_promotion() {
        let c = cfg(Precision::F64);
        assert_eq!(
            promote(&Type::Ptr(Box::new(Type::Double)), &c),
            Type::Ptr(Box::new(Type::Named("f64i".into())))
        );
        assert_eq!(
            promote(&Type::Array(Box::new(Type::Float), Some(8)), &c),
            Type::Array(Box::new(Type::Named("f64i".into())), Some(8))
        );
        // Integers pass through.
        assert_eq!(promote(&Type::Int, &c), Type::Int);
        assert_eq!(promote(&Type::Ptr(Box::new(Type::Int)), &c), Type::Ptr(Box::new(Type::Int)));
    }

    #[test]
    fn kinds() {
        assert_eq!(kind_of(&Type::Double), Kind::Interval);
        assert_eq!(kind_of(&Type::Ptr(Box::new(Type::Double))), Kind::Interval);
        assert_eq!(kind_of(&Type::Int), Kind::Int);
        assert_eq!(kind_of(&Type::Named("__m256d".into())), Kind::IntervalVec(4));
        assert_eq!(kind_of(&Type::Named("tbool".into())), Kind::TBool);
    }
}
