//! Full-text golden tests: the compiler's output for the paper's listings,
//! compared line by line (modulo temp numbering, which is part of the
//! assertion).

use igen_core::{Compiler, Config};

#[test]
fn fig2_full_output() {
    let out = Compiler::new(Config::default())
        .compile_str(
            "double foo(double a, double b) {\n\
             double c;\n\
             c = a + b + 0.1;\n\
             \n\
             if (c > a) {\n\
             c = a * c;\n\
             }\n\
             return c;\n\
             }",
        )
        .unwrap();
    let want = r#"#include "igen_lib.h"

f64i foo(f64i a, f64i b) {
    f64i c;
    f64i t1 = ia_add_f64(a, b);
    f64i t2 = ia_set_f64(0.09999999999999999, 0.1);
    c = ia_add_f64(t1, t2);
    tbool t3 = ia_cmpgt_f64(c, a);
    if (ia_cvt2bool_tb(t3))
    {
        c = ia_mul_f64(a, c);
    }
    return c;
}
"#;
    assert_eq!(out.c_source, want, "got:\n{}", out.c_source);
}

#[test]
fn fig3_full_output() {
    let out = Compiler::new(Config::default())
        .compile_str(
            "double read_sensor(double:0.125 a) {\n\
             double c = 5.0 + 0.25t;\n\
             return a + c;\n\
             }",
        )
        .unwrap();
    let want = r#"#include "igen_lib.h"

f64i read_sensor(double a) {
    f64i _a = ia_set_tol_f64(a, 0.125);
    f64i c = ia_set_f64(4.75, 5.25);
    f64i t1 = ia_add_f64(_a, c);
    return t1;
}
"#;
    assert_eq!(out.c_source, want, "got:\n{}", out.c_source);
}

#[test]
fn fig7_full_output() {
    let cfg = Config { reductions: true, ..Config::default() };
    let out = Compiler::new(cfg)
        .compile_str(
            "void mvm(double* A, double* x, double* y) {\n\
             #pragma igen reduce y\n\
             for (int i = 0; i < 100; i++)\n\
             for (int j = 0; j < 500; j++)\n\
             y[i] = y[i] + A[i*500+j]*x[j];\n\
             }",
        )
        .unwrap();
    let want = r#"#include "igen_lib.h"

void mvm(f64i* A, f64i* x, f64i* y) {
    for (int i = 0; i < 100; i++)
    {
        acc_f64 acc1;
        isum_init_f64(&acc1, y[i]);
        for (int j = 0; j < 500; j++)
        {
            f64i t1 = ia_mul_f64(A[i * 500 + j], x[j]);
            isum_accumulate_f64(&acc1, t1);
        }
        y[i] = isum_reduce_f64(&acc1);
    }
}
"#;
    assert_eq!(out.c_source, want, "got:\n{}", out.c_source);
}
