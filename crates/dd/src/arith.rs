//! Double-double arithmetic kernels, generic over the rounding direction.
//!
//! These are the algorithms of Fig. 6 of the paper (DD_Add with TwoSum /
//! FastTwoSum) and the multiplication/division algorithms of
//! Joldes–Muller–Popescu, instantiated at round-to-nearest for plain
//! double-double arithmetic and at RU/RD for sound interval endpoints
//! (Lemma 1: under upward rounding every kernel yields an upper bound of
//! the exact result; under downward rounding a lower bound).

use crate::dd::Dd;
use igen_round::{Direction, Rounded, Ru};

/// Final renormalization of a kernel result: an *exact* TwoSum (value
/// preserving, hence direction preserving) that restores the canonical
/// `hi = RN(hi+lo)` form, plus sound saturation when the renormalized sum
/// overflows the binary64 range.
#[inline]
fn finish<R: Rounded>(zh: f64, zl: f64) -> Dd {
    if zh.is_nan() || zl.is_nan() {
        return Dd::from_parts_unchecked(f64::NAN, f64::NAN);
    }
    if zh.is_infinite() {
        return Dd::from_parts_unchecked(zh, 0.0);
    }
    let (h, l) = igen_round::two_sum(zh, zl);
    if h.is_finite() {
        return Dd::from_parts_unchecked(h, l);
    }
    // zh + zl overflowed during renormalization: the exact value lies
    // beyond ±MAX. Saturate soundly for the direction in use.
    match (R::DIRECTION, h == f64::INFINITY) {
        (Direction::Up, true) | (Direction::Nearest, true) => {
            Dd::from_parts_unchecked(f64::INFINITY, 0.0)
        }
        (Direction::Up, false) => Dd::from_parts_unchecked(-f64::MAX, 0.0),
        (Direction::Down, false) | (Direction::Nearest, false) => {
            Dd::from_parts_unchecked(f64::NEG_INFINITY, 0.0)
        }
        (Direction::Down, true) => Dd::from_parts_unchecked(f64::MAX, 0.0),
    }
}

/// TwoSum computed entirely in rounding direction `R` (Fig. 6, right).
///
/// With `R = Rn` this is the exact error-free transformation; with a
/// directed mode, `s + e` bounds the exact sum from that side.
#[inline]
pub fn two_sum_dir<R: Rounded>(a: f64, b: f64) -> (f64, f64) {
    let s = R::add(a, b);
    let a1 = R::sub(s, b);
    let b1 = R::sub(s, a1);
    let da = R::sub(a, a1);
    let db = R::sub(b, b1);
    (s, R::add(da, db))
}

/// FastTwoSum in rounding direction `R` (requires `|a| >= |b|` for the
/// nearest-mode exactness guarantee; the directed-bound property of ref. 36
/// holds regardless for the compositions used here).
#[inline]
pub fn fast_two_sum_dir<R: Rounded>(a: f64, b: f64) -> (f64, f64) {
    let s = R::add(a, b);
    let z = R::sub(s, a);
    (s, R::sub(b, z))
}

/// TwoProd in rounding direction `R`: `(p, e)` with `p = R(a*b)`. The
/// residual `a*b - p` is exactly representable for any faithful `p`, so
/// `p + e = a*b` exactly in every mode (absent over/underflow).
#[inline]
pub fn two_prod_dir<R: Rounded>(a: f64, b: f64) -> (f64, f64) {
    let p = R::mul(a, b);
    let e = R::fma(a, b, -p);
    (p, e)
}

/// Double-double addition in direction `R` — the AccurateDWPlusDW
/// algorithm shown in Fig. 6 (left) of the paper.
///
/// With `R = Ru` the result is `>=` the exact sum; with `R = Rd`, `<=`
/// (Lemma 1).
pub fn add_dir<R: Rounded>(x: Dd, y: Dd) -> Dd {
    let (sh, sl) = two_sum_dir::<R>(x.hi(), y.hi());
    let (th, tl) = two_sum_dir::<R>(x.lo(), y.lo());
    let c = R::add(sl, th);
    let (vh, vl) = fast_two_sum_dir::<R>(sh, c);
    let w = R::add(tl, vl);
    let (zh, zl) = fast_two_sum_dir::<R>(vh, w);
    finish::<R>(zh, zl)
}

/// Double-double subtraction in direction `R`: `x - y` bounded from the
/// `R` side.
pub fn sub_dir<R: Rounded>(x: Dd, y: Dd) -> Dd {
    add_dir::<R>(x, y.neg())
}

/// Double-double multiplication in direction `R` (DWTimesDW3 of
/// Joldes–Muller–Popescu). Monotone error accumulation makes the `Ru`
/// instance an upper bound and the `Rd` instance a lower bound of the
/// exact product.
pub fn mul_dir<R: Rounded>(x: Dd, y: Dd) -> Dd {
    let (ch, cl1) = two_prod_dir::<R>(x.hi(), y.hi());
    let tl0 = R::mul(x.lo(), y.lo());
    let tl1 = R::fma(x.hi(), y.lo(), tl0);
    let cl2 = R::fma(x.lo(), y.hi(), tl1);
    let cl3 = R::add(cl1, cl2);
    let (zh, zl) = fast_two_sum_dir::<R>(ch, cl3);
    finish::<R>(zh, zl)
}

/// Double-double × double in direction `R` (DWTimesFP3).
pub fn mul_f64_dir<R: Rounded>(x: Dd, y: f64) -> Dd {
    let (ch, cl1) = two_prod_dir::<R>(x.hi(), y);
    let cl3 = R::fma(x.lo(), y, cl1);
    let (zh, zl) = fast_two_sum_dir::<R>(ch, cl3);
    finish::<R>(zh, zl)
}

/// Relative-error exponent guaranteed for [`div_rn`]: the result is within
/// `2^-DIV_REL_ERR_EXP` of the exact quotient in relative terms.
///
/// Joldes–Muller–Popescu prove `<= 9.8 * 2^-106` for DWDivDW3; we use the
/// very comfortable margin `2^-100` when deriving sound bounds in
/// [`div_bounds`].
pub const DIV_REL_ERR_EXP: i32 = 100;

/// Double-double division in round-to-nearest (DWDivDW2 with an FMA
/// residual refinement).
pub fn div_rn(x: Dd, y: Dd) -> Dd {
    let th = x.hi() / y.hi();
    if !th.is_finite() || th == 0.0 {
        // Degenerate magnitude: the scalar quotient already saturated.
        return Dd::from_parts_unchecked(th, if th.is_nan() { f64::NAN } else { 0.0 });
    }
    // r = x - th * y, computed in double-double.
    let (ph, pl) = two_prod_dir::<igen_round::Rn>(th, y.hi());
    let dh = x.hi() - ph;
    let dt = dh - pl;
    let d = dt + (x.lo() - th * y.lo());
    let tl = d / y.hi();
    let (zh, zl) = igen_round::fast_two_sum(th, tl);
    finish::<igen_round::Rn>(zh, zl)
}

/// Sound enclosure of the exact quotient `x / y`: returns `(lo, hi)` with
/// `lo <= x/y <= hi`.
///
/// Derived from [`div_rn`] plus its proven relative error bound
/// (see [`DIV_REL_ERR_EXP`]) with an absolute floor covering underflow.
/// For `y` spanning or touching zero the caller (the interval layer) is
/// responsible for the division-by-zero semantics; here a zero `y.hi()`
/// yields infinite bounds.
pub fn div_bounds(x: Dd, y: Dd) -> (Dd, Dd) {
    let q = div_rn(x, y);
    if !q.is_finite() {
        if q.is_nan() {
            return (Dd::NAN, Dd::NAN);
        }
        // An infinite quotient from finite operands means overflow: the
        // exact value is a finite real beyond ±MAX, so the finite side of
        // the enclosure saturates at ±MAX.
        if x.is_finite() && y.is_finite() {
            return if q.hi() > 0.0 {
                (Dd::from(f64::MAX), Dd::INFINITY)
            } else {
                (Dd::NEG_INFINITY, Dd::from(-f64::MAX))
            };
        }
        return (q, q);
    }
    if x.is_zero() {
        return (Dd::ZERO, Dd::ZERO);
    }
    let delta = err_radius(q);
    (sub_dir::<igen_round::Rd>(q, delta), add_dir::<Ru>(q, delta))
}

/// Relative-error exponent guaranteed for [`sqrt_rn`] (SQRTDWtoDW2 has a
/// proven bound of `25/8 * 2^-106`; we use `2^-100`).
pub const SQRT_REL_ERR_EXP: i32 = 100;

/// Double-double square root in round-to-nearest (one Newton/Karp step on
/// the scalar root). NaN for negative inputs.
pub fn sqrt_rn(x: Dd) -> Dd {
    if x.is_zero() {
        return x;
    }
    if x.is_sign_negative() {
        return Dd::from_parts_unchecked(f64::NAN, f64::NAN);
    }
    let sh = x.hi().sqrt();
    if !sh.is_finite() {
        return Dd::from_parts_unchecked(sh, 0.0);
    }
    // r = x - sh^2 in double-double, correction r / (2 sh).
    let (ph, pl) = two_prod_dir::<igen_round::Rn>(sh, sh);
    let dh = x.hi() - ph;
    let dt = dh - pl;
    let d = dt + x.lo();
    let sl = d / (2.0 * sh);
    let (zh, zl) = igen_round::fast_two_sum(sh, sl);
    finish::<igen_round::Rn>(zh, zl)
}

/// Sound enclosure of the exact square root: `(lo, hi)` with
/// `lo <= sqrt(x) <= hi`; NaN bounds for negative input.
pub fn sqrt_bounds(x: Dd) -> (Dd, Dd) {
    let s = sqrt_rn(x);
    if s.is_nan() {
        let nan = Dd::from_parts_unchecked(f64::NAN, f64::NAN);
        return (nan, nan);
    }
    if x.is_zero() || !s.is_finite() {
        return (s, s);
    }
    let delta = err_radius(s);
    let lo = sub_dir::<igen_round::Rd>(s, delta).max(Dd::ZERO);
    (lo, add_dir::<Ru>(s, delta))
}

/// `|q| * 2^-100 + 2^-1055`: a rigorous error radius for the RN kernels
/// with proven relative error below `2^-100` in the normal range, plus an
/// absolute floor absorbing the tail-quantization error when the trailing
/// component falls into the subnormal range (each subnormal rounding
/// contributes at most 2^-1074; the floor leaves a 2^19 margin).
fn err_radius(q: Dd) -> Dd {
    let rel = igen_round::mul_ru(q.hi().abs(), pow2_f64(-DIV_REL_ERR_EXP));
    let abs_floor = pow2_f64(-1055);
    Dd::from(igen_round::add_ru(rel, abs_floor))
}

fn pow2_f64(n: i32) -> f64 {
    if n >= -1022 {
        f64::from_bits(((1023 + n) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (n + 1074))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igen_round::{Rd, Rn, Ru};

    #[test]
    fn add_nearest_is_exactish() {
        let x = Dd::from(1.0);
        let y = Dd::from(f64::EPSILON / 4.0);
        let s = add_dir::<Rn>(x, y);
        assert_eq!(s.hi(), 1.0);
        assert_eq!(s.lo(), f64::EPSILON / 4.0);
    }

    #[test]
    fn directed_add_brackets_nearest() {
        let x = Dd::new(0.1, 0.0);
        let y = Dd::new(0.2, 1e-25);
        let lo = add_dir::<Rd>(x, y);
        let hi = add_dir::<Ru>(x, y);
        let rn = add_dir::<Rn>(x, y);
        assert!(lo.le(&rn) && rn.le(&hi));
    }

    #[test]
    fn mul_is_much_more_accurate_than_f64() {
        // (1 + eps) * (1 - eps) = 1 - eps^2: exact in dd.
        let a = Dd::from(1.0 + f64::EPSILON);
        let b = Dd::from(1.0 - f64::EPSILON);
        let p = mul_dir::<Rn>(a, b);
        assert_eq!(p.hi(), 1.0);
        assert_eq!(p.lo(), -(f64::EPSILON * f64::EPSILON));
    }

    #[test]
    fn div_times_back_recovers() {
        let x = Dd::from(1.0);
        let y = Dd::from(3.0);
        let q = div_rn(x, y);
        let back = mul_dir::<Rn>(q, y);
        let err = (back - Dd::ONE).abs();
        assert!(err.to_f64() < 1e-31, "err = {err}");
    }

    #[test]
    fn div_bounds_contain_quotient() {
        let cases = [(1.0, 3.0), (-7.0, 11.0), (1e200, 3e-100), (5.0, -0.3)];
        for (a, b) in cases {
            let (lo, hi) = div_bounds(Dd::from(a), Dd::from(b));
            let q = div_rn(Dd::from(a), Dd::from(b));
            assert!(lo.le(&q) && q.le(&hi), "{a}/{b}: {lo} {q} {hi}");
            assert!(lo.lt(&hi));
        }
        let (lo, hi) = div_bounds(Dd::ZERO, Dd::from(2.0));
        assert!(lo.is_zero() && hi.is_zero());
    }

    #[test]
    fn sqrt_bounds_contain_root() {
        for v in [2.0, 0.5, 9.0, 1e300, 1e-300] {
            let (lo, hi) = sqrt_bounds(Dd::from(v));
            let s = sqrt_rn(Dd::from(v));
            assert!(lo.le(&s) && s.le(&hi), "sqrt({v})");
            // Squaring the bounds brackets v.
            let lo2 = mul_dir::<Rd>(lo, lo);
            let hi2 = mul_dir::<Ru>(hi, hi);
            assert!(lo2.le(&Dd::from(v)) && Dd::from(v).le(&hi2), "sqrt({v}) squared");
        }
        assert!(sqrt_bounds(Dd::from(-1.0)).0.is_nan());
        assert!(sqrt_rn(Dd::ZERO).is_zero());
    }

    #[test]
    fn mul_f64_matches_full_mul() {
        let x = Dd::new(std::f64::consts::PI, 1.2246467991473532e-16);
        let p1 = mul_f64_dir::<Rn>(x, 3.0);
        let p2 = mul_dir::<Rn>(x, Dd::from(3.0));
        let d = (p1 - p2).abs();
        assert!(d.to_f64() < 1e-30);
    }
}
