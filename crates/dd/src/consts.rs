//! Double-double constants (high and low words of well-known reals).
//!
//! Values follow the standard QD/CRlibm tables; e.g. the paper quotes
//! `pi_h = 3.141592653589793116` and `pi_l = 1.10306377366009811247e-16·...`
//! — these are exactly the pairs below.
//!
//! The high words are deliberately the f64 roundings of the underlying
//! reals and the printed digits deliberately exceed f64 precision (they
//! identify the exact binary value): both lints below would "correct"
//! the table into something wrong.
#![allow(clippy::approx_constant, clippy::excessive_precision)]

use crate::dd::Dd;

/// π to double-double precision.
pub const DD_PI: Dd = dd(3.141592653589793116e0, 1.224646799147353207e-16);
/// π/2.
pub const DD_PI_2: Dd = dd(1.570796326794896558e0, 6.123233995736766036e-17);
/// π/4.
pub const DD_PI_4: Dd = dd(7.853981633974482790e-1, 3.061616997868383018e-17);
/// 2/π.
pub const DD_2_PI: Dd = dd(6.366197723675813824e-1, -3.935735335036497176e-17);
/// ln 2.
pub const DD_LN2: Dd = dd(6.931471805599452862e-1, 2.319046813846299558e-17);
/// log2 e.
pub const DD_LOG2E: Dd = dd(1.442695040888963407e0, 2.035527374093103311e-17);
/// Euler's number e.
pub const DD_E: Dd = dd(2.718281828459045091e0, 1.445646891729250158e-16);
/// √2.
pub const DD_SQRT2: Dd = dd(1.414213562373095145e0, -9.667293313452913451e-17);

const fn dd(hi: f64, lo: f64) -> Dd {
    // Component pairs above are taken from verified tables and satisfy the
    // non-overlap invariant by construction.
    // (Dd's fields are private to this crate; this helper is the one
    // sanctioned constructor for verified constant pairs.)
    unsafe_const_new(hi, lo)
}

const fn unsafe_const_new(hi: f64, lo: f64) -> Dd {
    // No unsafety involved — the name stresses that the invariant is
    // asserted by the table's provenance, not checked here.
    Dd::const_from_verified_parts(hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::mul_dir;
    use igen_round::Rn;

    #[test]
    fn constants_satisfy_invariant() {
        for c in [DD_PI, DD_PI_2, DD_PI_4, DD_2_PI, DD_LN2, DD_LOG2E, DD_E, DD_SQRT2] {
            let (h, l) = igen_round::two_sum(c.hi(), c.lo());
            assert_eq!((h, l), (c.hi(), c.lo()), "invariant for {c}");
        }
    }

    #[test]
    fn constants_are_consistent() {
        // pi/2 * 2 == pi to dd accuracy.
        let two_pi_2 = mul_dir::<Rn>(DD_PI_2, crate::Dd::from(2.0));
        let d = (two_pi_2 - DD_PI).abs();
        assert!(d.to_f64() < 1e-31);
        // sqrt2^2 == 2 to dd accuracy.
        let two = mul_dir::<Rn>(DD_SQRT2, DD_SQRT2);
        assert!((two - crate::Dd::from(2.0)).abs().to_f64() < 1e-31);
        // ln2 * log2e == 1 to dd accuracy.
        let one = mul_dir::<Rn>(DD_LN2, DD_LOG2E);
        assert!((one - crate::Dd::ONE).abs().to_f64() < 1e-31);
        // 2/pi * pi/2 == 1.
        let one2 = mul_dir::<Rn>(DD_2_PI, DD_PI_2);
        assert!((one2 - crate::Dd::ONE).abs().to_f64() < 1e-31);
    }

    #[test]
    fn pi_matches_f64_pi() {
        assert_eq!(DD_PI.hi(), std::f64::consts::PI);
        assert_eq!(DD_E.hi(), std::f64::consts::E);
        assert_eq!(DD_SQRT2.hi(), std::f64::consts::SQRT_2);
        assert_eq!(DD_LN2.hi(), std::f64::consts::LN_2);
    }
}
