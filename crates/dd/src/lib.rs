//! `igen-dd`: double-double (double-word) arithmetic, in round-to-nearest
//! and in the directed-rounding variants that make sound double-double
//! *intervals* possible (Section VI-A and Lemma 1 of the IGen paper).
//!
//! A double-double number is an unevaluated sum `hi + lo` of two binary64
//! values whose significands do not overlap, giving at least 106 bits of
//! precision while keeping the binary64 exponent range.
//!
//! The algorithms are the most accurate ones in the literature
//! (Joldes–Muller–Popescu, as cited by the paper), written once generically
//! over the [`igen_round::Rounded`] trait:
//!
//! * instantiated at [`igen_round::Rn`] they are the classical
//!   round-to-nearest double-double operations;
//! * instantiated at [`igen_round::Ru`] / [`igen_round::Rd`] they compute
//!   guaranteed upper / lower bounds of the exact result (Lemma 1), which
//!   is exactly what `igen-interval` uses for its `ddi` endpoints.
//!
//! # Example
//!
//! ```
//! use igen_dd::Dd;
//! use igen_round::{Rd, Ru};
//!
//! let x = Dd::from(0.1);
//! let y = Dd::from(0.2);
//! let lo = igen_dd::add_dir::<Rd>(x, y);
//! let hi = igen_dd::add_dir::<Ru>(x, y);
//! let rn = x + y;
//! assert!(lo.to_f64() <= rn.to_f64() && rn.to_f64() <= hi.to_f64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod consts;
mod dd;

pub use arith::{
    add_dir, div_bounds, div_rn, fast_two_sum_dir, mul_dir, mul_f64_dir, sqrt_bounds, sqrt_rn,
    sub_dir, two_prod_dir, two_sum_dir, DIV_REL_ERR_EXP, SQRT_REL_ERR_EXP,
};
pub use consts::{DD_2_PI, DD_E, DD_LN2, DD_LOG2E, DD_PI, DD_PI_2, DD_PI_4, DD_SQRT2};
pub use dd::Dd;
