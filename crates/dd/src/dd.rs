//! The [`Dd`] type: constructors, accessors, comparisons and the
//! round-to-nearest operator impls.

use crate::arith;
use igen_round::Rn;

/// A double-double number: the unevaluated sum of two binary64 values with
/// non-overlapping significands (`hi = RN(hi + lo)`).
///
/// Provides ~106 bits of precision in the binary64 exponent range. The
/// arithmetic operator impls use round-to-nearest; the directed-rounding
/// kernels used for sound intervals live in the crate root
/// ([`crate::add_dir`] and friends).
///
/// # Example
///
/// ```
/// use igen_dd::Dd;
/// let a = Dd::from(1.0) / Dd::from(3.0);
/// let b = a * Dd::from(3.0);
/// // The error of 1/3 * 3 in double-double is below 2^-105:
/// assert!((b - Dd::from(1.0)).abs().to_f64() < 1e-31);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dd {
    hi: f64,
    lo: f64,
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };
    /// Positive infinity.
    pub const INFINITY: Dd = Dd { hi: f64::INFINITY, lo: 0.0 };
    /// Negative infinity.
    pub const NEG_INFINITY: Dd = Dd { hi: f64::NEG_INFINITY, lo: 0.0 };
    /// Not-a-number.
    pub const NAN: Dd = Dd { hi: f64::NAN, lo: f64::NAN };

    /// Builds a double-double from raw components, renormalizing so that
    /// `hi = RN(hi + lo)`.
    pub fn new(hi: f64, lo: f64) -> Dd {
        let (h, l) = igen_round::two_sum(hi, lo);
        Dd { hi: h, lo: l }
    }

    /// Const constructor for table-verified constant pairs (used by
    /// [`crate::consts`]; not part of the public API surface).
    #[doc(hidden)]
    pub(crate) const fn const_from_verified_parts(hi: f64, lo: f64) -> Dd {
        Dd { hi, lo }
    }

    /// Builds from components already known to be (pseudo-)normalized:
    /// `|lo|` no larger than one ulp of `hi`. This is the invariant the
    /// error-free transformations guarantee in round-to-nearest, and that
    /// the directed-rounding kernels of Graillat–Jézéquel guarantee up to
    /// one ulp (directed FastTwoSum outputs need not be RN-canonical).
    #[inline]
    pub fn from_parts_unchecked(hi: f64, lo: f64) -> Dd {
        debug_assert!(
            hi.is_nan()
                || !hi.is_finite()
                || hi == 0.0
                || lo == 0.0
                || lo.abs() <= igen_round::ulp(hi) * 4.0
                || hi.abs() < 1e-290, // deep-subnormal tails are only bounds
            "overlapping components: ({hi}, {lo})"
        );
        Dd { hi, lo }
    }

    /// The high (leading) component, `RN(self)` as an f64.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The low (trailing) component.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Rounds to a single binary64 (the high component, by the invariant).
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.hi
    }

    /// True if either component is NaN.
    pub fn is_nan(&self) -> bool {
        self.hi.is_nan() || self.lo.is_nan()
    }

    /// True if the value is finite.
    pub fn is_finite(&self) -> bool {
        self.hi.is_finite() && self.lo.is_finite()
    }

    /// True for exact (double-double) zero.
    pub fn is_zero(&self) -> bool {
        self.hi == 0.0 && self.lo == 0.0
    }

    /// Sign predicate: negative iff the leading component is negative
    /// (the invariant makes `hi` carry the sign except at zero).
    pub fn is_sign_negative(&self) -> bool {
        if self.hi == 0.0 {
            self.hi.is_sign_negative()
        } else {
            self.hi < 0.0
        }
    }

    /// Negation (exact).
    #[must_use]
    pub fn neg(&self) -> Dd {
        Dd { hi: -self.hi, lo: -self.lo }
    }

    /// Absolute value (exact).
    #[must_use]
    pub fn abs(&self) -> Dd {
        if self.is_sign_negative() {
            self.neg()
        } else {
            *self
        }
    }

    /// Exact scaling by a power of two (no rounding unless over/underflow).
    #[must_use]
    pub fn scale2(&self, n: i32) -> Dd {
        let f = pow2(n);
        Dd { hi: self.hi * f, lo: self.lo * f }
    }

    /// Square root in round-to-nearest (see [`crate::sqrt_rn`]).
    #[must_use]
    pub fn sqrt(&self) -> Dd {
        arith::sqrt_rn(*self)
    }

    /// Numeric comparison (NaN compares as `None`).
    ///
    /// Both operands are first renormalized with an (exact) TwoSum so the
    /// comparison is also reliable for the pseudo-normalized outputs of
    /// the directed-rounding kernels; at worst an exact tie between values
    /// in adjacent binades is reported as an inequality, which is harmless
    /// for min/max selection.
    pub fn cmp_num(&self, other: &Dd) -> Option<core::cmp::Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        let (ah, al) = igen_round::two_sum(self.hi, self.lo);
        let (bh, bl) = igen_round::two_sum(other.hi, other.lo);
        match ah.partial_cmp(&bh) {
            Some(core::cmp::Ordering::Equal) => al.partial_cmp(&bl),
            o => o,
        }
    }

    /// `self < other` (false on NaN).
    pub fn lt(&self, other: &Dd) -> bool {
        self.cmp_num(other) == Some(core::cmp::Ordering::Less)
    }

    /// `self <= other` (false on NaN).
    pub fn le(&self, other: &Dd) -> bool {
        matches!(
            self.cmp_num(other),
            Some(core::cmp::Ordering::Less) | Some(core::cmp::Ordering::Equal)
        )
    }

    /// Componentwise minimum by value (NaN-propagating on the left).
    #[must_use]
    pub fn min(self, other: Dd) -> Dd {
        if self.le(&other) {
            self
        } else {
            other
        }
    }

    /// Componentwise maximum by value.
    #[must_use]
    pub fn max(self, other: Dd) -> Dd {
        if other.le(&self) {
            self
        } else {
            other
        }
    }
}

/// `2^n` as f64 (clamped to the finite range).
fn pow2(n: i32) -> f64 {
    if n >= 1024 {
        f64::INFINITY
    } else if n >= -1022 {
        f64::from_bits(((1023 + n) as u64) << 52)
    } else if n >= -1074 {
        f64::from_bits(1u64 << (n + 1074))
    } else {
        0.0
    }
}

impl From<f64> for Dd {
    /// Exact injection of a binary64 value.
    fn from(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }
}

impl From<i32> for Dd {
    /// Exact injection of a 32-bit integer.
    fn from(x: i32) -> Dd {
        Dd { hi: x as f64, lo: 0.0 }
    }
}

impl core::ops::Add for Dd {
    type Output = Dd;
    fn add(self, rhs: Dd) -> Dd {
        arith::add_dir::<Rn>(self, rhs)
    }
}

impl core::ops::Sub for Dd {
    type Output = Dd;
    fn sub(self, rhs: Dd) -> Dd {
        arith::sub_dir::<Rn>(self, rhs)
    }
}

impl core::ops::Mul for Dd {
    type Output = Dd;
    fn mul(self, rhs: Dd) -> Dd {
        arith::mul_dir::<Rn>(self, rhs)
    }
}

impl core::ops::Div for Dd {
    type Output = Dd;
    fn div(self, rhs: Dd) -> Dd {
        arith::div_rn(self, rhs)
    }
}

impl core::ops::Neg for Dd {
    type Output = Dd;
    fn neg(self) -> Dd {
        Dd::neg(&self)
    }
}

impl core::fmt::Display for Dd {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:e}{:+e}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let d = Dd::new(1.0, 1.0);
        assert_eq!(d.hi(), 2.0);
        assert_eq!(d.lo(), 0.0);
        let d = Dd::new(1e16, 1.0);
        assert_eq!(d.hi(), 1e16);
        assert_eq!(d.lo(), 1.0);
    }

    #[test]
    fn sign_and_abs() {
        assert!(Dd::from(-2.0).is_sign_negative());
        assert!(!Dd::from(2.0).is_sign_negative());
        assert_eq!(Dd::from(-2.0).abs().to_f64(), 2.0);
        // Negative-zero dd.
        assert!(Dd::from(-0.0).is_sign_negative());
    }

    #[test]
    fn comparisons_use_both_components() {
        let a = Dd::new(1.0, 1e-20);
        let b = Dd::new(1.0, 2e-20);
        assert!(a.lt(&b));
        assert!(a.le(&a));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn scale2_exact() {
        let x = Dd::new(3.0, 1e-20);
        let y = x.scale2(-4);
        assert_eq!(y.hi(), 3.0 / 16.0);
        assert_eq!(y.lo(), 1e-20 / 16.0);
    }

    #[test]
    fn display_roundtrips_visually() {
        let s = format!("{}", Dd::new(1.0, f64::EPSILON / 4.0));
        assert!(s.contains("1e0"), "{s}");
    }
}
