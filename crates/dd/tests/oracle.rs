//! Property tests of the double-double kernels against the 256-bit oracle.
//!
//! This is the machine-checked version of the paper's Lemma 1: running the
//! double-double algorithms with upward rounding yields an upper bound of
//! the exact result, and with downward rounding a lower bound.

use igen_dd::{add_dir, div_bounds, div_rn, mul_dir, sqrt_bounds, sub_dir, Dd};
use igen_mpf::{Mpf, Rm};
use igen_round::{Rd, Rn, Ru};
use proptest::prelude::*;

/// A random double-double built from a base double and a small tail.
fn any_dd() -> impl Strategy<Value = Dd> {
    (
        prop_oneof![
            3 => -1e12f64..1e12,
            1 => -1e-3f64..1e-3,
            1 => any::<f64>().prop_filter("finite normal-ish", |x| x.is_finite()
                && x.abs() < 1e250 && (x.abs() > 1e-250 || *x == 0.0)),
        ],
        -1.0f64..1.0,
    )
        .prop_map(|(hi, frac)| {
            // A tail strictly below hi's ulp keeps the dd well formed.
            let tail = frac * igen_round::ulp(hi) * 0.49;
            Dd::new(hi, if tail.is_finite() { tail } else { 0.0 })
        })
}

fn to_mpf(x: Dd) -> Mpf {
    Mpf::from_dd(x.hi(), x.lo(), Rm::Nearest) // exact for well-formed dd
}

/// Assert `lo <= exact <= hi` in the oracle's arithmetic.
fn assert_brackets(tag: &str, lo: Dd, exact: &Mpf, hi: Dd) -> Result<(), TestCaseError> {
    use core::cmp::Ordering::Greater;
    use core::cmp::Ordering::Less;
    let lo_m = to_mpf(lo);
    let hi_m = to_mpf(hi);
    prop_assert!(
        lo_m.cmp_num(exact) != Some(Greater),
        "{tag}: lower bound {lo} above exact {exact}"
    );
    prop_assert!(hi_m.cmp_num(exact) != Some(Less), "{tag}: upper bound {hi} below exact {exact}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    #[test]
    fn lemma1_addition(x in any_dd(), y in any_dd()) {
        let exact = to_mpf(x).add(&to_mpf(y), Rm::Nearest); // 256 bits: exact for dd ranges
        let lo = add_dir::<Rd>(x, y);
        let hi = add_dir::<Ru>(x, y);
        assert_brackets("dd add", lo, &exact, hi)?;
        // The nearest version agrees with the exact sum to ~2^-105 rel.
        // (it need not lie inside the directed bracket, whose width is of
        // the same order as the RN error).
        let rn = add_dir::<Rn>(x, y);
        let err = to_mpf(rn).sub(&exact, Rm::Nearest).abs();
        let tol = exact.abs().scale2(-100).add(&Mpf::from_f64(1e-320), Rm::Up);
        prop_assert!(err.cmp_num(&tol) != Some(core::cmp::Ordering::Greater));
    }

    #[test]
    fn lemma1_subtraction(x in any_dd(), y in any_dd()) {
        let exact = to_mpf(x).sub(&to_mpf(y), Rm::Nearest);
        assert_brackets("dd sub", sub_dir::<Rd>(x, y), &exact, sub_dir::<Ru>(x, y))?;
    }

    #[test]
    fn lemma1_multiplication(x in any_dd(), y in any_dd()) {
        let exact = to_mpf(x).mul(&to_mpf(y), Rm::Nearest); // 212 bits < 256: exact
        assert_brackets("dd mul", mul_dir::<Rd>(x, y), &exact, mul_dir::<Ru>(x, y))?;
    }

    #[test]
    fn division_bounds_contain_exact(x in any_dd(), y in any_dd()) {
        prop_assume!(!y.is_zero() && y.hi().abs() > 1e-200);
        let (lo, hi) = div_bounds(x, y);
        prop_assume!(lo.is_finite() && hi.is_finite());
        // Oracle directed quotients bracket the exact one.
        let q_lo = to_mpf(x).div(&to_mpf(y), Rm::Down);
        let q_hi = to_mpf(x).div(&to_mpf(y), Rm::Up);
        assert_brackets("dd div lo", lo, &q_lo, hi)?;
        assert_brackets("dd div hi", lo, &q_hi, hi)?;
    }

    #[test]
    fn division_rn_accuracy(x in any_dd(), y in any_dd()) {
        prop_assume!(!y.is_zero() && y.hi().abs() > 1e-200 && x.hi().abs() > 1e-200);
        let q = div_rn(x, y);
        // The 2^-100 relative bound needs the trailing component to stay
        // normal, i.e. |q| comfortably above 2^-969; smaller quotients are
        // covered by div_bounds' absolute floor instead.
        prop_assume!(q.is_finite() && q.hi().abs() > 1e-270);
        // Relative error below 2^-100 (the bound div_bounds relies on).
        let exact = to_mpf(x).div(&to_mpf(y), Rm::Nearest);
        let err = to_mpf(q).sub(&exact, Rm::Nearest).abs();
        let tol = exact.abs().scale2(-100);
        prop_assert!(
            err.cmp_num(&tol) != Some(core::cmp::Ordering::Greater),
            "dd div err too large: q={q} exact={exact}"
        );
    }

    #[test]
    fn sqrt_bounds_contain_exact(x in any_dd()) {
        let x = x.abs();
        let (lo, hi) = sqrt_bounds(x);
        let s_lo = to_mpf(x).sqrt(Rm::Down);
        let s_hi = to_mpf(x).sqrt(Rm::Up);
        assert_brackets("dd sqrt", lo, &s_lo, hi)?;
        assert_brackets("dd sqrt", lo, &s_hi, hi)?;
    }

    #[test]
    fn mul_rn_relative_error(x in any_dd(), y in any_dd()) {
        prop_assume!(x.hi().abs() > 1e-100 && y.hi().abs() > 1e-100);
        prop_assume!(x.hi().abs() < 1e100 && y.hi().abs() < 1e100);
        let p = mul_dir::<Rn>(x, y);
        let exact = to_mpf(x).mul(&to_mpf(y), Rm::Nearest);
        let err = to_mpf(p).sub(&exact, Rm::Nearest).abs();
        let tol = exact.abs().scale2(-100);
        prop_assert!(err.cmp_num(&tol) != Some(core::cmp::Ordering::Greater));
    }
}
