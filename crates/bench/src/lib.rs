//! `igen-bench`: the experiment harness regenerating every table and
//! figure of the paper's evaluation (Section VII). See DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! Each binary prints the same rows/series the paper reports and writes
//! CSV files under `results/`, mirroring the artifact's
//! `run_benchmarks.py` outputs. Absolute numbers differ from the paper's
//! Xeon E-2176M (the rounding substrate here is software EFTs); the
//! comparisons reproduce the paper's *shapes*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gauntlet;
pub mod trajectory;

use std::time::{Duration, Instant};

/// Nominal clock of the paper's machine (2.7 GHz Xeon E-2176M), used to
/// convert measured nanoseconds into "per cycle" figures comparable to
/// Fig. 8/9.
pub const NOMINAL_GHZ: f64 = 2.7;

/// Median-of-`reps` wall-clock timing of `f` (the paper: "every
/// measurement was repeated 30 times … and the median of the runtime is
/// taken"; the default here is smaller to keep the harness fast — pass
/// `--full` to the binaries for 30).
pub fn median_time<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps >= 1);
    // Warm cache (the paper: "all tests are run with warm cache").
    f();
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Interval-ops-per-cycle estimate at the nominal clock.
pub fn iops_per_cycle(iops: u64, t: Duration) -> f64 {
    let cycles = t.as_secs_f64() * NOMINAL_GHZ * 1e9;
    iops as f64 / cycles
}

/// Writes a CSV file under `results/` (created on demand).
///
/// # Panics
///
/// Panics on I/O failure (harness context).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    write_csv_with_comments(name, &[], header, rows);
}

/// [`write_csv`] with leading `# `-prefixed comment lines (provenance
/// notes such as the recording host) above the column header.
///
/// # Panics
///
/// Panics on I/O failure (harness context).
pub fn write_csv_with_comments(name: &str, comments: &[String], header: &str, rows: &[String]) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join(name);
    let mut out = String::new();
    for c in comments {
        out.push_str("# ");
        out.push_str(c);
        out.push('\n');
    }
    out.push_str(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    std::fs::write(&path, out).expect("write csv");
    eprintln!("wrote {}", path.display());
}

/// One-line description of the recording host for CSV provenance
/// comments: core count, architecture and OS.
pub fn host_line(cores: usize) -> String {
    format!("host: {cores} cores, {}, {}", std::env::consts::ARCH, std::env::consts::OS)
}

/// Whether recording performance CSVs is meaningful in this build.
///
/// The committed `results/*.csv` numbers measure the *uninstrumented*
/// hot paths; a build with the `telemetry` feature unified in carries
/// live counters/histograms in the kernels, so recording from it would
/// silently mix that tax into the perf record. The benches still *run*
/// (timings print either way) — only the CSV write is skipped, with an
/// explanation.
pub fn perf_recording_allowed() -> bool {
    if igen_telemetry::COMPILED_IN {
        eprintln!(
            "igen-bench: the `telemetry` feature is compiled in; skipping CSV \
             recording so instrumented timings never land in results/ \
             (re-run from a default-features build to record)"
        );
        return false;
    }
    true
}

/// True when `--full` was passed: paper-size sweeps and 30 repetitions.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Repetition count for the current mode.
pub fn reps() -> usize {
    if full_mode() {
        30
    } else {
        5
    }
}

/// A black-box sink preventing the optimizer from discarding results.
pub fn sink<T>(v: T) -> T {
    std::hint::black_box(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_positive_and_bounded() {
        let t = median_time(5, || {
            let mut s = 0u64;
            for i in 0..1000u64 {
                s = s.wrapping_add(std::hint::black_box(i));
            }
            let _ = std::hint::black_box(s);
        });
        assert!(t.as_nanos() > 0);
        assert!(t.as_secs() < 1);
    }

    #[test]
    fn iops_per_cycle_math() {
        // 2.7e9 ops in one second at 2.7 GHz = 1 op/cycle.
        let ipc = iops_per_cycle(2_700_000_000, Duration::from_secs(1));
        assert!((ipc - 1.0).abs() < 1e-12);
        let ipc = iops_per_cycle(2_700_000_000, Duration::from_millis(500));
        assert!((ipc - 2.0).abs() < 1e-12);
    }

    /// The CSV tests switch the process-wide working directory, so they
    /// must not interleave.
    static CWD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn csv_written_under_results() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("igen_bench_test_csv");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        write_csv("unit_test.csv", "a,b", &["1,2".into(), "3,4".into()]);
        let body = std::fs::read_to_string("results/unit_test.csv").unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        std::env::set_current_dir(old).unwrap();
    }

    #[test]
    fn csv_comments_precede_header() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("igen_bench_test_csv_comments");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        write_csv_with_comments("unit_test2.csv", &[host_line(4)], "a,b", &["1,2".into()]);
        let body = std::fs::read_to_string("results/unit_test2.csv").unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(body.starts_with("# host: 4 cores, "), "{body}");
        assert!(body.ends_with("a,b\n1,2\n"), "{body}");
    }

    #[test]
    fn perf_recording_tracks_telemetry_feature() {
        // Default builds record; builds with telemetry unified in don't.
        assert_eq!(perf_recording_allowed(), !igen_telemetry::COMPILED_IN);
    }

    #[test]
    fn sink_is_identity() {
        assert_eq!(sink(42), 42);
        assert_eq!(sink("x"), "x");
    }
}
