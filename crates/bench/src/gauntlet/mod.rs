//! The cross-library benchmark gauntlet (arXiv 2110.06215 methodology):
//! every interval implementation in the workspace runs through one
//! harness over one shared kernel set, producing a machine-readable
//! `BENCH_<pr>.json` perf/accuracy trajectory that CI gates on.
//!
//! # Architecture
//!
//! * The [`IntervalBackend`] trait lives in `igen_baselines::backend`
//!   and speaks plain f64 endpoint buffers ([`IvalVec`]).
//! * Each backend adapter is a **one-file plug-in** in this module tree
//!   ([`numeric`] covers every `igen_kernels::Numeric` type in one
//!   generic file; [`packed`] is the `LaneOps`/`igen-batch` SIMD path;
//!   [`mpf`] is the 256-bit oracle), registered in the single
//!   [`registry`] table below.
//! * [`run`] times every backend over every [`Kernel`] on identical
//!   inputs and returns a [`Report`]; [`check_regression`] compares two
//!   reports for the CI gate.
//!
//! # Methodology notes
//!
//! Speed is recorded as median ns per interval operation; the headline
//! comparison column is **speedup versus the `naive` baseline on the
//! same run**, which is host-independent and therefore comparable
//! between the committed full-mode baseline and a CI smoke run.
//! Accuracy is the mean relative output width, which is deterministic
//! for fixed inputs: smoke and full mode share sizes and seeds (only the
//! repetition count differs), so the width columns must reproduce
//! exactly across hosts and modes.

pub mod mpf;
pub mod numeric;
pub mod packed;
pub mod vm;

pub use igen_baselines::backend::{IntervalBackend, IvalVec, Kernel, KernelCase};

use igen_baselines::{BoostI, FilibI, GaolI, NaiveI};
use igen_interval::{DdI, F64I};
use igen_kernels::ffnn::Ffnn;
use igen_kernels::{henon_iops, linalg, workload};
use igen_telemetry::json::{self, Json};

/// The PR index stamped into the default trajectory file name
/// (`results/BENCH_<pr>.json`). Bump when recording a new PR's baseline.
pub const CURRENT_PR: u32 = 8;

/// JSON schema tag; bump on incompatible report changes.
pub const SCHEMA: &str = "igen-bench-gauntlet/v1";

/// Default relative speed-regression tolerance for [`check_regression`]:
/// a packed-path kernel fails when its speedup over `naive` drops below
/// `(1 - tol)` of the baseline's. Generous because the committed
/// baseline and the CI runner are different machines.
pub const DEFAULT_SPEED_TOL: f64 = 0.5;

/// Default relative width-regression tolerance: widths are deterministic
/// for the fixed gauntlet inputs, so any growth is a real accuracy
/// regression; the epsilon only absorbs formatting round-trips.
pub const DEFAULT_WIDTH_TOL: f64 = 1e-6;

/// The single backend table. Adding a library to the gauntlet is one
/// adapter file plus one line here (see README "Benchmark gauntlet").
/// `naive` must stay first: it is the speedup denominator and is always
/// run.
pub fn registry() -> Vec<Box<dyn IntervalBackend>> {
    vec![
        Box::new(numeric::NumericBackend::<NaiveI>::new(
            "naive",
            "switched-rounding-mode emulation, 1-ulp defensive widening",
        )),
        Box::new(numeric::NumericBackend::<BoostI>::new(
            "boost",
            "Boost.Interval-style (lo,hi) pair, nine-case sign-split ops",
        )),
        Box::new(numeric::NumericBackend::<FilibI>::new(
            "filib",
            "Filib++-style containment sets, special-value screening",
        )),
        Box::new(numeric::NumericBackend::<GaolI>::new(
            "gaol",
            "Gaol-style negated-lower pairs behind a precompiled call boundary",
        )),
        Box::new(mpf::MpfBackend),
        Box::new(numeric::NumericBackend::<F64I>::new(
            "igen-f64",
            "IGen production F64I: branch-free negated-lower scalar ops",
        )),
        Box::new(numeric::NumericBackend::<DdI>::new(
            "igen-dd",
            "IGen production DdI: double-double endpoints, ~2^-106 widths",
        )),
        Box::new(packed::PackedBackend),
        Box::new(vm::VmBackend),
    ]
}

/// Names in [`registry`] order (for CLI help and error messages).
pub fn backend_names() -> Vec<&'static str> {
    registry().iter().map(|b| b.name()).collect()
}

// Shared kernel sizes. Deliberately identical in smoke and full mode so
// the (deterministic) width columns are comparable across runs — the
// modes differ only in repetition count. Sized so the slowest contender
// (the 256-bit mpf oracle) finishes a full run in seconds.
const DOT_N: usize = 64;
const DOT_BATCH: usize = 16;
const MVM_N: usize = 24;
const MVM_BATCH: usize = 8;
const GEMM_N: usize = 16;
const HENON_ITERS: usize = 20;
const HENON_BATCH: usize = 16;
const FFNN_WIDTH: usize = 8;
const FFNN_BATCH: usize = 4;
const FFNN_SEED: u64 = 7;

fn ivals(seed: u64, len: usize, lo: f64, hi: f64) -> IvalVec {
    let mut rng = workload::rng(seed);
    let pts = workload::random_points(&mut rng, len, lo, hi);
    let xs = workload::intervals_1ulp(&pts);
    let mut v = IvalVec::with_capacity(len);
    for x in &xs {
        v.push(x.lo(), x.hi());
    }
    v
}

/// Inner repetition count per timed sample: each median_time sample
/// executes the kernel this many times so a sample lasts long enough
/// (roughly half a millisecond for the fast backends) that scheduler
/// preemptions amortize instead of doubling a sample. Fixed per kernel
/// (not adaptive) so every backend and every run times the same work.
fn inner_iters(kernel: Kernel) -> usize {
    match kernel {
        Kernel::Dot => 64,
        Kernel::Mvm => 8,
        Kernel::Gemm => 8,
        Kernel::Henon => 96,
        Kernel::Ffnn => 1,
    }
}

/// The five shared kernel cases, with deterministic inputs.
pub fn cases() -> Vec<KernelCase> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        let (mut n, mut batch, mut iters) = (0, 0, 0);
        let (x, y, w);
        match kernel {
            Kernel::Dot => {
                (n, batch) = (DOT_N, DOT_BATCH);
                x = ivals(0x601, batch * n, -2.0, 2.0);
                y = ivals(0x602, batch * n, -2.0, 2.0);
                w = IvalVec::new();
            }
            Kernel::Mvm => {
                (n, batch) = (MVM_N, MVM_BATCH);
                x = ivals(0x611, batch * n, -2.0, 2.0);
                y = ivals(0x612, batch * n, -2.0, 2.0);
                w = ivals(0x613, n * n, -2.0, 2.0);
            }
            Kernel::Gemm => {
                n = GEMM_N;
                x = ivals(0x621, n * n, -2.0, 2.0);
                y = ivals(0x622, n * n, -2.0, 2.0);
                w = ivals(0x623, n * n, -2.0, 2.0);
            }
            Kernel::Henon => {
                (batch, iters) = (HENON_BATCH, HENON_ITERS);
                // The Hénon attractor basin: orbits from outside diverge.
                x = ivals(0x631, batch, -0.5, 0.5);
                y = ivals(0x632, batch, -0.5, 0.5);
                w = IvalVec::new();
            }
            Kernel::Ffnn => {
                (n, batch) = (FFNN_WIDTH, FFNN_BATCH);
                // Point inputs: the synthetic digits, one per item.
                let mut v = IvalVec::new();
                for b in 0..batch as u64 {
                    for p in Ffnn::synthetic_input(b) {
                        v.push(p, p);
                    }
                }
                x = v;
                y = IvalVec::new();
                w = IvalVec::new();
            }
        }
        out.push(KernelCase { kernel, n, batch, iters, ffnn_seed: FFNN_SEED, x, y, w });
    }
    out
}

/// Interval operations executed by one run of `case` (denominator of the
/// ns/op column).
pub fn case_iops(case: &KernelCase) -> u64 {
    match case.kernel {
        Kernel::Dot => case.batch as u64 * linalg::dot_iops(case.n),
        Kernel::Mvm => case.batch as u64 * 2 * (case.n * case.n) as u64,
        Kernel::Gemm => linalg::gemm_iops(case.n),
        Kernel::Henon => case.batch as u64 * henon_iops(case.iters),
        Kernel::Ffnn => case.batch as u64 * Ffnn::synthetic(case.n, case.ffnn_seed).iops(),
    }
}

/// One backend × kernel measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Backend registry name.
    pub backend: String,
    /// Kernel name.
    pub kernel: String,
    /// Whether the backend routes through the packed SIMD path.
    pub packed_path: bool,
    /// Median wall-clock nanoseconds of one kernel run.
    pub median_ns: f64,
    /// `median_ns / case_iops`: nanoseconds per interval operation.
    pub ns_per_op: f64,
    /// `naive_ns_per_op / ns_per_op` on the same run (host-independent).
    pub speedup_vs_naive: f64,
    /// Mean relative width of the output intervals (deterministic).
    pub mean_rel_width: f64,
}

/// A full gauntlet run: the machine-readable `BENCH_<pr>.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// PR index of the trajectory entry.
    pub pr: u32,
    /// `"smoke"` or `"full"` (repetition count only; sizes are shared).
    pub mode: String,
    /// Recording host provenance (`igen_bench::host_line`).
    pub host: String,
    /// Detected SIMD dispatch backend on the recording host.
    pub simd_backend: String,
    /// Whether the recording binary had telemetry/profiling compiled
    /// in. Instrumented timings are tainted — `--check` refuses them as
    /// baselines (absent in pre-flag reports, parsed as `false`).
    pub instrumented: bool,
    /// Median-of-`reps` timing.
    pub reps: usize,
    /// All backend × kernel measurements.
    pub rows: Vec<Row>,
}

/// Runs the gauntlet: `filter` selects backends by registry name (empty
/// = all); the `naive` baseline always runs (it is the speedup
/// denominator). `reps` is the median-of repetition count.
///
/// For every backend×kernel pair, naive and backend samples are
/// *interleaved* (naive, backend, naive, backend, …) and the speedup is
/// the ratio of the two sample medians. Host frequency drift and
/// scheduler noise then hit numerator and denominator alike instead of
/// skewing whichever side happened to run during the bad window — the
/// property the `--check` gate's host-independence rests on.
pub fn run(filter: &[String], reps: usize, mode: &str) -> Report {
    let backends = registry();
    let selected: Vec<&Box<dyn IntervalBackend>> = backends
        .iter()
        .filter(|b| {
            b.name() == "naive" || filter.is_empty() || filter.iter().any(|f| f == b.name())
        })
        .collect();
    let naive = backends.iter().find(|b| b.name() == "naive").expect("naive registered");
    let all_cases = cases();
    let mut rows = Vec::new();
    for case in &all_cases {
        let iops = case_iops(case) as f64;
        let inner = inner_iters(case.kernel);
        let sample = |r: &mut dyn FnMut() -> IvalVec| {
            let t = std::time::Instant::now();
            for _ in 0..inner {
                crate::sink(r());
            }
            t.elapsed().as_secs_f64() * 1e9 / inner as f64
        };
        let median = |mut v: Vec<f64>| -> f64 {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        for b in &selected {
            let mut runner = b.instantiate(case);
            let mut naive_runner = naive.instantiate(case);
            // Warm caches on both sides before sampling.
            sample(&mut *naive_runner);
            sample(&mut *runner);
            let mut naive_samples = Vec::with_capacity(reps);
            let mut own_samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                naive_samples.push(sample(&mut *naive_runner));
                own_samples.push(sample(&mut *runner));
            }
            let out = runner();
            let median_ns = median(own_samples.clone());
            // The gated ratio uses the sample minima: scheduler noise is
            // strictly additive, so min-of-samples estimates the true
            // cost far more stably than the median on a busy host — and
            // the `--check` gate needs that stability.
            let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
            let speedup = if b.name() == "naive" {
                1.0 // the denominator, by definition
            } else {
                min(&naive_samples) / min(&own_samples)
            };
            rows.push(Row {
                backend: b.name().to_string(),
                kernel: case.kernel.name().to_string(),
                packed_path: b.packed_path(),
                median_ns,
                ns_per_op: median_ns / iops,
                speedup_vs_naive: speedup,
                mean_rel_width: out.mean_rel_width(),
            });
        }
    }
    Report {
        pr: CURRENT_PR,
        mode: mode.to_string(),
        host: crate::host_line(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
        simd_backend: igen_round::simd::detected_backend().to_string(),
        instrumented: igen_telemetry::COMPILED_IN,
        reps,
        rows,
    }
}

impl Report {
    /// Serializes to the committed `BENCH_<pr>.json` format: one row per
    /// line for reviewable diffs.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", json::escape(SCHEMA)));
        s.push_str(&format!("  \"pr\": {},\n", self.pr));
        s.push_str(&format!("  \"mode\": {},\n", json::escape(&self.mode)));
        s.push_str(&format!("  \"host\": {},\n", json::escape(&self.host)));
        s.push_str(&format!("  \"simd_backend\": {},\n", json::escape(&self.simd_backend)));
        s.push_str(&format!("  \"instrumented\": {},\n", self.instrumented));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": {}, \"kernel\": {}, \"packed_path\": {}, \
                 \"median_ns\": {:.1}, \"ns_per_op\": {:.4}, \"speedup_vs_naive\": {:.4}, \
                 \"mean_rel_width\": {:e}}}{}\n",
                json::escape(&r.backend),
                json::escape(&r.kernel),
                r.packed_path,
                r.median_ns,
                r.ns_per_op,
                r.speedup_vs_naive,
                r.mean_rel_width,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report written by [`Report::to_json`] (schema-checked).
    pub fn from_json(src: &str) -> Result<Report, String> {
        let v = json::parse(src)?;
        let schema = v.get("schema").and_then(Json::as_str).ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (expected '{SCHEMA}')"));
        }
        let field_str = |k: &str| -> Result<String, String> {
            Ok(v.get(k).and_then(Json::as_str).ok_or_else(|| format!("missing {k}"))?.to_string())
        };
        let rows_json = v.get("rows").and_then(Json::as_arr).ok_or("missing rows")?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, r) in rows_json.iter().enumerate() {
            let str_of = |k: &str| -> Result<String, String> {
                Ok(r.get(k)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("row {i}: missing {k}"))?
                    .to_string())
            };
            let num_of = |k: &str| -> Result<f64, String> {
                r.get(k).and_then(Json::as_f64).ok_or_else(|| format!("row {i}: missing {k}"))
            };
            rows.push(Row {
                backend: str_of("backend")?,
                kernel: str_of("kernel")?,
                packed_path: r
                    .get("packed_path")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("row {i}: missing packed_path"))?,
                median_ns: num_of("median_ns")?,
                ns_per_op: num_of("ns_per_op")?,
                speedup_vs_naive: num_of("speedup_vs_naive")?,
                mean_rel_width: num_of("mean_rel_width")?,
            });
        }
        Ok(Report {
            pr: v.get("pr").and_then(Json::as_u64).ok_or("missing pr")? as u32,
            mode: field_str("mode")?,
            host: field_str("host")?,
            simd_backend: field_str("simd_backend")?,
            // Absent before the flag existed: old baselines keep parsing
            // and count as uninstrumented.
            instrumented: v.get("instrumented").and_then(Json::as_bool).unwrap_or(false),
            reps: v.get("reps").and_then(Json::as_u64).ok_or("missing reps")? as usize,
            rows,
        })
    }

    /// Renders the human table (stdout companion of the JSON).
    pub fn render(&self) -> String {
        let mut s = format!(
            "benchmark gauntlet — PR {}, {} mode, {} reps\nhost: {} (simd: {}){}\n\n",
            self.pr,
            self.mode,
            self.reps,
            self.host,
            self.simd_backend,
            if self.instrumented { "\nWARNING: instrumented build — not a baseline" } else { "" },
        );
        s.push_str(&format!(
            "{:<12} {:<7} {:>6} {:>12} {:>10} {:>9}  {}\n",
            "backend", "kernel", "packed", "median_ns", "ns/op", "vs_naive", "mean_rel_width"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<12} {:<7} {:>6} {:>12.0} {:>10.2} {:>8.2}x  {:.3e}\n",
                r.backend,
                r.kernel,
                if r.packed_path { "yes" } else { "no" },
                r.median_ns,
                r.ns_per_op,
                r.speedup_vs_naive,
                r.mean_rel_width,
            ));
        }
        s
    }
}

/// The CI regression gate. Compares `current` against `baseline`:
///
/// * **speed** — every packed-path row of the baseline must exist in
///   `current` with `speedup_vs_naive >= baseline * (1 - speed_tol)`
///   (speedups are same-run ratios, so the check is host-independent);
/// * **accuracy** — every row present in both must satisfy
///   `mean_rel_width <= baseline * (1 + width_tol)` (widths are
///   deterministic for the fixed gauntlet inputs).
///
/// Returns the violations (empty = pass).
pub fn check_regression(
    current: &Report,
    baseline: &Report,
    speed_tol: f64,
    width_tol: f64,
) -> Vec<String> {
    check_regression_with(current, baseline, speed_tol, width_tol, &[])
}

/// [`check_regression`] with per-backend speed-tolerance overrides
/// (`--tol-backend NAME=F`): a backend named in `speed_tol_overrides`
/// is gated at its own tolerance instead of `speed_tol`, so a
/// newly-optimized backend can be pinned tighter than the generous
/// default without squeezing every other contender.
pub fn check_regression_with(
    current: &Report,
    baseline: &Report,
    speed_tol: f64,
    width_tol: f64,
    speed_tol_overrides: &[(String, f64)],
) -> Vec<String> {
    let mut violations = Vec::new();
    // The schema-level form of `perf_recording_allowed`: a baseline
    // recorded by an instrumented binary never gates anything.
    if baseline.instrumented {
        violations.push(
            "baseline was recorded with telemetry/profiling compiled in; \
             re-record it with an uninstrumented build"
                .to_string(),
        );
        return violations;
    }
    let find = |rows: &[Row], backend: &str, kernel: &str| -> Option<Row> {
        rows.iter().find(|r| r.backend == backend && r.kernel == kernel).cloned()
    };
    for base in &baseline.rows {
        let Some(cur) = find(&current.rows, &base.backend, &base.kernel) else {
            if base.packed_path {
                violations.push(format!(
                    "{}/{}: packed-path row missing from the current run",
                    base.backend, base.kernel
                ));
            }
            continue;
        };
        let tol = speed_tol_overrides
            .iter()
            .find(|(name, _)| *name == base.backend)
            .map_or(speed_tol, |(_, t)| *t);
        if base.packed_path && cur.speedup_vs_naive < base.speedup_vs_naive * (1.0 - tol) {
            violations.push(format!(
                "{}/{}: speedup vs naive regressed {:.2}x -> {:.2}x (tolerance {:.0}%)",
                base.backend,
                base.kernel,
                base.speedup_vs_naive,
                cur.speedup_vs_naive,
                tol * 100.0
            ));
        }
        let width_ok = cur.mean_rel_width <= base.mean_rel_width * (1.0 + width_tol)
            || (cur.mean_rel_width.is_nan() && base.mean_rel_width.is_nan());
        if !width_ok {
            violations.push(format!(
                "{}/{}: mean relative width regressed {:e} -> {:e}",
                base.backend, base.kernel, base.mean_rel_width, cur.mean_rel_width
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_required_contenders() {
        let names = backend_names();
        for required in
            ["naive", "boost", "mpf", "igen-f64", "igen-dd", "igen-packed", "compiled-vm"]
        {
            assert!(names.contains(&required), "missing backend {required}");
        }
        assert_eq!(names[0], "naive", "naive must stay the denominator");
        // Two packed-path backends: the hand-written kernels and the
        // bytecode VM executing the same SoA lanes.
        assert_eq!(registry().iter().filter(|b| b.packed_path()).count(), 2);
    }

    #[test]
    fn cases_cover_every_kernel() {
        let cs = cases();
        assert_eq!(cs.len(), Kernel::ALL.len());
        for (c, k) in cs.iter().zip(Kernel::ALL) {
            assert_eq!(c.kernel, k);
            assert!(case_iops(c) > 0);
        }
    }

    fn tiny_report() -> Report {
        Report {
            pr: 6,
            mode: "full".into(),
            host: "host: 1 cores, x86_64, linux".into(),
            simd_backend: "avx2_fma".into(),
            instrumented: false,
            reps: 30,
            rows: vec![
                Row {
                    backend: "naive".into(),
                    kernel: "dot".into(),
                    packed_path: false,
                    median_ns: 1000.0,
                    ns_per_op: 10.0,
                    speedup_vs_naive: 1.0,
                    mean_rel_width: 1.5e-15,
                },
                Row {
                    backend: "igen-packed".into(),
                    kernel: "dot".into(),
                    packed_path: true,
                    median_ns: 100.0,
                    ns_per_op: 1.0,
                    speedup_vs_naive: 10.0,
                    mean_rel_width: 2.5e-16,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless_enough() {
        let r = tiny_report();
        let parsed = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.pr, r.pr);
        assert_eq!(parsed.rows.len(), r.rows.len());
        assert_eq!(parsed.rows[1].backend, "igen-packed");
        assert!(parsed.rows[1].packed_path);
        assert!((parsed.rows[1].speedup_vs_naive - 10.0).abs() < 1e-9);
        assert!((parsed.rows[1].mean_rel_width - 2.5e-16).abs() < 1e-22);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        assert!(Report::from_json("{\"schema\": \"something-else\"}").is_err());
        assert!(Report::from_json("not json").is_err());
    }

    #[test]
    fn check_passes_on_identical_reports() {
        let r = tiny_report();
        assert!(check_regression(&r, &r, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL).is_empty());
    }

    #[test]
    fn check_fails_on_synthetically_slowed_packed_backend() {
        let base = tiny_report();
        let mut slow = base.clone();
        // The packed backend lost most of its speedup (e.g. SIMD path
        // silently fell back to scalar): 10x -> 3x.
        slow.rows[1].speedup_vs_naive = 3.0;
        let v = check_regression(&slow, &base, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("igen-packed/dot"), "{v:?}");
        assert!(v[0].contains("speedup"), "{v:?}");
    }

    #[test]
    fn check_tolerates_noise_within_tolerance() {
        let base = tiny_report();
        let mut noisy = base.clone();
        noisy.rows[1].speedup_vs_naive = 6.0; // 40% drop < 50% tolerance
        assert!(check_regression(&noisy, &base, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL).is_empty());
    }

    #[test]
    fn per_backend_tolerance_overrides_the_default() {
        let base = tiny_report();
        let mut drift = base.clone();
        drift.rows[1].speedup_vs_naive = 8.5; // 15% drop
                                              // Default 50% tolerance passes; a 10% override on the backend fails.
        assert!(check_regression(&drift, &base, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL).is_empty());
        let overrides = vec![("igen-packed".to_string(), 0.10)];
        let v =
            check_regression_with(&drift, &base, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL, &overrides);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("tolerance 10%"), "{v:?}");
        // An override for a different backend leaves the row at the default.
        let other = vec![("compiled-vm".to_string(), 0.10)];
        assert!(check_regression_with(&drift, &base, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL, &other)
            .is_empty());
    }

    #[test]
    fn check_fails_on_width_regression_and_missing_packed_row() {
        let base = tiny_report();
        let mut wide = base.clone();
        wide.rows[0].mean_rel_width *= 2.0; // accuracy regression on any row
        let v = check_regression(&wide, &base, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("width"), "{v:?}");

        let mut missing = base.clone();
        missing.rows.remove(1);
        let v = check_regression(&missing, &base, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("missing"), "{v:?}");
    }

    #[test]
    fn instrumented_flag_roundtrips_and_defaults_to_false() {
        let mut r = tiny_report();
        r.instrumented = true;
        let json = r.to_json();
        assert!(json.contains("\"instrumented\": true"), "{json}");
        assert!(Report::from_json(&json).unwrap().instrumented);
        // A pre-flag baseline (field absent) still parses, as clean.
        let legacy = json.replace("  \"instrumented\": true,\n", "");
        assert!(!legacy.contains("instrumented"));
        assert!(!Report::from_json(&legacy).unwrap().instrumented);
    }

    #[test]
    fn check_refuses_instrumented_baselines() {
        let current = tiny_report();
        let mut tainted = tiny_report();
        tainted.instrumented = true;
        let v = check_regression(&current, &tainted, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("instrumented"), "{v:?}");
        // An instrumented *current* run can still be gated — only the
        // baseline side is a recording.
        assert!(
            check_regression(&tainted, &current, DEFAULT_SPEED_TOL, DEFAULT_WIDTH_TOL).is_empty()
        );
    }
}
