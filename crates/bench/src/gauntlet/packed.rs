//! One-file gauntlet plug-in for the production packed path: the
//! `igen-batch` SoA engine over `F64I`, which routes through the
//! `LaneOps` packed interval kernels (`igen-round::simd`).
//!
//! Pinned to one worker thread so the gauntlet's `speedup_vs_naive`
//! column isolates the SIMD win, not host-dependent thread scaling —
//! the same convention as the `simd_speedup` bench. Outputs are
//! bit-identical to the scalar `igen-f64` backend (the packed kernels'
//! contract), which the gauntlet soundness tests rely on.

use igen_baselines::backend::{IntervalBackend, IvalVec, Kernel, KernelCase};
use igen_batch::{
    dot_batch, ffnn_batch, gemm_row_blocks, henon_ensemble, mvm_batch, BatchConfig, BatchF64I,
};
use igen_interval::F64I;
use igen_kernels::ffnn::Ffnn;

/// The packed production backend (`igen-batch` SoA + `LaneOps` SIMD).
pub struct PackedBackend;

fn cfg() -> BatchConfig {
    BatchConfig::new().with_threads(1)
}

fn to_f64i(v: &IvalVec) -> Vec<F64I> {
    v.lo.iter()
        .zip(&v.hi)
        .map(|(&l, &h)| F64I::new(l, h).expect("gauntlet inputs are valid intervals"))
        .collect()
}

fn to_batch(v: &IvalVec) -> BatchF64I {
    BatchF64I::from_intervals(&to_f64i(v))
}

fn from_intervals(xs: &[F64I]) -> IvalVec {
    let mut out = IvalVec::with_capacity(xs.len());
    for x in xs {
        out.push(x.lo(), x.hi());
    }
    out
}

impl IntervalBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "igen-packed"
    }

    fn style(&self) -> &'static str {
        "IGen packed path: SoA batches over LaneOps SIMD interval kernels, 1 thread"
    }

    fn packed_path(&self) -> bool {
        true
    }

    fn instantiate<'a>(&'a self, case: &'a KernelCase) -> Box<dyn FnMut() -> IvalVec + 'a> {
        let (n, batch, iters) = (case.n, case.batch, case.iters);
        let cfg = cfg();
        match case.kernel {
            Kernel::Dot => {
                let xs = to_batch(&case.x);
                let ys = to_batch(&case.y);
                Box::new(move || from_intervals(&dot_batch(&cfg, n, &xs, &ys).to_intervals()))
            }
            Kernel::Mvm => {
                let a = to_f64i(&case.w);
                let xs = to_batch(&case.x);
                let ys = to_batch(&case.y);
                Box::new(move || {
                    from_intervals(&mvm_batch(&cfg, n, n, &a, &xs, &ys).to_intervals())
                })
            }
            Kernel::Gemm => {
                let a = to_f64i(&case.w);
                let b = to_f64i(&case.x);
                let c0 = to_f64i(&case.y);
                Box::new(move || {
                    let mut c = c0.clone();
                    gemm_row_blocks(&cfg, n, n, n, &a, &b, &mut c, 8);
                    from_intervals(&c)
                })
            }
            Kernel::Henon => {
                let x0s = to_batch(&case.x);
                let y0s = to_batch(&case.y);
                Box::new(move || {
                    from_intervals(&henon_ensemble(&cfg, iters, &x0s, &y0s).to_intervals())
                })
            }
            Kernel::Ffnn => {
                let net = Ffnn::synthetic(n, case.ffnn_seed);
                let dim = case.x.len() / batch;
                let inputs: Vec<Vec<f64>> =
                    (0..batch).map(|b| case.x.lo[b * dim..(b + 1) * dim].to_vec()).collect();
                Box::new(move || {
                    let outs: Vec<Vec<F64I>> = ffnn_batch(&cfg, &net, &inputs);
                    let mut out = IvalVec::new();
                    for item in outs {
                        for v in item {
                            out.push(v.lo(), v.hi());
                        }
                    }
                    out
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauntlet::numeric::NumericBackend;

    /// The packed path's defining contract: bit-identical outputs to the
    /// scalar F64I backend on every gauntlet kernel.
    #[test]
    fn packed_outputs_are_bit_identical_to_scalar_f64i() {
        let scalar = NumericBackend::<F64I>::new("igen-f64", "test");
        for case in crate::gauntlet::cases() {
            let got = PackedBackend.instantiate(&case)();
            let want = scalar.instantiate(&case)();
            assert_eq!(got.len(), want.len(), "{}", case.kernel);
            for i in 0..got.len() {
                let (gl, gh) = got.get(i);
                let (wl, wh) = want.get(i);
                assert!(
                    gl.to_bits() == wl.to_bits() && gh.to_bits() == wh.to_bits(),
                    "{} item {i}: packed [{gl},{gh}] != scalar [{wl},{wh}]",
                    case.kernel
                );
            }
        }
    }
}
