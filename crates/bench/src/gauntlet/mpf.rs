//! One-file gauntlet plug-in for the 256-bit multiprecision oracle.
//!
//! [`MpfInterval`] is not an `igen_kernels::Numeric` (it is a heap-free
//! but 10×-wider-than-f64 value type with `&self` operator methods), so
//! the five kernels are written out longhand here against the same
//! operation sequences the generic kernels use. Its outputs are the
//! tightest enclosures in the gauntlet and double as the ground truth
//! for the soundness property tests: every other backend's output must
//! enclose the oracle's `to_f64_pair`.

use igen_baselines::backend::{IntervalBackend, IvalVec, Kernel, KernelCase};
use igen_kernels::ffnn::Ffnn;
use igen_mpf::MpfInterval;

/// The multiprecision oracle as a gauntlet contender: slow by design,
/// included so the trajectory records how far production widths sit
/// from the attainable tightest enclosure (and what that costs).
pub struct MpfBackend;

fn convert(v: &IvalVec) -> Vec<MpfInterval> {
    v.lo.iter().zip(&v.hi).map(|(&l, &h)| MpfInterval::from_f64_pair(l, h)).collect()
}

fn collect(vals: impl IntoIterator<Item = MpfInterval>) -> IvalVec {
    let mut out = IvalVec::new();
    for v in vals {
        let (l, h) = v.to_f64_pair();
        out.push(l, h);
    }
    out
}

fn dot(x: &[MpfInterval], y: &[MpfInterval]) -> MpfInterval {
    let mut acc = MpfInterval::from_f64(0.0);
    for (a, b) in x.iter().zip(y) {
        acc = acc.add(&a.mul(b));
    }
    acc
}

fn mvm(n: usize, a: &[MpfInterval], x: &[MpfInterval], y: &mut [MpfInterval]) {
    for i in 0..n {
        let mut acc = y[i];
        for j in 0..n {
            acc = acc.add(&a[i * n + j].mul(&x[j]));
        }
        y[i] = acc;
    }
}

fn gemm(n: usize, a: &[MpfInterval], b: &[MpfInterval], c: &mut [MpfInterval]) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..n {
                acc = acc.add(&a[i * n + p].mul(&b[p * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
}

fn henon_from(x0: MpfInterval, y0: MpfInterval, iterations: usize) -> MpfInterval {
    // `x' = 1 - a·x² + y`, `y' = b·x` with the paper's `a = 1.05`,
    // `b = 0.3`, matching `igen_kernels::henon_from`'s operation
    // sequence (including the rational-constant enclosures).
    let one = MpfInterval::from_f64(1.0);
    let a = MpfInterval::from_f64(105.0).div(&MpfInterval::from_f64(100.0));
    let b = MpfInterval::from_f64(3.0).div(&MpfInterval::from_f64(10.0));
    let (mut x, mut y) = (x0, y0);
    for _ in 0..iterations {
        let xi = x;
        x = one.sub(&a.mul(&xi).mul(&xi)).add(&y);
        y = b.mul(&xi);
    }
    x
}

fn ffnn_forward(net: &Ffnn, input: &[f64]) -> Vec<MpfInterval> {
    let mut act: Vec<MpfInterval> = input.iter().map(|&p| MpfInterval::from_f64(p)).collect();
    let layers = net.weights.len();
    for (li, (w, b)) in net.weights.iter().zip(&net.biases).enumerate() {
        let fan_in = act.len();
        let mut next = Vec::with_capacity(b.len());
        for (o, &bias) in b.iter().enumerate() {
            let mut acc = MpfInterval::from_f64(bias);
            for (i, a) in act.iter().enumerate() {
                acc = acc.add(&MpfInterval::from_f64(w[o * fan_in + i]).mul(a));
            }
            next.push(if li + 1 == layers { acc } else { acc.max_zero() });
        }
        act = next;
    }
    act
}

impl IntervalBackend for MpfBackend {
    fn name(&self) -> &'static str {
        "mpf"
    }

    fn style(&self) -> &'static str {
        "256-bit multiprecision oracle, outward rounded (tightest enclosure)"
    }

    fn instantiate<'a>(&'a self, case: &'a KernelCase) -> Box<dyn FnMut() -> IvalVec + 'a> {
        let (n, batch, iters) = (case.n, case.batch, case.iters);
        match case.kernel {
            Kernel::Dot => {
                let x = convert(&case.x);
                let y = convert(&case.y);
                Box::new(move || {
                    collect((0..batch).map(|b| dot(&x[b * n..(b + 1) * n], &y[b * n..(b + 1) * n])))
                })
            }
            Kernel::Mvm => {
                let a = convert(&case.w);
                let x = convert(&case.x);
                let y0 = convert(&case.y);
                Box::new(move || {
                    let mut y = y0.clone();
                    for b in 0..batch {
                        mvm(n, &a, &x[b * n..(b + 1) * n], &mut y[b * n..(b + 1) * n]);
                    }
                    collect(y)
                })
            }
            Kernel::Gemm => {
                let a = convert(&case.w);
                let b = convert(&case.x);
                let c0 = convert(&case.y);
                Box::new(move || {
                    let mut c = c0.clone();
                    gemm(n, &a, &b, &mut c);
                    collect(c)
                })
            }
            Kernel::Henon => {
                let x0 = convert(&case.x);
                let y0 = convert(&case.y);
                Box::new(move || collect((0..batch).map(|b| henon_from(x0[b], y0[b], iters))))
            }
            Kernel::Ffnn => {
                let net = Ffnn::synthetic(n, case.ffnn_seed);
                let dim = case.x.len() / batch;
                let inputs: Vec<Vec<f64>> =
                    (0..batch).map(|b| case.x.lo[b * dim..(b + 1) * dim].to_vec()).collect();
                Box::new(move || collect(inputs.iter().flat_map(|inp| ffnn_forward(&net, inp))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oracle's Hénon sequence must track the f64 kernel: starting
    /// from the same point, the f64 result lies inside the oracle's
    /// (slightly widened by f64 rounding at readout) enclosure.
    #[test]
    fn mpf_henon_tracks_f64_kernel() {
        let x = henon_from(MpfInterval::from_f64(0.1), MpfInterval::from_f64(0.2), 10);
        let f: f64 = igen_kernels::henon_from(0.1_f64, 0.2_f64, 10);
        let (lo, hi) = x.to_f64_pair();
        // f64 arithmetic drifts from the true orbit, but after only 10
        // iterations it stays within a loose band of it.
        assert!(lo.is_finite() && hi.is_finite());
        assert!((f - (lo + hi) * 0.5).abs() < 1e-6, "f64 {f} vs oracle [{lo},{hi}]");
    }

    /// The oracle's ffnn forward agrees with the generic f64 forward to
    /// rounding error.
    #[test]
    fn mpf_ffnn_tracks_f64_forward() {
        let net = Ffnn::synthetic(8, 7);
        let input = Ffnn::synthetic_input(3);
        let oracle = ffnn_forward(&net, &input);
        let plain: Vec<f64> = net.forward::<f64>(&input);
        assert_eq!(oracle.len(), plain.len());
        for (o, p) in oracle.iter().zip(&plain) {
            let (lo, hi) = o.to_f64_pair();
            assert!(lo - 1e-9 <= *p && *p <= hi + 1e-9, "f64 {p} outside oracle [{lo},{hi}]");
        }
    }
}
