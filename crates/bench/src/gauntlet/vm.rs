//! One-file gauntlet plug-in for the bytecode VM: each kernel is
//! written as plain C, compiled through the full IGen pipeline at
//! `-O2`, lowered to register bytecode, peepholed (endpoint-exact
//! rewrites + liveness register renumbering), and executed by the
//! tiled instruction-major `igen-vm` executor over `igen-batch` SoA
//! buffers — the "compile any function" path, timed against the
//! hand-written kernels it generalizes.
//!
//! Compilation, the peephole pass and constant hoisting happen at
//! `instantiate` (untimed setup); the timed closure only executes
//! prepared bytecode over per-worker tile banks. One worker thread,
//! like `igen-packed`, so the column isolates the execution model.
//! GEMM is a single batch item (batching is across items, and the
//! gauntlet's GEMM case is one matrix product), so it exercises the
//! scalar-width tail of the same tiled executor — its win comes from
//! the renumbered register file staying cache-resident; the other
//! kernels run the packed tile path.

use igen_baselines::backend::{IntervalBackend, IvalVec, Kernel, KernelCase};
use igen_batch::{BatchConfig, BatchF64I};
use igen_core::{Config, OptLevel};
use igen_kernels::ffnn::Ffnn;
use igen_session::{BindRequest, CompileRequest, CompiledUnit, Session};
use igen_vm::{ArgBind, BindSpec};
use std::sync::{Arc, OnceLock};

/// The compiled-bytecode backend.
pub struct VmBackend;

const DOT_SRC: &str = r#"
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s = s + x[i] * y[i];
    }
    return s;
}
"#;

const MVM_SRC: &str = r#"
void mvm(double* a, double* x, double* y, int n) {
    for (int i = 0; i < n; i++) {
        double acc = y[i];
        for (int j = 0; j < n; j++) {
            acc = acc + a[i * n + j] * x[j];
        }
        y[i] = acc;
    }
}
"#;

const GEMM_SRC: &str = r#"
void gemm(double* a, double* b, double* c, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            double acc = c[i * n + j];
            for (int k = 0; k < n; k++) {
                acc = acc + a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}
"#;

const HENON_SRC: &str = r#"
double henon(double x0, double y0, int iterations) {
    double x = x0;
    double y = y0;
    for (int i = 0; i < iterations; i++) {
        double xi = x;
        double xn = 1.0 - 1.05 * xi * xi + y;
        y = 0.3 * xi;
        x = xn;
    }
    return x;
}
"#;

/// Dense-network C source with literal layer bounds: the input feeds
/// layer 0 directly, hidden activations go through `fmax(acc, 0.0)`
/// (ReLU), the last layer writes the output array raw — the exact
/// operation sequence of `Ffnn::forward`.
fn ffnn_source(dims: &[usize]) -> String {
    let layers = dims.len() - 1;
    let mut params = vec!["double* x".to_string()];
    for l in 0..layers {
        params.push(format!("double* w{l}"));
        params.push(format!("double* b{l}"));
    }
    params.push("double* o".to_string());
    let mut body = String::new();
    let mut prev = "x".to_string();
    for l in 0..layers {
        let (fan_in, fan_out) = (dims[l], dims[l + 1]);
        let last = l + 1 == layers;
        let dst = if last { "o".to_string() } else { format!("a{}", l + 1) };
        if !last {
            body.push_str(&format!("    double {dst}[{fan_out}];\n"));
        }
        body.push_str(&format!(
            "    for (int j = 0; j < {fan_out}; j++) {{\n\
             \x20       double acc = b{l}[j];\n\
             \x20       for (int i = 0; i < {fan_in}; i++) {{\n\
             \x20           acc = acc + w{l}[j * {fan_in} + i] * {prev}[i];\n\
             \x20       }}\n"
        ));
        if last {
            body.push_str(&format!("        {dst}[j] = acc;\n    }}\n"));
        } else {
            body.push_str(&format!("        {dst}[j] = fmax(acc, 0.0);\n    }}\n"));
        }
        prev = dst;
    }
    format!("void ffnn({}) {{\n{body}}}\n", params.join(", "))
}

/// The process-wide compile session: rerunning a kernel case (or the
/// same kernel at another size with an identical binding shape) reuses
/// the verified program instead of re-walking the pipeline.
fn session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(Session::default)
}

fn compile(src: &str, fn_name: &str, bind: &BindSpec) -> Arc<CompiledUnit> {
    let req = CompileRequest {
        source: src.into(),
        origin: format!("gauntlet:{fn_name}"),
        fn_name: Some(fn_name.to_string()),
        cfg: Config { opt_level: OptLevel::O2, ..Config::default() },
        bind: BindRequest::Explicit(bind.clone()),
        peephole: true,
    };
    session().compile(&req).expect("gauntlet kernel compiles to verified bytecode")
}

fn uniform_pairs(v: &IvalVec) -> Vec<(f64, f64)> {
    v.lo.iter().zip(&v.hi).map(|(&l, &h)| (l, h)).collect()
}

fn uniform_points(v: &[f64]) -> Vec<(f64, f64)> {
    v.iter().map(|&p| (p, p)).collect()
}

/// Item-major flattening of per-item slices from several columns:
/// `cols` are (buffer, per-item length) in program input order.
fn item_major(cols: &[(&IvalVec, usize)], items: usize) -> BatchF64I {
    let total: usize = cols.iter().map(|&(_, len)| len).sum();
    let mut out = BatchF64I::with_capacity(items * total);
    for item in 0..items {
        for &(col, len) in cols {
            for j in 0..len {
                let (lo, hi) = col.get(item * len + j);
                out.push(
                    igen_interval::F64I::new(lo, hi).expect("gauntlet inputs are valid intervals"),
                );
            }
        }
    }
    out
}

fn to_ivalvec(b: &BatchF64I) -> IvalVec {
    let mut out = IvalVec::with_capacity(b.len());
    for v in b.to_intervals() {
        out.push(v.lo(), v.hi());
    }
    out
}

impl IntervalBackend for VmBackend {
    fn name(&self) -> &'static str {
        "compiled-vm"
    }

    fn style(&self) -> &'static str {
        "C compiled to register bytecode, lane-generic executor over SoA batches, 1 thread"
    }

    fn packed_path(&self) -> bool {
        true
    }

    fn instantiate<'a>(&'a self, case: &'a KernelCase) -> Box<dyn FnMut() -> IvalVec + 'a> {
        let (n, batch, iters) = (case.n, case.batch, case.iters);
        let cfg = BatchConfig::new().with_threads(1);
        match case.kernel {
            Kernel::Dot => {
                let bind =
                    BindSpec::new(vec![ArgBind::In(n), ArgBind::In(n), ArgBind::Int(n as i64)]);
                let bp = compile(DOT_SRC, "dot", &bind);
                let inputs = item_major(&[(&case.x, n), (&case.y, n)], batch);
                Box::new(move || to_ivalvec(&bp.batch.run(&cfg, &inputs)))
            }
            Kernel::Mvm => {
                let bind = BindSpec::new(vec![
                    ArgBind::Uniform(uniform_pairs(&case.w)),
                    ArgBind::In(n),
                    ArgBind::InOut(n),
                    ArgBind::Int(n as i64),
                ]);
                let bp = compile(MVM_SRC, "mvm", &bind);
                let inputs = item_major(&[(&case.x, n), (&case.y, n)], batch);
                Box::new(move || to_ivalvec(&bp.batch.run(&cfg, &inputs)))
            }
            Kernel::Gemm => {
                let bind = BindSpec::new(vec![
                    ArgBind::Uniform(uniform_pairs(&case.w)),
                    ArgBind::In(n * n),
                    ArgBind::InOut(n * n),
                    ArgBind::Int(n as i64),
                ]);
                let bp = compile(GEMM_SRC, "gemm", &bind);
                let inputs = item_major(&[(&case.x, n * n), (&case.y, n * n)], 1);
                Box::new(move || to_ivalvec(&bp.batch.run(&cfg, &inputs)))
            }
            Kernel::Henon => {
                let bind =
                    BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(iters as i64)]);
                let bp = compile(HENON_SRC, "henon", &bind);
                let inputs = item_major(&[(&case.x, 1), (&case.y, 1)], batch);
                Box::new(move || to_ivalvec(&bp.batch.run(&cfg, &inputs)))
            }
            Kernel::Ffnn => {
                let net = Ffnn::synthetic(n, case.ffnn_seed);
                let dim = case.x.len() / batch;
                let mut dims = vec![dim];
                dims.extend(net.biases.iter().map(Vec::len));
                let mut binds = vec![ArgBind::In(dim)];
                for (w, b) in net.weights.iter().zip(&net.biases) {
                    binds.push(ArgBind::Uniform(uniform_points(w)));
                    binds.push(ArgBind::Uniform(uniform_points(b)));
                }
                binds.push(ArgBind::Out(10));
                let bp = compile(&ffnn_source(&dims), "ffnn", &BindSpec::new(binds));
                let inputs = item_major(&[(&case.x, dim)], batch);
                Box::new(move || to_ivalvec(&bp.batch.run(&cfg, &inputs)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauntlet::numeric::NumericBackend;
    use igen_interval::F64I;

    /// The bytecode path must reproduce the hand-written kernels'
    /// operation sequences: bit-identical outputs to the scalar F64I
    /// backend on the shared gauntlet cases.
    #[test]
    fn vm_outputs_are_bit_identical_to_scalar_f64i() {
        let scalar = NumericBackend::<F64I>::new("igen-f64", "test");
        for case in crate::gauntlet::cases() {
            let got = VmBackend.instantiate(&case)();
            let want = scalar.instantiate(&case)();
            assert_eq!(got.len(), want.len(), "{}", case.kernel);
            for i in 0..got.len() {
                let (gl, gh) = got.get(i);
                let (wl, wh) = want.get(i);
                assert!(
                    gl.to_bits() == wl.to_bits() && gh.to_bits() == wh.to_bits(),
                    "{} item {i}: vm [{gl},{gh}] != scalar [{wl},{wh}]",
                    case.kernel
                );
            }
        }
    }
}
