//! One-file gauntlet plug-in covering every scalar `Numeric` interval
//! type in the workspace.
//!
//! Anything implementing [`igen_kernels::Numeric`] plus the small
//! [`GauntletNum`] endpoint-conversion shim runs all five kernels
//! through the *same generic code* — so adding e.g. a new baseline
//! library to the gauntlet is one `GauntletNum` impl and one registry
//! line. The kernels themselves come from `igen-kernels` (instantiated
//! at lane width 1), so the scalar production types here execute the
//! exact operation sequence the packed backend must reproduce.

use igen_baselines::backend::{IntervalBackend, IvalVec, Kernel, KernelCase};
use igen_baselines::{BoostI, FilibI, GaolI, NaiveI};
use igen_interval::{DdI, F64I};
use igen_kernels::ffnn::Ffnn;
use igen_kernels::{henon_from, linalg, Numeric};

/// Endpoint conversion between a numeric interval type and the plain
/// f64 pairs the gauntlet speaks. `from_endpoints` may assume a valid
/// (non-NaN, ordered) pair — the harness only generates such inputs.
pub trait GauntletNum: Numeric {
    /// Builds the interval `[lo, hi]`.
    fn from_endpoints(lo: f64, hi: f64) -> Self;
    /// Returns `(lo, hi)` as the tightest f64 pair enclosing the value.
    fn endpoints(&self) -> (f64, f64);
}

impl GauntletNum for NaiveI {
    fn from_endpoints(lo: f64, hi: f64) -> Self {
        NaiveI::new(lo, hi)
    }
    fn endpoints(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }
}

impl GauntletNum for BoostI {
    fn from_endpoints(lo: f64, hi: f64) -> Self {
        BoostI::new(lo, hi)
    }
    fn endpoints(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }
}

impl GauntletNum for FilibI {
    fn from_endpoints(lo: f64, hi: f64) -> Self {
        FilibI::new(lo, hi)
    }
    fn endpoints(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }
}

impl GauntletNum for GaolI {
    fn from_endpoints(lo: f64, hi: f64) -> Self {
        GaolI::new(lo, hi)
    }
    fn endpoints(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }
}

impl GauntletNum for F64I {
    fn from_endpoints(lo: f64, hi: f64) -> Self {
        F64I::new(lo, hi).expect("gauntlet inputs are valid intervals")
    }
    fn endpoints(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }
}

impl GauntletNum for DdI {
    fn from_endpoints(lo: f64, hi: f64) -> Self {
        DdI::from_f64i(&F64I::new(lo, hi).expect("gauntlet inputs are valid intervals"))
    }
    fn endpoints(&self) -> (f64, f64) {
        let f = self.to_f64i();
        (f.lo(), f.hi())
    }
}

/// The generic backend: a registry name, a style blurb, and a numeric
/// type that does all the work.
pub struct NumericBackend<T: GauntletNum> {
    name: &'static str,
    style: &'static str,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: GauntletNum> NumericBackend<T> {
    /// A gauntlet entry running every kernel at scalar lane width over `T`.
    pub fn new(name: &'static str, style: &'static str) -> Self {
        NumericBackend { name, style, _marker: std::marker::PhantomData }
    }
}

fn convert<T: GauntletNum>(v: &IvalVec) -> Vec<T> {
    v.lo.iter().zip(&v.hi).map(|(&l, &h)| T::from_endpoints(l, h)).collect()
}

fn collect<T: GauntletNum>(vals: impl IntoIterator<Item = T>) -> IvalVec {
    let mut out = IvalVec::new();
    for v in vals {
        let (l, h) = v.endpoints();
        out.push(l, h);
    }
    out
}

impl<T: GauntletNum> IntervalBackend for NumericBackend<T> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn style(&self) -> &'static str {
        self.style
    }

    fn instantiate<'a>(&'a self, case: &'a KernelCase) -> Box<dyn FnMut() -> IvalVec + 'a> {
        let (n, batch, iters) = (case.n, case.batch, case.iters);
        match case.kernel {
            Kernel::Dot => {
                let x: Vec<T> = convert(&case.x);
                let y: Vec<T> = convert(&case.y);
                Box::new(move || {
                    collect(
                        (0..batch)
                            .map(|b| linalg::dot(&x[b * n..(b + 1) * n], &y[b * n..(b + 1) * n])),
                    )
                })
            }
            Kernel::Mvm => {
                let a: Vec<T> = convert(&case.w);
                let x: Vec<T> = convert(&case.x);
                let y0: Vec<T> = convert(&case.y);
                Box::new(move || {
                    let mut y = y0.clone();
                    for b in 0..batch {
                        linalg::mvm(n, n, &a, &x[b * n..(b + 1) * n], &mut y[b * n..(b + 1) * n]);
                    }
                    collect(y)
                })
            }
            Kernel::Gemm => {
                let a: Vec<T> = convert(&case.w);
                let b: Vec<T> = convert(&case.x);
                let c0: Vec<T> = convert(&case.y);
                Box::new(move || {
                    let mut c = c0.clone();
                    linalg::gemm(n, n, n, &a, &b, &mut c);
                    collect(c)
                })
            }
            Kernel::Henon => {
                let x0: Vec<T> = convert(&case.x);
                let y0: Vec<T> = convert(&case.y);
                Box::new(move || collect((0..batch).map(|b| henon_from(x0[b], y0[b], iters))))
            }
            Kernel::Ffnn => {
                let net = Ffnn::synthetic(n, case.ffnn_seed);
                // Point inputs: the gauntlet stores them as degenerate
                // intervals, the forward pass takes the f64 values.
                let dim = case.x.len() / batch;
                let inputs: Vec<Vec<f64>> =
                    (0..batch).map(|b| case.x.lo[b * dim..(b + 1) * dim].to_vec()).collect();
                Box::new(move || collect(inputs.iter().flat_map(|inp| net.forward::<T>(inp))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_conversions_roundtrip() {
        fn check<T: GauntletNum>() {
            for (l, h) in [(1.0, 2.0), (-3.5, -1.25), (-1.0, 4.0), (0.0, 0.0)] {
                let (rl, rh) = T::from_endpoints(l, h).endpoints();
                assert!(rl <= l && h <= rh, "lossy roundtrip: [{l},{h}] -> [{rl},{rh}]");
            }
        }
        check::<NaiveI>();
        check::<BoostI>();
        check::<FilibI>();
        check::<GaolI>();
        check::<F64I>();
        check::<DdI>();
    }

    #[test]
    fn scalar_f64i_backend_matches_direct_kernel_calls() {
        let cases = crate::gauntlet::cases();
        let dot_case = &cases[0];
        let b = NumericBackend::<F64I>::new("igen-f64", "test");
        let out = b.instantiate(dot_case)();
        assert_eq!(out.len(), dot_case.batch);
        // Reproduce item 0 by hand.
        let n = dot_case.n;
        let x: Vec<F64I> = convert(&dot_case.x);
        let y: Vec<F64I> = convert(&dot_case.y);
        let d = linalg::dot(&x[..n], &y[..n]);
        assert_eq!(out.get(0), (d.lo(), d.hi()));
    }
}
