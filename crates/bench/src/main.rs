//! `igen-bench` — the benchmark-suite front door. Today it hosts the
//! cross-library gauntlet; the paper's per-figure binaries remain
//! separate (`cargo run -p igen-bench --bin fig8_scalar_perf`, …).
//!
//! ```text
//! igen-bench gauntlet [--full] [--backends a,b,...] [--out <path>]
//!                     [--pr N] [--check <baseline.json>] [--tol F]
//!                     [--tol-width F] [--tol-backend NAME=F]...
//! igen-bench trajectory [--dir <results>] [--out <TRAJECTORY.md>]
//!                       [--csv <TRAJECTORY.csv>]
//! igen-bench serve-throughput [--full] [--requests N]
//! ```
//!
//! `gauntlet` runs every registered interval backend through the shared
//! dot/mvm/gemm/henon/ffnn kernel set and writes the machine-readable
//! trajectory JSON (schema `igen-bench-gauntlet/v1`). `--tol-backend`
//! (repeatable) pins a named backend to its own speed tolerance,
//! tighter or looser than the global `--tol`.
//!
//! `trajectory` merges every committed `results/BENCH_<pr>.json` into
//! the reviewable `results/TRAJECTORY.md` pivot (speedup-vs-naive per
//! backend × kernel × PR) plus the flat `results/TRAJECTORY.csv`.
//!
//! `serve-throughput` drives the in-process session service (the engine
//! behind `igen-cli serve`) with JSON-lines run requests — cold cache
//! (every request a distinct source) vs warm cache (identical requests)
//! at 1 and 4 workers — and prints requests/second. A full-mode run
//! from a telemetry-free build also records
//! `results/serve_throughput.csv`.
//!
//! Output-path policy: with an explicit `--out` the file goes exactly
//! there. Otherwise the default is `results/BENCH_<pr>.json` only for a
//! full-mode run from a telemetry-free build
//! (`igen_bench::perf_recording_allowed`); smoke runs default to
//! `./BENCH_<pr>.json` in the working directory, so a CI smoke job can
//! never overwrite a committed full-mode baseline.
//!
//! `--check <baseline.json>` additionally compares the fresh run against
//! a recorded baseline and exits nonzero on regression: packed-path
//! speedup-vs-naive ratios (host-independent) within `--tol` (default
//! 0.5 = 50% slack) and deterministic mean relative widths within
//! `--tol-width` (default 1e-6).

use igen_bench::gauntlet;
use igen_session::Flags;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: igen-bench gauntlet [--full] [--backends a,b,...] [--out <path>]\n\
     \x20                          [--pr N] [--check <baseline.json>] [--tol F] [--tol-width F]\n\
     \x20                          [--tol-backend NAME=F]...\n\
     \x20      igen-bench trajectory [--dir <results>] [--out <TRAJECTORY.md>] [--csv <TRAJECTORY.csv>]\n\
     \x20      igen-bench serve-throughput [--full] [--requests N]"
}

/// Prints the one-line usage error every subcommand shares and exits 2.
fn fail2(msg: String) -> ExitCode {
    eprintln!("igen-bench: {msg}");
    ExitCode::from(2)
}

/// Unwraps a flag-parse result, exiting 2 with the one-line message on
/// failure.
macro_rules! flag {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(msg) => return fail2(msg),
        }
    };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gauntlet") => run_gauntlet(&args[1..]),
        Some("trajectory") => run_trajectory(&args[1..]),
        Some("serve-throughput") => run_serve_throughput(&args[1..]),
        Some(cmd) => {
            eprintln!(
                "igen-bench: unknown subcommand '{cmd}' \
                 (expected gauntlet, trajectory or serve-throughput)"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_trajectory(args: &[String]) -> ExitCode {
    let mut dir = "results".to_string();
    let mut out = "results/TRAJECTORY.md".to_string();
    let mut csv = "results/TRAJECTORY.csv".to_string();
    let mut f = Flags::new(args);
    while let Some(arg) = f.next() {
        match arg {
            "--dir" => dir = flag!(f.value("--dir", "a value")).to_string(),
            "--out" => out = flag!(f.value("--out", "a value")).to_string(),
            "--csv" => csv = flag!(f.value("--csv", "a value")).to_string(),
            other => {
                eprintln!("igen-bench: unknown option '{other}' for trajectory");
                eprintln!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let reports = match igen_bench::trajectory::collect(std::path::Path::new(&dir)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("igen-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        eprintln!("igen-bench: no BENCH_<pr>.json reports under {dir}");
        return ExitCode::FAILURE;
    }
    let md = igen_bench::trajectory::render_markdown(&reports);
    let flat = igen_bench::trajectory::render_csv(&reports);
    for (path, body) in [(&out, &md), (&csv, &flat)] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("igen-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    println!("merged {} reports (PRs: {})", reports.len(), {
        let prs: Vec<String> = reports.iter().map(|r| r.pr.to_string()).collect();
        prs.join(", ")
    });
    ExitCode::SUCCESS
}

fn run_gauntlet(args: &[String]) -> ExitCode {
    let mut backends: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut pr = gauntlet::CURRENT_PR;
    let mut check: Option<String> = None;
    let mut tol = gauntlet::DEFAULT_SPEED_TOL;
    let mut tol_width = gauntlet::DEFAULT_WIDTH_TOL;
    let mut tol_backends: Vec<(String, f64)> = Vec::new();

    let mut f = Flags::new(args);
    while let Some(arg) = f.next() {
        match arg {
            "--full" => {} // read by igen_bench::full_mode()
            "--backends" => {
                let v = flag!(f.value("--backends", "a value"));
                backends.extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--out" => out = Some(flag!(f.value("--out", "a value")).to_string()),
            "--pr" => match flag!(f.value("--pr", "a value")).parse::<u32>() {
                Ok(v) => pr = v,
                Err(_) => return fail2("--pr needs an unsigned integer".into()),
            },
            "--check" => check = Some(flag!(f.value("--check", "a value")).to_string()),
            "--tol" => match flag!(f.value("--tol", "a value")).parse::<f64>() {
                Ok(v) => tol = v,
                Err(_) => return fail2("--tol needs a number".into()),
            },
            "--tol-width" => match flag!(f.value("--tol-width", "a value")).parse::<f64>() {
                Ok(v) => tol_width = v,
                Err(_) => return fail2("--tol-width needs a number".into()),
            },
            "--tol-backend" => {
                let v = flag!(f.value("--tol-backend", "a value"));
                match v.split_once('=').map(|(n, t)| (n.to_string(), t.parse::<f64>())) {
                    Some((name, Ok(t))) if !name.is_empty() => tol_backends.push((name, t)),
                    _ => {
                        return fail2("--tol-backend needs NAME=F (e.g. compiled-vm=0.25)".into());
                    }
                }
            }
            other => {
                eprintln!("igen-bench: unknown option '{other}' for gauntlet");
                eprintln!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let known = gauntlet::backend_names();
    for b in &backends {
        if !known.contains(&b.as_str()) {
            eprintln!("igen-bench: unknown backend '{b}' (expected one of: {})", known.join(", "));
            return ExitCode::from(2);
        }
    }

    let full = igen_bench::full_mode();
    let mode = if full { "full" } else { "smoke" };
    // The CI gate consumes smoke numbers, so smoke gets a wider median
    // window than the figure-regenerating binaries' quick mode.
    let reps = igen_bench::reps().max(9);
    let mut report = gauntlet::run(&backends, reps, mode);
    report.pr = pr;
    print!("{}", report.render());

    let default_name = format!("BENCH_{pr}.json");
    let path = match out {
        Some(p) => p,
        // Only a full-mode, telemetry-free run may write the committed
        // trajectory under results/; smoke timings land in the cwd.
        None if full && igen_bench::perf_recording_allowed() => {
            format!("results/{default_name}")
        }
        None => default_name,
    };
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("igen-bench: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("igen-bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {path}");

    if let Some(baseline_path) = check {
        let src = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("igen-bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match gauntlet::Report::from_json(&src) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("igen-bench: bad baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let violations =
            gauntlet::check_regression_with(&report, &baseline, tol, tol_width, &tol_backends);
        if violations.is_empty() {
            let overrides = if tol_backends.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> =
                    tol_backends.iter().map(|(n, t)| format!("{n}={t}")).collect();
                format!(", overrides {}", parts.join(","))
            };
            println!(
                "check vs {baseline_path}: OK ({} baseline rows, tol {tol}, tol-width {tol_width}{overrides})",
                baseline.rows.len()
            );
        } else {
            eprintln!("igen-bench: regression vs {baseline_path}:");
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// One timed pass against a fresh service: `requests` run requests,
/// all submitted up front, waited in order. Cold = every request a
/// distinct source (every compile a cache miss); warm = identical
/// requests after one priming compile (every lookup a hit). Returns
/// (elapsed seconds, responses with `"ok":true`).
fn serve_pass(workers: usize, requests: usize, warm: bool) -> (f64, usize) {
    use igen_session::{Service, ServiceConfig};
    let svc = Service::start(ServiceConfig {
        workers,
        // Head-room on both bounds: throughput here measures the
        // pipeline + cache, not eviction or backpressure.
        cache_cap: requests + 1,
        queue_cap: requests + 1,
        ..ServiceConfig::default()
    });
    let line = |i: usize| -> String {
        let src = if warm {
            "double f(double x) { return x * (x + 1.0); }".to_string()
        } else {
            format!("double f(double x) {{ return x * (x + {i}.0); }}")
        };
        format!(r#"{{"id":{i},"kind":"run","source":"{src}","batch":8}}"#)
    };
    if warm {
        // Prime: the one compile happens outside the timed window.
        svc.submit(&line(0)).wait();
    }
    let t0 = std::time::Instant::now();
    let tickets: Vec<_> = (0..requests).map(|i| svc.submit(&line(i))).collect();
    let ok = tickets.into_iter().map(|t| t.wait()).filter(|r| r.contains("\"ok\":true")).count();
    (t0.elapsed().as_secs_f64(), ok)
}

fn run_serve_throughput(args: &[String]) -> ExitCode {
    let full = igen_bench::full_mode();
    let mut requests = if full { 128 } else { 32 };
    let mut f = Flags::new(args);
    while let Some(arg) = f.next() {
        match arg {
            "--full" => {} // read by igen_bench::full_mode()
            "--requests" => requests = flag!(f.parse("--requests", "a count")),
            other => {
                eprintln!("igen-bench: unknown option '{other}' for serve-throughput");
                eprintln!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if requests == 0 {
        return fail2("--requests must be at least 1".into());
    }

    println!(
        "serve-throughput: {requests} run requests per pass (mode: {})",
        if full { "full" } else { "smoke" }
    );
    println!("{:>7}  {:>5}  {:>10}  {:>12}", "workers", "cache", "secs", "req/s");
    let mut rows: Vec<String> = Vec::new();
    for workers in [1usize, 4] {
        for warm in [false, true] {
            let (secs, ok) = serve_pass(workers, requests, warm);
            if ok != requests {
                eprintln!(
                    "igen-bench: serve-throughput: {ok}/{requests} requests succeeded \
                     (workers={workers}, warm={warm})"
                );
                return ExitCode::FAILURE;
            }
            let cache = if warm { "warm" } else { "cold" };
            let rps = requests as f64 / secs;
            println!("{workers:>7}  {cache:>5}  {secs:>10.4}  {rps:>12.1}");
            rows.push(format!("{workers},{cache},{requests},{secs:.6},{rps:.1}"));
        }
    }

    // Same recording policy as the gauntlet: only a full-mode run from
    // a telemetry-free build lands in results/.
    if full && igen_bench::perf_recording_allowed() {
        igen_bench::write_csv_with_comments(
            "serve_throughput.csv",
            &[
                "igen-bench serve-throughput: JSON-lines run requests against the in-process \
                 session service"
                    .to_string(),
                "cold = every request a distinct source (compile each time); warm = identical \
                 requests served from the compile cache"
                    .to_string(),
                igen_bench::host_line(igen_batch::available_threads()),
            ],
            "workers,cache,requests,secs,req_per_sec",
            &rows,
        );
    }
    ExitCode::SUCCESS
}
