//! `igen-bench` — the benchmark-suite front door. Today it hosts the
//! cross-library gauntlet; the paper's per-figure binaries remain
//! separate (`cargo run -p igen-bench --bin fig8_scalar_perf`, …).
//!
//! ```text
//! igen-bench gauntlet [--full] [--backends a,b,...] [--out <path>]
//!                     [--pr N] [--check <baseline.json>] [--tol F]
//!                     [--tol-width F] [--tol-backend NAME=F]...
//! igen-bench trajectory [--dir <results>] [--out <TRAJECTORY.md>]
//!                       [--csv <TRAJECTORY.csv>]
//! ```
//!
//! `gauntlet` runs every registered interval backend through the shared
//! dot/mvm/gemm/henon/ffnn kernel set and writes the machine-readable
//! trajectory JSON (schema `igen-bench-gauntlet/v1`). `--tol-backend`
//! (repeatable) pins a named backend to its own speed tolerance,
//! tighter or looser than the global `--tol`.
//!
//! `trajectory` merges every committed `results/BENCH_<pr>.json` into
//! the reviewable `results/TRAJECTORY.md` pivot (speedup-vs-naive per
//! backend × kernel × PR) plus the flat `results/TRAJECTORY.csv`.
//!
//! Output-path policy: with an explicit `--out` the file goes exactly
//! there. Otherwise the default is `results/BENCH_<pr>.json` only for a
//! full-mode run from a telemetry-free build
//! (`igen_bench::perf_recording_allowed`); smoke runs default to
//! `./BENCH_<pr>.json` in the working directory, so a CI smoke job can
//! never overwrite a committed full-mode baseline.
//!
//! `--check <baseline.json>` additionally compares the fresh run against
//! a recorded baseline and exits nonzero on regression: packed-path
//! speedup-vs-naive ratios (host-independent) within `--tol` (default
//! 0.5 = 50% slack) and deterministic mean relative widths within
//! `--tol-width` (default 1e-6).

use igen_bench::gauntlet;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: igen-bench gauntlet [--full] [--backends a,b,...] [--out <path>]\n\
     \x20                          [--pr N] [--check <baseline.json>] [--tol F] [--tol-width F]\n\
     \x20                          [--tol-backend NAME=F]...\n\
     \x20      igen-bench trajectory [--dir <results>] [--out <TRAJECTORY.md>] [--csv <TRAJECTORY.csv>]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gauntlet") => run_gauntlet(&args[1..]),
        Some("trajectory") => run_trajectory(&args[1..]),
        Some(cmd) => {
            eprintln!("igen-bench: unknown subcommand '{cmd}' (expected gauntlet or trajectory)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_trajectory(args: &[String]) -> ExitCode {
    let mut dir = "results".to_string();
    let mut out = "results/TRAJECTORY.md".to_string();
    let mut csv = "results/TRAJECTORY.csv".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("igen-bench: {name} needs a value");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--dir" => match value("--dir") {
                Ok(v) => dir = v,
                Err(c) => return c,
            },
            "--out" => match value("--out") {
                Ok(v) => out = v,
                Err(c) => return c,
            },
            "--csv" => match value("--csv") {
                Ok(v) => csv = v,
                Err(c) => return c,
            },
            other => {
                eprintln!("igen-bench: unknown option '{other}' for trajectory");
                eprintln!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let reports = match igen_bench::trajectory::collect(std::path::Path::new(&dir)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("igen-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        eprintln!("igen-bench: no BENCH_<pr>.json reports under {dir}");
        return ExitCode::FAILURE;
    }
    let md = igen_bench::trajectory::render_markdown(&reports);
    let flat = igen_bench::trajectory::render_csv(&reports);
    for (path, body) in [(&out, &md), (&csv, &flat)] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("igen-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    println!("merged {} reports (PRs: {})", reports.len(), {
        let prs: Vec<String> = reports.iter().map(|r| r.pr.to_string()).collect();
        prs.join(", ")
    });
    ExitCode::SUCCESS
}

fn run_gauntlet(args: &[String]) -> ExitCode {
    let mut backends: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut pr = gauntlet::CURRENT_PR;
    let mut check: Option<String> = None;
    let mut tol = gauntlet::DEFAULT_SPEED_TOL;
    let mut tol_width = gauntlet::DEFAULT_WIDTH_TOL;
    let mut tol_backends: Vec<(String, f64)> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("igen-bench: {name} needs a value");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--full" => {} // read by igen_bench::full_mode()
            "--backends" => match value("--backends") {
                Ok(v) => backends.extend(v.split(',').map(|s| s.trim().to_string())),
                Err(c) => return c,
            },
            "--out" => match value("--out") {
                Ok(v) => out = Some(v),
                Err(c) => return c,
            },
            "--pr" => match value("--pr").map(|v| v.parse::<u32>()) {
                Ok(Ok(v)) => pr = v,
                Ok(Err(_)) => {
                    eprintln!("igen-bench: --pr needs an unsigned integer");
                    return ExitCode::from(2);
                }
                Err(c) => return c,
            },
            "--check" => match value("--check") {
                Ok(v) => check = Some(v),
                Err(c) => return c,
            },
            "--tol" => match value("--tol").map(|v| v.parse::<f64>()) {
                Ok(Ok(v)) => tol = v,
                Ok(Err(_)) => {
                    eprintln!("igen-bench: --tol needs a number");
                    return ExitCode::from(2);
                }
                Err(c) => return c,
            },
            "--tol-width" => match value("--tol-width").map(|v| v.parse::<f64>()) {
                Ok(Ok(v)) => tol_width = v,
                Ok(Err(_)) => {
                    eprintln!("igen-bench: --tol-width needs a number");
                    return ExitCode::from(2);
                }
                Err(c) => return c,
            },
            "--tol-backend" => match value("--tol-backend") {
                Ok(v) => match v.split_once('=').map(|(n, t)| (n.to_string(), t.parse::<f64>())) {
                    Some((name, Ok(t))) if !name.is_empty() => tol_backends.push((name, t)),
                    _ => {
                        eprintln!("igen-bench: --tol-backend needs NAME=F (e.g. compiled-vm=0.25)");
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            other => {
                eprintln!("igen-bench: unknown option '{other}' for gauntlet");
                eprintln!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let known = gauntlet::backend_names();
    for b in &backends {
        if !known.contains(&b.as_str()) {
            eprintln!("igen-bench: unknown backend '{b}' (expected one of: {})", known.join(", "));
            return ExitCode::from(2);
        }
    }

    let full = igen_bench::full_mode();
    let mode = if full { "full" } else { "smoke" };
    // The CI gate consumes smoke numbers, so smoke gets a wider median
    // window than the figure-regenerating binaries' quick mode.
    let reps = igen_bench::reps().max(9);
    let mut report = gauntlet::run(&backends, reps, mode);
    report.pr = pr;
    print!("{}", report.render());

    let default_name = format!("BENCH_{pr}.json");
    let path = match out {
        Some(p) => p,
        // Only a full-mode, telemetry-free run may write the committed
        // trajectory under results/; smoke timings land in the cwd.
        None if full && igen_bench::perf_recording_allowed() => {
            format!("results/{default_name}")
        }
        None => default_name,
    };
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("igen-bench: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("igen-bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {path}");

    if let Some(baseline_path) = check {
        let src = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("igen-bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match gauntlet::Report::from_json(&src) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("igen-bench: bad baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let violations =
            gauntlet::check_regression_with(&report, &baseline, tol, tol_width, &tol_backends);
        if violations.is_empty() {
            let overrides = if tol_backends.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> =
                    tol_backends.iter().map(|(n, t)| format!("{n}={t}")).collect();
                format!(", overrides {}", parts.join(","))
            };
            println!(
                "check vs {baseline_path}: OK ({} baseline rows, tol {tol}, tol-width {tol_width}{overrides})",
                baseline.rows.len()
            );
        } else {
            eprintln!("igen-bench: regression vs {baseline_path}:");
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
