//! Fig. 8: interval operations per cycle vs. problem size, for the four
//! benchmarks and seven configurations:
//! IGen-vv, IGen-sv, IGen-ss, IGen-sv-dd (+ IGen-vv-dd), Boost, Filib,
//! Gaol.
//!
//! Usage: `cargo run --release -p igen-bench --bin fig8_perf [--full]`
//! (`--full` runs the paper's sizes and 30 repetitions).

use igen_baselines::{BoostI, FilibI, GaolI};
use igen_bench::{full_mode, iops_per_cycle, median_time, reps, sink, write_csv};
use igen_interval::{DdI, F64I};
use igen_kernels::ffnn::Ffnn;
use igen_kernels::linalg::{gemm, gemm_iops, gemm_unrolled, potrf, potrf_iops, potrf_unrolled};
use igen_kernels::workload;
use igen_kernels::{fft, fft_iops, fft_unrolled, twiddles, Numeric};

fn main() {
    let full = full_mode();
    run_fft(full);
    run_gemm(full);
    run_potrf(full);
    run_ffnn(full);
}

/// One measured cell of the figure.
fn report(bench: &str, config: &str, n: usize, iops: u64, t: std::time::Duration) -> String {
    let ipc = iops_per_cycle(iops, t);
    println!(
        "{bench:6} {config:10} n={n:<5} {:>10.1} us   {ipc:.4} iops/cycle",
        t.as_secs_f64() * 1e6
    );
    format!("{bench},{config},{n},{},{:.6},{ipc:.6}", iops, t.as_secs_f64() * 1e6)
}

fn run_fft(full: bool) {
    let sizes: &[usize] = if full { &[16, 32, 64, 128, 256] } else { &[16, 64, 256] };
    let mut rows = Vec::new();
    for &n in sizes {
        let mut rng = workload::rng(42);
        let pts_re = workload::random_points(&mut rng, n, -1.0, 1.0);
        let pts_im = workload::random_points(&mut rng, n, -1.0, 1.0);
        let iops = fft_iops(n);

        // IGen configurations.
        let re0 = workload::intervals_1ulp(&pts_re);
        let im0 = workload::intervals_1ulp(&pts_im);
        let tw = twiddles::<F64I>(n);
        for (cfg, lanes) in [("IGen-ss", 1usize), ("IGen-sv", 2), ("IGen-vv", 4)] {
            let t = median_time(reps(), || {
                let mut re = re0.clone();
                let mut im = im0.clone();
                match lanes {
                    1 => fft(&mut re, &mut im, &tw),
                    2 => fft_unrolled::<F64I, 2>(&mut re, &mut im, &tw),
                    _ => fft_unrolled::<F64I, 4>(&mut re, &mut im, &tw),
                }
                sink(re);
            });
            rows.push(report("fft", cfg, n, iops, t));
        }
        // Double-double.
        let mut rng_dd = workload::rng(43);
        let red: Vec<DdI> = workload::dd_intervals_1ulp(&mut rng_dd, n, -1.0, 1.0);
        let imd: Vec<DdI> = workload::dd_intervals_1ulp(&mut rng_dd, n, -1.0, 1.0);
        let twd = twiddles::<DdI>(n);
        for (cfg, lanes) in [("IGen-sv-dd", 2usize), ("IGen-vv-dd", 4)] {
            let t = median_time(reps(), || {
                let mut re = red.clone();
                let mut im = imd.clone();
                if lanes == 2 {
                    fft_unrolled::<DdI, 2>(&mut re, &mut im, &twd);
                } else {
                    fft_unrolled::<DdI, 4>(&mut re, &mut im, &twd);
                }
                sink(re);
            });
            rows.push(report("fft", cfg, n, iops, t));
        }
        // Library baselines (scalar only, like the paper).
        rows.push(lib_fft::<BoostI>("Boost", n, &pts_re, &pts_im, iops));
        rows.push(lib_fft::<FilibI>("Filib", n, &pts_re, &pts_im, iops));
        rows.push(lib_fft::<GaolI>("Gaol", n, &pts_re, &pts_im, iops));
    }
    write_csv("fft_interval_perf.csv", "bench,config,n,iops,us,iops_per_cycle", &rows);
}

fn lib_fft<T: Numeric>(name: &str, n: usize, pre: &[f64], pim: &[f64], iops: u64) -> String {
    let re0: Vec<T> = pre.iter().map(|&x| one_ulp::<T>(x)).collect();
    let im0: Vec<T> = pim.iter().map(|&x| one_ulp::<T>(x)).collect();
    let tw = twiddles::<T>(n);
    let t = median_time(reps(), || {
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft(&mut re, &mut im, &tw);
        sink(re);
    });
    report("fft", name, n, iops, t)
}

/// 1-ulp interval in any Numeric back end.
fn one_ulp<T: Numeric>(x: f64) -> T {
    // from_f64_enclose gives ±1 ulp (2-ulp width) for the baselines;
    // close enough to the 1-ulp inputs and identical across libraries.
    T::from_f64_enclose(x)
}

fn run_gemm(full: bool) {
    let sizes: &[usize] = if full { &[56, 168, 280, 392, 504, 616] } else { &[56, 120, 184] };
    let mut rows = Vec::new();
    for &n in sizes {
        let mut rng = workload::rng(7);
        let pa = workload::random_points(&mut rng, n * n, -1.0, 1.0);
        let pb = workload::random_points(&mut rng, n * n, -1.0, 1.0);
        let iops = gemm_iops(n);
        macro_rules! gemm_cfg {
            ($name:expr, $ty:ty, $call:expr) => {{
                let a: Vec<$ty> = pa.iter().map(|&x| one_ulp::<$ty>(x)).collect();
                let b: Vec<$ty> = pb.iter().map(|&x| one_ulp::<$ty>(x)).collect();
                let t = median_time(reps(), || {
                    let mut c = vec![<$ty as Numeric>::zero(); n * n];
                    #[allow(clippy::redundant_closure_call)]
                    ($call)(n, &a, &b, &mut c);
                    sink(c);
                });
                rows.push(report("gemm", $name, n, iops, t));
            }};
        }
        gemm_cfg!("IGen-ss", F64I, |n, a: &Vec<F64I>, b: &Vec<F64I>, c: &mut Vec<F64I>| gemm(
            n, n, n, a, b, c
        ));
        gemm_cfg!("IGen-sv", F64I, |n, a: &Vec<F64I>, b: &Vec<F64I>, c: &mut Vec<F64I>| {
            gemm_unrolled::<F64I, 2>(n, n, n, a, b, c)
        });
        gemm_cfg!("IGen-vv", F64I, |n, a: &Vec<F64I>, b: &Vec<F64I>, c: &mut Vec<F64I>| {
            gemm_unrolled::<F64I, 4>(n, n, n, a, b, c)
        });
        gemm_cfg!("IGen-sv-dd", DdI, |n, a: &Vec<DdI>, b: &Vec<DdI>, c: &mut Vec<DdI>| {
            gemm_unrolled::<DdI, 2>(n, n, n, a, b, c)
        });
        gemm_cfg!("Boost", BoostI, |n, a: &Vec<BoostI>, b: &Vec<BoostI>, c: &mut Vec<BoostI>| {
            gemm(n, n, n, a, b, c)
        });
        gemm_cfg!("Filib", FilibI, |n, a: &Vec<FilibI>, b: &Vec<FilibI>, c: &mut Vec<FilibI>| {
            gemm(n, n, n, a, b, c)
        });
        gemm_cfg!("Gaol", GaolI, |n, a: &Vec<GaolI>, b: &Vec<GaolI>, c: &mut Vec<GaolI>| {
            gemm(n, n, n, a, b, c)
        });
    }
    write_csv("gemm_interval_perf.csv", "bench,config,n,iops,us,iops_per_cycle", &rows);
}

fn run_potrf(full: bool) {
    let sizes: &[usize] = if full { &[4, 28, 52, 76, 100, 124] } else { &[4, 28, 76] };
    let mut rows = Vec::new();
    for &n in sizes {
        let mut rng = workload::rng(11);
        let spd = workload::spd_matrix(&mut rng, n);
        let iops = potrf_iops(n);
        macro_rules! potrf_cfg {
            ($name:expr, $ty:ty, $call:expr) => {{
                let a0: Vec<$ty> = spd.iter().map(|&x| one_ulp::<$ty>(x)).collect();
                let t = median_time(reps(), || {
                    let mut a = a0.clone();
                    #[allow(clippy::redundant_closure_call)]
                    ($call)(n, &mut a);
                    sink(a);
                });
                rows.push(report("potrf", $name, n, iops, t));
            }};
        }
        potrf_cfg!("IGen-ss", F64I, |n, a: &mut Vec<F64I>| potrf(n, a));
        potrf_cfg!("IGen-sv", F64I, |n, a: &mut Vec<F64I>| potrf_unrolled::<F64I, 2>(n, a));
        potrf_cfg!("IGen-vv", F64I, |n, a: &mut Vec<F64I>| potrf_unrolled::<F64I, 4>(n, a));
        potrf_cfg!("IGen-sv-dd", DdI, |n, a: &mut Vec<DdI>| potrf_unrolled::<DdI, 2>(n, a));
        potrf_cfg!("Boost", BoostI, |n, a: &mut Vec<BoostI>| potrf(n, a));
        potrf_cfg!("Filib", FilibI, |n, a: &mut Vec<FilibI>| potrf(n, a));
        potrf_cfg!("Gaol", GaolI, |n, a: &mut Vec<GaolI>| potrf(n, a));
    }
    write_csv("potrf_interval_perf.csv", "bench,config,n,iops,us,iops_per_cycle", &rows);
}

fn run_ffnn(full: bool) {
    let sizes: &[usize] = if full { &[40, 80, 120, 160, 200] } else { &[40, 80, 120] };
    let mut rows = Vec::new();
    for &n in sizes {
        let net = Ffnn::synthetic(n, 42);
        let input = Ffnn::synthetic_input(1);
        let iops = net.iops();
        macro_rules! ffnn_cfg {
            ($name:expr, $ty:ty, $lanes:expr) => {{
                let t = median_time(reps(), || {
                    let out: Vec<$ty> = if $lanes == 1 {
                        net.forward::<$ty>(&input)
                    } else if $lanes == 2 {
                        net.forward_unrolled::<$ty, 2>(&input)
                    } else {
                        net.forward_unrolled::<$ty, 4>(&input)
                    };
                    sink(out);
                });
                rows.push(report("ffnn", $name, n, iops, t));
            }};
        }
        ffnn_cfg!("IGen-ss", F64I, 1);
        ffnn_cfg!("IGen-sv", F64I, 2);
        ffnn_cfg!("IGen-vv", F64I, 4);
        ffnn_cfg!("IGen-sv-dd", DdI, 2);
        ffnn_cfg!("Boost", BoostI, 1);
        ffnn_cfg!("Filib", FilibI, 1);
        ffnn_cfg!("Gaol", GaolI, 1);
    }
    write_csv("ffnn_interval_perf.csv", "bench,config,n,iops,us,iops_per_cycle", &rows);
}
