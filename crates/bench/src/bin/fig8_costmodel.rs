//! Hardware-cost-model companion to Fig. 8: the same gemm dataflow
//! comparison with directed rounding priced at one flop per op (as on the
//! paper's machine with MXCSR set upward), isolating the algorithmic
//! branch-free-vs-branchy comparison from this workspace's software
//! rounding tax. See `igen_baselines::costmodel` for the caveats.

use igen_baselines::costmodel::{ModelIGenI, ModelLibI};
use igen_bench::{full_mode, iops_per_cycle, median_time, reps, sink, write_csv};
use igen_kernels::workload;

fn main() {
    let sizes: &[usize] = if full_mode() { &[56, 168, 280, 392] } else { &[56, 120, 184] };
    let mut rows = Vec::new();
    println!("== Fig. 8 cost-model ablation (gemm, hardware-priced directed ops) ==");
    for &n in sizes {
        let mut rng = workload::rng(7);
        let pa = workload::random_points(&mut rng, n * n, -1.0, 1.0);
        let pb = workload::random_points(&mut rng, n * n, -1.0, 1.0);
        let iops = 2 * (n as u64).pow(3);

        let ag: Vec<ModelIGenI> = pa.iter().map(|&x| ModelIGenI::point(x)).collect();
        let bg: Vec<ModelIGenI> = pb.iter().map(|&x| ModelIGenI::point(x)).collect();
        let t_igen = median_time(reps(), || {
            let mut c = vec![ModelIGenI::default(); n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = c[i * n + j];
                    for p in 0..n {
                        acc = acc + ag[i * n + p] * bg[p * n + j];
                    }
                    c[i * n + j] = acc;
                }
            }
            sink(c);
        });

        let al: Vec<ModelLibI> = pa.iter().map(|&x| ModelLibI::point(x)).collect();
        let bl: Vec<ModelLibI> = pb.iter().map(|&x| ModelLibI::point(x)).collect();
        let t_lib = median_time(reps(), || {
            let mut c = vec![ModelLibI::default(); n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = c[i * n + j];
                    for p in 0..n {
                        acc = acc + al[i * n + p] * bl[p * n + j];
                    }
                    c[i * n + j] = acc;
                }
            }
            sink(c);
        });

        // Float baseline for the slowdown column (Table V's cost-model
        // counterpart).
        let t_base = median_time(reps(), || {
            let mut c = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = c[i * n + j];
                    for p in 0..n {
                        acc += pa[i * n + p] * pb[p * n + j];
                    }
                    c[i * n + j] = acc;
                }
            }
            sink(c);
        });
        let (g, l) = (iops_per_cycle(iops, t_igen), iops_per_cycle(iops, t_lib));
        let sd = t_igen.as_secs_f64() / t_base.as_secs_f64();
        println!(
            "gemm n={n:<4} IGen-model {g:.4} iops/cyc   Lib-model {l:.4} iops/cyc   speedup {:.2}x   slowdown-vs-float {sd:.1}x",
            g / l
        );
        rows.push(format!("{n},{g:.5},{l:.5},{:.3},{sd:.2}", g / l));
    }
    write_csv(
        "gemm_costmodel.csv",
        "n,igen_model_ipc,lib_model_ipc,speedup,slowdown_vs_float",
        &rows,
    );
}
