//! Fig. 9a (real performance of IGen-vv vs. the non-interval baseline),
//! Fig. 9b (certified accuracy, double vs. double-double), and Table V
//! (slowdown of the IGen configurations relative to the float input
//! program) — one binary because they share the measured runs.
//!
//! Paper sizes: fft-64, potrf-124, ffnn-200, gemm-616 (the quick mode
//! scales gemm/ffnn down; pass `--full` for the paper's sizes).

use igen_bench::{
    full_mode, host_line, median_time, reps, sink, write_csv_with_comments, NOMINAL_GHZ,
};
use igen_interval::{DdI, F64I};
use igen_kernels::ffnn::Ffnn;
use igen_kernels::linalg::{gemm_iops, gemm_unrolled, potrf_iops, potrf_unrolled};
use igen_kernels::workload;
use igen_kernels::{fft_iops, fft_unrolled, twiddles, Numeric};
use std::time::Duration;

struct Meas {
    bench: &'static str,
    n: usize,
    /// flops of the float baseline (one interval op = 2+ flops).
    baseline_flops: u64,
    t_base: Duration,
    t_sv: Duration,
    t_vv: Duration,
    t_sv_dd: Duration,
    t_vv_dd: Duration,
    bits_f64: f64,
    bits_dd: f64,
}

fn main() {
    let full = full_mode();
    let ms = vec![
        fft_meas(64),
        potrf_meas(if full { 124 } else { 60 }),
        ffnn_meas(if full { 200 } else { 80 }),
        gemm_meas(if full { 616 } else { 120 }),
    ];

    println!("\n== Fig. 9a: real performance [flops/cycle] (IGen-vv vs baseline) ==");
    let mut rows9a = Vec::new();
    for m in &ms {
        let fl = |t: &Duration| m.baseline_flops as f64 / (t.as_secs_f64() * NOMINAL_GHZ * 1e9);
        println!(
            "{:6} n={:<4} baseline {:>7.3}  IGen-vv(dbl) {:>7.3}  IGen-vv(dd) {:>7.3}",
            m.bench,
            m.n,
            fl(&m.t_base),
            fl(&m.t_vv),
            fl(&m.t_vv_dd)
        );
        rows9a.push(format!(
            "{},{},{:.4},{:.4},{:.4}",
            m.bench,
            m.n,
            fl(&m.t_base),
            fl(&m.t_vv),
            fl(&m.t_vv_dd)
        ));
    }
    let host = [host_line(igen_batch::available_threads())];
    write_csv_with_comments(
        "real_perf.csv",
        &host,
        "bench,n,baseline_fpc,igen_vv_dbl_fpc,igen_vv_dd_fpc",
        &rows9a,
    );

    println!("\n== Fig. 9b: certified accuracy [bits] ==");
    let mut rows9b = Vec::new();
    for m in &ms {
        println!(
            "{:6} n={:<4} double {:>6.1} bits   double-double {:>6.1} bits",
            m.bench, m.n, m.bits_f64, m.bits_dd
        );
        rows9b.push(format!("{},{},{:.2},{:.2}", m.bench, m.n, m.bits_f64, m.bits_dd));
    }
    write_csv_with_comments("accuracy.csv", &host, "bench,n,bits_double,bits_dd", &rows9b);

    println!("\n== Table V: slowdown of IGen configurations vs float input ==");
    println!("{:12} {:>8} {:>8} {:>8} {:>8}", "Name", "Dbl sv", "Dbl vv", "DD sv", "DD vv");
    let mut rows5 = Vec::new();
    for m in &ms {
        let sd = |t: &Duration| t.as_secs_f64() / m.t_base.as_secs_f64();
        println!(
            "{:12} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            format!("{}-{}", m.bench, m.n),
            sd(&m.t_sv),
            sd(&m.t_vv),
            sd(&m.t_sv_dd),
            sd(&m.t_vv_dd)
        );
        rows5.push(format!(
            "{},{},{:.2},{:.2},{:.2},{:.2}",
            m.bench,
            m.n,
            sd(&m.t_sv),
            sd(&m.t_vv),
            sd(&m.t_sv_dd),
            sd(&m.t_vv_dd)
        ));
    }
    write_csv_with_comments("overhead.csv", &host, "bench,n,dbl_sv,dbl_vv,dd_sv,dd_vv", &rows5);
}

fn fft_meas(n: usize) -> Meas {
    let mut rng = workload::rng(42);
    let pre = workload::random_points(&mut rng, n, -1.0, 1.0);
    let pim = workload::random_points(&mut rng, n, -1.0, 1.0);
    // Float baseline.
    let twf = twiddles::<f64>(n);
    let t_base = median_time(reps(), || {
        let mut re = pre.clone();
        let mut im = pim.clone();
        fft_unrolled::<f64, 4>(&mut re, &mut im, &twf);
        sink(re);
    });
    // Interval runs.
    let re0 = workload::intervals_1ulp(&pre);
    let im0 = workload::intervals_1ulp(&pim);
    let tw = twiddles::<F64I>(n);
    let t_sv = median_time(reps(), || {
        let (mut re, mut im) = (re0.clone(), im0.clone());
        fft_unrolled::<F64I, 2>(&mut re, &mut im, &tw);
        sink(re);
    });
    let t_vv = median_time(reps(), || {
        let (mut re, mut im) = (re0.clone(), im0.clone());
        fft_unrolled::<F64I, 4>(&mut re, &mut im, &tw);
        sink(re);
    });
    let bits_f64 = {
        let (mut re, mut im) = (re0.clone(), im0.clone());
        fft_unrolled::<F64I, 4>(&mut re, &mut im, &tw);
        worst_bits(&re) // the minimum certified bits over outputs
    };
    let mut rng_dd = workload::rng(43);
    let red = workload::dd_intervals_1ulp(&mut rng_dd, n, -1.0, 1.0);
    let imd = workload::dd_intervals_1ulp(&mut rng_dd, n, -1.0, 1.0);
    let twd = twiddles::<DdI>(n);
    let t_sv_dd = median_time(reps(), || {
        let (mut re, mut im) = (red.clone(), imd.clone());
        fft_unrolled::<DdI, 2>(&mut re, &mut im, &twd);
        sink(re);
    });
    let t_vv_dd = median_time(reps(), || {
        let (mut re, mut im) = (red.clone(), imd.clone());
        fft_unrolled::<DdI, 4>(&mut re, &mut im, &twd);
        sink(re);
    });
    let bits_dd = {
        let (mut re, mut im) = (red.clone(), imd.clone());
        fft_unrolled::<DdI, 4>(&mut re, &mut im, &twd);
        worst_bits(&re)
    };
    Meas {
        bench: "fft",
        n,
        baseline_flops: fft_iops(n), // 1 flop per counted op in the baseline
        t_base,
        t_sv,
        t_vv,
        t_sv_dd,
        t_vv_dd,
        bits_f64,
        bits_dd,
    }
}

fn worst_bits<T: Numeric>(v: &[T]) -> f64 {
    v.iter().map(|x| x.certified_bits_n()).fold(f64::INFINITY, f64::min)
}

fn gemm_meas(n: usize) -> Meas {
    let mut rng = workload::rng(7);
    let pa = workload::random_points(&mut rng, n * n, -1.0, 1.0);
    let pb = workload::random_points(&mut rng, n * n, -1.0, 1.0);
    let run = |a: &Vec<f64>, b: &Vec<f64>| {
        let mut c = vec![0.0f64; n * n];
        gemm_unrolled::<f64, 4>(n, n, n, a, b, &mut c);
        sink(c);
    };
    let t_base = median_time(reps(), || run(&pa, &pb));
    let ai = workload::intervals_1ulp(&pa);
    let bi = workload::intervals_1ulp(&pb);
    let t_sv = median_time(reps(), || {
        let mut c = vec![F64I::ZERO; n * n];
        gemm_unrolled::<F64I, 2>(n, n, n, &ai, &bi, &mut c);
        sink(c);
    });
    let (t_vv, bits_f64) = {
        let mut c = vec![F64I::ZERO; n * n];
        gemm_unrolled::<F64I, 4>(n, n, n, &ai, &bi, &mut c);
        let bits = worst_bits(&c);
        let t = median_time(reps(), || {
            let mut c = vec![F64I::ZERO; n * n];
            gemm_unrolled::<F64I, 4>(n, n, n, &ai, &bi, &mut c);
            sink(c);
        });
        (t, bits)
    };
    let mut rng_dd = workload::rng(8);
    let ad = workload::dd_intervals_1ulp(&mut rng_dd, n * n, -1.0, 1.0);
    let bd = workload::dd_intervals_1ulp(&mut rng_dd, n * n, -1.0, 1.0);
    let t_sv_dd = median_time(reps(), || {
        let mut c = vec![DdI::ZERO; n * n];
        gemm_unrolled::<DdI, 2>(n, n, n, &ad, &bd, &mut c);
        sink(c);
    });
    let (t_vv_dd, bits_dd) = {
        let mut c = vec![DdI::ZERO; n * n];
        gemm_unrolled::<DdI, 4>(n, n, n, &ad, &bd, &mut c);
        let bits = worst_bits(&c);
        let t = median_time(reps(), || {
            let mut c = vec![DdI::ZERO; n * n];
            gemm_unrolled::<DdI, 4>(n, n, n, &ad, &bd, &mut c);
            sink(c);
        });
        (t, bits)
    };
    Meas {
        bench: "gemm",
        n,
        baseline_flops: gemm_iops(n),
        t_base,
        t_sv,
        t_vv,
        t_sv_dd,
        t_vv_dd,
        bits_f64,
        bits_dd,
    }
}

fn potrf_meas(n: usize) -> Meas {
    let mut rng = workload::rng(11);
    let spd = workload::spd_matrix(&mut rng, n);
    let t_base = median_time(reps(), || {
        let mut a = spd.clone();
        potrf_unrolled::<f64, 4>(n, &mut a);
        sink(a);
    });
    let a0: Vec<F64I> =
        spd.iter().map(|&x| F64I::new(x, igen_round::next_up(x)).unwrap()).collect();
    let t_sv = median_time(reps(), || {
        let mut a = a0.clone();
        potrf_unrolled::<F64I, 2>(n, &mut a);
        sink(a);
    });
    let (t_vv, bits_f64) = {
        let mut a = a0.clone();
        potrf_unrolled::<F64I, 4>(n, &mut a);
        // Accuracy over the lower triangle.
        let mut bits = f64::INFINITY;
        for i in 0..n {
            for j in 0..=i {
                bits = bits.min(a[i * n + j].certified_bits());
            }
        }
        let t = median_time(reps(), || {
            let mut a = a0.clone();
            potrf_unrolled::<F64I, 4>(n, &mut a);
            sink(a);
        });
        (t, bits)
    };
    // DD inputs: the matrix entries are exact doubles; dd intervals start
    // as points (the paper's dd inputs have width ulp(x_lo), i.e. ~2^-105
    // relative — indistinguishable from points at this scale).
    let ad: Vec<DdI> = spd.iter().map(|&x| DdI::point_f64(x)).collect();
    let t_sv_dd = median_time(reps(), || {
        let mut a = ad.clone();
        potrf_unrolled::<DdI, 2>(n, &mut a);
        sink(a);
    });
    let (t_vv_dd, bits_dd) = {
        let mut a = ad.clone();
        potrf_unrolled::<DdI, 4>(n, &mut a);
        let mut bits = f64::INFINITY;
        for i in 0..n {
            for j in 0..=i {
                bits = bits.min(a[i * n + j].certified_bits());
            }
        }
        let t = median_time(reps(), || {
            let mut a = ad.clone();
            potrf_unrolled::<DdI, 4>(n, &mut a);
            sink(a);
        });
        (t, bits)
    };
    Meas {
        bench: "potrf",
        n,
        baseline_flops: potrf_iops(n),
        t_base,
        t_sv,
        t_vv,
        t_sv_dd,
        t_vv_dd,
        bits_f64,
        bits_dd,
    }
}

fn ffnn_meas(n: usize) -> Meas {
    let net = Ffnn::synthetic(n, 42);
    let input = Ffnn::synthetic_input(1);
    let t_base = median_time(reps(), || {
        sink(net.forward_unrolled::<f64, 4>(&input));
    });
    let t_sv = median_time(reps(), || {
        sink(net.forward_unrolled::<F64I, 2>(&input));
    });
    let t_vv = median_time(reps(), || {
        sink(net.forward_unrolled::<F64I, 4>(&input));
    });
    let bits_f64 = worst_bits(&net.forward_unrolled::<F64I, 4>(&input));
    let t_sv_dd = median_time(reps(), || {
        sink(net.forward_unrolled::<DdI, 2>(&input));
    });
    let t_vv_dd = median_time(reps(), || {
        sink(net.forward_unrolled::<DdI, 4>(&input));
    });
    let bits_dd = worst_bits(&net.forward_unrolled::<DdI, 4>(&input));
    Meas {
        bench: "ffnn",
        n,
        baseline_flops: net.iops(),
        t_base,
        t_sv,
        t_vv,
        t_sv_dd,
        t_vv_dd,
        bits_f64,
        bits_dd,
    }
}
