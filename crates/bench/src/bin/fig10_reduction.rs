//! Fig. 10 and the Section VII-B runtime paragraph: accuracy improvement
//! of the reduction transformation on the mvm benchmark (`y = Ax + y`,
//! m = 10, n = 10^2…10^5, 10% and 45% negative inputs), in double and
//! double-double precision, with and without the transformation; plus the
//! slowdown figures relative to the non-interval input.

use igen_bench::{full_mode, median_time, reps, sink, write_csv};
use igen_interval::{DdI, F64I};
use igen_kernels::linalg::{mvm, mvm_acc_dd, mvm_acc_f64};
use igen_kernels::workload;
use igen_kernels::Numeric;

const M: usize = 10;

fn main() {
    let sizes: Vec<usize> =
        if full_mode() { vec![100, 1_000, 10_000, 100_000] } else { vec![100, 1_000, 10_000] };
    println!("== Fig. 10: mvm reduction accuracy [avg bits] (without -> with transformation) ==");
    let mut rows = Vec::new();
    for &pct in &[10u32, 45] {
        for &n in &sizes {
            let mut rng = workload::rng(1000 + pct as u64);
            let a = workload::signed_magnitudes(&mut rng, M * n, pct);
            let x = workload::signed_magnitudes(&mut rng, n, pct);
            let y = workload::signed_magnitudes(&mut rng, M, pct);

            // Double precision.
            let ai: Vec<F64I> = a.iter().map(|&v| F64I::point(v)).collect();
            let xi: Vec<F64I> = x.iter().map(|&v| F64I::point(v)).collect();
            let yi: Vec<F64I> = y.iter().map(|&v| F64I::point(v)).collect();
            let mut plain = yi.clone();
            mvm(M, n, &ai, &xi, &mut plain);
            let mut acc = yi.clone();
            mvm_acc_f64(M, n, &ai, &xi, &mut acc);
            let b_plain = avg_bits(&plain);
            let b_acc = avg_bits(&acc);

            // Double-double.
            let ad: Vec<DdI> = a.iter().map(|&v| DdI::point_f64(v)).collect();
            let xd: Vec<DdI> = x.iter().map(|&v| DdI::point_f64(v)).collect();
            let yd: Vec<DdI> = y.iter().map(|&v| DdI::point_f64(v)).collect();
            let mut plain_d = yd.clone();
            mvm(M, n, &ad, &xd, &mut plain_d);
            let mut acc_d = yd.clone();
            mvm_acc_dd(M, n, &ad, &xd, &mut acc_d);
            let bd_plain = avg_bits(&plain_d);
            let bd_acc = avg_bits(&acc_d);

            println!(
                "(10^{}, {pct:2}%)  double: {b_plain:5.1} -> {b_acc:5.1}   dd: {bd_plain:5.1} -> {bd_acc:5.1}",
                (n as f64).log10() as u32
            );
            rows.push(format!("{n},{pct},{b_plain:.2},{b_acc:.2},{bd_plain:.2},{bd_acc:.2}"));
        }
    }
    write_csv(
        "mvm_reduction_accuracy.csv",
        "n,pct_negative,dbl_plain_bits,dbl_acc_bits,dd_plain_bits,dd_acc_bits",
        &rows,
    );

    // Runtime paragraph of Section VII-B.
    println!("\n== Reduction runtime (slowdown vs non-interval input, m=10) ==");
    let n = if full_mode() { 10_000 } else { 2_000 };
    let mut rng = workload::rng(5);
    let a = workload::signed_magnitudes(&mut rng, M * n, 10);
    let x = workload::signed_magnitudes(&mut rng, n, 10);
    let y = workload::signed_magnitudes(&mut rng, M, 10);
    let t_float = median_time(reps(), || {
        let mut yy = y.clone();
        mvm(M, n, &a, &x, &mut yy);
        sink(yy);
    });
    let ai: Vec<F64I> = a.iter().map(|&v| F64I::point(v)).collect();
    let xi: Vec<F64I> = x.iter().map(|&v| F64I::point(v)).collect();
    let yi: Vec<F64I> = y.iter().map(|&v| F64I::point(v)).collect();
    let t_plain = median_time(reps(), || {
        let mut yy = yi.clone();
        mvm(M, n, &ai, &xi, &mut yy);
        sink(yy);
    });
    let t_acc = median_time(reps(), || {
        let mut yy = yi.clone();
        mvm_acc_f64(M, n, &ai, &xi, &mut yy);
        sink(yy);
    });
    let ad: Vec<DdI> = a.iter().map(|&v| DdI::point_f64(v)).collect();
    let xd: Vec<DdI> = x.iter().map(|&v| DdI::point_f64(v)).collect();
    let yd: Vec<DdI> = y.iter().map(|&v| DdI::point_f64(v)).collect();
    let t_plain_dd = median_time(reps(), || {
        let mut yy = yd.clone();
        mvm(M, n, &ad, &xd, &mut yy);
        sink(yy);
    });
    let t_acc_dd = median_time(reps(), || {
        let mut yy = yd.clone();
        mvm_acc_dd(M, n, &ad, &xd, &mut yy);
        sink(yy);
    });
    let sd = |t: std::time::Duration| t.as_secs_f64() / t_float.as_secs_f64();
    println!("without transformation:  double {:.1}x   dd {:.1}x", sd(t_plain), sd(t_plain_dd));
    println!("with    transformation:  double {:.1}x   dd {:.1}x", sd(t_acc), sd(t_acc_dd));
    write_csv(
        "mvm_reduction_runtime.csv",
        "config,slowdown",
        &[
            format!("dbl_plain,{:.2}", sd(t_plain)),
            format!("dbl_acc,{:.2}", sd(t_acc)),
            format!("dd_plain,{:.2}", sd(t_plain_dd)),
            format!("dd_acc,{:.2}", sd(t_acc_dd)),
        ],
    );
}

fn avg_bits<T: Numeric>(v: &[T]) -> f64 {
    v.iter().map(|x| x.certified_bits_n()).sum::<f64>() / v.len() as f64
}
