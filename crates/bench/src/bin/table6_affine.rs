//! Table VI: certified accuracy and slowdown of the Hénon map and the
//! FFT benchmark for double intervals (`f64i`), double-double intervals
//! (`ddi`) and affine arithmetic (the YalAA substitute).
//!
//! Accuracy is "the average of the minimum number of certified bits
//! across 100 runs"; here the computations are deterministic so a single
//! run suffices (noted in EXPERIMENTS.md).

use igen_affine::Aff;
use igen_bench::{full_mode, median_time, reps, sink, write_csv};
use igen_interval::{DdI, F64I};
use igen_kernels::workload;
use igen_kernels::{fft, henon, henon_affine, twiddles, Numeric};

fn main() {
    println!("== Table VI (Henon map): accuracy [bits] and slowdown ==");
    println!(
        "{:>10} {:>6} {:>6} {:>6} | {:>8} {:>8} {:>10}",
        "iters", "f64i", "ddi", "aff", "sd f64i", "sd ddi", "sd aff"
    );
    let iters: &[usize] = &[10, 50, 90, 130, 170];
    let mut rows = Vec::new();
    for &it in iters {
        let b_f: f64 = henon::<F64I>(it).certified_bits();
        let b_d: f64 = henon::<DdI>(it).certified_bits();
        let b_a: f64 = henon_affine(it).certified_bits();
        let t_float = median_time(reps(), || {
            sink(henon::<f64>(it));
        });
        let t_f = median_time(reps(), || {
            sink(henon::<F64I>(it));
        });
        let t_d = median_time(reps(), || {
            sink(henon::<DdI>(it));
        });
        let t_a = median_time(reps().min(3), || {
            sink(henon_affine(it));
        });
        let sd = |t: std::time::Duration| t.as_secs_f64() / t_float.as_secs_f64();
        println!(
            "{it:>10} {b_f:>6.0} {b_d:>6.0} {b_a:>6.0} | {:>8.1} {:>8.1} {:>10.0}",
            sd(t_f),
            sd(t_d),
            sd(t_a)
        );
        rows.push(format!(
            "{it},{b_f:.1},{b_d:.1},{b_a:.1},{:.2},{:.2},{:.2}",
            sd(t_f),
            sd(t_d),
            sd(t_a)
        ));
    }
    write_csv(
        "henon_table6.csv",
        "iterations,bits_f64i,bits_ddi,bits_aff,sd_f64i,sd_ddi,sd_aff",
        &rows,
    );

    println!("\n== Table VI (FFT): accuracy [bits] and slowdown ==");
    println!(
        "{:>6} {:>6} {:>6} {:>6} | {:>8} {:>8} {:>10}",
        "size", "f64i", "ddi", "aff", "sd f64i", "sd ddi", "sd aff"
    );
    let sizes: &[usize] = if full_mode() { &[16, 32, 64, 128, 256] } else { &[16, 32, 64] };
    let mut rows = Vec::new();
    for &n in sizes {
        let mut rng = workload::rng(99);
        let pre = workload::random_points(&mut rng, n, -1.0, 1.0);
        let pim = workload::random_points(&mut rng, n, -1.0, 1.0);

        // Float baseline time.
        let twf = twiddles::<f64>(n);
        let t_float = median_time(reps(), || {
            let (mut re, mut im) = (pre.clone(), pim.clone());
            fft(&mut re, &mut im, &twf);
            sink(re);
        });

        // f64i.
        let re0 = workload::intervals_1ulp(&pre);
        let im0 = workload::intervals_1ulp(&pim);
        let twi = twiddles::<F64I>(n);
        let (mut re, mut im) = (re0.clone(), im0.clone());
        fft(&mut re, &mut im, &twi);
        let b_f = min_bits(&re).min(min_bits(&im));
        let t_f = median_time(reps(), || {
            let (mut re, mut im) = (re0.clone(), im0.clone());
            fft(&mut re, &mut im, &twi);
            sink(re);
        });

        // ddi.
        let mut rng_dd = workload::rng(100);
        let red = workload::dd_intervals_1ulp(&mut rng_dd, n, -1.0, 1.0);
        let imd = workload::dd_intervals_1ulp(&mut rng_dd, n, -1.0, 1.0);
        let twd = twiddles::<DdI>(n);
        let (mut rd, mut id) = (red.clone(), imd.clone());
        fft(&mut rd, &mut id, &twd);
        let b_d = min_bits(&rd).min(min_bits(&id));
        let t_d = median_time(reps(), || {
            let (mut rd, mut id) = (red.clone(), imd.clone());
            fft(&mut rd, &mut id, &twd);
            sink(rd);
        });

        // Affine: the FFT with affine coefficients (clone-based; this is
        // what makes it orders of magnitude slower, exactly like YalAA).
        let (ra, ia) = affine_fft(&pre, &pim, n);
        let b_a =
            ra.iter().chain(ia.iter()).map(|a| a.certified_bits()).fold(f64::INFINITY, f64::min);
        let t_a = median_time(2, || {
            sink(affine_fft(&pre, &pim, n));
        });

        let sd = |t: std::time::Duration| t.as_secs_f64() / t_float.as_secs_f64();
        println!(
            "{n:>6} {b_f:>6.0} {b_d:>6.0} {b_a:>6.0} | {:>8.1} {:>8.1} {:>10.0}",
            sd(t_f),
            sd(t_d),
            sd(t_a)
        );
        rows.push(format!(
            "{n},{b_f:.1},{b_d:.1},{b_a:.1},{:.2},{:.2},{:.2}",
            sd(t_f),
            sd(t_d),
            sd(t_a)
        ));
    }
    write_csv("fft_table6.csv", "size,bits_f64i,bits_ddi,bits_aff,sd_f64i,sd_ddi,sd_aff", &rows);
}

fn min_bits<T: Numeric>(v: &[T]) -> f64 {
    v.iter().map(|x| x.certified_bits_n()).fold(f64::INFINITY, f64::min)
}

/// Radix-2 FFT over affine forms (cloned term lists — the cost profile
/// of affine arithmetic).
fn affine_fft(pre: &[f64], pim: &[f64], n: usize) -> (Vec<Aff>, Vec<Aff>) {
    let mut re: Vec<Aff> = pre.iter().map(|&v| Aff::with_tol(v, igen_round::ulp(v))).collect();
    let mut im: Vec<Aff> = pim.iter().map(|&v| Aff::with_tol(v, igen_round::ulp(v))).collect();
    // Bit reversal.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    let tw: Vec<(Aff, Aff)> = (0..n / 2)
        .map(|k| {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            (
                Aff::with_tol(ang.cos(), igen_round::ulp(ang.cos())),
                Aff::with_tol(ang.sin(), igen_round::ulp(ang.sin())),
            )
        })
        .collect();
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for base in (0..n).step_by(len) {
            for k in 0..half {
                let (wr, wi) = &tw[k * step];
                let i = base + k;
                let j = i + half;
                let tr = wr.clone() * re[j].clone() - wi.clone() * im[j].clone();
                let ti = wr.clone() * im[j].clone() + wi.clone() * re[j].clone();
                let (ur, ui) = (re[i].clone(), im[i].clone());
                re[j] = ur.clone() - tr.clone();
                im[j] = ui.clone() - ti.clone();
                re[i] = ur + tr;
                im[i] = ui + ti;
            }
        }
        len <<= 1;
    }
    (re, im)
}
