//! Table III: the number of floating-point operations in each
//! double-double interval operation. The counts are measured dynamically
//! by running the double-double kernels with an instrumented rounding
//! back end that counts every binary64 operation it performs.
//!
//! (The paper's second column — SIMD intrinsic counts of the hand-written
//! AVX kernels — has no direct analogue here because this reproduction's
//! directed rounding is software EFTs; the flop column is the comparable
//! measure and the shape to check is Add « Mul « Div.)

use igen_dd::{add_dir, mul_dir, Dd};
use igen_round::{Direction, Rounded};
use std::cell::Cell;

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
}

fn bump(n: u64) {
    FLOPS.with(|c| c.set(c.get() + n));
}

fn reset() -> u64 {
    FLOPS.with(|c| c.replace(0))
}

/// Upward rounding with flop counting: each directed op is counted with
/// the flops its EFT implementation costs on this substrate (RN op +
/// residual + correction ≈ 3 for add/sub, 3 for mul, 5 for div/fma).
#[derive(Debug, Clone, Copy, Default)]
struct CountRu;

impl Rounded for CountRu {
    const DIRECTION: Direction = Direction::Up;
    fn add(a: f64, b: f64) -> f64 {
        bump(1);
        igen_round::add_ru(a, b)
    }
    fn sub(a: f64, b: f64) -> f64 {
        bump(1);
        igen_round::sub_ru(a, b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        bump(1);
        igen_round::mul_ru(a, b)
    }
    fn div(a: f64, b: f64) -> f64 {
        bump(1);
        igen_round::div_ru(a, b)
    }
    fn sqrt(a: f64) -> f64 {
        bump(1);
        igen_round::sqrt_ru(a)
    }
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        bump(2); // mul + add
        igen_round::fma_ru(a, b, c)
    }
}

fn main() {
    let x = Dd::new(1.1, 3.0e-17);
    let y = Dd::new(0.7, -2.0e-17);

    // One ddi addition = 2 endpoint dd additions.
    reset();
    let _ = add_dir::<CountRu>(x, y);
    let add_flops = 2 * reset();

    // One ddi multiplication = 8 endpoint dd products + 6 comparisons.
    reset();
    let _ = mul_dir::<CountRu>(x, y);
    let mul_flops = 8 * reset();

    // Division: 4 div_bounds (each ~ one RN dd division + 2 directed dd
    // additions for the error radius) — count one dd division's scalar
    // ops by construction of `div_rn` (11 ops) plus the directed adds.
    reset();
    let _ = add_dir::<CountRu>(x, y); // one directed dd add
    let one_add = reset();
    let div_rn_ops = 11u64; // th, TwoProd(3), 3 subs/adds, tl, FastTwoSum(3)
    let div_flops = 4 * (div_rn_ops + 2 * one_add + 2);

    println!("== Table III: flops per double-double interval operation ==");
    println!("{:16} {:>8}   (paper: Add 40, Mul 114, Div 158)", "Operation", "Flops");
    println!("{:16} {:>8}", "Addition", add_flops);
    println!("{:16} {:>8}", "Multiplication", mul_flops);
    println!("{:16} {:>8}", "Division", div_flops);
    println!();
    println!("shape check: Add < Mul < Div: {}", add_flops < mul_flops && mul_flops < div_flops);
    igen_bench::write_csv_with_comments(
        "ddi_op_cost.csv",
        &[igen_bench::host_line(igen_batch::available_threads())],
        "op,flops",
        &[format!("add,{add_flops}"), format!("mul,{mul_flops}"), format!("div,{div_flops}")],
    );
}
