//! Kernel-level Criterion benchmarks: one representative size per Fig. 8
//! benchmark, across the ss/sv/vv configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use igen_interval::F64I;
use igen_kernels::linalg::{gemm, gemm_unrolled};
use igen_kernels::workload;
use igen_kernels::{fft, fft_unrolled, twiddles};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let n = 64;
    let mut rng = workload::rng(42);
    let re0 = workload::intervals_1ulp(&workload::random_points(&mut rng, n, -1.0, 1.0));
    let im0 = workload::intervals_1ulp(&workload::random_points(&mut rng, n, -1.0, 1.0));
    let tw = twiddles::<F64I>(n);
    let mut g = c.benchmark_group("fft64");
    g.bench_function("ss", |b| {
        b.iter(|| {
            let (mut re, mut im) = (re0.clone(), im0.clone());
            fft(&mut re, &mut im, &tw);
            black_box(re);
        })
    });
    g.bench_function("sv", |b| {
        b.iter(|| {
            let (mut re, mut im) = (re0.clone(), im0.clone());
            fft_unrolled::<F64I, 2>(&mut re, &mut im, &tw);
            black_box(re);
        })
    });
    g.bench_function("vv", |b| {
        b.iter(|| {
            let (mut re, mut im) = (re0.clone(), im0.clone());
            fft_unrolled::<F64I, 4>(&mut re, &mut im, &tw);
            black_box(re);
        })
    });
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let n = 48;
    let mut rng = workload::rng(7);
    let a = workload::intervals_1ulp(&workload::random_points(&mut rng, n * n, -1.0, 1.0));
    let b_ = workload::intervals_1ulp(&workload::random_points(&mut rng, n * n, -1.0, 1.0));
    let mut g = c.benchmark_group("gemm48");
    g.bench_function("ss", |bch| {
        bch.iter(|| {
            let mut cm = vec![F64I::ZERO; n * n];
            gemm(n, n, n, &a, &b_, &mut cm);
            black_box(cm);
        })
    });
    g.bench_function("vv", |bch| {
        bch.iter(|| {
            let mut cm = vec![F64I::ZERO; n * n];
            gemm_unrolled::<F64I, 4>(n, n, n, &a, &b_, &mut cm);
            black_box(cm);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_fft, bench_gemm
}
criterion_main!(benches);
