//! Scalar vs. lane-portable vs. explicit-SIMD comparison for the
//! interval runtime.
//!
//! Three variants per measurement:
//!
//! - `scalar`: plain `F64I` element loops (the bit-identity reference);
//! - `lane_portable`: the `F64Ix4` lane types with the backend forced to
//!   `Portable`, i.e. the compiler-autovectorized lane loops;
//! - `simd`: the same lane types dispatching to the packed
//!   `igen_round::simd` kernels on the host's detected backend.
//!
//! A plain run (without `--test`) records `results/simd_speedup.csv`
//! with per-op and per-paper-kernel rows. Every kernel row routes
//! through the lane types: `gemm` evolves four columns of `C` per
//! packed register (`linalg::gemm_packed`) and `ffnn` forwards four
//! batch items per register group (`Ffnn::forward_lanes`), so the
//! `packed_path` column is `true` across the board.

use criterion::{black_box, Criterion};
use igen_batch::available_threads;
use igen_batch::{
    dot_batch, ffnn_batch, gemm_row_blocks, henon_ensemble, mvm_batch, BatchConfig, BatchF64I,
};
use igen_bench::{host_line, median_time, write_csv_with_comments};
use igen_interval::{F64Ix4, LaneOps, F64I};
use igen_kernels::ffnn::Ffnn;
use igen_kernels::{henon_from, linalg, workload};
use igen_round::simd::{self, Backend};
use std::time::Duration;

/// Lanes per element-wise op measurement (multiple of 4).
const OP_N: usize = 4096;
const DOT_BATCH: usize = 256;
const DOT_N: usize = 256;
const MVM_BATCH: usize = 32;
const MVM_N: usize = 64;
const GEMM_N: usize = 48;
const HENON_BATCH: usize = 2048;
const HENON_ITERS: usize = 50;
const FFNN_WIDTH: usize = 32;
const FFNN_INPUTS: usize = 64;

fn cfg() -> BatchConfig {
    // Single worker: this bench isolates SIMD speedup, not thread scaling.
    BatchConfig::new().with_threads(1)
}

fn sample(seed: u64, len: usize) -> Vec<F64I> {
    let mut rng = workload::rng(seed);
    workload::intervals_1ulp(&workload::random_points(&mut rng, len, -2.0, 2.0))
}

/// Zero-free intervals (for division benchmarks that should stay on the
/// packed path rather than the per-lane screening fallback).
fn sample_positive(seed: u64, len: usize) -> Vec<F64I> {
    let mut rng = workload::rng(seed);
    workload::intervals_1ulp(&workload::random_points(&mut rng, len, 0.5, 2.0))
}

fn to_lanes(xs: &[F64I]) -> Vec<F64Ix4> {
    xs.chunks_exact(4).map(|c| F64Ix4::from_lanes([c[0], c[1], c[2], c[3]])).collect()
}

/// Runs `f` with the dispatch pinned to `bk` (clamped to the host).
fn timed_with_backend(bk: Backend, reps: usize, mut f: impl FnMut()) -> Duration {
    simd::force_backend(Some(bk));
    let t = median_time(reps, &mut f);
    simd::force_backend(None);
    t
}

struct Row {
    name: &'static str,
    packed_path: bool,
    scalar: Duration,
    lane_portable: Duration,
    simd: Duration,
}

fn op_rows(reps: usize) -> Vec<Row> {
    let a = sample(11, OP_N);
    let b = sample_positive(12, OP_N);
    let c = sample(13, OP_N);
    let (va, vb, vc) = (to_lanes(&a), to_lanes(&b), to_lanes(&c));

    type OpSpec<'a> = (&'static str, Box<dyn FnMut() + 'a>, Box<dyn FnMut() + 'a>);
    let specs: Vec<OpSpec> = {
        // Each op gets a scalar closure and a lane closure (each owning
        // its output buffer); the lane one is timed twice, under
        // Portable and under the native backend.
        macro_rules! op {
            ($name:literal, $scalar:expr, $lane:expr) => {
                ($name, Box::new($scalar) as Box<dyn FnMut()>, Box::new($lane) as Box<dyn FnMut()>)
            };
        }
        vec![
            op!(
                "add",
                {
                    let mut out = vec![F64I::point(0.0); OP_N];
                    let (a, b) = (&a, &b);
                    move || {
                        for i in 0..OP_N {
                            out[i] = a[i] + b[i];
                        }
                        black_box(&out);
                    }
                },
                {
                    let mut out = vec![F64Ix4::default(); OP_N / 4];
                    let (va, vb) = (&va, &vb);
                    move || {
                        for i in 0..OP_N / 4 {
                            out[i] = va[i] + vb[i];
                        }
                        black_box(&out);
                    }
                }
            ),
            op!(
                "sub",
                {
                    let mut out = vec![F64I::point(0.0); OP_N];
                    let (a, b) = (&a, &b);
                    move || {
                        for i in 0..OP_N {
                            out[i] = a[i] - b[i];
                        }
                        black_box(&out);
                    }
                },
                {
                    let mut out = vec![F64Ix4::default(); OP_N / 4];
                    let (va, vb) = (&va, &vb);
                    move || {
                        for i in 0..OP_N / 4 {
                            out[i] = va[i] - vb[i];
                        }
                        black_box(&out);
                    }
                }
            ),
            op!(
                "mul",
                {
                    let mut out = vec![F64I::point(0.0); OP_N];
                    let (a, b) = (&a, &b);
                    move || {
                        for i in 0..OP_N {
                            out[i] = a[i] * b[i];
                        }
                        black_box(&out);
                    }
                },
                {
                    let mut out = vec![F64Ix4::default(); OP_N / 4];
                    let (va, vb) = (&va, &vb);
                    move || {
                        for i in 0..OP_N / 4 {
                            out[i] = va[i] * vb[i];
                        }
                        black_box(&out);
                    }
                }
            ),
            op!(
                "div",
                {
                    let mut out = vec![F64I::point(0.0); OP_N];
                    let (a, b) = (&a, &b);
                    move || {
                        for i in 0..OP_N {
                            out[i] = a[i] / b[i];
                        }
                        black_box(&out);
                    }
                },
                {
                    let mut out = vec![F64Ix4::default(); OP_N / 4];
                    let (va, vb) = (&va, &vb);
                    move || {
                        for i in 0..OP_N / 4 {
                            out[i] = va[i] / vb[i];
                        }
                        black_box(&out);
                    }
                }
            ),
            op!(
                "mul_add",
                {
                    let mut out = vec![F64I::point(0.0); OP_N];
                    let (a, b, c) = (&a, &b, &c);
                    move || {
                        for i in 0..OP_N {
                            out[i] = a[i] * b[i] + c[i];
                        }
                        black_box(&out);
                    }
                },
                {
                    let mut out = vec![F64Ix4::default(); OP_N / 4];
                    let (va, vb, vc) = (&va, &vb, &vc);
                    move || {
                        for i in 0..OP_N / 4 {
                            out[i] = va[i].mul_add(vb[i], vc[i]);
                        }
                        black_box(&out);
                    }
                }
            ),
            // sqrt over positive intervals (the guarded packed path; a
            // negative radicand would patch the lane scalar-side).
            op!(
                "sqrt",
                {
                    let mut out = vec![F64I::point(0.0); OP_N];
                    let b = &b;
                    move || {
                        for i in 0..OP_N {
                            out[i] = b[i].sqrt();
                        }
                        black_box(&out);
                    }
                },
                {
                    let mut out = vec![F64Ix4::default(); OP_N / 4];
                    let vb = &vb;
                    move || {
                        for i in 0..OP_N / 4 {
                            out[i] = vb[i].sqrt();
                        }
                        black_box(&out);
                    }
                }
            ),
            op!(
                "sqr",
                {
                    let mut out = vec![F64I::point(0.0); OP_N];
                    let a = &a;
                    move || {
                        for i in 0..OP_N {
                            out[i] = a[i].sqr();
                        }
                        black_box(&out);
                    }
                },
                {
                    let mut out = vec![F64Ix4::default(); OP_N / 4];
                    let va = &va;
                    move || {
                        for i in 0..OP_N / 4 {
                            out[i] = va[i].sqr();
                        }
                        black_box(&out);
                    }
                }
            ),
        ]
    };

    specs
        .into_iter()
        .map(|(name, mut scalar, mut lane)| Row {
            name,
            packed_path: true,
            scalar: median_time(reps, &mut scalar),
            lane_portable: timed_with_backend(Backend::Portable, reps, &mut lane),
            simd: timed_with_backend(simd::detected_backend(), reps, &mut lane),
        })
        .collect()
}

fn kernel_rows(reps: usize) -> Vec<Row> {
    let cfg = cfg();

    // dot
    let xs = sample(21, DOT_BATCH * DOT_N);
    let ys = sample(22, DOT_BATCH * DOT_N);
    let (bxs, bys) = (BatchF64I::from_intervals(&xs), BatchF64I::from_intervals(&ys));
    let dot_scalar = median_time(reps, || {
        for i in 0..DOT_BATCH {
            black_box(linalg::dot(
                &xs[i * DOT_N..(i + 1) * DOT_N],
                &ys[i * DOT_N..(i + 1) * DOT_N],
            ));
        }
    });
    let mut dot_lane = || {
        black_box(dot_batch(&cfg, DOT_N, &bxs, &bys));
    };
    let dot = Row {
        name: "dot",
        packed_path: true,
        scalar: dot_scalar,
        lane_portable: timed_with_backend(Backend::Portable, reps, &mut dot_lane),
        simd: timed_with_backend(simd::detected_backend(), reps, &mut dot_lane),
    };

    // mvm
    let a = sample(23, MVM_N * MVM_N);
    let mx = sample(24, MVM_BATCH * MVM_N);
    let my = sample(25, MVM_BATCH * MVM_N);
    let (bmx, bmy) = (BatchF64I::from_intervals(&mx), BatchF64I::from_intervals(&my));
    let mvm_scalar = median_time(reps, || {
        let mut y = vec![F64I::point(0.0); MVM_N];
        for i in 0..MVM_BATCH {
            linalg::mvm(MVM_N, MVM_N, &a, &mx[i * MVM_N..(i + 1) * MVM_N], &mut y);
            for (j, yj) in y.iter().enumerate() {
                black_box(*yj + my[i * MVM_N + j]);
            }
        }
    });
    let mut mvm_lane = || {
        black_box(mvm_batch(&cfg, MVM_N, MVM_N, &a, &bmx, &bmy));
    };
    let mvm = Row {
        name: "mvm",
        packed_path: true,
        scalar: mvm_scalar,
        lane_portable: timed_with_backend(Backend::Portable, reps, &mut mvm_lane),
        simd: timed_with_backend(simd::detected_backend(), reps, &mut mvm_lane),
    };

    // henon
    let hx = sample(26, HENON_BATCH);
    let hy = sample(27, HENON_BATCH);
    let (bhx, bhy) = (BatchF64I::from_intervals(&hx), BatchF64I::from_intervals(&hy));
    let henon_scalar = median_time(reps, || {
        for i in 0..HENON_BATCH {
            black_box(henon_from::<F64I>(hx[i], hy[i], HENON_ITERS));
        }
    });
    let mut henon_lane = || {
        black_box(henon_ensemble(&cfg, HENON_ITERS, &bhx, &bhy));
    };
    let henon = Row {
        name: "henon",
        packed_path: true,
        scalar: henon_scalar,
        lane_portable: timed_with_backend(Backend::Portable, reps, &mut henon_lane),
        simd: timed_with_backend(simd::detected_backend(), reps, &mut henon_lane),
    };

    // gemm — `gemm_row_blocks` evolves four columns of C per packed
    // register via `linalg::gemm_packed`.
    let ga = sample(28, GEMM_N * GEMM_N);
    let gb = sample(29, GEMM_N * GEMM_N);
    let gemm_scalar = median_time(reps, || {
        let mut gc = vec![F64I::point(0.0); GEMM_N * GEMM_N];
        linalg::gemm(GEMM_N, GEMM_N, GEMM_N, &ga, &gb, &mut gc);
        black_box(&gc);
    });
    let mut gemm_lane = || {
        let mut gc = vec![F64I::point(0.0); GEMM_N * GEMM_N];
        gemm_row_blocks(&cfg, GEMM_N, GEMM_N, GEMM_N, &ga, &gb, &mut gc, 8);
        black_box(&gc);
    };
    let gemm = Row {
        name: "gemm",
        packed_path: true,
        scalar: gemm_scalar,
        lane_portable: timed_with_backend(Backend::Portable, reps, &mut gemm_lane),
        simd: timed_with_backend(simd::detected_backend(), reps, &mut gemm_lane),
    };

    // ffnn — `ffnn_batch` forwards four batch items per register group
    // via `Ffnn::forward_lanes`.
    let net = Ffnn::synthetic(FFNN_WIDTH, 7);
    let inputs: Vec<Vec<f64>> = (0..FFNN_INPUTS as u64).map(Ffnn::synthetic_input).collect();
    let ffnn_scalar = median_time(reps, || {
        for input in &inputs {
            black_box(net.forward::<F64I>(input));
        }
    });
    let mut ffnn_lane = || {
        black_box(ffnn_batch::<F64I>(&cfg, &net, &inputs));
    };
    let ffnn = Row {
        name: "ffnn",
        packed_path: true,
        scalar: ffnn_scalar,
        lane_portable: timed_with_backend(Backend::Portable, reps, &mut ffnn_lane),
        simd: timed_with_backend(simd::detected_backend(), reps, &mut ffnn_lane),
    };

    vec![dot, mvm, henon, gemm, ffnn]
}

/// Records `results/simd_speedup.csv` at the workspace root.
fn record_csv() {
    if let Some(root) = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2) {
        let _ = std::env::set_current_dir(root);
    }
    let reps = igen_bench::reps();
    let detected = simd::detected_backend();
    let mut rows = Vec::new();
    let mut emit = |kind: &str, r: &Row| {
        let s = r.scalar.as_secs_f64();
        rows.push(format!(
            "{},{kind},{detected},{},{:.0},{:.0},{:.0},{:.3},{:.3}",
            r.name,
            r.packed_path,
            s * 1e9,
            r.lane_portable.as_secs_f64() * 1e9,
            r.simd.as_secs_f64() * 1e9,
            s / r.lane_portable.as_secs_f64(),
            s / r.simd.as_secs_f64(),
        ));
    };
    for r in &op_rows(reps) {
        emit("op", r);
    }
    for r in &kernel_rows(reps) {
        emit("kernel", r);
    }
    write_csv_with_comments(
        "simd_speedup.csv",
        &[host_line(available_threads())],
        "name,kind,detected_backend,packed_path,scalar_ns,lane_portable_ns,simd_ns,\
         speedup_lane_vs_scalar,speedup_simd_vs_scalar",
        &rows,
    );
}

fn bench_ops(c: &mut Criterion) {
    let a = sample(11, OP_N);
    let b = sample_positive(12, OP_N);
    let (va, vb) = (to_lanes(&a), to_lanes(&b));
    let mut g = c.benchmark_group("simd_speedup_mul");
    g.bench_function("scalar", |bch| {
        bch.iter(|| {
            let mut acc = F64I::point(0.0);
            for i in 0..OP_N {
                acc = acc + black_box(a[i]) * black_box(b[i]);
            }
            black_box(acc)
        })
    });
    for (tag, bk) in [("lane_portable", Backend::Portable), ("simd", simd::detected_backend())] {
        g.bench_function(tag, |bch| {
            simd::force_backend(Some(bk));
            bch.iter(|| {
                let mut acc = F64Ix4::default();
                for i in 0..OP_N / 4 {
                    acc = acc + black_box(va[i]) * black_box(vb[i]);
                }
                black_box(acc)
            });
            simd::force_backend(None);
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default().sample_size(10);
    bench_ops(&mut c);
    // CI smoke (`--test`) only checks the benches run; skip the sweep.
    // Telemetry-instrumented builds never record (zero-tax guard).
    if !std::env::args().any(|a| a == "--test") && igen_bench::perf_recording_allowed() {
        record_csv();
    }
}
