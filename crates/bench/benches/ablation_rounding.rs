//! Ablation D1 (DESIGN.md): the cost of *exact* software directed
//! rounding. Compares three strategies for the interval addition kernel:
//!
//! * `eft_exact` — this workspace's EFT-based bit-exact directed rounding;
//! * `always_widen` — the cheap-but-lossy alternative (unconditionally
//!   step one ulp outward, no residual test): ~1 extra bit lost per op;
//! * `rn_unsound` — plain round-to-nearest (the cost floor: what hardware
//!   directed rounding would cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn data(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0).collect()
}

/// The naive widening alternative to the EFT residual test.
#[inline]
fn add_widen(a: f64, b: f64) -> f64 {
    let s = a + b;
    // next_up unconditionally (sound upper bound, 1 ulp loose when exact).
    igen_round::next_up(s)
}

fn bench(c: &mut Criterion) {
    let xs = data(8192);
    let mut g = c.benchmark_group("ablation_rounding_add");
    g.bench_function("eft_exact", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc = igen_round::add_ru(acc, black_box(x));
            }
            black_box(acc)
        })
    });
    g.bench_function("always_widen", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc = add_widen(acc, black_box(x));
            }
            black_box(acc)
        })
    });
    g.bench_function("rn_unsound", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc += black_box(x);
            }
            black_box(acc)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("ablation_rounding_mul");
    g.bench_function("eft_exact", |b| {
        b.iter(|| {
            let mut acc = 1.0;
            for &x in &xs {
                acc = igen_round::mul_ru(acc, black_box(x.abs() + 0.5));
                acc = acc.clamp(1e-300, 1e300);
            }
            black_box(acc)
        })
    });
    g.bench_function("rn_unsound", |b| {
        b.iter(|| {
            let mut acc = 1.0;
            for &x in &xs {
                acc *= black_box(x.abs() + 0.5);
                acc = acc.clamp(1e-300, 1e300);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
