//! Ablation for the reduction transformation (Section VI-B): what does
//! the accurate accumulator cost per term, against the plain interval
//! summation it replaces?
//!
//! * `f64i_plain` — the untransformed loop: one `F64I` addition per term;
//! * `f64i_acc` — `SumAcc64`, the double-double accumulator the
//!   transformation substitutes (recovers ~3–13 bits, Fig. 10);
//! * `ddi_plain` — untransformed double-double interval addition;
//! * `ddi_acc` — `SumAccDd`, the exact exponent-bucket accumulator.
//!
//! Fig. 10's binary reports the accuracy side; this reports the runtime
//! side at fixed n, isolating the per-term overhead from the workload.

use criterion::{criterion_group, criterion_main, Criterion};
use igen_interval::{DdI, SumAcc64, SumAccDd, F64I};
use std::hint::black_box;

fn terms(n: usize) -> Vec<F64I> {
    (0..n)
        .map(|i| {
            let v = (((i * 2654435761) % 2000) as f64 - 900.0) / 7.0;
            F64I::with_tol(v, v.abs() * 1e-16)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let n = 4096;
    let xs = terms(n);
    let xdd: Vec<DdI> = xs.iter().map(DdI::from_f64i).collect();

    let mut g = c.benchmark_group("ablation_accumulator");
    g.bench_function("f64i_plain", |b| {
        b.iter(|| {
            let mut s = F64I::point(0.0);
            for x in &xs {
                s = s + *black_box(x);
            }
            black_box(s)
        })
    });
    g.bench_function("f64i_acc", |b| {
        b.iter(|| {
            let mut acc = SumAcc64::new(F64I::point(0.0));
            for x in &xs {
                acc.accumulate(black_box(x));
            }
            black_box(acc.reduce())
        })
    });
    g.bench_function("ddi_plain", |b| {
        b.iter(|| {
            let mut s = DdI::point_f64(0.0);
            for x in &xdd {
                s = s + *black_box(x);
            }
            black_box(s)
        })
    });
    g.bench_function("ddi_acc", |b| {
        b.iter(|| {
            let mut acc = SumAccDd::new(DdI::point_f64(0.0));
            for x in &xdd {
                acc.accumulate(black_box(x));
            }
            black_box(acc.reduce())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
