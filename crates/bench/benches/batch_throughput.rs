//! Thread-scaling of the `igen-batch` evaluation engine: batched dot,
//! mvm, Hénon ensembles and FFNN inference at 1 → N worker threads.
//!
//! Besides the criterion groups, a plain run (without `--test`) records
//! `results/batch_throughput.csv` with the median time, throughput and
//! speedup-vs-1-thread per kernel and thread count, plus the host's core
//! count — on a single-core host (such as the container this repo is
//! developed in) the speedup column is honestly ~1.0; the batch path's
//! scaling claim is only observable on multi-core hosts.

use criterion::{black_box, Criterion};
use igen_batch::{available_threads, dot_batch, henon_ensemble, mvm_batch, BatchConfig, BatchF64I};
use igen_bench::median_time;
use igen_kernels::workload;

/// Batched problem shapes kept small enough that the full sweep stays in
/// CI-smoke territory.
const DOT_BATCH: usize = 512;
const DOT_N: usize = 256;
const MVM_BATCH: usize = 64;
const MVM_N: usize = 96;
const HENON_BATCH: usize = 4096;
const HENON_ITERS: usize = 50;

fn thread_counts() -> Vec<usize> {
    let max = available_threads();
    let mut ts = vec![1, 2, 4, max];
    ts.sort_unstable();
    ts.dedup();
    ts.retain(|&t| t <= max.max(4)); // keep 2 and 4 even on small hosts: oversubscription is part of the record
    ts
}

fn cfg(threads: usize) -> BatchConfig {
    BatchConfig::new().with_threads(threads).with_seq_threshold(0)
}

fn sample(seed: u64, len: usize) -> BatchF64I {
    let mut rng = workload::rng(seed);
    BatchF64I::from_intervals(&workload::intervals_1ulp(&workload::random_points(
        &mut rng, len, -2.0, 2.0,
    )))
}

fn bench_scaling(c: &mut Criterion) {
    let xs = sample(1, DOT_BATCH * DOT_N);
    let ys = sample(2, DOT_BATCH * DOT_N);
    let a = sample(3, MVM_N * MVM_N).to_intervals();
    let mx = sample(4, MVM_BATCH * MVM_N);
    let my = sample(5, MVM_BATCH * MVM_N);
    let hx = sample(6, HENON_BATCH);
    let hy = sample(7, HENON_BATCH);

    let mut g = c.benchmark_group("batch_dot");
    for t in thread_counts() {
        let cfg = cfg(t);
        g.bench_function(&format!("threads/{t}"), |b| {
            b.iter(|| dot_batch(black_box(&cfg), DOT_N, black_box(&xs), black_box(&ys)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("batch_mvm");
    for t in thread_counts() {
        let cfg = cfg(t);
        g.bench_function(&format!("threads/{t}"), |b| {
            b.iter(|| {
                mvm_batch(
                    black_box(&cfg),
                    MVM_N,
                    MVM_N,
                    black_box(&a),
                    black_box(&mx),
                    black_box(&my),
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("batch_henon");
    for t in thread_counts() {
        let cfg = cfg(t);
        g.bench_function(&format!("threads/{t}"), |b| {
            b.iter(|| henon_ensemble(black_box(&cfg), HENON_ITERS, black_box(&hx), black_box(&hy)))
        });
    }
    g.finish();
}

/// Records the scaling sweep to `results/batch_throughput.csv` at the
/// workspace root (cargo runs benches from the package directory, so
/// re-anchor first to match where the harness binaries write).
fn record_csv() {
    if let Some(root) = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2) {
        let _ = std::env::set_current_dir(root);
    }
    let xs = sample(1, DOT_BATCH * DOT_N);
    let ys = sample(2, DOT_BATCH * DOT_N);
    let a = sample(3, MVM_N * MVM_N).to_intervals();
    let mx = sample(4, MVM_BATCH * MVM_N);
    let my = sample(5, MVM_BATCH * MVM_N);
    let hx = sample(6, HENON_BATCH);
    let hy = sample(7, HENON_BATCH);

    let mut rows = Vec::new();
    let cores = available_threads();
    type Runner<'a> = (&'a str, usize, u64, Box<dyn Fn(&BatchConfig) + 'a>);
    let kernels: Vec<Runner> = vec![
        (
            "dot",
            DOT_BATCH,
            DOT_BATCH as u64 * igen_kernels::linalg::dot_iops(DOT_N),
            Box::new(|c: &BatchConfig| {
                black_box(dot_batch(c, DOT_N, &xs, &ys));
            }),
        ),
        (
            "mvm",
            MVM_BATCH,
            MVM_BATCH as u64 * 2 * (MVM_N * MVM_N) as u64,
            Box::new(|c: &BatchConfig| {
                black_box(mvm_batch(c, MVM_N, MVM_N, &a, &mx, &my));
            }),
        ),
        (
            "henon",
            HENON_BATCH,
            HENON_BATCH as u64 * igen_kernels::henon_iops(HENON_ITERS),
            Box::new(|c: &BatchConfig| {
                black_box(henon_ensemble(c, HENON_ITERS, &hx, &hy));
            }),
        ),
    ];
    for (name, batch, iops, run) in &kernels {
        let mut t1 = None;
        for t in thread_counts() {
            let cfg = cfg(t);
            let med = median_time(igen_bench::reps(), || run(&cfg));
            let secs = med.as_secs_f64();
            let t1s = *t1.get_or_insert(secs);
            rows.push(format!(
                "{name},{t},{cores},{batch},{:.0},{:.3e},{:.3}",
                secs * 1e9,
                *iops as f64 / secs,
                t1s / secs
            ));
        }
    }
    igen_bench::write_csv_with_comments(
        "batch_throughput.csv",
        &[igen_bench::host_line(cores)],
        "kernel,threads,host_cores,batch,median_ns,iops_per_sec,speedup_vs_1thread",
        &rows,
    );
}

fn main() {
    let mut c = Criterion::default().sample_size(10);
    bench_scaling(&mut c);
    // CI smoke (`--test`) only checks the benches run; skip the sweep.
    // Telemetry-instrumented builds never record (zero-tax guard).
    if !std::env::args().any(|a| a == "--test") && igen_bench::perf_recording_allowed() {
        record_csv();
    }
}
