//! Microbenchmarks of the interval runtime against the library baselines
//! — the operation-level view behind Fig. 8, plus the branch-free vs
//! sign-case multiplication ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use igen_baselines::{BoostI, FilibI, GaolI};
use igen_interval::{DdI, F64I};
use std::hint::black_box;

fn mixed_pairs(n: usize) -> Vec<(f64, f64)> {
    // Deterministic sign-mixed data (the branchy baselines' worst case).
    (0..n)
        .map(|i| {
            let a = ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0;
            let b = ((i * 40503) % 1000) as f64 / 500.0 - 1.0;
            (a, b)
        })
        .collect()
}

fn bench_mul(c: &mut Criterion) {
    let pairs = mixed_pairs(4096);
    let mut g = c.benchmark_group("interval_mul");
    g.bench_function("igen_f64i", |b| {
        let xs: Vec<(F64I, F64I)> =
            pairs.iter().map(|&(x, y)| (F64I::point(x), F64I::point(y))).collect();
        b.iter(|| {
            let mut acc = F64I::point(0.0);
            for &(x, y) in &xs {
                acc = acc + black_box(x) * black_box(y);
            }
            black_box(acc)
        })
    });
    g.bench_function("boost", |b| {
        let xs: Vec<(BoostI, BoostI)> =
            pairs.iter().map(|&(x, y)| (BoostI::point(x), BoostI::point(y))).collect();
        b.iter(|| {
            let mut acc = BoostI::point(0.0);
            for &(x, y) in &xs {
                acc = acc + black_box(x) * black_box(y);
            }
            black_box(acc)
        })
    });
    g.bench_function("filib", |b| {
        let xs: Vec<(FilibI, FilibI)> =
            pairs.iter().map(|&(x, y)| (FilibI::point(x), FilibI::point(y))).collect();
        b.iter(|| {
            let mut acc = FilibI::point(0.0);
            for &(x, y) in &xs {
                acc = acc + black_box(x) * black_box(y);
            }
            black_box(acc)
        })
    });
    g.bench_function("gaol_noinline", |b| {
        let xs: Vec<(GaolI, GaolI)> =
            pairs.iter().map(|&(x, y)| (GaolI::point(x), GaolI::point(y))).collect();
        b.iter(|| {
            let mut acc = GaolI::point(0.0);
            for &(x, y) in &xs {
                acc = acc + black_box(x) * black_box(y);
            }
            black_box(acc)
        })
    });
    g.bench_function("igen_ddi", |b| {
        let xs: Vec<(DdI, DdI)> =
            pairs.iter().map(|&(x, y)| (DdI::point_f64(x), DdI::point_f64(y))).collect();
        b.iter_batched(
            || xs.clone(),
            |xs| {
                let mut acc = DdI::point_f64(0.0);
                for &(x, y) in &xs {
                    acc = acc + black_box(x) * black_box(y);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_add_div(c: &mut Criterion) {
    let pairs = mixed_pairs(4096);
    let mut g = c.benchmark_group("interval_add_div");
    g.bench_function("f64i_add", |b| {
        let xs: Vec<F64I> = pairs.iter().map(|&(x, _)| F64I::point(x)).collect();
        b.iter(|| {
            let mut acc = F64I::point(0.0);
            for &x in &xs {
                acc = acc + black_box(x);
            }
            black_box(acc)
        })
    });
    g.bench_function("f64i_div", |b| {
        let xs: Vec<(F64I, F64I)> =
            pairs.iter().map(|&(x, y)| (F64I::point(x), F64I::point(y.abs() + 0.5))).collect();
        b.iter(|| {
            let mut acc = F64I::point(0.0);
            for &(x, y) in &xs {
                acc = acc + black_box(x) / black_box(y);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mul, bench_add_div
}
criterion_main!(benches);
