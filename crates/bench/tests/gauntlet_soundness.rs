//! The gauntlet's soundness property: on random inputs, every
//! registered backend's output interval must *enclose* the 256-bit
//! `igen-mpf` oracle's tight enclosure, for all five kernels.
//!
//! Why enclosure of the oracle (and not just of a sampled point) is the
//! right check: the oracle's `to_f64_pair` is the tightest f64 pair
//! around the true result set, and any sound backend's f64 endpoints
//! bound the true set from outside — so a sound backend's lower
//! endpoint is an f64 at or below the true infimum, hence at or below
//! the oracle's rounded-down infimum, and symmetrically above. A single
//! violated endpoint is a genuine soundness bug, not rounding slack.

use igen_bench::gauntlet::{self, IvalVec, Kernel, KernelCase};
use igen_kernels::ffnn;
use igen_kernels::workload;
use proptest::prelude::*;
use rand::rngs::StdRng;

/// Random interval operands: mostly 1-ulp boxes around random points,
/// with every third entry widened to exercise non-degenerate widths.
fn rand_ivals(rng: &mut StdRng, len: usize, lo: f64, hi: f64, wide: bool) -> IvalVec {
    let pts = workload::random_points(rng, len, lo, hi);
    let mut v = IvalVec::with_capacity(len);
    for (i, &p) in pts.iter().enumerate() {
        if wide && i % 3 == 0 {
            let w = 1e-3 * ((i % 7) as f64 + 1.0);
            v.push(p - w, p + w);
        } else {
            v.push(igen_round::next_down(p), igen_round::next_up(p));
        }
    }
    v
}

/// A downsized gauntlet case (the shipped sizes would make the 256-bit
/// oracle the bottleneck of the property test).
fn small_case(kernel: Kernel, seed: u64, wide: bool) -> KernelCase {
    let mut rng = workload::rng(seed ^ 0x9e37_79b9_7f4a_7c15);
    let (mut n, mut batch, mut iters) = (0, 0, 0);
    let (x, y, w);
    match kernel {
        Kernel::Dot => {
            (n, batch) = (5, 2);
            x = rand_ivals(&mut rng, batch * n, -2.0, 2.0, wide);
            y = rand_ivals(&mut rng, batch * n, -2.0, 2.0, wide);
            w = IvalVec::new();
        }
        Kernel::Mvm => {
            (n, batch) = (3, 2);
            x = rand_ivals(&mut rng, batch * n, -2.0, 2.0, wide);
            y = rand_ivals(&mut rng, batch * n, -2.0, 2.0, wide);
            w = rand_ivals(&mut rng, n * n, -2.0, 2.0, wide);
        }
        Kernel::Gemm => {
            n = 3;
            x = rand_ivals(&mut rng, n * n, -2.0, 2.0, wide);
            y = rand_ivals(&mut rng, n * n, -2.0, 2.0, wide);
            w = rand_ivals(&mut rng, n * n, -2.0, 2.0, wide);
        }
        Kernel::Henon => {
            (batch, iters) = (4, 5);
            x = rand_ivals(&mut rng, batch, -0.5, 0.5, wide);
            y = rand_ivals(&mut rng, batch, -0.5, 0.5, wide);
            w = IvalVec::new();
        }
        Kernel::Ffnn => {
            (n, batch) = (4, 1);
            // Point pixel inputs (the forward pass consumes f64 points).
            let pts = workload::random_points(&mut rng, batch * ffnn::INPUT_DIM, 0.0, 1.0);
            let mut v = IvalVec::with_capacity(pts.len());
            for &p in &pts {
                v.push(p, p);
            }
            x = v;
            y = IvalVec::new();
            w = IvalVec::new();
        }
    }
    KernelCase { kernel, n, batch, iters, ffnn_seed: seed % 13, x, y, w }
}

fn check_kernel(kernel: Kernel, seed: u64, wide: bool) -> Result<(), TestCaseError> {
    let case = small_case(kernel, seed, wide);
    let backends = gauntlet::registry();
    let oracle =
        backends.iter().find(|b| b.name() == "mpf").expect("oracle registered").instantiate(&case)(
        );
    for b in &backends {
        if b.name() == "mpf" {
            continue;
        }
        let out = b.instantiate(&case)();
        prop_assert_eq!(out.len(), oracle.len(), "{}/{}: length", b.name(), kernel);
        for i in 0..out.len() {
            let (bl, bh) = out.get(i);
            let (ol, oh) = oracle.get(i);
            prop_assert!(
                bl <= ol && oh <= bh,
                "{}/{} item {}: [{}, {}] does not enclose oracle [{}, {}] (seed {}, wide {})",
                b.name(),
                kernel,
                i,
                bl,
                bh,
                ol,
                oh,
                seed,
                wide
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_backend_encloses_the_oracle(seed in 0u64..1_000_000, wide in any::<bool>()) {
        for kernel in Kernel::ALL {
            check_kernel(kernel, seed, wide)?;
        }
    }
}

/// The shipped (full-size) gauntlet cases stay sound too — one pass over
/// the exact inputs the perf trajectory is recorded on.
#[test]
fn shipped_cases_are_sound_for_every_backend() {
    let backends = gauntlet::registry();
    for case in gauntlet::cases() {
        let oracle = backends
            .iter()
            .find(|b| b.name() == "mpf")
            .expect("oracle registered")
            .instantiate(&case)();
        for b in &backends {
            if b.name() == "mpf" {
                continue;
            }
            let out = b.instantiate(&case)();
            assert_eq!(out.len(), oracle.len(), "{}/{}", b.name(), case.kernel);
            for i in 0..out.len() {
                let (bl, bh) = out.get(i);
                let (ol, oh) = oracle.get(i);
                assert!(
                    bl <= ol && oh <= bh,
                    "{}/{} item {i}: [{bl}, {bh}] does not enclose oracle [{ol}, {oh}]",
                    b.name(),
                    case.kernel
                );
            }
        }
    }
}
