//! End-to-end tests of the `igen-bench gauntlet` CLI: JSON round-trip
//! through a real run, the `--check` regression gate in both verdicts,
//! and the exit-2 error conventions shared with `igen-cli`.

use igen_bench::gauntlet::{self, Report};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_igen-bench"))
}

/// Fast smoke invocation: the always-on naive baseline plus the packed
/// path (skipping the multiprecision and double-double contenders keeps
/// the debug-mode test quick).
fn quick_args(out: &std::path::Path) -> Vec<String> {
    vec![
        "gauntlet".into(),
        "--backends".into(),
        "igen-packed".into(),
        "--out".into(),
        out.display().to_string(),
    ]
}

#[test]
fn gauntlet_writes_schema_valid_json_and_self_check_passes() {
    let dir = std::env::temp_dir().join("igen_gauntlet_check_ok");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("run.json");

    let st = bin().args(quick_args(&out)).status().unwrap();
    assert!(st.success());
    let report = Report::from_json(&std::fs::read_to_string(&out).unwrap()).unwrap();
    // naive is forced in as the denominator even though unlisted.
    let names: std::collections::BTreeSet<&str> =
        report.rows.iter().map(|r| r.backend.as_str()).collect();
    assert!(names.contains("naive") && names.contains("igen-packed"), "{names:?}");
    assert_eq!(report.rows.len(), 2 * gauntlet::Kernel::ALL.len());
    assert!(report.rows.iter().any(|r| r.packed_path));
    assert_eq!(report.mode, "smoke");
    // The header must say whether this binary was instrumented.
    assert_eq!(report.instrumented, !igen_bench::perf_recording_allowed());

    // A fresh run checked against the one just written: with a clean
    // build it must pass (width columns are deterministic, the speed
    // tolerance wide); an instrumented build's report is refused as a
    // baseline outright.
    let cmd = bin()
        .args(quick_args(&dir.join("run2.json")))
        .args(["--check", &out.display().to_string()])
        .output()
        .unwrap();
    if report.instrumented {
        assert!(!cmd.status.success(), "instrumented baseline must be refused");
        let stderr = String::from_utf8_lossy(&cmd.stderr);
        assert!(stderr.contains("instrumented"), "stderr: {stderr}");
    } else {
        assert!(cmd.status.success(), "self-check should pass");
    }
}

#[test]
fn check_fails_against_a_doctored_baseline() {
    let dir = std::env::temp_dir().join("igen_gauntlet_check_fail");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("run.json");

    let st = bin().args(quick_args(&out)).status().unwrap();
    assert!(st.success());

    // Pretend the packed path used to be 1000x faster: the fresh run
    // must now look like a catastrophic regression. Mark the doctored
    // baseline clean so the speed gate (not the instrumented-baseline
    // refusal) is what fires, whatever build recorded it.
    let mut baseline = Report::from_json(&std::fs::read_to_string(&out).unwrap()).unwrap();
    baseline.instrumented = false;
    for r in &mut baseline.rows {
        if r.packed_path {
            r.speedup_vs_naive *= 1000.0;
        }
    }
    let doctored = dir.join("doctored.json");
    std::fs::write(&doctored, baseline.to_json()).unwrap();

    let cmd = bin()
        .args(quick_args(&dir.join("run2.json")))
        .args(["--check", &doctored.display().to_string()])
        .output()
        .unwrap();
    assert!(!cmd.status.success(), "doctored baseline must fail the check");
    let stderr = String::from_utf8_lossy(&cmd.stderr);
    assert!(stderr.contains("regression"), "stderr: {stderr}");
    assert!(stderr.contains("igen-packed"), "stderr: {stderr}");
}

#[test]
fn unknown_backend_is_a_one_line_exit_2() {
    let out = bin().args(["gauntlet", "--backends", "mpfi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.lines().count(), 1, "stderr: {stderr}");
    assert!(stderr.contains("unknown backend 'mpfi'"), "stderr: {stderr}");
    assert!(stderr.contains("naive"), "the message must list the valid names: {stderr}");
}

#[test]
fn unknown_subcommand_and_option_are_exit_2() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = bin().args(["gauntlet", "--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}
