//! `igen-affine`: sound affine arithmetic — the YalAA substitute used for
//! the dependency-problem comparison of Section VII-C.
//!
//! An affine form represents a quantity as
//!
//! ```text
//! x̂ = x₀ + x₁ε₁ + x₂ε₂ + … + xₙεₙ   with εᵢ ∈ [-1, 1]
//! ```
//!
//! where the noise symbols `εᵢ` are *shared between variables*: if `y` was
//! derived from `x`, they reference the same symbols and the linear
//! correlation survives. This is what lets affine arithmetic stay accurate
//! on the Hénon map where plain intervals blow up (Table VI), at the cost
//! of carrying (and multiplying) whole term lists — the same experiment
//! shows it running 2–3 orders of magnitude slower than double-double
//! intervals.
//!
//! Soundness: every operation bounds its rounding error with the exact
//! directed rounding of `igen-round` and *seals* it, together with any
//! nonlinear remainder, into a fresh noise symbol before returning.
//!
//! # Example
//!
//! ```
//! use igen_affine::Aff;
//! let x = Aff::from_interval(1.0, 2.0);
//! // x - x is exactly zero in affine arithmetic (same noise symbol) …
//! let z = x.clone() - x.clone();
//! let (lo, hi) = z.to_interval();
//! assert!(lo.abs() < 1e-15 && hi.abs() < 1e-15);
//! // … while interval arithmetic would give [-1, 1].
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use igen_round as r;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global noise-symbol allocator (fresh symbols never collide).
static NEXT_SYMBOL: AtomicU64 = AtomicU64::new(1);

fn fresh_symbol() -> u64 {
    NEXT_SYMBOL.fetch_add(1, Ordering::Relaxed)
}

/// A sound affine form `x₀ + Σ xᵢ εᵢ + err·ε_new`.
///
/// Terms are kept sorted by symbol id so that binary operations can merge
/// them in linear time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Aff {
    center: f64,
    /// `(symbol, coefficient)`, sorted by symbol.
    terms: Vec<(u64, f64)>,
    /// Accumulated unsigned error (rounding + nonlinear remainders) not
    /// yet assigned a symbol. Operations *seal* this into a fresh noise
    /// symbol before returning (YalAA's AF2-style handling): as a symbol,
    /// the remainder participates in later linear contractions instead of
    /// growing monotonically, which is what keeps the Hénon accuracy flat
    /// in Table VI.
    err: f64,
}

/// Promote any pending unsigned error into a fresh noise symbol.
fn seal(mut a: Aff) -> Aff {
    if a.err > 0.0 && a.err.is_finite() {
        a.terms.push((fresh_symbol(), a.err)); // fresh id sorts last
        a.err = 0.0;
    }
    a
}

impl Aff {
    /// The exact constant `c`.
    pub fn constant(c: f64) -> Aff {
        Aff { center: c, terms: Vec::new(), err: 0.0 }
    }

    /// A fresh independent variable ranging over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn from_interval(lo: f64, hi: f64) -> Aff {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "invalid range");
        let center = 0.5 * (lo + hi);
        // Sound radius: cover both |center-lo| and |hi-center| upward.
        let rad = r::sub_ru(hi, center).max(r::sub_ru(center, lo)).max(0.0);
        if rad == 0.0 {
            return Aff::constant(center);
        }
        Aff { center, terms: vec![(fresh_symbol(), rad)], err: 0.0 }
    }

    /// An exact constant with a ±`tol` tolerance noise term (the
    /// counterpart of the paper's `0.25t` literals).
    pub fn with_tol(c: f64, tol: f64) -> Aff {
        if tol == 0.0 {
            return Aff::constant(c);
        }
        Aff { center: c, terms: vec![(fresh_symbol(), tol.abs())], err: 0.0 }
    }

    /// The central value.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Number of live noise terms (grows with operation count unless
    /// condensed).
    pub fn term_count(&self) -> usize {
        self.terms.len() + usize::from(self.err != 0.0)
    }

    /// Total deviation radius, rounded up.
    pub fn radius(&self) -> f64 {
        let mut rad = self.err;
        for &(_, c) in &self.terms {
            rad = r::add_ru(rad, c.abs());
        }
        rad
    }

    /// Sound conversion to an interval `(lo, hi)`.
    pub fn to_interval(&self) -> (f64, f64) {
        let rad = self.radius();
        (r::sub_rd(self.center, rad), r::add_ru(self.center, rad))
    }

    /// Certified bits of the equivalent interval (the evaluation metric).
    pub fn certified_bits(&self) -> f64 {
        let (lo, hi) = self.to_interval();
        if lo.is_nan() || hi.is_nan() || !lo.is_finite() || !hi.is_finite() || lo > hi {
            return 0.0;
        }
        let steps = r::ulps_between(lo, hi);
        (53.0 - ((steps + 1) as f64).log2()).max(0.0)
    }

    /// Negation (exact).
    #[must_use]
    pub fn neg(&self) -> Aff {
        Aff {
            center: -self.center,
            terms: self.terms.iter().map(|&(s, c)| (s, -c)).collect(),
            err: self.err,
        }
    }

    /// Merge-add of two forms with rounding-error tracking.
    fn add_impl(&self, other: &Aff, sub: bool) -> Aff {
        let sign = if sub { -1.0 } else { 1.0 };
        let center = self.center + sign * other.center;
        // Rounding error of the center op.
        let mut err = r::add_ru(self.err, other.err);
        err = r::add_ru(err, center_err(self.center, sign * other.center, center));
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            let take_left = match (self.terms.get(i), other.terms.get(j)) {
                (Some(&(sa, _)), Some(&(sb, _))) => {
                    if sa == sb {
                        let (s, ca) = self.terms[i];
                        let cb = sign * other.terms[j].1;
                        let c = ca + cb;
                        err = r::add_ru(err, center_err(ca, cb, c));
                        if c != 0.0 {
                            terms.push((s, c));
                        }
                        i += 1;
                        j += 1;
                        continue;
                    }
                    sa < sb
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_left {
                terms.push(self.terms[i]);
                i += 1;
            } else {
                let (s, c) = other.terms[j];
                terms.push((s, sign * c));
                j += 1;
            }
        }
        seal(Aff { center, terms, err })
    }

    /// Multiplication: exact on the linear part in `center`, with the
    /// quadratic remainder `rad(a)·rad(b)` and all rounding pushed into
    /// the error term (the standard Stolfi rule).
    fn mul_impl(&self, other: &Aff) -> Aff {
        let center = self.center * other.center;
        let mut err = center_err_mul(self.center, other.center, center);
        // err += |a0|*err_b + |b0|*err_a + rad_a*rad_b (all upward).
        let rad_a = self.radius();
        let rad_b = other.radius();
        err = r::add_ru(err, r::mul_ru(self.center.abs(), other.err));
        err = r::add_ru(err, r::mul_ru(other.center.abs(), self.err));
        err = r::add_ru(err, r::mul_ru(terms_radius(&self.terms), terms_radius(&other.terms)));
        err = r::add_ru(err, r::mul_ru(terms_radius(&self.terms), other.err));
        err = r::add_ru(err, r::mul_ru(terms_radius(&other.terms), self.err));
        let _ = (rad_a, rad_b);
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            match (self.terms.get(i), other.terms.get(j)) {
                (Some(&(sa, ca)), Some(&(sb, cb))) if sa == sb => {
                    // a0*cb + b0*ca
                    let t1 = self.center * cb;
                    let t2 = other.center * ca;
                    let c = t1 + t2;
                    err = r::add_ru(err, center_err_mul(self.center, cb, t1));
                    err = r::add_ru(err, center_err_mul(other.center, ca, t2));
                    err = r::add_ru(err, center_err(t1, t2, c));
                    if c != 0.0 {
                        terms.push((sa, c));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&(sa, ca)), Some(&(sb, _))) if sa < sb => {
                    let c = other.center * ca;
                    err = r::add_ru(err, center_err_mul(other.center, ca, c));
                    if c != 0.0 {
                        terms.push((sa, c));
                    }
                    i += 1;
                }
                (Some(_), Some(&(sb, cb))) => {
                    let c = self.center * cb;
                    err = r::add_ru(err, center_err_mul(self.center, cb, c));
                    if c != 0.0 {
                        terms.push((sb, c));
                    }
                    j += 1;
                }
                (Some(&(sa, ca)), None) => {
                    let c = other.center * ca;
                    err = r::add_ru(err, center_err_mul(other.center, ca, c));
                    if c != 0.0 {
                        terms.push((sa, c));
                    }
                    i += 1;
                }
                (None, Some(&(sb, cb))) => {
                    let c = self.center * cb;
                    err = r::add_ru(err, center_err_mul(self.center, cb, c));
                    if c != 0.0 {
                        terms.push((sb, c));
                    }
                    j += 1;
                }
                (None, None) => break,
            }
        }
        seal(Aff { center, terms, err })
    }

    /// Sound reciprocal `1/x` via the interval enclosure: correlations to
    /// the input's noise symbols are dropped (a fresh form is returned),
    /// which is sound but not minimal — YalAA's min-range approximation
    /// keeps the linear part; for the paper's benchmarks (no division)
    /// this simpler rule suffices.
    ///
    /// # Panics
    ///
    /// Panics if the enclosure of `x` contains zero.
    #[must_use]
    pub fn recip(&self) -> Aff {
        let (lo, hi) = self.to_interval();
        assert!(lo > 0.0 || hi < 0.0, "affine reciprocal of a range containing zero: [{lo}, {hi}]");
        let rlo = r::div_rd(1.0, hi);
        let rhi = r::div_ru(1.0, lo);
        let (rlo, rhi) = if rlo <= rhi { (rlo, rhi) } else { (rhi, rlo) };
        Aff::from_interval(rlo, rhi)
    }

    /// Condenses the smallest terms into one fresh noise symbol — the
    /// dummy-variable reduction of Kashiwagi (reference 44 of the paper) as
    /// used by YalAA; keeps
    /// forms bounded in long iterations at a small accuracy cost (the
    /// merged symbols lose their identity, so their future correlations
    /// are over-approximated, but the merged term still contracts with
    /// subsequent linear operations).
    #[must_use]
    pub fn condense(&self, max_terms: usize) -> Aff {
        if self.terms.len() <= max_terms {
            return self.clone();
        }
        let mut sorted: Vec<(u64, f64)> = self.terms.clone();
        sorted.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        let mut err = self.err;
        for &(_, c) in &sorted[max_terms..] {
            err = r::add_ru(err, c.abs());
        }
        let mut terms: Vec<(u64, f64)> = sorted[..max_terms].to_vec();
        terms.sort_by_key(|&(s, _)| s);
        seal(Aff { center: self.center, terms, err })
    }
}

fn terms_radius(terms: &[(u64, f64)]) -> f64 {
    let mut rad = 0.0;
    for &(_, c) in terms {
        rad = r::add_ru(rad, c.abs());
    }
    rad
}

/// Upper bound of `|a + b - s|` for `s = RN(a + b)` — the exact rounding
/// error via TwoSum.
fn center_err(a: f64, b: f64, s: f64) -> f64 {
    let _ = s;
    let (_, e) = r::two_sum(a, b);
    if e.is_finite() {
        e.abs()
    } else {
        f64::INFINITY
    }
}

/// Upper bound of `|a*b - p|` for `p = RN(a*b)`.
fn center_err_mul(a: f64, b: f64, p: f64) -> f64 {
    if !p.is_finite() {
        return f64::INFINITY;
    }
    let (_, e) = r::two_prod(a, b);
    if e.is_finite() {
        // The FMA residual may be inexact in the subnormal range; pad by
        // one quantum.
        r::add_ru(e.abs(), f64::from_bits(1))
    } else {
        f64::INFINITY
    }
}

impl core::ops::Add for Aff {
    type Output = Aff;
    fn add(self, rhs: Aff) -> Aff {
        self.add_impl(&rhs, false)
    }
}

impl core::ops::Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        self.add_impl(&rhs, true)
    }
}

impl core::ops::Mul for Aff {
    type Output = Aff;
    fn mul(self, rhs: Aff) -> Aff {
        self.mul_impl(&rhs)
    }
}

impl core::ops::Div for Aff {
    type Output = Aff;
    /// `x / y = x * recip(y)`; see [`Aff::recip`] for the soundness note.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Aff) -> Aff {
        let r = rhs.recip();
        self * r
    }
}

impl core::ops::Neg for Aff {
    type Output = Aff;
    fn neg(self) -> Aff {
        Aff::neg(&self)
    }
}

impl core::fmt::Display for Aff {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:e}", self.center)?;
        for &(s, c) in &self.terms {
            write!(f, " {} {:e}·ε{}", if c < 0.0 { "-" } else { "+" }, c.abs(), s)?;
        }
        if self.err != 0.0 {
            write!(f, " ± {:e}", self.err)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_cancellation() {
        let x = Aff::from_interval(1.0, 2.0);
        let z = x.clone() - x.clone();
        let (lo, hi) = z.to_interval();
        assert!(lo.abs() < 1e-15 && hi.abs() < 1e-15, "[{lo}, {hi}]");
        // Independent variables do NOT cancel.
        let y = Aff::from_interval(1.0, 2.0);
        let w = x - y;
        let (lo, hi) = w.to_interval();
        assert!(lo <= -0.99 && hi >= 0.99);
    }

    #[test]
    fn addition_is_sound() {
        let x = Aff::from_interval(0.1, 0.2);
        let y = Aff::from_interval(0.3, 0.4);
        let s = x + y;
        let (lo, hi) = s.to_interval();
        assert!(lo <= 0.4 && 0.6 <= hi);
        assert!(lo >= 0.399 && hi <= 0.601);
    }

    #[test]
    fn multiplication_quadratic_remainder() {
        let x = Aff::from_interval(-1.0, 1.0);
        let sq = x.clone() * x.clone();
        let (lo, hi) = sq.to_interval();
        // Affine mul of x*x gives center 0 and remainder rad^2 = 1:
        // [-1, 1] (the classical limitation; still sound for [0,1]).
        assert!(lo <= 0.0 && hi >= 1.0);
        assert!(hi <= 1.0 + 1e-12);
    }

    #[test]
    fn mul_tracks_linear_correlation() {
        // (x + 1) * 2 - 2x = 2 exactly.
        let x = Aff::from_interval(0.0, 10.0);
        let two = Aff::constant(2.0);
        let r1 = (x.clone() + Aff::constant(1.0)) * two.clone();
        let r2 = r1 - x.clone() * two;
        let (lo, hi) = r2.to_interval();
        assert!((lo - 2.0).abs() < 1e-12 && (hi - 2.0).abs() < 1e-12, "[{lo}, {hi}]");
    }

    #[test]
    fn henon_map_stays_bounded() {
        // The Section VII-C benchmark: accuracy stays roughly constant.
        let a = Aff::constant(1.05);
        let b = Aff::constant(0.3);
        let mut x = Aff::with_tol(0.0, f64::EPSILON);
        let mut y = Aff::with_tol(0.0, f64::EPSILON);
        for _ in 0..170 {
            let xi = x.clone();
            x = Aff::constant(1.0) - a.clone() * xi.clone() * xi.clone() + y.clone();
            y = b.clone() * xi;
        }
        let bits = x.certified_bits();
        // Table VI: affine accuracy stays roughly constant (~44 bits).
        assert!(bits > 38.0, "affine Henon bits = {bits}");
    }

    #[test]
    fn rounding_errors_are_captured() {
        // 0.1 + 0.2 has a rounding error; the form must contain the true
        // sum of the two doubles.
        let s = Aff::constant(0.1) + Aff::constant(0.2);
        let (lo, hi) = s.to_interval();
        // True sum of doubles 0.1 + 0.2 lies strictly between lo/hi.
        let t = igen_dd::Dd::from(0.1) + igen_dd::Dd::from(0.2);
        assert!(lo <= t.hi() && t.hi() <= hi);
        assert!(s.term_count() >= 1); // error term present
    }

    #[test]
    fn condense_preserves_soundness() {
        let mut x = Aff::from_interval(0.0, 1.0);
        for i in 0..50 {
            x = x + Aff::from_interval(-0.01, 0.01 + i as f64 * 1e-4);
        }
        let (lo_full, hi_full) = x.to_interval();
        let c = x.condense(8);
        let (lo_c, hi_c) = c.to_interval();
        // Condensation preserves soundness w.r.t. the represented set;
        // the outward-rounded endpoints may differ by a few ulps because
        // the radius is summed in a different order.
        let slack = 1e-12 * (1.0 + hi_full.abs());
        assert!(lo_c <= lo_full + slack && hi_full - slack <= hi_c);
        assert!(c.term_count() <= 9);
    }

    #[test]
    fn division_is_sound() {
        let x = Aff::from_interval(1.0, 2.0);
        let y = Aff::from_interval(4.0, 5.0);
        let q = x.clone() / y.clone();
        let (lo, hi) = q.to_interval();
        assert!(lo <= 0.2 && 0.5 <= hi, "[{lo}, {hi}]");
        assert!(lo >= 0.15 && hi <= 0.51, "[{lo}, {hi}]"); // affine mul remainder widens the low side
                                                           // Negative denominators work.
        let q = x / Aff::from_interval(-5.0, -4.0);
        let (lo, hi) = q.to_interval();
        assert!(lo <= -0.25 && -0.2 <= hi, "[{lo}, {hi}]");
    }

    #[test]
    #[should_panic(expected = "containing zero")]
    fn division_by_zero_range_panics() {
        let _ = Aff::from_interval(1.0, 2.0) / Aff::from_interval(-1.0, 1.0);
    }

    #[test]
    fn display_shows_terms() {
        let x = Aff::from_interval(1.0, 3.0);
        let s = format!("{x}");
        assert!(s.contains("2e0"), "{s}");
        assert!(s.contains("ε"), "{s}");
    }
}
