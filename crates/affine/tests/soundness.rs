//! Property tests: affine forms always enclose point evaluations, and
//! correlated expressions stay dramatically tighter than interval
//! arithmetic (the crate's reason to exist, Section VII-C).

use igen_affine::Aff;
use igen_interval::F64I;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn random_polynomials_enclose_points(
        coeffs in prop::collection::vec(-2.0f64..2.0, 1..6),
        lo in -3.0f64..3.0,
        w in 0.0f64..2.0,
        t in 0.0f64..1.0,
    ) {
        let hi = lo + w;
        let x_aff = Aff::from_interval(lo, hi);
        let x_pt = lo + t * w;
        // Horner in affine and in f64.
        let mut acc_a = Aff::constant(0.0);
        let mut acc_f = 0.0f64;
        for &c in &coeffs {
            acc_a = acc_a * x_aff.clone() + Aff::constant(c);
            acc_f = acc_f * x_pt + c;
        }
        let (alo, ahi) = acc_a.to_interval();
        prop_assert!(alo <= acc_f && acc_f <= ahi,
            "poly({x_pt}) = {acc_f} outside [{alo}, {ahi}]");
    }

    #[test]
    fn affine_beats_intervals_on_correlated_chains(n in 1usize..30, lo in -1.0f64..0.0) {
        // x - x/2 - x/4 - … : perfectly correlated. Affine stays a thin
        // band; intervals blow up linearly in n.
        let hi = lo + 1.0;
        let xa = Aff::from_interval(lo, hi);
        let xi = F64I::new(lo, hi).unwrap();
        let mut acc_a = xa.clone();
        let mut acc_i = xi;
        for k in 1..=n {
            let d = 2f64.powi(-(k as i32));
            acc_a = acc_a - xa.clone() * Aff::constant(d);
            acc_i = acc_i - xi * F64I::point(d);
        }
        let (alo, ahi) = acc_a.to_interval();
        let aw = ahi - alo;
        let iw = acc_i.width();
        prop_assert!(aw <= iw + 1e-12, "affine {aw} vs interval {iw}");
        if n >= 5 {
            prop_assert!(aw < iw / 2.0, "affine {aw} not much tighter than {iw} at n={n}");
        }
    }

    #[test]
    fn to_interval_roundtrip_contains(lo in -100.0f64..100.0, w in 0.0f64..10.0, t in 0.0f64..1.0) {
        let a = Aff::from_interval(lo, lo + w);
        let (l, h) = a.to_interval();
        let p = lo + t * w;
        prop_assert!(l <= p && p <= h);
    }

    #[test]
    fn condense_never_loses_points(
        lo in -1.0f64..1.0,
        w in 0.0f64..1.0,
        keep in 1usize..8,
        t in 0.0f64..1.0,
    ) {
        let mut a = Aff::from_interval(lo, lo + w);
        for k in 0..20 {
            a = a + Aff::from_interval(-0.01, 0.01 + k as f64 * 1e-4);
        }
        let p_min = a.to_interval().0;
        let p_max = a.to_interval().1;
        let c = a.condense(keep);
        let (cl, ch) = c.to_interval();
        let p = p_min + t * (p_max - p_min);
        prop_assert!(cl <= p + 1e-9 && p - 1e-9 <= ch);
    }
}
