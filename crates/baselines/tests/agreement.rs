//! The three library baselines must compute *identical* endpoints to the
//! IGen runtime on finite inputs — the Fig. 8 comparison is meaningful
//! only if every contender produces the same (correctly rounded) result
//! and differs purely in dataflow style.

use igen_baselines::{BoostI, FilibI, GaolI};
use igen_interval::F64I;
use proptest::prelude::*;

fn ep() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -1e12f64..1e12,
        1 => -1.0f64..1.0,
        1 => prop_oneof![Just(0.0f64), Just(-0.0), Just(1.0), Just(-1.0), Just(f64::MIN_POSITIVE)],
    ]
}

fn interval() -> impl Strategy<Value = (f64, f64)> {
    (ep(), ep()).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn baselines_bitwise_agree_with_runtime(
        (al, ah) in interval(),
        (bl, bh) in interval(),
    ) {
        let a = F64I::new(al, ah).expect("ordered");
        let b = F64I::new(bl, bh).expect("ordered");
        type BinIvlOp = fn(F64I, F64I) -> F64I;
        let ops: [(&str, BinIvlOp); 4] = [
            ("add", |x, y| x + y),
            ("sub", |x, y| x - y),
            ("mul", |x, y| x * y),
            ("div", |x, y| x / y),
        ];
        for (name, f) in ops {
            if name == "div" && bl <= 0.0 && bh >= 0.0 {
                continue; // all contenders return the entire line
            }
            let want = f(a, b);
            let boost = apply_boost(name, BoostI::new(al, ah), BoostI::new(bl, bh));
            let filib = apply_filib(name, FilibI::new(al, ah), FilibI::new(bl, bh));
            let gaol = apply_gaol(name, GaolI::new(al, ah), GaolI::new(bl, bh));
            // ±0.0 endpoints are the same interval; canonicalize before
            // the bitwise comparison.
            let canon = |x: f64| if x == 0.0 { 0.0f64.to_bits() } else { x.to_bits() };
            for (lib, lo, hi) in [
                ("boost", boost.0, boost.1),
                ("filib", filib.0, filib.1),
                ("gaol", gaol.0, gaol.1),
            ] {
                prop_assert_eq!(
                    (canon(lo), canon(hi)),
                    (canon(want.lo()), canon(want.hi())),
                    "{} {} on [{},{}] op [{},{}]: [{}, {}] vs [{}, {}]",
                    lib, name, al, ah, bl, bh, lo, hi, want.lo(), want.hi()
                );
            }
        }
    }
}

fn apply_boost(op: &str, a: BoostI, b: BoostI) -> (f64, f64) {
    let r = match op {
        "add" => a + b,
        "sub" => a - b,
        "mul" => a * b,
        _ => a / b,
    };
    (r.lo(), r.hi())
}

fn apply_filib(op: &str, a: FilibI, b: FilibI) -> (f64, f64) {
    let r = match op {
        "add" => a + b,
        "sub" => a - b,
        "mul" => a * b,
        _ => a / b,
    };
    (r.lo(), r.hi())
}

fn apply_gaol(op: &str, a: GaolI, b: GaolI) -> (f64, f64) {
    let r = match op {
        "add" => a + b,
        "sub" => a - b,
        "mul" => a * b,
        _ => a / b,
    };
    (r.lo(), r.hi())
}
