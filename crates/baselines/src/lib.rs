//! `igen-baselines`: re-implementations of the three interval libraries
//! the paper benchmarks against — Boost.Interval, Filib++ and Gaol
//! (Section VII, Fig. 8).
//!
//! Each baseline reproduces the *performance-relevant algorithmic style*
//! of the original library rather than its full API:
//!
//! * [`BoostI`] — plain `(lo, hi)` pair; multiplication and division use
//!   the classical **nine-case sign specialization** (branchy — the paper
//!   identifies exactly this as the source of the libraries' sensitivity
//!   to branch misprediction).
//! * [`FilibI`] — `(lo, hi)` pair with Filib++'s containment-set
//!   conventions (empty/entire handling and explicit special-case tests
//!   on every operation) and the same case-split multiplication.
//! * [`GaolI`] — Gaol's negated-lower SSE-pair representation (the same
//!   trick IGen uses), but every operation is `#[inline(never)]`: Gaol
//!   ships precompiled, so the compiler cannot inline its operations into
//!   the caller — the paper names this as the likely cause of its lower
//!   performance.
//!
//! All three are *sound*: they use the same exact software directed
//! rounding substrate (`igen-round`) as IGen itself, so every comparison
//! in the benchmarks is apples-to-apples on rounding cost and differs
//! only in the algorithmic structure.
//!
//! The [`backend`] module adds the benchmark-gauntlet abstraction on top:
//! one [`IntervalBackend`] trait every implementation (these baselines,
//! the naive switched-rounding [`NaiveI`], the production IGen types, the
//! `igen-mpf` oracle) is driven through, and [`naive`] adds the
//! switched-rounding-mode emulation that serves as the gauntlet's
//! universal baseline.

#![forbid(unsafe_code)]
// `debug_assert!(!(lo > hi))` below is deliberate: unlike `lo <= hi` it
// admits NaN endpoints (empty/invalid intervals propagate, not panic).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod backend;
pub mod costmodel;
pub mod naive;

pub use backend::{IntervalBackend, IvalVec, Kernel, KernelCase};
pub use naive::NaiveI;

use igen_round as r;

/// Boost.Interval-style interval: `(lo, hi)` pair, sign-case-split
/// multiplication and division.
///
/// # Example
///
/// ```
/// use igen_baselines::BoostI;
/// let x = BoostI::point(0.1);
/// let y = x * x;
/// assert!(y.lo() <= 0.1 * 0.1 && 0.1 * 0.1 <= y.hi());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BoostI {
    lo: f64,
    hi: f64,
}

impl BoostI {
    /// `[x, x]`.
    pub fn point(x: f64) -> BoostI {
        BoostI { lo: x, hi: x }
    }

    /// `[lo, hi]` (caller guarantees order).
    pub fn new(lo: f64, hi: f64) -> BoostI {
        debug_assert!(!(lo > hi), "inverted interval");
        BoostI { lo, hi }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Certified bits (same metric as `igen-interval`).
    pub fn certified_bits(&self) -> f64 {
        igen_interval_accuracy(self.lo, self.hi)
    }

    /// Interval square root (endpoint-monotonic).
    #[must_use]
    pub fn sqrt(&self) -> BoostI {
        BoostI { lo: r::sqrt_rd(self.lo), hi: r::sqrt_ru(self.hi) }
    }

    /// Interval maximum against zero (ReLU in the ffnn benchmark).
    #[must_use]
    pub fn max_zero(&self) -> BoostI {
        BoostI { lo: self.lo.max(0.0), hi: self.hi.max(0.0) }
    }
}

pub(crate) fn igen_interval_accuracy(lo: f64, hi: f64) -> f64 {
    if lo.is_nan() || hi.is_nan() || !lo.is_finite() || !hi.is_finite() || lo > hi {
        return 0.0;
    }
    let steps = r::ulps_between(lo, hi);
    (53.0 - ((steps + 1) as f64).log2()).max(0.0)
}

impl core::ops::Add for BoostI {
    type Output = BoostI;
    #[inline]
    fn add(self, rhs: BoostI) -> BoostI {
        BoostI { lo: r::add_rd(self.lo, rhs.lo), hi: r::add_ru(self.hi, rhs.hi) }
    }
}

impl core::ops::Sub for BoostI {
    type Output = BoostI;
    #[inline]
    fn sub(self, rhs: BoostI) -> BoostI {
        BoostI { lo: r::sub_rd(self.lo, rhs.hi), hi: r::sub_ru(self.hi, rhs.lo) }
    }
}

impl core::ops::Neg for BoostI {
    type Output = BoostI;
    #[inline]
    fn neg(self) -> BoostI {
        BoostI { lo: -self.hi, hi: -self.lo }
    }
}

impl core::ops::Mul for BoostI {
    type Output = BoostI;
    /// The classical nine-case multiplication of Boost.Interval: dispatch
    /// on the sign classes (negative / mixed / positive) of both operands.
    /// Two multiplications in most cases — fewer flops than IGen's
    /// branch-free version but data-dependent branches.
    fn mul(self, rhs: BoostI) -> BoostI {
        let (al, ah) = (self.lo, self.hi);
        let (bl, bh) = (rhs.lo, rhs.hi);
        if ah <= 0.0 {
            // a <= 0
            if bh <= 0.0 {
                BoostI { lo: r::mul_rd(ah, bh), hi: r::mul_ru(al, bl) }
            } else if bl >= 0.0 {
                BoostI { lo: r::mul_rd(al, bh), hi: r::mul_ru(ah, bl) }
            } else {
                BoostI { lo: r::mul_rd(al, bh), hi: r::mul_ru(al, bl) }
            }
        } else if al >= 0.0 {
            // a >= 0
            if bh <= 0.0 {
                BoostI { lo: r::mul_rd(ah, bl), hi: r::mul_ru(al, bh) }
            } else if bl >= 0.0 {
                BoostI { lo: r::mul_rd(al, bl), hi: r::mul_ru(ah, bh) }
            } else {
                BoostI { lo: r::mul_rd(ah, bl), hi: r::mul_ru(ah, bh) }
            }
        } else {
            // a mixed
            if bh <= 0.0 {
                BoostI { lo: r::mul_rd(ah, bl), hi: r::mul_ru(al, bl) }
            } else if bl >= 0.0 {
                BoostI { lo: r::mul_rd(al, bh), hi: r::mul_ru(ah, bh) }
            } else {
                // both mixed: two candidates per side
                let lo = r::mul_rd(al, bh).min(r::mul_rd(ah, bl));
                let hi = r::mul_ru(al, bl).max(r::mul_ru(ah, bh));
                BoostI { lo, hi }
            }
        }
    }
}

impl core::ops::Div for BoostI {
    type Output = BoostI;
    /// Sign-case division; divisors containing zero give the entire line.
    fn div(self, rhs: BoostI) -> BoostI {
        let (al, ah) = (self.lo, self.hi);
        let (bl, bh) = (rhs.lo, rhs.hi);
        if bl <= 0.0 && bh >= 0.0 {
            return BoostI { lo: f64::NEG_INFINITY, hi: f64::INFINITY };
        }
        if bl > 0.0 {
            if al >= 0.0 {
                BoostI { lo: r::div_rd(al, bh), hi: r::div_ru(ah, bl) }
            } else if ah <= 0.0 {
                BoostI { lo: r::div_rd(al, bl), hi: r::div_ru(ah, bh) }
            } else {
                BoostI { lo: r::div_rd(al, bl), hi: r::div_ru(ah, bl) }
            }
        } else {
            // b < 0
            if al >= 0.0 {
                BoostI { lo: r::div_rd(ah, bh), hi: r::div_ru(al, bl) }
            } else if ah <= 0.0 {
                BoostI { lo: r::div_rd(ah, bl), hi: r::div_ru(al, bh) }
            } else {
                BoostI { lo: r::div_rd(ah, bh), hi: r::div_ru(al, bh) }
            }
        }
    }
}

/// Filib++-style interval: containment-set conventions with explicit
/// special-value screening on every operation, plus the same case-split
/// arithmetic core.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FilibI {
    lo: f64,
    hi: f64,
}

impl FilibI {
    /// `[x, x]`.
    pub fn point(x: f64) -> FilibI {
        FilibI { lo: x, hi: x }
    }

    /// `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> FilibI {
        debug_assert!(!(lo > hi));
        FilibI { lo, hi }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The empty containment set (Filib++'s representation).
    pub fn empty() -> FilibI {
        FilibI { lo: f64::NAN, hi: f64::NAN }
    }

    /// True for the empty containment set.
    pub fn is_empty(&self) -> bool {
        self.lo.is_nan() || self.hi.is_nan()
    }

    /// True for the entire line.
    pub fn is_entire(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// Certified bits (same metric as `igen-interval`).
    pub fn certified_bits(&self) -> f64 {
        igen_interval_accuracy(self.lo, self.hi)
    }

    /// Interval square root.
    #[must_use]
    pub fn sqrt(&self) -> FilibI {
        if self.is_empty() {
            return FilibI::empty();
        }
        FilibI { lo: r::sqrt_rd(self.lo.max(0.0)), hi: r::sqrt_ru(self.hi) }
    }

    /// ReLU helper.
    #[must_use]
    pub fn max_zero(&self) -> FilibI {
        if self.is_empty() {
            return FilibI::empty();
        }
        FilibI { lo: self.lo.max(0.0), hi: self.hi.max(0.0) }
    }
}

impl core::ops::Add for FilibI {
    type Output = FilibI;
    #[inline]
    fn add(self, rhs: FilibI) -> FilibI {
        // Filib++ screens specials before arithmetic (containment sets).
        if self.is_empty() || rhs.is_empty() {
            return FilibI::empty();
        }
        if self.is_entire() || rhs.is_entire() {
            return FilibI { lo: f64::NEG_INFINITY, hi: f64::INFINITY };
        }
        FilibI { lo: r::add_rd(self.lo, rhs.lo), hi: r::add_ru(self.hi, rhs.hi) }
    }
}

impl core::ops::Sub for FilibI {
    type Output = FilibI;
    #[inline]
    fn sub(self, rhs: FilibI) -> FilibI {
        if self.is_empty() || rhs.is_empty() {
            return FilibI::empty();
        }
        FilibI { lo: r::sub_rd(self.lo, rhs.hi), hi: r::sub_ru(self.hi, rhs.lo) }
    }
}

impl core::ops::Neg for FilibI {
    type Output = FilibI;
    #[inline]
    fn neg(self) -> FilibI {
        FilibI { lo: -self.hi, hi: -self.lo }
    }
}

impl core::ops::Mul for FilibI {
    type Output = FilibI;
    fn mul(self, rhs: FilibI) -> FilibI {
        if self.is_empty() || rhs.is_empty() {
            return FilibI::empty();
        }
        let b = BoostI::new(self.lo, self.hi) * BoostI::new(rhs.lo, rhs.hi);
        FilibI { lo: b.lo, hi: b.hi }
    }
}

impl core::ops::Div for FilibI {
    type Output = FilibI;
    fn div(self, rhs: FilibI) -> FilibI {
        if self.is_empty() || rhs.is_empty() {
            return FilibI::empty();
        }
        let b = BoostI::new(self.lo, self.hi) / BoostI::new(rhs.lo, rhs.hi);
        FilibI { lo: b.lo, hi: b.hi }
    }
}

/// Gaol-style interval: the same negated-lower trick as IGen (Gaol stores
/// intervals in SSE registers), but **precompiled** — every operation is
/// `#[inline(never)]`, modeling the call-boundary the paper blames for
/// Gaol's lower performance, and multiplication keeps Gaol's sign tests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaolI {
    neg_lo: f64,
    hi: f64,
}

impl GaolI {
    /// `[x, x]`.
    pub fn point(x: f64) -> GaolI {
        GaolI { neg_lo: -x, hi: x }
    }

    /// `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> GaolI {
        debug_assert!(!(lo > hi));
        GaolI { neg_lo: -lo, hi }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        -self.neg_lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Certified bits (same metric as `igen-interval`).
    pub fn certified_bits(&self) -> f64 {
        igen_interval_accuracy(self.lo(), self.hi)
    }

    /// Interval square root.
    #[inline(never)]
    #[must_use]
    pub fn sqrt(&self) -> GaolI {
        GaolI { neg_lo: -r::sqrt_rd(self.lo()), hi: r::sqrt_ru(self.hi) }
    }

    /// ReLU helper.
    #[inline(never)]
    #[must_use]
    pub fn max_zero(&self) -> GaolI {
        GaolI { neg_lo: self.neg_lo.min(0.0), hi: self.hi.max(0.0) }
    }
}

impl core::ops::Add for GaolI {
    type Output = GaolI;
    #[inline(never)]
    fn add(self, rhs: GaolI) -> GaolI {
        GaolI { neg_lo: r::add_ru(self.neg_lo, rhs.neg_lo), hi: r::add_ru(self.hi, rhs.hi) }
    }
}

impl core::ops::Sub for GaolI {
    type Output = GaolI;
    #[inline(never)]
    fn sub(self, rhs: GaolI) -> GaolI {
        GaolI { neg_lo: r::add_ru(self.neg_lo, rhs.hi), hi: r::add_ru(self.hi, rhs.neg_lo) }
    }
}

impl core::ops::Neg for GaolI {
    type Output = GaolI;
    #[inline(never)]
    fn neg(self) -> GaolI {
        GaolI { neg_lo: self.hi, hi: self.neg_lo }
    }
}

impl core::ops::Mul for GaolI {
    type Output = GaolI;
    #[inline(never)]
    fn mul(self, rhs: GaolI) -> GaolI {
        // Gaol specializes on signs too (certainlyPositive tests).
        let b = BoostI::new(self.lo(), self.hi) * BoostI::new(rhs.lo(), rhs.hi);
        GaolI { neg_lo: -b.lo, hi: b.hi }
    }
}

impl core::ops::Div for GaolI {
    type Output = GaolI;
    #[inline(never)]
    fn div(self, rhs: GaolI) -> GaolI {
        let b = BoostI::new(self.lo(), self.hi) / BoostI::new(rhs.lo(), rhs.hi);
        GaolI { neg_lo: -b.lo, hi: b.hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases() -> Vec<(f64, f64, f64, f64)> {
        vec![
            (2.0, 3.0, 4.0, 5.0),
            (-3.0, -2.0, 4.0, 5.0),
            (-2.0, 3.0, 4.0, 5.0),
            (-2.0, 3.0, -5.0, 4.0),
            (-3.0, -2.0, -5.0, -4.0),
            (0.0, 2.0, -1.0, 1.0),
            (0.1, 0.2, -0.3, 0.4),
        ]
    }

    #[test]
    fn all_baselines_agree_with_igen_on_mul() {
        use igen_interval::F64I;
        for (al, ah, bl, bh) in cases() {
            let want = F64I::new(al, ah).unwrap() * F64I::new(bl, bh).unwrap();
            let boost = BoostI::new(al, ah) * BoostI::new(bl, bh);
            let filib = FilibI::new(al, ah) * FilibI::new(bl, bh);
            let gaol = GaolI::new(al, ah) * GaolI::new(bl, bh);
            for (name, lo, hi) in [
                ("boost", boost.lo(), boost.hi()),
                ("filib", filib.lo(), filib.hi()),
                ("gaol", gaol.lo(), gaol.hi()),
            ] {
                assert_eq!(lo, want.lo(), "{name} mul lo [{al},{ah}]*[{bl},{bh}]");
                assert_eq!(hi, want.hi(), "{name} mul hi [{al},{ah}]*[{bl},{bh}]");
            }
        }
    }

    #[test]
    fn all_baselines_agree_on_add_sub_div() {
        use igen_interval::F64I;
        for (al, ah, bl, bh) in cases() {
            let a = F64I::new(al, ah).unwrap();
            let b = F64I::new(bl, bh).unwrap();
            let sum = a + b;
            let bsum = BoostI::new(al, ah) + BoostI::new(bl, bh);
            assert_eq!((bsum.lo(), bsum.hi()), (sum.lo(), sum.hi()));
            let dif = a - b;
            let fdif = FilibI::new(al, ah) - FilibI::new(bl, bh);
            assert_eq!((fdif.lo(), fdif.hi()), (dif.lo(), dif.hi()));
            let quo = a / b;
            let gquo = GaolI::new(al, ah) / GaolI::new(bl, bh);
            assert_eq!((gquo.lo(), gquo.hi()), (quo.lo(), quo.hi()), "[{al},{ah}]/[{bl},{bh}]");
        }
    }

    #[test]
    fn filib_containment_set_specials() {
        let e = FilibI::empty();
        assert!(e.is_empty());
        assert!((e + FilibI::point(1.0)).is_empty());
        assert!((e * FilibI::point(2.0)).is_empty());
        let entire = FilibI::new(f64::NEG_INFINITY, f64::INFINITY);
        assert!(entire.is_entire());
        assert!((entire + FilibI::point(1.0)).is_entire());
    }

    #[test]
    fn sqrt_and_relu() {
        let b = BoostI::new(4.0, 9.0).sqrt();
        assert_eq!((b.lo(), b.hi()), (2.0, 3.0));
        let g = GaolI::new(-2.0, 3.0).max_zero();
        assert_eq!((g.lo(), g.hi()), (0.0, 3.0));
        let f = FilibI::new(-2.0, 3.0).max_zero();
        assert_eq!((f.lo(), f.hi()), (0.0, 3.0));
    }

    #[test]
    fn accuracy_metric_matches() {
        let b = BoostI::point(1.0);
        assert_eq!(b.certified_bits(), 53.0);
        let w = FilibI::new(1.0, 1.0 + f64::EPSILON);
        assert_eq!(w.certified_bits(), 52.0);
    }
}
