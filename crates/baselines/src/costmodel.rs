//! **Cost-model types (benchmark-only, NOT sound).**
//!
//! The paper's machine performs directed rounding in hardware (one flop
//! per op once MXCSR is set); this workspace's sound types pay ~5 flops
//! per directed op in software EFTs. That tax falls on IGen's branch-free
//! 8-product multiplication four times harder than on the libraries'
//! 2-product sign-specialized multiplication, which compresses the Fig. 8
//! performance gap.
//!
//! To reproduce the *algorithmic* comparison the paper makes — branch-free
//! SIMD-friendly dataflow vs. sign-case branches — these types execute
//! exactly the same instruction mix as the sound types but with plain
//! round-to-nearest arithmetic standing in for the 1-flop hardware
//! directed operations. Their numeric results are NOT sound enclosures;
//! they exist only so the `fig8_costmodel` harness can measure the
//! dataflow cost on hardware-rounding terms.

/// IGen-style interval cost model: negated-low representation,
/// branch-free 8-product multiplication (each "directed op" is one flop,
/// as on hardware with MXCSR set upward).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelIGenI {
    neg_lo: f64,
    hi: f64,
}

impl ModelIGenI {
    /// `[x, x]`.
    pub fn point(x: f64) -> ModelIGenI {
        ModelIGenI { neg_lo: -x, hi: x }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        -self.neg_lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl core::ops::Add for ModelIGenI {
    type Output = ModelIGenI;
    #[inline]
    fn add(self, rhs: ModelIGenI) -> ModelIGenI {
        ModelIGenI { neg_lo: self.neg_lo + rhs.neg_lo, hi: self.hi + rhs.hi }
    }
}

impl core::ops::Sub for ModelIGenI {
    type Output = ModelIGenI;
    #[inline]
    fn sub(self, rhs: ModelIGenI) -> ModelIGenI {
        ModelIGenI { neg_lo: self.neg_lo + rhs.hi, hi: self.hi + rhs.neg_lo }
    }
}

impl core::ops::Mul for ModelIGenI {
    type Output = ModelIGenI;
    /// Eight multiplications + six max selections, branch-free — the
    /// paper's interval multiplication with hardware-cost directed ops.
    #[inline]
    fn mul(self, rhs: ModelIGenI) -> ModelIGenI {
        let (na, ah) = (self.neg_lo, self.hi);
        let (nb, bh) = (rhs.neg_lo, rhs.hi);
        let u1 = na * nb;
        let u2 = -na * bh;
        let u3 = ah * -nb;
        let u4 = ah * bh;
        let l1 = -na * nb;
        let l2 = na * bh;
        let l3 = ah * nb;
        let l4 = -ah * bh;
        ModelIGenI { neg_lo: l1.max(l2).max(l3.max(l4)), hi: u1.max(u2).max(u3.max(u4)) }
    }
}

/// Library-style interval cost model: `(lo, hi)` pair with the classical
/// nine-case sign dispatch (two multiplications on most paths) — Boost's
/// dataflow with hardware-cost directed ops.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelLibI {
    lo: f64,
    hi: f64,
}

impl ModelLibI {
    /// `[x, x]`.
    pub fn point(x: f64) -> ModelLibI {
        ModelLibI { lo: x, hi: x }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl core::ops::Add for ModelLibI {
    type Output = ModelLibI;
    #[inline]
    fn add(self, rhs: ModelLibI) -> ModelLibI {
        ModelLibI { lo: self.lo + rhs.lo, hi: self.hi + rhs.hi }
    }
}

impl core::ops::Sub for ModelLibI {
    type Output = ModelLibI;
    #[inline]
    fn sub(self, rhs: ModelLibI) -> ModelLibI {
        ModelLibI { lo: self.lo - rhs.hi, hi: self.hi - rhs.lo }
    }
}

impl core::ops::Mul for ModelLibI {
    type Output = ModelLibI;
    /// Nine-case sign-specialized multiplication: data-dependent branches
    /// (the paper: "this seems to make them particularly sensitive to
    /// branch misprediction").
    fn mul(self, rhs: ModelLibI) -> ModelLibI {
        let (al, ah) = (self.lo, self.hi);
        let (bl, bh) = (rhs.lo, rhs.hi);
        if ah <= 0.0 {
            if bh <= 0.0 {
                ModelLibI { lo: ah * bh, hi: al * bl }
            } else if bl >= 0.0 {
                ModelLibI { lo: al * bh, hi: ah * bl }
            } else {
                ModelLibI { lo: al * bh, hi: al * bl }
            }
        } else if al >= 0.0 {
            if bh <= 0.0 {
                ModelLibI { lo: ah * bl, hi: al * bh }
            } else if bl >= 0.0 {
                ModelLibI { lo: al * bl, hi: ah * bh }
            } else {
                ModelLibI { lo: ah * bl, hi: ah * bh }
            }
        } else if bh <= 0.0 {
            ModelLibI { lo: ah * bl, hi: al * bl }
        } else if bl >= 0.0 {
            ModelLibI { lo: al * bh, hi: ah * bh }
        } else {
            ModelLibI { lo: (al * bh).min(ah * bl), hi: (al * bl).max(ah * bh) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_endpoints_agree_when_exact() {
        // On exactly representable data (no rounding), both models and the
        // sound type coincide.
        let cases = [(2.0, 3.0, -5.0, 4.0), (-3.0, -2.0, 4.0, 5.0), (0.5, 2.0, -1.0, 1.0)];
        for (al, ah, bl, bh) in cases {
            let g = ModelIGenI { neg_lo: -al, hi: ah } * ModelIGenI { neg_lo: -bl, hi: bh };
            let l = ModelLibI { lo: al, hi: ah } * ModelLibI { lo: bl, hi: bh };
            let sound = igen_interval::F64I::new(al, ah).unwrap()
                * igen_interval::F64I::new(bl, bh).unwrap();
            assert_eq!((g.lo(), g.hi()), (sound.lo(), sound.hi()), "igen model");
            assert_eq!((l.lo(), l.hi()), (sound.lo(), sound.hi()), "lib model");
        }
    }
}
