//! The cross-library benchmark gauntlet's backend abstraction.
//!
//! Following "A Cross-Platform Benchmark for Interval Computation
//! Libraries" (arXiv 2110.06215), every interval implementation in the
//! workspace — the library-style baselines in this crate, the production
//! `igen-interval` types, the packed `igen-batch` path and the `igen-mpf`
//! oracle — is driven through **one trait** over **one shared kernel
//! set**, so performance and accuracy comparisons are apples-to-apples
//! and machine-checkable.
//!
//! The trait deliberately speaks plain `f64` endpoint buffers
//! ([`IvalVec`]): conversion into a backend's own representation happens
//! inside [`IntervalBackend::instantiate`], *outside* the timed region,
//! exactly like the cross-platform benchmark's per-library adapters. The
//! backend adapters themselves live in `igen-bench::gauntlet`, one file
//! per backend, registered in a single table — adding a library to the
//! gauntlet is a one-file plug-in.

/// The five gauntlet kernels (the paper's batch kernel set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Batched dot products.
    Dot,
    /// Batched matrix-vector products `y ← A·x + y` (shared matrix).
    Mvm,
    /// One square GEMM `C += A·B`.
    Gemm,
    /// A Hénon orbit ensemble (final `x` per orbit).
    Henon,
    /// Batched feed-forward network inference.
    Ffnn,
}

impl Kernel {
    /// Every kernel, in canonical report order.
    pub const ALL: [Kernel; 5] =
        [Kernel::Dot, Kernel::Mvm, Kernel::Gemm, Kernel::Henon, Kernel::Ffnn];

    /// Stable lower-case name (CSV/JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Dot => "dot",
            Kernel::Mvm => "mvm",
            Kernel::Gemm => "gemm",
            Kernel::Henon => "henon",
            Kernel::Ffnn => "ffnn",
        }
    }

    /// Parses a kernel name as printed by [`Kernel::name`].
    pub fn parse(s: &str) -> Option<Kernel> {
        Kernel::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl core::fmt::Display for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A buffer of interval endpoints in structure-of-arrays form: entry `i`
/// is the interval `[lo[i], hi[i]]`. This is the lingua franca every
/// gauntlet backend consumes and produces, independent of its internal
/// representation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IvalVec {
    /// Lower endpoints.
    pub lo: Vec<f64>,
    /// Upper endpoints.
    pub hi: Vec<f64>,
}

impl IvalVec {
    /// An empty buffer.
    pub fn new() -> IvalVec {
        IvalVec::default()
    }

    /// An empty buffer with room for `n` intervals.
    pub fn with_capacity(n: usize) -> IvalVec {
        IvalVec { lo: Vec::with_capacity(n), hi: Vec::with_capacity(n) }
    }

    /// Builds from `(lo, hi)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if some `lo > hi` (NaN endpoints are allowed).
    pub fn from_pairs(pairs: &[(f64, f64)]) -> IvalVec {
        let mut v = IvalVec::with_capacity(pairs.len());
        for &(lo, hi) in pairs {
            v.push(lo, hi);
        }
        v
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.lo.len(), self.hi.len());
        self.lo.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Appends `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `lo > hi`.
    pub fn push(&mut self, lo: f64, hi: f64) {
        debug_assert!(!(lo > hi), "inverted interval [{lo}, {hi}]");
        self.lo.push(lo);
        self.hi.push(hi);
    }

    /// The `i`-th interval as `(lo, hi)`.
    pub fn get(&self, i: usize) -> (f64, f64) {
        (self.lo[i], self.hi[i])
    }

    /// Mean relative width `mean((hi - lo) / max(|lo|, |hi|))` over all
    /// entries — the gauntlet's accuracy metric (same convention as
    /// `igen_interval::F64I::rel_width`: entries around zero contribute
    /// the absolute width; NaN endpoints poison the mean, which is the
    /// point — an unsound backend cannot hide). Empty buffers report 0.
    pub fn mean_rel_width(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..self.len() {
            let (lo, hi) = self.get(i);
            let w = igen_round::sub_ru(hi, lo);
            let mag = lo.abs().max(hi.abs());
            sum += if mag > 0.0 && mag.is_finite() { w / mag } else { w };
        }
        sum / self.len() as f64
    }
}

/// One fully-specified kernel instance: sizes plus operand endpoint
/// buffers. The same case is handed to every backend, so all contenders
/// run over identical inputs.
///
/// Operand interpretation per kernel:
///
/// | kernel  | `n`            | `batch` | `x`                      | `y`                   | `w`                |
/// |---------|----------------|---------|--------------------------|-----------------------|--------------------|
/// | `dot`   | vector length  | items   | `batch·n` vectors        | `batch·n` vectors     | unused             |
/// | `mvm`   | matrix dim     | items   | `batch·n` inputs         | `batch·n` accumulators| `n·n` matrix `A`   |
/// | `gemm`  | matrix dim     | unused  | `n·n` matrix `B`         | `n·n` initial `C`     | `n·n` matrix `A`   |
/// | `henon` | unused         | orbits  | `batch` initial `x0`     | `batch` initial `y0`  | unused             |
/// | `ffnn`  | layer width    | items   | `batch·784` point inputs | unused                | unused (see below) |
///
/// The `ffnn` network weights are not carried as endpoint buffers: they
/// are reproduced deterministically by every adapter from
/// `(n, ffnn_seed)` via `igen_kernels::ffnn::Ffnn::synthetic`, mirroring
/// how each library in the cross-platform benchmark loads the same model.
#[derive(Debug, Clone)]
pub struct KernelCase {
    /// Which kernel this case drives.
    pub kernel: Kernel,
    /// Problem size (see the table above).
    pub n: usize,
    /// Batch items / orbits (see the table above).
    pub batch: usize,
    /// Hénon iterations.
    pub iters: usize,
    /// Seed of the deterministic synthetic FFNN.
    pub ffnn_seed: u64,
    /// First operand buffer.
    pub x: IvalVec,
    /// Second operand buffer.
    pub y: IvalVec,
    /// Shared matrix operand.
    pub w: IvalVec,
}

/// One interval implementation under benchmark.
///
/// Implementations are *adapters*: they translate the shared
/// [`KernelCase`] into their own representation up front and return a
/// closure that runs the kernel once per call — the closure is what the
/// harness times, so conversion cost never pollutes the measurement.
///
/// Every backend must be **sound**: its output intervals must contain
/// the true result set (the gauntlet property-tests each backend's
/// outputs against the `igen-mpf` oracle enclosure — widths may differ,
/// containment may not).
pub trait IntervalBackend: Sync {
    /// Stable registry name (CLI `--backends` key, JSON `backend` field).
    fn name(&self) -> &'static str;

    /// One-line description of the implementation style.
    fn style(&self) -> &'static str;

    /// True when the backend routes through the packed `LaneOps` SIMD
    /// path — the rows the CI regression gate watches.
    fn packed_path(&self) -> bool {
        false
    }

    /// Builds the runnable kernel for `case`. The returned closure
    /// executes the kernel once and returns the output intervals.
    fn instantiate<'a>(&'a self, case: &'a KernelCase) -> Box<dyn FnMut() -> IvalVec + 'a>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(Kernel::parse("fft"), None);
    }

    #[test]
    fn ival_vec_basics() {
        let mut v = IvalVec::new();
        assert!(v.is_empty());
        v.push(1.0, 2.0);
        v.push(-3.0, -1.0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(1), (-3.0, -1.0));
        let w = IvalVec::from_pairs(&[(1.0, 2.0), (-3.0, -1.0)]);
        assert_eq!(v, w);
    }

    #[test]
    fn mean_rel_width_metric() {
        // Point intervals: zero width.
        let p = IvalVec::from_pairs(&[(2.0, 2.0), (-1.0, -1.0)]);
        assert_eq!(p.mean_rel_width(), 0.0);
        // [1, 1 + eps]: rel width = eps.
        let e = IvalVec::from_pairs(&[(1.0, 1.0 + f64::EPSILON)]);
        assert!((e.mean_rel_width() - f64::EPSILON).abs() < 1e-30);
        // Zero-straddling interval contributes its absolute width scaled
        // by the larger endpoint magnitude.
        let z = IvalVec::from_pairs(&[(-0.5, 1.0)]);
        assert!((z.mean_rel_width() - 1.5).abs() < 1e-15);
        // Empty: defined as 0.
        assert_eq!(IvalVec::new().mean_rel_width(), 0.0);
    }

    #[test]
    fn nan_poisons_the_mean() {
        let v = IvalVec::from_pairs(&[(1.0, 2.0), (f64::NAN, f64::NAN)]);
        assert!(v.mean_rel_width().is_nan());
    }
}
