//! The gauntlet's **naive switched-rounding-mode baseline**.
//!
//! Classic op-by-op interval libraries drive the FPU rounding mode:
//! every endpoint operation is bracketed by `fesetround(FE_DOWNWARD)` /
//! `fesetround(FE_UPWARD)` writes, each of which serializes the
//! floating-point pipeline. This workspace computes directed rounding in
//! software EFTs instead, so [`NaiveI`] *emulates* the switched-mode
//! style faithfully enough to serve as the gauntlet's universal
//! baseline:
//!
//! * every operation performs two mode switches ([`set_rounding_mode`]:
//!   an `#[inline(never)]` call around a sequentially-consistent store —
//!   the software stand-in for the serializing `LDMXCSR`), and
//! * each "directed" endpoint result is the round-to-nearest value
//!   stepped one ulp outward ([`igen_round::next_down`]/[`next_up`]),
//!   the defensive widening a library uses when it cannot trust the
//!   current mode.
//!
//! The result is **sound but wide**: each operation gives away up to one
//! ulp per endpoint versus the correctly-rounded `igen-interval` types,
//! so the gauntlet's width column separates the contenders on accuracy
//! exactly as the speed columns do on time.
//!
//! [`next_up`]: igen_round::next_up

use core::sync::atomic::{AtomicU8, Ordering};
use igen_round::{next_down, next_up};

/// Emulated FPU rounding-control state (the "MXCSR.RC field").
static ROUNDING_MODE: AtomicU8 = AtomicU8::new(MODE_NEAREST);

const MODE_NEAREST: u8 = 0;
const MODE_DOWN: u8 = 1;
const MODE_UP: u8 = 2;

/// Emulated `fesetround`: a call boundary plus a sequentially-consistent
/// store, modeling the serialization cost a real mode write imposes. The
/// call must not be inlined away — that *is* the cost being modeled.
#[inline(never)]
fn set_rounding_mode(mode: u8) {
    ROUNDING_MODE.store(mode, Ordering::SeqCst);
}

/// One-ulp outward step below the round-to-nearest result: sound for
/// downward rounding because nearest is within half an ulp of the exact
/// value (and `next_down(+∞) = MAX` covers the overflow edge).
#[inline]
fn step_down(nearest: f64) -> f64 {
    next_down(nearest)
}

/// One-ulp outward step above the round-to-nearest result.
#[inline]
fn step_up(nearest: f64) -> f64 {
    next_up(nearest)
}

/// Naive switched-rounding-mode interval: `(lo, hi)` pair, two emulated
/// mode switches and one-ulp defensive widening per operation.
///
/// # Example
///
/// ```
/// use igen_baselines::NaiveI;
/// let x = NaiveI::point(0.1);
/// let y = x + x;
/// assert!(y.lo() <= 0.2 && 0.2 <= y.hi());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NaiveI {
    lo: f64,
    hi: f64,
}

impl NaiveI {
    /// `[x, x]`.
    pub fn point(x: f64) -> NaiveI {
        NaiveI { lo: x, hi: x }
    }

    /// `[lo, hi]` (caller guarantees order).
    pub fn new(lo: f64, hi: f64) -> NaiveI {
        debug_assert!(!(lo > hi), "inverted interval");
        NaiveI { lo, hi }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Certified bits (same metric as `igen-interval`).
    pub fn certified_bits(&self) -> f64 {
        crate::igen_interval_accuracy(self.lo, self.hi)
    }

    /// Interval square root (mode-switched, defensively widened; the
    /// lower step is clamped at zero, where the true root lives).
    #[must_use]
    pub fn sqrt(&self) -> NaiveI {
        set_rounding_mode(MODE_DOWN);
        let lo = if self.lo >= 0.0 { step_down(self.lo.sqrt()).max(0.0) } else { f64::NAN };
        set_rounding_mode(MODE_UP);
        let hi = step_up(self.hi.sqrt());
        set_rounding_mode(MODE_NEAREST);
        NaiveI { lo, hi }
    }

    /// Interval maximum against zero (ReLU) — exact, no rounding.
    #[must_use]
    pub fn max_zero(&self) -> NaiveI {
        NaiveI { lo: self.lo.max(0.0), hi: self.hi.max(0.0) }
    }
}

impl core::ops::Add for NaiveI {
    type Output = NaiveI;
    fn add(self, rhs: NaiveI) -> NaiveI {
        set_rounding_mode(MODE_DOWN);
        let lo = step_down(self.lo + rhs.lo);
        set_rounding_mode(MODE_UP);
        let hi = step_up(self.hi + rhs.hi);
        set_rounding_mode(MODE_NEAREST);
        NaiveI { lo, hi }
    }
}

impl core::ops::Sub for NaiveI {
    type Output = NaiveI;
    fn sub(self, rhs: NaiveI) -> NaiveI {
        set_rounding_mode(MODE_DOWN);
        let lo = step_down(self.lo - rhs.hi);
        set_rounding_mode(MODE_UP);
        let hi = step_up(self.hi - rhs.lo);
        set_rounding_mode(MODE_NEAREST);
        NaiveI { lo, hi }
    }
}

impl core::ops::Neg for NaiveI {
    type Output = NaiveI;
    fn neg(self) -> NaiveI {
        NaiveI { lo: -self.hi, hi: -self.lo }
    }
}

impl core::ops::Mul for NaiveI {
    type Output = NaiveI;
    /// The truly naive four-products multiplication: all endpoint
    /// products in each mode, min/max selection — no sign dispatch.
    fn mul(self, rhs: NaiveI) -> NaiveI {
        let (al, ah) = (self.lo, self.hi);
        let (bl, bh) = (rhs.lo, rhs.hi);
        set_rounding_mode(MODE_DOWN);
        let lo = step_down((al * bl).min(al * bh).min((ah * bl).min(ah * bh)));
        set_rounding_mode(MODE_UP);
        let hi = step_up((al * bl).max(al * bh).max((ah * bl).max(ah * bh)));
        set_rounding_mode(MODE_NEAREST);
        NaiveI { lo, hi }
    }
}

impl core::ops::Div for NaiveI {
    type Output = NaiveI;
    /// Four-quotients division; divisors containing zero give the entire
    /// line.
    fn div(self, rhs: NaiveI) -> NaiveI {
        let (al, ah) = (self.lo, self.hi);
        let (bl, bh) = (rhs.lo, rhs.hi);
        if bl <= 0.0 && bh >= 0.0 {
            return NaiveI { lo: f64::NEG_INFINITY, hi: f64::INFINITY };
        }
        set_rounding_mode(MODE_DOWN);
        let lo = step_down((al / bl).min(al / bh).min((ah / bl).min(ah / bh)));
        set_rounding_mode(MODE_UP);
        let hi = step_up((al / bl).max(al / bh).max((ah / bl).max(ah / bh)));
        set_rounding_mode(MODE_NEAREST);
        NaiveI { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_encloses_exact_arithmetic() {
        let a = NaiveI::new(2.0, 3.0);
        let b = NaiveI::new(-5.0, 4.0);
        let s = a + b;
        assert!(s.lo <= -3.0 && 3.0 + 4.0 <= s.hi);
        let p = a * b;
        assert!(p.lo <= -15.0 && 12.0 <= p.hi);
        let q = a / NaiveI::new(2.0, 2.0);
        assert!(q.lo <= 1.0 && 1.5 <= q.hi);
    }

    #[test]
    fn naive_is_wider_than_one_ulp_per_op() {
        // 0.1 + 0.2 in naive intervals must contain the exact rational
        // sum and be strictly wider than the correctly-rounded result.
        let s = NaiveI::point(0.1) + NaiveI::point(0.2);
        assert!(s.lo < 0.1 + 0.2 && 0.1 + 0.2 < s.hi);
        assert!(igen_round::ulps_between(s.lo, s.hi) >= 2);
    }

    #[test]
    fn division_by_zero_interval_is_entire() {
        let q = NaiveI::new(1.0, 2.0) / NaiveI::new(-1.0, 1.0);
        assert_eq!((q.lo, q.hi), (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn sqrt_clamps_at_zero() {
        let r = NaiveI::new(0.0, 4.0).sqrt();
        assert_eq!(r.lo, 0.0);
        assert!(r.hi >= 2.0);
        assert!(NaiveI::new(-1.0, 1.0).sqrt().lo.is_nan());
    }

    #[test]
    fn overflow_steps_stay_sound() {
        let big = NaiveI::point(f64::MAX);
        let s = big + big;
        assert_eq!(s.hi, f64::INFINITY);
        assert!(s.lo.is_finite());
    }
}
