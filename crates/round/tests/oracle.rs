//! Property tests: the EFT-based software directed rounding must be
//! bit-identical to the 256-bit oracle's correctly rounded results
//! (outside the documented deep-subnormal fallback ranges, where it must
//! still be a sound bound within one quantum).

use igen_mpf::{Mpf, Rm};
use igen_round as r;
use proptest::prelude::*;

/// Strategy over "interesting" doubles: mixes uniform bit patterns (which
/// are heavily biased to extreme exponents) with everyday-magnitude values.
fn any_double() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => any::<f64>().prop_filter("finite", |x| x.is_finite()),
        4 => (-1e6f64..1e6).prop_map(|x| x),
        1 => prop_oneof![
            Just(0.0),
            Just(-0.0),
            Just(f64::MIN_POSITIVE),
            Just(-f64::MIN_POSITIVE),
            Just(f64::from_bits(1)),
            Just(f64::MAX),
            Just(-f64::MAX),
            Just(1.0),
            Just(-1.0),
        ],
    ]
}

/// Check a software-rounded result against the oracle.
///
/// `exact_beyond`: magnitude above which the kernel promises bit-exactness;
/// below it, a one-quantum slack in the safe direction is allowed.
fn check_dir(tag: &str, got: f64, oracle: Mpf, up: bool, exact: bool) -> Result<(), TestCaseError> {
    let want = oracle.to_f64(if up { Rm::Up } else { Rm::Down });
    if got.is_nan() || want.is_nan() {
        prop_assert!(got.is_nan() && want.is_nan(), "{tag}: NaN mismatch {got} vs {want}");
        return Ok(());
    }
    if exact {
        prop_assert!(
            got == want && got.is_sign_negative() == want.is_sign_negative(),
            "{tag}: got {got:e} ({:#x}) want {want:e} ({:#x})",
            got.to_bits(),
            want.to_bits()
        );
    } else if up {
        // Sound and at most one quantum wide of the true RU.
        prop_assert!(got >= want, "{tag}: unsound upward {got:e} < {want:e}");
        prop_assert!(got <= r::next_up(want), "{tag}: too loose {got:e} vs {want:e}");
    } else {
        prop_assert!(got <= want, "{tag}: unsound downward {got:e} > {want:e}");
        prop_assert!(got >= r::next_down(want), "{tag}: too loose {got:e} vs {want:e}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn add_matches_oracle(a in any_double(), b in any_double()) {
        // Directed rounding composes across nested precisions, so rounding
        // the 256-bit directed sum to f64 in the same direction gives the
        // true RU/RD (256-bit Nearest would NOT be safe: the exact sum of
        // two doubles can need ~2100 bits).
        let o_up = Mpf::from_f64(a).add(&Mpf::from_f64(b), Rm::Up);
        let o_dn = Mpf::from_f64(a).add(&Mpf::from_f64(b), Rm::Down);
        check_dir("add_ru", r::add_ru(a, b), o_up, true, true)?;
        check_dir("add_rd", r::add_rd(a, b), o_dn, false, true)?;
    }

    #[test]
    fn sub_matches_oracle(a in any_double(), b in any_double()) {
        let o_up = Mpf::from_f64(a).sub(&Mpf::from_f64(b), Rm::Up);
        let o_dn = Mpf::from_f64(a).sub(&Mpf::from_f64(b), Rm::Down);
        check_dir("sub_ru", r::sub_ru(a, b), o_up, true, true)?;
        check_dir("sub_rd", r::sub_rd(a, b), o_dn, false, true)?;
    }

    #[test]
    fn mul_matches_oracle(a in any_double(), b in any_double()) {
        let o = Mpf::from_f64(a).mul(&Mpf::from_f64(b), Rm::Nearest); // exact: 106 bits
        check_dir("mul_ru", r::mul_ru(a, b), o, true, true)?;
        check_dir("mul_rd", r::mul_rd(a, b), o, false, true)?;
    }

    #[test]
    fn div_matches_oracle(a in any_double(), b in any_double()) {
        prop_assume!(b != 0.0);
        let q = a / b;
        let exact = q.abs() >= f64::MIN_POSITIVE && a.abs() >= 1e-270 || q == 0.0 && a == 0.0;
        let o_up = Mpf::from_f64(a).div(&Mpf::from_f64(b), Rm::Up);
        let o_dn = Mpf::from_f64(a).div(&Mpf::from_f64(b), Rm::Down);
        check_dir("div_ru", r::div_ru(a, b), o_up, true, exact)?;
        check_dir("div_rd", r::div_rd(a, b), o_dn, false, exact)?;
    }

    #[test]
    fn sqrt_matches_oracle(raw in any_double()) {
        let a = raw.abs();
        let exact = a >= 1e-290;
        let o_up = Mpf::from_f64(a).sqrt(Rm::Up);
        let o_dn = Mpf::from_f64(a).sqrt(Rm::Down);
        check_dir("sqrt_ru", r::sqrt_ru(a), o_up, true, exact)?;
        check_dir("sqrt_rd", r::sqrt_rd(a), o_dn, false, exact)?;
    }

    #[test]
    fn fma_is_sound_vs_oracle(a in any_double(), b in any_double(), c in any_double()) {
        // fma kernels promise soundness with at most one quantum of slack.
        let o = Mpf::from_f64(a)
            .mul(&Mpf::from_f64(b), Rm::Nearest)
            .add(&Mpf::from_f64(c), Rm::Nearest); // exact at 256 bits (106+53)
        check_dir("fma_ru", r::fma_ru(a, b, c), o, true, false)?;
        check_dir("fma_rd", r::fma_rd(a, b, c), o, false, false)?;
    }

    #[test]
    fn dd_generic_trait_dispatch(a in any_double(), b in any_double()) {
        use igen_round::{Rounded, Rn, Ru, Rd};
        prop_assert_eq!(Rn::add(a, b).to_bits(), (a + b).to_bits());
        prop_assert_eq!(Ru::add(a, b).to_bits(), r::add_ru(a, b).to_bits());
        prop_assert_eq!(Rd::mul(a, b).to_bits(), r::mul_rd(a, b).to_bits());
    }
}

#[test]
fn ulps_between_matches_oracle_width_idea() {
    // ulps_between is the paper's accuracy metric denominator; sanity-check
    // a few spans against direct stepping.
    let mut x = 1.0f64;
    for steps in 0..100u64 {
        assert_eq!(r::ulps_between(1.0, x), steps);
        x = r::next_up(x);
    }
}
