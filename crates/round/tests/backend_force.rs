//! The `force_backend` downgrade-only contract (satellite of the
//! telemetry PR).
//!
//! Forcing a backend can only *downgrade* from the detected level, never
//! enable instructions the host lacks; and a forced `Sse2` on an
//! AVX2+FMA host must route through the FMA-free Dekker product path
//! while staying bit-identical to the scalar kernels — including on
//! operands that violate the packed Dekker guards and therefore take the
//! per-lane scalar patch.
//!
//! With the `telemetry` feature on, the dispatch counters additionally
//! pin *where* the forced calls went: `simd.dispatch.sse2` moves,
//! `simd.dispatch.avx2_fma` does not.

use igen_round as r;
use igen_round::simd::{self, Backend};

/// `force_backend` mutates process-global state, so the tests in this
/// file must not interleave.
static FORCE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Restores the detected backend even if a test panics mid-force.
struct ForceGuard;
impl Drop for ForceGuard {
    fn drop(&mut self) {
        simd::force_backend(None);
    }
}

/// 2^n as an exact f64 (|n| <= 1023).
fn pow2(n: i64) -> f64 {
    f64::from_bits(((1023 + n) as u64) << 52)
}

/// Operand vectors chosen to violate the packed kernels' Dekker/FMA
/// guards (operands below the 2^-480 Dekker floor, products below the
/// 2.5e-291 residual quantum, dividends below the 1e-270 division
/// floor, specials), mixed with in-range lanes so both the packed fast
/// path and the scalar patch path run in one call.
fn guard_stress_pairs() -> Vec<([f64; 4], [f64; 4])> {
    let tiny = pow2(-500); // below DEKKER_OP_MIN = 2^-480
    let huge = pow2(1000); // above DEKKER_OP_MAX = 2^996
    vec![
        ([tiny, 1.5, tiny, 0.1], [tiny, tiny, 2.0, 3.0]),
        ([huge, huge, 1.0, -huge], [2.0, huge, huge, 0.5]),
        ([1e-280, 1.0 / 3.0, -1e-280, 1.0], [7.0, 1e-280, -3.0, 1e-300]),
        ([f64::from_bits(1), f64::MIN_POSITIVE, 1.0, -0.0], [3.0, 0.1, f64::from_bits(1), 5.0]),
        ([f64::NAN, f64::INFINITY, -1.0, 0.0], [1.0, f64::NEG_INFINITY, f64::MAX, -0.0]),
        ([2.5e-291, 1e-270, pow2(-480), pow2(996)], [1.0, 1.0, 1.0, 1.0]),
    ]
}

/// Runs every packed kernel on `bk` and asserts per-lane bit-identity
/// with the scalar reference.
fn assert_bit_identical(bk: Backend, a: &[f64; 4], b: &[f64; 4]) {
    let s = simd::add_ru_4(bk, a, b);
    let (mh, ml) = simd::mul_ru_both_4(bk, a, b);
    let (dh, dl) = simd::div_ru_both_4(bk, a, b);
    let mx = simd::max_nan_4(bk, a, b);
    for i in 0..4 {
        let (ai, bi) = (a[i], b[i]);
        assert_eq!(s[i].to_bits(), r::add_ru(ai, bi).to_bits(), "add {ai:e}+{bi:e} [{bk:?}]");
        let (wh, wl) = r::mul_ru_both(ai, bi);
        assert_eq!(mh[i].to_bits(), wh.to_bits(), "mul.hi {ai:e}*{bi:e} [{bk:?}]");
        assert_eq!(ml[i].to_bits(), wl.to_bits(), "mul.lo {ai:e}*{bi:e} [{bk:?}]");
        let (qh, ql) = r::div_ru_both(ai, bi);
        assert_eq!(dh[i].to_bits(), qh.to_bits(), "div.hi {ai:e}/{bi:e} [{bk:?}]");
        assert_eq!(dl[i].to_bits(), ql.to_bits(), "div.lo {ai:e}/{bi:e} [{bk:?}]");
        assert_eq!(mx[i].to_bits(), simd::max_nan(ai, bi).to_bits(), "max [{bk:?}]");
    }
}

#[test]
fn force_backend_only_downgrades() {
    let _serial = FORCE_LOCK.lock().unwrap();
    let _restore = ForceGuard;
    let det = simd::detected_backend();
    // Forcing below (or at) the detected level takes effect verbatim...
    let eff = simd::force_backend(Some(Backend::Sse2));
    assert_eq!(eff, Backend::Sse2.min(det));
    assert_eq!(simd::active_backend(), eff);
    assert!(eff <= det, "force_backend must never exceed the detected level");
    // ...forcing above it clamps to what the host has...
    assert_eq!(simd::force_backend(Some(Backend::Avx2Fma)), det);
    assert_eq!(simd::active_backend(), det);
    // ...and clearing the force restores detection.
    assert_eq!(simd::force_backend(None), det);
    assert_eq!(simd::active_backend(), det);
}

#[test]
fn forced_sse2_dekker_path_is_bit_identical() {
    let _serial = FORCE_LOCK.lock().unwrap();
    let _restore = ForceGuard;
    let eff = simd::force_backend(Some(Backend::Sse2));
    for (a, b) in guard_stress_pairs() {
        assert_bit_identical(eff, &a, &b);
        // The downgrade must also hold per lane position.
        for i in 0..4 {
            let mut av = [1.0; 4];
            let mut bv = [3.0; 4];
            av[i] = a[i];
            bv[i] = b[i];
            assert_bit_identical(eff, &av, &bv);
        }
    }
}

/// With telemetry compiled in, the dispatch counters prove the forced
/// calls ran on the SSE2 path (AVX2 counter untouched, even on an
/// AVX2+FMA host) and that the guard-violating operands really took the
/// per-lane scalar patch.
#[cfg(feature = "telemetry")]
#[test]
fn forced_sse2_routes_dispatch_to_sse2() {
    use igen_telemetry::counters_snapshot;
    fn counter(name: &str) -> u64 {
        counters_snapshot().iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }
    let _serial = FORCE_LOCK.lock().unwrap();
    let _restore = ForceGuard;
    let eff = simd::force_backend(Some(Backend::Sse2));
    let (sse_0, avx_0) = (counter("simd.dispatch.sse2"), counter("simd.dispatch.avx2_fma"));
    let (packed_0, patched_0) =
        (counter("simd.mul.packed_calls"), counter("simd.mul.lanes_patched"));
    let pairs = guard_stress_pairs();
    let mut calls = 0u64;
    for (a, b) in &pairs {
        let _ = simd::mul_ru_both_4(eff, a, b);
        calls += 1;
    }
    if eff == Backend::Sse2 {
        assert_eq!(
            counter("simd.dispatch.sse2") - sse_0,
            calls,
            "every forced call must dispatch to SSE2"
        );
        assert_eq!(
            counter("simd.dispatch.avx2_fma"),
            avx_0,
            "a forced SSE2 run must never touch the AVX2 path"
        );
        assert!(
            counter("simd.mul.lanes_patched") > patched_0,
            "the guard-violating lanes must take the scalar patch"
        );
    } else {
        // Portable-only host: the calls land on the portable dispatcher.
        assert!(counter("simd.dispatch.portable") >= calls);
    }
    assert_eq!(counter("simd.mul.packed_calls") - packed_0, calls);
}
