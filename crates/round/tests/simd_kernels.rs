//! Property tests for the packed directed-rounding kernels.
//!
//! Two contracts are pinned here:
//!
//! 1. **Bit-identity**: every packed kernel in `igen_round::simd` returns,
//!    in each lane, exactly the bits of the corresponding scalar kernel —
//!    on every backend the host supports, for random full-range operands
//!    (the generator emits NaNs, infinities, subnormals and signed zeros)
//!    and for an exhaustive special-value grid.
//! 2. **FMA vs. Dekker exactness** (the SSE2 backend's product residual):
//!    inside the documented guard range, `two_prod_dekker` equals the FMA
//!    `two_prod` bit for bit, so the FMA fast path can never silently
//!    diverge from the FMA-free one.

use igen_round as r;
use igen_round::simd::{self, Backend};
use proptest::prelude::*;

/// Every backend this host can actually run.
fn backends() -> Vec<Backend> {
    [Backend::Portable, Backend::Sse2, Backend::Avx2Fma]
        .into_iter()
        .filter(|&bk| bk <= simd::detected_backend())
        .collect()
}

fn assert_lane(tag: &str, bk: Backend, i: usize, got: f64, want: f64) -> Result<(), TestCaseError> {
    prop_assert!(
        got.to_bits() == want.to_bits(),
        "{tag} [{bk:?} lane {i}]: got {got:e} ({:#018x}), want {want:e} ({:#018x})",
        got.to_bits(),
        want.to_bits()
    );
    Ok(())
}

fn check_all_kernels(a: [f64; 4], b: [f64; 4]) -> Result<(), TestCaseError> {
    for bk in backends() {
        let s = simd::add_ru_4(bk, &a, &b);
        let (mh, ml) = simd::mul_ru_both_4(bk, &a, &b);
        let (dh, dl) = simd::div_ru_both_4(bk, &a, &b);
        let mx = simd::max_nan_4(bk, &a, &b);
        // Unary kernels over `a` (random lanes include negative
        // radicands, which must take the scalar NaN path identically).
        let qu = simd::sqrt_ru_4(bk, &a);
        let qd = simd::sqrt_rd_4(bk, &a);
        let (su, sl) = simd::sqr_ru_both_4(bk, &a);
        // Column kernels treat `a` as the neg_lo column and `b` as the
        // hi column — arbitrary raw columns on purpose: the packed path
        // must match the scalar column reference even on endpoint pairs
        // no valid interval would produce.
        let (an, ah) = simd::abs_4(bk, &a, &b);
        let lt = simd::cmp_lt_4(bk, &a, &b, &b, &a);
        let le = simd::cmp_le_4(bk, &a, &b, &b, &a);
        let eq = simd::cmp_eq_4(bk, &a, &b, &b, &a);
        for i in 0..4 {
            assert_lane("add_ru_4", bk, i, s[i], r::add_ru(a[i], b[i]))?;
            let (wh, wl) = r::mul_ru_both(a[i], b[i]);
            assert_lane("mul_ru_both_4.hi", bk, i, mh[i], wh)?;
            assert_lane("mul_ru_both_4.lo", bk, i, ml[i], wl)?;
            let (qh, ql) = r::div_ru_both(a[i], b[i]);
            assert_lane("div_ru_both_4.hi", bk, i, dh[i], qh)?;
            assert_lane("div_ru_both_4.lo", bk, i, dl[i], ql)?;
            assert_lane("max_nan_4", bk, i, mx[i], simd::max_nan(a[i], b[i]))?;
            assert_lane("sqrt_ru_4", bk, i, qu[i], r::sqrt_ru(a[i]))?;
            assert_lane("sqrt_rd_4", bk, i, qd[i], r::sqrt_rd(a[i]))?;
            let (vh, vl) = r::mul_ru_both(a[i], a[i]);
            assert_lane("sqr_ru_both_4.hi", bk, i, su[i], vh)?;
            assert_lane("sqr_ru_both_4.lo", bk, i, sl[i], vl)?;
            let (wn, wh) = simd::abs_cols(a[i], b[i]);
            assert_lane("abs_4.neg_lo", bk, i, an[i], wn)?;
            assert_lane("abs_4.hi", bk, i, ah[i], wh)?;
            prop_assert!(
                lt.lane(i) == simd::cmp_lt_cols(a[i], b[i], b[i], a[i]),
                "cmp_lt_4 [{bk:?} lane {i}]: a={:e} b={:e}",
                a[i],
                b[i]
            );
            prop_assert!(
                le.lane(i) == simd::cmp_le_cols(a[i], b[i], b[i], a[i]),
                "cmp_le_4 [{bk:?} lane {i}]: a={:e} b={:e}",
                a[i],
                b[i]
            );
            prop_assert!(
                eq.lane(i) == simd::cmp_eq_cols(a[i], b[i], b[i], a[i]),
                "cmp_eq_4 [{bk:?} lane {i}]: a={:e} b={:e}",
                a[i],
                b[i]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3000))]

    /// Random full-range lanes (the `any::<f64>()` generator mixes NaNs,
    /// infinities, random bit patterns — hence subnormals — and wide-range
    /// normals), all backends.
    #[test]
    fn packed_kernels_bit_identical_random(
        a0 in any::<f64>(), a1 in any::<f64>(), a2 in any::<f64>(), a3 in any::<f64>(),
        b0 in any::<f64>(), b1 in any::<f64>(), b2 in any::<f64>(), b3 in any::<f64>(),
    ) {
        check_all_kernels([a0, a1, a2, a3], [b0, b1, b2, b3])?;
    }

    /// Same property with all lanes sharing one operand pair, so every
    /// special pair from the generator is exercised in every lane
    /// position (the movemask/patch logic is position-sensitive).
    #[test]
    fn packed_kernels_bit_identical_broadcast(a in any::<f64>(), b in any::<f64>()) {
        check_all_kernels([a; 4], [b; 4])?;
        // And with the pair in a single lane amid benign neighbours.
        for i in 0..4 {
            let mut av = [1.0; 4];
            let mut bv = [3.0; 4];
            av[i] = a;
            bv[i] = b;
            check_all_kernels(av, bv)?;
        }
    }
}

/// 2^n as an exact f64 (|n| <= 1023).
fn pow2(n: i64) -> f64 {
    f64::from_bits(((1023 + n) as u64) << 52)
}

/// The documented `two_prod_dekker` exactness range (matches the guards
/// the packed SSE2 kernels apply before trusting the Dekker residual).
fn dekker_guard_ok(a: f64, b: f64) -> bool {
    let p = a * b;
    a.abs() >= pow2(-480)
        && a.abs() <= pow2(996)
        && b.abs() >= pow2(-480)
        && b.abs() <= pow2(996)
        && p.abs() <= pow2(1021)
        && p.abs() >= 2.5e-291 // residual quantum stays representable (> 2^-966)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4000))]

    /// Satellite: FMA `two_prod` fast path vs. the Dekker-split path.
    /// Inside the guard range the two must agree bit for bit (both
    /// components); the packed SSE2 kernels rely on exactly this.
    #[test]
    fn fma_and_dekker_two_prod_agree_in_guard_range(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(dekker_guard_ok(a, b));
        let (pf, ef) = r::two_prod(a, b);
        let (pd, ed) = r::two_prod_dekker(a, b);
        prop_assert_eq!(pf.to_bits(), pd.to_bits(), "product {a:e} * {b:e}");
        prop_assert_eq!(
            ef.to_bits(), ed.to_bits(),
            "residual for {a:e} * {b:e}: fma {ef:e} vs dekker {ed:e}"
        );
    }
}

/// Deterministic boundary operands for the FMA/Dekker comparison: the
/// guard-range edges and classic hard cases.
#[test]
fn fma_and_dekker_two_prod_agree_on_boundaries() {
    let vals = [
        pow2(-480), // smallest guarded operand magnitude
        -pow2(-480),
        pow2(996),          // largest guarded operand magnitude
        pow2(-240),         // products right at 2^-480 * 2^996 scale
        1.0 + f64::EPSILON, // full-significand neighbours of one
        1.0 - f64::EPSILON / 2.0,
        0.1,
        1.0 / 3.0,
        6.02214076e23,
        1.0 + 2f64.powi(-26), // split boundary: 27 significant bits
        134_217_729.0,        // the Veltkamp factor itself
        f64::from_bits(0x3fefffffffffffff),
        f64::from_bits(0x4340000000000001), // 2^53 + 2
    ];
    for &a in &vals {
        for &b in &vals {
            if !dekker_guard_ok(a, b) {
                continue;
            }
            let (pf, ef) = r::two_prod(a, b);
            let (pd, ed) = r::two_prod_dekker(a, b);
            assert_eq!(pf.to_bits(), pd.to_bits(), "product {a:e} * {b:e}");
            assert_eq!(ef.to_bits(), ed.to_bits(), "residual {a:e} * {b:e}");
        }
    }
}

/// Exhaustive special-value grid: every pair from a catalogue of IEEE
/// edge cases, checked through every packed kernel on every backend and
/// in every lane position (the grid is placed in each lane in turn).
#[test]
fn packed_kernels_bit_identical_special_grid() {
    let specials = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.0 / 3.0,
        f64::EPSILON,
        1e16,
        -1e16,
        1e300,
        -1e300,
        f64::MAX,
        -f64::MAX,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        f64::from_bits(1), // smallest subnormal
        -f64::from_bits(1),
        f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
        2.5e-291,                              // FMA residual guard boundary
        1e-270,                                // division dividend guard boundary
        1e-290,                                // sqrt radicand guard boundary
        -1e-290,                               // negative radicand at the guard
        pow2(-480),                            // Dekker operand guard boundary
        pow2(996),
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
    ];
    for &x in &specials {
        for &y in &specials {
            for i in 0..4 {
                let mut a = [1.0; 4];
                let mut b = [3.0; 4];
                a[i] = x;
                b[i] = y;
                if let Err(e) = check_all_kernels(a, b) {
                    panic!("special grid ({x:e}, {y:e}) lane {i}: {e:?}");
                }
            }
        }
    }
}

/// The backend ladder is well-formed on this host: detection is stable,
/// forcing clamps to the detected level, and `Portable` is always
/// available.
#[test]
fn backend_detection_and_clamp() {
    let det = simd::detected_backend();
    assert_eq!(det, simd::detected_backend());
    assert!(backends().contains(&Backend::Portable));
    #[cfg(target_arch = "x86_64")]
    assert!(det >= Backend::Sse2, "SSE2 is baseline on x86-64");
}
