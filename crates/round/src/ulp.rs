//! Ulp- and neighbour-level manipulation of binary64 values.

/// Returns the smallest binary64 value strictly greater than `x`.
///
/// Follows the IEEE-754 `nextUp` semantics:
/// * `next_up(-0.0) == next_up(0.0)` is the smallest positive subnormal,
/// * `next_up(f64::MAX)` is `+∞`,
/// * `next_up(+∞) == +∞`,
/// * `next_up(-∞) == f64::MIN` (the most negative finite value),
/// * NaN propagates.
///
/// # Example
///
/// ```
/// use igen_round::next_up;
/// assert_eq!(next_up(1.0), 1.0 + f64::EPSILON);
/// assert_eq!(next_up(f64::MAX), f64::INFINITY);
/// ```
#[inline]
pub fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1); // smallest positive subnormal
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// Returns the largest binary64 value strictly less than `x`.
///
/// Mirror image of [`next_up`]; see there for the boundary semantics.
///
/// # Example
///
/// ```
/// use igen_round::next_down;
/// assert_eq!(next_down(f64::MIN_POSITIVE), next_down(f64::MIN_POSITIVE));
/// assert_eq!(next_down(f64::INFINITY), f64::MAX);
/// ```
#[inline]
pub fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// The unit in the last place of `x`: the gap between the two finite
/// binary64 values adjacent to `x`.
///
/// For finite `x` this is `next_up(|x|) - |x|` except at exact powers of two
/// and at `f64::MAX`, where the *smaller* of the two neighbouring gaps is
/// returned, matching the usual Goldberg definition used by the paper when
/// enclosing decimal constants. `ulp(0.0)` is the subnormal quantum
/// 2^-1074. For `±∞` and NaN, NaN is returned.
#[inline]
pub fn ulp(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax == 0.0 {
        return f64::from_bits(1);
    }
    let down = ax - next_down(ax);
    if down > 0.0 && down.is_finite() {
        down
    } else {
        next_up(ax) - ax
    }
}

/// The unbiased binary exponent of `x`, i.e. `e` such that
/// `2^e <= |x| < 2^(e+1)` for normal values.
///
/// Subnormals report their effective exponent (below -1022); `exponent(0.0)`
/// returns `i32::MIN` as a sentinel.
///
/// # Example
///
/// ```
/// use igen_round::exponent;
/// assert_eq!(exponent(1.0), 0);
/// assert_eq!(exponent(0.75), -1);
/// assert_eq!(exponent(4096.0), 12);
/// ```
#[inline]
pub fn exponent(x: f64) -> i32 {
    let ax = x.abs();
    if ax == 0.0 {
        return i32::MIN;
    }
    if !ax.is_finite() {
        return i32::MAX;
    }
    let bits = ax.to_bits();
    let raw = (bits >> 52) as i32;
    if raw == 0 {
        // Subnormal: effective exponent derived from the leading bit of the
        // 52-bit significand field.
        let lead = 63 - (bits.leading_zeros() as i32);
        -1074 + lead
    } else {
        raw - 1023
    }
}

/// Number of binary64 values strictly between `a` and `b` plus one, i.e. the
/// distance in "ulp steps" from `a` to `b` (`a <= b` expected).
///
/// This is the quantity the paper uses to *measure accuracy*: the loss of
/// accuracy of an interval is `log2` of the number of double values it
/// contains. Both endpoints must be finite; the count saturates at
/// `u64::MAX`.
///
/// # Panics
///
/// Panics if either bound is NaN or if `a > b`.
///
/// # Example
///
/// ```
/// use igen_round::ulps_between;
/// assert_eq!(ulps_between(1.0, 1.0), 0);
/// assert_eq!(ulps_between(1.0, 1.0 + f64::EPSILON), 1);
/// assert_eq!(ulps_between(-0.0, 0.0), 0);
/// ```
pub fn ulps_between(a: f64, b: f64) -> u64 {
    assert!(!a.is_nan() && !b.is_nan(), "ulps_between: NaN bound");
    assert!(a <= b, "ulps_between: a > b");
    // Map to a monotone signed-integer encoding of the float order
    // (negative floats map to negated magnitudes, ±0.0 both map to 0).
    fn okey(x: f64) -> i64 {
        let bits = x.to_bits();
        if bits >> 63 == 0 {
            bits as i64
        } else {
            -((bits & 0x7fff_ffff_ffff_ffff) as i64)
        }
    }
    let (ka, kb) = (okey(a) as i128, okey(b) as i128);
    u64::try_from(kb - ka).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_up_basics() {
        assert_eq!(next_up(0.0), f64::from_bits(1));
        assert_eq!(next_up(-0.0), f64::from_bits(1));
        assert_eq!(next_up(f64::MAX), f64::INFINITY);
        assert_eq!(next_up(f64::NEG_INFINITY), f64::MIN);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert!(next_up(f64::NAN).is_nan());
        assert_eq!(next_up(1.0), 1.0 + f64::EPSILON);
        assert_eq!(next_up(-f64::from_bits(1)), -0.0);
        assert!(next_up(-f64::from_bits(1)).is_sign_negative());
    }

    #[test]
    fn next_down_basics() {
        assert_eq!(next_down(0.0), -f64::from_bits(1));
        assert_eq!(next_down(f64::MIN), f64::NEG_INFINITY);
        assert_eq!(next_down(f64::INFINITY), f64::MAX);
        assert_eq!(next_down(1.0), 1.0 - f64::EPSILON / 2.0);
        assert!(next_down(f64::NAN).is_nan());
    }

    #[test]
    fn next_up_down_inverse() {
        for &x in &[1.0, -1.0, 0.5, 1e300, -1e-300, std::f64::consts::PI, f64::MIN_POSITIVE] {
            assert_eq!(next_down(next_up(x)), x, "x = {x}");
            assert_eq!(next_up(next_down(x)), x, "x = {x}");
        }
    }

    #[test]
    fn ulp_powers_of_two_take_smaller_gap() {
        // At 1.0 the gap below is eps/2, the gap above is eps.
        assert_eq!(ulp(1.0), f64::EPSILON / 2.0);
        assert_eq!(ulp(1.5), f64::EPSILON);
        assert_eq!(ulp(0.0), f64::from_bits(1));
        assert_eq!(ulp(-2.0), ulp(2.0));
        assert!(ulp(f64::INFINITY).is_nan());
    }

    #[test]
    fn exponent_basics() {
        assert_eq!(exponent(1.0), 0);
        assert_eq!(exponent(2.0), 1);
        assert_eq!(exponent(-3.0), 1);
        assert_eq!(exponent(0.5), -1);
        assert_eq!(exponent(f64::MIN_POSITIVE), -1022);
        assert_eq!(exponent(f64::from_bits(1)), -1074);
        assert_eq!(exponent(0.0), i32::MIN);
    }

    #[test]
    fn ulps_between_spans_zero() {
        assert_eq!(ulps_between(-f64::from_bits(1), f64::from_bits(1)), 2);
        assert_eq!(ulps_between(1.0, 2.0), 1u64 << 52);
    }
}
