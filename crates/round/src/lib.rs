//! Exact software directed rounding for IEEE-754 binary64.
//!
//! The IGen paper (CGO 2021) relies on the processor's upward rounding mode
//! (MXCSR on x86) to implement sound interval arithmetic. Changing the
//! floating-point environment is not possible in safe Rust (LLVM assumes the
//! default environment), so this crate computes *exactly* the same results in
//! software: for each basic operation it first computes the round-to-nearest
//! result and then uses an error-free transformation (EFT) to determine the
//! sign of the rounding error, stepping one ulp in the required direction
//! when necessary.
//!
//! For all finite, non-underflowing cases the results are **bit-identical**
//! to hardware directed rounding ([`add_ru`] returns `RU(a + b)` exactly,
//! etc.). In the deep-subnormal range, where the classical EFTs lose
//! exactness, the implementation falls back to a conservative one-quantum
//! widening (2^-1074 in absolute terms), which preserves soundness and is
//! negligible for accuracy.
//!
//! The identities `RD(x) = -RU(-x)` and `RD(a op b) = -RU((-a) op' (-b))`
//! are used throughout, exactly as described in Section II of the paper, so
//! only the upward-rounding kernels are implemented in full.
//!
//! # Example
//!
//! ```
//! use igen_round::{add_ru, add_rd};
//!
//! let lo = add_rd(0.1, 0.2);
//! let hi = add_ru(0.1, 0.2);
//! assert!(lo <= 0.1 + 0.2 && 0.1 + 0.2 <= hi);
//! assert!(lo < hi); // 0.1 + 0.2 is inexact, so the enclosure is nonempty
//! ```

// `unsafe` is denied crate-wide except in the explicit-SIMD module, whose
// packed kernels require `core::arch::x86_64` intrinsics. Every other
// module (and every dependent crate) remains free of unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod eft;
mod ops;
#[cfg_attr(target_arch = "x86_64", allow(unsafe_code))]
pub mod simd;
mod ulp;

pub use eft::{fast_two_sum, split, two_prod, two_prod_dekker, two_sum};
pub use ops::{
    add_rd, add_ru, div_rd, div_ru, div_ru_both, fma_rd, fma_ru, mul_rd, mul_ru, mul_ru_both,
    sqrt_rd, sqrt_ru, sub_rd, sub_ru,
};
pub use ulp::{exponent, next_down, next_up, ulp, ulps_between};

/// A rounding direction for the generic kernels in [`Rounded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Round toward negative infinity (RD).
    Down,
    /// Round to nearest, ties to even (RN) — the IEEE default.
    Nearest,
    /// Round toward positive infinity (RU).
    Up,
}

/// Basic binary64 operations under a statically chosen rounding direction.
///
/// The double-double algorithms of the paper (Fig. 6) are written once,
/// generically over this trait, and instantiated at [`Rn`], [`Ru`] and
/// [`Rd`]; per Lemma 1 of the paper the `Ru` instantiation yields upper
/// bounds and the `Rd` instantiation lower bounds of the exact result.
pub trait Rounded: Copy + core::fmt::Debug + Default {
    /// The direction implemented by this instance.
    const DIRECTION: Direction;
    /// `round(a + b)` in this direction.
    fn add(a: f64, b: f64) -> f64;
    /// `round(a - b)` in this direction.
    fn sub(a: f64, b: f64) -> f64;
    /// `round(a * b)` in this direction.
    fn mul(a: f64, b: f64) -> f64;
    /// `round(a / b)` in this direction.
    fn div(a: f64, b: f64) -> f64;
    /// `round(sqrt(a))` in this direction.
    fn sqrt(a: f64) -> f64;
    /// `round(a * b + c)` in this direction (single rounding).
    fn fma(a: f64, b: f64, c: f64) -> f64;
}

/// Round-to-nearest instantiation of [`Rounded`] (plain hardware arithmetic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rn;

/// Round-upward instantiation of [`Rounded`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ru;

/// Round-downward instantiation of [`Rounded`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rd;

impl Rounded for Rn {
    const DIRECTION: Direction = Direction::Nearest;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    fn sub(a: f64, b: f64) -> f64 {
        a - b
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    fn div(a: f64, b: f64) -> f64 {
        a / b
    }
    #[inline(always)]
    fn sqrt(a: f64) -> f64 {
        a.sqrt()
    }
    #[inline(always)]
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        a.mul_add(b, c)
    }
}

impl Rounded for Ru {
    const DIRECTION: Direction = Direction::Up;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        add_ru(a, b)
    }
    #[inline(always)]
    fn sub(a: f64, b: f64) -> f64 {
        sub_ru(a, b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        mul_ru(a, b)
    }
    #[inline(always)]
    fn div(a: f64, b: f64) -> f64 {
        div_ru(a, b)
    }
    #[inline(always)]
    fn sqrt(a: f64) -> f64 {
        sqrt_ru(a)
    }
    #[inline(always)]
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        fma_ru(a, b, c)
    }
}

impl Rounded for Rd {
    const DIRECTION: Direction = Direction::Down;
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        add_rd(a, b)
    }
    #[inline(always)]
    fn sub(a: f64, b: f64) -> f64 {
        sub_rd(a, b)
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        mul_rd(a, b)
    }
    #[inline(always)]
    fn div(a: f64, b: f64) -> f64 {
        div_rd(a, b)
    }
    #[inline(always)]
    fn sqrt(a: f64) -> f64 {
        sqrt_rd(a)
    }
    #[inline(always)]
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        fma_rd(a, b, c)
    }
}
