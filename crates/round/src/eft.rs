//! Error-free transformations (EFTs) on binary64.
//!
//! These are the classical building blocks used both for software directed
//! rounding (this crate) and for double-double arithmetic (`igen-dd`), and
//! they appear verbatim in Fig. 6 of the paper.

/// Knuth's branch-free TwoSum: returns `(s, e)` with `s = RN(a + b)` and
/// `s + e = a + b` *exactly*, provided no intermediate overflow occurs.
///
/// # Example
///
/// ```
/// use igen_round::two_sum;
/// let (s, e) = two_sum(1.0, 1e-30);
/// assert_eq!(s, 1.0);
/// assert_eq!(e, 1e-30);
/// ```
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let a1 = s - b;
    let b1 = s - a1;
    let da = a - a1;
    let db = b - b1;
    (s, da + db)
}

/// Dekker's FastTwoSum: like [`two_sum`] but requires `|a| >= |b|` (or
/// `a == 0`); three operations instead of six.
///
/// The exactness guarantee only holds under the magnitude precondition; the
/// double-double algorithms of the paper establish it before calling.
#[inline(always)]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let z = s - a;
    (s, b - z)
}

/// Veltkamp splitting of `x` into high and low parts `(h, l)` with
/// `x = h + l` exactly and both halves having at most 26 significant bits.
///
/// Used by multiplication EFTs on targets without FMA; retained here because
/// the generated C runtime of IGen uses the same splitting.
#[inline(always)]
pub fn split(x: f64) -> (f64, f64) {
    const FACTOR: f64 = 134_217_729.0; // 2^27 + 1
    let c = FACTOR * x;
    let h = c - (c - x);
    (h, x - h)
}

/// TwoProd via Dekker's splitting: returns `(p, e)` with `p = RN(a * b)`
/// and `p + e = a * b` *exactly*, without using an FMA.
///
/// Exactness holds when no intermediate over- or underflows: sufficient
/// conditions are `|a|, |b| <= 2^996` with `|a * b| <= 2^1021` (so the
/// Veltkamp splits and the partial products do not overflow) and
/// `|a * b| >= 2^-967` with `|a|, |b| >= 2^-480` (so the partial
/// products keep all their bits, even when subnormal). This is
/// the classical pre-FMA path of the paper's generated runtime; the
/// packed SSE2 kernels in [`crate::simd`] use it lane-wise under exactly
/// these guards, and the test suite pins it bit-equal to [`two_prod`] on
/// the shared validity range so the FMA fast path can never silently
/// diverge.
///
/// # Example
///
/// ```
/// use igen_round::{two_prod, two_prod_dekker};
/// assert_eq!(two_prod_dekker(0.1, 0.1), two_prod(0.1, 0.1));
/// ```
#[inline(always)]
pub fn two_prod_dekker(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

/// TwoProd via FMA: returns `(p, e)` with `p = RN(a * b)` and
/// `p + e = a * b` *exactly*, provided `a * b` neither overflows nor falls
/// into the subnormal range.
///
/// # Example
///
/// ```
/// use igen_round::two_prod;
/// let (p, e) = two_prod(1.0 + f64::EPSILON, 1.0 + f64::EPSILON);
/// assert_eq!(p + e, (1.0 + f64::EPSILON) * (1.0 + f64::EPSILON) - e + e);
/// // The residual recovers the bits the rounded product lost:
/// assert_eq!(e, f64::EPSILON * f64::EPSILON);
/// ```
#[inline(always)]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let cases =
            [(0.1, 0.2), (1e16, 1.0), (-1e16, 1.0), (1.0, -1.0), (3.5, 4.25), (1e-300, 1e300)];
        for (a, b) in cases {
            let (s, e) = two_sum(a, b);
            assert_eq!(s, a + b);
            // The RN error is at most half an ulp of s.
            let gap = (crate::next_up(s) - s).max(s - crate::next_down(s));
            assert!(e.abs() <= gap / 2.0, "({a}, {b}): e = {e}");
        }
    }

    #[test]
    fn two_sum_exactness_checked_with_integers() {
        // Values with short significands allow exact integer verification.
        let (s, e) = two_sum(1e16, 1.0);
        // 1e16 + 1 is not representable (gap is 2.0); RN gives 1e16.
        assert_eq!(s, 1e16);
        assert_eq!(e, 1.0);
        let (s, e) = two_sum(1e16, 3.0);
        // Nearest even of 1e16+3 is 1e16+4.
        assert_eq!(s, 1e16 + 4.0);
        assert_eq!(e, -1.0);
    }

    #[test]
    fn fast_two_sum_matches_two_sum_when_ordered() {
        let cases: [(f64, f64); 4] = [(1e10, 0.1), (5.0, -3.0), (-8.0, 1e-5), (1.0, 0.0)];
        for (a, b) in cases {
            assert!(a.abs() >= b.abs());
            assert_eq!(fast_two_sum(a, b), two_sum(a, b), "({a}, {b})");
        }
    }

    #[test]
    fn split_halves_recompose() {
        for &x in &[std::f64::consts::PI, 1.0 / 3.0, 12345.6789, -1e-7] {
            let (h, l) = split(x);
            assert_eq!(h + l, x);
            // Both halves fit in 26 bits plus sign: squaring must be exact.
            assert_eq!(h * h - h * h, 0.0);
            assert!(l.abs() <= h.abs() * (1.0 / 67_108_864.0) + f64::MIN_POSITIVE);
        }
    }

    #[test]
    fn two_prod_residual_sign() {
        // 0.1 * 0.1: the rounded product is above the exact one.
        let (_p, e) = two_prod(0.1, 0.1);
        assert!(e != 0.0);
        // (1+eps)^2 = 1 + 2eps + eps^2; RN keeps 1 + 2eps, residual eps^2 > 0.
        let (p, e) = two_prod(1.0 + f64::EPSILON, 1.0 + f64::EPSILON);
        assert_eq!(p, 1.0 + 2.0 * f64::EPSILON);
        assert!(e > 0.0);
    }
}
