//! Explicit SIMD packed directed-rounding kernels with runtime dispatch.
//!
//! The paper's central performance result (Section IV-A "Vectorized
//! intervals", Table II, Fig. 8) comes from *packed* interval arithmetic:
//! one SSE/AVX register holds 1–4 intervals and every directed-rounding
//! operation is a handful of packed instructions. The scalar kernels in
//! [`crate::ops`] implement directed rounding in software via error-free
//! transformations; this module provides the same functions over four
//! binary64 lanes at a time, written with `core::arch::x86_64`
//! intrinsics, selected once at runtime by CPU-feature detection.
//!
//! # Backends
//!
//! * [`Backend::Avx2Fma`] — one 256-bit register per column, FMA-based
//!   `two_prod` residuals (`vfmsub`), AVX2 integer ops for the
//!   branch-free one-ulp bump.
//! * [`Backend::Sse2`] — two 128-bit registers per column (SSE2 is the
//!   x86-64 baseline, always available there). Product residuals use
//!   Dekker's FMA-free `two_prod` ([`crate::two_prod_dekker`]) with
//!   magnitude guards that keep the splitting exact.
//! * [`Backend::Portable`] — straight lane loops over the scalar
//!   kernels, the only backend on non-x86-64 targets and the reference
//!   the property tests pin the packed paths against.
//!
//! # Bit-identity contract
//!
//! Every packed function here returns, in each lane, **exactly the bits**
//! the corresponding scalar kernel returns for that lane's operands —
//! for *all* inputs, including NaN, infinities, subnormals and
//! signed zeros. The mechanism (see DESIGN.md §10):
//!
//! 1. the packed hot path performs the *same IEEE operation sequence* as
//!    the scalar hot path, lane-wise (packed and scalar IEEE ops are both
//!    correctly rounded, hence bit-equal);
//! 2. a packed validity mask re-checks the scalar hot path's guard
//!    conditions (plus, on the Dekker path, the split-exactness bounds);
//! 3. lanes whose guard fails — rare by construction — are recomputed by
//!    calling the scalar kernel itself, cold paths included.
//!
//! Soundness therefore never rests on new reasoning: the packed kernels
//! are the scalar kernels, evaluated four lanes at a time.

use core::sync::atomic::{AtomicU8, Ordering};

use crate::ops::{DIV_EXACT_MIN_A, FMA_RESIDUAL_EXACT_MIN, SQRT_EXACT_MIN_A};
use igen_telemetry::Counter;

/// Telemetry counters for the packed kernels: per-op packed-call and
/// patched-lane counts plus backend-dispatch outcomes. Zero-sized no-ops
/// unless the `telemetry` feature is enabled; the guard-failure *rate*
/// per op is `lanes_patched / (4 * packed_calls)`.
pub(crate) mod tel {
    use igen_telemetry::Counter;

    pub static DISPATCH_AVX2: Counter = Counter::new("simd.dispatch.avx2_fma");
    pub static DISPATCH_SSE2: Counter = Counter::new("simd.dispatch.sse2");
    pub static DISPATCH_PORTABLE: Counter = Counter::new("simd.dispatch.portable");
    pub static ADD_PACKED: Counter = Counter::new("simd.add.packed_calls");
    pub static ADD_PATCHED: Counter = Counter::new("simd.add.lanes_patched");
    pub static MUL_PACKED: Counter = Counter::new("simd.mul.packed_calls");
    pub static MUL_PATCHED: Counter = Counter::new("simd.mul.lanes_patched");
    pub static DIV_PACKED: Counter = Counter::new("simd.div.packed_calls");
    pub static DIV_PATCHED: Counter = Counter::new("simd.div.lanes_patched");
    pub static MAX_PACKED: Counter = Counter::new("simd.max.packed_calls");
    pub static SQRT_PACKED: Counter = Counter::new("simd.sqrt.packed_calls");
    pub static SQRT_PATCHED: Counter = Counter::new("simd.sqrt.lanes_patched");
    pub static SQR_PACKED: Counter = Counter::new("simd.sqr.packed_calls");
    pub static SQR_PATCHED: Counter = Counter::new("simd.sqr.lanes_patched");
    pub static ABS_PACKED: Counter = Counter::new("simd.abs.packed_calls");
    pub static CMP_PACKED: Counter = Counter::new("simd.cmp.packed_calls");
    pub static CMP_PATCHED: Counter = Counter::new("simd.cmp.lanes_patched");
}

/// Counts one 4-wide call: which op was invoked and which backend
/// served it (compiles to nothing without the `telemetry` feature).
#[inline(always)]
fn note_dispatch(bk: Backend, op_calls: &'static Counter) {
    op_calls.inc();
    match bk {
        Backend::Avx2Fma => tel::DISPATCH_AVX2.inc(),
        Backend::Sse2 => tel::DISPATCH_SSE2.inc(),
        Backend::Portable => tel::DISPATCH_PORTABLE.inc(),
    }
}

/// A packed-kernel implementation level, ordered from narrowest to
/// widest. `Backend::Sse2 < Backend::Avx2Fma`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Scalar lane loops (always available; the only level off x86-64).
    Portable,
    /// Packed 128-bit kernels, FMA-free (x86-64 baseline).
    Sse2,
    /// Packed 256-bit kernels using AVX2 integer ops and FMA residuals.
    Avx2Fma,
}

impl Backend {
    fn from_tag(tag: u8) -> Option<Backend> {
        match tag {
            1 => Some(Backend::Portable),
            2 => Some(Backend::Sse2),
            3 => Some(Backend::Avx2Fma),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Backend::Portable => 1,
            Backend::Sse2 => 2,
            Backend::Avx2Fma => 3,
        }
    }
}

impl core::fmt::Display for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Backend::Portable => "portable",
            Backend::Sse2 => "sse2",
            Backend::Avx2Fma => "avx2+fma",
        })
    }
}

/// Cached CPU detection result (0 = not yet probed).
static DETECTED: AtomicU8 = AtomicU8::new(0);

/// Forced override for benchmarks/tests (0 = none).
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The widest backend this CPU supports, probed once and cached.
pub fn detected_backend() -> Backend {
    if let Some(bk) = Backend::from_tag(DETECTED.load(Ordering::Relaxed)) {
        return bk;
    }
    let bk = probe();
    DETECTED.store(bk.tag(), Ordering::Relaxed);
    bk
}

#[cfg(target_arch = "x86_64")]
fn probe() -> Backend {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        Backend::Avx2Fma
    } else {
        Backend::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn probe() -> Backend {
    Backend::Portable
}

/// Forces the dispatch level used by [`active_backend`] (benchmark and
/// test hook; `None` restores CPU detection). Requests wider than the
/// detected level are clamped — forcing can only *downgrade*, so it can
/// never select instructions the host lacks. Returns the level actually
/// in effect.
pub fn force_backend(bk: Option<Backend>) -> Backend {
    match bk {
        Some(b) => {
            let eff = b.min(detected_backend());
            FORCED.store(eff.tag(), Ordering::Relaxed);
            eff
        }
        None => {
            FORCED.store(0, Ordering::Relaxed);
            detected_backend()
        }
    }
}

/// The backend the packed interval operations currently dispatch to: the
/// forced level if one is set, the detected level otherwise.
#[inline]
pub fn active_backend() -> Backend {
    match Backend::from_tag(FORCED.load(Ordering::Relaxed)) {
        Some(bk) => bk,
        None => detected_backend(),
    }
}

/// Clamp a requested level to what the CPU supports, so a stale or
/// wrong caller-provided level can never reach unsupported instructions.
#[inline]
fn clamp(bk: Backend) -> Backend {
    bk.min(detected_backend())
}

/// NaN-propagating maximum: NaN if either operand is NaN, otherwise the
/// larger operand (`a` on ties, including `max_nan(+0.0, -0.0) == +0.0`).
/// This is the endpoint-selection primitive of the branch-free interval
/// multiplication and division; [`max_nan_4`] is its packed form.
#[inline(always)]
pub fn max_nan(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a >= b {
        a
    } else {
        b
    }
}

/// Packed upward-rounded addition: lane-wise [`crate::add_ru`],
/// bit-identical in every lane.
pub fn add_ru_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::ADD_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::add_ru_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::add_ru_4_sse2(a, b) },
        _ => core::array::from_fn(|i| crate::add_ru(a[i], b[i])),
    }
}

/// Packed paired upward products: lane-wise [`crate::mul_ru_both`]
/// (returns `(RU(a*b), RU(-(a*b)))` per lane), bit-identical in every
/// lane.
pub fn mul_ru_both_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::MUL_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::mul_ru_both_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::mul_ru_both_4_sse2(a, b) },
        _ => {
            let mut hi = [0.0; 4];
            let mut lo = [0.0; 4];
            for i in 0..4 {
                (hi[i], lo[i]) = crate::mul_ru_both(a[i], b[i]);
            }
            (hi, lo)
        }
    }
}

/// Packed paired upward quotients: lane-wise [`crate::div_ru_both`]
/// (returns `(RU(a/b), RU(-(a/b)))` per lane), bit-identical in every
/// lane.
pub fn div_ru_both_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::DIV_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::div_ru_both_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::div_ru_both_4_sse2(a, b) },
        _ => {
            let mut hi = [0.0; 4];
            let mut lo = [0.0; 4];
            for i in 0..4 {
                (hi[i], lo[i]) = crate::div_ru_both(a[i], b[i]);
            }
            (hi, lo)
        }
    }
}

/// Packed NaN-propagating maximum: lane-wise [`max_nan`], bit-identical
/// in every lane (ties select the first operand; NaN results are the
/// canonical quiet NaN).
pub fn max_nan_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::MAX_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::max_nan_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::max_nan_4_sse2(a, b) },
        _ => core::array::from_fn(|i| max_nan(a[i], b[i])),
    }
}

/// Packed upward-rounded square root: lane-wise [`crate::sqrt_ru`],
/// bit-identical in every lane (negative radicands yield NaN lanes, as in
/// the scalar kernel). Shares the `simd.sqrt.*` telemetry counters with
/// [`sqrt_rd_4`].
pub fn sqrt_ru_4(bk: Backend, a: &[f64; 4]) -> [f64; 4] {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::SQRT_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::sqrt_ru_4_avx2(a) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::sqrt_ru_4_sse2(a) },
        _ => core::array::from_fn(|i| crate::sqrt_ru(a[i])),
    }
}

/// Packed downward-rounded square root: lane-wise [`crate::sqrt_rd`],
/// bit-identical in every lane.
pub fn sqrt_rd_4(bk: Backend, a: &[f64; 4]) -> [f64; 4] {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::SQRT_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::sqrt_rd_4_avx2(a) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::sqrt_rd_4_sse2(a) },
        _ => core::array::from_fn(|i| crate::sqrt_rd(a[i])),
    }
}

/// Packed paired upward squares: lane-wise `mul_ru_both(a, a)`, i.e.
/// `(RU(a²), RU(-(a²)))` per lane, bit-identical in every lane. The
/// interval square builds both directed endpoint squares from this:
/// `RU(m²)` directly and `RD(n²) = -RU(-(n²))` through the pair (the
/// scalar identities `mul_ru(m,m) == mul_ru_both(m,m).0` and
/// `-mul_rd(n,n) == mul_ru_both(n,n).1` hold bit-for-bit on all inputs —
/// the hot paths run the same IEEE sequence and the slow paths delegate
/// to the same scalar kernels).
pub fn sqr_ru_both_4(bk: Backend, a: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::SQR_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::sqr_ru_both_4_avx2(a) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::sqr_ru_both_4_sse2(a) },
        _ => {
            let mut hi = [0.0; 4];
            let mut lo = [0.0; 4];
            for i in 0..4 {
                (hi[i], lo[i]) = crate::mul_ru_both(a[i], a[i]);
            }
            (hi, lo)
        }
    }
}

/// Scalar reference for [`abs_4`]: the interval absolute value on one raw
/// `(neg_lo, hi)` endpoint pair (the `(-lo, hi)` column layout the packed
/// kernels operate on). NaN endpoints yield `(NaN, NaN)`; a nonnegative
/// interval is returned unchanged, a nonpositive one endpoint-swapped
/// (exact negation in this layout), and a zero-straddling one maps to
/// `[ -(-0.0), max(|lo|, |hi|) ]`.
pub fn abs_cols(neg_lo: f64, hi: f64) -> (f64, f64) {
    if neg_lo.is_nan() || hi.is_nan() {
        (f64::NAN, f64::NAN)
    } else if -neg_lo >= 0.0 {
        (neg_lo, hi)
    } else if hi <= 0.0 {
        (hi, neg_lo)
    } else {
        (-0.0, max_nan(neg_lo, hi))
    }
}

/// Packed interval absolute value on raw endpoint columns: lane-wise
/// [`abs_cols`], bit-identical in every lane. Pure selects on exact
/// comparisons — no rounding, hence no guard and no patch path.
pub fn abs_4(bk: Backend, neg_lo: &[f64; 4], hi: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::ABS_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::abs_4_avx2(neg_lo, hi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::abs_4_sse2(neg_lo, hi) },
        _ => {
            let mut out_n = [0.0; 4];
            let mut out_h = [0.0; 4];
            for i in 0..4 {
                (out_n[i], out_h[i]) = abs_cols(neg_lo[i], hi[i]);
            }
            (out_n, out_h)
        }
    }
}

/// Tri-state result of a packed 4-lane interval comparison: per lane
/// *certainly true*, *certainly false*, or *unknown* (overlapping
/// intervals, or a NaN endpoint). This is the branch-free lane-mask form
/// of the interval layer's three-valued booleans; the two masks are kept
/// disjoint with *true* taking priority, matching the scalar `if`/`else
/// if` decision order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TriMask4 {
    true_mask: u8,
    false_mask: u8,
}

impl TriMask4 {
    /// Builds the mask pair from 4-bit lane masks; `true` wins where both
    /// bits are set (the scalar references test the *true* condition
    /// first).
    pub(crate) fn new(true_mask: u8, false_mask: u8) -> TriMask4 {
        let t = true_mask & 0xf;
        TriMask4 { true_mask: t, false_mask: false_mask & 0xf & !t }
    }

    /// The lane verdict: `Some(true)`, `Some(false)`, or `None` (unknown).
    #[must_use]
    pub fn lane(self, i: usize) -> Option<bool> {
        assert!(i < 4, "TriMask4 lane index {i} out of range (4 lanes)");
        if self.true_mask >> i & 1 == 1 {
            Some(true)
        } else if self.false_mask >> i & 1 == 1 {
            Some(false)
        } else {
            None
        }
    }

    /// True if lane `i` is certainly true.
    #[must_use]
    pub fn is_true(self, i: usize) -> bool {
        self.lane(i) == Some(true)
    }

    /// True if lane `i` is certainly false.
    #[must_use]
    pub fn is_false(self, i: usize) -> bool {
        self.lane(i) == Some(false)
    }

    /// True if lane `i` is undecided.
    #[must_use]
    pub fn is_unknown(self, i: usize) -> bool {
        self.lane(i).is_none()
    }
}

/// Scalar reference for [`cmp_lt_4`]: `a < b` on raw `(neg_lo, hi)`
/// endpoint pairs. `Some(true)` when every point of `a` is below every
/// point of `b`, `Some(false)` when none is, `None` otherwise (overlap or
/// NaN). Mirrors `F64I::cmp_lt` with `True/False/Unknown` mapped to
/// `Some(true)/Some(false)/None`.
pub fn cmp_lt_cols(a_neg_lo: f64, a_hi: f64, b_neg_lo: f64, b_hi: f64) -> Option<bool> {
    if a_neg_lo.is_nan() || a_hi.is_nan() || b_neg_lo.is_nan() || b_hi.is_nan() {
        None
    } else if a_hi < -b_neg_lo {
        Some(true)
    } else if -a_neg_lo >= b_hi {
        Some(false)
    } else {
        None
    }
}

/// Scalar reference for [`cmp_le_4`]: `a <= b` (see [`cmp_lt_cols`]).
pub fn cmp_le_cols(a_neg_lo: f64, a_hi: f64, b_neg_lo: f64, b_hi: f64) -> Option<bool> {
    if a_neg_lo.is_nan() || a_hi.is_nan() || b_neg_lo.is_nan() || b_hi.is_nan() {
        None
    } else if a_hi <= -b_neg_lo {
        Some(true)
    } else if -a_neg_lo > b_hi {
        Some(false)
    } else {
        None
    }
}

/// Scalar reference for [`cmp_eq_4`]: point equality — `Some(true)` only
/// when both intervals are the same single point, `Some(false)` when they
/// are disjoint (see [`cmp_lt_cols`]).
pub fn cmp_eq_cols(a_neg_lo: f64, a_hi: f64, b_neg_lo: f64, b_hi: f64) -> Option<bool> {
    if a_neg_lo.is_nan() || a_hi.is_nan() || b_neg_lo.is_nan() || b_hi.is_nan() {
        None
    } else if -a_neg_lo == a_hi && -b_neg_lo == b_hi && a_hi == b_hi {
        Some(true)
    } else if a_hi < -b_neg_lo || b_hi < -a_neg_lo {
        Some(false)
    } else {
        None
    }
}

/// Packed interval `a < b` on raw endpoint columns: lane-wise
/// [`cmp_lt_cols`], identical verdict in every lane. The comparisons are
/// exact (no rounding), so there is no recompute patch; lanes holding a
/// NaN endpoint are resolved by the packed NaN screen and counted under
/// `simd.cmp.lanes_patched` (the special-lane analogue of the arithmetic
/// kernels' guard failures).
pub fn cmp_lt_4(
    bk: Backend,
    a_neg_lo: &[f64; 4],
    a_hi: &[f64; 4],
    b_neg_lo: &[f64; 4],
    b_hi: &[f64; 4],
) -> TriMask4 {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::CMP_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::cmp_lt_4_avx2(a_neg_lo, a_hi, b_neg_lo, b_hi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::cmp_lt_4_sse2(a_neg_lo, a_hi, b_neg_lo, b_hi) },
        _ => cmp_cols_portable(a_neg_lo, a_hi, b_neg_lo, b_hi, cmp_lt_cols),
    }
}

/// Packed interval `a <= b` on raw endpoint columns: lane-wise
/// [`cmp_le_cols`] (see [`cmp_lt_4`]).
pub fn cmp_le_4(
    bk: Backend,
    a_neg_lo: &[f64; 4],
    a_hi: &[f64; 4],
    b_neg_lo: &[f64; 4],
    b_hi: &[f64; 4],
) -> TriMask4 {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::CMP_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::cmp_le_4_avx2(a_neg_lo, a_hi, b_neg_lo, b_hi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::cmp_le_4_sse2(a_neg_lo, a_hi, b_neg_lo, b_hi) },
        _ => cmp_cols_portable(a_neg_lo, a_hi, b_neg_lo, b_hi, cmp_le_cols),
    }
}

/// Packed interval point equality on raw endpoint columns: lane-wise
/// [`cmp_eq_cols`] (see [`cmp_lt_4`]).
pub fn cmp_eq_4(
    bk: Backend,
    a_neg_lo: &[f64; 4],
    a_hi: &[f64; 4],
    b_neg_lo: &[f64; 4],
    b_hi: &[f64; 4],
) -> TriMask4 {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::CMP_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::cmp_eq_4_avx2(a_neg_lo, a_hi, b_neg_lo, b_hi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::cmp_eq_4_sse2(a_neg_lo, a_hi, b_neg_lo, b_hi) },
        _ => cmp_cols_portable(a_neg_lo, a_hi, b_neg_lo, b_hi, cmp_eq_cols),
    }
}

/// Shared portable lane loop for the packed comparisons.
fn cmp_cols_portable(
    a_neg_lo: &[f64; 4],
    a_hi: &[f64; 4],
    b_neg_lo: &[f64; 4],
    b_hi: &[f64; 4],
    op: fn(f64, f64, f64, f64) -> Option<bool>,
) -> TriMask4 {
    let mut t = 0u8;
    let mut f = 0u8;
    for i in 0..4 {
        match op(a_neg_lo[i], a_hi[i], b_neg_lo[i], b_hi[i]) {
            Some(true) => t |= 1 << i,
            Some(false) => f |= 1 << i,
            None => {}
        }
    }
    TriMask4::new(t, f)
}

/// Largest operand magnitude for which Veltkamp splitting cannot
/// overflow: `2^996` (the split multiplies by `2^27 + 1`).
pub(crate) const DEKKER_OP_MAX: f64 = f64::from_bits((1023 + 996) << 52);

/// Smallest operand magnitude the Dekker product path accepts: `2^-480`.
/// With both operands at least this large the partial products carry at
/// most 53 significant bits above `2^-1064`, so they are exact even when
/// subnormal and the FMA-free residual equals the FMA residual bit for
/// bit.
pub(crate) const DEKKER_OP_MIN: f64 = f64::from_bits((1023 - 480) << 52);

/// Largest rounded-product magnitude the Dekker path accepts: `2^1021`.
/// The high partial product `ah*bh` can exceed `|a*b|` by a couple of
/// ulps of the split halves; capping `|RN(a*b)|` three binades below
/// overflow guarantees every partial product stays finite.
pub(crate) const DEKKER_PROD_MAX: f64 = f64::from_bits((1023 + 1021) << 52);

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The packed x86-64 kernel bodies. Everything here is `unsafe fn`:
    //! the AVX2+FMA functions require those CPU features (enforced by the
    //! dispatchers via `clamp`), the SSE2 ones only the x86-64 baseline.

    use super::{
        TriMask4, DEKKER_OP_MAX, DEKKER_OP_MIN, DEKKER_PROD_MAX, DIV_EXACT_MIN_A,
        FMA_RESIDUAL_EXACT_MIN, SQRT_EXACT_MIN_A,
    };
    use core::arch::x86_64::*;

    /// All-lanes-valid movemask value for one 256-bit column.
    const ALL4: i32 = 0b1111;

    /// Counts the lanes whose validity bit is clear in `ok` (the lanes
    /// about to be recomputed by a scalar patch).
    #[inline]
    fn note_patched(c: &'static igen_telemetry::Counter, ok: i32) {
        c.add((!ok & ALL4).count_ones() as u64);
    }

    // ------------------------------------------------------------------
    // AVX2 + FMA: one 256-bit register per column.
    // ------------------------------------------------------------------

    /// `|x|` (clears the sign bit).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn abs_256(x: __m256d) -> __m256d {
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
    }

    /// `-x` (flips the sign bit; exact, matches scalar `-x`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn neg_256(x: __m256d) -> __m256d {
        _mm256_xor_pd(_mm256_set1_pd(-0.0), x)
    }

    /// Lane mask: `x` is finite (strictly below +∞ in magnitude; NaN
    /// lanes report false, exactly like `f64::is_finite`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn is_finite_256(x: __m256d) -> __m256d {
        _mm256_cmp_pd::<_CMP_LT_OQ>(abs_256(x), _mm256_set1_pd(f64::INFINITY))
    }

    /// Lane mask: `lo <= |x| <= hi` (false for NaN `x`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn abs_in_range_256(x: __m256d, lo: f64, hi: f64) -> __m256d {
        let ax = abs_256(x);
        _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GE_OQ>(ax, _mm256_set1_pd(lo)),
            _mm256_cmp_pd::<_CMP_LE_OQ>(ax, _mm256_set1_pd(hi)),
        )
    }

    /// Packed branch-free directed bump: lane-wise `ops::bump_up` — steps
    /// each lane one value toward +∞ where the `up` mask is set, via the
    /// same monotone signed-integer encoding of the float order.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn bump_up_256(s: __m256d, up: __m256d) -> __m256d {
        let zero = _mm256_setzero_si256();
        let bits = _mm256_castpd_si256(s);
        // mask = (bits >> 63 logical-after-arith) — 0x7fff.. for negatives.
        let neg = _mm256_cmpgt_epi64(zero, bits);
        let mask = _mm256_srli_epi64::<1>(neg);
        // key = (bits ^ mask) + (up as i64)
        let inc = _mm256_srli_epi64::<63>(_mm256_castpd_si256(up));
        let key = _mm256_add_epi64(_mm256_xor_si256(bits, mask), inc);
        let neg2 = _mm256_cmpgt_epi64(zero, key);
        let mask2 = _mm256_srli_epi64::<1>(neg2);
        _mm256_castsi256_pd(_mm256_xor_si256(key, mask2))
    }

    /// Packed `add_ru`: TwoSum + directed bump on all four lanes; lanes
    /// whose sum or residual leaves the finite range are recomputed with
    /// the scalar kernel (which handles overflow and invalid operations).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn add_ru_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        // Knuth TwoSum, lane-wise — the same six IEEE additions as the
        // scalar `two_sum`.
        let s = _mm256_add_pd(va, vb);
        let a1 = _mm256_sub_pd(s, vb);
        let b1 = _mm256_sub_pd(s, a1);
        let da = _mm256_sub_pd(va, a1);
        let db = _mm256_sub_pd(vb, b1);
        let e = _mm256_add_pd(da, db);
        let up = _mm256_cmp_pd::<_CMP_GT_OQ>(e, _mm256_setzero_pd());
        let bumped = bump_up_256(s, up);
        let ok = _mm256_movemask_pd(_mm256_and_pd(is_finite_256(s), is_finite_256(e)));
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), bumped);
        if ok != ALL4 {
            note_patched(&super::tel::ADD_PATCHED, ok);
            patch(ok, &mut out, |i| crate::add_ru(a[i], b[i]));
        }
        out
    }

    /// The `mul_ru_both` hot path on one 256-bit column pair: product +
    /// FMA residual + two directed bumps, plus the residual-exactness
    /// validity mask. Shared by the multiply and square kernels (which
    /// differ only in which scalar kernel patches the failing lanes).
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn mul_ru_both_4_avx2_core(va: __m256d, vb: __m256d) -> (__m256d, __m256d, i32) {
        let p = _mm256_mul_pd(va, vb);
        let e = _mm256_fmsub_pd(va, vb, p); // a*b - p, exactly (FMA)
        let zero = _mm256_setzero_pd();
        let hi = bump_up_256(p, _mm256_cmp_pd::<_CMP_GT_OQ>(e, zero));
        let lo = bump_up_256(neg_256(p), _mm256_cmp_pd::<_CMP_LT_OQ>(e, zero));
        let ok = _mm256_movemask_pd(_mm256_and_pd(
            abs_in_range_256(p, FMA_RESIDUAL_EXACT_MIN, f64::MAX),
            is_finite_256(e),
        ));
        (hi, lo, ok)
    }

    /// Packed `mul_ru_both`: product + FMA residual + two directed bumps;
    /// lanes outside the residual-exactness range fall back to the scalar
    /// kernel.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn mul_ru_both_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        let (hi, lo, ok) = mul_ru_both_4_avx2_core(va, vb);
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm256_storeu_pd(out_hi.as_mut_ptr(), hi);
        _mm256_storeu_pd(out_lo.as_mut_ptr(), lo);
        if ok != ALL4 {
            note_patched(&super::tel::MUL_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::mul_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    /// Packed `mul_ru_both(a, a)`: the multiply hot path with both
    /// operands the same column; failing lanes patch with the scalar
    /// square (`mul_ru_both(a, a)`) under the square's own counter.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sqr_ru_both_4_avx2(a: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let va = _mm256_loadu_pd(a.as_ptr());
        let (hi, lo, ok) = mul_ru_both_4_avx2_core(va, va);
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm256_storeu_pd(out_hi.as_mut_ptr(), hi);
        _mm256_storeu_pd(out_lo.as_mut_ptr(), lo);
        if ok != ALL4 {
            note_patched(&super::tel::SQR_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::mul_ru_both(a[i], a[i]));
        }
        (out_hi, out_lo)
    }

    /// The packed sqrt hot path on one 256-bit column: `s = sqrt(a)`, the
    /// FMA residual `r = RN(s*s - a)` whose sign directs the bump, and
    /// the scalar guard mask (`a >= SQRT_EXACT_MIN_A && s <= MAX`; the
    /// `>=` compare is ordered, so NaN and negative radicands fail it and
    /// take the scalar patch, which reproduces their NaN handling).
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn sqrt_sr_4_avx2(va: __m256d) -> (__m256d, __m256d, i32) {
        let s = _mm256_sqrt_pd(va);
        let r = _mm256_fmsub_pd(s, s, va);
        let ok = _mm256_movemask_pd(_mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GE_OQ>(va, _mm256_set1_pd(SQRT_EXACT_MIN_A)),
            _mm256_cmp_pd::<_CMP_LE_OQ>(s, _mm256_set1_pd(f64::MAX)),
        ));
        (s, r, ok)
    }

    /// Packed `sqrt_ru`: correctly-rounded packed sqrt + FMA residual +
    /// directed bump, exactly the scalar hot path lane-wise.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sqrt_ru_4_avx2(a: &[f64; 4]) -> [f64; 4] {
        let va = _mm256_loadu_pd(a.as_ptr());
        let (s, r, ok) = sqrt_sr_4_avx2(va);
        let up = _mm256_cmp_pd::<_CMP_LT_OQ>(r, _mm256_setzero_pd());
        let bumped = bump_up_256(s, up);
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), bumped);
        if ok != ALL4 {
            note_patched(&super::tel::SQRT_PATCHED, ok);
            patch(ok, &mut out, |i| crate::sqrt_ru(a[i]));
        }
        out
    }

    /// Packed `sqrt_rd`: the downward bump mirrors through negation, as
    /// in the scalar kernel (`-bump_up(-s, r > 0)`).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sqrt_rd_4_avx2(a: &[f64; 4]) -> [f64; 4] {
        let va = _mm256_loadu_pd(a.as_ptr());
        let (s, r, ok) = sqrt_sr_4_avx2(va);
        let up = _mm256_cmp_pd::<_CMP_GT_OQ>(r, _mm256_setzero_pd());
        let bumped = neg_256(bump_up_256(neg_256(s), up));
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), bumped);
        if ok != ALL4 {
            note_patched(&super::tel::SQRT_PATCHED, ok);
            patch(ok, &mut out, |i| crate::sqrt_rd(a[i]));
        }
        out
    }

    /// Packed interval absolute value on raw `(neg_lo, hi)` columns:
    /// nested selects replicating `abs_cols`' decision order (NaN screen,
    /// then nonnegative, then nonpositive, then the straddle case). All
    /// comparisons exact — no patch path.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn abs_4_avx2(neg_lo: &[f64; 4], hi: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let vn = _mm256_loadu_pd(neg_lo.as_ptr());
        let vh = _mm256_loadu_pd(hi.as_ptr());
        let zero = _mm256_setzero_pd();
        let nonneg = _mm256_cmp_pd::<_CMP_GE_OQ>(neg_256(vn), zero); // lo >= 0
        let nonpos = _mm256_cmp_pd::<_CMP_LE_OQ>(vh, zero); // hi <= 0
        let unord = _mm256_cmp_pd::<_CMP_UNORD_Q>(vn, vh);
        // Straddle lanes: max_nan(neg_lo, hi) with the a-on-ties select
        // (operands there are never NaN — the screen overrides).
        let mx = _mm256_blendv_pd(vh, vn, _mm256_cmp_pd::<_CMP_GE_OQ>(vn, vh));
        let nanv = _mm256_set1_pd(f64::NAN);
        let out_n =
            _mm256_blendv_pd(_mm256_blendv_pd(_mm256_set1_pd(-0.0), vh, nonpos), vn, nonneg);
        let out_h = _mm256_blendv_pd(_mm256_blendv_pd(mx, vn, nonpos), vh, nonneg);
        let mut res_n = [0.0; 4];
        let mut res_h = [0.0; 4];
        _mm256_storeu_pd(res_n.as_mut_ptr(), _mm256_blendv_pd(out_n, nanv, unord));
        _mm256_storeu_pd(res_h.as_mut_ptr(), _mm256_blendv_pd(out_h, nanv, unord));
        (res_n, res_h)
    }

    /// NaN screen for the packed comparisons: lanes where either interval
    /// carries a NaN endpoint (counted as patched special lanes).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn cmp_nan_256(anl: __m256d, ah: __m256d, bnl: __m256d, bh: __m256d) -> __m256d {
        _mm256_or_pd(_mm256_cmp_pd::<_CMP_UNORD_Q>(anl, ah), _mm256_cmp_pd::<_CMP_UNORD_Q>(bnl, bh))
    }

    /// Folds packed true/false/nan lane masks into a [`TriMask4`], noting
    /// the NaN-screened lanes under the comparison patch counter.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn trimask(t: __m256d, f: __m256d, nan: __m256d) -> TriMask4 {
        let nm = _mm256_movemask_pd(nan);
        if nm != 0 {
            note_patched(&super::tel::CMP_PATCHED, !nm);
        }
        TriMask4::new(
            (_mm256_movemask_pd(_mm256_andnot_pd(nan, t)) & ALL4) as u8,
            (_mm256_movemask_pd(_mm256_andnot_pd(nan, f)) & ALL4) as u8,
        )
    }

    /// Packed `a < b` on raw endpoint columns (lane-wise `cmp_lt_cols`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cmp_lt_4_avx2(
        anl: &[f64; 4],
        ah: &[f64; 4],
        bnl: &[f64; 4],
        bh: &[f64; 4],
    ) -> TriMask4 {
        let vanl = _mm256_loadu_pd(anl.as_ptr());
        let vah = _mm256_loadu_pd(ah.as_ptr());
        let vbnl = _mm256_loadu_pd(bnl.as_ptr());
        let vbh = _mm256_loadu_pd(bh.as_ptr());
        let t = _mm256_cmp_pd::<_CMP_LT_OQ>(vah, neg_256(vbnl)); // a.hi < b.lo
        let f = _mm256_cmp_pd::<_CMP_GE_OQ>(neg_256(vanl), vbh); // a.lo >= b.hi
        trimask(t, f, cmp_nan_256(vanl, vah, vbnl, vbh))
    }

    /// Packed `a <= b` on raw endpoint columns (lane-wise `cmp_le_cols`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cmp_le_4_avx2(
        anl: &[f64; 4],
        ah: &[f64; 4],
        bnl: &[f64; 4],
        bh: &[f64; 4],
    ) -> TriMask4 {
        let vanl = _mm256_loadu_pd(anl.as_ptr());
        let vah = _mm256_loadu_pd(ah.as_ptr());
        let vbnl = _mm256_loadu_pd(bnl.as_ptr());
        let vbh = _mm256_loadu_pd(bh.as_ptr());
        let t = _mm256_cmp_pd::<_CMP_LE_OQ>(vah, neg_256(vbnl)); // a.hi <= b.lo
        let f = _mm256_cmp_pd::<_CMP_GT_OQ>(neg_256(vanl), vbh); // a.lo > b.hi
        trimask(t, f, cmp_nan_256(vanl, vah, vbnl, vbh))
    }

    /// Packed point equality on raw endpoint columns (lane-wise
    /// `cmp_eq_cols`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cmp_eq_4_avx2(
        anl: &[f64; 4],
        ah: &[f64; 4],
        bnl: &[f64; 4],
        bh: &[f64; 4],
    ) -> TriMask4 {
        let vanl = _mm256_loadu_pd(anl.as_ptr());
        let vah = _mm256_loadu_pd(ah.as_ptr());
        let vbnl = _mm256_loadu_pd(bnl.as_ptr());
        let vbh = _mm256_loadu_pd(bh.as_ptr());
        let point_a = _mm256_cmp_pd::<_CMP_EQ_OQ>(neg_256(vanl), vah);
        let point_b = _mm256_cmp_pd::<_CMP_EQ_OQ>(neg_256(vbnl), vbh);
        let t =
            _mm256_and_pd(_mm256_and_pd(point_a, point_b), _mm256_cmp_pd::<_CMP_EQ_OQ>(vah, vbh));
        let f = _mm256_or_pd(
            _mm256_cmp_pd::<_CMP_LT_OQ>(vah, neg_256(vbnl)),
            _mm256_cmp_pd::<_CMP_LT_OQ>(vbh, neg_256(vanl)),
        );
        trimask(t, f, cmp_nan_256(vanl, vah, vbnl, vbh))
    }

    /// Packed `div_ru_both`: quotient + `two_prod` residual check + two
    /// directed bumps; lanes outside the exactness range fall back to the
    /// scalar kernel.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn div_ru_both_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        let q = _mm256_div_pd(va, vb);
        // two_prod(q, b) via FMA.
        let h = _mm256_mul_pd(q, vb);
        let l = _mm256_fmsub_pd(q, vb, h);
        let r = _mm256_sub_pd(_mm256_sub_pd(va, h), l);
        let zero = _mm256_setzero_pd();
        let b_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(vb, zero);
        let b_neg = _mm256_cmp_pd::<_CMP_LT_OQ>(vb, zero);
        let r_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(r, zero);
        let r_neg = _mm256_cmp_pd::<_CMP_LT_OQ>(r, zero);
        let up = _mm256_or_pd(_mm256_and_pd(b_pos, r_pos), _mm256_and_pd(b_neg, r_neg));
        let dn = _mm256_or_pd(_mm256_and_pd(b_pos, r_neg), _mm256_and_pd(b_neg, r_pos));
        let hi = bump_up_256(q, up);
        let lo = bump_up_256(neg_256(q), dn);
        let ok1 = _mm256_and_pd(
            abs_in_range_256(q, f64::MIN_POSITIVE, f64::MAX),
            abs_in_range_256(va, DIV_EXACT_MIN_A, f64::MAX),
        );
        let ok2 = abs_in_range_256(h, f64::MIN_POSITIVE, f64::MAX);
        let ok = _mm256_movemask_pd(_mm256_and_pd(ok1, ok2));
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm256_storeu_pd(out_hi.as_mut_ptr(), hi);
        _mm256_storeu_pd(out_lo.as_mut_ptr(), lo);
        if ok != ALL4 {
            note_patched(&super::tel::DIV_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::div_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    /// Packed `max_nan`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn max_nan_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        // a >= b selects a (ties keep a, matching the scalar kernel);
        // unordered lanes are overwritten with the canonical quiet NaN.
        let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(va, vb);
        let sel = _mm256_blendv_pd(vb, va, ge);
        let unord = _mm256_cmp_pd::<_CMP_UNORD_Q>(va, vb);
        let res = _mm256_blendv_pd(sel, _mm256_set1_pd(f64::NAN), unord);
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), res);
        out
    }

    // ------------------------------------------------------------------
    // SSE2 baseline: two 128-bit registers per column, no FMA — product
    // residuals use Dekker's splitting under magnitude guards.
    // ------------------------------------------------------------------

    #[inline]
    unsafe fn abs_128(x: __m128d) -> __m128d {
        _mm_andnot_pd(_mm_set1_pd(-0.0), x)
    }

    #[inline]
    unsafe fn neg_128(x: __m128d) -> __m128d {
        _mm_xor_pd(_mm_set1_pd(-0.0), x)
    }

    #[inline]
    unsafe fn is_finite_128(x: __m128d) -> __m128d {
        _mm_cmplt_pd(abs_128(x), _mm_set1_pd(f64::INFINITY))
    }

    #[inline]
    unsafe fn abs_in_range_128(x: __m128d, lo: f64, hi: f64) -> __m128d {
        let ax = abs_128(x);
        _mm_and_pd(_mm_cmpge_pd(ax, _mm_set1_pd(lo)), _mm_cmple_pd(ax, _mm_set1_pd(hi)))
    }

    /// Mask-select `if mask { x } else { y }` without SSE4.1 `blendv`.
    #[inline]
    unsafe fn select_128(mask: __m128d, x: __m128d, y: __m128d) -> __m128d {
        _mm_or_pd(_mm_and_pd(mask, x), _mm_andnot_pd(mask, y))
    }

    /// Per-64-bit-lane arithmetic sign mask (all-ones where the lane is
    /// negative as a signed integer) — SSE2 has no 64-bit compare, so the
    /// 32-bit arithmetic shift of the high dword is broadcast down.
    #[inline]
    unsafe fn sign_mask_epi64_128(v: __m128i) -> __m128i {
        _mm_shuffle_epi32::<0b11_11_01_01>(_mm_srai_epi32::<31>(v))
    }

    /// Packed branch-free directed bump, 2 lanes (see [`bump_up_256`]).
    #[inline]
    unsafe fn bump_up_128(s: __m128d, up: __m128d) -> __m128d {
        let bits = _mm_castpd_si128(s);
        let mask = _mm_srli_epi64::<1>(sign_mask_epi64_128(bits));
        let inc = _mm_srli_epi64::<63>(_mm_castpd_si128(up));
        let key = _mm_add_epi64(_mm_xor_si128(bits, mask), inc);
        let mask2 = _mm_srli_epi64::<1>(sign_mask_epi64_128(key));
        _mm_castsi128_pd(_mm_xor_si128(key, mask2))
    }

    /// One `add_ru` half-column: TwoSum + bump on 2 lanes, returning the
    /// 2-bit validity mask alongside the packed result.
    #[inline]
    unsafe fn add_ru_2_sse2(va: __m128d, vb: __m128d) -> (__m128d, i32) {
        let s = _mm_add_pd(va, vb);
        let a1 = _mm_sub_pd(s, vb);
        let b1 = _mm_sub_pd(s, a1);
        let da = _mm_sub_pd(va, a1);
        let db = _mm_sub_pd(vb, b1);
        let e = _mm_add_pd(da, db);
        let up = _mm_cmpgt_pd(e, _mm_setzero_pd());
        let ok = _mm_movemask_pd(_mm_and_pd(is_finite_128(s), is_finite_128(e)));
        (bump_up_128(s, up), ok)
    }

    pub(super) unsafe fn add_ru_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let (lo, ok_lo) = add_ru_2_sse2(_mm_loadu_pd(a.as_ptr()), _mm_loadu_pd(b.as_ptr()));
        let (hi, ok_hi) =
            add_ru_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)), _mm_loadu_pd(b.as_ptr().add(2)));
        let mut out = [0.0; 4];
        _mm_storeu_pd(out.as_mut_ptr(), lo);
        _mm_storeu_pd(out.as_mut_ptr().add(2), hi);
        let ok = ok_lo | (ok_hi << 2);
        if ok != ALL4 {
            note_patched(&super::tel::ADD_PATCHED, ok);
            patch(ok, &mut out, |i| crate::add_ru(a[i], b[i]));
        }
        out
    }

    /// Dekker `two_prod` on 2 lanes: returns `(p, e)` with the validity
    /// mask of the splitting bounds (`2^-480 <= |a|, |b| <= 2^996` and
    /// `|p| <= 2^1021`) under which `e` is exactly the FMA residual.
    #[inline]
    unsafe fn two_prod_dekker_2(va: __m128d, vb: __m128d) -> (__m128d, __m128d, __m128d) {
        const FACTOR: f64 = 134_217_729.0; // 2^27 + 1
        let f = _mm_set1_pd(FACTOR);
        let p = _mm_mul_pd(va, vb);
        let ca = _mm_mul_pd(f, va);
        let ah = _mm_sub_pd(ca, _mm_sub_pd(ca, va));
        let al = _mm_sub_pd(va, ah);
        let cb = _mm_mul_pd(f, vb);
        let bh = _mm_sub_pd(cb, _mm_sub_pd(cb, vb));
        let bl = _mm_sub_pd(vb, bh);
        // e = ((ah*bh - p) + ah*bl + al*bh) + al*bl, as in two_prod_dekker.
        let e = _mm_add_pd(
            _mm_add_pd(
                _mm_add_pd(_mm_sub_pd(_mm_mul_pd(ah, bh), p), _mm_mul_pd(ah, bl)),
                _mm_mul_pd(al, bh),
            ),
            _mm_mul_pd(al, bl),
        );
        let split_ok = _mm_and_pd(
            _mm_and_pd(
                abs_in_range_128(va, DEKKER_OP_MIN, DEKKER_OP_MAX),
                abs_in_range_128(vb, DEKKER_OP_MIN, DEKKER_OP_MAX),
            ),
            _mm_cmple_pd(abs_128(p), _mm_set1_pd(DEKKER_PROD_MAX)),
        );
        (p, e, split_ok)
    }

    #[inline]
    unsafe fn mul_ru_both_2_sse2(va: __m128d, vb: __m128d) -> (__m128d, __m128d, i32) {
        let (p, e, split_ok) = two_prod_dekker_2(va, vb);
        let zero = _mm_setzero_pd();
        let hi = bump_up_128(p, _mm_cmpgt_pd(e, zero));
        let lo = bump_up_128(neg_128(p), _mm_cmplt_pd(e, zero));
        let ok = _mm_movemask_pd(_mm_and_pd(
            _mm_and_pd(abs_in_range_128(p, FMA_RESIDUAL_EXACT_MIN, f64::MAX), is_finite_128(e)),
            split_ok,
        ));
        (hi, lo, ok)
    }

    pub(super) unsafe fn mul_ru_both_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let (hi0, lo0, ok0) =
            mul_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr()), _mm_loadu_pd(b.as_ptr()));
        let (hi1, lo1, ok1) =
            mul_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)), _mm_loadu_pd(b.as_ptr().add(2)));
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm_storeu_pd(out_hi.as_mut_ptr(), hi0);
        _mm_storeu_pd(out_hi.as_mut_ptr().add(2), hi1);
        _mm_storeu_pd(out_lo.as_mut_ptr(), lo0);
        _mm_storeu_pd(out_lo.as_mut_ptr().add(2), lo1);
        let ok = ok0 | (ok1 << 2);
        if ok != ALL4 {
            note_patched(&super::tel::MUL_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::mul_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    #[inline]
    unsafe fn div_ru_both_2_sse2(va: __m128d, vb: __m128d) -> (__m128d, __m128d, i32) {
        let q = _mm_div_pd(va, vb);
        let (h, l, split_ok) = two_prod_dekker_2(q, vb);
        let r = _mm_sub_pd(_mm_sub_pd(va, h), l);
        let zero = _mm_setzero_pd();
        let b_pos = _mm_cmpgt_pd(vb, zero);
        let b_neg = _mm_cmplt_pd(vb, zero);
        let r_pos = _mm_cmpgt_pd(r, zero);
        let r_neg = _mm_cmplt_pd(r, zero);
        let up = _mm_or_pd(_mm_and_pd(b_pos, r_pos), _mm_and_pd(b_neg, r_neg));
        let dn = _mm_or_pd(_mm_and_pd(b_pos, r_neg), _mm_and_pd(b_neg, r_pos));
        let hi = bump_up_128(q, up);
        let lo = bump_up_128(neg_128(q), dn);
        let ok1 = _mm_and_pd(
            abs_in_range_128(q, f64::MIN_POSITIVE, f64::MAX),
            abs_in_range_128(va, DIV_EXACT_MIN_A, f64::MAX),
        );
        let ok2 = abs_in_range_128(h, f64::MIN_POSITIVE, f64::MAX);
        let ok = _mm_movemask_pd(_mm_and_pd(_mm_and_pd(ok1, ok2), split_ok));
        (hi, lo, ok)
    }

    pub(super) unsafe fn div_ru_both_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let (hi0, lo0, ok0) =
            div_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr()), _mm_loadu_pd(b.as_ptr()));
        let (hi1, lo1, ok1) =
            div_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)), _mm_loadu_pd(b.as_ptr().add(2)));
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm_storeu_pd(out_hi.as_mut_ptr(), hi0);
        _mm_storeu_pd(out_hi.as_mut_ptr().add(2), hi1);
        _mm_storeu_pd(out_lo.as_mut_ptr(), lo0);
        _mm_storeu_pd(out_lo.as_mut_ptr().add(2), lo1);
        let ok = ok0 | (ok1 << 2);
        if ok != ALL4 {
            note_patched(&super::tel::DIV_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::div_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    pub(super) unsafe fn max_nan_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for half in 0..2 {
            let va = _mm_loadu_pd(a.as_ptr().add(2 * half));
            let vb = _mm_loadu_pd(b.as_ptr().add(2 * half));
            let sel = select_128(_mm_cmpge_pd(va, vb), va, vb);
            let res = select_128(_mm_cmpunord_pd(va, vb), _mm_set1_pd(f64::NAN), sel);
            _mm_storeu_pd(out.as_mut_ptr().add(2 * half), res);
        }
        out
    }

    /// Packed `mul_ru_both(a, a)` on the SSE2 path: the multiply halves
    /// with both operands the same column, patched under the square's
    /// counter.
    pub(super) unsafe fn sqr_ru_both_4_sse2(a: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let va0 = _mm_loadu_pd(a.as_ptr());
        let va1 = _mm_loadu_pd(a.as_ptr().add(2));
        let (hi0, lo0, ok0) = mul_ru_both_2_sse2(va0, va0);
        let (hi1, lo1, ok1) = mul_ru_both_2_sse2(va1, va1);
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm_storeu_pd(out_hi.as_mut_ptr(), hi0);
        _mm_storeu_pd(out_hi.as_mut_ptr().add(2), hi1);
        _mm_storeu_pd(out_lo.as_mut_ptr(), lo0);
        _mm_storeu_pd(out_lo.as_mut_ptr().add(2), lo1);
        let ok = ok0 | (ok1 << 2);
        if ok != ALL4 {
            note_patched(&super::tel::SQR_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::mul_ru_both(a[i], a[i]));
        }
        (out_hi, out_lo)
    }

    /// The FMA-free sqrt hot path on 2 lanes: `s = sqrt(a)` (packed sqrt
    /// is correctly rounded, bit-equal to scalar `a.sqrt()`), then the
    /// residual sign via Dekker: with `(p, e) = two_prod(s, s)`,
    /// `d = (p - a) + e`. Under the guard `a >= SQRT_EXACT_MIN_A` the
    /// rounded square `p` lies within `[a/2, 2a]` (s is within a few ulps
    /// of √a), so `p - a` is exact by Sterbenz and `(p - a) + e` rounds
    /// the exact value `s² - a` once — the very value the scalar FMA
    /// residual `RN(s·s - a)` rounds. The two residuals are therefore
    /// bit-equal, and every bump decision matches the scalar kernel's.
    /// The validity mask additionally requires the Dekker split bounds on
    /// `(s, s, p)` (lanes with `a` within a binade of `f64::MAX`, or with
    /// `s` below the `2^-480` split floor near `a ≈ 1e-290`, patch).
    #[inline]
    unsafe fn sqrt_sd_2_sse2(va: __m128d) -> (__m128d, __m128d, i32) {
        let s = _mm_sqrt_pd(va);
        let (p, e, split_ok) = two_prod_dekker_2(s, s);
        let d = _mm_add_pd(_mm_sub_pd(p, va), e);
        let ok = _mm_movemask_pd(_mm_and_pd(
            _mm_and_pd(
                _mm_cmpge_pd(va, _mm_set1_pd(SQRT_EXACT_MIN_A)),
                _mm_cmple_pd(s, _mm_set1_pd(f64::MAX)),
            ),
            split_ok,
        ));
        (s, d, ok)
    }

    pub(super) unsafe fn sqrt_ru_4_sse2(a: &[f64; 4]) -> [f64; 4] {
        let zero = _mm_setzero_pd();
        let (s0, d0, ok0) = sqrt_sd_2_sse2(_mm_loadu_pd(a.as_ptr()));
        let (s1, d1, ok1) = sqrt_sd_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)));
        let mut out = [0.0; 4];
        _mm_storeu_pd(out.as_mut_ptr(), bump_up_128(s0, _mm_cmplt_pd(d0, zero)));
        _mm_storeu_pd(out.as_mut_ptr().add(2), bump_up_128(s1, _mm_cmplt_pd(d1, zero)));
        let ok = ok0 | (ok1 << 2);
        if ok != ALL4 {
            note_patched(&super::tel::SQRT_PATCHED, ok);
            patch(ok, &mut out, |i| crate::sqrt_ru(a[i]));
        }
        out
    }

    pub(super) unsafe fn sqrt_rd_4_sse2(a: &[f64; 4]) -> [f64; 4] {
        let zero = _mm_setzero_pd();
        let (s0, d0, ok0) = sqrt_sd_2_sse2(_mm_loadu_pd(a.as_ptr()));
        let (s1, d1, ok1) = sqrt_sd_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)));
        let mut out = [0.0; 4];
        let b0 = neg_128(bump_up_128(neg_128(s0), _mm_cmpgt_pd(d0, zero)));
        let b1 = neg_128(bump_up_128(neg_128(s1), _mm_cmpgt_pd(d1, zero)));
        _mm_storeu_pd(out.as_mut_ptr(), b0);
        _mm_storeu_pd(out.as_mut_ptr().add(2), b1);
        let ok = ok0 | (ok1 << 2);
        if ok != ALL4 {
            note_patched(&super::tel::SQRT_PATCHED, ok);
            patch(ok, &mut out, |i| crate::sqrt_rd(a[i]));
        }
        out
    }

    /// Packed interval absolute value, SSE2 halves (see [`abs_4_avx2`]).
    pub(super) unsafe fn abs_4_sse2(neg_lo: &[f64; 4], hi: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let mut res_n = [0.0; 4];
        let mut res_h = [0.0; 4];
        let zero = _mm_setzero_pd();
        let nanv = _mm_set1_pd(f64::NAN);
        for half in 0..2 {
            let vn = _mm_loadu_pd(neg_lo.as_ptr().add(2 * half));
            let vh = _mm_loadu_pd(hi.as_ptr().add(2 * half));
            let nonneg = _mm_cmpge_pd(neg_128(vn), zero);
            let nonpos = _mm_cmple_pd(vh, zero);
            let unord = _mm_cmpunord_pd(vn, vh);
            let mx = select_128(_mm_cmpge_pd(vn, vh), vn, vh);
            let out_n = select_128(nonneg, vn, select_128(nonpos, vh, _mm_set1_pd(-0.0)));
            let out_h = select_128(nonneg, vh, select_128(nonpos, vn, mx));
            _mm_storeu_pd(res_n.as_mut_ptr().add(2 * half), select_128(unord, nanv, out_n));
            _mm_storeu_pd(res_h.as_mut_ptr().add(2 * half), select_128(unord, nanv, out_h));
        }
        (res_n, res_h)
    }

    /// One packed-comparison half: true/false/nan 2-lane movemasks from
    /// the compare closure applied to the loaded columns.
    type Cmp2 = unsafe fn(__m128d, __m128d, __m128d, __m128d) -> (__m128d, __m128d);

    /// Shared SSE2 comparison driver: runs `op` on both halves, screens
    /// NaN lanes, and folds the masks into a [`TriMask4`].
    #[inline]
    unsafe fn cmp_4_sse2(
        anl: &[f64; 4],
        ah: &[f64; 4],
        bnl: &[f64; 4],
        bh: &[f64; 4],
        op: Cmp2,
    ) -> TriMask4 {
        let mut t = 0i32;
        let mut f = 0i32;
        let mut nan = 0i32;
        for half in 0..2 {
            let vanl = _mm_loadu_pd(anl.as_ptr().add(2 * half));
            let vah = _mm_loadu_pd(ah.as_ptr().add(2 * half));
            let vbnl = _mm_loadu_pd(bnl.as_ptr().add(2 * half));
            let vbh = _mm_loadu_pd(bh.as_ptr().add(2 * half));
            let nm = _mm_or_pd(_mm_cmpunord_pd(vanl, vah), _mm_cmpunord_pd(vbnl, vbh));
            let (tm, fm) = op(vanl, vah, vbnl, vbh);
            t |= _mm_movemask_pd(_mm_andnot_pd(nm, tm)) << (2 * half);
            f |= _mm_movemask_pd(_mm_andnot_pd(nm, fm)) << (2 * half);
            nan |= _mm_movemask_pd(nm) << (2 * half);
        }
        if nan != 0 {
            note_patched(&super::tel::CMP_PATCHED, !nan);
        }
        TriMask4::new(t as u8, f as u8)
    }

    pub(super) unsafe fn cmp_lt_4_sse2(
        anl: &[f64; 4],
        ah: &[f64; 4],
        bnl: &[f64; 4],
        bh: &[f64; 4],
    ) -> TriMask4 {
        unsafe fn op(
            vanl: __m128d,
            vah: __m128d,
            vbnl: __m128d,
            vbh: __m128d,
        ) -> (__m128d, __m128d) {
            (_mm_cmplt_pd(vah, neg_128(vbnl)), _mm_cmpge_pd(neg_128(vanl), vbh))
        }
        cmp_4_sse2(anl, ah, bnl, bh, op)
    }

    pub(super) unsafe fn cmp_le_4_sse2(
        anl: &[f64; 4],
        ah: &[f64; 4],
        bnl: &[f64; 4],
        bh: &[f64; 4],
    ) -> TriMask4 {
        unsafe fn op(
            vanl: __m128d,
            vah: __m128d,
            vbnl: __m128d,
            vbh: __m128d,
        ) -> (__m128d, __m128d) {
            (_mm_cmple_pd(vah, neg_128(vbnl)), _mm_cmpgt_pd(neg_128(vanl), vbh))
        }
        cmp_4_sse2(anl, ah, bnl, bh, op)
    }

    pub(super) unsafe fn cmp_eq_4_sse2(
        anl: &[f64; 4],
        ah: &[f64; 4],
        bnl: &[f64; 4],
        bh: &[f64; 4],
    ) -> TriMask4 {
        unsafe fn op(
            vanl: __m128d,
            vah: __m128d,
            vbnl: __m128d,
            vbh: __m128d,
        ) -> (__m128d, __m128d) {
            let t = _mm_and_pd(
                _mm_and_pd(_mm_cmpeq_pd(neg_128(vanl), vah), _mm_cmpeq_pd(neg_128(vbnl), vbh)),
                _mm_cmpeq_pd(vah, vbh),
            );
            let f = _mm_or_pd(_mm_cmplt_pd(vah, neg_128(vbnl)), _mm_cmplt_pd(vbh, neg_128(vanl)));
            (t, f)
        }
        cmp_4_sse2(anl, ah, bnl, bh, op)
    }

    // ------------------------------------------------------------------
    // Rare-lane scalar patching.
    // ------------------------------------------------------------------

    /// Recomputes the lanes whose validity bit is clear with the scalar
    /// kernel (cold: guard failures are rare by construction).
    #[cold]
    fn patch(ok: i32, out: &mut [f64; 4], f: impl Fn(usize) -> f64) {
        for (i, lane) in out.iter_mut().enumerate() {
            if ok & (1 << i) == 0 {
                *lane = f(i);
            }
        }
    }

    /// Pair-result variant of [`patch`].
    #[cold]
    fn patch_pair(
        ok: i32,
        out_hi: &mut [f64; 4],
        out_lo: &mut [f64; 4],
        f: impl Fn(usize) -> (f64, f64),
    ) {
        for i in 0..4 {
            if ok & (1 << i) == 0 {
                (out_hi[i], out_lo[i]) = f(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<Backend> {
        let mut bks = vec![Backend::Portable, Backend::Sse2, Backend::Avx2Fma];
        bks.retain(|&bk| bk <= detected_backend());
        bks
    }

    /// A deterministic grid of awkward operands, including every special
    /// class the scalar kernels branch on.
    fn grid() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -0.1,
            1.0 / 3.0,
            f64::EPSILON,
            1e16,
            -1e16,
            1e300,
            -1e300,
            f64::MAX,
            -f64::MAX,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            f64::from_bits(1),
            -f64::from_bits(1),
            f64::from_bits(0x000f_ffff_ffff_ffff),
            2.5e-291,
            1e-290,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ]
    }

    fn assert_lane_bits(got: f64, want: f64, ctx: &str) {
        assert!(
            got.to_bits() == want.to_bits(),
            "{ctx}: got {got:e} ({:#x}), want {want:e} ({:#x})",
            got.to_bits(),
            want.to_bits()
        );
    }

    #[test]
    fn packed_ops_bit_identical_on_grid() {
        let g = grid();
        for bk in backends() {
            for c in g.chunks(4) {
                let mut a = [0.0; 4];
                a[..c.len()].copy_from_slice(c);
                for &y in &g {
                    let b = [y; 4];
                    let s = add_ru_4(bk, &a, &b);
                    let (mh, ml) = mul_ru_both_4(bk, &a, &b);
                    let (dh, dl) = div_ru_both_4(bk, &a, &b);
                    let mx = max_nan_4(bk, &a, &b);
                    let sru = sqrt_ru_4(bk, &a);
                    let srd = sqrt_rd_4(bk, &a);
                    let (qqh, qql) = sqr_ru_both_4(bk, &a);
                    let (an, ah) = abs_4(bk, &a, &b);
                    let clt = cmp_lt_4(bk, &a, &b, &b, &a);
                    let cle = cmp_le_4(bk, &a, &b, &b, &a);
                    let ceq = cmp_eq_4(bk, &a, &b, &b, &a);
                    for i in 0..4 {
                        let ctx = format!("{bk} a={} b={y}", a[i]);
                        assert_lane_bits(s[i], crate::add_ru(a[i], y), &format!("add {ctx}"));
                        let (wh, wl) = crate::mul_ru_both(a[i], y);
                        assert_lane_bits(mh[i], wh, &format!("mul hi {ctx}"));
                        assert_lane_bits(ml[i], wl, &format!("mul lo {ctx}"));
                        let (qh, ql) = crate::div_ru_both(a[i], y);
                        assert_lane_bits(dh[i], qh, &format!("div hi {ctx}"));
                        assert_lane_bits(dl[i], ql, &format!("div lo {ctx}"));
                        assert_lane_bits(mx[i], max_nan(a[i], y), &format!("max {ctx}"));
                        assert_lane_bits(sru[i], crate::sqrt_ru(a[i]), &format!("sqrt ru {ctx}"));
                        assert_lane_bits(srd[i], crate::sqrt_rd(a[i]), &format!("sqrt rd {ctx}"));
                        let (zh, zl) = crate::mul_ru_both(a[i], a[i]);
                        assert_lane_bits(qqh[i], zh, &format!("sqr hi {ctx}"));
                        assert_lane_bits(qql[i], zl, &format!("sqr lo {ctx}"));
                        let (wn, wh2) = abs_cols(a[i], y);
                        assert_lane_bits(an[i], wn, &format!("abs neg_lo {ctx}"));
                        assert_lane_bits(ah[i], wh2, &format!("abs hi {ctx}"));
                        assert_eq!(clt.lane(i), cmp_lt_cols(a[i], y, y, a[i]), "lt {ctx}");
                        assert_eq!(cle.lane(i), cmp_le_cols(a[i], y, y, a[i]), "le {ctx}");
                        assert_eq!(ceq.lane(i), cmp_eq_cols(a[i], y, y, a[i]), "eq {ctx}");
                    }
                }
            }
        }
    }

    #[test]
    fn force_backend_clamps_and_restores() {
        let det = detected_backend();
        assert_eq!(force_backend(Some(Backend::Portable)), Backend::Portable);
        assert_eq!(active_backend(), Backend::Portable);
        // Requesting the widest level yields at most the detected one.
        assert_eq!(force_backend(Some(Backend::Avx2Fma)), det);
        assert_eq!(force_backend(None), det);
        assert_eq!(active_backend(), det);
    }

    #[test]
    fn max_nan_scalar_semantics() {
        assert_eq!(max_nan(1.0, 2.0), 2.0);
        assert_eq!(max_nan(2.0, 1.0), 2.0);
        assert!(max_nan(f64::NAN, 1.0).is_nan());
        assert!(max_nan(1.0, f64::NAN).is_nan());
        // Ties keep the first operand, including signed zeros.
        assert!(max_nan(0.0, -0.0).is_sign_positive());
        assert!(max_nan(-0.0, 0.0).is_sign_negative());
    }
}
