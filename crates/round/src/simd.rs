//! Explicit SIMD packed directed-rounding kernels with runtime dispatch.
//!
//! The paper's central performance result (Section IV-A "Vectorized
//! intervals", Table II, Fig. 8) comes from *packed* interval arithmetic:
//! one SSE/AVX register holds 1–4 intervals and every directed-rounding
//! operation is a handful of packed instructions. The scalar kernels in
//! [`crate::ops`] implement directed rounding in software via error-free
//! transformations; this module provides the same functions over four
//! binary64 lanes at a time, written with `core::arch::x86_64`
//! intrinsics, selected once at runtime by CPU-feature detection.
//!
//! # Backends
//!
//! * [`Backend::Avx2Fma`] — one 256-bit register per column, FMA-based
//!   `two_prod` residuals (`vfmsub`), AVX2 integer ops for the
//!   branch-free one-ulp bump.
//! * [`Backend::Sse2`] — two 128-bit registers per column (SSE2 is the
//!   x86-64 baseline, always available there). Product residuals use
//!   Dekker's FMA-free `two_prod` ([`crate::two_prod_dekker`]) with
//!   magnitude guards that keep the splitting exact.
//! * [`Backend::Portable`] — straight lane loops over the scalar
//!   kernels, the only backend on non-x86-64 targets and the reference
//!   the property tests pin the packed paths against.
//!
//! # Bit-identity contract
//!
//! Every packed function here returns, in each lane, **exactly the bits**
//! the corresponding scalar kernel returns for that lane's operands —
//! for *all* inputs, including NaN, infinities, subnormals and
//! signed zeros. The mechanism (see DESIGN.md §10):
//!
//! 1. the packed hot path performs the *same IEEE operation sequence* as
//!    the scalar hot path, lane-wise (packed and scalar IEEE ops are both
//!    correctly rounded, hence bit-equal);
//! 2. a packed validity mask re-checks the scalar hot path's guard
//!    conditions (plus, on the Dekker path, the split-exactness bounds);
//! 3. lanes whose guard fails — rare by construction — are recomputed by
//!    calling the scalar kernel itself, cold paths included.
//!
//! Soundness therefore never rests on new reasoning: the packed kernels
//! are the scalar kernels, evaluated four lanes at a time.

use core::sync::atomic::{AtomicU8, Ordering};

use crate::ops::{DIV_EXACT_MIN_A, FMA_RESIDUAL_EXACT_MIN};
use igen_telemetry::Counter;

/// Telemetry counters for the packed kernels: per-op packed-call and
/// patched-lane counts plus backend-dispatch outcomes. Zero-sized no-ops
/// unless the `telemetry` feature is enabled; the guard-failure *rate*
/// per op is `lanes_patched / (4 * packed_calls)`.
pub(crate) mod tel {
    use igen_telemetry::Counter;

    pub static DISPATCH_AVX2: Counter = Counter::new("simd.dispatch.avx2_fma");
    pub static DISPATCH_SSE2: Counter = Counter::new("simd.dispatch.sse2");
    pub static DISPATCH_PORTABLE: Counter = Counter::new("simd.dispatch.portable");
    pub static ADD_PACKED: Counter = Counter::new("simd.add.packed_calls");
    pub static ADD_PATCHED: Counter = Counter::new("simd.add.lanes_patched");
    pub static MUL_PACKED: Counter = Counter::new("simd.mul.packed_calls");
    pub static MUL_PATCHED: Counter = Counter::new("simd.mul.lanes_patched");
    pub static DIV_PACKED: Counter = Counter::new("simd.div.packed_calls");
    pub static DIV_PATCHED: Counter = Counter::new("simd.div.lanes_patched");
    pub static MAX_PACKED: Counter = Counter::new("simd.max.packed_calls");
}

/// Counts one 4-wide call: which op was invoked and which backend
/// served it (compiles to nothing without the `telemetry` feature).
#[inline(always)]
fn note_dispatch(bk: Backend, op_calls: &'static Counter) {
    op_calls.inc();
    match bk {
        Backend::Avx2Fma => tel::DISPATCH_AVX2.inc(),
        Backend::Sse2 => tel::DISPATCH_SSE2.inc(),
        Backend::Portable => tel::DISPATCH_PORTABLE.inc(),
    }
}

/// A packed-kernel implementation level, ordered from narrowest to
/// widest. `Backend::Sse2 < Backend::Avx2Fma`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Scalar lane loops (always available; the only level off x86-64).
    Portable,
    /// Packed 128-bit kernels, FMA-free (x86-64 baseline).
    Sse2,
    /// Packed 256-bit kernels using AVX2 integer ops and FMA residuals.
    Avx2Fma,
}

impl Backend {
    fn from_tag(tag: u8) -> Option<Backend> {
        match tag {
            1 => Some(Backend::Portable),
            2 => Some(Backend::Sse2),
            3 => Some(Backend::Avx2Fma),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Backend::Portable => 1,
            Backend::Sse2 => 2,
            Backend::Avx2Fma => 3,
        }
    }
}

impl core::fmt::Display for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Backend::Portable => "portable",
            Backend::Sse2 => "sse2",
            Backend::Avx2Fma => "avx2+fma",
        })
    }
}

/// Cached CPU detection result (0 = not yet probed).
static DETECTED: AtomicU8 = AtomicU8::new(0);

/// Forced override for benchmarks/tests (0 = none).
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The widest backend this CPU supports, probed once and cached.
pub fn detected_backend() -> Backend {
    if let Some(bk) = Backend::from_tag(DETECTED.load(Ordering::Relaxed)) {
        return bk;
    }
    let bk = probe();
    DETECTED.store(bk.tag(), Ordering::Relaxed);
    bk
}

#[cfg(target_arch = "x86_64")]
fn probe() -> Backend {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        Backend::Avx2Fma
    } else {
        Backend::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn probe() -> Backend {
    Backend::Portable
}

/// Forces the dispatch level used by [`active_backend`] (benchmark and
/// test hook; `None` restores CPU detection). Requests wider than the
/// detected level are clamped — forcing can only *downgrade*, so it can
/// never select instructions the host lacks. Returns the level actually
/// in effect.
pub fn force_backend(bk: Option<Backend>) -> Backend {
    match bk {
        Some(b) => {
            let eff = b.min(detected_backend());
            FORCED.store(eff.tag(), Ordering::Relaxed);
            eff
        }
        None => {
            FORCED.store(0, Ordering::Relaxed);
            detected_backend()
        }
    }
}

/// The backend the packed interval operations currently dispatch to: the
/// forced level if one is set, the detected level otherwise.
#[inline]
pub fn active_backend() -> Backend {
    match Backend::from_tag(FORCED.load(Ordering::Relaxed)) {
        Some(bk) => bk,
        None => detected_backend(),
    }
}

/// Clamp a requested level to what the CPU supports, so a stale or
/// wrong caller-provided level can never reach unsupported instructions.
#[inline]
fn clamp(bk: Backend) -> Backend {
    bk.min(detected_backend())
}

/// NaN-propagating maximum: NaN if either operand is NaN, otherwise the
/// larger operand (`a` on ties, including `max_nan(+0.0, -0.0) == +0.0`).
/// This is the endpoint-selection primitive of the branch-free interval
/// multiplication and division; [`max_nan_4`] is its packed form.
#[inline(always)]
pub fn max_nan(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a >= b {
        a
    } else {
        b
    }
}

/// Packed upward-rounded addition: lane-wise [`crate::add_ru`],
/// bit-identical in every lane.
pub fn add_ru_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::ADD_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::add_ru_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::add_ru_4_sse2(a, b) },
        _ => core::array::from_fn(|i| crate::add_ru(a[i], b[i])),
    }
}

/// Packed paired upward products: lane-wise [`crate::mul_ru_both`]
/// (returns `(RU(a*b), RU(-(a*b)))` per lane), bit-identical in every
/// lane.
pub fn mul_ru_both_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::MUL_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::mul_ru_both_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::mul_ru_both_4_sse2(a, b) },
        _ => {
            let mut hi = [0.0; 4];
            let mut lo = [0.0; 4];
            for i in 0..4 {
                (hi[i], lo[i]) = crate::mul_ru_both(a[i], b[i]);
            }
            (hi, lo)
        }
    }
}

/// Packed paired upward quotients: lane-wise [`crate::div_ru_both`]
/// (returns `(RU(a/b), RU(-(a/b)))` per lane), bit-identical in every
/// lane.
pub fn div_ru_both_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::DIV_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::div_ru_both_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::div_ru_both_4_sse2(a, b) },
        _ => {
            let mut hi = [0.0; 4];
            let mut lo = [0.0; 4];
            for i in 0..4 {
                (hi[i], lo[i]) = crate::div_ru_both(a[i], b[i]);
            }
            (hi, lo)
        }
    }
}

/// Packed NaN-propagating maximum: lane-wise [`max_nan`], bit-identical
/// in every lane (ties select the first operand; NaN results are the
/// canonical quiet NaN).
pub fn max_nan_4(bk: Backend, a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
    let bk = clamp(bk);
    note_dispatch(bk, &tel::MAX_PACKED);
    match bk {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamp() guarantees the detected CPU has AVX2 and FMA.
        Backend::Avx2Fma => unsafe { x86::max_nan_4_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline ISA.
        Backend::Sse2 => unsafe { x86::max_nan_4_sse2(a, b) },
        _ => core::array::from_fn(|i| max_nan(a[i], b[i])),
    }
}

/// Largest operand magnitude for which Veltkamp splitting cannot
/// overflow: `2^996` (the split multiplies by `2^27 + 1`).
pub(crate) const DEKKER_OP_MAX: f64 = f64::from_bits((1023 + 996) << 52);

/// Smallest operand magnitude the Dekker product path accepts: `2^-480`.
/// With both operands at least this large the partial products carry at
/// most 53 significant bits above `2^-1064`, so they are exact even when
/// subnormal and the FMA-free residual equals the FMA residual bit for
/// bit.
pub(crate) const DEKKER_OP_MIN: f64 = f64::from_bits((1023 - 480) << 52);

/// Largest rounded-product magnitude the Dekker path accepts: `2^1021`.
/// The high partial product `ah*bh` can exceed `|a*b|` by a couple of
/// ulps of the split halves; capping `|RN(a*b)|` three binades below
/// overflow guarantees every partial product stays finite.
pub(crate) const DEKKER_PROD_MAX: f64 = f64::from_bits((1023 + 1021) << 52);

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The packed x86-64 kernel bodies. Everything here is `unsafe fn`:
    //! the AVX2+FMA functions require those CPU features (enforced by the
    //! dispatchers via `clamp`), the SSE2 ones only the x86-64 baseline.

    use super::{
        DEKKER_OP_MAX, DEKKER_OP_MIN, DEKKER_PROD_MAX, DIV_EXACT_MIN_A, FMA_RESIDUAL_EXACT_MIN,
    };
    use core::arch::x86_64::*;

    /// All-lanes-valid movemask value for one 256-bit column.
    const ALL4: i32 = 0b1111;

    /// Counts the lanes whose validity bit is clear in `ok` (the lanes
    /// about to be recomputed by a scalar patch).
    #[inline]
    fn note_patched(c: &'static igen_telemetry::Counter, ok: i32) {
        c.add((!ok & ALL4).count_ones() as u64);
    }

    // ------------------------------------------------------------------
    // AVX2 + FMA: one 256-bit register per column.
    // ------------------------------------------------------------------

    /// `|x|` (clears the sign bit).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn abs_256(x: __m256d) -> __m256d {
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
    }

    /// `-x` (flips the sign bit; exact, matches scalar `-x`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn neg_256(x: __m256d) -> __m256d {
        _mm256_xor_pd(_mm256_set1_pd(-0.0), x)
    }

    /// Lane mask: `x` is finite (strictly below +∞ in magnitude; NaN
    /// lanes report false, exactly like `f64::is_finite`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn is_finite_256(x: __m256d) -> __m256d {
        _mm256_cmp_pd::<_CMP_LT_OQ>(abs_256(x), _mm256_set1_pd(f64::INFINITY))
    }

    /// Lane mask: `lo <= |x| <= hi` (false for NaN `x`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn abs_in_range_256(x: __m256d, lo: f64, hi: f64) -> __m256d {
        let ax = abs_256(x);
        _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GE_OQ>(ax, _mm256_set1_pd(lo)),
            _mm256_cmp_pd::<_CMP_LE_OQ>(ax, _mm256_set1_pd(hi)),
        )
    }

    /// Packed branch-free directed bump: lane-wise `ops::bump_up` — steps
    /// each lane one value toward +∞ where the `up` mask is set, via the
    /// same monotone signed-integer encoding of the float order.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn bump_up_256(s: __m256d, up: __m256d) -> __m256d {
        let zero = _mm256_setzero_si256();
        let bits = _mm256_castpd_si256(s);
        // mask = (bits >> 63 logical-after-arith) — 0x7fff.. for negatives.
        let neg = _mm256_cmpgt_epi64(zero, bits);
        let mask = _mm256_srli_epi64::<1>(neg);
        // key = (bits ^ mask) + (up as i64)
        let inc = _mm256_srli_epi64::<63>(_mm256_castpd_si256(up));
        let key = _mm256_add_epi64(_mm256_xor_si256(bits, mask), inc);
        let neg2 = _mm256_cmpgt_epi64(zero, key);
        let mask2 = _mm256_srli_epi64::<1>(neg2);
        _mm256_castsi256_pd(_mm256_xor_si256(key, mask2))
    }

    /// Packed `add_ru`: TwoSum + directed bump on all four lanes; lanes
    /// whose sum or residual leaves the finite range are recomputed with
    /// the scalar kernel (which handles overflow and invalid operations).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn add_ru_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        // Knuth TwoSum, lane-wise — the same six IEEE additions as the
        // scalar `two_sum`.
        let s = _mm256_add_pd(va, vb);
        let a1 = _mm256_sub_pd(s, vb);
        let b1 = _mm256_sub_pd(s, a1);
        let da = _mm256_sub_pd(va, a1);
        let db = _mm256_sub_pd(vb, b1);
        let e = _mm256_add_pd(da, db);
        let up = _mm256_cmp_pd::<_CMP_GT_OQ>(e, _mm256_setzero_pd());
        let bumped = bump_up_256(s, up);
        let ok = _mm256_movemask_pd(_mm256_and_pd(is_finite_256(s), is_finite_256(e)));
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), bumped);
        if ok != ALL4 {
            note_patched(&super::tel::ADD_PATCHED, ok);
            patch(ok, &mut out, |i| crate::add_ru(a[i], b[i]));
        }
        out
    }

    /// Packed `mul_ru_both`: product + FMA residual + two directed bumps;
    /// lanes outside the residual-exactness range fall back to the scalar
    /// kernel.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn mul_ru_both_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        let p = _mm256_mul_pd(va, vb);
        let e = _mm256_fmsub_pd(va, vb, p); // a*b - p, exactly (FMA)
        let zero = _mm256_setzero_pd();
        let hi = bump_up_256(p, _mm256_cmp_pd::<_CMP_GT_OQ>(e, zero));
        let lo = bump_up_256(neg_256(p), _mm256_cmp_pd::<_CMP_LT_OQ>(e, zero));
        let ok = _mm256_movemask_pd(_mm256_and_pd(
            abs_in_range_256(p, FMA_RESIDUAL_EXACT_MIN, f64::MAX),
            is_finite_256(e),
        ));
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm256_storeu_pd(out_hi.as_mut_ptr(), hi);
        _mm256_storeu_pd(out_lo.as_mut_ptr(), lo);
        if ok != ALL4 {
            note_patched(&super::tel::MUL_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::mul_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    /// Packed `div_ru_both`: quotient + `two_prod` residual check + two
    /// directed bumps; lanes outside the exactness range fall back to the
    /// scalar kernel.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn div_ru_both_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        let q = _mm256_div_pd(va, vb);
        // two_prod(q, b) via FMA.
        let h = _mm256_mul_pd(q, vb);
        let l = _mm256_fmsub_pd(q, vb, h);
        let r = _mm256_sub_pd(_mm256_sub_pd(va, h), l);
        let zero = _mm256_setzero_pd();
        let b_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(vb, zero);
        let b_neg = _mm256_cmp_pd::<_CMP_LT_OQ>(vb, zero);
        let r_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(r, zero);
        let r_neg = _mm256_cmp_pd::<_CMP_LT_OQ>(r, zero);
        let up = _mm256_or_pd(_mm256_and_pd(b_pos, r_pos), _mm256_and_pd(b_neg, r_neg));
        let dn = _mm256_or_pd(_mm256_and_pd(b_pos, r_neg), _mm256_and_pd(b_neg, r_pos));
        let hi = bump_up_256(q, up);
        let lo = bump_up_256(neg_256(q), dn);
        let ok1 = _mm256_and_pd(
            abs_in_range_256(q, f64::MIN_POSITIVE, f64::MAX),
            abs_in_range_256(va, DIV_EXACT_MIN_A, f64::MAX),
        );
        let ok2 = abs_in_range_256(h, f64::MIN_POSITIVE, f64::MAX);
        let ok = _mm256_movemask_pd(_mm256_and_pd(ok1, ok2));
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm256_storeu_pd(out_hi.as_mut_ptr(), hi);
        _mm256_storeu_pd(out_lo.as_mut_ptr(), lo);
        if ok != ALL4 {
            note_patched(&super::tel::DIV_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::div_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    /// Packed `max_nan`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn max_nan_4_avx2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let va = _mm256_loadu_pd(a.as_ptr());
        let vb = _mm256_loadu_pd(b.as_ptr());
        // a >= b selects a (ties keep a, matching the scalar kernel);
        // unordered lanes are overwritten with the canonical quiet NaN.
        let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(va, vb);
        let sel = _mm256_blendv_pd(vb, va, ge);
        let unord = _mm256_cmp_pd::<_CMP_UNORD_Q>(va, vb);
        let res = _mm256_blendv_pd(sel, _mm256_set1_pd(f64::NAN), unord);
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), res);
        out
    }

    // ------------------------------------------------------------------
    // SSE2 baseline: two 128-bit registers per column, no FMA — product
    // residuals use Dekker's splitting under magnitude guards.
    // ------------------------------------------------------------------

    #[inline]
    unsafe fn abs_128(x: __m128d) -> __m128d {
        _mm_andnot_pd(_mm_set1_pd(-0.0), x)
    }

    #[inline]
    unsafe fn neg_128(x: __m128d) -> __m128d {
        _mm_xor_pd(_mm_set1_pd(-0.0), x)
    }

    #[inline]
    unsafe fn is_finite_128(x: __m128d) -> __m128d {
        _mm_cmplt_pd(abs_128(x), _mm_set1_pd(f64::INFINITY))
    }

    #[inline]
    unsafe fn abs_in_range_128(x: __m128d, lo: f64, hi: f64) -> __m128d {
        let ax = abs_128(x);
        _mm_and_pd(_mm_cmpge_pd(ax, _mm_set1_pd(lo)), _mm_cmple_pd(ax, _mm_set1_pd(hi)))
    }

    /// Mask-select `if mask { x } else { y }` without SSE4.1 `blendv`.
    #[inline]
    unsafe fn select_128(mask: __m128d, x: __m128d, y: __m128d) -> __m128d {
        _mm_or_pd(_mm_and_pd(mask, x), _mm_andnot_pd(mask, y))
    }

    /// Per-64-bit-lane arithmetic sign mask (all-ones where the lane is
    /// negative as a signed integer) — SSE2 has no 64-bit compare, so the
    /// 32-bit arithmetic shift of the high dword is broadcast down.
    #[inline]
    unsafe fn sign_mask_epi64_128(v: __m128i) -> __m128i {
        _mm_shuffle_epi32::<0b11_11_01_01>(_mm_srai_epi32::<31>(v))
    }

    /// Packed branch-free directed bump, 2 lanes (see [`bump_up_256`]).
    #[inline]
    unsafe fn bump_up_128(s: __m128d, up: __m128d) -> __m128d {
        let bits = _mm_castpd_si128(s);
        let mask = _mm_srli_epi64::<1>(sign_mask_epi64_128(bits));
        let inc = _mm_srli_epi64::<63>(_mm_castpd_si128(up));
        let key = _mm_add_epi64(_mm_xor_si128(bits, mask), inc);
        let mask2 = _mm_srli_epi64::<1>(sign_mask_epi64_128(key));
        _mm_castsi128_pd(_mm_xor_si128(key, mask2))
    }

    /// One `add_ru` half-column: TwoSum + bump on 2 lanes, returning the
    /// 2-bit validity mask alongside the packed result.
    #[inline]
    unsafe fn add_ru_2_sse2(va: __m128d, vb: __m128d) -> (__m128d, i32) {
        let s = _mm_add_pd(va, vb);
        let a1 = _mm_sub_pd(s, vb);
        let b1 = _mm_sub_pd(s, a1);
        let da = _mm_sub_pd(va, a1);
        let db = _mm_sub_pd(vb, b1);
        let e = _mm_add_pd(da, db);
        let up = _mm_cmpgt_pd(e, _mm_setzero_pd());
        let ok = _mm_movemask_pd(_mm_and_pd(is_finite_128(s), is_finite_128(e)));
        (bump_up_128(s, up), ok)
    }

    pub(super) unsafe fn add_ru_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let (lo, ok_lo) = add_ru_2_sse2(_mm_loadu_pd(a.as_ptr()), _mm_loadu_pd(b.as_ptr()));
        let (hi, ok_hi) =
            add_ru_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)), _mm_loadu_pd(b.as_ptr().add(2)));
        let mut out = [0.0; 4];
        _mm_storeu_pd(out.as_mut_ptr(), lo);
        _mm_storeu_pd(out.as_mut_ptr().add(2), hi);
        let ok = ok_lo | (ok_hi << 2);
        if ok != ALL4 {
            note_patched(&super::tel::ADD_PATCHED, ok);
            patch(ok, &mut out, |i| crate::add_ru(a[i], b[i]));
        }
        out
    }

    /// Dekker `two_prod` on 2 lanes: returns `(p, e)` with the validity
    /// mask of the splitting bounds (`2^-480 <= |a|, |b| <= 2^996` and
    /// `|p| <= 2^1021`) under which `e` is exactly the FMA residual.
    #[inline]
    unsafe fn two_prod_dekker_2(va: __m128d, vb: __m128d) -> (__m128d, __m128d, __m128d) {
        const FACTOR: f64 = 134_217_729.0; // 2^27 + 1
        let f = _mm_set1_pd(FACTOR);
        let p = _mm_mul_pd(va, vb);
        let ca = _mm_mul_pd(f, va);
        let ah = _mm_sub_pd(ca, _mm_sub_pd(ca, va));
        let al = _mm_sub_pd(va, ah);
        let cb = _mm_mul_pd(f, vb);
        let bh = _mm_sub_pd(cb, _mm_sub_pd(cb, vb));
        let bl = _mm_sub_pd(vb, bh);
        // e = ((ah*bh - p) + ah*bl + al*bh) + al*bl, as in two_prod_dekker.
        let e = _mm_add_pd(
            _mm_add_pd(
                _mm_add_pd(_mm_sub_pd(_mm_mul_pd(ah, bh), p), _mm_mul_pd(ah, bl)),
                _mm_mul_pd(al, bh),
            ),
            _mm_mul_pd(al, bl),
        );
        let split_ok = _mm_and_pd(
            _mm_and_pd(
                abs_in_range_128(va, DEKKER_OP_MIN, DEKKER_OP_MAX),
                abs_in_range_128(vb, DEKKER_OP_MIN, DEKKER_OP_MAX),
            ),
            _mm_cmple_pd(abs_128(p), _mm_set1_pd(DEKKER_PROD_MAX)),
        );
        (p, e, split_ok)
    }

    #[inline]
    unsafe fn mul_ru_both_2_sse2(va: __m128d, vb: __m128d) -> (__m128d, __m128d, i32) {
        let (p, e, split_ok) = two_prod_dekker_2(va, vb);
        let zero = _mm_setzero_pd();
        let hi = bump_up_128(p, _mm_cmpgt_pd(e, zero));
        let lo = bump_up_128(neg_128(p), _mm_cmplt_pd(e, zero));
        let ok = _mm_movemask_pd(_mm_and_pd(
            _mm_and_pd(abs_in_range_128(p, FMA_RESIDUAL_EXACT_MIN, f64::MAX), is_finite_128(e)),
            split_ok,
        ));
        (hi, lo, ok)
    }

    pub(super) unsafe fn mul_ru_both_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let (hi0, lo0, ok0) =
            mul_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr()), _mm_loadu_pd(b.as_ptr()));
        let (hi1, lo1, ok1) =
            mul_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)), _mm_loadu_pd(b.as_ptr().add(2)));
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm_storeu_pd(out_hi.as_mut_ptr(), hi0);
        _mm_storeu_pd(out_hi.as_mut_ptr().add(2), hi1);
        _mm_storeu_pd(out_lo.as_mut_ptr(), lo0);
        _mm_storeu_pd(out_lo.as_mut_ptr().add(2), lo1);
        let ok = ok0 | (ok1 << 2);
        if ok != ALL4 {
            note_patched(&super::tel::MUL_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::mul_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    #[inline]
    unsafe fn div_ru_both_2_sse2(va: __m128d, vb: __m128d) -> (__m128d, __m128d, i32) {
        let q = _mm_div_pd(va, vb);
        let (h, l, split_ok) = two_prod_dekker_2(q, vb);
        let r = _mm_sub_pd(_mm_sub_pd(va, h), l);
        let zero = _mm_setzero_pd();
        let b_pos = _mm_cmpgt_pd(vb, zero);
        let b_neg = _mm_cmplt_pd(vb, zero);
        let r_pos = _mm_cmpgt_pd(r, zero);
        let r_neg = _mm_cmplt_pd(r, zero);
        let up = _mm_or_pd(_mm_and_pd(b_pos, r_pos), _mm_and_pd(b_neg, r_neg));
        let dn = _mm_or_pd(_mm_and_pd(b_pos, r_neg), _mm_and_pd(b_neg, r_pos));
        let hi = bump_up_128(q, up);
        let lo = bump_up_128(neg_128(q), dn);
        let ok1 = _mm_and_pd(
            abs_in_range_128(q, f64::MIN_POSITIVE, f64::MAX),
            abs_in_range_128(va, DIV_EXACT_MIN_A, f64::MAX),
        );
        let ok2 = abs_in_range_128(h, f64::MIN_POSITIVE, f64::MAX);
        let ok = _mm_movemask_pd(_mm_and_pd(_mm_and_pd(ok1, ok2), split_ok));
        (hi, lo, ok)
    }

    pub(super) unsafe fn div_ru_both_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> ([f64; 4], [f64; 4]) {
        let (hi0, lo0, ok0) =
            div_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr()), _mm_loadu_pd(b.as_ptr()));
        let (hi1, lo1, ok1) =
            div_ru_both_2_sse2(_mm_loadu_pd(a.as_ptr().add(2)), _mm_loadu_pd(b.as_ptr().add(2)));
        let mut out_hi = [0.0; 4];
        let mut out_lo = [0.0; 4];
        _mm_storeu_pd(out_hi.as_mut_ptr(), hi0);
        _mm_storeu_pd(out_hi.as_mut_ptr().add(2), hi1);
        _mm_storeu_pd(out_lo.as_mut_ptr(), lo0);
        _mm_storeu_pd(out_lo.as_mut_ptr().add(2), lo1);
        let ok = ok0 | (ok1 << 2);
        if ok != ALL4 {
            note_patched(&super::tel::DIV_PATCHED, ok);
            patch_pair(ok, &mut out_hi, &mut out_lo, |i| crate::div_ru_both(a[i], b[i]));
        }
        (out_hi, out_lo)
    }

    pub(super) unsafe fn max_nan_4_sse2(a: &[f64; 4], b: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for half in 0..2 {
            let va = _mm_loadu_pd(a.as_ptr().add(2 * half));
            let vb = _mm_loadu_pd(b.as_ptr().add(2 * half));
            let sel = select_128(_mm_cmpge_pd(va, vb), va, vb);
            let res = select_128(_mm_cmpunord_pd(va, vb), _mm_set1_pd(f64::NAN), sel);
            _mm_storeu_pd(out.as_mut_ptr().add(2 * half), res);
        }
        out
    }

    // ------------------------------------------------------------------
    // Rare-lane scalar patching.
    // ------------------------------------------------------------------

    /// Recomputes the lanes whose validity bit is clear with the scalar
    /// kernel (cold: guard failures are rare by construction).
    #[cold]
    fn patch(ok: i32, out: &mut [f64; 4], f: impl Fn(usize) -> f64) {
        for (i, lane) in out.iter_mut().enumerate() {
            if ok & (1 << i) == 0 {
                *lane = f(i);
            }
        }
    }

    /// Pair-result variant of [`patch`].
    #[cold]
    fn patch_pair(
        ok: i32,
        out_hi: &mut [f64; 4],
        out_lo: &mut [f64; 4],
        f: impl Fn(usize) -> (f64, f64),
    ) {
        for i in 0..4 {
            if ok & (1 << i) == 0 {
                (out_hi[i], out_lo[i]) = f(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<Backend> {
        let mut bks = vec![Backend::Portable, Backend::Sse2, Backend::Avx2Fma];
        bks.retain(|&bk| bk <= detected_backend());
        bks
    }

    /// A deterministic grid of awkward operands, including every special
    /// class the scalar kernels branch on.
    fn grid() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -0.1,
            1.0 / 3.0,
            f64::EPSILON,
            1e16,
            -1e16,
            1e300,
            -1e300,
            f64::MAX,
            -f64::MAX,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            f64::from_bits(1),
            -f64::from_bits(1),
            f64::from_bits(0x000f_ffff_ffff_ffff),
            2.5e-291,
            1e-290,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ]
    }

    fn assert_lane_bits(got: f64, want: f64, ctx: &str) {
        assert!(
            got.to_bits() == want.to_bits(),
            "{ctx}: got {got:e} ({:#x}), want {want:e} ({:#x})",
            got.to_bits(),
            want.to_bits()
        );
    }

    #[test]
    fn packed_ops_bit_identical_on_grid() {
        let g = grid();
        for bk in backends() {
            for c in g.chunks(4) {
                let mut a = [0.0; 4];
                a[..c.len()].copy_from_slice(c);
                for &y in &g {
                    let b = [y; 4];
                    let s = add_ru_4(bk, &a, &b);
                    let (mh, ml) = mul_ru_both_4(bk, &a, &b);
                    let (dh, dl) = div_ru_both_4(bk, &a, &b);
                    let mx = max_nan_4(bk, &a, &b);
                    for i in 0..4 {
                        let ctx = format!("{bk} a={} b={y}", a[i]);
                        assert_lane_bits(s[i], crate::add_ru(a[i], y), &format!("add {ctx}"));
                        let (wh, wl) = crate::mul_ru_both(a[i], y);
                        assert_lane_bits(mh[i], wh, &format!("mul hi {ctx}"));
                        assert_lane_bits(ml[i], wl, &format!("mul lo {ctx}"));
                        let (qh, ql) = crate::div_ru_both(a[i], y);
                        assert_lane_bits(dh[i], qh, &format!("div hi {ctx}"));
                        assert_lane_bits(dl[i], ql, &format!("div lo {ctx}"));
                        assert_lane_bits(mx[i], max_nan(a[i], y), &format!("max {ctx}"));
                    }
                }
            }
        }
    }

    #[test]
    fn force_backend_clamps_and_restores() {
        let det = detected_backend();
        assert_eq!(force_backend(Some(Backend::Portable)), Backend::Portable);
        assert_eq!(active_backend(), Backend::Portable);
        // Requesting the widest level yields at most the detected one.
        assert_eq!(force_backend(Some(Backend::Avx2Fma)), det);
        assert_eq!(force_backend(None), det);
        assert_eq!(active_backend(), det);
    }

    #[test]
    fn max_nan_scalar_semantics() {
        assert_eq!(max_nan(1.0, 2.0), 2.0);
        assert_eq!(max_nan(2.0, 1.0), 2.0);
        assert!(max_nan(f64::NAN, 1.0).is_nan());
        assert!(max_nan(1.0, f64::NAN).is_nan());
        // Ties keep the first operand, including signed zeros.
        assert!(max_nan(0.0, -0.0).is_sign_positive());
        assert!(max_nan(-0.0, 0.0).is_sign_negative());
    }
}
