//! Directed-rounding kernels for the binary64 basic operations.
//!
//! Each upward kernel computes the round-to-nearest result, determines the
//! exact sign of the rounding error through an error-free transformation,
//! and corrects by one ulp when the nearest result fell below the exact
//! value. Downward kernels use `RD(x ∘ y) = -RU((-x) ∘ (-y))` (Section II
//! of the paper). Square root, which has no negation identity, implements
//! both directions directly.
//!
//! # Exactness contract
//!
//! * Results are bit-exact IEEE directed rounding whenever the operation's
//!   EFT is valid (finite inputs, result magnitude above the documented
//!   thresholds).
//! * In the deep-subnormal range (thresholds noted per function) a
//!   conservative one-quantum widening is applied instead: the result is
//!   still a *sound* bound, at most 2^-1074 away from the exact directed
//!   rounding.
//! * NaNs propagate; IEEE special values follow the interval conventions of
//!   Section IV-A of the paper.

use crate::eft::{two_prod, two_sum};
use crate::ulp::{exponent, next_down, next_up};

/// Telemetry counters for the scalar rounding kernels (zero-sized no-ops
/// unless the `telemetry` feature is enabled):
///
/// * `round.ulp_bumps` — directed one-ulp corrections applied on the
///   scalar hot path (the packed kernels bump in-register and are
///   counted separately via `simd.*`);
/// * `round.specials` — slow-path NaN/±∞/exact-special returns;
/// * `round.widenings` — conservative sound widenings: overflow
///   saturation to ±MAX, underflow to one quantum, `next_up` fallbacks.
pub(crate) mod tel {
    use igen_telemetry::Counter;

    pub static ULP_BUMPS: Counter = Counter::new("round.ulp_bumps");
    pub static SPECIALS: Counter = Counter::new("round.specials");
    pub static WIDENINGS: Counter = Counter::new("round.widenings");
}

/// `2^n` for |n| <= 1023, constructed exactly from bits.
#[inline]
fn pow2(n: i64) -> f64 {
    debug_assert!((-1022..=1023).contains(&n));
    f64::from_bits(((1023 + n) as u64) << 52)
}

/// Exact scaling `x * 2^n`, valid when the result stays finite and the
/// scaling path does not pass through underflow (our callers scale
/// monotonically toward magnitude ~1).
fn scale2(mut x: f64, mut n: i64) -> f64 {
    while n > 1000 {
        x *= pow2(1000);
        n -= 1000;
    }
    while n < -1000 {
        x *= pow2(-1000);
        n += 1000;
    }
    if n != 0 {
        x *= pow2(n);
    }
    x
}

/// Branch-free directed bump: steps `s` one value toward +∞ when `up`
/// holds, using the monotone signed-integer encoding of the float order.
/// Valid for every finite `s` (stepping past ±MAX yields ±∞, which is the
/// correct directed rounding there); `up` must be false for NaN `s`.
#[inline(always)]
fn bump_up(s: f64, up: bool) -> f64 {
    if up {
        tel::ULP_BUMPS.inc();
    }
    let bits = s.to_bits() as i64;
    let mask = (((bits >> 63) as u64) >> 1) as i64;
    let key = (bits ^ mask).wrapping_add(up as i64);
    let mask2 = (((key >> 63) as u64) >> 1) as i64;
    f64::from_bits((key ^ mask2) as u64)
}

/// Sign of `a*b - p` for finite nonzero `a`, `b` and `p = RN(a*b)`, robust
/// to underflow of the product. Scales both operands into `[1, 2)`, where
/// the FMA residual is exact, and compares in the scaled domain.
fn mul_residual_sign(a: f64, b: f64, p: f64) -> i32 {
    let k1 = -(exponent(a) as i64);
    let k2 = -(exponent(b) as i64);
    let a_s = scale2(a, k1);
    let b_s = scale2(b, k2);
    let p_s = a_s * b_s; // in ±[1, 4), exact EFT applies
    let e = a_s.mul_add(b_s, -p_s);
    // p scaled back into the same domain; exact because |p * 2^(k1+k2)|
    // lands in ±[0, 8] and p's significand is preserved by 2^k scaling.
    let p2 = scale2(p, k1 + k2);
    let t = p2 - p_s; // exact: p2 and p_s agree to within one ulp
    let d = e - t; // sign-exact in the normal range
    if d > 0.0 {
        1
    } else if d < 0.0 {
        -1
    } else {
        0
    }
}

/// Upward-rounded addition: returns `RU(a + b)` exactly for all finite
/// inputs (the TwoSum EFT is valid across the whole range, including
/// subnormals).
///
/// # Example
///
/// ```
/// use igen_round::add_ru;
/// assert!(add_ru(0.1, 0.2) > 0.1 + 0.2 - f64::EPSILON);
/// assert_eq!(add_ru(1.0, 1.0), 2.0); // exact sums are untouched
/// ```
#[inline]
pub fn add_ru(a: f64, b: f64) -> f64 {
    // Hot path: branch-free TwoSum + branch-free bump. The single guard
    // branch below is all-but-never taken on real data, so it predicts
    // perfectly — this is what preserves the paper's "branch-free
    // interval arithmetic" performance property on the software-rounding
    // substrate.
    let (s, e) = two_sum(a, b);
    if s.is_finite() && e.is_finite() {
        return bump_up(s, e > 0.0);
    }
    add_ru_slow(a, b, s)
}

#[cold]
fn add_ru_slow(a: f64, b: f64, s: f64) -> f64 {
    if !s.is_finite() {
        if s.is_nan() || a.is_infinite() || b.is_infinite() {
            tel::SPECIALS.inc();
            return s; // exact infinity or invalid
        }
        // Finite operands overflowed under RN.
        tel::WIDENINGS.inc();
        return if s == f64::INFINITY { f64::INFINITY } else { -f64::MAX };
    }
    // Intermediate overflow inside TwoSum (|s| close to MAX): widen.
    tel::WIDENINGS.inc();
    next_up(s)
}

/// Downward-rounded addition: `RD(a + b)`, exact for all finite inputs.
///
/// Note the IEEE sign-of-zero rule: `add_rd(1.0, -1.0)` is `-0.0`.
#[inline]
pub fn add_rd(a: f64, b: f64) -> f64 {
    -add_ru(-a, -b)
}

/// Upward-rounded subtraction: `RU(a - b)`.
#[inline]
pub fn sub_ru(a: f64, b: f64) -> f64 {
    add_ru(a, -b)
}

/// Downward-rounded subtraction: `RD(a - b)`.
#[inline]
pub fn sub_rd(a: f64, b: f64) -> f64 {
    -add_ru(-a, b)
}

/// Upward-rounded multiplication: returns `RU(a * b)`.
///
/// Bit-exact everywhere, including products that underflow to the
/// subnormal range (handled by exact rescaling).
///
/// # Example
///
/// ```
/// use igen_round::{mul_ru, mul_rd};
/// let lo = mul_rd(0.1, 0.1);
/// let hi = mul_ru(0.1, 0.1);
/// assert!(lo < hi); // 0.01 is not exactly representable
/// assert_eq!(mul_ru(0.5, 8.0), 4.0); // exact products are untouched
/// ```
pub fn mul_ru(a: f64, b: f64) -> f64 {
    // Hot path: the FMA residual is exact whenever |p| is comfortably
    // normal; one predictable guard branch.
    let p = a * b;
    let e = a.mul_add(b, -p);
    if p.abs() >= FMA_RESIDUAL_EXACT_MIN && p.abs() <= f64::MAX && e.is_finite() {
        return bump_up(p, e > 0.0);
    }
    mul_ru_slow(a, b, p)
}

#[cold]
fn mul_ru_slow(a: f64, b: f64, p: f64) -> f64 {
    if p.is_nan() {
        tel::SPECIALS.inc();
        return p;
    }
    if p.is_infinite() {
        if a.is_infinite() || b.is_infinite() {
            tel::SPECIALS.inc();
            return p; // exact infinity
        }
        tel::WIDENINGS.inc();
        return if p == f64::INFINITY { f64::INFINITY } else { -f64::MAX };
    }
    if p == 0.0 {
        if a == 0.0 || b == 0.0 {
            return p; // exact zero, RN sign convention matches RU
        }
        // Underflow to zero from nonzero operands.
        tel::WIDENINGS.inc();
        return if (a > 0.0) == (b > 0.0) { f64::from_bits(1) } else { -0.0 };
    }
    // Tiny or subnormal product: exact scaled residual test.
    match mul_residual_sign(a, b, p) {
        1 => next_up(p),
        _ => p,
    }
}

/// The FMA residual `a*b - p` is exactly representable only when its
/// quantum `2^(ea+eb-104)` stays in range, i.e. for `|p| >= 2^-967`;
/// below that the residual can round to zero and lose its sign.
pub(crate) const FMA_RESIDUAL_EXACT_MIN: f64 = 2.5e-291; // > 2^-966

/// Downward-rounded multiplication: `RD(a * b)`, bit-exact (see
/// [`mul_ru`]).
#[inline]
pub fn mul_rd(a: f64, b: f64) -> f64 {
    -mul_ru(-a, b)
}

/// Paired upward products: returns `(RU(a*b), RU(-(a*b)))` with a single
/// product and residual — the workhorse of the branch-free interval
/// multiplication (all eight directed products of Section II cost four
/// multiplications and four FMAs this way).
#[inline]
pub fn mul_ru_both(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    if p.abs() >= FMA_RESIDUAL_EXACT_MIN && p.abs() <= f64::MAX && e.is_finite() {
        return (bump_up(p, e > 0.0), bump_up(-p, e < 0.0));
    }
    (mul_ru(a, b), mul_ru(-a, b))
}

/// Paired upward quotients: returns `(RU(a/b), RU(-(a/b)))` with a single
/// division and residual.
#[inline]
pub fn div_ru_both(a: f64, b: f64) -> (f64, f64) {
    let q = a / b;
    if q.abs() >= f64::MIN_POSITIVE
        && q.abs() <= f64::MAX
        && a.abs() >= DIV_EXACT_MIN_A
        && a.abs() <= f64::MAX
    {
        let (h, l) = two_prod(q, b);
        if h.abs() >= f64::MIN_POSITIVE && h.abs() <= f64::MAX {
            let r = (a - h) - l;
            let up = if b > 0.0 { r > 0.0 } else { r < 0.0 };
            let dn = if b > 0.0 { r < 0.0 } else { r > 0.0 };
            return (bump_up(q, up), bump_up(-q, dn));
        }
    }
    (div_ru(a, b), div_ru(-a, b))
}

/// Threshold below which the division EFT may lose the residual sign;
/// dividends smaller than this use the conservative path.
pub(crate) const DIV_EXACT_MIN_A: f64 = 1e-270;

/// Upward-rounded division: returns `RU(a / b)`.
///
/// Bit-exact when `|a| >= 1e-270` and the quotient is normal; otherwise a
/// sound one-quantum-widened bound is returned. Division by zero follows
/// IEEE (`±∞` by sign); the interval layer gives these the Section IV-A
/// semantics.
pub fn div_ru(a: f64, b: f64) -> f64 {
    // Hot path: quotient and dividend comfortably normal.
    let q = a / b;
    if q.abs() >= f64::MIN_POSITIVE
        && q.abs() <= f64::MAX
        && a.abs() >= DIV_EXACT_MIN_A
        && a.abs() <= f64::MAX
    {
        let (h, l) = two_prod(q, b);
        if h.abs() >= f64::MIN_POSITIVE && h.abs() <= f64::MAX {
            let r = (a - h) - l;
            let up = if b > 0.0 { r > 0.0 } else { r < 0.0 };
            return bump_up(q, up);
        }
    }
    div_ru_slow(a, b, q)
}

#[cold]
fn div_ru_slow(a: f64, b: f64, q: f64) -> f64 {
    if q.is_nan() || b == 0.0 {
        tel::SPECIALS.inc();
        return q;
    }
    if q.is_infinite() {
        if a.is_infinite() {
            tel::SPECIALS.inc();
            return q; // exact
        }
        tel::WIDENINGS.inc();
        return if q == f64::INFINITY { f64::INFINITY } else { -f64::MAX };
    }
    if q == 0.0 {
        if a == 0.0 || b.is_infinite() {
            // a == 0: exact. b infinite with finite a: exact limit? No —
            // finite/∞ is exactly 0 only in the limit; as an interval bound
            // the true quotient of any finite a by ∞-bounded b is 0 only
            // when reached; IEEE defines finite/∞ = 0 exactly, keep it.
            return q;
        }
        // Underflow toward zero from nonzero finite operands.
        tel::WIDENINGS.inc();
        return if (a > 0.0) == (b > 0.0) { f64::from_bits(1) } else { -0.0 };
    }
    if b.is_infinite() {
        // Finite nonzero a: IEEE quotient is ±0 handled above; q nonzero
        // cannot happen. Defensive:
        return q;
    }
    let exact_ok = q.abs() >= f64::MIN_POSITIVE && a.abs() >= DIV_EXACT_MIN_A;
    if exact_ok {
        // r = a - q*b computed exactly: a - h is exact by Sterbenz (h is
        // within one rounding of a), then the l correction keeps the sign
        // (the quantum stays normal thanks to the |a| threshold). When q*b
        // overflows (|a| near MAX), evaluate at half scale — exact because
        // both a and b here are normal.
        let r = {
            let (h, l) = two_prod(q, b);
            if h.is_finite() && h.abs() >= f64::MIN_POSITIVE {
                (a - h) - l
            } else {
                let (h2, l2) = two_prod(q, b * 0.5);
                (a * 0.5 - h2) - l2
            }
        };
        // exact quotient = q + r/b  =>  direction depends on sign(r/b).
        let up = if b > 0.0 { r > 0.0 } else { r < 0.0 };
        return if up { next_up(q) } else { q };
    }
    // Conservative sound fallback.
    next_up(q)
}

/// Downward-rounded division: `RD(a / b)`; see [`div_ru`] for exactness.
#[inline]
pub fn div_rd(a: f64, b: f64) -> f64 {
    -div_ru(-a, b)
}

/// Threshold below which the square-root EFT may lose exactness.
pub(crate) const SQRT_EXACT_MIN_A: f64 = 1e-290;

/// Upward-rounded square root: returns `RU(sqrt(a))`.
///
/// Bit-exact for `a >= 1e-290`; smaller positive values get a sound
/// one-quantum widening. `sqrt` of a negative value returns NaN (the
/// interval layer interprets this per Section IV-A, e.g.
/// `sqrt([-1, 1]) = [NaN, 1]`).
pub fn sqrt_ru(a: f64) -> f64 {
    let s = a.sqrt();
    if a >= SQRT_EXACT_MIN_A && s <= f64::MAX {
        let r = s.mul_add(s, -a);
        return bump_up(s, r < 0.0);
    }
    if !s.is_finite() || s == 0.0 {
        return s; // NaN, +inf, ±0 are all exact
    }
    next_up(s)
}

/// Downward-rounded square root: returns `RD(sqrt(a))`; see [`sqrt_ru`].
pub fn sqrt_rd(a: f64) -> f64 {
    let s = a.sqrt();
    if a >= SQRT_EXACT_MIN_A && s <= f64::MAX {
        let r = s.mul_add(s, -a);
        // Downward bump: mirror through negation.
        return -bump_up(-s, r > 0.0);
    }
    if !s.is_finite() || s == 0.0 {
        return s;
    }
    next_down(s).max(0.0)
}

/// Upward-rounded fused multiply-add: returns `RU(a * b + c)`.
///
/// Uses the Boldo–Muller `ErrFma` error decomposition; bit-exact when all
/// EFT intermediates stay normal, conservatively widened by one quantum
/// otherwise.
pub fn fma_ru(a: f64, b: f64, c: f64) -> f64 {
    let r = a.mul_add(b, c);
    if !r.is_finite() {
        if r.is_nan() || a.is_infinite() || b.is_infinite() || c.is_infinite() {
            return r;
        }
        return if r == f64::INFINITY { f64::INFINITY } else { -f64::MAX };
    }
    let (u1, u2) = two_prod(a, b);
    // Guard against underflow invalidating the product EFT: a zero product
    // is only exact when one operand is zero, and the residual quantum
    // must stay representable (see mul_ru's threshold).
    let prod_ok = (u1 == 0.0 && (a == 0.0 || b == 0.0)) || u1.abs() >= 2.5e-291;
    if prod_ok && u1.is_finite() {
        let (a1, a2) = two_sum(c, u2);
        let (b1, b2) = two_sum(u1, a1);
        let g = (b1 - r) + b2;
        let (e1, e2) = crate::eft::fast_two_sum(g, a2);
        if e1.is_finite() && e2.is_finite() {
            let sign = if e1 != 0.0 { e1 } else { e2 };
            return if sign > 0.0 { next_up(r) } else { r };
        }
    }
    next_up(r)
}

/// Downward-rounded fused multiply-add: `RD(a * b + c)`.
#[inline]
pub fn fma_rd(a: f64, b: f64, c: f64) -> f64 {
    -fma_ru(-a, b, -c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_directed_brackets_exact_sum() {
        let cases =
            [(0.1, 0.2), (1.0, f64::EPSILON / 4.0), (1e16, 1.0), (-1e16, 3.0), (1e-300, -1e-320)];
        for (a, b) in cases {
            let lo = add_rd(a, b);
            let hi = add_ru(a, b);
            let (s, e) = two_sum(a, b);
            assert!(lo <= s && s <= hi, "({a}, {b})");
            // Width is at most one ulp and the exact sum s+e is inside.
            if e > 0.0 {
                assert_eq!(hi, next_up(s), "({a}, {b})");
                assert_eq!(lo, s);
            } else if e < 0.0 {
                assert_eq!(lo, next_down(s), "({a}, {b})");
                assert_eq!(hi, s);
            } else {
                assert_eq!(lo, hi);
            }
        }
    }

    #[test]
    fn add_exact_cases_stay_points() {
        for (a, b) in [(1.0, 2.0), (0.5, 0.25), (-3.0, 3.0), (1e300, 1e300)] {
            assert_eq!(add_ru(a, b), a + b);
            assert_eq!(add_rd(a, b), a + b);
        }
    }

    #[test]
    fn add_signed_zero_convention() {
        // Exact zero sum: +0 under RU/RN, -0 under RD.
        let ru = add_ru(1.0, -1.0);
        let rd = add_rd(1.0, -1.0);
        assert_eq!(ru, 0.0);
        assert!(ru.is_sign_positive());
        assert_eq!(rd, 0.0);
        assert!(rd.is_sign_negative());
    }

    #[test]
    fn add_overflow() {
        assert_eq!(add_ru(f64::MAX, f64::MAX), f64::INFINITY);
        assert_eq!(add_rd(f64::MAX, f64::MAX), f64::MAX);
        assert_eq!(add_rd(-f64::MAX, -f64::MAX), f64::NEG_INFINITY);
        assert_eq!(add_ru(-f64::MAX, -f64::MAX), -f64::MAX);
        assert_eq!(add_ru(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(add_rd(f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
        assert!(add_ru(f64::INFINITY, f64::NEG_INFINITY).is_nan());
    }

    #[test]
    fn mul_directed_one_third_squared() {
        let x = 1.0 / 3.0;
        let lo = mul_rd(x, x);
        let hi = mul_ru(x, x);
        assert!(lo < hi);
        assert_eq!(next_up(lo), hi); // exactly one ulp apart
        let p = x * x;
        assert!(lo == p || hi == p);
    }

    #[test]
    fn mul_exact_cases_stay_points() {
        for (a, b) in [(2.0, 4.0), (0.5, -0.125), (1.5, 3.0), (0.0, 5.0)] {
            assert_eq!(mul_ru(a, b), a * b);
            assert_eq!(mul_rd(a, b), a * b);
        }
    }

    #[test]
    fn mul_underflow_is_sound_and_tight() {
        let tiny = f64::MIN_POSITIVE; // 2^-1022
                                      // tiny * 2^-53: exact value 2^-1075, below half quantum: RN -> 0.
        let p_ru = mul_ru(tiny, pow2(-53));
        let p_rd = mul_rd(tiny, pow2(-53));
        assert_eq!(p_ru, f64::from_bits(1));
        assert_eq!(p_rd, 0.0);
        // Negative mirror.
        let n_ru = mul_ru(-tiny, pow2(-53));
        let n_rd = mul_rd(-tiny, pow2(-53));
        assert_eq!(n_rd, -f64::from_bits(1));
        assert_eq!(n_ru, 0.0);
        assert!(n_ru.is_sign_negative());
        // Exact subnormal product stays a point.
        let sub = f64::from_bits(1 << 10);
        assert_eq!(mul_ru(sub, 2.0), mul_rd(sub, 2.0));
        assert_eq!(mul_ru(sub, 2.0), sub * 2.0);
    }

    #[test]
    fn mul_overflow() {
        assert_eq!(mul_ru(1e300, 1e300), f64::INFINITY);
        assert_eq!(mul_rd(1e300, 1e300), f64::MAX);
        assert_eq!(mul_ru(-1e300, 1e300), -f64::MAX);
        assert_eq!(mul_rd(-1e300, 1e300), f64::NEG_INFINITY);
        assert_eq!(mul_ru(f64::INFINITY, 2.0), f64::INFINITY);
        assert!(mul_ru(f64::INFINITY, 0.0).is_nan());
    }

    #[test]
    fn div_directed_brackets() {
        let lo = div_rd(1.0, 3.0);
        let hi = div_ru(1.0, 3.0);
        assert!(lo < hi);
        assert_eq!(next_up(lo), hi);
        // lo * 3 <= 1 <= hi * 3 in exact arithmetic:
        assert!(mul_rd(lo, 3.0) <= 1.0);
        assert!(mul_ru(hi, 3.0) >= 1.0);
        assert_eq!(div_ru(1.0, 4.0), 0.25);
        assert_eq!(div_rd(1.0, 4.0), 0.25);
        assert_eq!(div_ru(-1.0, 3.0), -div_rd(1.0, 3.0));
    }

    #[test]
    fn div_by_zero_and_infinity() {
        assert_eq!(div_ru(1.0, 0.0), f64::INFINITY);
        assert_eq!(div_ru(-1.0, 0.0), f64::NEG_INFINITY);
        assert!(div_ru(0.0, 0.0).is_nan());
        assert_eq!(div_ru(1.0, f64::INFINITY), 0.0);
        assert_eq!(div_rd(1.0, f64::INFINITY), -0.0_f64.abs()); // = 0.0 value-wise
        assert_eq!(div_ru(f64::INFINITY, 2.0), f64::INFINITY);
    }

    #[test]
    fn sqrt_directed() {
        let lo = sqrt_rd(2.0);
        let hi = sqrt_ru(2.0);
        assert!(lo < hi);
        assert_eq!(next_up(lo), hi);
        assert!(mul_rd(lo, lo) <= 2.0 && 2.0 <= mul_ru(hi, hi));
        assert_eq!(sqrt_ru(4.0), 2.0);
        assert_eq!(sqrt_rd(4.0), 2.0);
        assert_eq!(sqrt_ru(0.0), 0.0);
        assert!(sqrt_ru(-1.0).is_nan());
        assert_eq!(sqrt_ru(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn fma_directed() {
        // 0.1 * 0.1 - 0.01: tiny nonzero exact value.
        let r_ru = fma_ru(0.1, 0.1, -0.01);
        let r_rd = fma_rd(0.1, 0.1, -0.01);
        assert!(r_rd <= r_ru);
        let rn = 0.1f64.mul_add(0.1, -0.01);
        assert!(r_rd <= rn && rn <= r_ru);
        // Exact case.
        assert_eq!(fma_ru(2.0, 3.0, 4.0), 10.0);
        assert_eq!(fma_rd(2.0, 3.0, 4.0), 10.0);
    }

    #[test]
    fn directed_monotonicity_small_grid() {
        // RU >= RN >= RD on a deterministic grid of awkward values.
        let vals = [
            0.1,
            -0.1,
            1.0 / 3.0,
            -1.0 / 7.0,
            1e-5,
            1e5,
            3.25,
            -2.75,
            1e-160,
            -1e160,
            f64::MIN_POSITIVE,
            6.02e23,
        ];
        for &a in &vals {
            for &b in &vals {
                let (rn_add, rn_mul, rn_div) = (a + b, a * b, a / b);
                assert!(add_rd(a, b) <= rn_add && rn_add <= add_ru(a, b), "add {a} {b}");
                assert!(mul_rd(a, b) <= rn_mul && rn_mul <= mul_ru(a, b), "mul {a} {b}");
                if b != 0.0 {
                    assert!(div_rd(a, b) <= rn_div && rn_div <= div_ru(a, b), "div {a} {b}");
                }
            }
        }
    }
}
