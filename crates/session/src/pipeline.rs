//! The source→`BatchProgram` pipeline, extracted from the three call
//! sites that used to inline it (`igen-cli run`, `igen-cli profile`,
//! the gauntlet's `compiled-vm` backend).
//!
//! Everything here is deterministic: the same [`CompileRequest`]
//! always yields the same bytecode, bit for bit (trace-lowering and
//! the peephole pass are deterministic; see DESIGN.md §14/§15). That
//! is what makes the compiled unit safe to cache and share across
//! threads.

use igen_batch::{BatchDdI, BatchF64I, BatchProgram};
use igen_core::{
    compile_to_program, compile_to_program_raw, verify_bit_identity, verify_bit_identity_dd,
    CompileError, Compiler, Config, Output, Precision,
};
use igen_kernels::workload;
use igen_vm::{ArgBind, BindSpec};
use std::fmt;
use std::sync::Arc;

/// How the compiled function's parameters are bound for batched
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub enum BindRequest {
    /// A fully explicit binding (the gauntlet's mode: the caller knows
    /// the program layout it wants).
    Explicit(BindSpec),
    /// Derive the binding from the function signature (the CLI's
    /// mode): interval scalars bind as `Ival`, pointers/arrays as
    /// `InOut` with the per-name length from `lens` (default `size`),
    /// and integer parameters must be fixed by name in `int_args`.
    FromParams {
        /// `--arg name=INT` fixings for integer parameters.
        int_args: Vec<(String, i64)>,
        /// `--len name=N` element counts behind pointer parameters.
        lens: Vec<(String, usize)>,
        /// Default pointer-parameter length.
        size: usize,
    },
}

/// One compilation request. Every field except `origin` participates
/// in the cache key; `origin` only labels error messages (the CLI
/// passes the input path, the service passes a request tag).
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// The C source text.
    pub source: Arc<str>,
    /// Where the source came from, for error messages.
    pub origin: String,
    /// Function to compile (`None` = the file's only definition).
    pub fn_name: Option<String>,
    /// Full compiler configuration (precision, opt level, policies).
    pub cfg: Config,
    /// Parameter binding.
    pub bind: BindRequest,
    /// Run the endpoint-exact bytecode peephole pass (the default);
    /// `false` executes the raw SSA lowering — same bits, more
    /// instructions.
    pub peephole: bool,
}

impl CompileRequest {
    /// A request with the defaults the execution front doors use:
    /// `-O2`, f64 endpoints, peephole on, binding derived from the
    /// signature with default pointer length 8.
    pub fn new(source: impl Into<Arc<str>>, origin: impl Into<String>) -> CompileRequest {
        CompileRequest {
            source: source.into(),
            origin: origin.into(),
            fn_name: None,
            cfg: Config { opt_level: igen_core::OptLevel::O2, ..Config::default() },
            bind: BindRequest::FromParams { int_args: Vec::new(), lens: Vec::new(), size: 8 },
            peephole: true,
        }
    }
}

/// A verified, executable compilation artifact: the compiler output
/// (IR, transformed C), the resolved binding, and the prepared batch
/// program. Shared behind `Arc` by the cache; `BatchProgram::run`
/// takes `&self`, so one unit serves any number of concurrent callers.
pub struct CompiledUnit {
    /// The full compiler output the program was lowered from.
    pub out: Output,
    /// The compiled function's name (resolved from the request).
    pub fn_name: String,
    /// The resolved parameter binding.
    pub bind: BindSpec,
    /// The prepared batch program (its `program()` accessor returns
    /// the exact bytecode that executes, for `--emit-bytecode`).
    pub batch: BatchProgram,
}

impl CompiledUnit {
    /// Interval inputs consumed per batch item.
    pub fn n_inputs(&self) -> usize {
        self.batch.program().n_inputs as usize
    }

    /// Interval outputs produced per batch item.
    pub fn n_outputs(&self) -> usize {
        self.batch.program().outputs.len()
    }
}

/// A pipeline failure, each variant preserving the exact one-line
/// message the pre-refactor CLI printed for the same failure.
#[derive(Debug)]
pub enum SessionError {
    /// Front-end compilation failed (`"{origin}: {err}"`).
    Compile {
        /// The request's `origin` label.
        origin: String,
        /// The compiler diagnostic.
        err: CompileError,
    },
    /// Function selection failed — a usage error (exit 2 at the CLI).
    Function(String),
    /// Binding construction failed — a usage error (exit 2 at the CLI).
    Bind(String),
    /// Bytecode lowering rejected the function (`"{fn_name}: {err}"`).
    Lower {
        /// The function that failed to lower.
        fn_name: String,
        /// The lowering diagnostic.
        err: String,
    },
    /// The insert-time differential self-check failed
    /// (`"{fn_name}: {err}"`).
    Verify {
        /// The function that failed verification.
        fn_name: String,
        /// The mismatch diagnostic.
        err: String,
    },
    /// The program binds no interval inputs, so there is nothing to
    /// batch over.
    NoInputs {
        /// The function with an empty interval signature.
        fn_name: String,
    },
}

impl SessionError {
    /// Whether this is a usage error (the CLI exits 2) rather than a
    /// compilation/verification failure (exit 1).
    pub fn is_usage(&self) -> bool {
        matches!(self, SessionError::Function(_) | SessionError::Bind(_))
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Compile { origin, err } => write!(f, "{origin}: {err}"),
            SessionError::Function(msg) | SessionError::Bind(msg) => write!(f, "{msg}"),
            SessionError::Lower { fn_name, err } | SessionError::Verify { fn_name, err } => {
                write!(f, "{fn_name}: {err}")
            }
            SessionError::NoInputs { fn_name } => {
                write!(f, "{fn_name}: function binds no interval inputs to batch over")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Picks the function to compile: the requested name, or the file's
/// only definition.
fn pick_function(out: &Output, want: Option<String>, origin: &str) -> Result<String, String> {
    let names: Vec<&str> = out.ir.functions().map(|f| f.name.as_str()).collect();
    match want {
        Some(n) => {
            if !names.contains(&n.as_str()) {
                return Err(format!("no function '{n}' in {origin}"));
            }
            Ok(n)
        }
        None => match names.as_slice() {
            [only] => Ok(only.to_string()),
            _ => Err(format!(
                "{origin} defines {} functions; pick one with --fn <name>",
                names.len()
            )),
        },
    }
}

/// Binds parameters for batched execution: interval scalars and arrays
/// feed the batch, integer parameters are fixed via `int_args`, pointer
/// lengths come from `lens` (default `size`).
fn build_binds(
    func: &igen_ir::IrFunction,
    int_args: &[(String, i64)],
    lens: &[(String, usize)],
    size: usize,
) -> Result<BindSpec, String> {
    use igen_cfront::Type;
    let mut binds = Vec::new();
    for p in &func.params {
        match &p.ty {
            Type::Named(_) => binds.push(ArgBind::Ival),
            Type::Ptr(_) | Type::Array(_, _) => {
                let len = lens.iter().find(|(n, _)| *n == p.name).map(|&(_, l)| l).unwrap_or(size);
                binds.push(ArgBind::InOut(len));
            }
            Type::Int | Type::UInt | Type::Long | Type::ULong => {
                match int_args.iter().find(|(n, _)| *n == p.name) {
                    Some(&(_, v)) => binds.push(ArgBind::Int(v)),
                    None => {
                        return Err(format!(
                            "integer parameter '{}' needs --arg {}=<value>",
                            p.name, p.name
                        ))
                    }
                }
            }
            other => {
                return Err(format!("parameter '{}' has unsupported type {other:?}", p.name));
            }
        }
    }
    Ok(BindSpec::new(binds))
}

/// Items the insert-time self-check runs through the differential
/// interpreter (matches the prefix size `igen-cli run` checks).
const SELF_CHECK_ITEMS: usize = 8;

/// Seed of the self-check workload (fixed: verification must be a pure
/// function of the program, not of any caller-chosen seed).
const SELF_CHECK_SEED: u64 = 0x5e55;

/// Differentially verifies `prog` against the reference interpreter on
/// a small deterministic workload — the "verified" in "the cache holds
/// verified programs".
fn self_check(
    out: &Output,
    prog: &igen_vm::Program,
    bind: &BindSpec,
    precision: Precision,
) -> Result<(), String> {
    let nin = prog.n_inputs as usize;
    let mut rng = workload::rng(SELF_CHECK_SEED);
    match precision {
        Precision::Dd => {
            let ivals = workload::dd_intervals_1ulp(&mut rng, SELF_CHECK_ITEMS * nin, -2.0, 2.0);
            verify_bit_identity_dd(out, prog, bind, &ivals).map_err(|e| e.to_string())
        }
        _ => {
            let pts = workload::random_points(&mut rng, SELF_CHECK_ITEMS * nin, -2.0, 2.0);
            let ivals = workload::intervals_1ulp(&pts);
            verify_bit_identity(out, prog, bind, &ivals).map_err(|e| e.to_string())
        }
    }
}

/// Runs the full pipeline once, bypassing any cache: compile the
/// source, pick the function, resolve the binding, lower to bytecode,
/// optionally run the differential self-check, and prepare the batch
/// program.
///
/// The one-shot CLI paths pass `verify: false` and run their own
/// differential check over the user-seeded workload (so their output
/// stays byte-identical to the pre-refactor inline pipeline);
/// [`crate::Session::compile`] passes `true` so every *cached* program
/// is a verified program.
pub fn compile_uncached(req: &CompileRequest, verify: bool) -> Result<CompiledUnit, SessionError> {
    let out = Compiler::new(req.cfg)
        .compile_str(&req.source)
        .map_err(|err| SessionError::Compile { origin: req.origin.clone(), err })?;
    let fn_name =
        pick_function(&out, req.fn_name.clone(), &req.origin).map_err(SessionError::Function)?;
    let bind = match &req.bind {
        BindRequest::Explicit(b) => b.clone(),
        BindRequest::FromParams { int_args, lens, size } => {
            let func =
                out.ir.functions().find(|f| f.name == fn_name).expect("picked function exists");
            build_binds(func, int_args, lens, *size).map_err(SessionError::Bind)?
        }
    };
    let prog = if req.peephole {
        compile_to_program(&out, &fn_name, &bind)
    } else {
        compile_to_program_raw(&out, &fn_name, &bind)
    }
    .map_err(|e| SessionError::Lower { fn_name: fn_name.clone(), err: e.to_string() })?;
    if prog.n_inputs == 0 {
        return Err(SessionError::NoInputs { fn_name });
    }
    if verify {
        self_check(&out, &prog, &bind, req.cfg.precision)
            .map_err(|err| SessionError::Verify { fn_name: fn_name.clone(), err })?;
    }
    Ok(CompiledUnit { out, fn_name, bind, batch: BatchProgram::new(prog) })
}

/// Deterministic f64 workload for `items` batch items of `unit` (the
/// generator `igen-cli run` uses, shared so the service's seeded runs
/// and the CLI produce identical inputs for identical seeds).
pub fn workload_f64(unit: &CompiledUnit, items: usize, seed: u64) -> BatchF64I {
    let mut rng = workload::rng(seed);
    let pts = workload::random_points(&mut rng, items * unit.n_inputs(), -2.0, 2.0);
    BatchF64I::from_intervals(&workload::intervals_1ulp(&pts))
}

/// Deterministic double-double workload for `items` batch items.
pub fn workload_dd(unit: &CompiledUnit, items: usize, seed: u64) -> BatchDdI {
    let mut rng = workload::rng(seed);
    BatchDdI::from_intervals(&workload::dd_intervals_1ulp(
        &mut rng,
        items * unit.n_inputs(),
        -2.0,
        2.0,
    ))
}
