//! `igen-session` — the compile-once layer between the IGen compiler
//! and everything that *executes* compiled interval programs.
//!
//! The one-shot front doors (`igen-cli run`/`profile`) and the
//! benchmark gauntlet's `compiled-vm` backend all walk the same
//! pipeline: C source → [`igen_core::Compiler`] → pick a function →
//! bind its parameters → lower to register bytecode → differential
//! verification → [`igen_batch::BatchProgram`]. This crate owns that
//! pipeline exactly once ([`compile_uncached`]), makes its results
//! first-class cacheable values ([`CompiledUnit`] behind `Arc`, keyed
//! by [`CompileCache`]), and serves them from a long-running process
//! ([`service::Service`] — the engine of `igen-cli serve`).
//!
//! Determinism is the load-bearing invariant, inherited from the
//! batch engine (DESIGN.md §8/§15): a compiled program is a pure
//! function of the compile request, and a batch run is a pure function
//! of (program, inputs) regardless of thread count or tile size. The
//! session layer adds *sharding* — requests fan out across a persistent
//! worker pool — and stays bit-identical for the same reason: which
//! worker executes a request cannot change a single endpoint bit, so
//! every response line is a pure function of its request line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod flags;
mod pipeline;
pub mod service;

pub use cache::{CacheStats, CompileCache};
pub use flags::Flags;
pub use pipeline::{
    compile_uncached, workload_dd, workload_f64, BindRequest, CompileRequest, CompiledUnit,
    SessionError,
};
#[cfg(unix)]
pub use service::serve_unix;
pub use service::{serve_lines, Service, ServiceConfig, Ticket};

use std::sync::{Arc, Mutex};

/// A compile session: a [`CompileCache`] behind a lock, shared by any
/// number of threads. `compile` returns the cached unit when the full
/// request key matches (source bytes, config, function, binding shape,
/// peephole flag) and otherwise runs the pipeline once — including the
/// differential self-check, so every cached program is a *verified*
/// program — and caches the result.
pub struct Session {
    cache: Mutex<CompileCache>,
}

impl Session {
    /// A session whose cache keeps at most `cache_cap` programs
    /// (least-recently-used eviction; 0 means [`CompileCache::DEFAULT_CAP`]).
    pub fn new(cache_cap: usize) -> Session {
        Session { cache: Mutex::new(CompileCache::new(cache_cap)) }
    }

    /// Compiles `req` through the cache. On a hit no parse, lowering,
    /// optimization or verification work runs — the test suite pins
    /// this via span counts.
    pub fn compile(&self, req: &CompileRequest) -> Result<Arc<CompiledUnit>, SessionError> {
        if let Some(unit) = self.cache.lock().expect("session cache poisoned").get(req) {
            return Ok(unit);
        }
        // Compile outside the lock: a slow compile must not serialize
        // unrelated requests. A racing miss on the same key compiles
        // twice and the second insert wins — wasted work, never a
        // wrong or stale program.
        let unit = Arc::new(compile_uncached(req, true)?);
        self.cache.lock().expect("session cache poisoned").insert(req, Arc::clone(&unit));
        Ok(unit)
    }

    /// Cache statistics (hits/misses/evictions/entries) for this
    /// session since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("session cache poisoned").stats()
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new(0)
    }
}
