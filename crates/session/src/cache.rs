//! The compile cache: verified batch programs keyed by the full
//! compile request.
//!
//! The key is *every* request field that can change the generated
//! bytecode: the source text, the compiler [`Config`] (opt level,
//! precision, policies), the function name, the binding shape, and the
//! peephole flag. `origin` is deliberately excluded — it only labels
//! diagnostics, and two clients compiling the same source from
//! different paths should share one program.
//!
//! Lookups fast-reject on an FNV-1a hash of the source, then compare
//! the **full source bytes** and every other key field. A hash
//! collision can therefore cost a redundant comparison but can never
//! return a stale or wrong program — staleness safety does not rest on
//! a 64-bit hash.
//!
//! Eviction is least-recently-used over a small vector (move-to-front
//! on hit); compile caches hold tens of entries, not thousands, so a
//! linear scan beats hashing the whole source on every lookup anyway.

use crate::pipeline::{BindRequest, CompileRequest, CompiledUnit};
use igen_core::Config;
use igen_telemetry::Counter;
use std::sync::Arc;

static CACHE_HITS: Counter = Counter::new("session.cache.hits");
static CACHE_MISSES: Counter = Counter::new("session.cache.misses");
static CACHE_EVICTIONS: Counter = Counter::new("session.cache.evictions");

/// Cache activity counters for one [`CompileCache`] since construction.
///
/// These are per-cache and always available; the global
/// `session.cache.*` telemetry counters mirror them when the
/// `telemetry` feature is compiled in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries dropped to stay within the capacity.
    pub evictions: u64,
    /// Programs currently cached.
    pub len: usize,
}

/// One cached entry: the key fields plus the shared compiled unit.
struct Entry {
    source_hash: u64,
    source: Arc<str>,
    fn_name: Option<String>,
    cfg: Config,
    bind: BindRequest,
    peephole: bool,
    unit: Arc<CompiledUnit>,
}

impl Entry {
    fn matches(&self, hash: u64, req: &CompileRequest) -> bool {
        self.source_hash == hash
            && self.peephole == req.peephole
            && self.cfg == req.cfg
            && self.fn_name == req.fn_name
            && self.bind == req.bind
            && *self.source == *req.source
    }
}

/// An LRU cache of verified compiled units (see module docs for the
/// key derivation and the collision-safety argument).
pub struct CompileCache {
    entries: Vec<Entry>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CompileCache {
    /// Default capacity when the caller passes 0.
    pub const DEFAULT_CAP: usize = 64;

    /// A cache holding at most `cap` programs (0 = [`Self::DEFAULT_CAP`]).
    pub fn new(cap: usize) -> CompileCache {
        let cap = if cap == 0 { Self::DEFAULT_CAP } else { cap };
        CompileCache { entries: Vec::new(), cap, hits: 0, misses: 0, evictions: 0 }
    }

    /// Looks up `req`, moving a hit to the front of the LRU order.
    pub fn get(&mut self, req: &CompileRequest) -> Option<Arc<CompiledUnit>> {
        let hash = fnv1a(req.source.as_bytes());
        match self.entries.iter().position(|e| e.matches(hash, req)) {
            Some(i) => {
                self.hits += 1;
                CACHE_HITS.inc();
                let e = self.entries.remove(i);
                let unit = Arc::clone(&e.unit);
                self.entries.insert(0, e);
                Some(unit)
            }
            None => {
                self.misses += 1;
                CACHE_MISSES.inc();
                None
            }
        }
    }

    /// Inserts a freshly compiled unit at the front, evicting the
    /// least-recently-used entry if the cache is full. A racing insert
    /// of the same key replaces the older copy instead of duplicating
    /// it.
    pub fn insert(&mut self, req: &CompileRequest, unit: Arc<CompiledUnit>) {
        let hash = fnv1a(req.source.as_bytes());
        if let Some(i) = self.entries.iter().position(|e| e.matches(hash, req)) {
            self.entries.remove(i);
        } else if self.entries.len() >= self.cap {
            self.entries.pop();
            self.evictions += 1;
            CACHE_EVICTIONS.inc();
        }
        self.entries.insert(
            0,
            Entry {
                source_hash: hash,
                source: Arc::clone(&req.source),
                fn_name: req.fn_name.clone(),
                cfg: req.cfg,
                bind: req.bind.clone(),
                peephole: req.peephole,
                unit,
            },
        );
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
        }
    }

    /// Maximum number of cached programs.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and good enough for a fast
/// reject (correctness never depends on it — see module docs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile_uncached;

    fn req(src: &str) -> CompileRequest {
        CompileRequest::new(src, "<test>")
    }

    fn unit(r: &CompileRequest) -> Arc<CompiledUnit> {
        Arc::new(compile_uncached(r, false).expect("test source compiles"))
    }

    const SQ: &str = "double sq(double x) { return x * x; }";
    const CUBE: &str = "double cube(double x) { return x * x * x; }";

    #[test]
    fn hit_after_insert_and_miss_before() {
        let mut c = CompileCache::new(4);
        let r = req(SQ);
        assert!(c.get(&r).is_none());
        let u = unit(&r);
        c.insert(&r, Arc::clone(&u));
        let got = c.get(&r).expect("hit");
        assert!(Arc::ptr_eq(&got, &u));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, evictions: 0, len: 1 });
    }

    #[test]
    fn any_key_field_change_misses() {
        let mut c = CompileCache::new(8);
        let r = req(SQ);
        c.insert(&r, unit(&r));

        let mut by_source = req(CUBE);
        by_source.fn_name = None;
        assert!(c.get(&by_source).is_none());

        let mut by_opt = r.clone();
        by_opt.cfg.opt_level = igen_core::OptLevel::O0;
        assert!(c.get(&by_opt).is_none());

        let mut by_precision = r.clone();
        by_precision.cfg.precision = igen_core::Precision::Dd;
        assert!(c.get(&by_precision).is_none());

        let mut by_peephole = r.clone();
        by_peephole.peephole = false;
        assert!(c.get(&by_peephole).is_none());

        let mut by_bind = r.clone();
        by_bind.bind = BindRequest::FromParams { int_args: Vec::new(), lens: Vec::new(), size: 16 };
        assert!(c.get(&by_bind).is_none());

        // ...while origin changes still hit: it is not part of the key.
        let mut by_origin = r.clone();
        by_origin.origin = "elsewhere.c".into();
        assert!(c.get(&by_origin).is_some());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = CompileCache::new(2);
        let a = req(SQ);
        let b = req(CUBE);
        let d = req("double half(double x) { return x * 0.5; }");
        c.insert(&a, unit(&a));
        c.insert(&b, unit(&b));
        assert!(c.get(&a).is_some()); // a is now the most recently used
        c.insert(&d, unit(&d)); // evicts b
        assert!(c.get(&b).is_none());
        assert!(c.get(&a).is_some());
        assert!(c.get(&d).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn reinserting_the_same_key_does_not_duplicate() {
        let mut c = CompileCache::new(4);
        let r = req(SQ);
        c.insert(&r, unit(&r));
        c.insert(&r, unit(&r));
        assert_eq!(c.stats().len, 1);
        assert_eq!(c.stats().evictions, 0);
    }
}
