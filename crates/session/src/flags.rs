//! The shared command-line flag cursor used by every `igen-cli` and
//! `igen-bench` subcommand.
//!
//! Each front door used to hand-roll the same three moves — take the
//! flag's value, parse it, print a one-line message and exit 2 — with
//! per-subcommand copies of the `take`/`value` closures. [`Flags`]
//! centralizes the moves while leaving the *messages* at the call
//! sites, so every historical diagnostic stays byte-identical:
//!
//! - [`Flags::value`] / [`Flags::parse`] fail with `"{flag} needs
//!   {what}"` (e.g. `--batch needs a count`), matching the CLI's
//!   merged missing/unparsable convention.
//! - [`Flags::pair`] fails with `"bad {flag} '{v}' (expected
//!   {expected})"` for `name=value` flags like `--arg`/`--len`.
//!
//! Errors carry the bare message; the caller prepends its program
//! prefix (`igen-cli: ` / `igen-bench: `) and chooses the exit code.

/// A cursor over a subcommand's argument slice.
pub struct Flags<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Flags<'a> {
    /// A cursor at the start of `args` (the slice *after* the
    /// subcommand name).
    pub fn new(args: &'a [String]) -> Flags<'a> {
        Flags { args, i: 0 }
    }

    /// The next argument, advancing the cursor; `None` at the end.
    #[allow(clippy::should_implement_trait)] // deliberate Iterator-free cursor: callers match on &str
    pub fn next(&mut self) -> Option<&'a str> {
        let a = self.args.get(self.i)?;
        self.i += 1;
        Some(a)
    }

    /// The current flag's value argument, or `"{flag} needs {what}"`.
    pub fn value(&mut self, flag: &str, what: &str) -> Result<&'a str, String> {
        self.next().ok_or_else(|| format!("{flag} needs {what}"))
    }

    /// The current flag's value parsed as `T`. A missing *or*
    /// unparsable value yields the same `"{flag} needs {what}"`
    /// message (the historical CLI folds both cases together).
    pub fn parse<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> Result<T, String> {
        self.next().and_then(|v| v.parse().ok()).ok_or_else(|| format!("{flag} needs {what}"))
    }

    /// The current flag's `name=value` argument with the value parsed
    /// as `T`, or `"bad {flag} '{v}' (expected {expected})"`. A missing
    /// argument reports an empty `''`, matching the historical
    /// `unwrap_or_default` behavior.
    pub fn pair<T: std::str::FromStr>(
        &mut self,
        flag: &str,
        expected: &str,
    ) -> Result<(String, T), String> {
        let v = self.next().unwrap_or_default();
        v.split_once('=')
            .and_then(|(n, x)| Some((n.to_string(), x.parse().ok()?)))
            .ok_or_else(|| format!("bad {flag} '{v}' (expected {expected})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn cursor_walks_and_takes_values() {
        let args = argv(&["--fn", "dot", "input.c"]);
        let mut f = Flags::new(&args);
        assert_eq!(f.next(), Some("--fn"));
        assert_eq!(f.value("--fn", "a function name"), Ok("dot"));
        assert_eq!(f.next(), Some("input.c"));
        assert_eq!(f.next(), None);
    }

    #[test]
    fn missing_and_unparsable_values_share_the_needs_message() {
        let empty = argv(&[]);
        let mut f = Flags::new(&empty);
        assert_eq!(f.value("--fn", "a function name"), Err("--fn needs a function name".into()));
        assert_eq!(f.parse::<usize>("--batch", "a count"), Err("--batch needs a count".into()));

        let junk = argv(&["wat"]);
        let mut f = Flags::new(&junk);
        assert_eq!(f.parse::<usize>("--batch", "a count"), Err("--batch needs a count".into()));
    }

    #[test]
    fn pair_parses_name_eq_value_and_reports_the_raw_text() {
        let good = argv(&["n=12"]);
        let mut f = Flags::new(&good);
        assert_eq!(f.pair::<i64>("--arg", "name=integer"), Ok(("n".into(), 12)));

        let bad = argv(&["n=twelve"]);
        let mut f = Flags::new(&bad);
        assert_eq!(
            f.pair::<i64>("--arg", "name=integer"),
            Err("bad --arg 'n=twelve' (expected name=integer)".into())
        );

        let missing = argv(&[]);
        let mut f = Flags::new(&missing);
        assert_eq!(
            f.pair::<usize>("--len", "name=count"),
            Err("bad --len '' (expected name=count)".into())
        );
    }
}
