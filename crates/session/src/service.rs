//! The always-on interval service behind `igen-cli serve`: a
//! persistent worker pool draining a bounded queue of JSON-lines
//! requests against a shared [`Session`] compile cache.
//!
//! # Protocol
//!
//! One request per line, one response per line. Every request is an
//! object with a `"kind"` and an optional `"id"` (string or integer,
//! echoed back verbatim):
//!
//! ```text
//! {"id":1,"kind":"compile","source":"double sq(double x){return x*x;}"}
//! {"id":1,"ok":true,"kind":"compile","fn":"sq","insns":1,"inputs":1,"outputs":1}
//! ```
//!
//! Kinds: `compile` (compile + cache, report the program shape), `run`
//! (compile + execute over a seeded or explicit input batch), `profile`
//! (compile + profiled run, report per-site counts and width
//! amplification), `metrics` (Prometheus-style text: the telemetry
//! snapshot plus session cache/queue counters), `ping` (liveness, with
//! an optional `sleep_ms` for queue tests) and `shutdown`. Failures are
//! one-line structured errors — `{"id":…,"ok":false,"error":"…"}` —
//! mirroring the CLI's one-line exit-2 convention; the server never
//! dies on a bad request.
//!
//! # Determinism
//!
//! A `compile`/`run`/`profile` response is a **pure function of its
//! request line** (and of the build): no timings, no cache-state flags,
//! no worker identity. Combined with the batch engine's bit-identity
//! invariant this makes response lines byte-identical whether the pool
//! runs 1 worker or 16 and whether the cache is cold or warm — pinned
//! by the service determinism tests. `metrics` is the deliberate
//! exception (it reports live counters) and is excluded from
//! byte-identity goldens.
//!
//! # Deadlines and backpressure
//!
//! The queue is bounded (`queue_cap`); a submit against a full queue
//! fails immediately with `queue full (N queued): retry later` instead
//! of stalling the reader. A request carrying `"deadline_ms"` (or a
//! server-wide `--deadline-ms` default) that waits in the queue past
//! its deadline is answered with `deadline expired after Nms in queue`
//! instead of being executed late. Both are ordinary error responses:
//! the connection and the server stay up.

use crate::pipeline::{workload_dd, workload_f64, BindRequest, CompileRequest};
use crate::Session;
use igen_batch::{BatchConfig, BatchDdI, BatchF64I};
use igen_core::{Config, OptLevel, Precision};
use igen_interval::{DdI, F64I};
use igen_telemetry::json::{self, Json};
use igen_telemetry::Counter;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

static QUEUE_DEPTH_MAX: Counter = Counter::new("session.queue.depth_max");

/// Serializes profile handling: the telemetry profile registry is
/// global, so concurrent profiled runs of the same unit would blur
/// each other's before/after diffs.
static PROFILE_LOCK: Mutex<()> = Mutex::new(());

/// Hard ceiling on per-request batch sizes (a service must not let one
/// request allocate unbounded memory).
const MAX_BATCH: u64 = 1 << 20;

/// Hard ceiling on `ping` `sleep_ms` (tests use sleeps to fill the
/// queue deterministically; nothing should park a worker for minutes).
const MAX_SLEEP_MS: u64 = 10_000;

const KINDS: &str = "compile, run, profile, metrics, ping or shutdown";

/// Configuration for [`Service::start`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (0 = one per core).
    pub workers: usize,
    /// Default per-request queue deadline in milliseconds (0 = none;
    /// a request's own `"deadline_ms"` overrides).
    pub deadline_ms: u64,
    /// Compile-cache capacity (0 = [`crate::CompileCache::DEFAULT_CAP`]).
    pub cache_cap: usize,
    /// Bounded-queue capacity (0 = [`ServiceConfig::DEFAULT_QUEUE_CAP`]).
    pub queue_cap: usize,
}

impl ServiceConfig {
    /// Default queue bound: deep enough for bursts, shallow enough
    /// that a stuck pool surfaces as backpressure, not memory growth.
    pub const DEFAULT_QUEUE_CAP: usize = 64;
}

/// A handle to one submitted request's eventual response line.
pub struct Ticket {
    slot: Arc<Slot>,
    shutdown: bool,
}

impl Ticket {
    /// Blocks until the response line is ready and returns it.
    pub fn wait(self) -> String {
        let mut out = self.slot.out.lock().expect("response slot poisoned");
        loop {
            if let Some(line) = out.take() {
                return line;
            }
            out = self.slot.ready.wait(out).expect("response slot poisoned");
        }
    }

    /// True when this ticket answers a `shutdown` request — the caller
    /// should stop reading after writing the response.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }
}

struct Slot {
    out: Mutex<Option<String>>,
    ready: Condvar,
}

impl Slot {
    fn empty() -> Arc<Slot> {
        Arc::new(Slot { out: Mutex::new(None), ready: Condvar::new() })
    }

    fn ready(line: String) -> Arc<Slot> {
        Arc::new(Slot { out: Mutex::new(Some(line)), ready: Condvar::new() })
    }

    fn fill(&self, line: String) {
        *self.out.lock().expect("response slot poisoned") = Some(line);
        self.ready.notify_all();
    }
}

/// The kinds a worker executes (metrics and shutdown are answered
/// inline by `submit`, so they keep working when the queue is full).
enum Work {
    Compile,
    Run,
    Profile,
    Ping,
}

struct Job {
    id: Option<String>,
    work: Work,
    body: Json,
    /// `(expiry instant, configured ms)` — the message reports the
    /// configured value, not a measured one, so it stays deterministic.
    deadline: Option<(Instant, u64)>,
    slot: Arc<Slot>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    stop: bool,
}

struct Shared {
    session: Session,
    queue: Mutex<QueueState>,
    job_ready: Condvar,
    depth_max: AtomicU64,
}

/// The long-running interval service (see module docs).
pub struct Service {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    queue_cap: usize,
    deadline_ms: u64,
}

impl Service {
    /// Starts the worker pool.
    pub fn start(cfg: ServiceConfig) -> Service {
        let workers = if cfg.workers == 0 { igen_batch::available_threads() } else { cfg.workers };
        let queue_cap =
            if cfg.queue_cap == 0 { ServiceConfig::DEFAULT_QUEUE_CAP } else { cfg.queue_cap };
        let shared = Arc::new(Shared {
            session: Session::new(cfg.cache_cap),
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), stop: false }),
            job_ready: Condvar::new(),
            depth_max: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker(&shared))
            })
            .collect();
        Service { shared, handles, queue_cap, deadline_ms: cfg.deadline_ms }
    }

    /// Submits one request line. Always returns a ticket; protocol
    /// errors, full-queue rejections, `metrics` and `shutdown` come
    /// back pre-answered.
    pub fn submit(&self, line: &str) -> Ticket {
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return Ticket {
                    slot: Slot::ready(error_line(&None, &format!("bad request: {e}"))),
                    shutdown: false,
                }
            }
        };
        let id = match request_id(&parsed) {
            Ok(id) => id,
            Err(e) => return Ticket { slot: Slot::ready(error_line(&None, &e)), shutdown: false },
        };
        let fail = |msg: &str| Ticket { slot: Slot::ready(error_line(&id, msg)), shutdown: false };
        let Some(kind) = parsed.get("kind").and_then(Json::as_str) else {
            return fail(&format!("request needs a \"kind\" (expected {KINDS})"));
        };
        let work = match kind {
            "compile" => Work::Compile,
            "run" => Work::Run,
            "profile" => Work::Profile,
            "ping" => Work::Ping,
            "metrics" => {
                let line = ok_line(
                    &id,
                    &format!(
                        "\"kind\":\"metrics\",\"text\":{}",
                        json::escape(&self.metrics_text())
                    ),
                );
                return Ticket { slot: Slot::ready(line), shutdown: false };
            }
            "shutdown" => {
                {
                    let mut q = self.shared.queue.lock().expect("service queue poisoned");
                    q.stop = true;
                }
                self.shared.job_ready.notify_all();
                let line = ok_line(&id, "\"kind\":\"shutdown\"");
                return Ticket { slot: Slot::ready(line), shutdown: true };
            }
            k => return fail(&format!("unknown kind '{k}' (expected {KINDS})")),
        };
        let deadline = match parsed.get("deadline_ms") {
            Some(v) => match v.as_u64() {
                Some(ms) => Some((Instant::now() + Duration::from_millis(ms), ms)),
                None => return fail("\"deadline_ms\" must be an unsigned integer"),
            },
            None if self.deadline_ms > 0 => {
                Some((Instant::now() + Duration::from_millis(self.deadline_ms), self.deadline_ms))
            }
            None => None,
        };
        let slot = Slot::empty();
        let job = Job { id, work, body: parsed, deadline, slot: Arc::clone(&slot) };
        {
            let mut q = self.shared.queue.lock().expect("service queue poisoned");
            if q.stop {
                return Ticket {
                    slot: Slot::ready(error_line(&job.id, "service is shutting down")),
                    shutdown: false,
                };
            }
            if q.jobs.len() >= self.queue_cap {
                return Ticket {
                    slot: Slot::ready(error_line(
                        &job.id,
                        &format!("queue full ({} queued): retry later", self.queue_cap),
                    )),
                    shutdown: false,
                };
            }
            q.jobs.push_back(job);
            let depth = q.jobs.len() as u64;
            self.shared.depth_max.fetch_max(depth, Ordering::Relaxed);
            QUEUE_DEPTH_MAX.record_max(depth);
        }
        self.shared.job_ready.notify_one();
        Ticket { slot, shutdown: false }
    }

    /// The `metrics` payload: the telemetry snapshot in Prometheus
    /// text format plus the session cache/queue counters (the latter
    /// are tracked directly, so they report even in builds without the
    /// `telemetry` feature).
    pub fn metrics_text(&self) -> String {
        let mut text = igen_telemetry::snapshot().to_metrics_text();
        let cs = self.shared.session.cache_stats();
        text.push_str(&format!("igen_session_cache_hits {}\n", cs.hits));
        text.push_str(&format!("igen_session_cache_misses {}\n", cs.misses));
        text.push_str(&format!("igen_session_cache_evictions {}\n", cs.evictions));
        text.push_str(&format!("igen_session_cache_len {}\n", cs.len));
        text.push_str(&format!(
            "igen_session_queue_depth_max {}\n",
            self.shared.depth_max.load(Ordering::Relaxed)
        ));
        text
    }

    /// Cache statistics of the underlying [`Session`].
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.shared.session.cache_stats()
    }

    /// Requests currently waiting in the queue (tests use this to
    /// sequence backpressure scenarios deterministically).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("service queue poisoned").jobs.len()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("service queue poisoned");
            q.stop = true;
        }
        self.shared.job_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker loop: drain jobs until the queue is empty *and* the service
/// is stopping — queued requests submitted before a shutdown still get
/// answered.
fn worker(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("service queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.stop {
                    return;
                }
                q = shared.job_ready.wait(q).expect("service queue poisoned");
            }
        };
        let line = match job.deadline {
            Some((expiry, ms)) if Instant::now() >= expiry => {
                error_line(&job.id, &format!("deadline expired after {ms}ms in queue"))
            }
            _ => handle(&shared.session, &job),
        };
        job.slot.fill(line);
    }
}

fn handle(session: &Session, job: &Job) -> String {
    let result = match job.work {
        Work::Ping => handle_ping(&job.body),
        Work::Compile => handle_compile(session, &job.body),
        Work::Run => handle_run(session, &job.body),
        Work::Profile => handle_profile(session, &job.body),
    };
    match result {
        Ok(body) => ok_line(&job.id, &body),
        Err(msg) => error_line(&job.id, &msg),
    }
}

fn handle_ping(body: &Json) -> Result<String, String> {
    let sleep_ms = get_u64(body, "sleep_ms", 0)?.min(MAX_SLEEP_MS);
    if sleep_ms > 0 {
        std::thread::sleep(Duration::from_millis(sleep_ms));
    }
    Ok("\"kind\":\"pong\"".to_string())
}

fn handle_compile(session: &Session, body: &Json) -> Result<String, String> {
    let req = compile_request("compile", body)?;
    let unit = session.compile(&req).map_err(|e| e.to_string())?;
    let mut out = format!(
        "\"kind\":\"compile\",\"fn\":{},\"insns\":{},\"inputs\":{},\"outputs\":{}",
        json::escape(&unit.fn_name),
        unit.batch.program().insns.len(),
        unit.n_inputs(),
        unit.n_outputs(),
    );
    if get_bool(body, "emit_bytecode", false)? {
        out.push_str(&format!(",\"bytecode\":{}", json::escape(&unit.batch.program().dump())));
    }
    Ok(out)
}

fn handle_run(session: &Session, body: &Json) -> Result<String, String> {
    let req = compile_request("run", body)?;
    let unit = session.compile(&req).map_err(|e| e.to_string())?;
    let threads = get_u64(body, "threads", 1)? as usize;
    let tile = get_u64(body, "tile", 0)? as usize;
    // seq_threshold 0 + the engine's bit-identity invariant: the same
    // request yields the same output bits at any thread/tile setting.
    let bcfg =
        BatchConfig::new().with_threads(threads).with_seq_threshold(0).with_tile_groups(tile);
    let nin = unit.n_inputs();
    let (batch, seed) = seeded_batch(body)?;
    let (items, outputs) = match req.cfg.precision {
        Precision::Dd => {
            let soa = match body.get("inputs") {
                Some(v) => {
                    let ivals: Vec<DdI> =
                        parse_input_pairs(v, nin)?.iter().map(DdI::from_f64i).collect();
                    BatchDdI::from_intervals(&ivals)
                }
                None => workload_dd(&unit, batch, seed),
            };
            let out = unit.batch.run_dd(&bcfg, &soa);
            (soa.len() / nin, render_dd_outputs(&out))
        }
        _ => {
            let soa = match body.get("inputs") {
                Some(v) => BatchF64I::from_intervals(&parse_input_pairs(v, nin)?),
                None => workload_f64(&unit, batch, seed),
            };
            let out = unit.batch.run(&bcfg, &soa);
            (soa.len() / nin, render_f64_outputs(&out))
        }
    };
    Ok(format!(
        "\"kind\":\"run\",\"fn\":{},\"items\":{items},\"outputs\":{outputs}",
        json::escape(&unit.fn_name),
    ))
}

fn handle_profile(session: &Session, body: &Json) -> Result<String, String> {
    let req = compile_request("profile", body)?;
    let unit = session.compile(&req).map_err(|e| e.to_string())?;
    let (batch, seed) = seeded_batch(body)?;
    let n_insns = unit.batch.program().insns.len();
    let bcfg = BatchConfig::new().with_threads(1).with_seq_threshold(0);

    // The profile registry is global and accumulates across requests,
    // so diff this run's contribution under a lock and restore the
    // recording flag — responses stay a pure function of the request.
    let _guard = PROFILE_LOCK.lock().expect("profile lock poisoned");
    let before = igen_telemetry::snapshot().profiles;
    let was_recording = igen_telemetry::recording();
    igen_telemetry::set_recording(true);
    let mut prof = igen_telemetry::UnitProfiler::start(&unit.fn_name, n_insns);
    match req.cfg.precision {
        Precision::Dd => {
            let soa = workload_dd(&unit, batch, seed);
            unit.batch.run_dd_profiled(&bcfg, &soa, &mut prof);
        }
        _ => {
            let soa = workload_f64(&unit, batch, seed);
            unit.batch.run_profiled(&bcfg, &soa, &mut prof);
        }
    }
    prof.finish();
    igen_telemetry::set_recording(was_recording);
    let after = igen_telemetry::snapshot().profiles;

    let mut sites = Vec::new();
    for rec in after.iter().filter(|r| r.unit == unit.fn_name) {
        let prev = before.iter().find(|r| r.site == rec.site && r.unit == rec.unit);
        let count = rec.count - prev.map_or(0, |r| r.count);
        if count == 0 {
            continue;
        }
        // Width amplification of *this* run: subtract the previous
        // bucket counts, then reuse the standard mean.
        let amp: Vec<(i32, u64)> = rec
            .amp
            .iter()
            .map(|&(i, v)| {
                let prior = prev
                    .and_then(|p| p.amp.iter().find(|(pi, _)| *pi == i))
                    .map_or(0, |(_, pv)| *pv);
                (i, v - prior)
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        let diff = igen_telemetry::ProfileRec { amp, count, ..rec.clone() };
        let amp_json = diff.mean_amp_log2().map_or("null".to_string(), |a| format!("{a:?}"));
        sites.push(format!(
            "{{\"site\":{},\"op\":{},\"line\":{},\"col\":{},\"count\":{count},\"amp\":{amp_json}}}",
            rec.site,
            json::escape(&rec.op),
            rec.line,
            rec.col,
        ));
    }
    Ok(format!(
        "\"kind\":\"profile\",\"fn\":{},\"insns\":{n_insns},\"telemetry\":{},\"sites\":[{}]",
        json::escape(&unit.fn_name),
        igen_telemetry::COMPILED_IN,
        sites.join(","),
    ))
}

/// Builds the cache-keyed [`CompileRequest`] shared by the compile,
/// run and profile kinds.
fn compile_request(kind: &str, body: &Json) -> Result<CompileRequest, String> {
    let Some(source) = body.get("source").and_then(Json::as_str) else {
        return Err(format!("{kind} needs a \"source\" string"));
    };
    let fn_name = match body.get("fn") {
        Some(v) => Some(v.as_str().ok_or("\"fn\" must be a string")?.to_string()),
        None => None,
    };
    let mut cfg = Config { opt_level: OptLevel::O2, ..Config::default() };
    cfg.opt_level = match get_u64(body, "opt_level", 2)? {
        0 => OptLevel::O0,
        1 => OptLevel::O1,
        2 => OptLevel::O2,
        _ => return Err("\"opt_level\" must be 0, 1 or 2".to_string()),
    };
    cfg.precision = match body.get("precision").map(|v| v.as_str()) {
        None => Precision::F64,
        Some(Some("f64")) => Precision::F64,
        Some(Some("dd")) => Precision::Dd,
        _ => return Err("\"precision\" must be \"f64\" or \"dd\"".to_string()),
    };
    let peephole = get_bool(body, "peephole", true)?;
    let size = get_u64(body, "size", 8)? as usize;
    let int_args = named_values(body, "args", "integers", Json::as_i64)?;
    let lens = named_values(body, "lens", "counts", |v| v.as_u64().map(|n| n as usize))?;
    Ok(CompileRequest {
        source: source.into(),
        origin: "request".to_string(),
        fn_name,
        cfg,
        bind: BindRequest::FromParams { int_args, lens, size },
        peephole,
    })
}

/// `"args"`/`"lens"`-style objects mapping parameter names to numbers.
/// BTreeMap iteration sorts keys, so two spellings of the same mapping
/// produce the same cache key.
fn named_values<T>(
    body: &Json,
    key: &str,
    what: &str,
    conv: impl Fn(&Json) -> Option<T>,
) -> Result<Vec<(String, T)>, String> {
    match body.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Obj(map)) => map
            .iter()
            .map(|(name, v)| {
                conv(v)
                    .map(|x| (name.clone(), x))
                    .ok_or_else(|| format!("\"{key}\" must map parameter names to {what}"))
            })
            .collect(),
        Some(_) => Err(format!("\"{key}\" must map parameter names to {what}")),
    }
}

/// The seeded-workload parameters shared by run and profile.
fn seeded_batch(body: &Json) -> Result<(usize, u64), String> {
    let batch = get_u64(body, "batch", 8)?;
    if batch == 0 || batch > MAX_BATCH {
        return Err(format!("\"batch\" must be between 1 and {MAX_BATCH}"));
    }
    let seed = get_u64(body, "seed", 0x16e0)?;
    Ok((batch as usize, seed))
}

/// Parses an explicit `"inputs"` array of `[lo, hi]` pairs.
fn parse_input_pairs(v: &Json, nin: usize) -> Result<Vec<F64I>, String> {
    let arr = v.as_arr().ok_or("\"inputs\" must be an array of [lo,hi] pairs")?;
    if arr.is_empty() || arr.len() % nin != 0 {
        return Err(format!(
            "\"inputs\" needs a positive multiple of {nin} [lo,hi] pairs (got {})",
            arr.len()
        ));
    }
    arr.iter()
        .map(|pair| {
            let p = pair.as_arr().filter(|p| p.len() == 2);
            let (lo, hi) = match p.map(|p| (p[0].as_f64(), p[1].as_f64())) {
                Some((Some(lo), Some(hi))) => (lo, hi),
                _ => return Err("\"inputs\" entries must be [lo,hi] number pairs".to_string()),
            };
            F64I::new(lo, hi).map_err(|e| format!("bad input interval [{lo:?}, {hi:?}]: {e}"))
        })
        .collect()
}

fn render_f64_outputs(out: &BatchF64I) -> String {
    let mut s = String::from("[");
    for i in 0..out.len() {
        if i > 0 {
            s.push(',');
        }
        let v = out.get(i);
        s.push_str(&format!("[{},{}]", num(v.lo()), num(v.hi())));
    }
    s.push(']');
    s
}

/// Double-double outputs carry each endpoint as its exact `[hi, lo]`
/// component pair: `[lo.hi, lo.lo, hi.hi, hi.lo]` per interval.
fn render_dd_outputs(out: &BatchDdI) -> String {
    let mut s = String::from("[");
    for i in 0..out.len() {
        if i > 0 {
            s.push(',');
        }
        let v = out.get(i);
        let (lo, hi) = (v.lo(), v.hi());
        s.push_str(&format!(
            "[{},{},{},{}]",
            num(lo.hi()),
            num(lo.lo()),
            num(hi.hi()),
            num(hi.lo())
        ));
    }
    s.push(']');
    s
}

/// One endpoint as JSON: shortest-roundtrip decimal for finite values;
/// NaN/infinities (legal interval endpoints, illegal JSON numbers) as
/// strings.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

fn get_u64(body: &Json, key: &str, default: u64) -> Result<u64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("\"{key}\" must be an unsigned integer")),
    }
}

fn get_bool(body: &Json, key: &str, default: bool) -> Result<bool, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("\"{key}\" must be a boolean")),
    }
}

/// The request's `"id"`, re-serialized for the echo (string or
/// integer; anything else is a protocol error).
fn request_id(req: &Json) -> Result<Option<String>, String> {
    match req.get("id") {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(json::escape(s))),
        Some(v) => match v.as_i64() {
            Some(n) => Ok(Some(n.to_string())),
            None => Err("\"id\" must be a string or an integer".to_string()),
        },
    }
}

fn ok_line(id: &Option<String>, body: &str) -> String {
    match id {
        Some(id) => format!("{{\"id\":{id},\"ok\":true,{body}}}"),
        None => format!("{{\"ok\":true,{body}}}"),
    }
}

fn error_line(id: &Option<String>, msg: &str) -> String {
    let msg = json::escape(msg);
    match id {
        Some(id) => format!("{{\"id\":{id},\"ok\":false,\"error\":{msg}}}"),
        None => format!("{{\"ok\":false,\"error\":{msg}}}"),
    }
}

/// Drives the service over a line stream (stdio transport): requests
/// are answered **in submission order** — a writer thread waits on the
/// tickets in sequence while the workers process them in parallel.
/// Returns `Ok(true)` when a `shutdown` request ended the stream,
/// `Ok(false)` on EOF.
pub fn serve_lines<R, W>(svc: &Service, reader: R, writer: W) -> io::Result<bool>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel::<Ticket>();
    let writer_thread = std::thread::spawn(move || -> io::Result<bool> {
        let mut w = writer;
        let mut shut = false;
        for ticket in rx {
            shut |= ticket.is_shutdown();
            writeln!(w, "{}", ticket.wait())?;
            w.flush()?;
        }
        Ok(shut)
    });
    let mut read_err = None;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                read_err = Some(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let ticket = svc.submit(&line);
        let shutdown = ticket.is_shutdown();
        if tx.send(ticket).is_err() {
            break; // writer failed; its error surfaces below
        }
        if shutdown {
            break;
        }
    }
    drop(tx);
    let shut =
        writer_thread.join().map_err(|_| io::Error::other("serve writer thread panicked"))??;
    match read_err {
        Some(e) => Err(e),
        None => Ok(shut),
    }
}

/// Drives the service over a Unix socket at `path`: one thread per
/// connection, each running the same line protocol (pipelining across
/// connections; in-order responses within one). Returns when any
/// connection submits `shutdown`.
#[cfg(unix)]
pub fn serve_unix(svc: &Service, path: &std::path::Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    use std::sync::atomic::AtomicBool;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shut = AtomicBool::new(false);
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if shut.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let (svc, shut) = (&*svc, &shut);
                    scope.spawn(move || serve_connection(svc, stream, shut));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })?;
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// One socket connection: read a line, submit, wait, write. Read
/// timeouts let the loop notice a shutdown issued on another
/// connection instead of blocking forever on an idle client.
#[cfg(unix)]
fn serve_connection(
    svc: &Service,
    stream: std::os::unix::net::UnixStream,
    shut: &std::sync::atomic::AtomicBool,
) {
    use std::io::BufReader;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        if shut.load(Ordering::Relaxed) {
            return;
        }
        match reader.read_line(&mut buf) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                if line.trim().is_empty() {
                    continue;
                }
                let ticket = svc.submit(&line);
                let shutdown = ticket.is_shutdown();
                let resp = ticket.wait();
                if writeln!(write_half, "{resp}").and_then(|()| write_half.flush()).is_err() {
                    return;
                }
                if shutdown {
                    shut.store(true, Ordering::Relaxed);
                    return;
                }
            }
            // Timeout mid-wait (or mid-line: read_line keeps the
            // partial text in `buf` and the next call appends).
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}
