//! Service-level determinism: every compile/run/profile/ping response
//! is a pure function of its request line — the same requests produce
//! byte-identical responses whether the pool runs 1 worker or 4,
//! whether the cache is cold or warm, and however many clients submit
//! concurrently. Deadlines and backpressure are structured one-line
//! errors, never hangs.

use igen_session::{Service, ServiceConfig, Ticket};
use std::time::Duration;

const SQ: &str = "double sq(double x) { return x * x; }";

/// A request mix covering every deterministic response shape: compile
/// (with and without bytecode), f64/dd runs from the seeded generator,
/// an explicit-inputs run, ping, a protocol error and a compile error.
fn request_lines() -> Vec<String> {
    vec![
        format!(r#"{{"id":0,"kind":"compile","source":"{SQ}"}}"#),
        format!(r#"{{"id":1,"kind":"compile","source":"{SQ}","emit_bytecode":true}}"#),
        format!(r#"{{"id":2,"kind":"run","source":"{SQ}","batch":4,"seed":7}}"#),
        format!(r#"{{"id":3,"kind":"run","source":"{SQ}","precision":"dd","batch":3}}"#),
        format!(r#"{{"id":4,"kind":"run","source":"{SQ}","inputs":[[1.0,2.0],[-3.5,-3.5]]}}"#),
        r#"{"id":5,"kind":"ping"}"#.to_string(),
        r#"{"id":6,"kind":"frobnicate"}"#.to_string(),
        r#"{"id":7,"kind":"compile","source":"double bad(double x) { return x + ; }"}"#.to_string(),
        format!(r#"{{"id":8,"kind":"run","source":"{SQ}","opt_level":9}}"#),
    ]
}

fn client_responses(svc: &Service, lines: &[String]) -> Vec<String> {
    let tickets: Vec<Ticket> = lines.iter().map(|l| svc.submit(l)).collect();
    tickets.into_iter().map(Ticket::wait).collect()
}

/// Four concurrent clients submit the identical request list against a
/// 1-worker pool and against a 4-worker pool: all eight response lists
/// must be byte-identical (so worker sharding, queue interleaving and
/// cache warmth are all invisible in the bytes).
#[test]
fn concurrent_clients_get_byte_identical_responses_across_worker_counts() {
    let lines = request_lines();
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 4] {
        let svc = Service::start(ServiceConfig { workers, ..ServiceConfig::default() });
        let mut from_this_pool = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..4).map(|_| s.spawn(|| client_responses(&svc, &lines))).collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect::<Vec<_>>()
        });
        transcripts.append(&mut from_this_pool);
    }
    let reference = &transcripts[0];
    assert!(reference.iter().take(6).all(|r| r.contains(r#""ok":true"#)), "{reference:?}");
    assert!(reference[6].contains("unknown kind 'frobnicate'"), "{:?}", reference[6]);
    assert!(reference[7].contains(r#""ok":false"#), "{:?}", reference[7]);
    assert!(reference[8].contains(r#"\"opt_level\" must be 0, 1 or 2"#), "{:?}", reference[8]);
    for (i, t) in transcripts.iter().enumerate() {
        assert_eq!(
            t, reference,
            "client transcript {i} diverged — responses must be a pure function of the request"
        );
    }
}

/// A request whose deadline expires while it waits behind a slow job
/// gets the structured deadline error (with the *configured* ms, so
/// the line itself stays deterministic), not a hang and not a result.
#[test]
fn queued_past_its_deadline_is_a_structured_error() {
    let svc = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    // Occupy the single worker long enough for the deadline to lapse.
    let slow = svc.submit(r#"{"id":"slow","kind":"ping","sleep_ms":150}"#);
    let doomed = svc.submit(r#"{"id":"late","kind":"ping","deadline_ms":1}"#);
    assert_eq!(
        doomed.wait(),
        r#"{"id":"late","ok":false,"error":"deadline expired after 1ms in queue"}"#
    );
    assert!(slow.wait().contains(r#""kind":"pong""#));
}

/// A full queue answers `queue full` immediately instead of stalling
/// the submitter; once the queue drains, the same request succeeds.
#[test]
fn full_queue_is_backpressure_not_a_hang() {
    let svc =
        Service::start(ServiceConfig { workers: 1, queue_cap: 1, ..ServiceConfig::default() });
    let slow = svc.submit(r#"{"id":"slow","kind":"ping","sleep_ms":150}"#);
    // Wait for the worker to pick the slow job up so the queue is
    // empty, then fill the single slot.
    while svc.queue_depth() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let queued = svc.submit(r#"{"id":"q","kind":"ping"}"#);
    let rejected = svc.submit(r#"{"id":"r","kind":"ping"}"#);
    assert_eq!(
        rejected.wait(),
        r#"{"id":"r","ok":false,"error":"queue full (1 queued): retry later"}"#
    );
    assert!(slow.wait().contains(r#""kind":"pong""#));
    assert!(queued.wait().contains(r#""kind":"pong""#));
    // Drained: the retry the error asked for now succeeds.
    assert!(svc.submit(r#"{"id":"r2","kind":"ping"}"#).wait().contains(r#""kind":"pong""#));
}

/// `metrics` is the one deliberately non-deterministic kind: it
/// reports observability state (cache hits, queue high-water mark)
/// rather than computation, and it must work without the telemetry
/// feature compiled in.
#[test]
fn metrics_reports_cache_and_queue_counters() {
    let svc = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let run = format!(r#"{{"kind":"run","source":"{SQ}"}}"#);
    svc.submit(&run).wait();
    svc.submit(&run).wait();
    let metrics = svc.submit(r#"{"id":9,"kind":"metrics"}"#).wait();
    assert!(metrics.contains(r#""ok":true"#), "{metrics}");
    for needle in [
        "igen_session_cache_hits 1",
        "igen_session_cache_misses 1",
        "igen_session_cache_len 1",
        "igen_session_queue_depth_max",
    ] {
        assert!(metrics.contains(needle), "metrics response missing `{needle}`: {metrics}");
    }
    assert_eq!(svc.cache_stats().hits, 1);
    assert_eq!(svc.cache_stats().misses, 1);
}

/// `shutdown` flips the service into rejecting mode: in-flight and
/// already-queued work still completes, new submissions get the
/// structured shutting-down error.
#[test]
fn shutdown_drains_queued_work_then_rejects() {
    let svc = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let slow = svc.submit(r#"{"id":"slow","kind":"ping","sleep_ms":100}"#);
    let queued = svc.submit(r#"{"id":"q","kind":"ping"}"#);
    let bye = svc.submit(r#"{"id":"bye","kind":"shutdown"}"#);
    assert!(bye.is_shutdown());
    assert!(bye.wait().contains(r#""kind":"shutdown""#));
    let rejected = svc.submit(r#"{"id":"late","kind":"ping"}"#);
    assert_eq!(rejected.wait(), r#"{"id":"late","ok":false,"error":"service is shutting down"}"#);
    assert!(slow.wait().contains(r#""kind":"pong""#));
    assert!(queued.wait().contains(r#""kind":"pong""#));
}
