//! The warm-cache contract, pinned via telemetry span counts: a cache
//! hit performs *zero* pipeline work — no parse, no IR build, no
//! optimization, no lowering, no peephole, no verification. Only runs
//! under `--features telemetry` (the spans are compiled out otherwise).
#![cfg(feature = "telemetry")]

use igen_session::{CompileRequest, Session};

/// Every span the source→BatchProgram pipeline can emit.
const PIPELINE_SPANS: [&str; 9] = [
    "compile.parse",
    "compile.build_ir",
    "compile.lower",
    "compile.emit",
    "compile.verify",
    "compile.renumber",
    "vm.lower",
    "vm.peephole",
    "vm.verify",
];

fn pipeline_span_count() -> usize {
    igen_telemetry::snapshot()
        .spans
        .iter()
        .filter(|s| PIPELINE_SPANS.contains(&s.name.as_str()))
        .count()
}

#[test]
fn a_cache_hit_does_zero_pipeline_work() {
    igen_telemetry::reset();
    igen_telemetry::set_recording(true);
    let session = Session::new(0);
    let req = CompileRequest::new("double sq(double x) { return x * x; }", "warm-cache-test");

    session.compile(&req).expect("compiles");
    let cold = pipeline_span_count();
    assert!(cold > 0, "the cold compile must record pipeline spans (recording is on)");

    session.compile(&req).expect("compiles");
    let warm = pipeline_span_count();
    igen_telemetry::set_recording(false);

    assert_eq!(
        warm, cold,
        "a warm-cache compile must add zero parse/lower/opt/verify spans (cold run recorded \
         {cold}, after the hit the log holds {warm})"
    );
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}
