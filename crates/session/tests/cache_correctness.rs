//! Cache-key correctness: a [`Session`] must never serve a stale
//! program. Whatever sequence of requests hits the cache — including
//! one small enough to evict constantly — the unit returned for a
//! request is always byte-identical (instruction dump and all) to a
//! fresh, uncached compile of that same request. Mutating any key
//! field (source bytes, opt level, precision, binding shape, peephole
//! flag) therefore can never return the previous program.

use igen_core::{Config, OptLevel, Precision};
use igen_session::{compile_uncached, BindRequest, CompileRequest, Session};
use proptest::prelude::*;

/// Small corpus with distinct bytecode: two unary sources that differ
/// only in a constant, a binary source, and a pointer/loop source
/// whose lowering depends on the binding shape (`size`).
const SOURCES: [&str; 4] = [
    "double f(double x) { return x * (x + 1.0); }",
    "double f(double x) { return x * (x + 2.0); }",
    "double g(double x, double y) { return x * y + y; }",
    "double s(double* v, int n) {\n\
     \x20   double acc = 0.0;\n\
     \x20   for (int i = 0; i < n; i++) { acc = acc + v[i]; }\n\
     \x20   return acc;\n\
     }",
];

fn request(src: usize, opt: u8, dd: bool, size: usize, peephole: bool) -> CompileRequest {
    let opt_level = match opt {
        0 => OptLevel::O0,
        1 => OptLevel::O1,
        _ => OptLevel::O2,
    };
    let precision = if dd { Precision::Dd } else { Precision::F64 };
    // The loop source's integer bound must be bound to a value; tie it
    // to `size` so the binding shape varies with the generated size.
    let int_args = if src == 3 { vec![("n".to_string(), size as i64)] } else { Vec::new() };
    CompileRequest {
        source: SOURCES[src].into(),
        origin: format!("case-{src}"),
        fn_name: None,
        cfg: Config { opt_level, precision, ..Config::default() },
        bind: BindRequest::FromParams { int_args, lens: Vec::new(), size },
        peephole,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Drive a deliberately tiny cache (capacity 2 → constant eviction
    /// and reinsertion) with an arbitrary request sequence; every
    /// response must match an uncached compile of the same request.
    #[test]
    fn cache_never_serves_a_stale_program(
        seq in prop::collection::vec(
            (0usize..SOURCES.len(), 0u8..3, any::<bool>(), 1usize..4, any::<bool>()),
            1..10,
        )
    ) {
        let session = Session::new(2);
        for (src, opt, dd, size, peephole) in seq {
            let req = request(src, opt, dd, size, peephole);
            let cached = session.compile(&req).expect("corpus sources compile");
            let fresh = compile_uncached(&req, false).expect("corpus sources compile");
            prop_assert_eq!(
                cached.batch.program().dump(),
                fresh.batch.program().dump(),
                "cached program diverged from an uncached compile of the same request",
            );
        }
    }
}

/// The sharpest staleness shape — two requests identical except for
/// one constant byte in the source — must produce different programs.
#[test]
fn one_byte_source_mutation_misses_the_cache() {
    let session = Session::new(0);
    let a = session.compile(&request(0, 2, false, 8, true)).unwrap();
    let b = session.compile(&request(1, 2, false, 8, true)).unwrap();
    assert_ne!(
        a.batch.program().dump(),
        b.batch.program().dump(),
        "sources differing in one constant must compile to different programs"
    );
    let stats = session.cache_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 2);
}

/// Same source, every other key field flipped one at a time: each
/// flip is a miss, and re-requesting the original is a hit.
#[test]
fn each_key_field_is_load_bearing() {
    let session = Session::new(0);
    let base = request(0, 2, false, 8, true);
    session.compile(&base).unwrap();
    session.compile(&request(0, 0, false, 8, true)).unwrap(); // opt level
    session.compile(&request(0, 2, true, 8, true)).unwrap(); // precision
    session.compile(&request(0, 2, false, 8, false)).unwrap(); // peephole
    session.compile(&request(3, 2, false, 2, true)).unwrap(); // binding shape…
    session.compile(&request(3, 2, false, 3, true)).unwrap(); // …varies with size
    assert_eq!(session.cache_stats().misses, 6);
    session.compile(&base).unwrap();
    assert_eq!(session.cache_stats().hits, 1);
}
